package emdsearch

import (
	"math"
	"testing"

	"emdsearch/internal/data"
)

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewEngine(LinearCost(16), Options{Hierarchy: []int{8, 20}}); err == nil {
		t.Error("accepted level > d")
	}
	if _, err := NewEngine(LinearCost(16), Options{Hierarchy: []int{8, 8}}); err == nil {
		t.Error("accepted duplicate levels")
	}
	if _, err := NewEngine(LinearCost(16), Options{Hierarchy: []int{8, 2}, ReducedDims: 4}); err == nil {
		t.Error("accepted conflicting ReducedDims")
	}
	eng, err := NewEngine(LinearCost(16), Options{Hierarchy: []int{2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if eng.opts.ReducedDims != 8 {
		t.Errorf("finest level %d, want 8", eng.opts.ReducedDims)
	}
}

func TestHierarchyExactAcrossMethods(t *testing.T) {
	ds, err := data.Retina(160, 7)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewEngine(ds.Cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		scan.Add(ds.Items[i].Label, h)
	}

	for _, m := range []ReductionMethod{FBAll, KMedoids, Adjacent} {
		t.Run(string(m), func(t *testing.T) {
			eng, err := NewEngine(ds.Cost, Options{
				Hierarchy:  []int{32, 8, 2},
				Method:     m,
				SampleSize: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range vecs {
				eng.Add(ds.Items[i].Label, h)
			}
			if err := eng.Build(); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				got, stats, err := eng.KNN(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := scan.KNN(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
				// Stage count: Q-Red-IM + Red-IM + one Red-EMD per level.
				if len(stats.StageEvaluations) != 5 {
					t.Fatalf("stage evaluations: %v, want 5 stages", stats.StageEvaluations)
				}
				// Finer stages run on fewer items than the coarse scan.
				if stats.StageEvaluations[4] > stats.StageEvaluations[0] {
					t.Errorf("finest stage evaluated more than the base scan: %v", stats.StageEvaluations)
				}
			}
		})
	}
}

// TestHierarchyCascadeIsNested: every coarser level's groups must be
// unions of the finer level's groups (the property the chain ordering
// rests on).
func TestHierarchyCascadeIsNested(t *testing.T) {
	ds, err := data.MusicSpectra(80, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, Options{
		Hierarchy:  []int{16, 4},
		Method:     FBAll,
		SampleSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range ds.Histograms() {
		eng.Add(ds.Items[i].Label, h)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if len(eng.cascade) != 2 {
		t.Fatalf("cascade has %d levels, want 2", len(eng.cascade))
	}
	fine := eng.cascade[0].Assignment()
	coarse := eng.cascade[1].Assignment()
	// Two dimensions sharing a fine group must share the coarse group.
	for i := range fine {
		for j := i + 1; j < len(fine); j++ {
			if fine[i] == fine[j] && coarse[i] != coarse[j] {
				t.Fatalf("nesting violated: dims %d, %d share fine group %d but coarse groups %d, %d",
					i, j, fine[i], coarse[i], coarse[j])
			}
		}
	}
}

func TestHierarchySingleLevelEqualsPlain(t *testing.T) {
	// Hierarchy with one level behaves exactly like ReducedDims alone.
	ds, err := data.MusicSpectra(60, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewEngine(ds.Cost, Options{Hierarchy: []int{8}, SampleSize: 16, Seed: 3})
	b, _ := NewEngine(ds.Cost, Options{ReducedDims: 8, SampleSize: 16, Seed: 3})
	for i, h := range vecs {
		a.Add(ds.Items[i].Label, h)
		b.Add(ds.Items[i].Label, h)
	}
	if err := a.Build(); err != nil {
		t.Fatal(err)
	}
	if err := b.Build(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ga, _, err := a.KNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		gb, _, err := b.KNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gb {
			if ga[i] != gb[i] {
				t.Fatalf("result %d: %+v vs %+v", i, ga[i], gb[i])
			}
		}
	}
}

func TestHierarchyWithIndexedCentroidBase(t *testing.T) {
	// Cascade stages chained over the k-d tree centroid base ranking:
	// every component of the pipeline composed at once, still exact.
	ds, err := data.ColorImages(140, 11)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, Options{
		Hierarchy:  []int{16, 4},
		SampleSize: 16,
		Positions:  ds.Positions,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewEngine(ds.Cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		eng.Add(ds.Items[i].Label, h)
		scan.Add(ds.Items[i].Label, h)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, stats, err := eng.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := scan.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
		// All stages lazy over the indexed base.
		for si, e := range stats.StageEvaluations {
			if e >= eng.Len() {
				t.Errorf("stage %d evaluated all %d items", si, e)
			}
		}
	}
}

func TestDisableIMFilter(t *testing.T) {
	ds, err := data.MusicSpectra(60, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, Options{ReducedDims: 8, SampleSize: 16, DisableIMFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		eng.Add(ds.Items[i].Label, h)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	_, stats, err := eng.KNN(queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StageEvaluations) != 1 {
		t.Errorf("expected a single Red-EMD stage, got %v", stats.StageEvaluations)
	}
}
