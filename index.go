package emdsearch

import (
	"fmt"
	"math"
	"math/rand"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/fourpoint"
	"emdsearch/internal/mtree"
	"emdsearch/internal/persist"
	"emdsearch/internal/search"
	"emdsearch/internal/vptree"
)

// IndexKind values for Options.IndexKind.
const (
	// IndexAuto (the zero value) builds an M-tree over the reduced EMD
	// when the corpus is large enough and its intrinsic dimensionality
	// low enough for metric indexing to pay off, and falls back to the
	// columnar scan otherwise. Per query, the index declines shapes a
	// scan serves better (open-ended rankings, k-NN with k close to n).
	IndexAuto = ""
	// IndexMTree forces an M-tree candidate generator for every
	// eligible query regardless of the selectivity heuristics.
	IndexMTree = "mtree"
	// IndexVPTree forces a vantage-point tree candidate generator.
	IndexVPTree = "vptree"
	// IndexOff disables the metric-index filter stage entirely.
	IndexOff = "off"
)

const (
	// indexAutoMinN is the smallest live corpus auto mode will index:
	// below this a columnar scan beats tree traversal overhead.
	indexAutoMinN = 4096
	// indexAutoMaxIntrinsicDim bounds the estimated intrinsic
	// dimensionality rho = mu^2/(2 sigma^2) of the reduced metric; past
	// it, ball pruning degenerates and the scan wins.
	indexAutoMaxIntrinsicDim = 16.0
	// indexAutoPairSample is the number of random pairs used for the
	// intrinsic-dimensionality estimate at build time.
	indexAutoPairSample = 512
	// indexAutoKDivisor: auto mode declines a k-NN query when
	// k > live/indexAutoKDivisor — at that selectivity the traversal
	// visits most of the tree anyway.
	indexAutoKDivisor = 16
	// indexChurnFraction is the deleted-since-build fraction past which
	// a background rebuild compacts soft-deleted items out of the tree.
	indexChurnFraction = 0.3
	// indexMTreeCapacity is the M-tree node capacity.
	indexMTreeCapacity = 16
	// indexFourPointSample is the number of random quadruples checked
	// before trusting the four-point property on this data.
	indexFourPointSample = 64
)

func validIndexKind(kind string) bool {
	switch kind {
	case IndexAuto, IndexMTree, IndexVPTree, IndexOff:
		return true
	}
	return false
}

// savedIndex is a metric index retained across pipeline rebuilds (and
// restored from persisted snapshots): the tree itself plus the
// fingerprint of the state it was built under. Mirrors the savedQuant
// stash. Exactly one of mt/vt is non-nil, matching kind.
type savedIndex struct {
	kind string
	mt   *mtree.Tree
	vt   *vptree.Tree
	// n is the store length the index covers: every live id < n is in
	// the tree (ids deleted before the build are permanently absent,
	// which is fine — soft deletes are never undone).
	n int
	// deletedAtBuild is len(deleted) when the tree was (re)built; the
	// churn heuristic compares against it.
	deletedAtBuild int
	// redHash fingerprints the reduction the index metric derives from.
	redHash uint64
}

// savedIntrinsic caches the auto-mode intrinsic-dimensionality
// estimate across snapshot rebuilds. The estimate is a function of
// the live reduced vectors and the index metric only, so (store
// length, deleted count, reduction fingerprint) pins it exactly —
// the store is append-only and deletes are soft. Without the cache
// every snapshot invalidation re-paid indexAutoPairSample metric
// solves even when nothing relevant changed.
type savedIntrinsic struct {
	n       int
	deleted int
	redHash uint64
	rho     float64
}

// engineIndex is the per-snapshot index state: the tree, the metric it
// was built under, and the acceptance policy.
type engineIndex struct {
	kind      string
	auto      bool // built under IndexAuto: per-query acceptance applies
	fourPoint bool // supermetric pruning verified on this data (vptree)
	mt        *mtree.Tree
	vt        *vptree.Tree
	live      int // live items at build time
	// metric is the index's (pseudo)metric over reduced vectors: the
	// reduced EMD itself when its ground matrix is already metric, else
	// the EMD under the metric closure of that matrix. Either way it
	// lower-bounds the exact EMD, so emissions feed KNOP losslessly.
	metric func(xr, yr Histogram) float64
}

// queryDist returns the per-query distance id -> metric(q', reduced_id).
// The closure gathers into one scratch buffer, so it must only be
// called from a single goroutine — the KNOP feeder pulls the ranking
// sequentially, which satisfies that.
func (ix *engineIndex) queryDist(s *snapshot, q Histogram) func(int) float64 {
	qr := s.red.Apply(q)
	buf := s.reducedScratch()
	return func(i int) float64 { return ix.metric(qr, s.finestReduced(i, buf)) }
}

// accept decides whether the index serves this query. Forced kinds
// always accept; auto mode declines shapes where a scan is cheaper.
func (ix *engineIndex) accept(hint search.IndexHint) bool {
	if !ix.auto {
		return true
	}
	switch hint.Kind {
	case search.IndexKNN:
		return hint.K <= ix.live/indexAutoKDivisor
	case search.IndexRange:
		return true
	default: // IndexRank: no stopping point, traversal visits everything
		return false
	}
}

// open starts a best-first traversal for q and adapts it to the search
// layer's IndexRanking.
func (ix *engineIndex) open(s *snapshot, q Histogram) search.IndexRanking {
	qd := ix.queryDist(s, q)
	var skip func(id int) bool
	if len(s.deleted) > 0 {
		skip = func(id int) bool { return s.deleted[id] }
	}
	if ix.kind == IndexMTree {
		st := ix.mt.Stream(mtree.QueryDistFunc(qd), skip)
		return &indexRanking{
			label: "MTree(Red-EMD)",
			nodes: ix.mt.Nodes(),
			next: func() (int, float64, bool) {
				r, ok := st.Next()
				return r.Index, r.Dist, ok
			},
			stats: func() (int, int) {
				t := st.Stats()
				return t.NodesVisited, t.DistanceCalls
			},
		}
	}
	st := ix.vt.Stream(vptree.QueryDistFunc(qd), skip, ix.fourPoint)
	return &indexRanking{
		label: "VPTree(Red-EMD)",
		nodes: ix.vt.Nodes(),
		next: func() (int, float64, bool) {
			r, ok := st.Next()
			return r.Index, r.Dist, ok
		},
		stats: func() (int, int) {
			t := st.Stats()
			return t.NodesVisited, t.DistanceCalls
		},
	}
}

// indexRanking adapts an mtree/vptree stream to search.IndexRanking.
type indexRanking struct {
	label string
	nodes int
	next  func() (int, float64, bool)
	stats func() (visited, calls int)
}

func (r *indexRanking) Next() (search.Candidate, bool) {
	i, d, ok := r.next()
	if !ok {
		return search.Candidate{}, false
	}
	return search.Candidate{Index: i, Dist: d}, true
}

func (r *indexRanking) IndexStats() search.IndexStats {
	v, c := r.stats()
	p := r.nodes - v
	if p < 0 {
		p = 0
	}
	return search.IndexStats{NodesVisited: v, Pruned: p, DistanceCalls: c}
}

func (r *indexRanking) Label() string { return r.label }

// indexMetric derives the (pseudo)metric the trees are built under.
// The min-linkage reduced ground matrix C' can violate the triangle
// inequality (metric trees would then prune wrong answers), so it is
// repaired to its shortest-path metric closure M' <= C'. EMD is
// monotone in the ground distance, hence EMD_{M'} <= EMD_{C'} <= EMD:
// the index metric is a valid lower bound either way. When C' is
// already metric the closure is a bit-exact fixpoint and the snapshot's
// own reduced-EMD evaluator is used, so index filter values match the
// scan path bit for bit.
func indexMetric(reduced *core.ReducedEMD) (func(xr, yr Histogram) float64, error) {
	closed, changed := core.MetricClosure(reduced.Cost())
	if !changed {
		return reduced.DistanceReduced, nil
	}
	md, err := emd.NewDist(closed)
	if err != nil {
		return nil, fmt.Errorf("emdsearch: metric closure of reduced cost invalid: %w", err)
	}
	return md.Distance, nil
}

// intrinsicDim estimates the intrinsic dimensionality rho =
// mu^2 / (2 sigma^2) (Chavez et al.) of the index metric from sampled
// live pairs. Returns +Inf when the sample is degenerate (all
// distances equal), where ball pruning cannot work.
func intrinsicDim(ids []int, dist func(i, j int) float64, rng *rand.Rand) float64 {
	if len(ids) < 2 {
		return math.Inf(1)
	}
	var sum, sumSq float64
	n := 0
	for t := 0; t < indexAutoPairSample; t++ {
		i := ids[rng.Intn(len(ids))]
		j := ids[rng.Intn(len(ids))]
		if i == j {
			continue
		}
		d := dist(i, j)
		sum += d
		sumSq += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	mu := sum / float64(n)
	variance := sumSq/float64(n) - mu*mu
	if variance <= 0 {
		return math.Inf(1)
	}
	return mu * mu / (2 * variance)
}

// cachedIntrinsicLocked returns the intrinsic-dimensionality estimate
// for the current (n, deleted, reduction) state, computing and caching
// it only when the fingerprint changed since the last estimate.
// Caller holds e.mu for writing.
func (e *Engine) cachedIntrinsicLocked(n int, liveIDs []int, dist func(i, j int) float64, redHash uint64, rng *rand.Rand) float64 {
	deleted := n - len(liveIDs)
	if c := e.savedIntrinsic; c != nil && c.n == n && c.deleted == deleted && c.redHash == redHash {
		return c.rho
	}
	if hook := e.testHookIntrinsicEval; hook != nil {
		inner := dist
		dist = func(i, j int) float64 {
			hook()
			return inner(i, j)
		}
	}
	rho := intrinsicDim(liveIDs, dist, rng)
	e.savedIntrinsic = &savedIntrinsic{n: n, deleted: deleted, redHash: redHash, rho: rho}
	return rho
}

// fourPointHolds samples quadruples of live items and checks the
// four-point property of the index metric via the planar embedding
// bound. EMD under an arbitrary ground metric is not guaranteed
// supermetric, so Options.FourPoint is trusted only after this
// verification; any violation disables the stronger pruning for the
// snapshot (triangle pruning still applies).
func fourPointHolds(ids []int, dist func(i, j int) float64, rng *rand.Rand) bool {
	if len(ids) < 4 {
		return false
	}
	// Scale-relative tolerance: the planar bound carries ~1e-15
	// relative rounding slack.
	var scale float64
	type quad struct{ p, v, q, s int }
	quads := make([]quad, 0, indexFourPointSample)
	dists := make([][6]float64, 0, indexFourPointSample)
	for t := 0; t < indexFourPointSample; t++ {
		var qd quad
		qd.p = ids[rng.Intn(len(ids))]
		qd.v = ids[rng.Intn(len(ids))]
		qd.q = ids[rng.Intn(len(ids))]
		qd.s = ids[rng.Intn(len(ids))]
		if qd.p == qd.v || qd.p == qd.q || qd.p == qd.s ||
			qd.v == qd.q || qd.v == qd.s || qd.q == qd.s {
			continue
		}
		d := [6]float64{
			dist(qd.p, qd.v),
			dist(qd.q, qd.p),
			dist(qd.q, qd.v),
			dist(qd.p, qd.s),
			dist(qd.v, qd.s),
			dist(qd.q, qd.s),
		}
		for _, x := range d {
			if x > scale {
				scale = x
			}
		}
		quads = append(quads, qd)
		dists = append(dists, d)
	}
	if len(quads) == 0 {
		return false
	}
	tol := 1e-9 * scale
	for _, d := range dists {
		if !fourpoint.Holds(d[0], d[1], d[2], d[3], d[4], d[5], tol) {
			return false
		}
	}
	return true
}

// attachIndexLocked builds (or reuses) the metric-index candidate
// generator for the snapshot under construction and wires it into the
// searcher. Caller holds e.mu for writing; snap's reduced data is
// already assembled. Only the single-level symmetric pipeline is
// eligible — the hierarchical cascade, asymmetric filter and
// Positions-based base ranking keep their own orderings.
func (e *Engine) attachIndexLocked(snap *snapshot, s *search.Searcher) error {
	kind := e.opts.IndexKind
	if kind == IndexOff || snap.reduced == nil || len(snap.cascade) > 1 ||
		e.opts.AsymmetricQuery || s.BaseRanking != nil {
		return nil
	}
	n := len(snap.vectors)
	live := n - len(snap.deleted)
	auto := kind == IndexAuto
	if auto {
		if live < indexAutoMinN {
			return nil
		}
		kind = IndexMTree
	}
	if live == 0 {
		return nil
	}

	metric, err := indexMetric(snap.reduced)
	if err != nil {
		return err
	}
	// Build-time pair distance over reduced vectors (two scratch
	// buffers; build is single-goroutine).
	b1, b2 := snap.reducedScratch(), snap.reducedScratch()
	pairDist := func(i, j int) float64 {
		return metric(snap.finestReduced(i, b1), snap.finestReduced(j, b2))
	}
	liveIDs := make([]int, 0, live)
	for i := 0; i < n; i++ {
		if !snap.deleted[i] {
			liveIDs = append(liveIDs, i)
		}
	}
	rng := rand.New(rand.NewSource(e.opts.Seed ^ 0x6d747265))
	redHash := persist.ReductionHash(e.red.Assignment(), e.red.ReducedDims())
	if auto && e.cachedIntrinsicLocked(n, liveIDs, pairDist, redHash, rng) > indexAutoMaxIntrinsicDim {
		return nil
	}
	var mt *mtree.Tree
	var vt *vptree.Tree
	built := false
	saved := e.savedIndex
	if saved != nil && saved.kind == kind && saved.redHash == redHash && saved.n <= n {
		switch kind {
		case IndexMTree:
			if saved.n == n {
				mt = saved.mt
			} else if grown, err := saved.mt.Clone(mtree.DistFunc(pairDist), rng); err == nil {
				// Append-only growth: extend a clone with the new live
				// ids instead of rebuilding from scratch.
				for id := saved.n; id < n; id++ {
					if !snap.deleted[id] {
						grown.Insert(id)
					}
				}
				mt = grown
			}
		case IndexVPTree:
			// The VP-tree is built in one balanced pass and has no
			// incremental insert; only an exact match is reusable.
			if saved.n == n {
				vt = saved.vt
			}
		}
	}
	if mt == nil && vt == nil {
		if kind == IndexVPTree && saved != nil && saved.kind == kind &&
			saved.redHash == redHash && saved.n < n {
			// The VP-tree has no incremental insert, so a grown corpus
			// used to force a full rebuild right here — a synchronous
			// spike, linear in n, on whichever query triggered the
			// snapshot after a single Add. Serve the scan path for this
			// snapshot instead and rebuild in the background; the
			// install invalidates the snapshot, so the index returns at
			// the next query after the rebuild lands.
			e.metrics.indexDeferred()
			if !e.indexRebuilding {
				e.indexRebuilding = true
				go e.rebuildIndex(snap, kind, metric, redHash, n)
			}
			return nil
		}
		switch kind {
		case IndexMTree:
			mt, err = mtree.New(mtree.DistFunc(pairDist), indexMTreeCapacity, rng)
			if err != nil {
				return err
			}
			for _, id := range liveIDs {
				mt.Insert(id)
			}
		case IndexVPTree:
			ids := make([]int32, len(liveIDs))
			for i, id := range liveIDs {
				ids[i] = int32(id)
			}
			vt, err = vptree.BuildIDs(ids, vptree.DistFunc(pairDist), rng)
			if err != nil {
				return err
			}
		}
		built = true
		if hook := e.testHookSyncIndexBuild; hook != nil {
			hook(kind)
		}
	}
	deletedBase := len(snap.deleted)
	if !built {
		// Reused (or incrementally grown) tree: the churn baseline is
		// the original build point, not this snapshot.
		deletedBase = saved.deletedAtBuild
	}
	e.savedIndex = &savedIndex{
		kind:           kind,
		mt:             mt,
		vt:             vt,
		n:              n,
		deletedAtBuild: deletedBase,
		redHash:        redHash,
	}
	if built {
		e.metrics.indexBuilt()
	} else {
		e.metrics.indexReused()
		// Deep churn: the reused tree drags a large soft-deleted tail
		// that traversal must skip item by item. Rebuild over live ids
		// in the background and invalidate the snapshot when done.
		churn := len(snap.deleted) - saved.deletedAtBuild
		if float64(churn) > indexChurnFraction*float64(n) && !e.indexRebuilding {
			e.indexRebuilding = true
			go e.rebuildIndex(snap, kind, metric, redHash, n)
		}
	}

	fourPoint := false
	if kind == IndexVPTree && e.opts.FourPoint {
		fourPoint = fourPointHolds(liveIDs, pairDist, rng)
	}
	ix := &engineIndex{
		kind:      kind,
		auto:      auto,
		fourPoint: fourPoint,
		mt:        mt,
		vt:        vt,
		live:      live,
		metric:    metric,
	}
	snap.index = ix
	s.Index = func(q Histogram, hint search.IndexHint) (search.IndexRanking, error) {
		if !ix.accept(hint) {
			return nil, nil
		}
		return ix.open(snap, q), nil
	}
	return nil
}

// rebuildIndex rebuilds the metric index over the live ids of a
// captured (immutable) snapshot off the engine lock, then installs the
// result if the engine still matches the state it was built from.
// Runs on its own goroutine; e.indexRebuilding serializes rebuilds.
func (e *Engine) rebuildIndex(snap *snapshot, kind string, metric func(xr, yr Histogram) float64, redHash uint64, n int) {
	failed := false
	defer func() {
		// The latch MUST be released on every exit — error, stale race
		// or panic — or deep-churn rebuilds are disabled for the
		// engine's lifetime. And this goroutine is detached: a solver
		// or tree invariant panic here would kill the whole process if
		// it escaped, so it is contained and counted like a query-path
		// panic.
		if r := recover(); r != nil {
			failed = true
		}
		if failed {
			e.metrics.indexRebuildFailed()
		}
		e.mu.Lock()
		e.indexRebuilding = false
		e.mu.Unlock()
	}()
	if hook := e.testHookIndexRebuild; hook != nil {
		hook()
	}
	b1, b2 := snap.reducedScratch(), snap.reducedScratch()
	pairDist := func(i, j int) float64 {
		return metric(snap.finestReduced(i, b1), snap.finestReduced(j, b2))
	}
	liveIDs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !snap.deleted[i] {
			liveIDs = append(liveIDs, i)
		}
	}
	rng := rand.New(rand.NewSource(0x72656275))
	var mt *mtree.Tree
	var vt *vptree.Tree
	var err error
	switch kind {
	case IndexMTree:
		if mt, err = mtree.New(mtree.DistFunc(pairDist), indexMTreeCapacity, rng); err != nil {
			failed = true
			return
		}
		for _, id := range liveIDs {
			mt.Insert(id)
		}
	case IndexVPTree:
		ids := make([]int32, len(liveIDs))
		for i, id := range liveIDs {
			ids[i] = int32(id)
		}
		if vt, err = vptree.BuildIDs(ids, vptree.DistFunc(pairDist), rng); err != nil {
			failed = true
			return
		}
	default:
		failed = true
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Install only if the engine still matches what was indexed: same
	// reduction and no items added since (deletes are fine — the fresh
	// tree simply excludes the ones deleted before the rebuild began).
	if e.red == nil || e.store.Len() != n ||
		persist.ReductionHash(e.red.Assignment(), e.red.ReducedDims()) != redHash {
		return
	}
	e.savedIndex = &savedIndex{
		kind:           kind,
		mt:             mt,
		vt:             vt,
		n:              n,
		deletedAtBuild: len(snap.deleted),
		redHash:        redHash,
	}
	e.snap = nil // next query picks up the compacted index
	e.metrics.indexBuilt()
}
