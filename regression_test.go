package emdsearch

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// TestEpsilonForCountAfterDelete is the regression test for the
// soft-delete bug in EpsilonForCount: the upper-bound distribution used
// to include deleted items, so deleting the query's nearest neighbors
// shrank the radius below what `count` live results require. The
// guarantee must hold against the live set only.
func TestEpsilonForCountAfterDelete(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 120)
	q := queries[0]

	// Delete the 40 items nearest to q — exactly the ones whose small
	// upper bounds used to drag the radius down after deletion.
	rank, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 40; d++ {
		i, _, ok := rank.Next()
		if !ok {
			t.Fatal("ranking exhausted early")
		}
		if err := eng.Delete(i); err != nil {
			t.Fatal(err)
		}
	}

	const count = 30
	eps, err := eng.EpsilonForCount(q, count)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := eng.Range(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < count {
		t.Fatalf("Range(q, EpsilonForCount(q, %d)) returned %d live results after deletions", count, len(results))
	}
	for _, r := range results {
		if eng.Deleted(r.Index) {
			t.Fatalf("deleted item %d in range results", r.Index)
		}
	}

	// The count bound must track the live population, not the indexed one.
	live := eng.Alive()
	if live != eng.Len()-40 {
		t.Fatalf("Alive() = %d, want %d", live, eng.Len()-40)
	}
	if _, err := eng.EpsilonForCount(q, live); err != nil {
		t.Fatalf("EpsilonForCount(live=%d): %v", live, err)
	}
	if _, err := eng.EpsilonForCount(q, live+1); err == nil {
		t.Fatalf("EpsilonForCount accepted count %d > live %d", live+1, live)
	}
}

// TestDistanceDistributionExcludesDeleted is the regression test for
// the soft-delete bug in DistanceDistribution: the stride sampler used
// to walk all indexed items, so deleted vectors leaked into the
// distribution. The sample must come from live items only, and
// deletions must not shrink it below min(sampleSize, live).
func TestDistanceDistributionExcludesDeleted(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 60)
	q := queries[0]

	// Delete everything but five survivors; the distribution must then
	// be exactly their five exact distances.
	survivors := []int{3, 17, 29, 41, 55}
	keep := make(map[int]bool)
	for _, i := range survivors {
		keep[i] = true
	}
	for i := 0; i < eng.Len(); i++ {
		if keep[i] {
			continue
		}
		if err := eng.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	d, err := eng.DistanceDistribution(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != len(survivors) {
		t.Fatalf("sampled %d distances, want the %d live items", d.Count(), len(survivors))
	}
	want := make([]float64, 0, len(survivors))
	for _, i := range survivors {
		want = append(want, exactDist(t, eng, q, i))
	}
	sort.Float64s(want)
	for k, w := range want {
		if got := d.KthSmallest(k + 1); math.Abs(got-w) > 1e-9 {
			t.Fatalf("distance %d: sampled %v, want %v (a deleted vector leaked in)", k, got, w)
		}
	}
}

// TestDistanceDistributionStrideAfterDelete checks the sample-size leg
// of the same bug: with 80 live items a request for 40 must still yield
// 40 — the stride adapts to the live population.
func TestDistanceDistributionStrideAfterDelete(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	q := queries[1]
	for i := 0; i < 20; i++ {
		if err := eng.Delete(i * 5); err != nil {
			t.Fatal(err)
		}
	}
	d, err := eng.DistanceDistribution(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 40 {
		t.Fatalf("sampled %d distances from 80 live items, want 40", d.Count())
	}
	// Degenerate live set: all items deleted errors out cleanly.
	for i := 0; i < eng.Len(); i++ {
		if !eng.Deleted(i) {
			if err := eng.Delete(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := eng.DistanceDistribution(q, 10); err == nil {
		t.Fatal("DistanceDistribution on an all-deleted database did not error")
	}
}

// TestKNNWithLabelConcurrentAdd is the regression test for the label
// race: KNNWithLabel used to call Engine.Label per candidate — an
// RLock in the hot loop reading the *live* store, so concurrent Adds
// could shift labels relative to the snapshot being queried. Labels
// are now captured into the snapshot; this test hammers the query from
// several goroutines while a writer keeps adding items, and is run
// under -race in CI.
func TestKNNWithLabelConcurrentAdd(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	label := eng.Label(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := queries[w%len(queries)]
			for iter := 0; iter < 60; iter++ {
				res, _, err := eng.KNNWithLabel(q, 5, label)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range res {
					// Labels are immutable once assigned, so the live
					// read is safe for verification here.
					if got := eng.Label(r.Index); got != label {
						errs <- fmt.Errorf("KNNWithLabel(%q) returned item %d labelled %q", label, r.Index, got)
						return
					}
				}
			}
		}(w)
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// Cap the ingest so the database (and with it every snapshot
		// rebuild the readers pay for) stays small; yield between adds
		// so the readers actually interleave with the mutations.
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Add("ingest", queries[i%len(queries)]); err != nil {
				errs <- err
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	<-writerDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestKNNWhereBoundedMatchesUnbounded is the regression test for the
// KNNWhere refinement routing bug: the predicate path used to refine
// through a cold unbounded solver instead of the engine's bounded
// kernel. Both kernels are exact, so the bugfix is observable two ways:
// the answers agree across configurations, and the bounded engine's
// abort/warm-start counters move on the KNNWhere path.
func TestKNNWhereBoundedMatchesUnbounded(t *testing.T) {
	const n = 120
	opts := Options{ReducedDims: 8, SampleSize: 16}
	engB, queries := buildEngine(t, opts, n)
	optsU := opts
	optsU.UnboundedRefine = true
	engU, _ := buildEngine(t, optsU, n)
	optsP := opts
	optsP.Workers = 4
	engP, _ := buildEngine(t, optsP, n)

	pred := func(i int) bool { return i%3 != 0 }
	for _, q := range queries {
		want, _, err := engU.KNNWhere(q, 7, pred)
		if err != nil {
			t.Fatal(err)
		}
		for name, eng := range map[string]*Engine{"bounded": engB, "parallel": engP} {
			got, _, err := eng.KNNWhere(q, 7, pred)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, unbounded %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%s result %d: %+v != unbounded %+v", name, i, got[i], want[i])
				}
				if !pred(got[i].Index) {
					t.Fatalf("%s returned predicate-failing item %d", name, got[i].Index)
				}
			}
		}
	}
	m := engB.Metrics()
	if m.Refinements == 0 {
		t.Fatal("KNNWhere did no refinements")
	}
	if m.RefinesAborted == 0 && m.WarmStartHits == 0 {
		t.Fatal("KNNWhere refinements show no bounded-kernel activity (cold unbounded solver regression)")
	}
}

// TestRangeIDsBoundedMatchesUnbounded is the same routing regression
// test for RangeIDs, across the sequential bounded, parallel bounded
// and unbounded configurations, checked against Range's result set.
func TestRangeIDsBoundedMatchesUnbounded(t *testing.T) {
	const n = 120
	opts := Options{ReducedDims: 8, SampleSize: 16}
	engB, queries := buildEngine(t, opts, n)
	optsU := opts
	optsU.UnboundedRefine = true
	engU, _ := buildEngine(t, optsU, n)
	optsP := opts
	optsP.Workers = 4
	engP, _ := buildEngine(t, optsP, n)

	q := queries[0]
	dd, err := engB.DistanceDistribution(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.3, 0.6} {
		eps := dd.Quantile(p)
		want, err := engU.RangeIDs(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check the oracle against Range itself.
		results, _, err := engB.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		fromRange := make([]int, 0, len(results))
		for _, r := range results {
			fromRange = append(fromRange, r.Index)
		}
		sort.Ints(fromRange)
		if len(fromRange) != len(want) {
			t.Fatalf("eps %v: Range finds %d items, unbounded RangeIDs %d", eps, len(fromRange), len(want))
		}
		for name, eng := range map[string]*Engine{"bounded": engB, "parallel": engP} {
			got, err := eng.RangeIDs(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s eps %v: %d ids, unbounded %d", name, eps, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] || got[i] != fromRange[i] {
					t.Fatalf("%s eps %v id %d: %d, unbounded %d, Range %d",
						name, eps, i, got[i], want[i], fromRange[i])
				}
			}
		}
	}
	m := engB.Metrics()
	if m.RefinesAborted == 0 && m.WarmStartHits == 0 {
		t.Fatal("RangeIDs refinements show no bounded-kernel activity (cold unbounded solver regression)")
	}
}
