package emdsearch

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"emdsearch/internal/data"
)

// buildChaosSet is buildShardPair with caller-controlled engine
// options — the chaos tests inject faults through ShardHook and
// RefineHook and need both knobs.
func buildChaosSet(t *testing.T, shards, n int, engOpts Options, setOpts ShardSetOptions) (*ShardSet, *Engine, []Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(n+5, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	setOpts.Shards = shards
	set, err := NewShardSet(ds.Cost, engOpts, setOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The reference engine never gets the fault hook: it supplies
	// ground-truth exact distances and restricted answers.
	refOpts := engOpts
	refOpts.RefineHook = nil
	single, err := NewEngine(ds.Cost, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Build(); err != nil {
		t.Fatal(err)
	}
	if err := single.Build(); err != nil {
		t.Fatal(err)
	}
	return set, single, queries
}

// assertSoundIntervals checks every interval item against the exact
// EMD: Lower <= exact <= Upper, with refined intervals tight.
func assertSoundIntervals(t *testing.T, tag string, single *Engine, q Histogram, items []AnytimeItem) {
	t.Helper()
	for _, it := range items {
		exact := exactDist(t, single, q, it.Index)
		if !intervalContainsUlps(it.Lower, it.Upper, exact, 4) {
			t.Fatalf("%s: item %d interval [%v, %v] excludes exact %v", tag, it.Index, it.Lower, it.Upper, exact)
		}
		if it.Refined && it.Lower != it.Upper {
			t.Fatalf("%s: refined item %d has loose interval [%v, %v]", tag, it.Index, it.Lower, it.Upper)
		}
	}
}

// restrictedKNN is the ground truth for a query that lost some shards:
// the single engine's KNN over only the surviving shards' items.
func restrictedKNN(t *testing.T, single *Engine, q Histogram, k, shards int, failed map[int]bool) []Result {
	t.Helper()
	res, _, err := single.KNNWhere(q, k, func(gid int) bool { return !failed[gid%shards] })
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardChaosErroringShard: one shard fails every KNN dispatch with
// a hard error. The answer must degrade with exact coverage accounting
// and be byte-identical to the single engine restricted to the
// surviving shards.
func TestShardChaosErroringShard(t *testing.T) {
	const shards, bad = 3, 1
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == bad {
			return errors.New("injected shard fault")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 48, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, QuarantineAfter: 100})
	q, k := queries[0], 5
	ans, err := set.KNN(context.Background(), q, k)
	if err != nil {
		t.Fatalf("partial failure must not fail the query: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("answer with a failed shard not marked Degraded")
	}
	cov := ans.Coverage
	if cov.ShardsFailed != 1 || len(cov.FailedShards) != 1 || cov.FailedShards[0] != bad ||
		cov.ShardsOK != shards-1 || cov.ShardsDegraded != 0 {
		t.Fatalf("coverage = %+v", cov)
	}
	if want := shardLen(set.Len(), shards, bad); cov.ItemsUncovered != want {
		t.Fatalf("ItemsUncovered = %d, want failed shard's %d items", cov.ItemsUncovered, want)
	}
	sameResultBytes(t, "erroring", ans.Results, restrictedKNN(t, single, q, k, shards, map[int]bool{bad: true}))
	if len(ans.Anytime) == 0 || len(ans.Anytime) > k {
		t.Fatalf("%d anytime items for k=%d degraded answer", len(ans.Anytime), k)
	}
	assertSoundIntervals(t, "erroring", single, q, ans.Anytime)
	if ans.Outcomes[bad].Err == "" || ans.Outcomes[bad].Tries != 1 {
		t.Fatalf("bad shard outcome = %+v", ans.Outcomes[bad])
	}

	// Range over the same injected fault: surviving shards' certified
	// union, identical to the restricted single-engine answer.
	probe, _, err := single.KNN(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe[len(probe)-1].Dist
	rans, err := set.Range(context.Background(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !rans.Degraded || rans.Coverage.ShardsFailed != 1 {
		t.Fatalf("range coverage = %+v degraded=%v", rans.Coverage, rans.Degraded)
	}
	full, _, err := single.Range(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for _, r := range full {
		if r.Index%shards != bad {
			want = append(want, r)
		}
	}
	sameResultBytes(t, "range-erroring", rans.Results, want)
}

// TestShardChaosPanickingShard: a panic inside one shard's dispatch is
// contained to that shard's outcome; the query serves from the rest.
func TestShardChaosPanickingShard(t *testing.T) {
	const shards, bad = 3, 2
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == bad {
			panic("injected shard panic")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, QuarantineAfter: 100})
	q, k := queries[1], 4
	ans, err := set.KNN(context.Background(), q, k)
	if err != nil {
		t.Fatalf("contained panic must not fail the query: %v", err)
	}
	if !ans.Degraded || ans.Coverage.ShardsFailed != 1 {
		t.Fatalf("degraded=%v coverage=%+v", ans.Degraded, ans.Coverage)
	}
	if !strings.Contains(ans.Outcomes[bad].Err, "panicked") {
		t.Fatalf("outcome error %q does not report the panic", ans.Outcomes[bad].Err)
	}
	sameResultBytes(t, "panicking", ans.Results, restrictedKNN(t, single, q, k, shards, map[int]bool{bad: true}))
	if h := set.Health(bad); h.Failures != 1 || h.LastError == "" {
		t.Fatalf("panic not recorded as shard fault: %+v", h)
	}
}

// TestShardChaosDelayedShard: one shard hangs until its context is
// cancelled. The query must return within its own deadline (plus
// scheduling slack), report the hung shard as failed coverage, and not
// quarantine it — the global budget expiring is not the shard's fault.
func TestShardChaosDelayedShard(t *testing.T) {
	const shards, slow = 3, 1
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == slow {
			<-ctx.Done() // a hung shard: never answers, stops when told
			return ctx.Err()
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook})
	q, k := queries[2], 4
	deadline := 80 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	ans, err := set.KNN(ctx, q, k)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hung shard must not fail the query: %v", err)
	}
	// The acceptance bound: never block past the deadline by more than
	// one retry budget (none here — deadline errors are not retried);
	// the slack absorbs scheduler latency under -race.
	if elapsed > deadline+400*time.Millisecond {
		t.Fatalf("query took %v against a %v deadline", elapsed, deadline)
	}
	if !ans.Degraded || ans.Coverage.ShardsFailed != 1 || ans.Coverage.FailedShards[0] != slow {
		t.Fatalf("degraded=%v coverage=%+v", ans.Degraded, ans.Coverage)
	}
	sameResultBytes(t, "delayed", ans.Results, restrictedKNN(t, single, q, k, shards, map[int]bool{slow: true}))
	assertSoundIntervals(t, "delayed", single, q, ans.Anytime)
	if h := set.Health(slow); h.Failures != 0 || h.State != "closed" {
		t.Fatalf("deadline expiry quarantined a healthy-but-slow shard: %+v", h)
	}
}

// TestShardChaosDegradedShards: every shard's refinement is slowed
// until the query deadline expires mid-search. All shards then serve
// certified partial answers: nil error, Degraded, sound intervals,
// every confirmed result exact.
func TestShardChaosDegradedShards(t *testing.T) {
	const shards = 3
	engOpts := Options{ReducedDims: 4, Seed: 1,
		RefineHook: func(int) { time.Sleep(5 * time.Millisecond) }}
	set, single, queries := buildChaosSet(t, shards, 48, engOpts, ShardSetOptions{})
	q, k := queries[3], 8
	deadline := 25 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	ans, err := set.KNN(ctx, q, k)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline-degraded shards must not fail the query: %v", err)
	}
	if elapsed > deadline+400*time.Millisecond {
		t.Fatalf("query took %v against a %v deadline", elapsed, deadline)
	}
	if !ans.Degraded {
		t.Fatal("mid-search deadline did not degrade the answer")
	}
	cov := ans.Coverage
	if cov.ShardsFailed != 0 || cov.ShardsDegraded == 0 ||
		cov.ShardsOK+cov.ShardsDegraded != shards {
		t.Fatalf("coverage = %+v, want only OK/degraded shards", cov)
	}
	if cov.ItemsUncovered <= 0 || cov.ItemsUncovered >= cov.ItemsTotal {
		t.Fatalf("ItemsUncovered = %d of %d, want a proper partial cut", cov.ItemsUncovered, cov.ItemsTotal)
	}
	for i, r := range ans.Results {
		if exact := exactDist(t, single, q, r.Index); math.Float64bits(r.Dist) != math.Float64bits(exact) {
			t.Fatalf("confirmed result %d: dist %v, exact %v", r.Index, r.Dist, exact)
		}
		if i > 0 && (ans.Results[i-1].Dist > r.Dist ||
			(ans.Results[i-1].Dist == r.Dist && ans.Results[i-1].Index > r.Index)) {
			t.Fatalf("results out of (Dist, Index) order at %d: %v", i, ans.Results)
		}
	}
	if len(ans.Anytime) == 0 {
		t.Fatal("degraded answer has no interval view")
	}
	assertSoundIntervals(t, "degraded", single, q, ans.Anytime)
	// Slow-but-sound shards must not be punished.
	for i := 0; i < shards; i++ {
		if h := set.Health(i); h.Failures != 0 {
			t.Fatalf("shard %d faulted for a deadline degrade: %+v", i, h)
		}
	}
}

// TestShardChaosOverloadRetry: a shard that sheds its first attempt
// with ErrOverloaded is retried after the server-supplied RetryAfter
// and the query still returns a full healthy answer.
func TestShardChaosOverloadRetry(t *testing.T) {
	const shards = 3
	retryAfter := 10 * time.Millisecond
	var calls atomic.Int64
	hook := func(ctx context.Context, shard, try int, op string) error {
		calls.Add(1)
		if shard == 0 && try == 0 {
			return &OverloadError{Reason: "injected shed", RetryAfter: retryAfter}
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, Seed: 7})
	q, k := queries[0], 4
	start := time.Now()
	ans, err := set.KNN(context.Background(), q, k)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded {
		t.Fatalf("retried overload degraded the answer: %+v", ans.Coverage)
	}
	assertFullCoverage(t, "overload", ans.Coverage, shards, set.Len())
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "overload", ans.Results, want)
	o := ans.Outcomes[0]
	if o.Retries != 1 || o.Tries != 2 || o.Err != "" {
		t.Fatalf("shed shard outcome = %+v, want one clean retry", o)
	}
	if elapsed < retryAfter {
		t.Fatalf("query finished in %v, before the %v RetryAfter floor", elapsed, retryAfter)
	}
	if h := set.Health(0); h.Failures != 0 {
		t.Fatalf("overload shedding counted as shard fault: %+v", h)
	}
	if m := set.Metrics(); m.Retries != 1 {
		t.Fatalf("set metrics retries = %d, want 1", m.Retries)
	}
}

// TestShardChaosQuarantineFlapping: a flapping shard is quarantined
// after QuarantineAfter consecutive faults, skipped (not dispatched)
// while quarantined, probed after the cooldown, and re-admitted once
// the probe succeeds.
func TestShardChaosQuarantineFlapping(t *testing.T) {
	const shards, bad = 3, 1
	cooldown := 50 * time.Millisecond
	var failing atomic.Bool
	failing.Store(true)
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == bad && failing.Load() {
			return errors.New("injected flap")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, RetryMax: 1, QuarantineAfter: 2, QuarantineCooldown: cooldown})
	ctx, q, k := context.Background(), queries[0], 4

	// Two faulting queries reach the threshold.
	for i := 0; i < 2; i++ {
		ans, err := set.KNN(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Degraded || ans.Outcomes[bad].Err == "" || ans.Outcomes[bad].Skipped {
			t.Fatalf("faulting query %d: %+v", i, ans.Outcomes[bad])
		}
	}
	if h := set.Health(bad); h.State != "open" || h.Quarantines != 1 || h.Failures != 2 {
		t.Fatalf("after threshold: %+v", h)
	}

	// Quarantined: the dispatch is suppressed, coverage still accounts
	// the shard as failed, the rest of the answer stays correct.
	ans, err := set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	o := ans.Outcomes[bad]
	if !o.Skipped || o.Tries != 0 || !strings.Contains(o.Err, "quarantined") {
		t.Fatalf("quarantined outcome = %+v", o)
	}
	if ans.Coverage.ShardsFailed != 1 || ans.Coverage.FailedShards[0] != bad {
		t.Fatalf("quarantined coverage = %+v", ans.Coverage)
	}
	sameResultBytes(t, "quarantined", ans.Results, restrictedKNN(t, single, q, k, shards, map[int]bool{bad: true}))
	if h := set.Health(bad); h.Skips < 1 {
		t.Fatalf("skip not counted: %+v", h)
	}

	// Heal, wait out the cooldown: the probe query is re-admitted,
	// succeeds, and closes the breaker.
	failing.Store(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	ans, err = set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded || ans.Outcomes[bad].Skipped {
		t.Fatalf("probe after heal: degraded=%v outcome=%+v", ans.Degraded, ans.Outcomes[bad])
	}
	assertFullCoverage(t, "readmitted", ans.Coverage, shards, set.Len())
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "readmitted", ans.Results, want)
	if h := set.Health(bad); h.State != "closed" {
		t.Fatalf("breaker did not close after successful probe: %+v", h)
	}
	if m := set.Metrics(); m.QuarantineSkips < 1 || m.ShardFailures < 2 {
		t.Fatalf("set metrics = %+v", m)
	}
}

// TestShardChaosHedgeWins: a straggling first attempt is hedged after
// HedgeAfter; the hedge answers, the straggler is cancelled, and the
// answer is a full healthy one.
func TestShardChaosHedgeWins(t *testing.T) {
	const shards, slow = 3, 1
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == slow && try == 0 {
			<-ctx.Done() // straggler: answers only when cancelled
			return ctx.Err()
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, HedgeAfter: 5 * time.Millisecond, RetryMax: 2})
	q, k := queries[1], 4
	ans, err := set.KNN(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	o := ans.Outcomes[slow]
	if !o.Hedged || !o.HedgeWon || o.Tries != 2 || o.Err != "" {
		t.Fatalf("straggler outcome = %+v, want a winning hedge", o)
	}
	if ans.Degraded {
		t.Fatalf("hedged query degraded: %+v", ans.Coverage)
	}
	assertFullCoverage(t, "hedge", ans.Coverage, shards, set.Len())
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "hedge", ans.Results, want)
	// Lower bounds, not equality: under scheduler load a healthy
	// shard's primary can also outlive HedgeAfter and hedge.
	if m := set.Metrics(); m.Hedges < 1 || m.HedgeWins < 1 {
		t.Fatalf("set metrics hedges=%d hedgeWins=%d, want >= 1 each", m.Hedges, m.HedgeWins)
	}
}

// TestShardChaosHedgeMidSearch: the hedge fires while the primary
// attempt is still about to search, so BOTH attempts run the same
// shard search concurrently and offer identical (global id, dist)
// pairs to the shared k-NN set — the straggler keeps offering until
// the winner's completion cancels it. Duplicate offers must collapse
// to one top-k slot each; were they to occupy two, the published
// threshold would drop below the true global k-th distance and the
// healthy shards would prune true neighbors, silently corrupting a
// non-Degraded answer.
func TestShardChaosHedgeMidSearch(t *testing.T) {
	const shards, slow = 3, 1
	// The straggler's hook blocks (deliberately ignoring ctx) until the
	// hedge's hook has run, so primary and hedge enter the engine
	// search together; slowed refinements keep both mid-search long
	// enough that each confirms — and offers — overlapping neighbors.
	primaryGate := make(chan struct{})
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard != slow {
			return nil
		}
		if try == 0 {
			select {
			case <-primaryGate:
				return nil
			case <-time.After(5 * time.Second):
				return errors.New("hedge never launched")
			}
		}
		close(primaryGate)
		return nil
	}
	engOpts := Options{ReducedDims: 4, Seed: 1,
		RefineHook: func(int) { time.Sleep(time.Millisecond) }}
	set, single, queries := buildChaosSet(t, shards, 36, engOpts,
		ShardSetOptions{ShardHook: hook, HedgeAfter: time.Millisecond, RetryMax: 2,
			Gate: GateOptions{MaxConcurrent: 4}})
	q, k := queries[2], 6
	ans, err := set.KNN(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	o := ans.Outcomes[slow]
	if !o.Hedged || o.Tries != 2 || o.Err != "" {
		t.Fatalf("straggler outcome = %+v, want a clean hedged dispatch", o)
	}
	if ans.Degraded {
		t.Fatalf("hedged query degraded: %+v", ans.Coverage)
	}
	assertFullCoverage(t, "hedge-mid-search", ans.Coverage, shards, set.Len())
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "hedge-mid-search", ans.Results, want)
}

// TestShardChaosAllShardsFail: with every shard failing, the query
// returns a non-nil error and a fully-uncovered certificate.
func TestShardChaosAllShardsFail(t *testing.T) {
	const shards = 3
	hook := func(ctx context.Context, shard, try int, op string) error {
		return errors.New("injected total outage")
	}
	set, _, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, QuarantineAfter: 100})
	ans, err := set.KNN(context.Background(), queries[0], 4)
	if err == nil || !strings.Contains(err.Error(), "total outage") {
		t.Fatalf("total outage error = %v", err)
	}
	if ans == nil || !ans.Degraded {
		t.Fatal("total outage must still return a degraded certificate")
	}
	cov := ans.Coverage
	if cov.ShardsFailed != shards || cov.ItemsUncovered != cov.ItemsTotal || cov.ItemsTotal != set.Len() {
		t.Fatalf("coverage = %+v, want everything uncovered", cov)
	}
	if len(ans.Results) != 0 {
		t.Fatalf("results from a total outage: %v", ans.Results)
	}

	rans, rerr := set.Range(context.Background(), queries[0], 1)
	if rerr == nil || rans == nil || !rans.Degraded || rans.Coverage.ShardsFailed != shards {
		t.Fatalf("range total outage: err=%v ans=%+v", rerr, rans)
	}
}

// TestShardChaosBatchIsolation: per-query fault injection inside a
// batch stays confined to its query — healthy entries remain
// byte-identical to the single engine.
func TestShardChaosBatchIsolation(t *testing.T) {
	const shards = 3
	// Serial queries so the hook can key the fault off a counter: fail
	// shard 2 for the middle query only.
	var qi atomic.Int64
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == 2 && qi.Load() == 1 {
			return errors.New("injected batch fault")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 36, Options{ReducedDims: 4, Seed: 1},
		ShardSetOptions{ShardHook: hook, QuarantineAfter: 100})
	out := make([]*ShardAnswer, len(queries))
	for i, q := range queries {
		qi.Store(int64(i))
		ans, err := set.KNN(context.Background(), q, 4)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = ans
	}
	for i, ans := range out {
		if i == 1 {
			if !ans.Degraded || ans.Coverage.ShardsFailed != 1 {
				t.Fatalf("faulted query: degraded=%v coverage=%+v", ans.Degraded, ans.Coverage)
			}
			sameResultBytes(t, "batch-faulted", ans.Results,
				restrictedKNN(t, single, queries[i], 4, shards, map[int]bool{2: true}))
			continue
		}
		if ans.Degraded {
			t.Fatalf("healthy query %d degraded: %+v", i, ans.Coverage)
		}
		want, _, err := single.KNN(queries[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		sameResultBytes(t, "batch-healthy", ans.Results, want)
	}
}
