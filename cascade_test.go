package emdsearch

import (
	"sort"
	"testing"
	"testing/quick"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
)

// The cascade-plan bit-identity suite. A planned chain redistributes
// filter work across levels but every level lower-bounds the next, so
// candidate order by the running-max key, refinement counts, and every
// returned distance must be byte-identical across plans — the planner
// may only ever change *where* time is spent, never *what* is
// answered.

// cascadeVariant is one engine configuration (plus an optional chain
// adopted after Build) whose answers must match the single-level
// reference bit for bit.
type cascadeVariant struct {
	name  string
	opts  Options
	adopt []int // adoptChain target for AutoCascade variants
}

func cascadeVariants() []cascadeVariant {
	base := Options{ReducedDims: 8, SampleSize: 10}
	hier2 := Options{Hierarchy: []int{8, 2}, SampleSize: 10}
	hier3 := Options{Hierarchy: []int{8, 4, 2}, SampleSize: 10}
	auto := Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}
	hier2mt := hier2
	hier2mt.IndexKind = IndexMTree
	hier3vp := hier3
	hier3vp.IndexKind = IndexVPTree
	autovp := auto
	autovp.IndexKind = IndexVPTree
	return []cascadeVariant{
		{"single-level", base, nil},
		{"hier-2level", hier2, nil},
		{"hier-3level", hier3, nil},
		{"auto-2level", auto, []int{2, 8}},
		{"auto-3level", auto, []int{2, 4, 8}},
		// Cascades decline the metric index (the tree orders by the
		// finest level only), so these must quietly serve the scan chain
		// and still answer identically.
		{"hier-2level+mtree", hier2mt, nil},
		{"hier-3level+vptree", hier3vp, nil},
		{"auto-3level+vptree", autovp, []int{2, 4, 8}},
	}
}

func buildCascadeVariant(t *testing.T, v cascadeVariant, n int) (*Engine, []Histogram) {
	t.Helper()
	eng, queries := buildEngine(t, v.opts, n)
	if v.adopt != nil {
		if err := eng.adoptChain(v.adopt); err != nil {
			t.Fatalf("%s: adoptChain(%v): %v", v.name, v.adopt, err)
		}
	}
	for _, id := range []int{7, 23} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	return eng, queries
}

// TestCascadePlanBitIdentity extends the cross-layout suite to cascade
// plans: full-ranking Float64bits equality and identical Refinements
// counts across fixed hierarchies, adopted auto plans, and index-kind
// combinations. Every variant shares the same finest d'=8 reduction
// (depth-only changes reuse it by construction), so even the exact-EMD
// work counters must agree — the coarser levels may only pre-prune
// what the finest bound would have pruned anyway.
func TestCascadePlanBitIdentity(t *testing.T) {
	const n, k = 120, 7
	variants := cascadeVariants()
	engines := make([]*Engine, len(variants))
	var queries []Histogram
	for i, v := range variants {
		engines[i], queries = buildCascadeVariant(t, v, n)
	}
	ref := engines[0]

	for qi, q := range queries {
		wantKNN, wantStats, err := ref.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := ref.EpsilonForCount(q, 15)
		if err != nil {
			t.Fatal(err)
		}
		wantRange, _, err := ref.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := fullRanking(t, ref, q)
		if len(wantRank) != ref.Alive() {
			t.Fatalf("reference ranking covers %d items, want %d", len(wantRank), ref.Alive())
		}

		for vi := 1; vi < len(variants); vi++ {
			name, eng := variants[vi].name, engines[vi]
			got, stats, err := eng.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name, "KNN", got, wantKNN)
			// All variants share the finest reduction, and none of these
			// queries runs an index traversal (cascades decline it), so
			// the exact-refinement count is part of the contract.
			if stats.IndexUsed {
				t.Fatalf("%s: query %d used an index under a cascade", name, qi)
			}
			if stats.Refinements != wantStats.Refinements {
				t.Errorf("%s: query %d refined %d items, reference refined %d",
					name, qi, stats.Refinements, wantStats.Refinements)
			}

			gotRange, _, err := eng.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name, "Range", gotRange, wantRange)
			sameResults(t, name, "Rank", fullRanking(t, eng, q), wantRank)
		}
	}
}

// TestAdoptedChainLowerBoundQuick is the randomized chaining property
// over *planned* chains: for random ascending level subsets adopted
// through the AutoCascade machinery, every planned level's distance
// must lower-bound the next finer level, the finest must lower-bound
// the exact EMD, and KNN must equal brute force. This is the invariant
// that lets the planner swap chains without ever changing an answer.
func TestAdoptedChainLowerBoundQuick(t *testing.T) {
	pool := []int{2, 3, 5, 8, 12}
	property := func(seed int64, mask uint8) bool {
		var levels []int
		for i, m := range pool {
			if mask&(1<<uint(i)) != 0 {
				levels = append(levels, m)
			}
		}
		if len(levels) == 0 {
			levels = []int{8}
		}
		ds, err := data.MusicSpectra(30, 16, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		vecs, queries, err := ds.Split(2)
		if err != nil {
			t.Log(err)
			return false
		}
		eng, err := NewEngine(ds.Cost, Options{ReducedDims: 8, AutoCascade: true, SampleSize: 10, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		for i, h := range vecs {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				t.Log(err)
				return false
			}
		}
		if err := eng.Build(); err != nil {
			t.Log(err)
			return false
		}
		if err := eng.adoptChain(levels); err != nil {
			t.Logf("adoptChain(%v): %v", levels, err)
			return false
		}
		snap, err := eng.snapshot()
		if err != nil {
			t.Log(err)
			return false
		}
		// snap.cascade is coarsest first and holds [red] alone for
		// single-level plans.
		if len(snap.cascade) != len(levels) {
			t.Logf("seed %d levels %v: cascade has %d levels, want %d", seed, levels, len(snap.cascade), len(levels))
			return false
		}
		const tol = 1e-9
		chain := snap.cascade
		for _, q := range queries {
			for vi, v := range vecs {
				prev := -1.0
				for li, lr := range chain {
					lred, err := core.NewReducedEMD(eng.cost, lr, lr)
					if err != nil {
						t.Log(err)
						return false
					}
					d := lred.DistanceReduced(lr.Apply(q), lr.Apply(v))
					if d < prev-tol {
						t.Logf("seed %d levels %v: level %d dist %g below coarser level %g (item %d)",
							seed, levels, li, d, prev, vi)
						return false
					}
					prev = d
				}
				exact, err := eng.Distance(q, vi)
				if err != nil {
					t.Log(err)
					return false
				}
				if prev > exact+tol {
					t.Logf("seed %d levels %v: finest level %g exceeds exact EMD %g (item %d)",
						seed, levels, prev, exact, vi)
					return false
				}
			}
		}
		for _, q := range queries {
			got, _, err := eng.KNN(q, 4)
			if err != nil {
				t.Log(err)
				return false
			}
			want := make([]Result, len(vecs))
			for i := range vecs {
				d, err := eng.Distance(q, i)
				if err != nil {
					t.Log(err)
					return false
				}
				want[i] = Result{Index: i, Dist: d}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Dist != want[j].Dist {
					return want[i].Dist < want[j].Dist
				}
				return want[i].Index < want[j].Index
			})
			for i := range got {
				if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
					t.Logf("seed %d levels %v: KNN result %d = %+v, brute force %+v",
						seed, levels, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestAutoCascadeValidation(t *testing.T) {
	cost := LinearCost(8)
	if _, err := NewEngine(cost, Options{AutoCascade: true}); err == nil {
		t.Error("accepted AutoCascade without ReducedDims")
	}
	if _, err := NewEngine(cost, Options{AutoCascade: true, ReducedDims: 4, Hierarchy: []int{4, 2}}); err == nil {
		t.Error("accepted AutoCascade with a fixed Hierarchy")
	}
	if _, err := NewEngine(cost, Options{AutoCascade: true, ReducedDims: 4, AsymmetricQuery: true}); err == nil {
		t.Error("accepted AutoCascade with AsymmetricQuery")
	}
	eng, err := NewEngine(cost, Options{ReducedDims: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Replan(); err == nil {
		t.Error("Replan accepted an engine without AutoCascade")
	}
}

// TestReplanKeepsAnswersIdentical is the planner's end-to-end safety
// contract: whatever chain a forced planning pass adopts (or keeps),
// every answer after the swap is byte-identical to before it, the
// active plan stays a valid ascending chain, and the metrics report
// it.
func TestReplanKeepsAnswersIdentical(t *testing.T) {
	const n, k = 100, 6
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}, n)

	if plan := eng.CascadePlan(); len(plan) != 1 || plan[0] != 8 {
		t.Fatalf("fresh AutoCascade plan = %v, want [8]", plan)
	}
	before := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = res
	}
	if _, err := eng.Replan(); err != nil {
		t.Fatalf("Replan: %v", err)
	}
	plan := eng.CascadePlan()
	if len(plan) == 0 {
		t.Fatal("no active plan after Replan")
	}
	for i := 1; i < len(plan); i++ {
		if plan[i] <= plan[i-1] {
			t.Fatalf("plan %v is not strictly ascending", plan)
		}
	}
	m := eng.Metrics()
	if len(m.CascadePlan) == 0 || m.CascadePlanID == 0 {
		t.Fatalf("metrics carry no plan: plan=%v id=%d", m.CascadePlan, m.CascadePlanID)
	}
	for i, q := range queries {
		res, _, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-replan", "KNN", res, before[i])
	}

	// An adopted deeper chain is a real plan change: the replan counter
	// moves and answers still match.
	if err := eng.adoptChain([]int{2, 8}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().CascadeReplans; got < 1 {
		t.Errorf("CascadeReplans = %d after adoptChain, want >= 1", got)
	}
	for i, q := range queries {
		res, _, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "post-adopt", "KNN", res, before[i])
	}
}
