package emdsearch

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// cancelledCtx returns a context that is already expired.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestKNNCtxBackgroundIdentity checks the no-deadline contract: with
// context.Background() the ctx variant takes the same code path as KNN
// and returns bit-identical results and counters.
func TestKNNCtxBackgroundIdentity(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	for _, q := range queries {
		want, wantStats, err := eng.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.KNNCtx(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("KNNCtx(Background): %v", err)
		}
		if ans.Degraded || ans.Anytime != nil || ans.Unpulled != 0 {
			t.Fatalf("Background query degraded: %+v", ans)
		}
		if len(ans.Results) != len(want) {
			t.Fatalf("KNNCtx returned %d results, KNN %d", len(ans.Results), len(want))
		}
		for i := range want {
			if ans.Results[i].Index != want[i].Index || ans.Results[i].Dist != want[i].Dist {
				t.Fatalf("result %d: ctx %+v != plain %+v", i, ans.Results[i], want[i])
			}
		}
		if ans.Stats.Pulled != wantStats.Pulled || ans.Stats.Refinements != wantStats.Refinements {
			t.Fatalf("stats diverge: ctx pulled=%d refines=%d, plain pulled=%d refines=%d",
				ans.Stats.Pulled, ans.Stats.Refinements, wantStats.Pulled, wantStats.Refinements)
		}
		if ans.Stats.Cancelled {
			t.Fatal("Background query marked Cancelled")
		}
	}
}

// TestKNNCtxAlreadyCancelled checks the fast path: a context that is
// expired on entry returns immediately with an empty but sound degraded
// answer, ctx's error, and the cancellation metrics bumped.
func TestKNNCtxAlreadyCancelled(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 80)
	before := eng.Metrics()
	ans, err := eng.KNNCtx(cancelledCtx(), queries[0], 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ans == nil {
		t.Fatal("cancelled query returned a nil answer; the degraded answer must accompany the error")
	}
	if !ans.Degraded || !ans.Stats.Cancelled {
		t.Fatalf("Degraded=%v Stats.Cancelled=%v, want both true", ans.Degraded, ans.Stats.Cancelled)
	}
	if len(ans.Results) != 0 || len(ans.Anytime) != 0 {
		t.Fatalf("entry-cancelled query produced results: %+v", ans)
	}
	if ans.Unpulled != eng.Len() {
		t.Fatalf("Unpulled = %d, want the whole database %d", ans.Unpulled, eng.Len())
	}
	after := eng.Metrics()
	if after.QueriesCancelled != before.QueriesCancelled+1 {
		t.Fatalf("QueriesCancelled %d -> %d, want +1", before.QueriesCancelled, after.QueriesCancelled)
	}
	if after.QueriesDeadlineDegraded != before.QueriesDeadlineDegraded+1 {
		t.Fatalf("QueriesDeadlineDegraded %d -> %d, want +1",
			before.QueriesDeadlineDegraded, after.QueriesDeadlineDegraded)
	}
}

// checkAnytimeSoundness verifies the certificate of a degraded k-NN
// answer against exhaustively computed exact distances: every interval
// contains its item's exact EMD, every confirmed result is exact, and
// the bookkeeping adds up.
func checkAnytimeSoundness(t *testing.T, eng *Engine, q Histogram, ans *KNNAnswer) {
	t.Helper()
	const tol = 1e-9
	for _, it := range ans.Anytime {
		if it.Lower > it.Upper+tol {
			t.Fatalf("item %d: inverted interval [%v, %v]", it.Index, it.Lower, it.Upper)
		}
		exact := exactDist(t, eng, q, it.Index)
		if exact < it.Lower-tol || exact > it.Upper+tol {
			t.Fatalf("item %d: exact %v outside certified [%v, %v]", it.Index, exact, it.Lower, it.Upper)
		}
		if it.Refined && it.Lower != it.Upper {
			t.Fatalf("item %d: Refined but interval [%v, %v] not tight", it.Index, it.Lower, it.Upper)
		}
	}
	for _, r := range ans.Results {
		exact := exactDist(t, eng, q, r.Index)
		if math.Abs(r.Dist-exact) > tol {
			t.Fatalf("confirmed result %d: dist %v != exact %v", r.Index, r.Dist, exact)
		}
	}
	if ans.Unpulled != eng.Len()-ans.Stats.Pulled {
		t.Fatalf("Unpulled = %d, want len %d - pulled %d", ans.Unpulled, eng.Len(), ans.Stats.Pulled)
	}
}

// TestKNNCtxAnytimeSoundness runs queries under a spread of tight
// deadlines. Each outcome must be sound: degraded answers carry
// certified intervals containing the exact distances; completed answers
// equal the undeadlined result exactly.
func TestKNNCtxAnytimeSoundness(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 200)
	q := queries[0]
	want, _, err := eng.KNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	timeouts := []time.Duration{
		0, // expired on entry: deterministic degradation
		50 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	}
	for _, d := range timeouts {
		for rep := 0; rep < 3; rep++ {
			ctx, cancel := context.WithTimeout(context.Background(), d)
			ans, err := eng.KNNCtx(ctx, q, 10)
			cancel()
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Fatalf("timeout %v: unexpected error %v", d, err)
				}
				if ans == nil || !ans.Degraded {
					t.Fatalf("timeout %v: error without a degraded answer", d)
				}
				degraded++
				checkAnytimeSoundness(t, eng, q, ans)
				continue
			}
			if ans.Degraded {
				t.Fatalf("timeout %v: Degraded answer without an error", d)
			}
			for i := range want {
				if ans.Results[i].Index != want[i].Index || ans.Results[i].Dist != want[i].Dist {
					t.Fatalf("timeout %v: completed result %d diverges from exact answer", d, i)
				}
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no query degraded under any deadline (the 0-timeout trial must)")
	}
	t.Logf("%d/%d queries degraded", degraded, 3*len(timeouts))
}

// TestKNNCtxParallelAnytimeSoundness is the Workers>0 form of the
// soundness test: cancellation must drain the refinement pool and the
// pending candidates collected from in-flight workers must still carry
// sound intervals.
func TestKNNCtxParallelAnytimeSoundness(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16, Workers: 4}, 200)
	q := queries[1]
	degraded := 0
	for _, d := range []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		for rep := 0; rep < 3; rep++ {
			ctx, cancel := context.WithTimeout(context.Background(), d)
			ans, err := eng.KNNCtx(ctx, q, 10)
			cancel()
			if err != nil {
				if ans == nil || !ans.Degraded {
					t.Fatalf("timeout %v: error without a degraded answer", d)
				}
				degraded++
				checkAnytimeSoundness(t, eng, q, ans)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no parallel query degraded under any deadline")
	}
}

// TestKNNCtxMidQueryCancelReturnsPromptly cancels a running query from
// another goroutine and requires the call to return quickly — the
// cancel flag is polled per candidate and per simplex pivot, so even
// mid-solve the query must unwind far faster than it would take to
// finish. The answer, whether completed or degraded, must be sound.
func TestKNNCtxMidQueryCancelReturnsPromptly(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 250)
	q := queries[2]
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		ans *KNNAnswer
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		ans, err := eng.KNNCtx(ctx, q, 10)
		done <- outcome{ans, err}
	}()
	time.Sleep(200 * time.Microsecond)
	cancel()
	t0 := time.Now()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
	if lat := time.Since(t0); lat > time.Second {
		t.Fatalf("query took %v to honor cancellation", lat)
	}
	if out.err != nil {
		if out.ans == nil || !out.ans.Degraded {
			t.Fatal("cancelled query returned error without degraded answer")
		}
		checkAnytimeSoundness(t, eng, q, out.ans)
	}
}

// TestRangeCtx covers the range-query contract: Background identity,
// immediate return on an expired context, and individually certified
// partial results on mid-query expiry.
func TestRangeCtx(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	q := queries[0]
	dd, err := eng.DistanceDistribution(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	eps := dd.Quantile(0.3)

	want, _, err := eng.Range(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := eng.RangeCtx(context.Background(), q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cancelled {
		t.Fatal("Background range marked Cancelled")
	}
	if len(got) != len(want) {
		t.Fatalf("RangeCtx(Background) returned %d results, Range %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: ctx %+v != plain %+v", i, got[i], want[i])
		}
	}

	_, stats, err = eng.RangeCtx(cancelledCtx(), q, eps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired range: err = %v, want context.Canceled", err)
	}
	if stats == nil || !stats.Cancelled {
		t.Fatal("expired range did not report Cancelled stats")
	}

	const tol = 1e-9
	for _, d := range []time.Duration{100 * time.Microsecond, time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		partial, st, err := eng.RangeCtx(ctx, q, eps)
		cancel()
		if err == nil {
			continue // finished in time; identity covered above
		}
		if st == nil || !st.Cancelled {
			t.Fatalf("timeout %v: error without Cancelled stats", d)
		}
		for _, r := range partial {
			if r.Dist > eps+tol {
				t.Fatalf("partial result %d at %v exceeds eps %v", r.Index, r.Dist, eps)
			}
			if exact := exactDist(t, eng, q, r.Index); math.Abs(r.Dist-exact) > tol {
				t.Fatalf("partial result %d: dist %v != exact %v", r.Index, r.Dist, exact)
			}
		}
	}
}

// TestRankCtx checks that a cancelled incremental ranking stops
// yielding, that everything yielded before the cancellation is exact
// and in true EMD order, and that Background pulls match Rank's.
func TestRankCtx(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	q := queries[0]

	plain, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := eng.RankCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for pull := 0; pull < 5; pull++ {
		wi, wd, wok := plain.Next()
		gi, gd, gok := stream.Next()
		if !wok || !gok {
			t.Fatalf("pull %d: exhausted early (plain=%v ctx=%v)", pull, wok, gok)
		}
		if gi != wi || gd != wd {
			t.Fatalf("pull %d: ctx (%d, %v) != plain (%d, %v)", pull, gi, gd, wi, wd)
		}
		if gd < prev {
			t.Fatalf("pull %d: out of order (%v after %v)", pull, gd, prev)
		}
		prev = gd
		if exact := exactDist(t, eng, q, gi); math.Abs(gd-exact) > 1e-9 {
			t.Fatalf("pull %d: yielded %v != exact %v", pull, gd, exact)
		}
	}
	cancel()
	if _, _, ok := stream.Next(); ok {
		t.Fatal("Next yielded after cancellation")
	}
	if _, _, ok := stream.Next(); ok {
		t.Fatal("Next yielded on repeat call after cancellation")
	}
}

// TestBatchKNNCtx checks Background identity against BatchKNN and the
// shared-deadline contract: with an expired context every entry carries
// the context error and a degraded answer.
func TestBatchKNNCtx(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	want, err := eng.BatchKNN(queries, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.BatchKNNCtx(context.Background(), queries, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("query %d: errors %v / %v", i, want[i].Err, got[i].Err)
		}
		w, g := want[i].Results, got[i].Answer.Results
		if len(w) != len(g) {
			t.Fatalf("query %d: %d vs %d results", i, len(w), len(g))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("query %d result %d: %+v != %+v", i, j, w[j], g[j])
			}
		}
	}

	expired, err := eng.BatchKNNCtx(cancelledCtx(), queries, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range expired {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Answer == nil || !r.Answer.Degraded {
			t.Fatalf("query %d: no degraded answer", i)
		}
	}

	if _, err := eng.BatchKNNCtx(context.Background(), nil, 5, 2); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := eng.BatchKNNCtx(context.Background(), queries, 0, 2); err == nil {
		t.Error("k = 0 accepted")
	}
}

// TestAuxiliaryCtxVariants checks every remaining ctx variant twice:
// with Background it must agree with its context-free sibling, and with
// an expired context it must return the context error.
func TestAuxiliaryCtxVariants(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	q := queries[0]
	bg := context.Background()
	dead := cancelledCtx()

	// ApproxKNN
	wantA, wantCert, err := eng.ApproxKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotA, gotCert, err := eng.ApproxKNNCtx(bg, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != len(wantA) || *gotCert != *wantCert {
		t.Fatalf("ApproxKNNCtx(Background) diverges: %+v vs %+v", gotCert, wantCert)
	}
	for i := range wantA {
		if gotA[i] != wantA[i] {
			t.Fatalf("ApproxKNNCtx result %d: %+v != %+v", i, gotA[i], wantA[i])
		}
	}
	if _, _, err := eng.ApproxKNNCtx(dead, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApproxKNNCtx(expired): err = %v", err)
	}

	// EpsilonForCount
	wantEps, err := eng.EpsilonForCount(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	gotEps, err := eng.EpsilonForCountCtx(bg, q, 10)
	if err != nil || gotEps != wantEps {
		t.Fatalf("EpsilonForCountCtx(Background) = %v, %v; want %v", gotEps, err, wantEps)
	}
	if _, err := eng.EpsilonForCountCtx(dead, q, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("EpsilonForCountCtx(expired): err = %v", err)
	}

	// DistanceDistribution
	wantDD, err := eng.DistanceDistribution(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	gotDD, err := eng.DistanceDistributionCtx(bg, q, 20)
	if err != nil || gotDD.Count() != wantDD.Count() || gotDD.Mean() != wantDD.Mean() {
		t.Fatalf("DistanceDistributionCtx(Background) diverges (err %v)", err)
	}
	if _, err := eng.DistanceDistributionCtx(dead, q, 20); !errors.Is(err, context.Canceled) {
		t.Fatalf("DistanceDistributionCtx(expired): err = %v", err)
	}

	// RangeIDs
	eps := wantDD.Quantile(0.3)
	wantIDs, err := eng.RangeIDs(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, err := eng.RangeIDsCtx(bg, q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("RangeIDsCtx(Background): %d ids, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("RangeIDsCtx id %d: %d != %d", i, gotIDs[i], wantIDs[i])
		}
	}
	if _, err := eng.RangeIDsCtx(dead, q, eps); !errors.Is(err, context.Canceled) {
		t.Fatalf("RangeIDsCtx(expired): err = %v", err)
	}

	// Distance
	wantD, err := eng.Distance(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotD, err := eng.DistanceCtx(bg, q, 3)
	if err != nil || gotD != wantD {
		t.Fatalf("DistanceCtx(Background) = %v, %v; want %v", gotD, err, wantD)
	}
	if _, err := eng.DistanceCtx(dead, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("DistanceCtx(expired): err = %v", err)
	}
	if _, err := eng.DistanceCtx(bg, q, eng.Len()); err == nil {
		t.Error("DistanceCtx accepted out-of-range index")
	}

	// Explain
	if _, err := eng.Explain(q, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExplainCtx(bg, q, 3, 4); err != nil {
		t.Fatalf("ExplainCtx(Background): %v", err)
	}
	if _, err := eng.ExplainCtx(dead, q, 3, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainCtx(expired): err = %v", err)
	}

	// KNNWhere / KNNWithLabel ctx forms
	pred := func(i int) bool { return i%2 == 0 }
	wantW, _, err := eng.KNNWhere(q, 5, pred)
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := eng.KNNWhereCtx(bg, q, 5, pred)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantW {
		if gotW.Results[i] != wantW[i] {
			t.Fatalf("KNNWhereCtx result %d: %+v != %+v", i, gotW.Results[i], wantW[i])
		}
	}
	if _, err := eng.KNNWhereCtx(bg, q, 5, nil); err == nil {
		t.Error("KNNWhereCtx accepted a nil predicate")
	}
	if _, err := eng.KNNWhereCtx(dead, q, 5, pred); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNWhereCtx(expired): err = %v", err)
	}
	label := eng.Label(0)
	wantL, _, err := eng.KNNWithLabel(q, 3, label)
	if err != nil {
		t.Fatal(err)
	}
	gotL, err := eng.KNNWithLabelCtx(bg, q, 3, label)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantL {
		if gotL.Results[i] != wantL[i] {
			t.Fatalf("KNNWithLabelCtx result %d: %+v != %+v", i, gotL.Results[i], wantL[i])
		}
	}
	if _, err := eng.KNNWithLabelCtx(dead, q, 3, label); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNWithLabelCtx(expired): err = %v", err)
	}
}
