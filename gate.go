package emdsearch

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"emdsearch/internal/admission"
)

// GateOptions configures a Gate. The zero value is usable: every field
// has a sensible default.
type GateOptions struct {
	// MaxConcurrent bounds the queries running at once; <= 0 defaults
	// to GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the queries waiting for a slot; <= 0 defaults to
	// 2 × MaxConcurrent. Kept deliberately small: a deep queue converts
	// overload into tail latency instead of fast, typed rejection.
	MaxQueue int
	// DegradeAt is the queue-occupancy fraction past which admitted
	// k-NN queries are served through the anytime machinery under a
	// tightened budget; <= 0 defaults to 0.5, >= 1 disables the degrade
	// level.
	DegradeAt float64
	// DegradeBudget is the per-query time budget imposed on queries
	// admitted at the degrade level; default 25ms. The budget drives
	// the engine's certified anytime machinery, so degraded answers
	// still carry sound [Lower, Upper] intervals.
	DegradeBudget time.Duration
	// BreakerThreshold is the number of consecutive contained internal
	// faults (solver panics) that trips the engine into lower-bound-only
	// degraded serving; default 3. BreakerCooldown is how long it stays
	// there before probing the full path again; default 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (o GateOptions) withDefaults() GateOptions {
	if o.DegradeBudget <= 0 {
		o.DegradeBudget = 25 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	return o
}

// GateMetrics is a point-in-time aggregate of a Gate's serving
// decisions, JSON-marshalable for expvar like Engine.Metrics.
type GateMetrics struct {
	// Admitted counts queries served immediately; Queued those that
	// waited for a slot; Shed those rejected with ErrOverloaded
	// (including deadline-implausible and breaker-open rejections);
	// Degraded those served a certified degraded answer because of gate
	// pressure (tightened budget or breaker-open LB-only serving).
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	// InternalFaults counts queries that failed with ErrInternal — a
	// contained solver panic — through this gate.
	InternalFaults int64 `json:"internal_faults"`
	// QueueDepth and InFlight are current gauges; QueueWait is the
	// cumulative time queries spent waiting, and EstServiceTime the
	// admission layer's moving service-time estimate.
	QueueDepth     int           `json:"queue_depth"`
	InFlight       int           `json:"in_flight"`
	QueueWait      time.Duration `json:"queue_wait_ns"`
	EstServiceTime time.Duration `json:"est_service_time_ns"`
	// BreakerState is "closed", "open" or "half-open"; BreakerTrips
	// counts how often repeated faults opened it.
	BreakerState string `json:"breaker_state"`
	BreakerTrips int64  `json:"breaker_trips"`
}

// Gate wraps an Engine with overload resilience: admission control
// (bounded concurrency plus a bounded, deadline-aware wait queue),
// load shedding with typed ErrOverloaded rejections carrying
// retry-after guidance, graceful degradation (under pressure, k-NN
// queries ride the engine's certified anytime machinery with a
// tightened budget instead of being dropped), and a fault breaker
// (repeated contained solver panics switch k-NN to lower-bound-only
// certified answers until a cooldown probe succeeds).
//
// Every query submitted to a Gate resolves to exactly one of: a full
// answer, a certified degraded answer, or a typed error (ErrBadQuery,
// ErrOverloaded, ErrInternal, or the caller's context error). Nothing
// is silently dropped, and no query waits past the point where its
// deadline makes admission pointless.
//
// A Gate is safe for concurrent use. The wrapped Engine remains fully
// usable directly — mutations (Add, Delete, Build, Checkpoint) are
// intentionally *not* gated, and ungated queries bypass admission.
type Gate struct {
	e    *Engine
	opts GateOptions
	lim  *admission.Limiter
	brk  *admission.Breaker

	degraded atomic.Int64
	faults   atomic.Int64
}

// NewGate wraps e with an admission gate (zero-value opts take
// defaults).
func NewGate(e *Engine, opts GateOptions) *Gate {
	opts = opts.withDefaults()
	return &Gate{
		e:    e,
		opts: opts,
		lim: admission.New(admission.Config{
			MaxConcurrent: opts.MaxConcurrent,
			MaxQueue:      opts.MaxQueue,
			DegradeAt:     opts.DegradeAt,
		}),
		brk: admission.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
	}
}

// Engine returns the wrapped engine.
func (g *Gate) Engine() *Engine { return g.e }

// acquire runs admission for one query: a ticket, or the typed
// overload rejection. Bad queries never reach here — callers validate
// first so malformed input is rejected without consuming capacity.
func (g *Gate) acquire(ctx context.Context) (*admission.Ticket, error) {
	tk, err := g.lim.Acquire(ctx)
	if err != nil {
		var ov *admission.Overload
		if errors.As(err, &ov) {
			return nil, overloadError(ov)
		}
		return nil, err
	}
	return tk, nil
}

// budgetCtx derives the query context for an admitted ticket: at the
// degrade level the gate imposes its DegradeBudget (unless the caller's
// own deadline is already tighter). The bool reports whether the gate,
// not the caller, owns the resulting deadline.
func (g *Gate) budgetCtx(ctx context.Context, tk *admission.Ticket) (context.Context, context.CancelFunc, bool) {
	if tk.Level() != admission.LevelDegrade {
		return ctx, nil, false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= g.opts.DegradeBudget {
		return ctx, nil, false
	}
	qctx, cancel := context.WithTimeout(ctx, g.opts.DegradeBudget)
	return qctx, cancel, true
}

// settle feeds a full-path query outcome into the breaker and
// classifies it: internal faults count against the breaker, everything
// else counts as a healthy traversal of the exact path.
func (g *Gate) settle(err error) {
	if errors.Is(err, ErrInternal) {
		g.faults.Add(1)
		g.brk.Fault()
		return
	}
	g.brk.Success()
}

// KNN answers a k-NN query through the gate. Under normal load it is
// Engine.KNNCtx with admission accounting. Under pressure it degrades
// rather than drops: past the DegradeAt queue threshold the query runs
// under DegradeBudget and a budget-expired answer is returned as a
// certified degraded KNNAnswer with a nil error (the caller asked the
// gate to keep serving under load; a sound interval answer is the
// contract, not a failure). With the fault breaker open, the query is
// served from lower bounds and greedy upper bounds alone — zero exact
// solves — again as a certified degraded answer. Shed queries fail
// fast with an error wrapping ErrOverloaded; a caller-cancelled query
// returns its certified anytime answer with the context error, exactly
// like Engine.KNNCtx.
func (g *Gate) KNN(ctx context.Context, q Histogram, k int) (*KNNAnswer, error) {
	if err := g.e.validateKNN(q, k); err != nil {
		g.e.metrics.queryError()
		return nil, err
	}
	tk, err := g.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer tk.Release()

	if !g.brk.Allow() {
		g.degraded.Add(1)
		return g.e.knnLBOnly(q, k)
	}

	qctx, cancel, gateOwned := g.budgetCtx(ctx, tk)
	if cancel != nil {
		defer cancel()
	}
	ans, err := g.e.KNNCtx(qctx, q, k)
	g.settle(err)
	if err != nil && gateOwned && ans != nil && ans.Degraded && ctx.Err() == nil {
		// The gate's budget, not the caller's deadline, cut the query
		// short: the certified degraded answer is the intended result.
		g.degraded.Add(1)
		return ans, nil
	}
	return ans, err
}

// Range answers a range query through the gate. Degrade-level
// admissions run under DegradeBudget; a budget-expired query returns
// the results confirmed so far (each individually certified within
// eps, so the set is sound, only possibly incomplete) with
// Stats.Cancelled = true and a nil error. While the fault breaker is
// open, range queries are shed with ErrOverloaded — unlike k-NN they
// have no exact-solve-free certified form.
func (g *Gate) Range(ctx context.Context, q Histogram, eps float64) ([]Result, *QueryStats, error) {
	if err := g.e.validateRange(q, eps); err != nil {
		g.e.metrics.queryError()
		return nil, nil, err
	}
	tk, err := g.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer tk.Release()

	if !g.brk.Allow() {
		return nil, nil, g.breakerOpenErr()
	}

	qctx, cancel, gateOwned := g.budgetCtx(ctx, tk)
	if cancel != nil {
		defer cancel()
	}
	results, stats, err := g.e.RangeCtx(qctx, q, eps)
	g.settle(err)
	if err != nil && gateOwned && stats != nil && stats.Cancelled && ctx.Err() == nil {
		g.degraded.Add(1)
		return results, stats, nil
	}
	return results, stats, err
}

// RangeIDs answers a membership range query through the gate, with the
// same shedding and breaker semantics as Range; degraded completions
// return the certified subset of ids confirmed within budget.
func (g *Gate) RangeIDs(ctx context.Context, q Histogram, eps float64) ([]int, error) {
	if err := g.e.validateRange(q, eps); err != nil {
		g.e.metrics.queryError()
		return nil, err
	}
	tk, err := g.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer tk.Release()

	if !g.brk.Allow() {
		return nil, g.breakerOpenErr()
	}

	qctx, cancel, gateOwned := g.budgetCtx(ctx, tk)
	if cancel != nil {
		defer cancel()
	}
	ids, err := g.e.RangeIDsCtx(qctx, q, eps)
	g.settle(err)
	if err != nil && gateOwned && ctx.Err() == nil && errors.Is(err, qctx.Err()) {
		g.degraded.Add(1)
		return ids, nil
	}
	return ids, err
}

// BatchKNN answers a batch of k-NN queries, each admitted through the
// gate individually with the shared ctx, using up to workers client
// goroutines (0 means GOMAXPROCS). Under overload, entries degrade or
// shed independently — a full queue fails the excess entries with
// ErrOverloaded while the rest are served — so every entry of the
// returned slice resolves to an answer or a typed error.
func (g *Gate) BatchKNN(ctx context.Context, queries []Histogram, k, workers int) ([]BatchCtxResult, error) {
	if len(queries) == 0 {
		return nil, badQueryf("empty batch")
	}
	if k < 1 {
		return nil, badQueryf("k = %d, want >= 1", k)
	}
	out := make([]BatchCtxResult, len(queries))
	runBatch(queries, workers, func(qi int) {
		ans, err := g.KNN(ctx, queries[qi], k)
		out[qi] = BatchCtxResult{Query: qi, Answer: ans, Err: err}
	})
	return out, nil
}

// breakerOpenErr is the typed rejection served while the fault breaker
// holds the exact path open.
func (g *Gate) breakerOpenErr() error {
	st := g.lim.Stats()
	return &OverloadError{
		QueueDepth: st.QueueDepth,
		InFlight:   st.InFlight,
		RetryAfter: g.opts.BreakerCooldown,
		Reason:     "breaker open after repeated internal faults",
	}
}

// Metrics snapshots the gate's serving counters and gauges.
func (g *Gate) Metrics() GateMetrics {
	st := g.lim.Stats()
	return GateMetrics{
		Admitted:       st.Admitted,
		Queued:         st.Queued,
		Shed:           st.Shed,
		Degraded:       g.degraded.Load(),
		InternalFaults: g.faults.Load(),
		QueueDepth:     st.QueueDepth,
		InFlight:       st.InFlight,
		QueueWait:      st.WaitTime,
		EstServiceTime: st.EstServiceTime,
		BreakerState:   g.brk.State().String(),
		BreakerTrips:   g.brk.Trips(),
	}
}

// BreakerState reports the fault breaker's current position as a
// string ("closed", "open", "half-open").
func (g *Gate) BreakerState() string { return g.brk.State().String() }

// knnLBOnly serves a k-NN query from bounds alone: the filter chain's
// lower-bound ranking and the greedy-flow upper bound, zero exact
// simplex solves. It returns a certified degraded KNNAnswer whose
// Anytime items are the k best by guaranteed worst case (Upper, then
// Lower); the exact distance of every listed item provably lies in its
// interval. The scan terminates once the ranking's ascending lower
// bound exceeds the current k-th best upper bound — past that point no
// remaining item can improve the answer. This is the breaker-open
// serving mode: the exact solver is quarantined, yet answers remain
// sound.
func (e *Engine) knnLBOnly(q Histogram, k int) (*KNNAnswer, error) {
	if err := e.validateKNN(q, k); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	ranking, err := s.searcher.Ranking(q)
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	g := s.greedyUpper()
	defer s.putGreedy(g)

	items := make([]AnytimeItem, 0, k+1)
	kthUpper := math.Inf(1)
	pulled := 0
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		pulled++
		if len(items) >= k && c.Dist > kthUpper {
			break
		}
		if s.deleted[c.Index] {
			continue
		}
		ub := g.Distance(q, s.vectors[c.Index])
		lo := c.Dist
		if lo > ub {
			lo = ub
		}
		it := AnytimeItem{Index: c.Index, Lower: lo, Upper: ub}
		pos := sort.Search(len(items), func(i int) bool {
			if items[i].Upper != it.Upper {
				return items[i].Upper > it.Upper
			}
			if items[i].Lower != it.Lower {
				return items[i].Lower > it.Lower
			}
			return items[i].Index > it.Index
		})
		items = append(items, AnytimeItem{})
		copy(items[pos+1:], items[pos:])
		items[pos] = it
		if len(items) > k {
			items = items[:k]
		}
		if len(items) == k {
			kthUpper = items[k-1].Upper
		}
	}
	stats := &QueryStats{Pulled: pulled, SnapshotLen: len(s.vectors)}
	e.metrics.observe(metricKNN, stats)
	e.metrics.queryDegraded()
	return &KNNAnswer{
		Stats:    stats,
		Degraded: true,
		Anytime:  items,
		Unpulled: len(s.vectors) - pulled,
	}, nil
}
