package emdsearch

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/search"
)

// Ranking streams database items in ascending order of their *exact*
// EMD to a query, lazily: each Next call refines only as many
// candidates as the filter chain requires to certify the next result.
// This is the incremental form of k-NN — callers that do not know k in
// advance (result browsing, top-k with early user cutoff) pull until
// satisfied.
type Ranking struct {
	inner search.Ranking
}

// Next returns the next closest item and its exact EMD, or ok = false
// when the database is exhausted.
func (r *Ranking) Next() (index int, dist float64, ok bool) {
	for {
		c, ok := r.inner.Next()
		if !ok {
			return 0, 0, false
		}
		if math.IsInf(c.Dist, 1) {
			continue // soft-deleted item
		}
		return c.Index, c.Dist, true
	}
}

// Rank starts an incremental exact ranking for q. Internally the
// engine's filter chain is extended by one final chained stage whose
// "filter" is the exact EMD itself — since every prior stage
// lower-bounds it, the chained ranking (Figure 12 of the paper) emits
// items in true EMD order while refining lazily.
func (e *Engine) Rank(q Histogram) (*Ranking, error) {
	if err := emd.Validate(q); err != nil {
		return nil, fmt.Errorf("emdsearch: query: %w", err)
	}
	if len(q) != e.Dim() {
		return nil, fmt.Errorf("emdsearch: query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	if err := e.ensureSearcher(); err != nil {
		return nil, err
	}
	vectors := e.store.Vectors()

	// Build the filter ranking exactly as a query would (including an
	// indexed base ranking, if configured)...
	base, err := e.searcher.Ranking(q)
	if err != nil {
		return nil, err
	}
	// ...and chain the exact EMD on top as the final re-ranker;
	// soft-deleted items rank at infinity and are skipped by Next.
	exact := search.NewChainedRanking(base, func(i int) float64 {
		if e.deleted[i] {
			return math.Inf(1)
		}
		return e.dist.Distance(q, vectors[i])
	})
	return &Ranking{inner: exact}, nil
}
