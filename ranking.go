package emdsearch

import (
	"context"
	"math"

	"emdsearch/internal/search"
)

// Ranking streams database items in ascending order of their *exact*
// EMD to a query, lazily: each Next call refines only as many
// candidates as the filter chain requires to certify the next result.
// This is the incremental form of k-NN — callers that do not know k in
// advance (result browsing, top-k with early user cutoff) pull until
// satisfied.
//
// A Ranking is bound to the engine snapshot current when Rank was
// called: it keeps answering consistently over that state even if the
// engine is mutated afterwards. A single Ranking is not safe for
// concurrent Next calls; create one per goroutine (they share the
// snapshot, so this is cheap).
type Ranking struct {
	inner search.Ranking
	// ctx, when set by RankCtx, stops the stream early: once it is
	// cancelled Next reports exhaustion before refining anything
	// further. Checked before each pull, never mid-solve, so every
	// yielded distance is exact.
	ctx context.Context
}

// Next returns the next closest item and its exact EMD, or ok = false
// when the database is exhausted (or, for a RankCtx stream, when the
// context has been cancelled).
func (r *Ranking) Next() (index int, dist float64, ok bool) {
	for {
		if r.ctx != nil && r.ctx.Err() != nil {
			return 0, 0, false
		}
		c, ok := r.inner.Next()
		if !ok {
			return 0, 0, false
		}
		if math.IsInf(c.Dist, 1) {
			continue // soft-deleted item
		}
		return c.Index, c.Dist, true
	}
}

// Rank starts an incremental exact ranking for q. Internally the
// engine's filter chain is extended by one final chained stage whose
// "filter" is the exact EMD itself — since every prior stage
// lower-bounds it, the chained ranking (Figure 12 of the paper) emits
// items in true EMD order while refining lazily.
func (e *Engine) Rank(q Histogram) (*Ranking, error) {
	if err := e.validateQuery(q); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	// Build the filter ranking exactly as a query would (including an
	// indexed base ranking, if configured)...
	base, err := s.searcher.Ranking(q)
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	// ...and chain the exact EMD on top as the final re-ranker;
	// soft-deleted items rank at infinity and are skipped by Next.
	exact := search.NewChainedRanking(base, func(i int) float64 {
		return s.refine(q, i)
	})
	e.metrics.rankStarted()
	return &Ranking{inner: exact}, nil
}
