package emdsearch

import (
	"context"
	"encoding/json"
	"expvar"
	"testing"
)

// TestPublishExpvarRoundTrip publishes engine, gate and shard-set
// metrics, reads them back through the expvar registry, and checks
// the JSON decodes into the metrics structs with live values — the
// exact path a /debug/vars scraper takes.
func TestPublishExpvarRoundTrip(t *testing.T) {
	set, _, queries := buildShardPair(t, 2, 20, ShardSetOptions{})
	eng, gate := set.Engine(0), set.Gate(0)

	if err := eng.PublishExpvar("test_engine_metrics"); err != nil {
		t.Fatal(err)
	}
	if err := gate.PublishExpvar("test_gate_metrics"); err != nil {
		t.Fatal(err)
	}
	if err := set.PublishExpvar("test_set_metrics"); err != nil {
		t.Fatal(err)
	}

	// Serve one query so the counters are nonzero.
	if _, err := set.KNN(context.Background(), queries[0], 3); err != nil {
		t.Fatal(err)
	}

	var em Metrics
	if err := json.Unmarshal([]byte(expvar.Get("test_engine_metrics").String()), &em); err != nil {
		t.Fatalf("engine metrics JSON: %v", err)
	}
	if em.KNNQueries < 1 {
		t.Fatalf("published engine metrics stale: %+v", em)
	}

	var gm GateMetrics
	if err := json.Unmarshal([]byte(expvar.Get("test_gate_metrics").String()), &gm); err != nil {
		t.Fatalf("gate metrics JSON: %v", err)
	}
	if gm.Admitted < 1 {
		t.Fatalf("published gate metrics stale: %+v", gm)
	}

	var sm ShardSetMetrics
	if err := json.Unmarshal([]byte(expvar.Get("test_set_metrics").String()), &sm); err != nil {
		t.Fatalf("shard-set metrics JSON: %v", err)
	}
	if sm.Queries != 1 || sm.Shards != 2 || len(sm.PerShard) != 2 {
		t.Fatalf("published shard-set metrics stale: %+v", sm)
	}
	if sm.PerShard[0].Health.State != "closed" {
		t.Fatalf("per-shard health missing: %+v", sm.PerShard[0])
	}

	// The registry is global and append-only: duplicates and empty
	// names are errors, not panics.
	if err := eng.PublishExpvar("test_engine_metrics"); err == nil {
		t.Fatal("duplicate publish succeeded")
	}
	if err := eng.PublishExpvar(""); err == nil {
		t.Fatal("empty-name publish succeeded")
	}
}
