package emdsearch

import (
	"sync"
	"time"

	"emdsearch/internal/search"
)

// StageMetrics aggregates one named filter stage's work across all
// queries served since the engine was created.
type StageMetrics struct {
	// Evaluations is the total number of filter-distance computations.
	Evaluations int64 `json:"evaluations"`
	// Pruned is the total number of candidates this stage ruled out.
	Pruned int64 `json:"pruned"`
	// Time is the cumulative wall time spent in this stage.
	Time time.Duration `json:"time_ns"`
}

// Metrics is a point-in-time aggregate of the work an Engine has
// performed: query counts by kind, candidate/refinement totals,
// cumulative per-stage filter effort and stage-level wall times. All
// fields are totals since engine creation. The struct is plain data
// and JSON-marshalable; Engine.PublishExpvar exports it live on the
// process's expvar page (Gate.PublishExpvar and
// ShardSet.PublishExpvar do the same for their layers).
type Metrics struct {
	// KNNQueries, RangeQueries and RankQueries count successfully
	// served queries by kind (BatchKNN contributes to KNNQueries, one
	// per query in the batch; KNNWhere and KNNWithLabel also count as
	// KNN queries).
	KNNQueries   int64 `json:"knn_queries"`
	RangeQueries int64 `json:"range_queries"`
	RankQueries  int64 `json:"rank_queries"`
	// QueryErrors counts queries rejected with an error (invalid
	// query, empty engine, ...).
	QueryErrors int64 `json:"query_errors"`
	// QueriesCancelled counts queries that observed their context's
	// cancellation (deadline expiry or explicit cancel), whether at
	// entry or mid-flight. Always 0 for the context-free API.
	QueriesCancelled int64 `json:"queries_cancelled"`
	// QueriesDeadlineDegraded counts k-NN queries that returned a
	// certified anytime (degraded but sound) answer instead of the
	// complete one because their deadline expired first.
	QueriesDeadlineDegraded int64 `json:"queries_deadline_degraded"`
	// QueryPanics counts contained invariant failures: refinement
	// panics recovered by the panic barrier and converted into
	// ErrInternal on the failing query. Any nonzero value deserves
	// investigation — it means the exact solver tripped an invariant —
	// but the process survived and every other query was unaffected.
	QueryPanics int64 `json:"query_panics"`
	// SnapshotBuilds counts how often the query pipeline was
	// (re)assembled — once after each batch of mutations, not per
	// query. A high rate signals interleaving mutations with queries.
	SnapshotBuilds int64 `json:"snapshot_builds"`
	// ColumnBuilds counts columnar filter layouts assembled during
	// snapshot builds (one per filter level). QuantizedReuses counts
	// pipeline builds that reused a quantized filter restored from a
	// persisted snapshot instead of requantizing.
	ColumnBuilds    int64 `json:"column_builds"`
	QuantizedReuses int64 `json:"quantized_reuses"`

	// IndexBuilds counts metric-index constructions (including
	// churn-triggered background rebuilds); IndexReuses counts pipeline
	// builds that carried an existing index forward (possibly growing
	// it incrementally) instead of rebuilding. IndexQueries counts
	// queries answered through an index-backed candidate generator;
	// IndexNodesVisited and IndexPruned are their summed traversal
	// counters.
	IndexBuilds       int64 `json:"index_builds"`
	IndexReuses       int64 `json:"index_reuses"`
	IndexQueries      int64 `json:"index_queries"`
	IndexNodesVisited int64 `json:"index_nodes_visited"`
	IndexPruned       int64 `json:"index_pruned"`
	// IndexDeferredBuilds counts snapshot builds that found a stale
	// saved tree and handed reconstruction to the background rebuild
	// path (serving the scan meanwhile) instead of rebuilding
	// synchronously on the query path. IndexRebuildFailures counts
	// background rebuilds that errored or panicked — the rebuild latch
	// is released either way, so a later rebuild can retry.
	IndexDeferredBuilds  int64 `json:"index_deferred_builds"`
	IndexRebuildFailures int64 `json:"index_rebuild_failures"`

	// WALAppends counts mutations (Add/Delete) durably appended to an
	// open write-ahead log; WALReplayed counts log records applied by
	// RecoverEngine. SnapshotSaves counts snapshot files written by
	// SaveFile/Checkpoint, and Checkpoints counts completed
	// snapshot-plus-log-rotation cycles.
	WALAppends    int64 `json:"wal_appends"`
	WALReplayed   int64 `json:"wal_replayed"`
	SnapshotSaves int64 `json:"snapshot_saves"`
	Checkpoints   int64 `json:"checkpoints"`

	// CascadeReplans counts adopted background/forced re-plans under
	// Options.AutoCascade (the initial Build-time plan is not a
	// re-plan). CascadePlan and CascadePlanID describe the active
	// chain: per-level reduced dimensionalities ascending coarse→fine
	// and their fingerprint. Empty/0 when no auto plan is active.
	CascadeReplans int64  `json:"cascade_replans"`
	CascadePlan    []int  `json:"cascade_plan,omitempty"`
	CascadePlanID  uint64 `json:"cascade_plan_id,omitempty"`

	// Pulled, Refinements and RefinementsSkipped are the summed
	// QueryStats counters of all served KNN/Range queries.
	Pulled             int64 `json:"pulled"`
	Refinements        int64 `json:"refinements"`
	RefinementsSkipped int64 `json:"refinements_skipped"`
	// RefinesAborted and WarmStartHits are the summed threshold-aware
	// refinement counters: solves abandoned early on a certified bound,
	// and solves that re-entered from a cached basis. Both stay zero
	// under Options.UnboundedRefine.
	RefinesAborted int64 `json:"refines_aborted"`
	WarmStartHits  int64 `json:"warm_start_hits"`
	// RefineRows and RefineCols accumulate the reduced (zero-mass bins
	// stripped) problem shapes of all refinements; divide by
	// Refinements for the average solved shape.
	RefineRows int64 `json:"refine_rows"`
	RefineCols int64 `json:"refine_cols"`

	// ResultsReturned is the total number of answer rows KNN and Range
	// queries returned — the irreducible floor of per-query filter
	// survivors that the cascade planner anchors its model on.
	ResultsReturned int64 `json:"results_returned"`

	// FilterTime and RefineTime are cumulative wall times of the
	// filter and refinement stages; RefineTime sums across refinement
	// workers. QueryTime is the cumulative end-to-end query wall time.
	FilterTime time.Duration `json:"filter_time_ns"`
	RefineTime time.Duration `json:"refine_time_ns"`
	QueryTime  time.Duration `json:"query_time_ns"`

	// Stages aggregates per-stage counters by stage name (e.g.
	// "Red-IM", "Red-EMD", "Red-EMD-8", "Asym-Red-EMD").
	Stages map[string]StageMetrics `json:"stages,omitempty"`
}

type metricKind int

const (
	metricKNN metricKind = iota
	metricRange
)

// engineMetrics is the internal mutex-guarded accumulator behind
// Engine.Metrics. Per-query observation is one short critical section;
// contention is negligible next to the EMD work of any real query.
type engineMetrics struct {
	mu sync.Mutex
	m  Metrics
}

func (em *engineMetrics) observe(kind metricKind, stats *QueryStats) {
	em.mu.Lock()
	defer em.mu.Unlock()
	switch kind {
	case metricKNN:
		em.m.KNNQueries++
	case metricRange:
		em.m.RangeQueries++
	}
	if stats == nil {
		return
	}
	if stats.Cancelled {
		em.m.QueriesCancelled++
	}
	em.m.Pulled += int64(stats.Pulled)
	em.m.Refinements += int64(stats.Refinements)
	em.m.RefinementsSkipped += int64(stats.RefinementsSkipped)
	em.m.RefinesAborted += int64(stats.RefinesAborted)
	em.m.WarmStartHits += int64(stats.WarmStartHits)
	em.m.RefineRows += stats.RefineRows
	em.m.RefineCols += stats.RefineCols
	em.m.FilterTime += stats.FilterTime
	em.m.RefineTime += stats.RefineTime
	em.m.QueryTime += stats.TotalTime
	if stats.IndexUsed {
		em.m.IndexQueries++
		em.m.IndexNodesVisited += int64(stats.IndexNodesVisited)
		em.m.IndexPruned += int64(stats.IndexPruned)
	}
	if len(stats.Stages) > 0 {
		if em.m.Stages == nil {
			em.m.Stages = make(map[string]StageMetrics, len(stats.Stages))
		}
		for _, st := range stats.Stages {
			agg := em.m.Stages[st.Name]
			agg.Evaluations += int64(st.Evaluations)
			agg.Pruned += int64(st.Pruned)
			agg.Time += st.Duration
			em.m.Stages[st.Name] = agg
		}
	}
}

func (em *engineMetrics) rankStarted() {
	em.mu.Lock()
	em.m.RankQueries++
	em.mu.Unlock()
}

func (em *engineMetrics) queryDegraded() {
	em.mu.Lock()
	em.m.QueriesDeadlineDegraded++
	em.mu.Unlock()
}

// observeRangeIDs folds a membership-query's counters into the
// aggregate (counted as a range query).
func (em *engineMetrics) observeRangeIDs(st *search.RangeIDsStats) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.m.RangeQueries++
	if st == nil {
		return
	}
	if st.Cancelled {
		em.m.QueriesCancelled++
	}
	em.m.Pulled += int64(st.Pulled)
	em.m.Refinements += int64(st.Refinements)
	em.m.RefinesAborted += int64(st.RefinesAborted)
	em.m.WarmStartHits += int64(st.WarmStartHits)
	em.m.RefineRows += st.RefineRows
	em.m.RefineCols += st.RefineCols
}

func (em *engineMetrics) queryPanicked() {
	em.mu.Lock()
	em.m.QueryPanics++
	em.mu.Unlock()
}

func (em *engineMetrics) queryError() {
	em.mu.Lock()
	em.m.QueryErrors++
	em.mu.Unlock()
}

func (em *engineMetrics) snapshotBuilt() {
	em.mu.Lock()
	em.m.SnapshotBuilds++
	em.mu.Unlock()
}

func (em *engineMetrics) columnsBuilt() {
	em.mu.Lock()
	em.m.ColumnBuilds++
	em.mu.Unlock()
}

func (em *engineMetrics) quantizedReused() {
	em.mu.Lock()
	em.m.QuantizedReuses++
	em.mu.Unlock()
}

func (em *engineMetrics) indexBuilt() {
	em.mu.Lock()
	em.m.IndexBuilds++
	em.mu.Unlock()
}

func (em *engineMetrics) indexReused() {
	em.mu.Lock()
	em.m.IndexReuses++
	em.mu.Unlock()
}

func (em *engineMetrics) indexDeferred() {
	em.mu.Lock()
	em.m.IndexDeferredBuilds++
	em.mu.Unlock()
}

func (em *engineMetrics) indexRebuildFailed() {
	em.mu.Lock()
	em.m.IndexRebuildFailures++
	em.mu.Unlock()
}

func (em *engineMetrics) resultsReturned(n int) {
	em.mu.Lock()
	em.m.ResultsReturned += int64(n)
	em.mu.Unlock()
}

// planActive records the active cascade plan; planReplanned
// additionally counts an adopted re-plan.
func (em *engineMetrics) planActive(levels []int, id uint64) {
	em.mu.Lock()
	em.m.CascadePlan = append([]int(nil), levels...)
	em.m.CascadePlanID = id
	em.mu.Unlock()
}

func (em *engineMetrics) planReplanned(levels []int, id uint64) {
	em.mu.Lock()
	em.m.CascadeReplans++
	em.m.CascadePlan = append([]int(nil), levels...)
	em.m.CascadePlanID = id
	em.mu.Unlock()
}

func (em *engineMetrics) walAppended() {
	em.mu.Lock()
	em.m.WALAppends++
	em.mu.Unlock()
}

func (em *engineMetrics) walReplayed(n int) {
	em.mu.Lock()
	em.m.WALReplayed += int64(n)
	em.mu.Unlock()
}

func (em *engineMetrics) snapshotSaved() {
	em.mu.Lock()
	em.m.SnapshotSaves++
	em.mu.Unlock()
}

func (em *engineMetrics) checkpointed() {
	em.mu.Lock()
	em.m.Checkpoints++
	em.mu.Unlock()
}

// Metrics returns a consistent snapshot of the engine's cumulative
// query metrics. Safe for concurrent use; the returned value is a
// deep copy and never mutated afterwards.
func (e *Engine) Metrics() Metrics {
	e.metrics.mu.Lock()
	defer e.metrics.mu.Unlock()
	out := e.metrics.m
	if e.metrics.m.Stages != nil {
		out.Stages = make(map[string]StageMetrics, len(e.metrics.m.Stages))
		for name, st := range e.metrics.m.Stages {
			out.Stages[name] = st
		}
	}
	out.CascadePlan = append([]int(nil), e.metrics.m.CascadePlan...)
	return out
}
