package emdsearch

import (
	"image"
	"image/color"
	"math"
	"testing"
)

// solidImage returns a w x h image filled with one color.
func solidImage(w, h int, c color.RGBA) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestRGBHistogramSolidColor(t *testing.T) {
	img := solidImage(16, 16, color.RGBA{R: 255, A: 255}) // pure red
	h, err := RGBHistogram(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 64 {
		t.Fatalf("histogram length %d, want 64", len(h))
	}
	// All mass in the (3,0,0) bin: index (3*4+0)*4+0 = 48.
	if h[48] < 0.999 {
		t.Errorf("red bin holds %g of the mass", h[48])
	}
	// Matching positions: bin 48 is centered near (0.875, 0.125, 0.125).
	pos, err := RGBPositions(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos[48][0]-0.875) > 1e-12 || math.Abs(pos[48][1]-0.125) > 1e-12 {
		t.Errorf("bin 48 position %v", pos[48])
	}
}

func TestRGBHistogramEMDRanksColors(t *testing.T) {
	// EMD over RGB bins must rank orange closer to red than blue is.
	red := solidImage(8, 8, color.RGBA{R: 255, A: 255})
	orange := solidImage(8, 8, color.RGBA{R: 255, G: 140, A: 255})
	blue := solidImage(8, 8, color.RGBA{B: 255, A: 255})
	cost, err := RGBCost(4)
	if err != nil {
		t.Fatal(err)
	}
	hr, _ := RGBHistogram(red, 4)
	ho, _ := RGBHistogram(orange, 4)
	hb, _ := RGBHistogram(blue, 4)
	dro, err := EMD(hr, ho, cost)
	if err != nil {
		t.Fatal(err)
	}
	drb, err := EMD(hr, hb, cost)
	if err != nil {
		t.Fatal(err)
	}
	if dro >= drb {
		t.Errorf("EMD(red, orange) = %g not below EMD(red, blue) = %g", dro, drb)
	}
}

func TestRGBHistogramValidation(t *testing.T) {
	if _, err := RGBHistogram(nil, 4); err == nil {
		t.Error("accepted nil image")
	}
	if _, err := RGBHistogram(solidImage(4, 4, color.RGBA{}), 1); err == nil {
		t.Error("accepted bins=1")
	}
	if _, err := RGBHistogram(image.NewRGBA(image.Rect(0, 0, 0, 0)), 4); err == nil {
		t.Error("accepted empty image")
	}
}

func TestGrayHistogram(t *testing.T) {
	black := solidImage(8, 8, color.RGBA{A: 255})
	white := solidImage(8, 8, color.RGBA{R: 255, G: 255, B: 255, A: 255})
	hb, err := GrayHistogram(black, 16)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := GrayHistogram(white, 16)
	if err != nil {
		t.Fatal(err)
	}
	if hb[0] < 0.999 {
		t.Errorf("black image mass in level 0: %g", hb[0])
	}
	if hw[15] < 0.999 {
		t.Errorf("white image mass in level 15: %g", hw[15])
	}
	d, err := EMD(hb, hw, LinearCost(16))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-15) > 0.01 {
		t.Errorf("black-to-white gray EMD %g, want ~15", d)
	}
	if _, err := GrayHistogram(black, 1); err == nil {
		t.Error("accepted levels=1")
	}
}

func TestTiledIntensityHistogram(t *testing.T) {
	// Bright top half, dark bottom half: the top tiles carry the mass.
	img := image.NewRGBA(image.Rect(0, 0, 16, 16))
	for y := 0; y < 16; y++ {
		c := color.RGBA{A: 255}
		if y < 8 {
			c = color.RGBA{R: 255, G: 255, B: 255, A: 255}
		}
		for x := 0; x < 16; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	h, err := TiledIntensityHistogram(img, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 4 {
		t.Fatalf("length %d, want 4", len(h))
	}
	if top := h[0] + h[1]; top < 0.99 {
		t.Errorf("top tiles hold %g of the mass", top)
	}
	// Compatible with the grid ground distance.
	if _, err := GridCost(2, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := TiledIntensityHistogram(img, 20, 20); err == nil {
		t.Error("accepted tiling finer than the image")
	}
	if _, err := TiledIntensityHistogram(nil, 2, 2); err == nil {
		t.Error("accepted nil image")
	}
}

// TestRealImagePipelineEndToEnd: extract features from synthetic
// image.Image values and run an exact engine query over them.
func TestRealImagePipelineEndToEnd(t *testing.T) {
	cost, err := RGBCost(3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cost, Options{ReducedDims: 6, Method: KMedoids})
	if err != nil {
		t.Fatal(err)
	}
	colors := []color.RGBA{
		{R: 250, A: 255}, {R: 230, G: 40, A: 255}, {R: 220, G: 20, B: 20, A: 255},
		{B: 250, A: 255}, {G: 40, B: 230, A: 255},
		{G: 250, A: 255}, {R: 30, G: 220, A: 255},
	}
	for i, c := range colors {
		h, err := RGBHistogram(solidImage(8, 8, c), 3)
		if err != nil {
			t.Fatal(err)
		}
		label := "red"
		if i >= 3 {
			label = "blue"
		}
		if i >= 5 {
			label = "green"
		}
		eng.Add(label, h)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	q, err := RGBHistogram(solidImage(8, 8, color.RGBA{R: 240, G: 10, B: 5, A: 255}), 3)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := eng.KNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if eng.Label(r.Index) != "red" {
			t.Errorf("reddish query matched %q item %d at %g", eng.Label(r.Index), r.Index, r.Dist)
		}
	}
}
