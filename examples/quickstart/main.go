// Quickstart: index a handful of 1-D histograms, build a reduced-EMD
// filter, and run an exact k-NN query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"emdsearch"
)

func main() {
	const dim = 32 // 32 intensity bins per histogram

	// Ground distance: |i-j| between bins, as in the paper's Figure 1.
	cost := emdsearch.LinearCost(dim)

	// An engine with an 8-dimensional flow-based filter. All queries
	// remain exact; the reduction only prunes EMD computations.
	eng, err := emdsearch.NewEngine(cost, emdsearch.Options{
		ReducedDims: 8,
		SampleSize:  32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Index 500 noisy histograms around five prototype shapes.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		proto := i % 5
		h := make(emdsearch.Histogram, dim)
		center := 4 + proto*6
		for b := range h {
			d := float64(b - center)
			h[b] = 1/(1+d*d/9) + 0.05*rng.Float64()
		}
		if _, err := eng.Add(fmt.Sprintf("proto-%d", proto), emdsearch.Normalize(h)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		log.Fatal(err)
	}

	// Query with a fresh histogram near prototype 2.
	q := make(emdsearch.Histogram, dim)
	for b := range q {
		d := float64(b - 16)
		q[b] = 1 / (1 + d*d/9)
	}
	q = emdsearch.Normalize(q)

	results, stats, err := eng.KNN(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5 nearest neighbors (exact EMD):")
	for rank, r := range results {
		fmt.Printf("  %d. object #%d (%s) at distance %.4f\n", rank+1, r.Index, eng.Label(r.Index), r.Dist)
	}
	fmt.Printf("\nThe filter chain refined only %d of %d objects", stats.Refinements, eng.Len())
	for i, e := range stats.StageEvaluations {
		fmt.Printf("; filter stage %d ran %d times", i+1, e)
	}
	fmt.Println(".")
}
