// Image retrieval: the paper's motivating scenario. Procedural color
// images are reduced to 64-bin RGB histograms with a Euclidean
// ground distance between bin-center colors; an engine with a
// flow-based reduction answers exact EMD k-NN queries and is compared
// against a brute-force scan, reporting both the speedup and the class
// purity of the answers.
//
//	go run ./examples/imageretrieval
package main

import (
	"fmt"
	"log"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

func main() {
	const (
		nImages = 1500
		queries = 8
		k       = 10
	)
	fmt.Printf("generating %d procedural color images...\n", nImages+queries)
	ds, err := data.ColorImages(nImages+queries, 42)
	if err != nil {
		log.Fatal(err)
	}
	vectors, queryVecs, err := ds.Split(queries)
	if err != nil {
		log.Fatal(err)
	}

	build := func(dprime int) *emdsearch.Engine {
		eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
			ReducedDims: dprime,
			Method:      emdsearch.FBAll,
			SampleSize:  48,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, h := range vectors {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		if err := eng.Build(); err != nil {
			log.Fatal(err)
		}
		if dprime > 0 {
			fmt.Printf("built d'=%d flow-based reduction in %v\n", dprime, time.Since(start).Round(time.Millisecond))
		}
		return eng
	}

	filtered := build(8)
	scan := build(0)

	run := func(name string, eng *emdsearch.Engine) time.Duration {
		start := time.Now()
		var refinements int
		var pure, total int
		for qi, q := range queryVecs {
			results, stats, err := eng.KNN(q, k)
			if err != nil {
				log.Fatal(err)
			}
			refinements += stats.Refinements
			queryLabel := ds.Items[nImages+qi].Label
			for _, r := range results {
				total++
				if eng.Label(r.Index) == queryLabel {
					pure++
				}
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %8v total, %5.1f EMD refinements/query, %4.0f%% same-class neighbors\n",
			name, elapsed.Round(time.Millisecond), float64(refinements)/float64(len(queryVecs)),
			100*float64(pure)/float64(total))
		return elapsed
	}

	fmt.Printf("\nrunning %d queries, k=%d, over %d images:\n", queries, k, nImages)
	tScan := run("scan", scan)
	tFiltered := run("filtered", filtered)
	fmt.Printf("\nspeedup: %.1fx with identical (exact) results\n", float64(tScan)/float64(tFiltered))

	// Show one query in detail.
	q := queryVecs[0]
	results, _, err := filtered.KNN(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample query (class %q) top-5:\n", ds.Items[nImages].Label)
	for rank, r := range results {
		fmt.Printf("  %d. image #%d (%s) EMD %.4f\n", rank+1, r.Index, filtered.Label(r.Index), r.Dist)
	}
}
