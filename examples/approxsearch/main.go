// Approximate search with certificates: answering k-NN queries
// without a single full-dimensional EMD computation. The engine's
// reduction provides a lower bound (optimal min-cost reduced EMD,
// Definition 5 of the paper) and an upper bound (its max-cost dual);
// together they bracket every exact distance, and ApproxKNN returns
// results plus a certificate of how far off they can possibly be.
//
//	go run ./examples/approxsearch
package main

import (
	"fmt"
	"log"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

func main() {
	const (
		nImages = 2000
		queries = 6
		k       = 10
	)
	fmt.Printf("generating %d retina-like images (96-d tiled features)...\n", nImages+queries)
	ds, err := data.Retina(nImages+queries, 5)
	if err != nil {
		log.Fatal(err)
	}
	vectors, queryVecs, err := ds.Split(queries)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
		ReducedDims: 16,
		SampleSize:  48,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range vectors {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		log.Fatal(err)
	}

	var exactTime, approxTime time.Duration
	var overlap, total int
	for _, q := range queryVecs {
		start := time.Now()
		exact, _, err := eng.KNN(q, k)
		if err != nil {
			log.Fatal(err)
		}
		exactTime += time.Since(start)

		start = time.Now()
		approx, cert, err := eng.ApproxKNN(q, k)
		if err != nil {
			log.Fatal(err)
		}
		approxTime += time.Since(start)

		want := map[int]bool{}
		for _, r := range exact {
			want[r.Index] = true
		}
		for _, r := range approx {
			total++
			if want[r.Index] {
				overlap++
			}
		}
		_ = cert
	}

	fmt.Printf("\nexact k-NN:      %8v total (%d queries)\n", exactTime.Round(time.Millisecond), queries)
	fmt.Printf("approximate k-NN: %8v total — no full-dimensional LP solves\n", approxTime.Round(time.Millisecond))
	fmt.Printf("overlap with the exact answer: %.0f%%\n", 100*float64(overlap)/float64(total))

	// One query in detail, with its certificate.
	q := queryVecs[0]
	approx, cert, err := eng.ApproxKNN(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample query: top-5 with distance intervals (certificate: true 5th NN in [%.4f, %.4f], %d of %d candidates examined)\n",
		cert.LowerK, cert.UpperK, cert.Pulled, eng.Len())
	for rank, r := range approx {
		exactD, err := eng.Distance(q, r.Index) // shown for demonstration only
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. image #%d (%s): interval [%.4f, %.4f], exact %.4f\n",
			rank+1, r.Index, eng.Label(r.Index), r.Lower, r.Upper, exactD)
	}
}
