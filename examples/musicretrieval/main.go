// Music retrieval: range queries over spectral-band histograms (the
// paper's introduction cites EMD-based music retrieval). The example
// contrasts two reduction methods on the same corpus — the adjacent
// band merging natural for ordered spectra, and k-medoids clustering —
// and demonstrates range queries with chained filters.
//
//	go run ./examples/musicretrieval
package main

import (
	"fmt"
	"log"

	"emdsearch"
	"emdsearch/internal/data"
)

func main() {
	const (
		nTracks = 1200
		dim     = 48
		queries = 6
	)
	fmt.Printf("generating %d synthetic instrument spectra (%d bands)...\n", nTracks+queries, dim)
	ds, err := data.MusicSpectra(nTracks+queries, dim, 7)
	if err != nil {
		log.Fatal(err)
	}
	vectors, queryVecs, err := ds.Split(queries)
	if err != nil {
		log.Fatal(err)
	}

	build := func(method emdsearch.ReductionMethod) *emdsearch.Engine {
		eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
			ReducedDims: 8,
			Method:      method,
			SampleSize:  32,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, h := range vectors {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				log.Fatal(err)
			}
		}
		if err := eng.Build(); err != nil {
			log.Fatal(err)
		}
		return eng
	}

	for _, method := range []emdsearch.ReductionMethod{emdsearch.Adjacent, emdsearch.KMedoids, emdsearch.FBAll} {
		eng := build(method)
		var refinements, found int
		const eps = 0.02
		for _, q := range queryVecs {
			results, stats, err := eng.Range(q, eps)
			if err != nil {
				log.Fatal(err)
			}
			refinements += stats.Refinements
			found += len(results)
		}
		fmt.Printf("%-9s reduction: range queries (eps=%.2f) returned %.1f tracks/query, %5.1f refinements/query\n",
			method, eps, float64(found)/float64(queries), float64(refinements)/float64(queries))
	}

	// Detail: one range query with the flow-based engine.
	eng := build(emdsearch.FBAll)
	q := queryVecs[0]
	results, stats, err := eng.Range(q, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample range query (instrument %q, eps=0.03): %d matches, %d refinements\n",
		ds.Items[nTracks].Label, len(results), stats.Refinements)
	for i, r := range results {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(results)-8)
			break
		}
		fmt.Printf("  track #%d (%s) EMD %.4f\n", r.Index, eng.Label(r.Index), r.Dist)
	}
}
