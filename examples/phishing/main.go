// Phishing detection: EMD over word-frequency histograms of web pages
// (the paper's introduction cites EMD-based phishing detection). This
// example goes below the Engine facade to demonstrate the asymmetric
// reduction of Section 3.2: the database is reduced to d' dimensions
// for cheap filtering while the query stays at full dimensionality
// (R1 = identity, R2 = flow-based), which yields a strictly tighter —
// though per-evaluation costlier — rectangular filter EMD.
//
//	go run ./examples/phishing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
	"emdsearch/internal/emd"
	"emdsearch/internal/flowred"
	"emdsearch/internal/search"
)

func main() {
	const (
		nPages = 800
		vocab  = 64
		dprime = 8
		k      = 10
	)
	fmt.Printf("generating %d page word histograms (vocabulary %d)...\n", nPages+1, vocab)
	ds, err := data.Words(nPages+1, vocab, 21)
	if err != nil {
		log.Fatal(err)
	}
	vectors, queryVecs, err := ds.Split(1)
	if err != nil {
		log.Fatal(err)
	}
	q := queryVecs[0]
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		log.Fatal(err)
	}

	// Flow-based reduction for the database side.
	rng := rand.New(rand.NewSource(3))
	sample := flowred.Sample(vectors, 32, rng)
	flows, err := flowred.AverageFlows(sample, dist)
	if err != nil {
		log.Fatal(err)
	}
	r2, _, err := flowred.OptimizeAll(flowred.BaseAssignment(vocab), dprime, flows, ds.Cost, flowred.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Two filters over the same database-side reduction:
	// symmetric (query also reduced) vs asymmetric (query unreduced).
	sym, err := core.NewReducedEMD(ds.Cost, r2, r2)
	if err != nil {
		log.Fatal(err)
	}
	asym, err := core.NewReducedEMD(ds.Cost, core.Identity(vocab), r2)
	if err != nil {
		log.Fatal(err)
	}
	reducedVecs := make([]emd.Histogram, len(vectors))
	for i, v := range vectors {
		reducedVecs[i] = r2.Apply(v)
	}

	run := func(name string, stage search.FilterStage) {
		s := &search.Searcher{
			N:      len(vectors),
			Stages: []search.FilterStage{stage},
			Refine: func(q emd.Histogram, i int) float64 { return dist.Distance(q, vectors[i]) },
		}
		results, stats, err := s.KNN(q, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s filter: %3d refinements; top match #%d (%s) EMD %.4f\n",
			name, stats.Refinements, results[0].Index, ds.Items[results[0].Index].Label, results[0].Dist)
	}

	fmt.Printf("\nsuspicious page resembles topic %q; searching %d known pages (k=%d):\n",
		ds.Items[nPages].Label, nPages, k)
	run("symmetric", search.FilterStage{
		Name:         "Red-EMD",
		PrepareQuery: sym.Source().Apply,
		Distance:     func(qr emd.Histogram, i int) float64 { return sym.DistanceReduced(qr, reducedVecs[i]) },
	})
	run("asymmetric", search.FilterStage{
		Name:         "Asym-Red-EMD",
		PrepareQuery: func(x emd.Histogram) emd.Histogram { return x },
		Distance:     func(qf emd.Histogram, i int) float64 { return asym.DistanceReduced(qf, reducedVecs[i]) },
	})
	fmt.Println("\nboth pipelines return the exact EMD nearest neighbors; the asymmetric")
	fmt.Println("filter needs fewer refinements because its lower bound is tighter.")
}
