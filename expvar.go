package emdsearch

import (
	"expvar"
	"fmt"
)

// publishExpvar registers fn under name on the process-wide expvar
// page, converting expvar.Publish's reuse panic into an error — the
// registry is global and append-only, so a duplicate name is a caller
// bug best reported, not a crash.
func publishExpvar(name string, fn func() any) error {
	if name == "" {
		return fmt.Errorf("emdsearch: PublishExpvar: empty name")
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("emdsearch: PublishExpvar: %q is already published", name)
	}
	expvar.Publish(name, expvar.Func(fn))
	return nil
}

// PublishExpvar exports the engine's Metrics as the expvar variable
// `name`, rendered as JSON on /debug/vars by expvar's handler. The
// registration is process-global and permanent (expvar has no
// unpublish), so use one name per long-lived engine; a reused name is
// reported as an error. The published function snapshots Metrics on
// every read.
func (e *Engine) PublishExpvar(name string) error {
	return publishExpvar(name, func() any { return e.Metrics() })
}

// PublishExpvar exports the gate's admission metrics as the expvar
// variable `name`. Same registry semantics as Engine.PublishExpvar.
func (g *Gate) PublishExpvar(name string) error {
	return publishExpvar(name, func() any { return g.Metrics() })
}

// PublishExpvar exports the shard set's scatter-gather metrics —
// including every shard's engine, gate and health views — as the
// expvar variable `name`. Same registry semantics as
// Engine.PublishExpvar.
func (s *ShardSet) PublishExpvar(name string) error {
	return publishExpvar(name, func() any { return s.Metrics() })
}
