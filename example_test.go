package emdsearch_test

import (
	"fmt"

	"emdsearch"
)

// The paper's Figure 1: under the Manhattan ground distance, the EMD
// ranks the shifted histogram y closer to x than the unrelated z,
// matching perception where the bin-by-bin L1 distance fails.
func ExampleEMD() {
	x := emdsearch.Histogram{0.5, 0, 0.2, 0, 0.3, 0}
	y := emdsearch.Histogram{0, 0.5, 0, 0.2, 0, 0.3}
	z := emdsearch.Histogram{1, 0, 0, 0, 0, 0}
	cost := emdsearch.LinearCost(6)

	dxy, _ := emdsearch.EMD(x, y, cost)
	dxz, _ := emdsearch.EMD(x, z, cost)
	fmt.Printf("EMD(x,y) = %.1f\n", dxy)
	fmt.Printf("EMD(x,z) = %.1f\n", dxz)
	// Output:
	// EMD(x,y) = 1.0
	// EMD(x,z) = 1.6
}

// Index three histograms, build a reduced filter, and query: the
// engine returns exact EMD neighbors through the lossless filter
// chain.
func ExampleEngine() {
	cost := emdsearch.LinearCost(8)
	eng, _ := emdsearch.NewEngine(cost, emdsearch.Options{
		ReducedDims: 2,
		Method:      emdsearch.KMedoids, // data-independent: no sample needed
	})
	eng.Add("low", emdsearch.Histogram{0.7, 0.3, 0, 0, 0, 0, 0, 0})
	eng.Add("mid", emdsearch.Histogram{0, 0, 0, 0.5, 0.5, 0, 0, 0})
	eng.Add("high", emdsearch.Histogram{0, 0, 0, 0, 0, 0, 0.4, 0.6})
	eng.Build()

	q := emdsearch.Histogram{0, 0, 0.5, 0.5, 0, 0, 0, 0}
	results, _, _ := eng.KNN(q, 2)
	for _, r := range results {
		fmt.Printf("%s %.2f\n", eng.Label(r.Index), r.Dist)
	}
	// Output:
	// mid 1.00
	// low 2.20
}

// Signatures compare sparse cluster sets of different sizes directly.
func ExampleSignatureEMD() {
	a := emdsearch.Signature{
		Positions: [][]float64{{0, 0}},
		Weights:   []float64{1},
	}
	b := emdsearch.Signature{
		Positions: [][]float64{{0, 0}, {3, 4}},
		Weights:   []float64{0.5, 0.5},
	}
	d, _ := emdsearch.SignatureEMD(a, b, 2)
	fmt.Printf("%.1f\n", d)
	// Output:
	// 2.5
}

// Partial matching compares histograms of unequal total mass: only
// the smaller mass must be transported.
func ExamplePartialEMD() {
	x := emdsearch.Histogram{2, 0, 0}
	y := emdsearch.Histogram{0, 0, 1}
	d, _ := emdsearch.PartialEMD(x, y, emdsearch.LinearCost(3))
	fmt.Printf("%.1f\n", d)
	// Output:
	// 2.0
}
