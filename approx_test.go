package emdsearch

import (
	"testing"
)

func TestApproxKNNGuaranteesOnEngine(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	for _, q := range queries {
		approx, cert, err := eng.ApproxKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) != 5 {
			t.Fatalf("returned %d results", len(approx))
		}
		exact, _, err := eng.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		trueKth := exact[4].Dist
		if trueKth < cert.LowerK-1e-9 || trueKth > cert.UpperK+1e-9 {
			t.Fatalf("true k-th %g outside certificate [%g, %g]", trueKth, cert.LowerK, cert.UpperK)
		}
		for _, r := range approx {
			d := exactDist(t, eng, q, r.Index)
			if d < r.Lower-1e-9 || d > r.Upper+1e-9 {
				t.Fatalf("item %d exact %g outside [%g, %g]", r.Index, d, r.Lower, r.Upper)
			}
			if d > cert.UpperK+1e-9 {
				t.Fatalf("returned item %d exact %g above UpperK %g", r.Index, d, cert.UpperK)
			}
		}
	}
}

func TestApproxKNNNeedsReduction(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 30)
	if _, _, err := eng.ApproxKNN(queries[0], 3); err == nil {
		t.Error("ApproxKNN without reduction succeeded")
	}
}

func TestApproxKNNValidatesQuery(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 30)
	if _, _, err := eng.ApproxKNN(Histogram{1}, 3); err == nil {
		t.Error("accepted wrong-dimensional query")
	}
}

// TestApproxRecallReasonable: the approximate answer typically overlaps
// the exact answer substantially; assert a loose floor to catch
// regressions without overfitting to the data.
func TestApproxRecallReasonable(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 12, SampleSize: 24}, 200)
	var hit, total int
	for _, q := range queries {
		approx, _, err := eng.ApproxKNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := eng.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for _, r := range exact {
			want[r.Index] = true
		}
		for _, r := range approx {
			total++
			if want[r.Index] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	t.Logf("approximate recall: %.2f", recall)
	if recall < 0.3 {
		t.Errorf("approximate recall %.2f unreasonably low", recall)
	}
}
