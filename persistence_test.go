package emdsearch

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"emdsearch/internal/core"
	"emdsearch/internal/db"
	"emdsearch/internal/persist"
)

// typedPersistErr reports whether err matches one of the three typed
// persistence sentinels. Every file-state failure of the persistence
// API must satisfy this; a raw gob/binary error reaching the caller is
// a bug.
func typedPersistErr(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) || errors.Is(err, ErrConfigMismatch)
}

// randHist returns a random normalized histogram.
func randHist(rng *rand.Rand, d int) Histogram {
	h := make(Histogram, d)
	var sum float64
	for i := range h {
		h[i] = rng.Float64() + 0.01
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// assertSameState fails unless got and want hold identical items,
// identical soft-deleted sets, and answer a probe KNN identically.
func assertSameState(t *testing.T, got, want *Engine, probe Histogram) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("recovered %d items, want %d", got.Len(), want.Len())
	}
	if got.Alive() != want.Alive() {
		t.Fatalf("recovered %d alive items, want %d", got.Alive(), want.Alive())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Label(i) != want.Label(i) {
			t.Fatalf("item %d label %q, want %q", i, got.Label(i), want.Label(i))
		}
		gv, wv := got.Vector(i), want.Vector(i)
		if len(gv) != len(wv) {
			t.Fatalf("item %d has %d dims, want %d", i, len(gv), len(wv))
		}
		for j := range wv {
			if gv[j] != wv[j] {
				t.Fatalf("item %d component %d = %v, want %v", i, j, gv[j], wv[j])
			}
		}
		if got.Deleted(i) != want.Deleted(i) {
			t.Fatalf("item %d deleted=%v, want %v", i, got.Deleted(i), want.Deleted(i))
		}
	}
	k := want.Alive()
	if k > 3 {
		k = 3
	}
	if k == 0 {
		return
	}
	gres, _, gerr := got.KNN(probe, k)
	wres, _, werr := want.KNN(probe, k)
	if gerr != nil || werr != nil {
		t.Fatalf("probe KNN: got err %v, want err %v", gerr, werr)
	}
	for i := range wres {
		if gres[i].Index != wres[i].Index || math.Abs(gres[i].Dist-wres[i].Dist) > 1e-12 {
			t.Fatalf("probe KNN result %d: got %+v, want %+v", i, gres[i], wres[i])
		}
	}
}

// TestSaveLoadPersistsDeletes is the regression test for the
// resurrection bug: soft-deleted items must stay deleted across a
// save/load round-trip and stay excluded from every query kind.
func TestSaveLoadPersistsDeletes(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8}, 40)
	for _, id := range []int{3, 17, 39} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, eng.Cost(), Options{ReducedDims: 6, SampleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Alive() != eng.Alive() {
		t.Fatalf("loaded engine has %d alive items, want %d", loaded.Alive(), eng.Alive())
	}
	for _, id := range []int{3, 17, 39} {
		if !loaded.Deleted(id) {
			t.Errorf("item %d resurrected by save/load round-trip", id)
		}
	}
	q := queries[0]
	res, _, err := loaded.KNN(q, loaded.Alive())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Index == 3 || r.Index == 17 || r.Index == 39 {
			t.Fatalf("KNN over loaded engine returned deleted item %d", r.Index)
		}
	}
	if eps, err := loaded.EpsilonForCount(q, 10); err != nil {
		t.Fatal(err)
	} else {
		rr, _, err := loaded.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rr {
			if loaded.Deleted(r.Index) {
				t.Fatalf("Range over loaded engine returned deleted item %d", r.Index)
			}
		}
	}
}

// TestLoadValidatesVectors asserts that tampered persisted histograms
// — both in the legacy gob format and in the versioned snapshot format
// — fail loading with ErrCorrupt instead of planting NaN/invalid data
// into the validated query paths.
func TestLoadValidatesVectors(t *testing.T) {
	d := 6
	cost := LinearCost(d)

	// Legacy gob stream carrying a NaN histogram. The struct mirrors
	// db's unexported wire format; gob matches fields by name.
	type legacyItem struct {
		ID     int
		Label  string
		Vector []float64
	}
	type legacyRed struct {
		Assign  []int
		Reduced int
	}
	type legacySnap struct {
		Dim        int
		Items      []legacyItem
		Reductions map[string]legacyRed
	}
	nan := make([]float64, d)
	nan[0] = math.NaN()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacySnap{Dim: d, Items: []legacyItem{{ID: 0, Vector: nan}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, cost, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("legacy NaN vector: err = %v, want ErrCorrupt", err)
	}

	// Versioned snapshot carrying a NaN histogram: the section CRC is
	// valid (the writer was fed bad data), so only re-validation on
	// load can catch it.
	snap := &persist.Snapshot{
		Header: persist.Header{Dim: d, CostHash: persist.CostHash(cost), Items: 1},
		Items:  []persist.Item{{ID: 0, Label: "bad", Vector: nan}},
	}
	buf.Reset()
	if err := persist.WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, cost, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("snapshot NaN vector: err = %v, want ErrCorrupt", err)
	}

	// Unnormalized mass must be rejected the same way.
	heavy := make([]float64, d)
	for i := range heavy {
		heavy[i] = 1
	}
	snap.Items[0].Vector = heavy
	buf.Reset()
	if err := persist.WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, cost, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("snapshot unnormalized vector: err = %v, want ErrCorrupt", err)
	}

	// Out-of-range soft-delete ids are content corruption too.
	rng := rand.New(rand.NewSource(7))
	snap.Items[0].Vector = randHist(rng, d)
	snap.Deleted = []int{5}
	buf.Reset()
	if err := persist.WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, cost, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("snapshot out-of-range deleted id: err = %v, want ErrCorrupt", err)
	}
}

// TestLoadLegacyFallback exercises the version-0 path: a raw gob
// database written by the db layer (the pre-versioned Save format)
// must load through LoadEngine, restore the engine reduction, and fail
// with typed errors — never a raw gob error.
func TestLoadLegacyFallback(t *testing.T) {
	d := 8
	rng := rand.New(rand.NewSource(11))
	cost := LinearCost(d)
	store, err := db.New(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := store.Add("item", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	assign := []int{0, 0, 1, 1, 2, 2, 3, 3}
	red, err := core.NewReduction(assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Precompute("engine", red); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()

	loaded, err := LoadEngine(bytes.NewReader(legacy), cost, Options{ReducedDims: 4})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 12 {
		t.Fatalf("legacy load: %d items, want 12", loaded.Len())
	}
	got := loaded.Reduction()
	if len(got) != d {
		t.Fatalf("legacy load: reduction covers %d dims, want %d", len(got), d)
	}
	for i := range assign {
		if got[i] != assign[i] {
			t.Fatalf("legacy load: reduction assignment %v, want %v", got, assign)
		}
	}

	// d' disagreement between the saved reduction and Options.
	if _, err := LoadEngine(bytes.NewReader(legacy), cost, Options{ReducedDims: 3}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("legacy d' mismatch: err = %v, want ErrConfigMismatch", err)
	}
	// Dimensionality disagreement with the supplied cost matrix.
	if _, err := LoadEngine(bytes.NewReader(legacy), LinearCost(d+1), Options{}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("legacy dim mismatch: err = %v, want ErrConfigMismatch", err)
	}
	// Bytes that are neither the snapshot magic nor decodable gob.
	if _, err := LoadEngine(bytes.NewReader([]byte("definitely not a database")), cost, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage stream: err = %v, want ErrCorrupt", err)
	}
}

// TestLoadTypedErrors walks the snapshot-level failure taxonomy at the
// engine API: damage is ErrCorrupt, future formats are ErrVersion, and
// configuration disagreements are ErrConfigMismatch.
func TestLoadTypedErrors(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8}, 20)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cost := eng.Cost()
	opts := Options{ReducedDims: 6, SampleSize: 8}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := LoadEngine(bytes.NewReader(flipped), cost, opts); !typedPersistErr(err) {
		t.Fatalf("bit flip: err = %v, want typed persistence error", err)
	}

	if _, err := LoadEngine(bytes.NewReader(good[:len(good)-7]), cost, opts); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrCorrupt", err)
	}

	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(future[len(persist.Magic):], 99)
	if _, err := LoadEngine(bytes.NewReader(future), cost, opts); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}

	other := LinearCost(eng.Dim())
	if _, err := LoadEngine(bytes.NewReader(good), other, opts); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("different cost matrix: err = %v, want ErrConfigMismatch", err)
	}
	if _, err := LoadEngine(bytes.NewReader(good), LinearCost(eng.Dim()+1), opts); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("different dimensionality: err = %v, want ErrConfigMismatch", err)
	}
	if _, err := LoadEngine(bytes.NewReader(good), cost, Options{ReducedDims: 5, SampleSize: 8}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("different d': err = %v, want ErrConfigMismatch", err)
	}
}

// TestWALCheckpointRecover drives the full durability loop: log
// mutations, checkpoint, keep mutating, then recover from the on-disk
// state as a crashed process would and compare against the live
// engine. It also covers the crash window inside Checkpoint — a new
// snapshot with a not-yet-rotated log — where replay must recognize
// every record as already applied.
func TestWALCheckpointRecover(t *testing.T) {
	d := 8
	rng := rand.New(rand.NewSource(23))
	cost := LinearCost(d)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "engine.snap")
	walPath := filepath.Join(dir, "engine.wal")

	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.Add("pre", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := eng.Add("post", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{2, 12} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	probe := randHist(rng, d)

	// Crash now: recover purely from disk.
	rec, stats, err := RecoverEngine(snapPath, walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SnapshotLoaded {
		t.Error("recovery did not load the snapshot")
	}
	if stats.WALRecords != 7 || stats.WALSkipped != 0 || stats.TornBytes != 0 {
		t.Errorf("stats = %+v, want 7 applied, 0 skipped, 0 torn", *stats)
	}
	assertSameState(t, rec, eng, probe)

	// Crash inside Checkpoint, after the snapshot rename but before
	// the log rotation: the snapshot already contains every logged
	// mutation, so replay must skip all of them.
	if err := eng.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	rec, stats, err = RecoverEngine(snapPath, walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALRecords != 0 || stats.WALSkipped != 7 {
		t.Errorf("post-snapshot stats = %+v, want 0 applied, 7 skipped", *stats)
	}
	assertSameState(t, rec, eng, probe)

	// Completed checkpoint: the log is empty again.
	if err := eng.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	rec, stats, err = RecoverEngine(snapPath, walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALRecords != 0 || stats.WALSkipped != 0 {
		t.Errorf("post-checkpoint stats = %+v, want empty log", *stats)
	}
	assertSameState(t, rec, eng, probe)

	m := eng.Metrics()
	if m.WALAppends != 17 {
		t.Errorf("WALAppends = %d, want 17", m.WALAppends)
	}
	if m.Checkpoints != 2 {
		t.Errorf("Checkpoints = %d, want 2", m.Checkpoints)
	}
	if m.SnapshotSaves != 3 {
		t.Errorf("SnapshotSaves = %d, want 3", m.SnapshotSaves)
	}
	if rm := rec.Metrics(); rm.WALReplayed != 0 {
		t.Errorf("recovered engine WALReplayed = %d, want 0", rm.WALReplayed)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWALOnly recovers from a log with no snapshot at all — the
// engine never checkpointed before the crash.
func TestRecoverWALOnly(t *testing.T) {
	d := 6
	rng := rand.New(rand.NewSource(31))
	cost := LinearCost(d)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "engine.wal")

	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := eng.Add("x", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Delete(4); err != nil {
		t.Fatal(err)
	}
	rec, stats, err := RecoverEngine(filepath.Join(dir, "missing.snap"), walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLoaded {
		t.Error("recovery claims to have loaded a nonexistent snapshot")
	}
	if stats.WALRecords != 7 {
		t.Errorf("WALRecords = %d, want 7", stats.WALRecords)
	}
	if m := rec.Metrics(); m.WALReplayed != 7 {
		t.Errorf("WALReplayed = %d, want 7", m.WALReplayed)
	}
	assertSameState(t, rec, eng, randHist(rng, d))
}

// TestOpenWALGuards covers the refusal paths of OpenWAL: double open,
// and attaching a log that holds mutations the engine does not have
// (which silently re-logging would strand forever).
func TestOpenWALGuards(t *testing.T) {
	d := 6
	rng := rand.New(rand.NewSource(41))
	cost := LinearCost(d)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "engine.wal")

	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(filepath.Join(dir, "other.wal")); err == nil {
		t.Fatal("second OpenWAL succeeded")
	}
	if _, err := eng.Add("x", randHist(rng, d)); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// A fresh engine must not adopt the populated log as-is.
	fresh, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.OpenWAL(walPath); err == nil {
		t.Fatal("OpenWAL adopted a log holding unapplied mutations")
	}

	// The sanctioned sequence: recover, then reopen. A log that is
	// exactly the engine's history (or a prefix of it) is safe to
	// adopt — appends continue it and replay stays idempotent.
	rec, _, err := RecoverEngine(filepath.Join(dir, "missing.snap"), walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.OpenWAL(walPath); err != nil {
		t.Fatalf("OpenWAL after recovery: %v", err)
	}
	if _, err := rec.Add("y", randHist(rng, d)); err != nil {
		t.Fatal(err)
	}
	if err := rec.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	again, stats, err := RecoverEngine(filepath.Join(dir, "missing.snap"), walPath, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALRecords != 2 {
		t.Fatalf("continued log replayed %d records, want 2", stats.WALRecords)
	}
	assertSameState(t, again, rec, randHist(rng, d))

	// A same-shape engine with a different ground distance must be
	// rejected by the configuration fingerprint.
	other := LinearCost(d)
	for i := range other {
		for j := range other[i] {
			other[i][j] *= 2
		}
	}
	oeng, err := NewEngine(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := oeng.OpenWAL(walPath); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("foreign-cost OpenWAL: err = %v, want ErrConfigMismatch", err)
	}
}

// TestSaveFileAtomicity checks the file-level contract of SaveFile: a
// failed write leaves the previous snapshot untouched, a successful
// one replaces it completely.
func TestSaveFileAtomicity(t *testing.T) {
	eng, _ := buildEngine(t, Options{}, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.snap")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveFile(filepath.Join(dir, "no-such-dir", "engine.snap")); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile disturbed an unrelated snapshot")
	}
	if _, err := eng.Add("extra", randHist(rand.New(rand.NewSource(1)), eng.Dim())); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngineFile(path, eng.Cost(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != eng.Len() {
		t.Fatalf("reloaded %d items, want %d", loaded.Len(), eng.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "engine.snap" {
			t.Errorf("stray file %q left in snapshot directory", e.Name())
		}
	}
}

// TestConcurrentMutateCheckpointQuery exercises the durability path
// under concurrency: writers appending to the WAL, a checkpointer
// rotating it, and readers querying, all at once. Run under -race this
// is the synchronization regression test for the WAL plumbing.
func TestConcurrentMutateCheckpointQuery(t *testing.T) {
	d := 6
	cost := LinearCost(d)
	dir := t.TempDir()
	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(filepath.Join(dir, "engine.wal")); err != nil {
		t.Fatal(err)
	}
	seed := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		if _, err := eng.Add("seed", randHist(seed, d)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(3)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 30; i++ {
			if _, err := eng.Add("w", randHist(rng, d)); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := eng.Checkpoint(filepath.Join(dir, "engine.snap")); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 30; i++ {
			if _, _, err := eng.KNN(randHist(rng, d), 2); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// The final on-disk state must still recover to the live state.
	if err := eng.SaveFile(filepath.Join(dir, "engine.snap")); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverEngine(filepath.Join(dir, "engine.snap"), filepath.Join(dir, "engine.wal"), cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, rec, eng, randHist(seed, d))
}

// snapshotAsV1 rewrites a current-format snapshot as a version-1 file:
// the version word is patched and the fifth (quantized filter) frame is
// dropped. Frame lengths are self-describing, so the first four frames
// can be walked without decoding them.
func snapshotAsV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	off := len(persist.Magic) + 4
	for f := 0; f < 4; f++ {
		if off+12 > len(v2) {
			t.Fatalf("snapshot too short walking frame %d", f)
		}
		length := binary.LittleEndian.Uint32(v2[off:])
		off += 12 + int(length)
	}
	v1 := append([]byte(nil), v2[:off]...)
	binary.LittleEndian.PutUint32(v1[len(persist.Magic):], 1)
	return v1
}

// TestSaveLoadQuantFilter round-trips the quantized columnar filter:
// the saved section must be adopted on load (no requantization), the
// loaded engine must answer identically through the full stage chain,
// and a mutation after load must invalidate the adopted section rather
// than reuse stale data.
func TestSaveLoadQuantFilter(t *testing.T) {
	opts := Options{ReducedDims: 6, SampleSize: 8}
	eng, queries := buildEngine(t, opts, 50)
	q := queries[0]
	// Force a snapshot build so the engine stashes the quantized filter.
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The snapshot must actually carry the section.
	snap, err := persist.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Quant == nil {
		t.Fatal("snapshot of a queried reduced engine carries no quantized filter section")
	}
	if snap.Quant.N != eng.Len() {
		t.Fatalf("quant section covers %d items, engine has %d", snap.Quant.N, eng.Len())
	}

	loaded, err := LoadEngine(bytes.NewReader(raw), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stages[0].Name != "Q-Red-IM" {
		t.Fatalf("loaded engine stage chain starts with %q, want Q-Red-IM", stats.Stages[0].Name)
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	m := loaded.Metrics()
	if m.QuantizedReuses != 1 {
		t.Errorf("QuantizedReuses = %d, want 1 (saved section adopted)", m.QuantizedReuses)
	}

	// A mutation changes the item count: the adopted section no longer
	// matches and must be requantized, not reused.
	if _, err := loaded.Add("fresh", randHist(rand.New(rand.NewSource(5)), loaded.Dim())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.KNN(q, 5); err != nil {
		t.Fatal(err)
	}
	if m := loaded.Metrics(); m.QuantizedReuses != 1 {
		t.Errorf("QuantizedReuses after mutation = %d, want still 1", m.QuantizedReuses)
	}
}

// TestLoadV1Snapshot exercises backward compatibility: a version-1
// file (no quantized-filter frame) must load, rebuild the filter from
// the items, and answer identically to the engine that wrote it.
func TestLoadV1Snapshot(t *testing.T) {
	opts := Options{ReducedDims: 6, SampleSize: 8}
	eng, queries := buildEngine(t, opts, 40)
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := snapshotAsV1(t, buf.Bytes())

	snap, err := persist.ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if snap.Quant != nil {
		t.Fatal("version-1 snapshot decoded a quantized filter section")
	}

	loaded, err := LoadEngine(bytes.NewReader(v1), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stages[0].Name != "Q-Red-IM" {
		t.Fatalf("v1-loaded engine stage chain starts with %q, want Q-Red-IM (rebuilt)", stats.Stages[0].Name)
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if m := loaded.Metrics(); m.QuantizedReuses != 0 {
		t.Errorf("QuantizedReuses = %d, want 0 (nothing to adopt in a v1 file)", m.QuantizedReuses)
	}
}

// TestLoadRejectsBadQuantSection covers CRC-valid but semantically
// invalid quantized-filter sections: the frame decodes fine, so only
// load-time re-validation stands between the bytes and a silently
// wrong (or panicking) first filter stage. Every case must fail with
// ErrCorrupt.
func TestLoadRejectsBadQuantSection(t *testing.T) {
	opts := Options{ReducedDims: 6, SampleSize: 8}
	eng, queries := buildEngine(t, opts, 30)
	if _, _, err := eng.KNN(queries[0], 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if snap, err := persist.ReadSnapshot(bytes.NewReader(raw)); err != nil || snap.Quant == nil {
		t.Fatalf("fixture snapshot unusable: err=%v", err)
	}

	cases := []struct {
		name   string
		mutate func(q *persist.QuantSection)
	}{
		{"item count mismatch", func(q *persist.QuantSection) { q.N++ }},
		{"negative scale", func(q *persist.QuantSection) { q.Scales[0] = -1 }},
		{"NaN margin", func(q *persist.QuantSection) { q.Margins[0] = math.NaN() }},
		{"missing column", func(q *persist.QuantSection) { q.Cols = q.Cols[:len(q.Cols)-1] }},
		{"negative quantum", func(q *persist.QuantSection) { q.Cols[0][0] = -5 }},
		{"infinite cost maximum", func(q *persist.QuantSection) { q.CostMax = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := persist.ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(snap.Quant)
			var out bytes.Buffer
			if err := persist.WriteSnapshot(&out, snap); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadEngine(&out, eng.Cost(), opts); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestReopenWALRetryBounds pins the retry loop's timing: attempts-1
// jittered sleeps drawn from the 1ms, 2ms, 4ms ... schedule, each at
// least half its nominal delay (the jitter floor), none after the
// final failure, and an early return the moment the context ends.
func TestReopenWALRetryBounds(t *testing.T) {
	eng, err := NewEngine(LinearCost(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No WAL attached: every reopen fails instantly, so elapsed time
	// is the sleeps alone. attempts=4 sleeps ~1ms+2ms+4ms nominal,
	// floored at half by the jitter.
	start := time.Now()
	err = eng.ReopenWALRetry(context.Background(), 4)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ReopenWALRetry succeeded with no WAL attached")
	}
	if min := 3500 * time.Microsecond; elapsed < min {
		t.Fatalf("4 attempts took %v, below the %v jitter floor", elapsed, min)
	}
	if max := 2 * time.Second; elapsed > max {
		t.Fatalf("4 attempts took %v; the schedule is 1+2+4ms nominal", elapsed)
	}

	// Context expiry interrupts the backoff sleep.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start = time.Now()
	err = eng.ReopenWALRetry(ctx, 1000)
	elapsed = time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled retry loop ran %v past a 10ms deadline", elapsed)
	}

	// A healthy WAL heals on the first try: no sleeps.
	dir := t.TempDir()
	if err := eng.OpenWAL(filepath.Join(dir, "engine.wal")); err != nil {
		t.Fatal(err)
	}
	defer eng.CloseWAL()
	if err := eng.ReopenWALRetry(context.Background(), 3); err != nil {
		t.Fatalf("healthy reopen: %v", err)
	}
}
