package emdsearch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"emdsearch/internal/data"
)

// exactDist is the test-side shorthand for Engine.Distance, failing
// the test on error.
func exactDist(t *testing.T, e *Engine, q Histogram, i int) float64 {
	t.Helper()
	d, err := e.Distance(q, i)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// intervalContainsUlps reports lower <= x <= upper with `ulps` units
// in the last place of slack on each side. The exact EMD recomputed
// by a fresh simplex solve can land a few final bits away from the
// query-time certified value (summation order, warm starts); that is
// measurement noise in the reference, not an unsound interval.
func intervalContainsUlps(lower, upper, x float64, ulps int) bool {
	lo, hi := lower, upper
	for i := 0; i < ulps; i++ {
		lo = math.Nextafter(lo, math.Inf(-1))
		hi = math.Nextafter(hi, math.Inf(1))
	}
	return lo <= x && x <= hi
}

func buildEngine(t *testing.T, opts Options, n int) (*Engine, []Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(n+5, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	return eng, queries
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(CostMatrix{{0, 1}, {1}}, Options{}); err == nil {
		t.Error("accepted ragged cost")
	}
	rect := CostMatrix{{0, 1, 2}, {1, 0, 1}}
	if _, err := NewEngine(rect, Options{}); err == nil {
		t.Error("accepted rectangular cost")
	}
	if _, err := NewEngine(LinearCost(4), Options{ReducedDims: 5}); err == nil {
		t.Error("accepted ReducedDims > d")
	}
	if _, err := NewEngine(LinearCost(4), Options{ReducedDims: -1}); err == nil {
		t.Error("accepted negative ReducedDims")
	}
	if _, err := NewEngine(LinearCost(4), Options{Method: "bogus", ReducedDims: 2}); err != nil {
		t.Error("method validity should surface at Build, not construction")
	}
}

func TestEngineExactnessAllMethods(t *testing.T) {
	for _, m := range []ReductionMethod{FBAll, FBMod, KMedoids, Adjacent} {
		t.Run(string(m), func(t *testing.T) {
			eng, queries := buildEngine(t, Options{ReducedDims: 8, Method: m, SampleSize: 10}, 120)
			scan, scanQueries := buildEngine(t, Options{}, 120)
			_ = scanQueries
			for _, q := range queries {
				got, stats, err := eng.KNN(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := scan.KNN(q, 7)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("got %d results, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
				if stats.Refinements > eng.Len() {
					t.Errorf("refinements %d exceed database size", stats.Refinements)
				}
			}
		})
	}
}

func TestEnginePrunes(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, 200)
	var total int
	for _, q := range queries {
		_, stats, err := eng.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		total += stats.Refinements
	}
	if total >= 5*eng.Len() {
		t.Errorf("filter chain refined everything: %d refinements over 5 queries on %d items", total, eng.Len())
	}
}

func TestEngineScanMode(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 60)
	if eng.Reduction() != nil {
		t.Error("scan engine has a reduction")
	}
	_, stats, err := eng.KNN(queries[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Refinements != eng.Len() {
		t.Errorf("scan mode refined %d of %d", stats.Refinements, eng.Len())
	}
}

func TestEngineQueryValidation(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 30)
	if _, _, err := eng.KNN(Histogram{0.5, 0.5}, 3); err == nil {
		t.Error("accepted wrong-dimensional query")
	}
	bad := make(Histogram, 32)
	bad[0] = 2
	if _, _, err := eng.KNN(bad, 3); err == nil {
		t.Error("accepted unnormalized query")
	}
	if _, _, err := eng.Range(Histogram{1}, 0.5); err == nil {
		t.Error("Range accepted wrong-dimensional query")
	}
}

func TestEngineRange(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, 100)
	q := queries[0]
	results, _, err := eng.Range(q, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct distances.
	count := 0
	for i := 0; i < eng.Len(); i++ {
		if exactDist(t, eng, q, i) <= 0.08 {
			count++
		}
	}
	if len(results) != count {
		t.Errorf("range returned %d, scan finds %d", len(results), count)
	}
	for _, r := range results {
		if r.Dist > 0.08 {
			t.Errorf("result %d outside range: %g", r.Index, r.Dist)
		}
	}
}

func TestEngineAddAfterBuild(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8}, 50)
	before := eng.Len()
	// Insert a histogram identical to the query: it must become the
	// 1-NN without rebuilding.
	q := queries[0]
	id, err := eng.Add("inserted", q)
	if err != nil {
		t.Fatal(err)
	}
	if id != before {
		t.Errorf("new id %d, want %d", id, before)
	}
	results, _, err := eng.KNN(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Index != id || results[0].Dist > 1e-9 {
		t.Errorf("inserted duplicate not found as 1-NN: %+v", results[0])
	}
}

func TestEngineBuildErrors(t *testing.T) {
	eng, err := NewEngine(LinearCost(8), Options{ReducedDims: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Build(); err == nil {
		t.Error("Build on empty engine succeeded")
	}
	if _, err := eng.Add("", Histogram{1, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Build(); err == nil {
		t.Error("flow-based Build with a single histogram succeeded")
	}
	eng2, _ := NewEngine(LinearCost(8), Options{ReducedDims: 4, Method: "bogus"})
	eng2.Add("", Histogram{1, 0, 0, 0, 0, 0, 0, 0})
	if err := eng2.Build(); err == nil {
		t.Error("unknown method accepted at Build")
	}
}

func TestEngineKNNWithoutBuildUsesScan(t *testing.T) {
	eng, err := NewEngine(LinearCost(4), Options{ReducedDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Add("", Histogram{1, 0, 0, 0})
	eng.Add("", Histogram{0, 0, 0, 1})
	// No Build: engine must still answer correctly (unreduced scan).
	res, _, err := eng.KNN(Histogram{0.9, 0.1, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 0 {
		t.Errorf("1-NN = %d, want 0", res[0].Index)
	}
}

func TestEngineSaveLoad(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8}, 40)
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ds, _ := data.MusicSpectra(1, 32, 9)
	loaded, err := LoadEngine(&buf, ds.Cost, Options{ReducedDims: 6, SampleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != eng.Len() {
		t.Fatalf("loaded %d items, want %d", loaded.Len(), eng.Len())
	}
	// Same reduction, same results, no rebuild needed.
	gotRed := loaded.Reduction()
	wantRed := eng.Reduction()
	for i := range wantRed {
		if gotRed[i] != wantRed[i] {
			t.Fatal("reduction not preserved")
		}
	}
	for _, q := range queries[:2] {
		got, _, err := loaded.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestEngineLabelsAndVectors(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 20)
	if eng.Label(0) == "" {
		t.Error("label lost")
	}
	if len(eng.Vector(0)) != eng.Dim() {
		t.Error("vector dimensionality wrong")
	}
}

func TestEMDTopLevel(t *testing.T) {
	x := Histogram{0.5, 0, 0.2, 0, 0.3, 0}
	y := Histogram{0, 0.5, 0, 0.2, 0, 0.3}
	d, err := EMD(x, y, LinearCost(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0) > 1e-12 {
		t.Errorf("EMD = %g, want 1.0", d)
	}
	_, flow, err := EMDWithFlow(x, y, LinearCost(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(flow) != 6 {
		t.Errorf("flow rows %d, want 6", len(flow))
	}
	h := Normalize(Histogram{2, 6})
	if h[1] != 0.75 {
		t.Errorf("Normalize = %v", h)
	}
}

func TestCostConstructorsExported(t *testing.T) {
	if c := ModuloCost(6); c[0][5] != 1 {
		t.Error("ModuloCost wrong")
	}
	gc, err := GridCost(2, 2, 2)
	if err != nil || gc.Rows() != 4 {
		t.Errorf("GridCost: %v %v", gc, err)
	}
	pc, err := PositionCost([][]float64{{0}}, [][]float64{{3}}, 1)
	if err != nil || pc[0][0] != 3 {
		t.Errorf("PositionCost: %v %v", pc, err)
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	rngData := rand.New(rand.NewSource(1))
	_ = rngData
	a, qa := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8, Seed: 7}, 60)
	b, _ := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8, Seed: 7}, 60)
	ra, rb := a.Reduction(), b.Reduction()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("same seed produced different reductions")
		}
	}
	got, _, err := a.KNN(qa[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := b.KNN(qa[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestEngineCentroidPreFilter(t *testing.T) {
	ds, err := data.ColorImages(160, 5)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	withCentroid, err := NewEngine(ds.Cost, Options{
		ReducedDims: 8,
		SampleSize:  16,
		Positions:   ds.Positions,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(ds.Cost, Options{ReducedDims: 8, SampleSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		withCentroid.Add(ds.Items[i].Label, h)
		plain.Add(ds.Items[i].Label, h)
	}
	if err := withCentroid.Build(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Build(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, gotStats, err := withCentroid.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := plain.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index {
				t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
		if len(gotStats.StageEvaluations) != 2 {
			t.Fatalf("expected 2 chained stages (Red-IM, Red-EMD) over the k-d tree base, got %v", gotStats.StageEvaluations)
		}
		// With the incremental centroid base ranking, no stage scans
		// the whole database.
		for si, evals := range gotStats.StageEvaluations {
			if evals >= withCentroid.Len() {
				t.Errorf("stage %d evaluated %d of %d items — base ranking not lazy", si, evals, withCentroid.Len())
			}
		}
	}
}

func TestEngineCentroidRejectsMismatchedPositions(t *testing.T) {
	// Linear |i-j| cost with 2-D positions that do not generate it.
	pos := make([][]float64, 8)
	for i := range pos {
		pos[i] = []float64{float64(i) * 2, 0}
	}
	eng, err := NewEngine(LinearCost(8), Options{Positions: pos})
	if err != nil {
		t.Fatal(err)
	}
	eng.Add("", Histogram{1, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := eng.KNN(Histogram{1, 0, 0, 0, 0, 0, 0, 0}, 1); err == nil {
		t.Error("mismatched positions accepted")
	}
}

func TestFacadeSignatureAndPartial(t *testing.T) {
	a := Signature{Positions: [][]float64{{0, 0}}, Weights: []float64{1}}
	b := Signature{Positions: [][]float64{{3, 4}}, Weights: []float64{1}}
	d, err := SignatureEMD(a, b, 2)
	if err != nil || math.Abs(d-5) > 1e-12 {
		t.Errorf("SignatureEMD = %g, %v", d, err)
	}
	p, err := PartialEMD(Histogram{2, 0}, Histogram{0, 1}, LinearCost(2))
	if err != nil || math.Abs(p-1) > 1e-12 {
		t.Errorf("PartialEMD = %g, %v", p, err)
	}
	ph, err := PenalizedEMD(Histogram{2, 0}, Histogram{0, 1}, LinearCost(2), 0.5)
	if err != nil || math.Abs(ph-1.5) > 1e-12 {
		t.Errorf("PenalizedEMD = %g, %v", ph, err)
	}
}

func TestEngineAsymmetricQueryExactAndTighter(t *testing.T) {
	sym, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	asym, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16, AsymmetricQuery: true}, 150)
	var symRefine, asymRefine int
	for _, q := range queries {
		got, aStats, err := asym.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, sStats, err := sym.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("result %d: asym %+v vs sym %+v", i, got[i], want[i])
			}
		}
		symRefine += sStats.Refinements
		asymRefine += aStats.Refinements
	}
	if asymRefine > symRefine {
		t.Errorf("asymmetric filter refined more (%d) than symmetric (%d)", asymRefine, symRefine)
	}
}
