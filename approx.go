package emdsearch

import (
	"context"
	"fmt"
	"math"

	"emdsearch/internal/search"
)

// ApproxResult is one approximate answer: a database item with a
// guaranteed interval [Lower, Upper] containing its exact EMD to the
// query.
type ApproxResult struct {
	Index        int
	Lower, Upper float64
}

// ApproxCertificate bounds the quality of an ApproxKNN answer: the
// true k-th nearest distance lies in [LowerK, UpperK] and every
// returned item's exact distance is at most UpperK. Pulled counts the
// candidates examined; no full-dimensional transportation LP was
// solved for any of them.
type ApproxCertificate struct {
	LowerK, UpperK float64
	Pulled         int
}

// ApproxKNN answers a k-NN query approximately but with guarantees,
// without solving a single full-dimensional transportation LP: the
// optimal (min-cost) reduced EMD lower-bounds each distance from the
// precomputed reduced vectors, and a greedy feasible flow on the
// original vectors (O(d^2), roughly two orders of magnitude cheaper
// than the exact solver) upper-bounds it. Candidates are pulled in
// lower-bound order until the certificate closes; the k candidates
// with the smallest upper bounds are returned with their intervals.
// Requires a built reduction (ReducedDims > 0 and Build called). Safe
// for concurrent use: the reduced database vectors come precomputed
// from the engine snapshot and the greedy bound evaluator (whose
// scratch state is goroutine-private) is drawn from a pool.
func (e *Engine) ApproxKNN(q Histogram, k int) ([]ApproxResult, *ApproxCertificate, error) {
	return e.approxKNN(context.Background(), q, k)
}

func (e *Engine) approxKNN(ctx context.Context, q Histogram, k int) ([]ApproxResult, *ApproxCertificate, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, nil, err
	}
	if s.red == nil {
		return nil, nil, fmt.Errorf("emdsearch: ApproxKNN needs a built reduction (set ReducedDims and call Build)")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	upper := s.greedyUpper()
	defer s.putGreedy(upper)
	qr := s.red.Apply(q)
	lowers := make([]float64, len(s.vectors))
	buf := s.reducedScratch()
	for i := range s.vectors {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if s.deleted[i] {
			lowers[i] = math.Inf(1)
			continue
		}
		lowers[i] = s.reduced.DistanceReduced(qr, s.finestReduced(i, buf))
	}
	intervals, cert, err := search.ApproxKNN(search.NewScanRanking(lowers), func(i int) float64 {
		if s.deleted[i] {
			return math.Inf(1)
		}
		return upper.Distance(q, s.vectors[i])
	}, k)
	if err != nil {
		return nil, nil, err
	}
	out := make([]ApproxResult, len(intervals))
	for i, iv := range intervals {
		out[i] = ApproxResult{Index: iv.Index, Lower: iv.Lower, Upper: iv.Upper}
	}
	return out, &ApproxCertificate{LowerK: cert.LowerK, UpperK: cert.UpperK, Pulled: cert.Pulled}, nil
}
