package emdsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosEngine builds a small engine whose refinements panic while
// *panics is true — the injected solver-invariant failure every
// containment test needs. The hook reads the flag atomically, so tests
// can flip faults on and off mid-run without rebuilding the engine.
func chaosEngine(t *testing.T, n, d, workers int, panics *atomic.Bool) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	eng, err := NewEngine(LinearCost(d), Options{
		ReducedDims: 2,
		Workers:     workers,
		Seed:        1,
		RefineHook: func(index int) {
			if panics.Load() {
				panic(fmt.Sprintf("injected solver fault refining item %d", index))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := eng.Add(fmt.Sprintf("item-%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBadQueryAllEntryPoints drives every public query entry point —
// engine and gate — with each class of malformed input and asserts the
// uniform contract: the error wraps ErrBadQuery, nothing panics, and
// nothing is silently accepted.
func TestBadQueryAllEntryPoints(t *testing.T) {
	var off atomic.Bool
	eng := chaosEngine(t, 30, 4, 1, &off)
	gate := NewGate(eng, GateOptions{})
	ctx := context.Background()
	good := Histogram{0.25, 0.25, 0.25, 0.25}
	short := Histogram{0.5, 0.5}
	cases := []struct {
		name string
		call func() error
	}{
		{"KNN/wrong-dim", func() error { _, _, err := eng.KNN(short, 3); return err }},
		{"KNN/k=0", func() error { _, _, err := eng.KNN(good, 0); return err }},
		{"KNNCtx/wrong-dim", func() error { _, err := eng.KNNCtx(ctx, short, 3); return err }},
		{"KNNCtx/k=-1", func() error { _, err := eng.KNNCtx(ctx, good, -1); return err }},
		{"KNNWhere/nil-pred", func() error { _, _, err := eng.KNNWhere(good, 3, nil); return err }},
		{"KNNWhereCtx/nil-pred", func() error { _, err := eng.KNNWhereCtx(ctx, good, 3, nil); return err }},
		{"KNNWithLabel/wrong-dim", func() error { _, _, err := eng.KNNWithLabel(short, 3, "item-1"); return err }},
		{"Range/negative-eps", func() error { _, _, err := eng.Range(good, -1); return err }},
		{"Range/nan-eps", func() error { _, _, err := eng.Range(good, math.NaN()); return err }},
		{"RangeCtx/wrong-dim", func() error { _, _, err := eng.RangeCtx(ctx, short, 1); return err }},
		{"RangeIDs/negative-eps", func() error { _, err := eng.RangeIDs(good, -1); return err }},
		{"RangeIDsCtx/wrong-dim", func() error { _, err := eng.RangeIDsCtx(ctx, short, 1); return err }},
		{"BatchKNN/empty", func() error { _, err := eng.BatchKNN(nil, 3, 1); return err }},
		{"BatchKNN/k=0", func() error { _, err := eng.BatchKNN([]Histogram{good}, 0, 1); return err }},
		{"BatchKNNCtx/empty", func() error { _, err := eng.BatchKNNCtx(ctx, nil, 3, 1); return err }},
		{"Distance/out-of-range", func() error { _, err := eng.Distance(good, 10_000); return err }},
		{"Distance/negative-index", func() error { _, err := eng.Distance(good, -1); return err }},
		{"DistanceCtx/wrong-dim", func() error { _, err := eng.DistanceCtx(ctx, short, 0); return err }},
		{"Gate.KNN/wrong-dim", func() error { _, err := gate.KNN(ctx, short, 3); return err }},
		{"Gate.KNN/k=0", func() error { _, err := gate.KNN(ctx, good, 0); return err }},
		{"Gate.Range/negative-eps", func() error { _, _, err := gate.Range(ctx, good, -1); return err }},
		{"Gate.RangeIDs/wrong-dim", func() error { _, err := gate.RangeIDs(ctx, short, 1); return err }},
		{"Gate.BatchKNN/empty", func() error { _, err := gate.BatchKNN(ctx, nil, 3, 1); return err }},
		{"Gate.BatchKNN/k=0", func() error { _, err := gate.BatchKNN(ctx, []Histogram{good}, 0, 1); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("malformed query accepted")
			}
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("err = %v, does not wrap ErrBadQuery", err)
			}
		})
	}
	// A malformed query inside an otherwise valid batch surfaces on
	// that entry only, also as ErrBadQuery.
	res, err := eng.BatchKNN([]Histogram{good, short}, 3, 2)
	if err != nil {
		t.Fatalf("batch with one bad query failed wholesale: %v", err)
	}
	if res[0].Err != nil {
		t.Fatalf("good batch entry errored: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrBadQuery) {
		t.Fatalf("bad batch entry err = %v, want ErrBadQuery", res[1].Err)
	}
}

// TestPanicContainment proves a solver panic mid-refinement neither
// unwinds into the caller nor poisons the engine: the query fails with
// a typed ErrInternal carrying the faulting item and stack, the panic
// metric ticks, and the very next query (fault off) succeeds — in both
// the sequential and the parallel refinement paths.
func TestPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var panics atomic.Bool
			eng := chaosEngine(t, 40, 4, workers, &panics)
			rng := rand.New(rand.NewSource(2))
			q := randHist(rng, 4)

			panics.Store(true)
			_, _, err := eng.KNN(q, 5)
			if !errors.Is(err, ErrInternal) {
				t.Fatalf("KNN during fault: err = %v, want ErrInternal", err)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v, not an *InternalError", err)
			}
			if ie.Index < 0 || len(ie.Stack) == 0 {
				t.Fatalf("InternalError missing context: index=%d stack=%dB", ie.Index, len(ie.Stack))
			}
			if _, _, err := eng.Range(q, 0.5); !errors.Is(err, ErrInternal) {
				t.Fatalf("Range during fault: err = %v, want ErrInternal", err)
			}

			panics.Store(false)
			res, _, err := eng.KNN(q, 5)
			if err != nil {
				t.Fatalf("KNN after fault cleared: %v", err)
			}
			if len(res) != 5 {
				t.Fatalf("KNN after fault returned %d results, want 5", len(res))
			}
			if eng.Metrics().QueryPanics == 0 {
				t.Fatal("QueryPanics metric did not tick")
			}
		})
	}
}

// TestChaosBitIdentity is the corruption check behind the containment
// claim: after injected panics are drained, a chaos engine's answers
// are bit-identical (index and float bit pattern) to a never-faulted
// engine built from the same data — a contained panic leaves no
// residue in pooled solver state or the snapshot pipeline.
func TestChaosBitIdentity(t *testing.T) {
	var never atomic.Bool
	clean := chaosEngine(t, 50, 4, 2, &never)

	var panics atomic.Bool
	chaotic := chaosEngine(t, 50, 4, 2, &panics)

	rng := rand.New(rand.NewSource(3))
	sawFault := false
	for qi := 0; qi < 10; qi++ {
		q := randHist(rng, 4)
		want, _, err := clean.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Fault the first attempts, then let a retry through — the
		// client-visible shape of a transient solver bug.
		panics.Store(true)
		if _, _, err := chaotic.KNN(q, 5); errors.Is(err, ErrInternal) {
			sawFault = true
		}
		panics.Store(false)
		got, _, err := chaotic.KNN(q, 5)
		if err != nil {
			t.Fatalf("query %d after fault: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index ||
				math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
				t.Fatalf("query %d result %d: got (%d, %x) want (%d, %x) — fault residue",
					qi, i, got[i].Index, math.Float64bits(got[i].Dist),
					want[i].Index, math.Float64bits(want[i].Dist))
			}
		}
	}
	if !sawFault {
		t.Fatal("chaos injection never fired; test proves nothing")
	}
}

// TestBreakerTripsAndRecovers walks the full breaker lifecycle:
// repeated injected faults trip it open, open-state k-NN serves
// certified lower-bound-only answers with zero exact solves while
// range queries shed with a typed overload error, and after the
// cooldown a clean probe closes it and exact serving resumes.
func TestBreakerTripsAndRecovers(t *testing.T) {
	var panics atomic.Bool
	eng := chaosEngine(t, 40, 4, 1, &panics)
	gate := NewGate(eng, GateOptions{
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
	})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))
	q := randHist(rng, 4)

	panics.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := gate.KNN(ctx, q, 5); !errors.Is(err, ErrInternal) {
			t.Fatalf("fault %d: err = %v, want ErrInternal", i, err)
		}
	}
	if st := gate.BreakerState(); st != "open" {
		t.Fatalf("breaker %s after %d faults, want open", st, 2)
	}

	// Open: k-NN degrades to certified LB-only answers — no exact
	// solves, so the still-faulting hook cannot fire.
	ans, err := gate.KNN(ctx, q, 5)
	if err != nil {
		t.Fatalf("KNN with breaker open: %v", err)
	}
	if !ans.Degraded || len(ans.Anytime) == 0 {
		t.Fatalf("breaker-open answer degraded=%v anytime=%d, want certified degraded items", ans.Degraded, len(ans.Anytime))
	}
	for i, it := range ans.Anytime {
		if it.Refined {
			t.Fatalf("breaker-open item %d claims exact refinement", i)
		}
		if it.Lower > it.Upper {
			t.Fatalf("item %d certificate inverted: [%g, %g]", i, it.Lower, it.Upper)
		}
	}
	// Open: range queries have no solve-free form, so they shed.
	if _, _, err := gate.Range(ctx, q, 0.5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Range with breaker open: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	_, _, err = gate.Range(ctx, q, 0.5)
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("breaker-open shed carries no retry-after: %v", err)
	}

	// Heal the solver, wait out the cooldown: the next query is the
	// half-open probe, its success closes the breaker.
	panics.Store(false)
	time.Sleep(40 * time.Millisecond)
	ans, err = gate.KNN(ctx, q, 5)
	if err != nil {
		t.Fatalf("probe query: %v", err)
	}
	if ans.Degraded {
		t.Fatal("probe query degraded, want exact")
	}
	if st := gate.BreakerState(); st != "closed" {
		t.Fatalf("breaker %s after clean probe, want closed", st)
	}
	if got := gate.Metrics().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
}

// TestGateChaosUnderMutation is the race harness for the whole
// overload layer: gate-admitted KNN, Range and BatchKNN run against
// concurrent Add, Delete and Checkpoint with randomly injected solver
// panics, and every single query must resolve to exactly one of a
// full result, a certified degraded answer, or a typed error. Run
// with -race in CI.
func TestGateChaosUnderMutation(t *testing.T) {
	var ctr atomic.Uint64
	var chaos atomic.Bool
	rng := rand.New(rand.NewSource(5))
	const d = 4
	eng, err := NewEngine(LinearCost(d), Options{
		ReducedDims: 2,
		Workers:     2,
		Seed:        1,
		RefineHook: func(index int) {
			// Deterministic sparse faults: roughly 1 in 50 refinements
			// panics once chaos is on.
			if chaos.Load() && ctr.Add(1)%50 == 0 {
				panic(fmt.Sprintf("chaos fault on item %d", index))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := eng.Add(fmt.Sprintf("seed-%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	gate := NewGate(eng, GateOptions{
		MaxConcurrent:    4,
		MaxQueue:         8,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Millisecond,
	})
	chaos.Store(true)

	queriesPer := 30
	clients := 6
	if testing.Short() {
		queriesPer, clients = 10, 3
	}
	var (
		wg         sync.WaitGroup
		unresolved atomic.Int64
		outcomes   [4]atomic.Int64 // ok, degraded, typed error, shed
	)
	classifyKNN := func(ans *KNNAnswer, err error) {
		switch {
		case err == nil && ans != nil && !ans.Degraded:
			outcomes[0].Add(1)
		case ans != nil && ans.Degraded:
			outcomes[1].Add(1)
		case errors.Is(err, ErrOverloaded):
			outcomes[3].Add(1)
		case errors.Is(err, ErrInternal) || errors.Is(err, ErrBadQuery),
			errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			outcomes[2].Add(1)
		default:
			unresolved.Add(1)
		}
	}
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		mrng := rand.New(rand.NewSource(6))
		dir := t.TempDir()
		for i := 0; ; i++ {
			select {
			case <-stopMut:
				return
			default:
			}
			switch i % 7 {
			case 3:
				_ = eng.Delete(mrng.Intn(eng.Len()))
			case 5:
				_ = eng.Checkpoint(filepath.Join(dir, "ck"))
			default:
				if _, err := eng.Add("mut", randHist(mrng, d)); err != nil {
					t.Errorf("mutation add: %v", err)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < queriesPer; i++ {
				q := randHist(qrng, d)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				switch i % 3 {
				case 0:
					classifyKNN(gate.KNN(ctx, q, 5))
				case 1:
					res, _, err := gate.Range(ctx, q, 0.3)
					switch {
					case err == nil:
						outcomes[0].Add(1)
						_ = res
					case errors.Is(err, ErrOverloaded):
						outcomes[3].Add(1)
					case errors.Is(err, ErrInternal), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						outcomes[2].Add(1)
					default:
						unresolved.Add(1)
					}
				case 2:
					batch, err := gate.BatchKNN(ctx, []Histogram{q, randHist(qrng, d)}, 3, 2)
					if err != nil {
						if errors.Is(err, ErrOverloaded) {
							outcomes[3].Add(1)
						} else {
							unresolved.Add(1)
						}
						cancel()
						continue
					}
					for _, br := range batch {
						classifyKNN(br.Answer, br.Err)
					}
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(stopMut)
	mutWG.Wait()

	if n := unresolved.Load(); n != 0 {
		t.Fatalf("%d queries resolved to none of {result, degraded answer, typed error}", n)
	}
	t.Logf("outcomes: ok=%d degraded=%d typed-error=%d shed=%d breaker=%s trips=%d",
		outcomes[0].Load(), outcomes[1].Load(), outcomes[2].Load(), outcomes[3].Load(),
		gate.BreakerState(), gate.Metrics().BreakerTrips)
	if outcomes[0].Load() == 0 {
		t.Fatal("no query ever fully succeeded under chaos")
	}
}

// TestGateShedsFast pins the load-shedding latency contract: with the
// only slot and the only queue position deterministically held (a
// refinement parked on a channel), an incoming query is rejected with
// a typed OverloadError carrying queue depth, well under a
// millisecond.
func TestGateShedsFast(t *testing.T) {
	var blockOn atomic.Bool
	unblock := make(chan struct{})
	rng := rand.New(rand.NewSource(7))
	const d = 4
	eng, err := NewEngine(LinearCost(d), Options{
		ReducedDims: 2,
		Seed:        1,
		RefineHook: func(int) {
			if blockOn.Load() {
				<-unblock
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := eng.Add("item", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	gate := NewGate(eng, GateOptions{MaxConcurrent: 1, MaxQueue: 1})
	q := randHist(rng, d)

	blockOn.Store(true)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gate.KNN(context.Background(), q, 5); err != nil {
				t.Errorf("holder query: %v", err)
			}
		}()
	}
	// Holder 1 parks inside refinement holding the slot; holder 2 waits
	// for the slot, filling the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := gate.Metrics()
		if m.InFlight >= 1 && m.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("limiter never saturated")
		}
		time.Sleep(100 * time.Microsecond)
	}

	t0 := time.Now()
	_, err = gate.KNN(context.Background(), q, 5)
	lat := time.Since(t0)
	blockOn.Store(false)
	close(unblock)
	wg.Wait()

	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated gate: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, not an *OverloadError", err)
	}
	if oe.QueueDepth < 1 {
		t.Fatalf("OverloadError.QueueDepth = %d, want >= 1", oe.QueueDepth)
	}
	if lat > time.Millisecond {
		t.Fatalf("shed took %v, want < 1ms", lat)
	}
}

// TestGateBatchKNNMixedOutcomes drives a batch through a gate sized
// for exactly one running and one queued query, with slow refinements
// and an aggressive degrade policy, so one batch mixes all three
// per-query outcomes: served in full, served degraded, and shed with
// ErrOverloaded. Each entry must resolve independently — no error or
// partial answer may leak into a sibling's slot.
func TestGateBatchKNNMixedOutcomes(t *testing.T) {
	d := 8
	rng := rand.New(rand.NewSource(31))
	eng, err := NewEngine(LinearCost(d), Options{
		ReducedDims: 2,
		Seed:        1,
		RefineHook:  func(int) { time.Sleep(2 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.Add(fmt.Sprintf("item-%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	gate := NewGate(eng, GateOptions{
		MaxConcurrent: 1,
		MaxQueue:      1,
		DegradeAt:     0.01, // any queue occupancy degrades admitted queries
		DegradeBudget: 4 * time.Millisecond,
	})

	const batch, k = 10, 3
	queries := make([]Histogram, batch)
	for i := range queries {
		queries[i] = randHist(rng, d)
	}
	out, err := gate.BatchKNN(context.Background(), queries, k, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != batch {
		t.Fatalf("%d entries for %d queries", len(out), batch)
	}

	ok, degraded, shed := 0, 0, 0
	for i, r := range out {
		if r.Query != i {
			t.Fatalf("entry %d labeled query %d", i, r.Query)
		}
		switch {
		case r.Err != nil:
			if !errors.Is(r.Err, ErrOverloaded) {
				t.Fatalf("entry %d failed with %v, want ErrOverloaded", i, r.Err)
			}
			if r.Answer != nil && len(r.Answer.Results) > 0 {
				t.Fatalf("shed entry %d carries results: %+v", i, r.Answer)
			}
			shed++
		case r.Answer.Degraded:
			// A degraded answer is sound: every confirmed result is the
			// exact distance for ITS OWN query — a cross-contaminated
			// slot would fail this check.
			for _, res := range r.Answer.Results {
				exact := exactDist(t, eng, queries[i], res.Index)
				if math.Float64bits(res.Dist) != math.Float64bits(exact) {
					t.Fatalf("degraded entry %d: result %d dist %v, exact %v", i, res.Index, res.Dist, exact)
				}
			}
			for _, it := range r.Answer.Anytime {
				exact := exactDist(t, eng, queries[i], it.Index)
				if !intervalContainsUlps(it.Lower, it.Upper, exact, 4) {
					t.Fatalf("degraded entry %d: interval [%v, %v] excludes exact %v", i, it.Lower, it.Upper, exact)
				}
			}
			degraded++
		default:
			// Full answers must be byte-identical to the engine's own.
			want, _, err := eng.KNN(queries[i], k)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Answer.Results) != len(want) {
				t.Fatalf("entry %d: %d results, want %d", i, len(r.Answer.Results), len(want))
			}
			for j := range want {
				if r.Answer.Results[j].Index != want[j].Index ||
					math.Float64bits(r.Answer.Results[j].Dist) != math.Float64bits(want[j].Dist) {
					t.Fatalf("entry %d pos %d: got %+v, want %+v", i, j, r.Answer.Results[j], want[j])
				}
			}
			ok++
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("outcome mix ok=%d degraded=%d shed=%d: the gate sizing did not force a mix", ok, degraded, shed)
	}
	m := gate.Metrics()
	if m.Shed < int64(shed) || m.Admitted < int64(ok) {
		t.Fatalf("gate metrics %+v inconsistent with outcomes ok=%d shed=%d", m, ok, shed)
	}
}
