package emdsearch

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emdsearch/internal/persist"
	"emdsearch/internal/search"
	"emdsearch/internal/shardset"
)

// ShardSetOptions configures a ShardSet. The zero value is usable:
// every field has a sensible default.
type ShardSetOptions struct {
	// Shards is the number of engine partitions; <= 0 defaults to 2.
	Shards int
	// Gate configures each shard's admission gate (zero value takes
	// GateOptions defaults).
	Gate GateOptions
	// DisableSharedThreshold turns off the cross-shard k-NN threshold:
	// every shard then computes its full local top-k independently.
	// Answers are identical either way (the shared threshold only
	// changes work counters); the independent mode exists to verify
	// exactly that, and as the deterministic-work reference.
	DisableSharedThreshold bool
	// MergeReserve is carved off the caller's deadline for gathering
	// and merging shard answers (but never more than half the
	// remaining time); default 2ms.
	MergeReserve time.Duration
	// ShardTimeout, when > 0, caps any single shard dispatch even when
	// the caller supplied no deadline — the defense against a hung
	// shard turning an undeadlined query into a hung query.
	ShardTimeout time.Duration
	// RetryMax bounds dispatch attempts per shard per query (first try
	// plus retries and hedges); <= 0 defaults to 2. Only transient
	// errors (ErrOverloaded) are retried, honoring their RetryAfter and
	// paced by jittered exponential backoff.
	RetryMax int
	// RetryBase and RetryCap bound the backoff schedule; defaults 1ms
	// and 250ms.
	RetryBase, RetryCap time.Duration
	// HedgeAfter, when > 0, re-dispatches a shard that has not answered
	// after this delay and accepts whichever attempt finishes first.
	HedgeAfter time.Duration
	// QuarantineAfter is the number of consecutive hard failures
	// (errors, panics — not overload shedding or deadline-degraded
	// answers) after which a shard is quarantined, default 3;
	// QuarantineCooldown is how long it sits out before a probe query
	// is re-admitted, default 1s. A quarantined shard is skipped —
	// counted as failed coverage — instead of burning the query budget.
	QuarantineAfter    int
	QuarantineCooldown time.Duration
	// ShardHook, when non-nil, runs before every shard dispatch
	// (including retries and hedges) with the attempt's context, the
	// shard number, the 0-based attempt, and the operation ("knn",
	// "range", or — for a follower re-dispatch — "knn-failover",
	// "range-failover"). A returned error fails that attempt — the
	// fault-injection seam the chaos suite drives delayed, erroring,
	// panicking and flapping shards through. A delay-injecting hook
	// must watch ctx, exactly as a real slow shard would.
	ShardHook func(ctx context.Context, shard, try int, op string) error
	// Replicas, when 1, gives every shard a follower replica: each
	// acknowledged mutation is shipped (LSN-sequenced, idempotently
	// replayed over a snapshot bootstrap at Build) to a follower
	// engine, and a shard whose dispatch hard-faults or is quarantined
	// is re-dispatched to its follower instead of being written off.
	// A caught-up follower's answer is byte-identical to the healthy
	// path; a lagging one is honestly Degraded with a Freshness entry
	// in the coverage certificate. Values > 1 are clamped to 1 (one
	// follower per shard today; the ship seam is replica.Link-shaped,
	// so more replicas and network transports slot in later).
	Replicas int
	// ReplicaShipHook, when non-nil, runs before each shipped record
	// is applied to a shard's follower, with the record's LSN. An
	// error fails that delivery attempt — the shipper retries it with
	// jittered backoff — making this the fault-injection seam for
	// flapping replication links.
	ReplicaShipHook func(shard int, lsn int64) error
	// Seed fixes the retry jitter stream for reproducible tests; 0
	// seeds from the clock.
	Seed int64
}

func (o ShardSetOptions) withDefaults() ShardSetOptions {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.MergeReserve <= 0 {
		o.MergeReserve = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 3
	}
	if o.QuarantineCooldown <= 0 {
		o.QuarantineCooldown = time.Second
	}
	if o.Replicas > 1 {
		o.Replicas = 1
	}
	if o.Replicas < 0 {
		o.Replicas = 0
	}
	return o
}

// ShardCoverage is a ShardAnswer's certificate of what the query did
// and did not examine: which shards answered in full, which served
// certified degraded answers, which failed outright, and how many
// database items the failures left entirely unexamined. A caller that
// needs completeness checks ShardsFailed == 0 && ShardsDegraded == 0;
// everything else in the answer is sound regardless.
type ShardCoverage struct {
	// Shards is the partition count; ShardsOK answered in full,
	// ShardsDegraded served certified partial answers, ShardsFailed
	// returned nothing (error, panic, quarantine skip).
	Shards         int `json:"shards"`
	ShardsOK       int `json:"shards_ok"`
	ShardsDegraded int `json:"shards_degraded"`
	ShardsFailed   int `json:"shards_failed"`
	// FailedShards lists the failed shard numbers.
	FailedShards []int `json:"failed_shards,omitempty"`
	// ItemsTotal is the logical database size; ItemsUncovered counts
	// items the query is not known to have examined — everything on
	// failed shards (minus the neighbors a failing shard confirmed
	// into the merged answer before it died), whatever degraded shards
	// never pulled, plus the replication lag of any lagging follower
	// that served a failed-over slice. It is an upper bound on the
	// true miss: a failed shard may have examined items it never got
	// to confirm, and those stay counted as uncovered. Items covered
	// only by an interval appear in Anytime, not here.
	ItemsTotal     int `json:"items_total"`
	ItemsUncovered int `json:"items_uncovered"`
	// Freshness holds one entry per shard whose slice was served by
	// its follower replica, certifying how fresh that follower was. A
	// Lag of 0 means the follower held every acknowledged mutation and
	// its slice is byte-identical to the healthy path; Lag > 0 marks
	// the answer Degraded and adds Lag to ItemsUncovered.
	Freshness []ShardFreshness `json:"freshness,omitempty"`
}

// ShardFreshness certifies the replication state of a follower at the
// moment it served a shard's slice: AppliedLSN is captured before the
// follower query is dispatched and PrimaryLSN when the certificate is
// assembled, so Lag = PrimaryLSN − AppliedLSN bounds from above how
// many acknowledged mutations the serving snapshot could have been
// missing — each either a new item the follower never examined
// (counted into ItemsUncovered) or a deletion the answer may not yet
// reflect.
type ShardFreshness struct {
	Shard      int   `json:"shard"`
	PrimaryLSN int64 `json:"primary_lsn"`
	AppliedLSN int64 `json:"applied_lsn"`
	Lag        int64 `json:"lag"`
}

// ShardAnswer is the outcome of a scatter-gather k-NN query.
//
// With every shard healthy (Degraded false), Results is byte-identical
// to a single engine's KNN over the union of the shards — global ids,
// exact distances, deterministic (Dist, Index) tie-break. Under
// partial failure, Results still holds only certified-exact neighbors
// (confirmed distances survive their shard's later failure), Anytime
// ranks the best items known with sound [Lower, Upper] intervals, and
// Coverage says precisely what was missed.
type ShardAnswer struct {
	Results  []Result
	Degraded bool
	Anytime  []AnytimeItem
	Coverage ShardCoverage
	// Stats sums the per-shard query counters of every shard that
	// answered; ShardStats holds each serving shard's own (nil for
	// failed shards). Outcomes reports each shard's dispatch
	// disposition: retries, hedges, quarantine skips, final error.
	Stats      *QueryStats
	ShardStats []*QueryStats
	Outcomes   []ShardOutcome
}

// ShardOutcome is one shard's dispatch disposition for one query.
type ShardOutcome struct {
	Shard    int  `json:"shard"`
	Tries    int  `json:"tries"`
	Retries  int  `json:"retries"`
	Hedged   bool `json:"hedged,omitempty"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	Skipped  bool `json:"skipped,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// FailedOver reports the shard's slice was served by its follower
	// replica after the primary hard-faulted or was quarantined.
	FailedOver bool   `json:"failed_over,omitempty"`
	Err        string `json:"err,omitempty"`
}

// ShardRangeAnswer is the outcome of a scatter-gather range query:
// every returned item is individually certified within eps, so a
// degraded answer is sound, only possibly incomplete — Coverage says
// what was missed.
type ShardRangeAnswer struct {
	Results    []Result
	Degraded   bool
	Coverage   ShardCoverage
	Stats      *QueryStats
	ShardStats []*QueryStats
	Outcomes   []ShardOutcome
}

// ShardBatchResult is the outcome of one query in a sharded batch.
type ShardBatchResult struct {
	Query  int
	Answer *ShardAnswer
	Err    error
}

// ShardSet partitions a corpus across N gated engines and serves
// scatter-gather queries over the union. Placement is round-robin by
// insertion order: global id g lives on shard g % N at local index
// g / N, so the set is rebuildable from the shards alone and every
// shard holds an equal slice (±1) of the corpus.
//
// Healthy-path answers are exact and byte-identical to a single
// engine over the union: each shard runs the KNOP filter-and-refine
// loop against one shared global k-NN threshold (sound because every
// filter stage lower-bounds the exact EMD, so the global k-th
// confirmed distance prunes only provable non-members on any shard),
// and the merged top-k inherits the deterministic (Dist, Index)
// tie-break. Failures degrade the answer instead of failing the
// query: per-shard deadline budgets, retry with jittered backoff on
// overload, optional hedged re-dispatch of stragglers, quarantine of
// repeatedly failing shards with probing re-admission, and certified
// partial answers with per-shard coverage accounting.
//
// Queries are safe for concurrent use. Mutations (Add, Delete, Build)
// follow the Engine's discipline: safe to interleave with queries,
// but not with each other.
type ShardSet struct {
	opts    ShardSetOptions
	cost    CostMatrix // retained for follower snapshot bootstraps
	engOpts Options
	engines []*Engine
	gates   []*Gate
	health  []*shardset.Health
	backoff *shardset.Backoff

	// replicas holds one follower per shard when opts.Replicas == 1,
	// nil otherwise. The slice itself is fixed at construction; the
	// pointers inside a shardReplica — and the engines/gates slice
	// elements — are swapped only by Promote, under rw.
	replicas []*shardReplica
	rw       sync.RWMutex // guards engine/gate/follower pointer swaps

	mu    sync.Mutex // guards total (the global id counter) and orders mutations for shipping
	total int

	queries        atomic.Int64
	degraded       atomic.Int64
	retries        atomic.Int64
	hedges         atomic.Int64
	failures       atomic.Int64
	skips          atomic.Int64
	hedgeWins      atomic.Int64
	failovers      atomic.Int64 // follower re-dispatches attempted
	failoverServes atomic.Int64 // shard slices a follower served
	walReopens     atomic.Int64 // broken-WAL heals on the ingest path
}

// NewShardSet builds an empty sharded set: opts.Shards engines, each
// with its own gate, all sharing cost and engOpts.
func NewShardSet(cost CostMatrix, engOpts Options, opts ShardSetOptions) (*ShardSet, error) {
	opts = opts.withDefaults()
	s := &ShardSet{opts: opts, cost: cost, engOpts: engOpts}
	for i := 0; i < opts.Shards; i++ {
		e, err := NewEngine(cost, engOpts)
		if err != nil {
			return nil, fmt.Errorf("emdsearch: shard %d: %w", i, err)
		}
		s.engines = append(s.engines, e)
		s.gates = append(s.gates, NewGate(e, opts.Gate))
		s.health = append(s.health, shardset.NewHealth(opts.QuarantineAfter, opts.QuarantineCooldown))
	}
	s.backoff = &shardset.Backoff{Base: opts.RetryBase, Cap: opts.RetryCap, Seed: opts.Seed}
	s.initReplicas()
	return s, nil
}

// Shards returns the partition count.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i's engine — for direct inspection or
// mutation-side operations the set does not wrap.
func (s *ShardSet) Engine(i int) *Engine { return s.engineAt(i) }

// Gate returns shard i's admission gate.
func (s *ShardSet) Gate(i int) *Gate { return s.gateAt(i) }

// engineAt and gateAt read a shard's current primary under the swap
// lock: Promote replaces these slice elements, and an unsynchronized
// read would race it.
func (s *ShardSet) engineAt(i int) *Engine {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.engines[i]
}

func (s *ShardSet) gateAt(i int) *Gate {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.gates[i]
}

// shardOf maps a global id to its (shard, local) placement.
func (s *ShardSet) shardOf(gid int) (shard, local int) {
	n := len(s.engines)
	return gid % n, gid / n
}

// toGlobal returns shard's local-to-global id mapping.
func (s *ShardSet) toGlobal(shard int) func(local int) int {
	n := len(s.engines)
	return func(local int) int { return local*n + shard }
}

// shardLen returns how many of the first total global ids live on
// shard: total/N, plus one for the shards the remainder reaches.
func shardLen(total, shards, shard int) int {
	n := total / shards
	if shard < total%shards {
		n++
	}
	return n
}

// walReopenAttempts bounds the jittered-backoff reopen attempts Add
// makes to heal a broken per-shard WAL before surfacing the error.
const walReopenAttempts = 5

// Add inserts a histogram into the set and returns its global id.
// Placement is round-robin: the item lands on shard id % Shards.
//
// A broken per-shard WAL (a torn append whose rollback also failed)
// is healed in place: Add reopens the log with ReopenWALRetry —
// bounded attempts, jittered backoff — and retries the insert once,
// so one disk hiccup does not brick the shard's ingest path. Only a
// reopen that keeps failing surfaces the error.
func (s *ShardSet) Add(label string, h Histogram) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gid := s.total
	shard, local := s.shardOf(gid)
	got, err := s.engines[shard].Add(label, h)
	if errors.Is(err, ErrWALBroken) {
		if rerr := s.engines[shard].ReopenWALRetry(context.Background(), walReopenAttempts); rerr != nil {
			return 0, fmt.Errorf("emdsearch: shard %d: %w (reopen failed: %v)", shard, err, rerr)
		}
		s.walReopens.Add(1)
		got, err = s.engines[shard].Add(label, h)
	}
	if err != nil {
		return 0, err
	}
	if got != local {
		return 0, fmt.Errorf("emdsearch: shard %d placement drifted: item %d landed at local %d, want %d (was the shard mutated directly?)",
			shard, gid, got, local)
	}
	s.shipMutation(shard, persist.WALRecord{Op: persist.WALAdd, ID: local, Label: label, Vector: h})
	s.total = gid + 1
	return gid, nil
}

// Len returns the logical database size (including soft-deleted
// items).
func (s *ShardSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Alive returns the number of live (non-deleted) items across shards.
func (s *ShardSet) Alive() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	n := 0
	for _, e := range s.engines {
		n += e.Alive()
	}
	return n
}

// Delete soft-deletes the item with global id gid. It holds the
// set's mutation lock for the whole operation so the replica ship
// order matches the mutation order.
func (s *ShardSet) Delete(gid int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gid < 0 || gid >= s.total {
		return badQueryf("Delete(%d): global id out of range [0, %d)", gid, s.total)
	}
	shard, local := s.shardOf(gid)
	if err := s.engines[shard].Delete(local); err != nil {
		return err
	}
	s.shipMutation(shard, persist.WALRecord{Op: persist.WALDelete, ID: local})
	return nil
}

// Label returns the label of the item with global id gid.
func (s *ShardSet) Label(gid int) string {
	shard, local := s.shardOf(gid)
	return s.engineAt(shard).Label(local)
}

// Build constructs every shard's filter pipeline, in parallel. The
// first error wins; the other shards still finish building. With
// Replicas set, Build then bootstraps every shard's follower from a
// snapshot of its primary — the same Save format crash recovery
// loads — and rebases its shipper so subsequent mutations stream
// incrementally.
func (s *ShardSet) Build() error {
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			errs[i] = e.Build()
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("emdsearch: build shard %d: %w", i, err)
		}
	}
	return s.bootstrapReplicas()
}

// scatterConfig assembles the per-query scatter policy: overload is
// retried (honoring the gate's RetryAfter) and never quarantines;
// context expiry never quarantines either (the budget is global —
// punishing a shard for the caller's deadline would quarantine
// healthy shards under tight SLOs); everything else is a hard fault.
func (s *ShardSet) scatterConfig() shardset.Config {
	return shardset.Config{
		MaxAttempts: s.opts.RetryMax,
		Backoff:     s.backoff,
		HedgeAfter:  s.opts.HedgeAfter,
		Retryable: func(err error) (bool, time.Duration) {
			var ov *OverloadError
			if errors.As(err, &ov) {
				return true, ov.RetryAfter
			}
			return errors.Is(err, ErrOverloaded), 0
		},
		Faulty: func(err error) bool {
			return !errors.Is(err, ErrOverloaded) &&
				!errors.Is(err, context.DeadlineExceeded) &&
				!errors.Is(err, context.Canceled)
		},
	}
}

// account folds one scatter's outcomes into the set-level counters
// and renders them for the answer.
func (s *ShardSet) account(outs []shardset.Outcome[shardServe]) []ShardOutcome {
	rendered := make([]ShardOutcome, len(outs))
	for i, o := range outs {
		s.retries.Add(int64(o.Retries))
		if o.Hedged {
			s.hedges.Add(1)
		}
		if o.HedgeWon {
			s.hedgeWins.Add(1)
		}
		if o.Skipped {
			s.skips.Add(1)
		}
		if o.Err != nil {
			s.failures.Add(1)
		}
		if o.FailedOver {
			s.failoverServes.Add(1)
		}
		rendered[i] = ShardOutcome{
			Shard:      o.Shard,
			Tries:      o.Tries,
			Retries:    o.Retries,
			Hedged:     o.Hedged,
			HedgeWon:   o.HedgeWon,
			Skipped:    o.Skipped,
			FailedOver: o.FailedOver,
			Degraded:   o.Err == nil && o.Value.degraded,
		}
		if o.Err != nil {
			rendered[i].Err = o.Err.Error()
		}
	}
	return rendered
}

// shardServe is one shard's served answer inside a scatter: exactly
// one of knn/rng is set, plus whether the shard degraded. appliedLSN
// is meaningful only on a failed-over outcome: the follower's applied
// LSN captured BEFORE its query dispatched, so the snapshot the
// follower served from contains at least those mutations and the
// freshness bound computed against the primary's LSN at merge time is
// sound.
type shardServe struct {
	knn        *KNNAnswer
	rng        []Result
	rngStats   *QueryStats
	degraded   bool
	appliedLSN int64
}

// KNN answers a k-NN query across all shards. See ShardAnswer for the
// healthy-path identity and partial-failure semantics. The error is
// non-nil only for bad queries or when no shard served at all; every
// other condition — including every shard degrading — returns a
// certified (possibly partial) answer with a nil error.
func (s *ShardSet) KNN(ctx context.Context, q Histogram, k int) (*ShardAnswer, error) {
	if err := s.engineAt(0).validateKNN(q, k); err != nil {
		return nil, err
	}
	s.queries.Add(1)
	var shared *search.SharedKNN
	if !s.opts.DisableSharedThreshold {
		var err error
		if shared, err = search.NewSharedKNN(k); err != nil {
			return nil, badQueryf("%v", err)
		}
	}
	sctx, cancel := shardset.CarveBudget(ctx, s.opts.MergeReserve, s.opts.ShardTimeout)
	defer cancel()

	outs := shardset.ScatterFailover(sctx, len(s.gates), s.health, s.scatterConfig(),
		func(ctx context.Context, shard, try int) (shardServe, error) {
			if h := s.opts.ShardHook; h != nil {
				if err := h(ctx, shard, try, "knn"); err != nil {
					return shardServe{}, err
				}
			}
			ans, err := s.gateAt(shard).knnShared(ctx, q, k, shared, s.toGlobal(shard))
			if err != nil {
				if ans != nil && ans.Degraded {
					// The budget expired mid-query: the certified partial
					// answer is the shard's contribution, not a failure.
					return shardServe{knn: ans, degraded: true}, nil
				}
				return shardServe{}, err
			}
			return shardServe{knn: ans, degraded: ans.Degraded}, nil
		},
		s.knnFailover(q, k, shared))

	ans := &ShardAnswer{
		Stats:      &QueryStats{},
		ShardStats: make([]*QueryStats, len(outs)),
		Outcomes:   s.account(outs),
	}
	s.mu.Lock()
	ans.Coverage = ShardCoverage{Shards: len(s.engines), ItemsTotal: s.total}
	s.mu.Unlock()

	// Merge: the union of per-shard local top-k (mapped to global ids)
	// contains the global top-k — an item with fewer than k better
	// items globally has fewer than k better on its own shard. The
	// shared set's confirmed results join the pool too, preserving
	// sound contributions from shards that failed after offering.
	pool := map[int]float64{}
	var anytime []AnytimeItem
	for i, o := range outs {
		if o.Err != nil {
			ans.Coverage.ShardsFailed++
			ans.Coverage.FailedShards = append(ans.Coverage.FailedShards, o.Shard)
			continue
		}
		sa := o.Value.knn
		toG := s.toGlobal(o.Shard)
		for _, r := range sa.Results {
			pool[toG(r.Index)] = r.Dist
		}
		lagging := s.certifyFreshness(&ans.Coverage, o)
		if o.Value.degraded || lagging {
			ans.Coverage.ShardsDegraded++
			if o.Value.degraded {
				ans.Coverage.ItemsUncovered += sa.Unpulled
			}
			for _, it := range sa.Anytime {
				anytime = append(anytime, AnytimeItem{
					Index: toG(it.Index), Lower: it.Lower, Upper: it.Upper, Refined: it.Refined,
				})
			}
		} else {
			ans.Coverage.ShardsOK++
		}
		ans.ShardStats[i] = sa.Stats
		addStats(ans.Stats, sa.Stats)
	}
	if shared != nil {
		for _, r := range shared.Results() {
			pool[r.Index] = r.Dist
		}
	}
	if ans.Coverage.ShardsOK+ans.Coverage.ShardsDegraded == 0 {
		// No shard served: nothing from the pool is returned, so the
		// certificate counts every failed shard in full.
		for _, f := range ans.Coverage.FailedShards {
			ans.Coverage.ItemsUncovered += shardLen(ans.Coverage.ItemsTotal, len(s.engines), f)
		}
		ans.Degraded = true
		if err := firstHardErr(outs); err != nil {
			return ans, err
		}
		return ans, ctx.Err()
	}
	// Failed-shard coverage, counted against the completed pool: a
	// shard that confirmed neighbors into the shared set before
	// failing did examine them, and they survive into the merged
	// answer — so they are not uncovered. What the shard examined
	// without confirming is unknowable and stays counted (the
	// certificate's conservative direction).
	for _, f := range ans.Coverage.FailedShards {
		uncovered := shardLen(ans.Coverage.ItemsTotal, len(s.engines), f)
		for gid := range pool {
			if gid%len(s.engines) == f {
				uncovered--
			}
		}
		if uncovered > 0 {
			ans.Coverage.ItemsUncovered += uncovered
		}
	}

	merged := make([]Result, 0, len(pool))
	for gid, d := range pool {
		merged = append(merged, Result{Index: gid, Dist: d})
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].Index < merged[b].Index
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	ans.Results = merged

	if ans.Coverage.ShardsFailed > 0 || ans.Coverage.ShardsDegraded > 0 {
		ans.Degraded = true
		s.degraded.Add(1)
		// Compose the certified-interval view: every confirmed
		// neighbor as a tight interval, plus the degraded shards'
		// interval items, ranked by guaranteed worst case and trimmed
		// to k — the same order assembleAnytime uses per engine.
		for _, r := range merged {
			anytime = append(anytime, AnytimeItem{Index: r.Index, Lower: r.Dist, Upper: r.Dist, Refined: true})
		}
		seen := map[int]bool{}
		dedup := anytime[:0]
		for _, it := range sortAnytime(anytime) {
			if seen[it.Index] {
				continue
			}
			seen[it.Index] = true
			dedup = append(dedup, it)
		}
		if len(dedup) > k {
			dedup = dedup[:k]
		}
		ans.Anytime = dedup
	}
	return ans, nil
}

// sortAnytime orders interval items by (Upper, Lower, Index) with
// refined (tight) items winning ties — the guaranteed-worst-case
// ranking of the per-engine anytime machinery.
func sortAnytime(items []AnytimeItem) []AnytimeItem {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Upper != items[b].Upper {
			return items[a].Upper < items[b].Upper
		}
		if items[a].Lower != items[b].Lower {
			return items[a].Lower > items[b].Lower
		}
		if items[a].Index != items[b].Index {
			return items[a].Index < items[b].Index
		}
		return items[a].Refined && !items[b].Refined
	})
	return items
}

// firstHardErr picks the most informative error out of a fully failed
// scatter: a non-quarantine error if any shard produced one.
func firstHardErr(outs []shardset.Outcome[shardServe]) error {
	var first error
	for _, o := range outs {
		if o.Err == nil {
			continue
		}
		if !errors.Is(o.Err, shardset.ErrQuarantined) {
			return o.Err
		}
		if first == nil {
			first = o.Err
		}
	}
	return first
}

// addStats accumulates src's work counters into dst.
func addStats(dst, src *QueryStats) {
	if src == nil {
		return
	}
	dst.Pulled += src.Pulled
	dst.SnapshotLen += src.SnapshotLen
	dst.Refinements += src.Refinements
	dst.RefinementsSkipped += src.RefinementsSkipped
	dst.RefinesAborted += src.RefinesAborted
	dst.WarmStartHits += src.WarmStartHits
	dst.RefineRows += src.RefineRows
	dst.RefineCols += src.RefineCols
	dst.FilterTime += src.FilterTime
	dst.RefineTime += src.RefineTime
	if src.TotalTime > dst.TotalTime {
		dst.TotalTime = src.TotalTime // wall clock: shards run concurrently
	}
	dst.Cancelled = dst.Cancelled || src.Cancelled
	if src.Workers > dst.Workers {
		dst.Workers = src.Workers
	}
}

// Range answers a range query across all shards: the union of the
// shards' certified results, sorted by (distance, global id). Every
// returned item is individually certified within eps, so degraded
// answers are sound, only possibly incomplete.
func (s *ShardSet) Range(ctx context.Context, q Histogram, eps float64) (*ShardRangeAnswer, error) {
	if err := s.engineAt(0).validateRange(q, eps); err != nil {
		return nil, err
	}
	s.queries.Add(1)
	sctx, cancel := shardset.CarveBudget(ctx, s.opts.MergeReserve, s.opts.ShardTimeout)
	defer cancel()

	outs := shardset.ScatterFailover(sctx, len(s.gates), s.health, s.scatterConfig(),
		func(ctx context.Context, shard, try int) (shardServe, error) {
			if h := s.opts.ShardHook; h != nil {
				if err := h(ctx, shard, try, "range"); err != nil {
					return shardServe{}, err
				}
			}
			res, stats, err := s.gateAt(shard).Range(ctx, q, eps)
			if err != nil {
				if stats != nil && stats.Cancelled {
					return shardServe{rng: res, rngStats: stats, degraded: true}, nil
				}
				return shardServe{}, err
			}
			return shardServe{rng: res, rngStats: stats, degraded: stats != nil && stats.Cancelled}, nil
		},
		s.rangeFailover(q, eps))

	ans := &ShardRangeAnswer{
		Stats:      &QueryStats{},
		ShardStats: make([]*QueryStats, len(outs)),
		Outcomes:   s.account(outs),
	}
	s.mu.Lock()
	ans.Coverage = ShardCoverage{Shards: len(s.engines), ItemsTotal: s.total}
	s.mu.Unlock()

	var merged []Result
	for i, o := range outs {
		if o.Err != nil {
			ans.Coverage.ShardsFailed++
			ans.Coverage.FailedShards = append(ans.Coverage.FailedShards, o.Shard)
			ans.Coverage.ItemsUncovered += shardLen(ans.Coverage.ItemsTotal, len(s.engines), o.Shard)
			continue
		}
		toG := s.toGlobal(o.Shard)
		for _, r := range o.Value.rng {
			merged = append(merged, Result{Index: toG(r.Index), Dist: r.Dist})
		}
		lagging := s.certifyFreshness(&ans.Coverage, o)
		if o.Value.degraded || lagging {
			ans.Coverage.ShardsDegraded++
			if st := o.Value.rngStats; o.Value.degraded && st != nil {
				// The unexamined tail of the snapshot this shard
				// actually searched — not live engine state, which
				// races concurrent Adds and would mis-count.
				if unpulled := st.SnapshotLen - st.Pulled; unpulled > 0 {
					ans.Coverage.ItemsUncovered += unpulled
				}
			}
		} else {
			ans.Coverage.ShardsOK++
		}
		ans.ShardStats[i] = o.Value.rngStats
		addStats(ans.Stats, o.Value.rngStats)
	}
	if ans.Coverage.ShardsOK+ans.Coverage.ShardsDegraded == 0 {
		ans.Degraded = true
		if err := firstHardErr(outs); err != nil {
			return ans, err
		}
		return ans, ctx.Err()
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].Index < merged[b].Index
	})
	ans.Results = merged
	if ans.Coverage.ShardsFailed > 0 || ans.Coverage.ShardsDegraded > 0 {
		ans.Degraded = true
		s.degraded.Add(1)
	}
	return ans, nil
}

// BatchKNN answers many k-NN queries, each scattered across all
// shards, using up to workers client goroutines (0 means GOMAXPROCS).
// Entries resolve independently: one query's shed, degraded or failed
// shards never contaminate another's answer.
func (s *ShardSet) BatchKNN(ctx context.Context, queries []Histogram, k, workers int) ([]ShardBatchResult, error) {
	if len(queries) == 0 {
		return nil, badQueryf("empty batch")
	}
	if k < 1 {
		return nil, badQueryf("k = %d, want >= 1", k)
	}
	out := make([]ShardBatchResult, len(queries))
	runBatch(queries, workers, func(qi int) {
		ans, err := s.KNN(ctx, queries[qi], k)
		out[qi] = ShardBatchResult{Query: qi, Answer: ans, Err: err}
	})
	return out, nil
}

// ShardHealth is a point-in-time view of one shard's availability
// tracker.
type ShardHealth struct {
	// State is "closed" (healthy), "open" (quarantined) or "half-open"
	// (probing re-admission).
	State       string    `json:"state"`
	Successes   int64     `json:"successes"`
	Failures    int64     `json:"failures"`
	Skips       int64     `json:"skips"`
	Quarantines int64     `json:"quarantines"`
	LastError   string    `json:"last_error,omitempty"`
	LastFault   time.Time `json:"last_fault,omitempty"`
	// LastTransition is when the shard last changed state;
	// TimeInState is the current state's age at the snapshot — how
	// long the shard has been quarantined (or healthy).
	LastTransition time.Time     `json:"last_transition"`
	TimeInState    time.Duration `json:"time_in_state"`
}

// Health returns shard i's availability snapshot.
func (s *ShardSet) Health(i int) ShardHealth {
	st := s.health[i].Stats()
	return ShardHealth{
		State:          st.State,
		Successes:      st.Successes,
		Failures:       st.Failures,
		Skips:          st.Skips,
		Quarantines:    st.Quarantines,
		LastError:      st.LastError,
		LastFault:      st.LastFault,
		LastTransition: st.LastTransition,
		TimeInState:    st.TimeInState,
	}
}

// ShardMetrics bundles one shard's engine, gate and health views.
type ShardMetrics struct {
	Engine Metrics     `json:"engine"`
	Gate   GateMetrics `json:"gate"`
	Health ShardHealth `json:"health"`
}

// ShardSetMetrics is a point-in-time aggregate of the set's
// scatter-gather serving, JSON-marshalable like Engine.Metrics.
type ShardSetMetrics struct {
	Shards int `json:"shards"`
	Items  int `json:"items"`
	Alive  int `json:"alive"`
	// Queries counts scatters started; DegradedAnswers those that
	// returned with Degraded set. Retries, Hedges, HedgeWins,
	// ShardFailures and QuarantineSkips count per-shard dispatch
	// events across all queries.
	Queries         int64 `json:"queries"`
	DegradedAnswers int64 `json:"degraded_answers"`
	Retries         int64 `json:"retries"`
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedge_wins"`
	ShardFailures   int64 `json:"shard_failures"`
	QuarantineSkips int64 `json:"quarantine_skips"`
	// Failovers counts follower re-dispatches attempted;
	// FailoverServes those that produced the shard's answer.
	// WALReopens counts broken-WAL heals on the ingest path.
	Failovers      int64          `json:"failovers"`
	FailoverServes int64          `json:"failover_serves"`
	WALReopens     int64          `json:"wal_reopens"`
	PerShard       []ShardMetrics `json:"per_shard"`
	// Replicas holds per-shard replication status, one entry per
	// shard, when the set runs with followers; empty otherwise.
	Replicas []ShardReplica `json:"replicas,omitempty"`
}

// Metrics snapshots the set's serving counters plus every shard's
// engine, gate and health metrics.
func (s *ShardSet) Metrics() ShardSetMetrics {
	m := ShardSetMetrics{
		Shards:          len(s.engines),
		Items:           s.Len(),
		Alive:           s.Alive(),
		Queries:         s.queries.Load(),
		DegradedAnswers: s.degraded.Load(),
		Retries:         s.retries.Load(),
		Hedges:          s.hedges.Load(),
		HedgeWins:       s.hedgeWins.Load(),
		ShardFailures:   s.failures.Load(),
		QuarantineSkips: s.skips.Load(),
		Failovers:       s.failovers.Load(),
		FailoverServes:  s.failoverServes.Load(),
		WALReopens:      s.walReopens.Load(),
	}
	for i := range s.health {
		m.PerShard = append(m.PerShard, ShardMetrics{
			Engine: s.engineAt(i).Metrics(),
			Gate:   s.gateAt(i).Metrics(),
			Health: s.Health(i),
		})
		if r, ok := s.Replica(i); ok {
			m.Replicas = append(m.Replicas, r)
		}
	}
	return m
}

// shardWALPath and shardSnapPath name shard i's persistence files
// inside a set directory.
func shardWALPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i))
}

func shardSnapPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", i))
}

// OpenWAL attaches a write-ahead log to every shard, named
// shard-NNN.wal inside dir. Mutations through the set are then
// durable per shard; recover with OpenShardSet.
func (s *ShardSet) OpenWAL(dir string) error {
	for i, e := range s.engines {
		if err := e.OpenWAL(shardWALPath(dir, i)); err != nil {
			return fmt.Errorf("emdsearch: shard %d: %w", i, err)
		}
	}
	return nil
}

// Checkpoint writes every shard's snapshot (shard-NNN.snap inside
// dir) and rotates its WAL, in shard order. A crash between shards
// recovers correctly — each shard's snapshot+log pair is internally
// consistent, and OpenShardSet re-validates the cross-shard placement
// invariant.
func (s *ShardSet) Checkpoint(dir string) error {
	for i, e := range s.engines {
		if err := e.Checkpoint(shardSnapPath(dir, i)); err != nil {
			return fmt.Errorf("emdsearch: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// CloseWAL detaches every shard's log.
func (s *ShardSet) CloseWAL() error {
	var first error
	for i, e := range s.engines {
		if err := e.CloseWAL(); err != nil && first == nil {
			first = fmt.Errorf("emdsearch: close shard %d WAL: %w", i, err)
		}
	}
	return first
}

// OpenShardSet recovers a sharded set from dir: each shard is rebuilt
// from its shard-NNN.snap + shard-NNN.wal pair via RecoverEngine,
// then the round-robin placement invariant is re-validated — shard i
// of N must hold exactly total/N (+1 for i < total%N) items, else the
// shards' persistence diverged (a shard lost acknowledged mutations
// the others kept) and the set refuses to serve wrong global ids.
// The recovered engines have no open WAL; call OpenWAL(dir) — usually
// after a Checkpoint(dir) — to resume durable logging.
func OpenShardSet(dir string, cost CostMatrix, engOpts Options, opts ShardSetOptions) (*ShardSet, []*RecoverStats, error) {
	opts = opts.withDefaults()
	s := &ShardSet{opts: opts, cost: cost, engOpts: engOpts}
	stats := make([]*RecoverStats, opts.Shards)
	total := 0
	for i := 0; i < opts.Shards; i++ {
		e, st, err := RecoverEngine(shardSnapPath(dir, i), shardWALPath(dir, i), cost, engOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("emdsearch: recover shard %d: %w", i, err)
		}
		stats[i] = st
		s.engines = append(s.engines, e)
		s.gates = append(s.gates, NewGate(e, opts.Gate))
		s.health = append(s.health, shardset.NewHealth(opts.QuarantineAfter, opts.QuarantineCooldown))
		total += e.Len()
	}
	for i, e := range s.engines {
		if want := shardLen(total, opts.Shards, i); e.Len() != want {
			return nil, nil, fmt.Errorf("emdsearch: recover: shard %d holds %d items but round-robin placement of %d total requires %d — shard persistence diverged",
				i, e.Len(), total, want)
		}
	}
	s.total = total
	s.backoff = &shardset.Backoff{Base: opts.RetryBase, Cap: opts.RetryCap, Seed: opts.Seed}
	s.initReplicas()
	return s, stats, nil
}

// knnShared is the Gate's shard-path k-NN: Gate.KNN's admission,
// degrade and breaker semantics with the engine search joined to the
// cross-shard shared threshold. A nil shared set degenerates to
// Gate.KNN exactly.
func (g *Gate) knnShared(ctx context.Context, q Histogram, k int, shared *search.SharedKNN, toGlobal func(int) int) (*KNNAnswer, error) {
	if err := g.e.validateKNN(q, k); err != nil {
		g.e.metrics.queryError()
		return nil, err
	}
	tk, err := g.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer tk.Release()

	if !g.brk.Allow() {
		g.degraded.Add(1)
		return g.e.knnLBOnly(q, k)
	}

	qctx, cancel, gateOwned := g.budgetCtx(ctx, tk)
	if cancel != nil {
		defer cancel()
	}
	ans, err := g.e.knnSharedCtx(qctx, q, k, shared, toGlobal)
	g.settle(err)
	if err != nil && gateOwned && ans != nil && ans.Degraded && ctx.Err() == nil {
		g.degraded.Add(1)
		return ans, nil
	}
	return ans, err
}

// knnSharedCtx is Engine.KNNCtx joined to a cross-shard shared
// neighbor set; with a nil shared set it is Engine.KNNCtx exactly.
func (e *Engine) knnSharedCtx(ctx context.Context, q Histogram, k int, shared *search.SharedKNN, toGlobal func(int) int) (*KNNAnswer, error) {
	if err := e.validateKNN(q, k); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	return e.knnCtxOnSnap(ctx, s, q, k, nil, shared, toGlobal)
}
