package emdsearch

import (
	"math"
	"testing"
)

func TestExplainDecomposition(t *testing.T) {
	eng, err := NewEngine(LinearCost(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 of the paper: x vs z moves 0.2 across distance 2 and
	// 0.3 across distance 4.
	x := Histogram{0.5, 0, 0.2, 0, 0.3, 0}
	z := Histogram{1, 0, 0, 0, 0, 0}
	eng.Add("z", z)

	exp, err := eng.Explain(x, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp.Distance-1.6) > 1e-9 {
		t.Fatalf("distance %g, want 1.6", exp.Distance)
	}
	if len(exp.Components) != 2 {
		t.Fatalf("components: %+v, want 2 non-zero-cost movements", exp.Components)
	}
	// Dominant movement: 0.3 mass from bin 4 to bin 0, cost 1.2.
	c0 := exp.Components[0]
	if c0.From != 4 || c0.To != 0 || math.Abs(c0.Cost-1.2) > 1e-9 {
		t.Fatalf("dominant component %+v", c0)
	}
	c1 := exp.Components[1]
	if c1.From != 2 || c1.To != 0 || math.Abs(c1.Cost-0.4) > 1e-9 {
		t.Fatalf("second component %+v", c1)
	}
	// Components must sum to the distance.
	var sum float64
	for _, c := range exp.Components {
		sum += c.Cost
	}
	if math.Abs(sum-exp.Distance) > 1e-9 {
		t.Fatalf("components sum to %g, distance %g", sum, exp.Distance)
	}

	// topK truncation.
	exp, err = eng.Explain(x, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Components) != 1 || exp.Components[0].Cost < 1.1 {
		t.Fatalf("topK=1 kept %+v", exp.Components)
	}
}

func TestExplainIdenticalHasNoComponents(t *testing.T) {
	eng, _ := NewEngine(LinearCost(4), Options{})
	h := Histogram{0.25, 0.25, 0.25, 0.25}
	eng.Add("", h)
	exp, err := eng.Explain(h, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Distance > 1e-12 || len(exp.Components) != 0 {
		t.Fatalf("identical explain: %+v", exp)
	}
}

func TestExplainValidation(t *testing.T) {
	eng, _ := NewEngine(LinearCost(4), Options{})
	eng.Add("", Histogram{1, 0, 0, 0})
	if _, err := eng.Explain(Histogram{1, 0, 0, 0}, 5, 0); err == nil {
		t.Error("accepted out-of-range item")
	}
	if _, err := eng.Explain(Histogram{1, 0}, 0, 0); err == nil {
		t.Error("accepted wrong-dimensional query")
	}
	if _, err := eng.Explain(Histogram{1, 0, 0, 0}, 0, -1); err == nil {
		t.Error("accepted negative topK")
	}
}
