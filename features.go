package emdsearch

import (
	"fmt"
	"image"

	"emdsearch/internal/emd"
)

// RGBHistogram extracts a color histogram from an image by quantizing
// each pixel into a bins x bins x bins RGB grid (row-major
// r-major/g/b order, matching RGBPositions). The histogram is
// normalized to total mass one. Use together with RGBCost for an
// engine over real images:
//
//	cost, _ := emdsearch.RGBCost(4)
//	h, _ := emdsearch.RGBHistogram(img, 4)
func RGBHistogram(img image.Image, bins int) (Histogram, error) {
	if img == nil {
		return nil, fmt.Errorf("emdsearch: nil image")
	}
	if bins < 2 || bins > 16 {
		return nil, fmt.Errorf("emdsearch: bins = %d out of range [2, 16]", bins)
	}
	b := img.Bounds()
	if b.Empty() {
		return nil, fmt.Errorf("emdsearch: empty image")
	}
	h := make(Histogram, bins*bins*bins)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA() // 16-bit channels
			qr := int(r) * bins / 65536
			qg := int(g) * bins / 65536
			qb := int(bl) * bins / 65536
			h[(qr*bins+qg)*bins+qb]++
		}
	}
	for i := range h {
		h[i] += 1e-9 // keep strictly positive mass everywhere
	}
	return Normalize(h), nil
}

// RGBPositions returns the bin-center coordinates (in [0,1]^3) of the
// bins x bins x bins RGB quantization used by RGBHistogram, in
// matching order.
func RGBPositions(bins int) ([][]float64, error) {
	if bins < 2 || bins > 16 {
		return nil, fmt.Errorf("emdsearch: bins = %d out of range [2, 16]", bins)
	}
	out := make([][]float64, 0, bins*bins*bins)
	for r := 0; r < bins; r++ {
		for g := 0; g < bins; g++ {
			for b := 0; b < bins; b++ {
				out = append(out, []float64{
					(float64(r) + 0.5) / float64(bins),
					(float64(g) + 0.5) / float64(bins),
					(float64(b) + 0.5) / float64(bins),
				})
			}
		}
	}
	return out, nil
}

// RGBCost returns the Euclidean ground distance between the bin
// centers of the bins^3 RGB quantization — the cost matrix matching
// RGBHistogram.
func RGBCost(bins int) (CostMatrix, error) {
	pos, err := RGBPositions(bins)
	if err != nil {
		return nil, err
	}
	return emd.PositionCost(pos, pos, 2)
}

// GrayHistogram extracts a luminance histogram with the given number
// of levels (ITU-R BT.601 luma weights), normalized to mass one. Pair
// it with LinearCost(levels) — optionally rescaled — as the ground
// distance.
func GrayHistogram(img image.Image, levels int) (Histogram, error) {
	if img == nil {
		return nil, fmt.Errorf("emdsearch: nil image")
	}
	if levels < 2 || levels > 4096 {
		return nil, fmt.Errorf("emdsearch: levels = %d out of range [2, 4096]", levels)
	}
	b := img.Bounds()
	if b.Empty() {
		return nil, fmt.Errorf("emdsearch: empty image")
	}
	h := make(Histogram, levels)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			luma := (299*int(r) + 587*int(g) + 114*int(bl)) / 1000
			q := luma * levels / 65536
			if q >= levels {
				q = levels - 1
			}
			h[q]++
		}
	}
	for i := range h {
		h[i] += 1e-9
	}
	return Normalize(h), nil
}

// TiledIntensityHistogram extracts the tiled intensity features of the
// paper's bioinformatics scenario from a real image: the luminance
// mass of each tile of a rows x cols grid, row-major, normalized. Use
// GridCost(rows, cols, 2) as the matching ground distance.
func TiledIntensityHistogram(img image.Image, rows, cols int) (Histogram, error) {
	if img == nil {
		return nil, fmt.Errorf("emdsearch: nil image")
	}
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("emdsearch: tiling %dx%d, want positive", rows, cols)
	}
	b := img.Bounds()
	if b.Dx() < cols || b.Dy() < rows {
		return nil, fmt.Errorf("emdsearch: image %dx%d smaller than tiling %dx%d", b.Dx(), b.Dy(), cols, rows)
	}
	h := make(Histogram, rows*cols)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		ty := (y - b.Min.Y) * rows / b.Dy()
		for x := b.Min.X; x < b.Max.X; x++ {
			tx := (x - b.Min.X) * cols / b.Dx()
			r, g, bl, _ := img.At(x, y).RGBA()
			luma := (299*float64(r) + 587*float64(g) + 114*float64(bl)) / 1000 / 65535
			h[ty*cols+tx] += luma
		}
	}
	for i := range h {
		h[i] += 1e-9
	}
	return Normalize(h), nil
}
