package emdsearch

import (
	"fmt"
	"sort"
)

// FlowComponent is one mass movement of an optimal EMD flow: Mass
// units moved from query bin From to database bin To, contributing
// Cost = Mass * groundDistance(From, To) to the total distance.
type FlowComponent struct {
	From, To int
	Mass     float64
	Cost     float64
}

// Explanation decomposes one exact EMD into its dominant mass
// movements — the answer to "why did these two histograms match (or
// not)". Components are sorted by descending cost contribution;
// zero-cost movements (mass staying in place under a zero-diagonal
// ground distance) are omitted.
type Explanation struct {
	Distance   float64
	Components []FlowComponent
}

// Explain computes the exact EMD between q and indexed item i together
// with its optimal flow decomposition, keeping the topK costliest
// components (0 keeps all non-zero-cost components). For multimedia
// retrieval this names the bins — colors, tiles, spectral bands —
// whose displacement drives the dissimilarity.
func (e *Engine) Explain(q Histogram, i int, topK int) (*Explanation, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	if n := e.Len(); i < 0 || i >= n {
		return nil, fmt.Errorf("emdsearch: item %d out of range [0, %d)", i, n)
	}
	if topK < 0 {
		return nil, fmt.Errorf("emdsearch: topK = %d, want >= 0", topK)
	}
	dist, flow := e.dist.DistanceWithFlow(q, e.Vector(i))
	var comps []FlowComponent
	for from, row := range flow {
		for to, mass := range row {
			if mass <= 1e-12 {
				continue
			}
			cost := mass * e.cost[from][to]
			if cost <= 1e-12 {
				continue
			}
			comps = append(comps, FlowComponent{From: from, To: to, Mass: mass, Cost: cost})
		}
	}
	sort.Slice(comps, func(a, b int) bool {
		if comps[a].Cost != comps[b].Cost {
			return comps[a].Cost > comps[b].Cost
		}
		if comps[a].From != comps[b].From {
			return comps[a].From < comps[b].From
		}
		return comps[a].To < comps[b].To
	})
	if topK > 0 && len(comps) > topK {
		comps = comps[:topK]
	}
	return &Explanation{Distance: dist, Components: comps}, nil
}
