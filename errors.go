package emdsearch

import (
	"errors"
	"fmt"
	"time"

	"emdsearch/internal/admission"
	"emdsearch/internal/search"
)

// Sentinel errors of the serving API. Each is matched with errors.Is;
// the concrete wrappers (OverloadError, InternalError) add structured
// context and are reachable with errors.As.
var (
	// ErrBadQuery marks a query rejected by input validation before any
	// search work: wrong dimensionality, invalid histogram (NaN,
	// negative mass, zero total), k < 1, eps < 0, an empty batch, or a
	// nil predicate. Every public query entry point returns an error
	// wrapping ErrBadQuery for these, so callers can separate caller
	// bugs from serving conditions with a single errors.Is check.
	ErrBadQuery = errors.New("emdsearch: bad query")

	// ErrOverloaded marks a query shed by an admission Gate: the
	// concurrency limit and wait queue were full, or the query's
	// deadline would provably have expired before it could start. The
	// concrete *OverloadError carries queue depth and retry-after
	// guidance.
	ErrOverloaded = errors.New("emdsearch: overloaded")

	// ErrInternal marks a query that failed on a contained internal
	// invariant violation (a recovered panic in the exact solver): the
	// failing query gets this error, the process and all other in-flight
	// queries are unaffected. The concrete *InternalError carries the
	// item index, panic value and stack.
	ErrInternal = errors.New("emdsearch: internal error")
)

// badQueryf builds an ErrBadQuery-wrapping validation error.
func badQueryf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

// OverloadError is the typed rejection of a query shed by a Gate.
// errors.Is(err, ErrOverloaded) matches it.
type OverloadError struct {
	// QueueDepth and InFlight describe the gate at rejection time.
	QueueDepth int
	InFlight   int
	// RetryAfter is the gate's estimate of when capacity frees up —
	// clients should back off at least this long (plus jitter) before
	// retrying.
	RetryAfter time.Duration
	// Reason says why: "queue full", "deadline would expire before
	// start", or "breaker open" style strings.
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("emdsearch: overloaded (%s): %d queued, %d in flight, retry after %v",
		e.Reason, e.QueueDepth, e.InFlight, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// overloadError converts the admission layer's rejection to the public
// typed error.
func overloadError(ov *admission.Overload) *OverloadError {
	return &OverloadError{
		QueueDepth: ov.QueueDepth,
		InFlight:   ov.InFlight,
		RetryAfter: ov.RetryAfter,
		Reason:     ov.Reason,
	}
}

// InternalError reports a contained invariant failure: a panic inside
// the exact refinement (transport simplex invariant checks, or an
// injected fault hook) that the engine recovered and converted into an
// error on the failing query only. errors.Is(err, ErrInternal) matches
// it.
type InternalError struct {
	// Op is the query kind that hit the fault ("knn", "range", ...).
	Op string
	// Index is the database item whose refinement panicked.
	Index int
	// Value is the recovered panic value; Stack the panicking
	// goroutine's stack, captured at recovery time.
	Value any
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("emdsearch: internal error in %s refining item %d: %v", e.Op, e.Index, e.Value)
}

func (e *InternalError) Unwrap() error { return ErrInternal }

// internalErr converts a recovered refinement panic into the public
// typed error and counts it. Returns err unchanged when it is not a
// panic report.
func (e *Engine) internalErr(op string, err error) error {
	var pe *search.PanicError
	if !errors.As(err, &pe) {
		return err
	}
	e.metrics.queryPanicked()
	return &InternalError{Op: op, Index: pe.Index, Value: pe.Value, Stack: pe.Stack}
}
