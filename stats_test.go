package emdsearch

import (
	"encoding/json"
	"math"
	"testing"
)

// checkStageAccounting verifies the invariants tying the per-stage
// counters together: evaluations flow from stage to stage (what stage
// i did not prune, stage i+1 evaluated; what the last stage did not
// prune, the candidate loop pulled), StageEvaluations mirrors Stages,
// and FilterTime sums the stage durations.
func checkStageAccounting(t *testing.T, eng *Engine, stats *QueryStats, wantNames []string) {
	t.Helper()
	if len(stats.Stages) != len(wantNames) {
		t.Fatalf("got %d stages, want %d (%v)", len(stats.Stages), len(wantNames), wantNames)
	}
	for i, want := range wantNames {
		st := stats.Stages[i]
		if st.Name != want {
			t.Errorf("stage %d named %q, want %q", i, st.Name, want)
		}
		if st.Evaluations != stats.StageEvaluations[i] {
			t.Errorf("stage %d: Evaluations %d != StageEvaluations %d", i, st.Evaluations, stats.StageEvaluations[i])
		}
		if st.Pruned < 0 || st.Duration < 0 {
			t.Errorf("stage %d: negative counters %+v", i, st)
		}
		consumed := stats.Pulled
		if i+1 < len(stats.Stages) {
			consumed = stats.Stages[i+1].Evaluations
		}
		if st.Evaluations-st.Pruned != consumed {
			t.Errorf("stage %d: %d evaluations - %d pruned != %d consumed downstream",
				i, st.Evaluations, st.Pruned, consumed)
		}
	}
	// The first stage scans the whole database (no centroid pre-filter
	// in these tests) — unless an index-backed ranking replaced the
	// scan, whose whole point is evaluating fewer than n items.
	if !stats.IndexUsed && stats.Stages[0].Evaluations != eng.Len() {
		t.Errorf("first stage evaluated %d of %d items", stats.Stages[0].Evaluations, eng.Len())
	}
	if stats.IndexUsed && stats.IndexNodesVisited <= 0 {
		t.Errorf("IndexUsed with %d nodes visited", stats.IndexNodesVisited)
	}
	var sum int64
	for _, st := range stats.Stages {
		sum += int64(st.Duration)
	}
	if int64(stats.FilterTime) != sum {
		t.Errorf("FilterTime %v != sum of stage durations %v", stats.FilterTime, sum)
	}
	if stats.TotalTime <= 0 {
		t.Errorf("TotalTime %v, want > 0", stats.TotalTime)
	}
	if stats.Refinements > 0 && stats.RefineTime <= 0 {
		t.Errorf("RefineTime %v with %d refinements", stats.RefineTime, stats.Refinements)
	}
}

func TestQueryStatsStagesDefault(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, 100)
	_, stats, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	checkStageAccounting(t, eng, stats, []string{"Q-Red-IM", "Red-IM", "Red-EMD"})
}

func TestQueryStatsStagesAsymmetric(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, AsymmetricQuery: true}, 100)
	_, stats, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	checkStageAccounting(t, eng, stats, []string{"Q-Red-IM", "Red-IM", "Asym-Red-EMD"})
}

func TestQueryStatsStagesHierarchy(t *testing.T) {
	eng, queries := buildEngine(t, Options{Hierarchy: []int{8, 2}, SampleSize: 10}, 100)
	_, stats, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	checkStageAccounting(t, eng, stats, []string{"Q-Red-IM", "Red-IM", "Red-EMD-2", "Red-EMD-8"})
}

func TestQueryStatsStagesNoIM(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, DisableIMFilter: true}, 100)
	_, stats, err := eng.Range(queries[0], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	checkStageAccounting(t, eng, stats, []string{"Red-EMD"})
}

// TestEngineMetrics exercises the engine-level aggregation: query
// counts by kind, error counts, snapshot builds, stage totals, and
// that the snapshot is JSON-marshalable (the expvar contract).
func TestEngineMetrics(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 10}, 60)
	q := queries[0]
	var refinements int
	for i := 0; i < 3; i++ {
		_, stats, err := eng.KNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		refinements += stats.Refinements
	}
	if _, _, err := eng.Range(q, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.KNN(Histogram{1}, 1); err == nil {
		t.Fatal("wrong-dimensional query accepted")
	}

	m := eng.Metrics()
	if m.KNNQueries != 3 {
		t.Errorf("KNNQueries = %d, want 3", m.KNNQueries)
	}
	if m.RangeQueries != 1 {
		t.Errorf("RangeQueries = %d, want 1", m.RangeQueries)
	}
	if m.RankQueries != 1 {
		t.Errorf("RankQueries = %d, want 1", m.RankQueries)
	}
	if m.QueryErrors != 1 {
		t.Errorf("QueryErrors = %d, want 1", m.QueryErrors)
	}
	if m.SnapshotBuilds != 1 {
		t.Errorf("SnapshotBuilds = %d, want 1 (no mutations between queries)", m.SnapshotBuilds)
	}
	if m.Refinements < int64(refinements) {
		t.Errorf("aggregate Refinements %d below the %d of the KNN queries alone", m.Refinements, refinements)
	}
	if len(m.Stages) == 0 {
		t.Error("no per-stage aggregates")
	}
	for name, st := range m.Stages {
		if st.Evaluations <= 0 {
			t.Errorf("stage %q: %d evaluations", name, st.Evaluations)
		}
	}
	if m.QueryTime <= 0 || m.RefineTime <= 0 {
		t.Errorf("timers not accumulated: query=%v refine=%v", m.QueryTime, m.RefineTime)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Errorf("Metrics not JSON-marshalable: %v", err)
	}

	// A mutation invalidates the snapshot; the next query rebuilds it.
	if _, err := eng.Add("", q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.KNN(q, 1); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().SnapshotBuilds; got != 2 {
		t.Errorf("SnapshotBuilds after Add+query = %d, want 2", got)
	}
}

// TestEngineDistanceErrors is the regression test for the former
// panicking Distance: dimension mismatches and out-of-range indices
// must surface as errors, and the happy path must agree with the
// package-level EMD.
func TestEngineDistanceErrors(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 30)
	q := queries[0]
	if _, err := eng.Distance(Histogram{0.5, 0.5}, 0); err == nil {
		t.Error("wrong-dimensional query accepted")
	}
	bad := make(Histogram, eng.Dim())
	bad[0] = 2
	if _, err := eng.Distance(bad, 0); err == nil {
		t.Error("unnormalized query accepted")
	}
	if _, err := eng.Distance(q, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := eng.Distance(q, eng.Len()); err == nil {
		t.Error("out-of-range index accepted")
	}
	got, err := eng.Distance(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EMD(q, eng.Vector(3), eng.cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance = %g, EMD = %g", got, want)
	}
}
