package emdsearch

import (
	"math"
	"testing"
)

func TestKNNWhereMatchesFilteredScan(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	q := queries[0]
	// Constrain to even indices; verify against a brute-force scan
	// over the same subset.
	pred := func(i int) bool { return i%2 == 0 }
	got, _, err := eng.KNNWhere(q, 5, pred)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		idx  int
		dist float64
	}
	var want []res
	for i := 0; i < eng.Len(); i++ {
		if pred(i) {
			want = append(want, res{i, exactDist(t, eng, q, i)})
		}
	}
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if want[j].dist < want[i].dist || (want[j].dist == want[i].dist && want[j].idx < want[i].idx) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if got[i].Index != want[i].idx || math.Abs(got[i].Dist-want[i].dist) > 1e-9 {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Index%2 != 0 {
			t.Fatalf("constraint violated: index %d", got[i].Index)
		}
	}
}

func TestKNNWithLabel(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 120)
	// Pick the label of item 0 and query within it.
	label := eng.Label(0)
	got, _, err := eng.KNNWithLabel(queries[0], 4, label)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results for an existing label")
	}
	for _, r := range got {
		if eng.Label(r.Index) != label {
			t.Fatalf("result %d has label %q, want %q", r.Index, eng.Label(r.Index), label)
		}
	}
	// Nonexistent label: empty result, no error.
	none, _, err := eng.KNNWithLabel(queries[0], 4, "no-such-label")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("got %d results for nonexistent label", len(none))
	}
}

func TestKNNWhereValidation(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 20)
	if _, _, err := eng.KNNWhere(queries[0], 3, nil); err == nil {
		t.Error("accepted nil predicate")
	}
	if _, _, err := eng.KNNWhere(Histogram{1}, 3, func(int) bool { return true }); err == nil {
		t.Error("accepted bad query")
	}
}

func TestKNNWhereRespectsDeletion(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 8}, 40)
	q := queries[0]
	all, _, err := eng.KNNWhere(q, 1, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(all[0].Index); err != nil {
		t.Fatal(err)
	}
	after, _, err := eng.KNNWhere(q, 1, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(after) > 0 && after[0].Index == all[0].Index {
		t.Error("deleted item returned by KNNWhere")
	}
}
