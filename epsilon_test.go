package emdsearch

import (
	"testing"
)

func TestEpsilonForCountGuarantee(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 120)
	for _, q := range queries {
		for _, count := range []int{1, 10, 40} {
			eps, err := eng.EpsilonForCount(q, count)
			if err != nil {
				t.Fatal(err)
			}
			results, _, err := eng.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) < count {
				t.Fatalf("count=%d: eps %g returned only %d results", count, eps, len(results))
			}
		}
	}
}

func TestEpsilonForCountValidation(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 30)
	if _, err := eng.EpsilonForCount(queries[0], 0); err == nil {
		t.Error("accepted count=0")
	}
	if _, err := eng.EpsilonForCount(queries[0], 1000); err == nil {
		t.Error("accepted count > n")
	}
	if _, err := eng.EpsilonForCount(Histogram{1}, 3); err == nil {
		t.Error("accepted bad query")
	}
	scan, scanQueries := buildEngine(t, Options{}, 30)
	if _, err := scan.EpsilonForCount(scanQueries[0], 3); err == nil {
		t.Error("worked without a reduction")
	}
}

func TestDistanceDistribution(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	d, err := eng.DistanceDistribution(queries[0], 40)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() < 30 || d.Count() > 40 {
		t.Errorf("sample size %d, want about 40", d.Count())
	}
	if d.Min() < 0 || d.Max() < d.Min() {
		t.Errorf("degenerate distribution: [%g, %g]", d.Min(), d.Max())
	}
	if _, err := eng.DistanceDistribution(queries[0], 0); err == nil {
		t.Error("accepted sample size 0")
	}
	if _, err := eng.DistanceDistribution(Histogram{1}, 10); err == nil {
		t.Error("accepted bad query")
	}
	// Oversized sample clamps to n.
	d, err = eng.DistanceDistribution(queries[0], 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != eng.Len() {
		t.Errorf("clamped sample %d, want %d", d.Count(), eng.Len())
	}
}

func TestRangeIDsMatchesRange(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 120)
	for _, q := range queries {
		for _, eps := range []float64{0.02, 0.05, 0.1} {
			ids, err := eng.RangeIDs(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := eng.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(want) {
				t.Fatalf("eps=%g: %d ids, Range finds %d", eps, len(ids), len(want))
			}
			wantSet := map[int]bool{}
			for _, r := range want {
				wantSet[r.Index] = true
			}
			for _, id := range ids {
				if !wantSet[id] {
					t.Fatalf("eps=%g: spurious id %d", eps, id)
				}
			}
		}
	}
}

func TestRangeIDsScanMode(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 40)
	ids, err := eng.RangeIDs(queries[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := eng.Range(queries[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("scan mode: %d ids, Range finds %d", len(ids), len(want))
	}
}
