package emdsearch

import (
	"bytes"
	"math"
	"testing"

	"emdsearch/internal/data"
)

// TestFullLifecycle drives the complete production story in one flow:
// generate a corpus, index it, persist, reload, query through every
// API, mutate (insert + delete), and re-query — asserting exactness
// against direct distance computations at each step.
func TestFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	ds, err := data.ColorImages(220, 3)
	if err != nil {
		t.Fatal(err)
	}
	vectors, queries, err := ds.Split(4)
	if err != nil {
		t.Fatal(err)
	}

	// Build with the full feature set: reduction, IM chaining, and the
	// k-d-tree-indexed centroid base ranking.
	eng, err := NewEngine(ds.Cost, Options{
		ReducedDims: 8,
		SampleSize:  24,
		Positions:   ds.Positions,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vectors {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}

	// Persist and reload.
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, ds.Cost, Options{
		ReducedDims: 8,
		SampleSize:  24,
		Positions:   ds.Positions,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}

	bruteKNN := func(e *Engine, q Histogram, k int) []Result {
		all := make([]Result, e.Len())
		for i := 0; i < e.Len(); i++ {
			all[i] = Result{Index: i, Dist: exactDist(t, e, q, i)}
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].Dist < all[i].Dist || (all[j].Dist == all[i].Dist && all[j].Index < all[i].Index) {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		return all[:k]
	}

	q := queries[0]
	const k = 6

	// 1. Exact k-NN on the reloaded engine.
	got, stats, err := loaded.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNN(loaded, q, k)
	for i := range want {
		if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("KNN result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Refinements >= loaded.Len() {
		t.Errorf("no pruning: %d refinements of %d", stats.Refinements, loaded.Len())
	}

	// 2. Batch queries agree with individual ones.
	batch, err := loaded.BatchKNN(queries, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	for qi, br := range batch {
		if br.Err != nil {
			t.Fatalf("batch query %d: %v", qi, br.Err)
		}
		single, _, err := loaded.KNN(queries[qi], k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if br.Results[i] != single[i] {
				t.Fatalf("batch query %d result %d mismatch", qi, i)
			}
		}
	}

	// 3. Epsilon targeting and range queries.
	eps, err := loaded.EpsilonForCount(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	rangeResults, _, err := loaded.Range(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rangeResults) < 10 {
		t.Fatalf("EpsilonForCount(10) radius returned %d results", len(rangeResults))
	}
	ids, err := loaded.RangeIDs(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(rangeResults) {
		t.Fatalf("RangeIDs %d vs Range %d", len(ids), len(rangeResults))
	}

	// 4. Approximate search certificate brackets the true k-th.
	_, cert, err := loaded.ApproxKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	trueKth := want[k-1].Dist
	if trueKth < cert.LowerK-1e-9 || trueKth > cert.UpperK+1e-9 {
		t.Fatalf("certificate [%g, %g] misses true k-th %g", cert.LowerK, cert.UpperK, trueKth)
	}

	// 5. Mutate: insert a duplicate of the query, then delete it.
	id, err := loaded.Add("dup", q)
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := loaded.KNN(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one[0].Index != id || one[0].Dist > 1e-9 {
		t.Fatalf("inserted duplicate not 1-NN: %+v", one[0])
	}
	if err := loaded.Delete(id); err != nil {
		t.Fatal(err)
	}
	after, _, err := loaded.KNN(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Index == id {
		t.Fatal("deleted duplicate still returned")
	}
	if after[0].Index != want[0].Index {
		t.Fatalf("1-NN after delete: %+v, want %+v", after[0], want[0])
	}

	// 6. Faceted query stays within the label.
	label := loaded.Label(want[0].Index)
	faceted, _, err := loaded.KNNWithLabel(q, 3, label)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range faceted {
		if loaded.Label(r.Index) != label {
			t.Fatalf("faceted result %d has label %q", r.Index, loaded.Label(r.Index))
		}
	}
	if faceted[0].Index != want[0].Index {
		t.Fatalf("faceted 1-NN %d, want %d", faceted[0].Index, want[0].Index)
	}
}
