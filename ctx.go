package emdsearch

import (
	"context"
	"math"
	"sort"

	"emdsearch/internal/search"
	"emdsearch/internal/stats"
)

// AnytimeItem is one entry of a certified anytime answer: a database
// item together with a guaranteed interval containing its exact EMD
// to the query. Refined items carry a tight interval (Lower == Upper
// == the exact distance); unrefined items carry the tightest certified
// envelope known at cancellation — the filter chain's lower bound (or
// the interrupted solver's dual bound, whichever is larger) and the
// greedy-flow upper bound.
type AnytimeItem struct {
	Index        int
	Lower, Upper float64
	// Refined reports the interval is exact: the item's distance was
	// fully refined before the deadline.
	Refined bool
}

// KNNAnswer is the outcome of a context-aware k-NN query.
//
// When the query runs to completion, Results holds the exact k-NN
// answer — byte-identical to Engine.KNN's — and Degraded is false.
// When the context expires first, the query degrades gracefully
// instead of returning garbage: Degraded is true, Results holds the
// neighbors whose exact distances were confirmed before the deadline,
// and Anytime holds the k best items known so far with certified
// [Lower, Upper] intervals (the exact distance of every listed item
// provably lies inside its interval). Candidates the bounded solver
// abandoned on a certified bound above the live pruning threshold are
// soundly excluded — the threshold only ever tightens, so they can
// never belong to the answer. Unpulled says how much of the database
// was never examined at all.
type KNNAnswer struct {
	Results  []Result
	Stats    *QueryStats
	Degraded bool
	Anytime  []AnytimeItem
	// Unpulled counts indexed items (including soft-deleted ones)
	// never drawn from the filter ranking before the deadline; 0 when
	// the query completed.
	Unpulled int
}

// KNNCtx answers a k-NN query under ctx. Cancellation is cooperative
// and fine-grained: the flag derived from ctx is polled once per
// candidate in the KNOP loop and once per pivot inside each exact
// simplex solve, so a deadline interrupts even a single large
// refinement within microseconds. On expiry KNNCtx returns the
// certified anytime answer (see KNNAnswer) together with ctx.Err() —
// a non-nil answer accompanies the context error so callers can use
// the degraded result. With a context that can never be cancelled
// (context.Background()) the path and results are identical to KNN's.
func (e *Engine) KNNCtx(ctx context.Context, q Histogram, k int) (*KNNAnswer, error) {
	if err := e.validateKNN(q, k); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	return e.knnCtxOnSnap(ctx, s, q, k, nil, nil, nil)
}

// KNNWhereCtx is the context-aware form of KNNWhere: a k-NN query
// restricted to items satisfying pred, with the same cancellation and
// anytime semantics as KNNCtx. The predicate is invoked from the
// calling goroutine only, after the pruning-threshold check and
// before refinement, so rejected items never cost an exact solve.
func (e *Engine) KNNWhereCtx(ctx context.Context, q Histogram, k int, pred func(index int) bool) (*KNNAnswer, error) {
	if pred == nil {
		e.metrics.queryError()
		return nil, badQueryf("nil predicate")
	}
	if err := e.validateKNN(q, k); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	return e.knnCtxOnSnap(ctx, s, q, k, pred, nil, nil)
}

// KNNWithLabelCtx is KNNWhereCtx restricted to items carrying the
// given label. Labels are read from the query's snapshot — captured
// at pipeline-build time, lock-free — so the predicate always sees
// state consistent with the ranking it filters, even while concurrent
// Add or Build calls mutate the live store.
func (e *Engine) KNNWithLabelCtx(ctx context.Context, q Histogram, k int, label string) (*KNNAnswer, error) {
	if err := e.validateKNN(q, k); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, err
	}
	return e.knnCtxOnSnap(ctx, s, q, k, func(i int) bool { return s.labels[i] == label }, nil, nil)
}

// knnCtxOnSnap runs the shared context-aware k-NN path on an already
// obtained snapshot (so label predicates close over the same state the
// query runs on) and assembles the anytime answer on cancellation.
// shared, when non-nil, joins the search to a cross-shard neighbor
// set under the toGlobal id mapping (the ShardSet scatter path).
func (e *Engine) knnCtxOnSnap(ctx context.Context, s *snapshot, q Histogram, k int, pred func(index int) bool, shared *search.SharedKNN, toGlobal func(int) int) (*KNNAnswer, error) {
	if err := ctx.Err(); err != nil {
		// Already expired: nothing was examined; the (empty) answer is
		// still sound and says so.
		stats := &QueryStats{Cancelled: true, SnapshotLen: len(s.vectors)}
		e.metrics.observe(metricKNN, stats)
		e.metrics.queryDegraded()
		return &KNNAnswer{Stats: stats, Degraded: true, Unpulled: len(s.vectors)}, err
	}
	var out *search.KNNOutcome
	var err error
	switch {
	case shared != nil:
		out, err = s.searcher.KNNSharedCtx(ctx, q, k, shared, toGlobal, pred)
	case pred == nil:
		out, err = s.searcher.KNNCtx(ctx, q, k)
	default:
		out, err = s.searcher.KNNWhereCtx(ctx, q, k, pred)
	}
	if err != nil {
		e.metrics.queryError()
		return nil, e.internalErr("knn", err)
	}
	out.Stats.SnapshotLen = len(s.vectors)
	// Soft-deleted items surface with infinite distance when fewer
	// than k live items remain; drop them.
	live := out.Results[:0]
	for _, r := range out.Results {
		if !math.IsInf(r.Dist, 1) {
			live = append(live, r)
		}
	}
	ans := &KNNAnswer{Results: live, Stats: out.Stats}
	e.metrics.observe(metricKNN, out.Stats)
	e.metrics.resultsReturned(len(live))
	e.maybeReplan()
	if !out.Stats.Cancelled {
		return ans, nil
	}
	ans.Degraded = true
	ans.Unpulled = len(s.vectors) - out.Stats.Pulled
	ans.Anytime = s.assembleAnytime(q, live, out.Pending, k)
	e.metrics.queryDegraded()
	return ans, ctx.Err()
}

// assembleAnytime turns the confirmed neighbors and the pending
// (pulled but unresolved) candidates of a cancelled k-NN query into
// the k best certified intervals: refined items contribute tight
// intervals, pending items the envelope [best certified lower bound,
// greedy-flow upper bound]. Items are ranked by (Upper, Lower, Index)
// — the order that minimizes the guaranteed worst case — and trimmed
// to k. Soft-deleted items are excluded.
func (s *snapshot) assembleAnytime(q Histogram, confirmed []Result, pending []search.PendingCandidate, k int) []AnytimeItem {
	items := make([]AnytimeItem, 0, len(confirmed)+len(pending))
	for _, r := range confirmed {
		items = append(items, AnytimeItem{Index: r.Index, Lower: r.Dist, Upper: r.Dist, Refined: true})
	}
	if len(pending) > 0 {
		g := s.greedyUpper()
		for _, p := range pending {
			if s.deleted[p.Index] {
				continue
			}
			ub := g.Distance(q, s.vectors[p.Index])
			lo := p.Lower
			if lo > ub {
				lo = ub
			}
			items = append(items, AnytimeItem{Index: p.Index, Lower: lo, Upper: ub})
		}
		s.putGreedy(g)
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].Upper != items[b].Upper {
			return items[a].Upper < items[b].Upper
		}
		if items[a].Lower != items[b].Lower {
			return items[a].Lower < items[b].Lower
		}
		return items[a].Index < items[b].Index
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// RangeCtx answers a range query under ctx, with the same cooperative
// cancellation as KNNCtx. A cancelled range query returns the results
// whose exact distances were confirmed to be within eps before the
// deadline — each is individually certified, so the partial set is
// sound, only possibly incomplete — together with Stats.Cancelled =
// true and ctx's error. With context.Background() the path and
// results are identical to Range's.
func (e *Engine) RangeCtx(ctx context.Context, q Histogram, eps float64) ([]Result, *QueryStats, error) {
	if err := e.validateRange(q, eps); err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		stats := &QueryStats{Cancelled: true, SnapshotLen: len(s.vectors)}
		e.metrics.observe(metricRange, stats)
		return nil, stats, err
	}
	results, stats, err := s.searcher.RangeCtx(ctx, q, eps, nil)
	if err != nil {
		e.metrics.queryError()
		return nil, nil, e.internalErr("range", err)
	}
	stats.SnapshotLen = len(s.vectors)
	e.metrics.observe(metricRange, stats)
	e.metrics.resultsReturned(len(results))
	e.maybeReplan()
	if stats.Cancelled {
		return results, stats, ctx.Err()
	}
	return results, stats, nil
}

// BatchCtxResult is the outcome of one query in a context-aware batch.
type BatchCtxResult struct {
	// Query is the index of the query within the batch.
	Query  int
	Answer *KNNAnswer
	Err    error
}

// BatchKNNCtx answers many k-NN queries concurrently under one shared
// context, using up to workers goroutines (0 means GOMAXPROCS). Each
// query inherits ctx's deadline: queries in flight when it expires
// return certified anytime answers, queries not yet started return
// immediately-degraded (empty but sound) answers, and every affected
// entry carries ctx's error. See BatchKNN for the concurrency and
// snapshot semantics.
func (e *Engine) BatchKNNCtx(ctx context.Context, queries []Histogram, k, workers int) ([]BatchCtxResult, error) {
	if len(queries) == 0 {
		return nil, badQueryf("empty batch")
	}
	if k < 1 {
		return nil, badQueryf("k = %d, want >= 1", k)
	}
	out := make([]BatchCtxResult, len(queries))
	runBatch(queries, workers, func(qi int) {
		ans, err := e.KNNCtx(ctx, queries[qi], k)
		out[qi] = BatchCtxResult{Query: qi, Answer: ans, Err: err}
	})
	return out, nil
}

// RankCtx starts an incremental exact ranking bound to ctx: Next
// checks the context before refining further candidates and reports
// exhaustion once it is cancelled, so an abandoned browse stops doing
// exact-EMD work at the next pull. Every item yielded before the
// cancellation is exact; cancellation never truncates a solve
// mid-flight on this path, so no approximate distances can leak out.
func (e *Engine) RankCtx(ctx context.Context, q Histogram) (*Ranking, error) {
	r, err := e.Rank(q)
	if err != nil {
		return nil, err
	}
	r.ctx = ctx
	return r, nil
}

// ApproxKNNCtx is the context-aware form of ApproxKNN. The method
// computes no exact EMDs — its per-candidate work is bounded — so
// cancellation is checked between pipeline phases and periodically
// inside the scan loops; on expiry it returns ctx.Err() with no
// partial answer.
func (e *Engine) ApproxKNNCtx(ctx context.Context, q Histogram, k int) ([]ApproxResult, *ApproxCertificate, error) {
	return e.approxKNN(ctx, q, k)
}

// RangeIDsCtx is the context-aware form of RangeIDs. A cancelled
// query returns the ids confirmed so far — each individually
// certified to lie within eps, so the subset is sound — together with
// ctx's error.
func (e *Engine) RangeIDsCtx(ctx context.Context, q Histogram, eps float64) ([]int, error) {
	return e.rangeIDs(ctx, q, eps)
}

// EpsilonForCountCtx is the context-aware form of EpsilonForCount;
// the upper-bound scan checks ctx between items and returns ctx.Err()
// on expiry.
func (e *Engine) EpsilonForCountCtx(ctx context.Context, q Histogram, count int) (float64, error) {
	return e.epsilonForCount(ctx, q, count)
}

// DistanceDistributionCtx is the context-aware form of
// DistanceDistribution; the exact-EMD sampling loop checks ctx
// between items and returns ctx.Err() on expiry.
func (e *Engine) DistanceDistributionCtx(ctx context.Context, q Histogram, sampleSize int) (*stats.Distribution, error) {
	return e.distanceDistribution(ctx, q, sampleSize)
}

// DistanceCtx is the context-aware form of Distance. The cancel flag
// is threaded into the simplex pivot loop, so even a single large
// solve is interrupted within one pivot; an interrupted computation
// returns ctx.Err() (never a partial value).
func (e *Engine) DistanceCtx(ctx context.Context, q Histogram, i int) (float64, error) {
	if err := e.validateQuery(q); err != nil {
		return 0, err
	}
	e.mu.RLock()
	if i < 0 || i >= e.store.Len() {
		n := e.store.Len()
		e.mu.RUnlock()
		return 0, badQueryf("Distance(%d): index out of range [0, %d)", i, n)
	}
	v := e.store.Vector(i)
	e.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	intr, stop := search.WatchContext(ctx)
	defer stop()
	if intr == nil {
		return e.dist.Distance(q, v), nil
	}
	r := e.dist.DistanceBoundedIntr(q, v, math.Inf(1), intr)
	if r.Interrupted {
		return 0, ctx.Err()
	}
	return r.Value, nil
}

// ExplainCtx is the context-aware form of Explain. The flow
// decomposition runs a single full solve with no interrupt hook, so
// cancellation is coarse: the context is checked on entry only.
func (e *Engine) ExplainCtx(ctx context.Context, q Histogram, i int, topK int) (*Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Explain(q, i, topK)
}
