package emdsearch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"emdsearch/internal/cascadeplan"
	"emdsearch/internal/persist"
)

// TestSaveLoadCascadeSection round-trips the reduction cascade and the
// auto-cascade plan through the version-4 snapshot: an AutoCascade
// engine must resume its planned chain exactly (no re-derivation, no
// re-plan needed), a Hierarchy engine must adopt a matching saved
// chain, and a non-matching configuration must silently fall back to
// the single-level filter — never an error, never a wrong answer.
func TestSaveLoadCascadeSection(t *testing.T) {
	autoOpts := Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}
	eng, queries := buildEngine(t, autoOpts, 60)
	if err := eng.adoptChain([]int{2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	snap, err := persist.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cascade == nil {
		t.Fatal("snapshot of a planned engine carries no cascade section")
	}
	if len(snap.Cascade.Levels) != 3 || !snap.Cascade.Auto {
		t.Fatalf("cascade section: %d levels, auto=%v, want 3/true", len(snap.Cascade.Levels), snap.Cascade.Auto)
	}
	if !equalLevels(snap.Cascade.PlanLevels, []int{2, 4, 8}) {
		t.Fatalf("cascade section plan %v, want [2 4 8]", snap.Cascade.PlanLevels)
	}

	loaded, err := LoadEngine(bytes.NewReader(raw), eng.Cost(), autoOpts)
	if err != nil {
		t.Fatal(err)
	}
	if plan := loaded.CascadePlan(); !equalLevels(plan, []int{2, 4, 8}) {
		t.Fatalf("loaded plan %v, want [2 4 8]", plan)
	}
	got, _, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "auto-loaded", "KNN", got, want)
	lsnap, err := loaded.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(lsnap.cascade) != 3 {
		t.Fatalf("loaded pipeline runs %d levels, want 3", len(lsnap.cascade))
	}

	// A Hierarchy engine writes the same section (minus the plan) and a
	// matching configuration resumes it without Build.
	hierOpts := Options{Hierarchy: []int{8, 2}, SampleSize: 10}
	heng, hqueries := buildEngine(t, hierOpts, 60)
	hq := hqueries[0]
	hwant, _, err := heng.KNN(hq, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := heng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	hraw := append([]byte(nil), buf.Bytes()...)
	hsnap, err := persist.ReadSnapshot(bytes.NewReader(hraw))
	if err != nil {
		t.Fatal(err)
	}
	if hsnap.Cascade == nil || len(hsnap.Cascade.Levels) != 2 || hsnap.Cascade.Auto {
		t.Fatalf("hierarchy cascade section: %+v", hsnap.Cascade)
	}
	if hsnap.Cascade.PlanLevels != nil {
		t.Fatalf("hierarchy section carries a plan: %v", hsnap.Cascade.PlanLevels)
	}
	hloaded, err := LoadEngine(bytes.NewReader(hraw), heng.Cost(), hierOpts)
	if err != nil {
		t.Fatal(err)
	}
	hsn, err := hloaded.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(hsn.cascade) != 2 {
		t.Fatalf("hierarchy-loaded pipeline runs %d levels, want 2", len(hsn.cascade))
	}
	hgot, _, err := hloaded.KNN(hq, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "hier-loaded", "KNN", hgot, hwant)

	// A different Hierarchy drops the saved chain silently and serves
	// the single-level filter — still the exact answers.
	otherOpts := Options{Hierarchy: []int{8, 4}, SampleSize: 10}
	other, err := LoadEngine(bytes.NewReader(hraw), heng.Cost(), otherOpts)
	if err != nil {
		t.Fatal(err)
	}
	osn, err := other.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(osn.cascade) != 1 {
		t.Fatalf("mismatched hierarchy adopted %d saved levels, want single-level fallback", len(osn.cascade))
	}
	ogot, _, err := other.KNN(hq, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "hier-mismatch", "KNN", ogot, hwant)
}

// TestLoadAutoCascadeRelaxesDPrimeCheck: a re-plan may leave the
// finest level at a d' other than Options.ReducedDims; reloading such
// a snapshot with the original options must succeed under AutoCascade
// (the option is the planner's starting point, not a contract) and
// still answer identically.
func TestLoadAutoCascadeRelaxesDPrimeCheck(t *testing.T) {
	opts := Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}
	eng, queries := buildEngine(t, opts, 50)
	// Adopt a chain whose finest level (12) differs from ReducedDims.
	if err := eng.adoptChain([]int{4, 12}); err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()), eng.Cost(), opts)
	if err != nil {
		t.Fatalf("AutoCascade load with re-planned d' rejected: %v", err)
	}
	if plan := loaded.CascadePlan(); !equalLevels(plan, []int{4, 12}) {
		t.Fatalf("loaded plan %v, want [4 12]", plan)
	}
	got, _, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "replanned-loaded", "KNN", got, want)

	// Without AutoCascade the mismatch is still a configuration error.
	if _, err := LoadEngine(bytes.NewReader(buf.Bytes()), eng.Cost(), Options{ReducedDims: 8, SampleSize: 10}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("non-auto load of d'=12 snapshot: err = %v, want ErrConfigMismatch", err)
	}
}

// snapshotAsV3 rewrites a current-format snapshot as a version-3 file:
// the version word is patched and the seventh (cascade) frame dropped.
// Frame lengths are self-describing.
func snapshotAsV3(t *testing.T, v4 []byte) []byte {
	t.Helper()
	off := len(persist.Magic) + 4
	for f := 0; f < 6; f++ {
		if off+12 > len(v4) {
			t.Fatalf("snapshot too short walking frame %d", f)
		}
		length := binary.LittleEndian.Uint32(v4[off:])
		off += 12 + int(length)
	}
	v3 := append([]byte(nil), v4[:off]...)
	binary.LittleEndian.PutUint32(v3[len(persist.Magic):], 3)
	return v3
}

// TestLoadV3SnapshotCascadeCompat: a version-3 file (no cascade frame)
// must load cleanly under AutoCascade; the engine starts on the
// single-level filter, answers identically, and the planner can
// re-plan from live counters.
func TestLoadV3SnapshotCascadeCompat(t *testing.T) {
	opts := Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}
	eng, queries := buildEngine(t, opts, 50)
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := snapshotAsV3(t, buf.Bytes())

	snap, err := persist.ReadSnapshot(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("version-3 snapshot rejected: %v", err)
	}
	if snap.Cascade != nil {
		t.Fatal("version-3 snapshot decoded a cascade section")
	}
	loaded, err := LoadEngine(bytes.NewReader(v3), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "v3", "KNN", got, want)
	// The planner still works over the loaded engine: a forced pass
	// runs off the counters the query above produced.
	if _, err := loaded.Replan(); err != nil {
		t.Fatalf("Replan over a v3-loaded engine: %v", err)
	}
	got, _, err = loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "v3-replanned", "KNN", got, want)
}

// TestLoadRejectsBadCascadeSection covers CRC-valid but semantically
// damaged cascade sections: the frame decodes fine, so only load-time
// re-validation stands between the bytes and an unsound filter chain
// (a non-nested "cascade" would prune true answers). Every case must
// fail with ErrCorrupt.
func TestLoadRejectsBadCascadeSection(t *testing.T) {
	opts := Options{ReducedDims: 8, SampleSize: 10, AutoCascade: true}
	eng, _ := buildEngine(t, opts, 40)
	if err := eng.adoptChain([]int{2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	fresh := func() *persist.Snapshot {
		s, err := persist.ReadSnapshot(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if s.Cascade == nil || len(s.Cascade.Levels) != 3 {
			t.Fatalf("fixture carries no 3-level cascade section: %+v", s.Cascade)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(s *persist.Snapshot)
	}{
		{"empty section", func(s *persist.Snapshot) { s.Cascade = &persist.CascadeSection{} }},
		{"single-level chain", func(s *persist.Snapshot) {
			s.Cascade.Levels = s.Cascade.Levels[:1]
			s.Cascade.PlanLevels, s.Cascade.PlanID = nil, 0
		}},
		{"finest disagrees with engine reduction", func(s *persist.Snapshot) {
			a := append([]int(nil), s.Cascade.Levels[0].Assign...)
			a[0] = (a[0] + 1) % s.Cascade.Levels[0].Reduced
			s.Cascade.Levels[0].Assign = a
		}},
		{"not strictly coarser", func(s *persist.Snapshot) { s.Cascade.Levels[2] = s.Cascade.Levels[1] }},
		{"not nested", func(s *persist.Snapshot) {
			// Break the coarsest level: move one original bin to another
			// group so two fine-level groupmates land in different coarse
			// groups somewhere.
			a := append([]int(nil), s.Cascade.Levels[2].Assign...)
			a[0] = (a[0] + 1) % s.Cascade.Levels[2].Reduced
			s.Cascade.Levels[2].Assign = a
		}},
		{"plan fingerprint mismatch", func(s *persist.Snapshot) { s.Cascade.PlanID ^= 1 }},
		{"plan not ascending", func(s *persist.Snapshot) {
			s.Cascade.PlanLevels = []int{8, 4, 2}
			s.Cascade.PlanID = cascadeplan.PlanID(s.Cascade.PlanLevels)
		}},
		{"plan disagrees with chain", func(s *persist.Snapshot) {
			s.Cascade.PlanLevels = []int{3, 4, 8}
			s.Cascade.PlanID = cascadeplan.PlanID(s.Cascade.PlanLevels)
		}},
	}
	for _, c := range cases {
		s := fresh()
		c.mutate(s)
		var mut bytes.Buffer
		if err := persist.WriteSnapshot(&mut, s); err != nil {
			t.Fatal(err)
		}
		_, err := LoadEngine(bytes.NewReader(mut.Bytes()), eng.Cost(), opts)
		if err == nil {
			t.Errorf("%s: load accepted a damaged cascade section", c.name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", c.name, err)
		}
	}
	if _, err := LoadEngine(bytes.NewReader(good), eng.Cost(), opts); err != nil {
		t.Fatalf("unmutated snapshot rejected: %v", err)
	}
}

// TestTortureSnapshotCascadeFlipMatrix repeats the snapshot flip
// matrix over a version-4 file carrying the cascade/plan section, so
// the damage sweep covers the new frame too. Every single-byte flip
// must fail typed; a flip the CRC forgave could plant an unsound
// filter chain into the query path.
func TestTortureSnapshotCascadeFlipMatrix(t *testing.T) {
	d := 8
	cost := LinearCost(d)
	opts := Options{ReducedDims: 4, SampleSize: 6, AutoCascade: true, Seed: 11}
	eng, err := NewEngine(cost, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 12; i++ {
		if _, err := eng.Add("", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if err := eng.adoptChain([]int{2, 4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if snap, err := persist.ReadSnapshot(bytes.NewReader(good)); err != nil || snap.Cascade == nil {
		t.Fatalf("fixture snapshot carries no cascade section (err=%v)", err)
	}

	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		_, err := LoadEngine(bytes.NewReader(mut), cost, opts)
		if err == nil {
			t.Fatalf("flip at byte %d: load accepted a damaged snapshot", i)
		}
		if !typedPersistErr(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed persistence error", i, err)
		}
	}
}
