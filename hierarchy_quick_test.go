package emdsearch

import (
	"sort"
	"testing"
	"testing/quick"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
)

// TestHierarchyCascadeMonotoneQuick is a randomized property test
// (testing/quick) of the hierarchy cascade: for randomly chosen data
// seeds, nesting structures and reduction methods, every level of the
// cascade must lower-bound the next finer level, the finest level must
// lower-bound the exact EMD, and Engine.KNN with the Hierarchy option
// must return exactly the brute-force answer end-to-end. This is the
// chaining requirement (Section 4 of the paper) that makes the
// multi-level filter lossless.
func TestHierarchyCascadeMonotoneQuick(t *testing.T) {
	hierarchies := [][]int{{8, 4, 2}, {8, 3}, {6, 2}, {10, 5, 2}}
	methods := []ReductionMethod{Adjacent, KMedoids}
	property := func(seed int64, hierPick, methodPick uint8) bool {
		hier := hierarchies[int(hierPick)%len(hierarchies)]
		method := methods[int(methodPick)%len(methods)]
		ds, err := data.MusicSpectra(36, 16, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		vecs, queries, err := ds.Split(2)
		if err != nil {
			t.Log(err)
			return false
		}
		eng, err := NewEngine(ds.Cost, Options{Hierarchy: hier, Method: method, SampleSize: 10, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		for i, h := range vecs {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				t.Log(err)
				return false
			}
		}
		if err := eng.Build(); err != nil {
			t.Log(err)
			return false
		}
		snap, err := eng.snapshot()
		if err != nil {
			t.Log(err)
			return false
		}
		if len(snap.cascade) != len(hier) {
			t.Logf("cascade has %d levels, want %d", len(snap.cascade), len(hier))
			return false
		}
		// Per-level monotonicity: snap.cascade is coarsest first, so
		// distances must be non-decreasing along it and end below the
		// exact EMD.
		const tol = 1e-9
		for _, q := range queries {
			for vi, v := range vecs {
				prev := -1.0
				for li, lr := range snap.cascade {
					lred, err := core.NewReducedEMD(eng.cost, lr, lr)
					if err != nil {
						t.Log(err)
						return false
					}
					d := lred.DistanceReduced(lr.Apply(q), lr.Apply(v))
					if d < prev-tol {
						t.Logf("seed %d %v/%s: level %d dist %g below coarser level %g (item %d)",
							seed, hier, method, li, d, prev, vi)
						return false
					}
					prev = d
				}
				exact, err := eng.Distance(q, vi)
				if err != nil {
					t.Log(err)
					return false
				}
				if prev > exact+tol {
					t.Logf("seed %d %v/%s: finest level %g exceeds exact EMD %g (item %d)",
						seed, hier, method, prev, exact, vi)
					return false
				}
			}
		}
		// End-to-end losslessness through Engine.KNN.
		for _, q := range queries {
			got, _, err := eng.KNN(q, 4)
			if err != nil {
				t.Log(err)
				return false
			}
			want := make([]Result, len(vecs))
			for i := range vecs {
				d, err := eng.Distance(q, i)
				if err != nil {
					t.Log(err)
					return false
				}
				want[i] = Result{Index: i, Dist: d}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Dist != want[j].Dist {
					return want[i].Dist < want[j].Dist
				}
				return want[i].Index < want[j].Index
			})
			for i := range got {
				if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
					t.Logf("seed %d %v/%s: KNN result %d = %+v, brute force %+v",
						seed, hier, method, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
