package emdsearch

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"emdsearch/internal/cascadeplan"
	"emdsearch/internal/core"
)

// Cascade-planner tuning. The check cadence keeps the query-path cost
// of auto-cascading to one atomic increment; everything heavier runs
// on a background goroutine, and a pipeline rebuild happens only when
// a strictly cheaper plan is found.
const (
	// cascadeCheckEvery queries, the query path considers a drift
	// check (and hands it to a background goroutine).
	cascadeCheckEvery = 32
	// cascadeMinQueries a window must cover before its counters are
	// trusted for planning.
	cascadeMinQueries = 16
	// cascadeDriftHigh/Low bound the accepted ratio of observed to
	// expected finest-level survivors per query; outside the band the
	// engine re-plans.
	cascadeDriftHigh = 1.5
	cascadeDriftLow  = 1.0 / cascadeDriftHigh
	// cascadePeriodicEvery queries, a planning pass runs even without
	// drift (it costs a model fit, not a rebuild).
	cascadePeriodicEvery = 256
	// cascadeGain: a proposal replaces the incumbent only when the
	// model prices it at least this factor cheaper — hysteresis
	// against plan flapping on noisy windows.
	cascadeGain = 0.95
)

// Replan forces one synchronous cascade-planning pass: fit the cost
// model to the counters observed since the last plan adoption,
// propose the cheapest chain, and — if it is materially cheaper than
// the incumbent — derive the new reductions and hot-swap a freshly
// built pipeline. It reports whether a new chain was adopted. Queries
// keep running throughout; answers are byte-identical across plans.
// Returns (false, nil) when a background re-plan is already in
// flight, and an error when no queries have been observed yet (the
// model needs at least one window of counters).
//
// Replan exists for benchmarks and for callers who know the workload
// just shifted; in normal operation the engine re-plans by itself
// when the observed selectivity drifts (see Options.AutoCascade).
func (e *Engine) Replan() (bool, error) {
	if !e.opts.AutoCascade {
		return false, fmt.Errorf("emdsearch: Replan requires Options.AutoCascade")
	}
	return e.replanIfNeeded(true)
}

// maybeReplan is the query-path hook: count the query and, every
// cascadeCheckEvery-th one, kick a background drift check.
func (e *Engine) maybeReplan() {
	if !e.opts.AutoCascade {
		return
	}
	if e.planTick.Add(1)%cascadeCheckEvery != 0 {
		return
	}
	go func() {
		_, _ = e.replanIfNeeded(false)
	}()
}

// resetPlanLocked installs the freshly built single-level chain as
// the active plan (Build just derived e.red at Options.ReducedDims)
// and re-anchors the drift window. Caller holds e.mu.
func (e *Engine) resetPlanLocked() {
	levels := []int{e.red.ReducedDims()}
	e.plan = &cascadeplan.Plan{Levels: levels, ID: cascadeplan.PlanID(levels)}
	e.planBase = e.Metrics()
	e.planExpPulled = 0
	e.metrics.planActive(levels, e.plan.ID)
}

// replanIfNeeded runs one planning pass; force (Engine.Replan) skips
// the window-size and drift gates but not the is-it-cheaper gate.
// At most one pass runs at a time (e.replanning); the model fit and
// reduction derivation run without e.mu, and the final install
// re-validates that no Build or competing adoption raced us.
func (e *Engine) replanIfNeeded(force bool) (changed bool, err error) {
	e.mu.Lock()
	if !e.opts.AutoCascade || e.red == nil || e.replanning {
		e.mu.Unlock()
		return false, nil
	}
	e.replanning = true
	red := e.red
	flows := e.buildFlows
	vectors := e.store.Vectors()
	base := e.planBase
	expPulled := e.planExpPulled
	var curLevels []int
	if e.plan != nil {
		curLevels = append([]int(nil), e.plan.Levels...)
	} else {
		curLevels = []int{red.ReducedDims()}
	}
	e.mu.Unlock()
	defer func() {
		// A planner or derivation invariant failure must not leak the
		// latch (or the panic into the caller's goroutine — this runs
		// detached from maybeReplan).
		if r := recover(); r != nil {
			changed, err = false, fmt.Errorf("emdsearch: replan panic: %v", r)
		}
		e.mu.Lock()
		e.replanning = false
		e.mu.Unlock()
	}()

	cur := e.Metrics()
	finestDims := curLevels[len(curLevels)-1]
	w := cascadeWindow(base, cur, finestDims, e.Dim())
	if w.Queries < 1 || len(w.Levels) == 0 {
		if force {
			return false, fmt.Errorf("emdsearch: Replan needs at least one observed query with filter counters")
		}
		return false, nil
	}
	if !force {
		if w.Queries < cascadeMinQueries {
			return false, nil
		}
		obs := finestSurvivorsPerQuery(w)
		drifted := expPulled <= 0 || obs < 0 ||
			obs > expPulled*cascadeDriftHigh || obs < expPulled*cascadeDriftLow
		if !drifted && w.Queries < cascadePeriodicEvery {
			return false, nil
		}
	}

	model, ferr := cascadeplan.Fit(w, cascadeplan.Config{})
	if ferr != nil {
		if force {
			return false, ferr
		}
		return false, nil
	}
	proposal, perr := model.Propose(curLevels...)
	if perr != nil {
		if force {
			return false, perr
		}
		return false, nil
	}
	keep := equalLevels(proposal.Levels, curLevels)
	if !keep {
		if incumbent, cerr := model.ChainCost(curLevels); cerr == nil && proposal.Cost > cascadeGain*incumbent {
			keep = true
		}
	}
	if keep {
		// Re-anchor the drift window on what this pass observed, so
		// the next check measures fresh drift instead of re-litigating
		// the same counters.
		e.mu.Lock()
		if e.red == red {
			e.planBase = cur
			e.planExpPulled = model.Survivors(finestDims)
		}
		e.mu.Unlock()
		return false, nil
	}

	newRed, cascade, newFlows, derr := e.deriveChain(proposal.Levels, red, flows, vectors)
	if derr != nil {
		return false, fmt.Errorf("emdsearch: replan: %w", derr)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.red != red {
		// Build (or a competing adoption) replaced the reduction while
		// we planned against the old one; drop the stale proposal.
		return false, nil
	}
	if newFlows != nil {
		e.buildFlows = newFlows
	}
	exp := model.Survivors(proposal.Levels[len(proposal.Levels)-1])
	if ierr := e.installPlanLocked(newRed, cascade, proposal, exp); ierr != nil {
		return false, ierr
	}
	return true, nil
}

// installPlanLocked swaps a derived chain in as the active pipeline:
// reduction, cascade, plan, and an eagerly rebuilt snapshot, so the
// next query never pays the rebuild on its own latency (the PR-1 swap
// discipline). Caller holds e.mu.
func (e *Engine) installPlanLocked(red *core.Reduction, cascade []*core.Reduction, plan *cascadeplan.Plan, expPulled float64) error {
	e.red = red
	if len(cascade) > 1 {
		e.cascade = cascade
	} else {
		e.cascade = nil
	}
	e.plan = plan
	e.snap = nil
	snap, err := e.buildSnapshotLocked()
	if err != nil {
		return err
	}
	e.snap = snap
	e.metrics.snapshotBuilt()
	e.metrics.planReplanned(plan.Levels, plan.ID)
	e.planBase = e.Metrics()
	e.planExpPulled = expPulled
	return nil
}

// deriveChain materializes a planned chain off-lock: the finest
// reduction (reusing the current one when its dimensionality is
// unchanged, so a depth-only change never perturbs the finest filter)
// and the composed coarser levels. The rng is seeded from (Seed, plan
// fingerprint), so a given plan always derives the same chain.
func (e *Engine) deriveChain(levels []int, cur *core.Reduction, flows [][]float64, vectors []Histogram) (*core.Reduction, []*core.Reduction, [][]float64, error) {
	finest := levels[len(levels)-1]
	rng := rand.New(rand.NewSource(e.opts.Seed ^ int64(cascadeplan.PlanID(levels))))
	needFlows := e.opts.Method == FBMod || e.opts.Method == FBAll
	if needFlows && flows == nil {
		// Engine restored from a snapshot: Build never ran in this
		// process, so collect the sample flows the derivation needs.
		var err error
		if flows, err = e.collectFlows(vectors, rng); err != nil {
			return nil, nil, nil, err
		}
	}
	red := cur
	if cur == nil || cur.ReducedDims() != finest {
		var err error
		if red, err = e.deriveReduction(finest, flows, rng); err != nil {
			return nil, nil, nil, err
		}
	}
	if len(levels) == 1 {
		return red, nil, flows, nil
	}
	coarser := make([]int, 0, len(levels)-1)
	for i := len(levels) - 2; i >= 0; i-- {
		coarser = append(coarser, levels[i])
	}
	cascade, err := e.buildCascadeFrom(red, flows, coarser, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	return red, cascade, flows, nil
}

// adoptChain derives and installs the given cascade levels (ascending
// coarse→fine) as if the planner had proposed them, bypassing the
// cost model. In-package tests use it to pin a chain.
func (e *Engine) adoptChain(levels []int) error {
	if err := cascadeplan.ValidateLevels(levels, e.Dim()); err != nil {
		return err
	}
	e.mu.Lock()
	if !e.opts.AutoCascade {
		e.mu.Unlock()
		return fmt.Errorf("emdsearch: adoptChain requires AutoCascade")
	}
	if e.red == nil {
		e.mu.Unlock()
		return fmt.Errorf("emdsearch: adoptChain before Build")
	}
	if e.replanning {
		e.mu.Unlock()
		return fmt.Errorf("emdsearch: a re-plan is in flight")
	}
	e.replanning = true
	red := e.red
	flows := e.buildFlows
	vectors := e.store.Vectors()
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.replanning = false
		e.mu.Unlock()
	}()
	newRed, cascade, newFlows, err := e.deriveChain(levels, red, flows, vectors)
	if err != nil {
		return err
	}
	plan := &cascadeplan.Plan{Levels: append([]int(nil), levels...), ID: cascadeplan.PlanID(levels)}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.red != red {
		return fmt.Errorf("emdsearch: adoptChain raced a Build")
	}
	if newFlows != nil {
		e.buildFlows = newFlows
	}
	return e.installPlanLocked(newRed, cascade, plan, 0)
}

// cascadeWindow converts the metrics delta since the last plan
// adoption into a planner workload. finestDims resolves the bare
// "Red-EMD" stage name of single-level chains.
func cascadeWindow(base, cur Metrics, finestDims, dim int) cascadeplan.Workload {
	w := cascadeplan.Workload{
		Queries:     (cur.KNNQueries - base.KNNQueries) + (cur.RangeQueries - base.RangeQueries),
		Dim:         dim,
		Refinements: cur.Refinements - base.Refinements,
		RefineTime:  cur.RefineTime - base.RefineTime,
		Results:     cur.ResultsReturned - base.ResultsReturned,
	}
	for name, st := range cur.Stages {
		dims := stageLevelDims(name, finestDims)
		if dims == 0 {
			continue
		}
		prev := base.Stages[name]
		evals := st.Evaluations - prev.Evaluations
		if evals <= 0 {
			continue
		}
		w.Levels = append(w.Levels, cascadeplan.Observation{
			Dims:        dims,
			Evaluations: evals,
			Survivors:   evals - (st.Pruned - prev.Pruned),
			Time:        st.Time - prev.Time,
		})
	}
	return w
}

// stageLevelDims maps an observed stage name to its cascade level
// dimensionality: "Red-EMD-<m>" → m, bare "Red-EMD" → the active
// finest d'. Non-cascade stages (the IM prefix, index traversals, the
// asymmetric filter) return 0 and are not modeled as levels.
func stageLevelDims(name string, finest int) int {
	if name == "Red-EMD" {
		return finest
	}
	if rest, ok := strings.CutPrefix(name, "Red-EMD-"); ok {
		if m, err := strconv.Atoi(rest); err == nil && m > 0 {
			return m
		}
	}
	return 0
}

// finestSurvivorsPerQuery returns the drift quantity — survivors per
// query of the finest observed cascade level — or -1 when the window
// observed none.
func finestSurvivorsPerQuery(w cascadeplan.Workload) float64 {
	best := -1
	var surv int64
	for _, o := range w.Levels {
		if o.Dims > best {
			best, surv = o.Dims, o.Survivors
		}
	}
	if best < 0 {
		return -1
	}
	return float64(surv) / float64(w.Queries)
}

func equalLevels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CascadePlan returns the active auto-cascade chain (per-level
// reduced dimensionalities, ascending coarse→fine) or nil when no
// auto plan is active (AutoCascade off, or Build not yet called).
func (e *Engine) CascadePlan() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.plan == nil {
		return nil
	}
	return append([]int(nil), e.plan.Levels...)
}
