// Package emdsearch is an efficient Earth Mover's Distance similarity
// search library for multimedia feature histograms, implementing the
// flexible dimensionality-reduction filter framework of Wichterich,
// Assent, Kranen and Seidl: "Efficient EMD-based Similarity Search in
// Multimedia Databases via Flexible Dimensionality Reduction"
// (SIGMOD 2008).
//
// The library provides:
//
//   - An exact EMD over arbitrary non-negative ground-distance
//     matrices (transportation simplex with an independent
//     min-cost-flow cross-check), including rectangular instances.
//   - Combining dimensionality reductions for the EMD with the
//     provably optimal reduced cost matrix, constructed by k-medoids
//     clustering of the ground distance or by data-dependent
//     flow-based local search (FB-Mod / FB-All), flexible in the
//     number of reduced dimensions.
//   - Lossless multistep k-NN and range query processing (KNOP) with
//     chained lower-bounding filters (Red-IM -> Red-EMD -> EMD):
//     exact results, a fraction of the full-dimensional EMD
//     computations.
//
// Quick start:
//
//	cost := emdsearch.LinearCost(64)
//	eng, _ := emdsearch.NewEngine(cost, emdsearch.Options{ReducedDims: 8})
//	for _, h := range histograms {
//	    eng.Add("", h)
//	}
//	eng.Build()
//	results, stats, _ := eng.KNN(query, 10)
//
// The internal packages expose the individual building blocks
// (internal/emd, internal/core, internal/flowred, internal/search, …)
// for code living inside this module; the root package is the stable
// public surface.
package emdsearch

import (
	"emdsearch/internal/emd"
	"emdsearch/internal/search"
)

// Histogram is a non-negative feature vector of total mass 1.
type Histogram = emd.Histogram

// CostMatrix is a ground-distance matrix; entry [i][j] is the cost of
// moving one unit of mass from bin i to bin j.
type CostMatrix = emd.CostMatrix

// Result is one query answer: database index and exact EMD.
type Result = search.Result

// QueryStats reports the filter and refinement effort of one query.
type QueryStats = search.QueryStats

// EMD computes the exact Earth Mover's Distance between two normalized
// histograms under the given ground distance. The cost matrix may be
// rectangular (len(x) rows, len(y) columns).
func EMD(x, y Histogram, cost CostMatrix) (float64, error) {
	return emd.Distance(x, y, cost)
}

// EMDWithFlow additionally returns the optimal flow matrix.
func EMDWithFlow(x, y Histogram, cost CostMatrix) (float64, [][]float64, error) {
	return emd.DistanceWithFlow(x, y, cost)
}

// Normalize returns a total-mass-1 copy of h. It panics if h has no
// positive mass.
func Normalize(h Histogram) Histogram { return emd.Normalize(h) }

// LinearCost is the |i-j| ground distance between 1-D ordered bins.
func LinearCost(d int) CostMatrix { return emd.LinearCost(d) }

// ModuloCost is the circular ground distance for ring-ordered bins
// (e.g. hue histograms).
func ModuloCost(d int) CostMatrix { return emd.ModuloCost(d) }

// GridCost is the Lp ground distance over the centers of a rows x cols
// tiling (row-major bins).
func GridCost(rows, cols int, p float64) (CostMatrix, error) {
	return emd.GridCost(rows, cols, p)
}

// PositionCost is the Lp ground distance between explicit bin
// positions in feature space.
func PositionCost(source, target [][]float64, p float64) (CostMatrix, error) {
	return emd.PositionCost(source, target, p)
}

// Signature is the sparse EMD representation from the original
// computer-vision formulation: feature-space cluster positions with
// non-negative weights. Signatures of different sizes compare
// directly.
type Signature = emd.Signature

// SignatureEMD computes the EMD between two equal-mass signatures
// under the Lp ground distance between their cluster positions.
func SignatureEMD(a, b Signature, p float64) (float64, error) {
	return emd.SignatureDistance(a, b, p)
}

// PartialEMD computes the unequal-mass partial EMD between two
// non-negative histograms: the minimal cost of transporting the
// smaller total mass, surplus free.
func PartialEMD(x, y Histogram, cost CostMatrix) (float64, error) {
	return emd.PartialDistance(x, y, cost)
}

// PenalizedEMD is the EMD-hat style unequal-mass distance: the partial
// EMD plus penalty per unit of surplus mass. For penalty >= max(cost)/2
// with a metric ground distance it is itself a metric.
func PenalizedEMD(x, y Histogram, cost CostMatrix, penalty float64) (float64, error) {
	return emd.PenalizedDistance(x, y, cost, penalty)
}
