package emdsearch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emdsearch/internal/data"
	"emdsearch/internal/persist/faultio"
)

// Chaos suite for the replication layer: primaries crash mid-query,
// followers lag behind a blocked ship link, the link flaps, followers
// get promoted while queries run, and both copies of a shard die at
// once. Every scenario asserts the answer certificate stays sound —
// a caught-up failover is byte-identical to the healthy path, a
// lagging one is honestly Degraded with an exact Freshness bound, and
// nothing is ever silently stale.

// replicaSetOpts is the common chaos config: one follower per shard,
// a quarantine threshold high enough that repeated injected faults
// keep dispatching to the (failing) primary, and a microsecond ship
// backoff so lag scenarios drain quickly once healed.
func replicaSetOpts() ShardSetOptions {
	return ShardSetOptions{
		Replicas:        1,
		QuarantineAfter: 100,
		RetryBase:       100 * time.Microsecond,
		RetryCap:        time.Millisecond,
		Seed:            1,
	}
}

// extraVectors returns m fresh histograms compatible with the chaos
// corpus (same bins, different seed) for post-Build mutations.
func extraVectors(t *testing.T, m int) []Histogram {
	t.Helper()
	ds, err := data.MusicSpectra(m+5, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	vecs, _, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	return vecs[:m]
}

// addInLockstep appends vecs to both the set and the reference engine
// and returns the new items' global ids.
func addInLockstep(t *testing.T, set *ShardSet, single *Engine, vecs []Histogram) []int {
	t.Helper()
	gids := make([]int, len(vecs))
	for i, h := range vecs {
		label := fmt.Sprintf("late-%d", i)
		gid, err := set.Add(label, h)
		if err != nil {
			t.Fatalf("set add %d: %v", i, err)
		}
		if _, err := single.Add(label, h); err != nil {
			t.Fatalf("single add %d: %v", i, err)
		}
		gids[i] = gid
	}
	return gids
}

// assertCaughtUpFailover asserts the acceptance criterion for one
// query: err-free, not degraded, full coverage, a zero-lag freshness
// entry for the failed-over shard, and byte-identity with want.
func assertCaughtUpFailover(t *testing.T, tag string, ans *ShardAnswer, want []Result, shards, total, bad int) {
	t.Helper()
	if ans.Degraded {
		t.Fatalf("%s: caught-up failover answer marked Degraded", tag)
	}
	assertFullCoverage(t, tag, ans.Coverage, shards, total)
	sameResultBytes(t, tag, ans.Results, want)
	fr := ans.Coverage.Freshness
	if len(fr) != 1 || fr[0].Shard != bad || fr[0].Lag != 0 || fr[0].PrimaryLSN != fr[0].AppliedLSN {
		t.Fatalf("%s: freshness = %+v, want one zero-lag entry for shard %d", tag, fr, bad)
	}
	for i, o := range ans.Outcomes {
		if i == bad {
			if !o.FailedOver || o.Err != "" {
				t.Fatalf("%s: bad shard outcome %+v, want clean failover", tag, o)
			}
		} else if o.FailedOver {
			t.Fatalf("%s: healthy shard %d failed over: %+v", tag, i, o)
		}
	}
}

// TestReplicaFailoverByteIdentity is the acceptance sweep: with one
// follower per shard, killing any single primary mid-query yields
// ItemsUncovered == 0 and answers byte-identical to the single merged
// engine — the failover is invisible except in the freshness entry
// and the outcome flag.
func TestReplicaFailoverByteIdentity(t *testing.T) {
	const shards = 3
	var bad atomic.Int64
	bad.Store(-1)
	opts := replicaSetOpts()
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && int64(shard) == bad.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 48, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	if err := set.WaitReplicasCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < shards; b++ {
		bad.Store(int64(b))
		for _, k := range []int{1, 5} {
			for qi, q := range queries {
				want, _, err := single.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				ans, err := set.KNN(ctx, q, k)
				if err != nil {
					t.Fatalf("bad=%d k=%d q%d: %v", b, k, qi, err)
				}
				tag := fmt.Sprintf("failover b=%d k=%d q%d", b, k, qi)
				assertCaughtUpFailover(t, tag, ans, want, shards, set.Len(), b)
			}
		}
	}
	m := set.Metrics()
	if m.Failovers == 0 || m.FailoverServes == 0 {
		t.Fatalf("failover counters not advancing: %+v", m)
	}
	if len(m.Replicas) != shards {
		t.Fatalf("%d replica statuses for %d shards", len(m.Replicas), shards)
	}
	for i := 0; i < shards; i++ {
		r, ok := set.Replica(i)
		if !ok || !r.Bootstrapped || r.Lag != 0 || r.PrimaryLSN != r.AppliedLSN {
			t.Fatalf("shard %d replica status %+v, want caught-up bootstrapped follower", i, r)
		}
	}
}

// TestReplicaQuarantineFailover: a quarantined primary's slice is
// served by its follower without the primary being dispatched — the
// answer stays complete through the whole quarantine window.
func TestReplicaQuarantineFailover(t *testing.T) {
	const shards, b = 3, 2
	var kill atomic.Bool
	kill.Store(true)
	opts := replicaSetOpts()
	opts.QuarantineAfter = 1
	opts.QuarantineCooldown = time.Hour
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && shard == b && kill.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 42, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	q, k := queries[0], 5
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}

	// First query: hard fault, failover, and the quarantine trips.
	ans, err := set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	assertCaughtUpFailover(t, "tripping", ans, want, shards, set.Len(), b)

	// Primary healed but quarantined: the skip itself fails over.
	kill.Store(false)
	ans, err = set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	assertCaughtUpFailover(t, "quarantined", ans, want, shards, set.Len(), b)
	if o := ans.Outcomes[b]; !o.Skipped || o.Tries != 0 {
		t.Fatalf("quarantined outcome %+v, want skipped primary with zero tries", o)
	}
}

// TestReplicaLaggingFollowerDegraded: with the ship link down, the
// follower misses mutations; a failover answer must then be Degraded
// with a Freshness entry whose Lag is exactly the missed record
// count, charged to ItemsUncovered — and byte-identical to the
// reference restricted to what the follower provably holds. Healing
// the link restores the byte-identical healthy certificate.
func TestReplicaLaggingFollowerDegraded(t *testing.T) {
	const shards, b = 3, 0
	var blockShip, killPrimary atomic.Bool
	opts := replicaSetOpts()
	opts.ReplicaShipHook = func(shard int, lsn int64) error {
		if blockShip.Load() {
			return errors.New("ship link down")
		}
		return nil
	}
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && shard == b && killPrimary.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 42, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	wait, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := set.WaitReplicasCaughtUp(wait); err != nil {
		t.Fatal(err)
	}

	// Cut the link, then mutate: the primaries accept the writes, the
	// followers can't see them.
	blockShip.Store(true)
	gids := addInLockstep(t, set, single, extraVectors(t, 6))
	lag := 0
	missed := map[int]bool{}
	for _, gid := range gids {
		if gid%shards == b {
			lag++
			missed[gid] = true
		}
	}
	if lag == 0 {
		t.Fatal("setup: no late adds landed on the failing shard")
	}

	killPrimary.Store(true)
	q, k := queries[0], 5
	ans, err := set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Degraded {
		t.Fatal("lagging failover answer not marked Degraded — silently stale")
	}
	cov := ans.Coverage
	if cov.ShardsDegraded != 1 || cov.ShardsOK != shards-1 || cov.ShardsFailed != 0 {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.ItemsUncovered != lag {
		t.Fatalf("ItemsUncovered = %d, want ship lag %d", cov.ItemsUncovered, lag)
	}
	fr := cov.Freshness
	if len(fr) != 1 || fr[0].Shard != b || fr[0].Lag != int64(lag) ||
		fr[0].PrimaryLSN-fr[0].AppliedLSN != int64(lag) {
		t.Fatalf("freshness = %+v, want lag %d on shard %d", fr, lag, b)
	}
	if !ans.Outcomes[b].FailedOver {
		t.Fatalf("bad shard outcome %+v, want failover", ans.Outcomes[b])
	}
	// The stale slice is still exact over what the follower holds:
	// byte-identical to the reference excluding exactly the missed
	// mutations.
	want, _, err := single.KNNWhere(q, k, func(gid int) bool { return !missed[gid] })
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "lagging", ans.Results, want)

	// Heal the link: the follower catches up and the same failed-over
	// query returns the full healthy certificate.
	blockShip.Store(false)
	wait2, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := set.WaitReplicasCaughtUp(wait2); err != nil {
		t.Fatal(err)
	}
	wantFull, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	ans, err = set.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}
	assertCaughtUpFailover(t, "healed", ans, wantFull, shards, set.Len(), b)
}

// TestReplicaShipLinkFlapping: every record's first two ship attempts
// fail. The shipper's retry loop must still deliver everything in
// order, catch-up must complete, and a subsequent failover must be
// byte-identical — redelivery is idempotent, never double-applied.
func TestReplicaShipLinkFlapping(t *testing.T) {
	const shards = 3
	var mu sync.Mutex
	tries := map[[2]int64]int{}
	var bad atomic.Int64
	bad.Store(-1)
	opts := replicaSetOpts()
	opts.ReplicaShipHook = func(shard int, lsn int64) error {
		mu.Lock()
		defer mu.Unlock()
		key := [2]int64{int64(shard), lsn}
		tries[key]++
		if tries[key] <= 2 {
			return errors.New("link flap")
		}
		return nil
	}
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && int64(shard) == bad.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 42, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	addInLockstep(t, set, single, extraVectors(t, 6))
	wait, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := set.WaitReplicasCaughtUp(wait); err != nil {
		t.Fatalf("catch-up through flapping link: %v", err)
	}
	var shipErrs uint64
	for i := 0; i < shards; i++ {
		r, ok := set.Replica(i)
		if !ok || r.Lag != 0 {
			t.Fatalf("shard %d replica %+v, want caught up", i, r)
		}
		shipErrs += r.ShipErrors
	}
	if shipErrs == 0 {
		t.Fatal("flapping link produced no ship errors — hook not exercised")
	}
	q, k := queries[0], 5
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < shards; b++ {
		bad.Store(int64(b))
		ans, err := set.KNN(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertCaughtUpFailover(t, fmt.Sprintf("flapped b=%d", b), ans, want, shards, set.Len(), b)
	}
}

// resultsIdentical is sameResultBytes for goroutines that cannot call
// t.Fatal: same indices, same Float64bits.
func resultsIdentical(got, want []Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			return false
		}
	}
	return true
}

// TestReplicaPromotion: each shard's follower is promoted to primary
// while queries run, answers staying byte-identical throughout; after
// promotion, shipping to the freshly bootstrapped followers resumes
// and failover off a promoted primary still serves the full slice.
func TestReplicaPromotion(t *testing.T) {
	const shards = 3
	var bad atomic.Int64
	bad.Store(-1)
	opts := replicaSetOpts()
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && int64(shard) == bad.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 42, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	if err := set.WaitReplicasCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	q, k := queries[0], 5
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer queries from four goroutines while every shard promotes.
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := set.KNN(ctx, q, k)
				if err != nil {
					errCh <- err
					return
				}
				if ans.Degraded {
					errCh <- errors.New("query degraded during promotion")
					return
				}
				if !resultsIdentical(ans.Results, want) {
					errCh <- fmt.Errorf("promotion broke identity: got %v want %v", ans.Results, want)
					return
				}
			}
		}()
	}
	for b := 0; b < shards; b++ {
		if err := set.Promote(ctx, b); err != nil {
			close(stop)
			t.Fatalf("promote shard %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for i := 0; i < shards; i++ {
		r, ok := set.Replica(i)
		if !ok || !r.Bootstrapped || r.Lag != 0 {
			t.Fatalf("post-promotion shard %d replica %+v, want fresh caught-up follower", i, r)
		}
	}

	// Replication is live on the promoted primaries: new mutations
	// ship to the new followers and failover still serves in full.
	addInLockstep(t, set, single, extraVectors(t, 6))
	wait, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := set.WaitReplicasCaughtUp(wait); err != nil {
		t.Fatal(err)
	}
	wantFull, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < shards; b++ {
		bad.Store(int64(b))
		ans, err := set.KNN(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertCaughtUpFailover(t, fmt.Sprintf("post-promotion b=%d", b), ans, wantFull, shards, set.Len(), b)
	}
}

// TestReplicaDualFailure: primary and follower both die. The answer
// must degrade to a certified partial: the whole slice counted
// uncovered, the outcome error carrying both failures, and the
// results byte-identical to the reference restricted to the surviving
// shards.
func TestReplicaDualFailure(t *testing.T) {
	const shards, b = 3, 1
	opts := replicaSetOpts()
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if shard == b && (op == "knn" || op == "knn-failover") {
			return errors.New("injected total shard loss")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 48, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	q, k := queries[0], 5
	ans, err := set.KNN(ctx, q, k)
	if err != nil {
		t.Fatalf("dual failure of one shard must not fail the query: %v", err)
	}
	if !ans.Degraded {
		t.Fatal("dual-failure answer not marked Degraded")
	}
	cov := ans.Coverage
	if cov.ShardsFailed != 1 || len(cov.FailedShards) != 1 || cov.FailedShards[0] != b ||
		cov.ShardsOK != shards-1 || cov.ShardsDegraded != 0 {
		t.Fatalf("coverage = %+v", cov)
	}
	if want := shardLen(set.Len(), shards, b); cov.ItemsUncovered != want {
		t.Fatalf("ItemsUncovered = %d, want the lost shard's %d items", cov.ItemsUncovered, want)
	}
	if len(cov.Freshness) != 0 {
		t.Fatalf("dual failure produced a freshness entry: %+v", cov.Freshness)
	}
	o := ans.Outcomes[b]
	if o.FailedOver || o.Err == "" {
		t.Fatalf("outcome %+v, want un-failed-over error", o)
	}
	for _, sub := range []string{"failover", "injected total shard loss"} {
		if !strings.Contains(o.Err, sub) {
			t.Fatalf("outcome error %q missing %q", o.Err, sub)
		}
	}
	sameResultBytes(t, "dual", ans.Results, restrictedKNN(t, single, q, k, shards, map[int]bool{b: true}))
	assertSoundIntervals(t, "dual", single, q, ans.Anytime)
}

// TestReplicaRangeFailover: the failover path serves range queries
// too, with the same caught-up byte-identity and freshness entry.
func TestReplicaRangeFailover(t *testing.T) {
	const shards, b = 3, 2
	opts := replicaSetOpts()
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "range" && shard == b {
			return errors.New("injected primary crash")
		}
		return nil
	}
	set, single, queries := buildChaosSet(t, shards, 48, Options{ReducedDims: 4, Seed: 1}, opts)
	defer set.Close()
	ctx := context.Background()
	if err := set.WaitReplicasCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		probe, _, err := single.KNN(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		eps := probe[len(probe)-1].Dist
		want, _, err := single.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := set.Range(ctx, q, eps)
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		if ans.Degraded {
			t.Fatalf("q%d: caught-up range failover degraded", qi)
		}
		assertFullCoverage(t, "range-failover", ans.Coverage, shards, set.Len())
		sameResultBytes(t, "range-failover", ans.Results, want)
		fr := ans.Coverage.Freshness
		if len(fr) != 1 || fr[0].Shard != b || fr[0].Lag != 0 {
			t.Fatalf("q%d: freshness = %+v, want zero-lag entry for shard %d", qi, fr, b)
		}
		if !ans.Outcomes[b].FailedOver {
			t.Fatalf("q%d: outcome %+v, want failover", qi, ans.Outcomes[b])
		}
	}
}

// TestReplicaRecoveredSetFailover: a set recovered from disk
// (OpenShardSet + Build) bootstraps followers the same way a fresh
// one does, so failover works immediately after crash recovery.
func TestReplicaRecoveredSetFailover(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	set, single, queries := buildChaosSet(t, shards, 30, Options{ReducedDims: 4, Seed: 1}, ShardSetOptions{})
	if err := set.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	var bad atomic.Int64
	bad.Store(-1)
	opts := replicaSetOpts()
	opts.Shards = shards
	opts.ShardHook = func(ctx context.Context, shard, try int, op string) error {
		if op == "knn" && int64(shard) == bad.Load() {
			return errors.New("injected primary crash")
		}
		return nil
	}
	rec, _, err := OpenShardSet(dir, single.Cost(), Options{ReducedDims: 4, Seed: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Build(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rec.WaitReplicasCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	q, k := queries[0], 5
	want, _, err := single.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < shards; b++ {
		bad.Store(int64(b))
		ans, err := rec.KNN(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertCaughtUpFailover(t, fmt.Sprintf("recovered b=%d", b), ans, want, shards, rec.Len(), b)
	}
}

// TestShardSetAddHealsBrokenWAL: a shard whose WAL latches broken (a
// torn append whose rollback also failed) heals transparently inside
// ShardSet.Add — the log is reopened with bounded retries and the
// insert retried — and the healed log replays every acknowledged
// mutation exactly once.
func TestShardSetAddHealsBrokenWAL(t *testing.T) {
	// gid 4 — the first add after the break — lands on shard 0.
	const shards, b = 2, 0
	dir := t.TempDir()
	ds, err := data.MusicSpectra(15, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, _, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewShardSet(ds.Cost, Options{ReducedDims: 4, Seed: 1}, ShardSetOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.OpenWAL(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := set.Add(fmt.Sprintf("pre-%d", i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Break shard b's WAL file under the engine: writes fail and the
	// rollback truncate fails too, latching the log broken.
	displaced := set.engines[b].wal.SwapFileForTest(&faultWALFile{w: &faultio.Writer{W: io.Discard, Budget: 0}})
	if err := displaced.Close(); err != nil {
		t.Fatal(err)
	}

	// The next Add routed to shard b must heal the log and succeed.
	gid, err := set.Add("healed", vecs[4])
	if err != nil {
		t.Fatalf("Add through broken WAL did not heal: %v", err)
	}
	if want := 4; gid != want {
		t.Fatalf("healed add got gid %d, want %d", gid, want)
	}
	if got := set.Metrics().WALReopens; got != 1 {
		t.Fatalf("WALReopens = %d, want 1", got)
	}
	// Durable logging resumed: further mutations land normally.
	for i := 5; i < 8; i++ {
		if _, err := set.Add(fmt.Sprintf("post-%d", i), vecs[i]); err != nil {
			t.Fatalf("post-heal add %d: %v", i, err)
		}
	}
	if err := set.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Crash-recover: exactly the acknowledged items, placement intact.
	rec, _, err := OpenShardSet(dir, ds.Cost, Options{ReducedDims: 4, Seed: 1}, ShardSetOptions{Shards: shards})
	if err != nil {
		t.Fatalf("recover after heal: %v", err)
	}
	if rec.Len() != set.Len() || rec.Len() != 8 {
		t.Fatalf("recovered %d items, want 8", rec.Len())
	}
	if got := rec.Label(4); got != "healed" {
		t.Fatalf("recovered label %q for the healed add, want %q", got, "healed")
	}
}
