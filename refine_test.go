package emdsearch

import (
	"testing"
)

// TestEngineBoundedRefineMatchesUnbounded is the end-to-end bit-identity
// check of the threshold-aware refinement kernel: engines with early
// abandon + warm start + sparsity reduction (the default), with the
// legacy unbounded kernel (Options.UnboundedRefine), and with both
// kernels under parallel refinement must return byte-identical KNN and
// Range results on the same data.
func TestEngineBoundedRefineMatchesUnbounded(t *testing.T) {
	const n = 120
	base := Options{ReducedDims: 8, SampleSize: 10}
	bounded, queries := buildEngine(t, base, n)

	legacy := base
	legacy.UnboundedRefine = true
	unbounded, _ := buildEngine(t, legacy, n)

	parallel := base
	parallel.Workers = 4
	boundedPar, _ := buildEngine(t, parallel, n)

	for qi, q := range queries {
		for _, k := range []int{1, 5, 17} {
			want, _, err := unbounded.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := bounded.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: bounded %d results, unbounded %d", qi, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
					t.Fatalf("query %d k=%d result %d: bounded %+v, unbounded %+v",
						qi, k, i, got[i], want[i])
				}
			}
			if stats.RefinesAborted > stats.Refinements {
				t.Fatalf("query %d k=%d: aborted %d > refinements %d",
					qi, k, stats.RefinesAborted, stats.Refinements)
			}
			if stats.Refinements > 0 && (stats.RefineRows == 0 || stats.RefineCols == 0) {
				t.Fatalf("query %d k=%d: reduced shapes not recorded: %+v", qi, k, stats)
			}
			gotPar, _, err := boundedPar.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotPar) != len(want) {
				t.Fatalf("query %d k=%d: parallel bounded %d results, want %d", qi, k, len(gotPar), len(want))
			}
			for i := range want {
				if gotPar[i] != want[i] {
					t.Fatalf("query %d k=%d result %d: parallel bounded %+v, unbounded %+v",
						qi, k, i, gotPar[i], want[i])
				}
			}
		}

		// Range at a radius that admits a handful of items.
		ref, _, err := unbounded.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		eps := ref[len(ref)-1].Dist * 1.01
		want, _, err := unbounded.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for name, eng := range map[string]*Engine{"bounded": bounded, "boundedPar": boundedPar} {
			got, _, err := eng.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d range (%s): %d results, want %d", qi, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d range (%s) result %d: got %+v, want %+v", qi, name, i, got[i], want[i])
				}
			}
		}
	}

	// The bounded engines must actually have used the new machinery
	// over the query workload, and the legacy engine must not.
	bm := bounded.Metrics()
	if bm.RefinesAborted == 0 {
		t.Error("bounded engine never aborted a refinement over the workload")
	}
	if bm.WarmStartHits == 0 {
		t.Error("bounded engine never warm-started a refinement over the workload")
	}
	if bm.RefineRows == 0 || bm.RefineCols == 0 {
		t.Error("bounded engine recorded no reduced shapes")
	}
	um := unbounded.Metrics()
	if um.RefinesAborted != 0 || um.WarmStartHits != 0 {
		t.Errorf("unbounded engine reports bounded-kernel activity: %+v", um)
	}
	pm := boundedPar.Metrics()
	if pm.RefinesAborted == 0 {
		t.Error("parallel bounded engine never aborted a refinement")
	}
	if pm.WarmStartHits == 0 {
		t.Error("parallel bounded engine never warm-started a refinement")
	}
}

// TestEngineBoundedCountersAggregate checks that the per-query bounded
// counters flow into Engine.Metrics additively.
func TestEngineBoundedCountersAggregate(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, 100)
	var aborted, warm, rows, cols int64
	for _, q := range queries {
		_, stats, err := eng.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		aborted += int64(stats.RefinesAborted)
		warm += int64(stats.WarmStartHits)
		rows += stats.RefineRows
		cols += stats.RefineCols
	}
	m := eng.Metrics()
	if m.RefinesAborted != aborted || m.WarmStartHits != warm ||
		m.RefineRows != rows || m.RefineCols != cols {
		t.Fatalf("metrics %+v do not match summed query stats (aborted %d, warm %d, rows %d, cols %d)",
			m, aborted, warm, rows, cols)
	}
}
