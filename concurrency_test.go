package emdsearch

import (
	"math"
	"sync"
	"testing"
	"time"

	"emdsearch/internal/data"
)

// TestEngineParallelMatchesSequential verifies the central claim of the
// parallel refinement path: with Workers > 1 KNN and Range return
// exactly the sequential results — same items, same distances, same
// order — for a spread of k values and radii. Both engines run the
// default threshold-aware refinement kernel, so this also pins the
// equality with early abandon enabled on both sides (the
// bounded-vs-legacy comparison lives in refine_test.go).
func TestEngineParallelMatchesSequential(t *testing.T) {
	seq, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, 120)
	par, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, Workers: 4}, 120)
	for qi, q := range queries {
		for _, k := range []int{1, 5, 17} {
			want, wantStats, err := seq.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := par.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if wantStats.Workers != 1 {
				t.Fatalf("sequential path reports %d workers", wantStats.Workers)
			}
			if gotStats.Workers != 4 {
				t.Fatalf("parallel path reports %d workers, want 4", gotStats.Workers)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: got %d results, want %d", qi, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
					t.Fatalf("query %d k=%d result %d: got %+v, want %+v", qi, k, i, got[i], want[i])
				}
			}
		}
		// Range with a radius chosen to return a handful of items.
		ref, _, err := seq.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		eps := ref[len(ref)-1].Dist * 1.01
		want, _, err := seq.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := par.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d range: got %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d range result %d: got %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
	// Both engines must have exercised the bounded kernel — otherwise
	// the equality above silently stops covering early abandon.
	for name, eng := range map[string]*Engine{"sequential": seq, "parallel": par} {
		if m := eng.Metrics(); m.WarmStartHits == 0 {
			t.Errorf("%s engine never warm-started a refinement over the workload", name)
		}
	}
}

// TestEngineSetWorkers flips the worker bound at runtime and checks it
// takes effect (and keeps results correct).
func TestEngineSetWorkers(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 6, SampleSize: 10}, 60)
	q := queries[0]
	want, stats, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 {
		t.Fatalf("default workers = %d, want 1", stats.Workers)
	}
	eng.SetWorkers(3)
	got, stats, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 {
		t.Fatalf("after SetWorkers(3): stats report %d workers", stats.Workers)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d changed after SetWorkers: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineConcurrentStress runs a mixed read workload — KNN, Range,
// BatchKNN, Rank, ApproxKNN, RangeIDs — against an engine that another
// goroutine is simultaneously growing (Add), re-deriving (Build) and
// shrinking (Delete). It exists chiefly for `go test -race`: any
// unsynchronized access between the query snapshot and the mutators
// trips the race detector here. It also checks basic result sanity
// (ascending distances, no errors, no deleted items by the end).
func TestEngineConcurrentStress(t *testing.T) {
	ds, err := data.MusicSpectra(96, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(6)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, Options{ReducedDims: 6, SampleSize: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const initial = 50
	for i := 0; i < initial; i++ {
		if _, err := eng.Add(ds.Items[i].Label, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 64)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	checkAscending := func(results []Result) {
		for i := 1; i < len(results); i++ {
			if results[i].Dist < results[i-1].Dist {
				report(errAscending(results[i-1], results[i]))
				return
			}
		}
	}

	var wg sync.WaitGroup
	reader := func(body func(q Histogram)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body(queries[i%len(queries)])
			}
		}()
	}
	reader(func(q Histogram) {
		results, _, err := eng.KNN(q, 3)
		if err != nil {
			report(err)
			return
		}
		checkAscending(results)
	})
	reader(func(q Histogram) {
		results, _, err := eng.Range(q, 0.1)
		if err != nil {
			report(err)
			return
		}
		checkAscending(results)
	})
	reader(func(q Histogram) {
		batch, err := eng.BatchKNN([]Histogram{q, queries[0]}, 2, 2)
		if err != nil {
			report(err)
			return
		}
		for _, b := range batch {
			if b.Err != nil {
				report(b.Err)
				return
			}
			checkAscending(b.Results)
		}
	})
	reader(func(q Histogram) {
		r, err := eng.Rank(q)
		if err != nil {
			report(err)
			return
		}
		prev := math.Inf(-1)
		for i := 0; i < 4; i++ {
			_, d, ok := r.Next()
			if !ok {
				break
			}
			if d < prev {
				report(errAscending(Result{Dist: prev}, Result{Dist: d}))
				return
			}
			prev = d
		}
	})
	reader(func(q Histogram) {
		if _, _, err := eng.ApproxKNN(q, 3); err != nil {
			report(err)
			return
		}
		if _, err := eng.RangeIDs(q, 0.05); err != nil {
			report(err)
		}
	})

	// Writer: grow the index, periodically re-derive the reduction and
	// soft-delete some of the new arrivals.
	deletes := 0
	for i := initial; i < len(vecs); i++ {
		// Pace the writer so the readers interleave with many distinct
		// snapshot generations rather than racing one burst of Adds.
		time.Sleep(500 * time.Microsecond)
		id, err := eng.Add(ds.Items[i].Label, vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := eng.Delete(id); err != nil {
				t.Fatal(err)
			}
			deletes++
		}
		if i%16 == 0 {
			if err := eng.Build(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The engine must still answer correctly after the storm.
	results, _, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if eng.Deleted(r.Index) {
			t.Errorf("deleted item %d in results", r.Index)
		}
	}
	if eng.Alive() != eng.Len()-deletes {
		t.Errorf("alive %d of %d after %d deletes", eng.Alive(), eng.Len(), deletes)
	}
}

type ascendingError struct{ a, b Result }

func errAscending(a, b Result) error { return ascendingError{a, b} }
func (e ascendingError) Error() string {
	return "results out of ascending order"
}
