package vptree

import (
	"fmt"
	"math"
)

// Flat is the tree's serializable form: nodes in preorder, children
// addressed by index. It contains item ids and stored distances only —
// restoring is meaningful only against the same item set and metric,
// which the engine enforces with a content fingerprint.
type Flat struct {
	N     int
	Nodes []FlatNode
}

// FlatNode is one serialized node. Vantage is -1 for leaves; Inside
// and Outside are node indices, -1 for absent children.
type FlatNode struct {
	Vantage            int32
	Radius             float64
	ILo, IHi, OLo, OHi float64
	PLo, PHi, DVP      float64
	Inside, Outside    int32
	Bucket             []int32
	BDist              []float64
}

// Flatten serializes the tree structure.
func (t *Tree) Flatten() *Flat {
	f := &Flat{N: t.n}
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		if n == nil {
			return -1
		}
		idx := int32(len(f.Nodes))
		f.Nodes = append(f.Nodes, FlatNode{})
		fn := FlatNode{
			Vantage: -1, Radius: n.radius,
			ILo: n.ilo, IHi: n.ihi, OLo: n.olo, OHi: n.ohi,
			PLo: n.plo, PHi: n.phi, DVP: n.dvp,
			Inside: -1, Outside: -1,
		}
		// Copy bucket slices: Flat owns its memory and must not alias
		// the live tree.
		if n.bucket != nil {
			fn.Bucket = append([]int32(nil), n.bucket...)
		}
		if n.bdist != nil {
			fn.BDist = append([]float64(nil), n.bdist...)
		}
		if n.vantage >= 0 {
			fn.Vantage = int32(n.vantage)
		}
		fn.Inside = walk(n.inside)
		fn.Outside = walk(n.outside)
		f.Nodes[idx] = fn
		return idx
	}
	walk(t.root)
	return f
}

// RestoreFlat rebuilds a tree from its serialized form after strict
// structural validation, for item ids in [0, n). Validation failures
// indicate corruption or version skew the snapshot layer's checksums
// missed, never a query-time panic.
func RestoreFlat(f *Flat, n int) (*Tree, error) {
	if f == nil {
		return nil, fmt.Errorf("vptree: nil flat form")
	}
	if f.N < 0 || f.N > n {
		return nil, fmt.Errorf("vptree: flat size %d out of range [0, %d]", f.N, n)
	}
	if len(f.Nodes) == 0 {
		if f.N != 0 {
			return nil, fmt.Errorf("vptree: %d items but no nodes", f.N)
		}
		return &Tree{}, nil
	}
	finiteOrNaN := func(x float64) bool { return !math.IsInf(x, 0) }
	nodes := make([]*node, len(f.Nodes))
	refs := make([]int, len(f.Nodes))
	items := 0
	for i, fn := range f.Nodes {
		for _, x := range [9]float64{fn.Radius, fn.ILo, fn.IHi, fn.OLo, fn.OHi, fn.PLo, fn.PHi, fn.DVP, 0} {
			if !finiteOrNaN(x) {
				return nil, fmt.Errorf("vptree: node %d has an infinite field", i)
			}
		}
		nd := &node{
			vantage: -1, radius: fn.Radius,
			ilo: fn.ILo, ihi: fn.IHi, olo: fn.OLo, ohi: fn.OHi,
			plo: fn.PLo, phi: fn.PHi, dvp: fn.DVP,
		}
		if fn.Vantage >= 0 {
			if int(fn.Vantage) >= n {
				return nil, fmt.Errorf("vptree: node %d vantage %d out of range [0, %d)", i, fn.Vantage, n)
			}
			if len(fn.Bucket) != 0 || len(fn.BDist) != 0 {
				return nil, fmt.Errorf("vptree: internal node %d carries a bucket", i)
			}
			if fn.Inside < 0 && fn.Outside < 0 {
				return nil, fmt.Errorf("vptree: internal node %d has no children", i)
			}
			nd.vantage = int(fn.Vantage)
			items++
		} else {
			if fn.Inside != -1 || fn.Outside != -1 {
				return nil, fmt.Errorf("vptree: leaf node %d has children", i)
			}
			if fn.BDist != nil && len(fn.BDist) != len(fn.Bucket) {
				return nil, fmt.Errorf("vptree: leaf node %d: %d bucket distances for %d items", i, len(fn.BDist), len(fn.Bucket))
			}
			for _, it := range fn.Bucket {
				if it < 0 || int(it) >= n {
					return nil, fmt.Errorf("vptree: leaf node %d item %d out of range [0, %d)", i, it, n)
				}
				items++
			}
			for _, bd := range fn.BDist {
				if math.IsNaN(bd) || math.IsInf(bd, 0) || bd < 0 {
					return nil, fmt.Errorf("vptree: leaf node %d has invalid bucket distance %g", i, bd)
				}
			}
			nd.bucket = fn.Bucket
			nd.bdist = fn.BDist
		}
		for _, c := range [2]int32{fn.Inside, fn.Outside} {
			if c == -1 {
				continue
			}
			if int(c) <= i || int(c) >= len(f.Nodes) {
				return nil, fmt.Errorf("vptree: node %d child %d violates preorder", i, c)
			}
			refs[c]++
		}
		nodes[i] = nd
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != 1 {
			return nil, fmt.Errorf("vptree: node %d referenced %d times, want 1", i, refs[i])
		}
	}
	if items != f.N {
		return nil, fmt.Errorf("vptree: flat size %d, but %d items stored", f.N, items)
	}
	for i, fn := range f.Nodes {
		if fn.Inside >= 0 {
			nodes[i].inside = nodes[fn.Inside]
		}
		if fn.Outside >= 0 {
			nodes[i].outside = nodes[fn.Outside]
		}
	}
	return &Tree{root: nodes[0], n: f.N, nodes: len(f.Nodes)}, nil
}
