// Package vptree implements a vantage-point tree, the classic metric
// index the multimedia-retrieval literature compares filter-and-refine
// architectures against. It answers exact k-NN and range queries for
// any metric distance using triangle-inequality pruning.
//
// The EMD is a metric whenever its ground distance is one, so a
// VP-tree over the full-dimensional EMD is a valid — and historically
// popular — alternative to the paper's reduction filters. The Fig23
// extension experiment contrasts the two: metric pruning attacks the
// number of distance computations from geometry alone, while the
// paper's filters attack the *cost* of each pruning test; on
// high-dimensional EMDs with concentrated distances the filter chain
// wins decisively.
package vptree

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// DistFunc is a metric distance between two indexed items.
type DistFunc func(i, j int) float64

// QueryDistFunc is a metric distance between the query and item i.
type QueryDistFunc func(i int) float64

// Tree is a vantage-point tree over items 0..n-1.
type Tree struct {
	root *node
	n    int
}

type node struct {
	vantage int     // item index of the vantage point
	radius  float64 // median distance of the subtree items to vantage
	inside  *node   // items with d(vantage, x) <= radius
	outside *node   // items with d(vantage, x) > radius
	// bucket holds the items of small leaves (including the vantage).
	bucket []int32
}

// leafSize is the bucket size below which subtrees are stored flat.
const leafSize = 8

// Build constructs a VP-tree over n items with the given pairwise
// metric. dist is called O(n log n) times; rng picks vantage points.
func Build(n int, dist DistFunc, rng *rand.Rand) (*Tree, error) {
	if n < 0 {
		return nil, fmt.Errorf("vptree: negative size %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("vptree: nil rng")
	}
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
	}
	return &Tree{root: build(items, dist, rng), n: n}, nil
}

func build(items []int32, dist DistFunc, rng *rand.Rand) *node {
	if len(items) == 0 {
		return nil
	}
	if len(items) <= leafSize {
		return &node{vantage: -1, bucket: items}
	}
	// Choose a random vantage and swap it to the front.
	vi := rng.Intn(len(items))
	items[0], items[vi] = items[vi], items[0]
	vantage := int(items[0])
	rest := items[1:]

	// Partition the rest by the median distance to the vantage.
	dists := make([]float64, len(rest))
	for i, it := range rest {
		dists[i] = dist(vantage, int(it))
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(rest) / 2
	radius := dists[order[mid]]

	insideItems := make([]int32, 0, mid+1)
	outsideItems := make([]int32, 0, len(rest)-mid)
	for _, oi := range order {
		if dists[oi] <= radius && len(insideItems) <= mid {
			insideItems = append(insideItems, rest[oi])
		} else {
			outsideItems = append(outsideItems, rest[oi])
		}
	}
	return &node{
		vantage: vantage,
		radius:  radius,
		inside:  build(insideItems, dist, rng),
		outside: build(outsideItems, dist, rng),
	}
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.n }

// Result is one query answer.
type Result struct {
	Index int
	Dist  float64
}

// Stats reports the work of one query.
type Stats struct {
	// DistanceCalls counts evaluations of the query distance — the
	// quantity metric indexing tries to minimize.
	DistanceCalls int
	NodesVisited  int
}

// resultHeap is a max-heap on Dist, keeping the k best results.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// KNN returns the k nearest items to the query described by qdist,
// exactly, using triangle-inequality pruning. Results are sorted by
// distance, then index.
func (t *Tree) KNN(qdist QueryDistFunc, k int) ([]Result, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("vptree: k = %d, want >= 1", k)
	}
	stats := &Stats{}
	best := make(resultHeap, 0, k+1)
	tau := func() float64 {
		if len(best) < k {
			return inf
		}
		return best[0].Dist
	}
	add := func(idx int, d float64) {
		heap.Push(&best, Result{Index: idx, Dist: d})
		if len(best) > k {
			heap.Pop(&best)
		}
	}
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		stats.NodesVisited++
		if nd.vantage < 0 {
			for _, it := range nd.bucket {
				stats.DistanceCalls++
				add(int(it), qdist(int(it)))
			}
			return
		}
		stats.DistanceCalls++
		dv := qdist(nd.vantage)
		add(nd.vantage, dv)
		// Visit the more promising side first; prune with the
		// triangle inequality: inside can contain items closer than
		// tau only if dv - radius <= tau, outside only if
		// radius - dv <= tau.
		if dv <= nd.radius {
			visit(nd.inside)
			if dv+tau() >= nd.radius {
				visit(nd.outside)
			}
		} else {
			visit(nd.outside)
			if dv-tau() <= nd.radius {
				visit(nd.inside)
			}
		}
	}
	visit(t.root)

	out := make([]Result, len(best))
	copy(out, best)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}

// Range returns all items within eps of the query, exactly.
func (t *Tree) Range(qdist QueryDistFunc, eps float64) ([]Result, *Stats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("vptree: eps = %g, want >= 0", eps)
	}
	stats := &Stats{}
	var out []Result
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		stats.NodesVisited++
		if nd.vantage < 0 {
			for _, it := range nd.bucket {
				stats.DistanceCalls++
				if d := qdist(int(it)); d <= eps {
					out = append(out, Result{Index: int(it), Dist: d})
				}
			}
			return
		}
		stats.DistanceCalls++
		dv := qdist(nd.vantage)
		if dv <= eps {
			out = append(out, Result{Index: nd.vantage, Dist: dv})
		}
		if dv-eps <= nd.radius {
			visit(nd.inside)
		}
		if dv+eps >= nd.radius {
			visit(nd.outside)
		}
	}
	visit(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}

var inf = 1e308
