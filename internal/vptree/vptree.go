// Package vptree implements a vantage-point tree, the classic metric
// index the multimedia-retrieval literature compares filter-and-refine
// architectures against. It answers exact k-NN and range queries for
// any metric distance using triangle-inequality pruning, and exposes a
// best-first Stream that emits items in nondecreasing lower-bound
// order for use as an incremental candidate generator.
//
// The EMD is a metric whenever its ground distance is one, so a
// VP-tree over the full-dimensional EMD is a valid — and historically
// popular — alternative to the paper's reduction filters. The Fig23
// extension experiment contrasts the two: metric pruning attacks the
// number of distance computations from geometry alone, while the
// paper's filters attack the *cost* of each pruning test; on
// high-dimensional EMDs with concentrated distances the filter chain
// wins decisively. The engine combines both: a VP-tree over the
// *reduced* EMD prunes the filter stage itself.
package vptree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"emdsearch/internal/heapx"
)

// DistFunc is a metric distance between two indexed items.
type DistFunc func(i, j int) float64

// QueryDistFunc is a metric distance between the query and item i.
type QueryDistFunc func(i int) float64

// Tree is a vantage-point tree over integer item ids.
type Tree struct {
	root  *node
	n     int
	nodes int
}

type node struct {
	vantage int     // item index of the vantage point, -1 for leaves
	radius  float64 // median distance of the subtree items to vantage

	// Subtree annuli to this node's vantage, recorded at build time
	// from distances the construction computes anyway: the inside
	// (resp. outside) child's items all lie within [ilo, ihi] (resp.
	// [olo, ohi]) of the vantage. They give the best-first stream a
	// tighter child bound than the single median radius.
	ilo, ihi float64
	olo, ohi float64

	// Subtree annuli to the PARENT's vantage (covering this node's
	// entire subtree, vantage included) and the vantage's own distance
	// to it. They feed the optional supermetric four-point bound, which
	// needs two pivots with known query distances. NaN at the root.
	plo, phi float64
	dvp      float64

	inside  *node // items with d(vantage, x) <= radius
	outside *node // items with d(vantage, x) > radius

	// bucket holds the items of small leaves (including the vantage);
	// bdist holds each bucket item's distance to the parent vantage
	// (nil when the whole tree is one leaf).
	bucket []int32
	bdist  []float64
}

// leafSize is the bucket size below which subtrees are stored flat.
const leafSize = 8

// Build constructs a VP-tree over items 0..n-1 with the given pairwise
// metric. dist is called O(n log n) times; rng picks vantage points.
func Build(n int, dist DistFunc, rng *rand.Rand) (*Tree, error) {
	if n < 0 {
		return nil, fmt.Errorf("vptree: negative size %d", n)
	}
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
	}
	return BuildIDs(items, dist, rng)
}

// BuildIDs constructs a VP-tree over an explicit id set (e.g. the live
// items of a store with soft deletes). The slice is taken over and
// reordered in place.
func BuildIDs(ids []int32, dist DistFunc, rng *rand.Rand) (*Tree, error) {
	if rng == nil {
		return nil, fmt.Errorf("vptree: nil rng")
	}
	if dist == nil {
		return nil, fmt.Errorf("vptree: nil distance")
	}
	t := &Tree{n: len(ids)}
	t.root = t.build(ids, nil, dist, rng)
	return t, nil
}

// build constructs the subtree over items; pdists[i] is the distance
// of items[i] to the parent's vantage (nil at the root).
func (t *Tree) build(items []int32, pdists []float64, dist DistFunc, rng *rand.Rand) *node {
	if len(items) == 0 {
		return nil
	}
	t.nodes++
	nd := &node{plo: math.NaN(), phi: math.NaN(), dvp: math.NaN()}
	if pdists != nil {
		nd.plo, nd.phi = minMax(pdists)
	}
	if len(items) <= leafSize {
		nd.vantage = -1
		nd.bucket = items
		if pdists != nil {
			nd.bdist = pdists
		}
		return nd
	}
	// Choose a random vantage and swap it to the front.
	vi := rng.Intn(len(items))
	items[0], items[vi] = items[vi], items[0]
	if pdists != nil {
		pdists[0], pdists[vi] = pdists[vi], pdists[0]
		nd.dvp = pdists[0]
	}
	vantage := int(items[0])
	rest := items[1:]

	// Partition the rest by the median distance to the vantage.
	dists := make([]float64, len(rest))
	for i, it := range rest {
		dists[i] = dist(vantage, int(it))
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(rest) / 2
	radius := dists[order[mid]]

	insideItems := make([]int32, 0, mid+1)
	insideDists := make([]float64, 0, mid+1)
	outsideItems := make([]int32, 0, len(rest)-mid)
	outsideDists := make([]float64, 0, len(rest)-mid)
	for _, oi := range order {
		if dists[oi] <= radius && len(insideItems) <= mid {
			insideItems = append(insideItems, rest[oi])
			insideDists = append(insideDists, dists[oi])
		} else {
			outsideItems = append(outsideItems, rest[oi])
			outsideDists = append(outsideDists, dists[oi])
		}
	}
	nd.vantage = vantage
	nd.radius = radius
	nd.ilo, nd.ihi = minMax(insideDists)
	nd.olo, nd.ohi = minMax(outsideDists)
	nd.inside = t.build(insideItems, insideDists, dist, rng)
	nd.outside = t.build(outsideItems, outsideDists, dist, rng)
	return nd
}

// minMax returns the minimum and maximum of a slice, or (0, 0) when it
// is empty (an empty child is never descended into, so the annulus is
// never read).
func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.n }

// Nodes returns the total number of tree nodes — the denominator of
// the "subtrees pruned" statistic a best-first traversal reports.
func (t *Tree) Nodes() int { return t.nodes }

// Result is one query answer.
type Result struct {
	Index int
	Dist  float64
}

// Stats reports the work of one query.
type Stats struct {
	// DistanceCalls counts evaluations of the query distance — the
	// quantity metric indexing tries to minimize.
	DistanceCalls int
	NodesVisited  int
}

// KNN returns the k nearest items to the query described by qdist,
// exactly, using triangle-inequality pruning. Results are sorted by
// distance, then index.
func (t *Tree) KNN(qdist QueryDistFunc, k int) ([]Result, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("vptree: k = %d, want >= 1", k)
	}
	stats := &Stats{}
	best := heapx.New(k+1, func(a, b Result) bool { return a.Dist > b.Dist })
	tau := func() float64 {
		if best.Len() < k {
			return inf
		}
		return best.Peek().Dist
	}
	add := func(idx int, d float64) {
		best.Push(Result{Index: idx, Dist: d})
		if best.Len() > k {
			best.Pop()
		}
	}
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		stats.NodesVisited++
		if nd.vantage < 0 {
			for _, it := range nd.bucket {
				stats.DistanceCalls++
				add(int(it), qdist(int(it)))
			}
			return
		}
		stats.DistanceCalls++
		dv := qdist(nd.vantage)
		add(nd.vantage, dv)
		// Visit the more promising side first; prune with the
		// triangle inequality: inside can contain items closer than
		// tau only if dv - radius <= tau, outside only if
		// radius - dv <= tau.
		if dv <= nd.radius {
			visit(nd.inside)
			if dv+tau() >= nd.radius {
				visit(nd.outside)
			}
		} else {
			visit(nd.outside)
			if dv-tau() <= nd.radius {
				visit(nd.inside)
			}
		}
	}
	visit(t.root)

	out := make([]Result, 0, best.Len())
	for best.Len() > 0 {
		out = append(out, best.Pop())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}

// Range returns all items within eps of the query, exactly.
func (t *Tree) Range(qdist QueryDistFunc, eps float64) ([]Result, *Stats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("vptree: eps = %g, want >= 0", eps)
	}
	stats := &Stats{}
	var out []Result
	var visit func(nd *node)
	visit = func(nd *node) {
		if nd == nil {
			return
		}
		stats.NodesVisited++
		if nd.vantage < 0 {
			for _, it := range nd.bucket {
				stats.DistanceCalls++
				if d := qdist(int(it)); d <= eps {
					out = append(out, Result{Index: int(it), Dist: d})
				}
			}
			return
		}
		stats.DistanceCalls++
		dv := qdist(nd.vantage)
		if dv <= eps {
			out = append(out, Result{Index: nd.vantage, Dist: dv})
		}
		if dv-eps <= nd.radius {
			visit(nd.inside)
		}
		if dv+eps >= nd.radius {
			visit(nd.outside)
		}
	}
	visit(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}

var inf = 1e308
