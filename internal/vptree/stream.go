package vptree

import (
	"math"

	"emdsearch/internal/fourpoint"
	"emdsearch/internal/heapx"
)

// Frame kinds of the best-first stream, in heap tie-break order.
const (
	frameNode   int8 = iota // subtree to expand
	frameUneval             // item, query distance pending
	frameEval               // item, query distance known
)

// frame is one priority-queue element; key is a certified lower bound
// on the query distance of everything beneath it.
type frame struct {
	key  float64
	kind int8
	idx  int32   // item id (item frames)
	node *node   // subtree (node frames)
	dqp  float64 // d(query, node's parent vantage), NaN at root
}

// Stream is an incremental best-first traversal emitting items in
// nondecreasing distance order, pruning with the triangle inequality
// against the stored subtree annuli and — when fourPoint is enabled —
// with the supermetric planar bound over (parent vantage, vantage)
// pivot pairs. It is not safe for concurrent use; the Tree is never
// mutated and can serve many Streams.
type Stream struct {
	t         *Tree
	qdist     QueryDistFunc
	skip      func(id int) bool
	fourPoint bool
	heap      *heapx.Heap[frame]
	stats     Stats
}

// Stream starts a best-first traversal. skip, when non-nil, filters
// items (e.g. soft deletes) before their distance is evaluated; a
// skipped vantage still serves as a pruning pivot but is not emitted.
// fourPoint must only be enabled when the metric has the four-point
// property (see internal/fourpoint) — the engine verifies this on
// sampled quadruples before switching it on.
func (t *Tree) Stream(qdist QueryDistFunc, skip func(id int) bool, fourPoint bool) *Stream {
	s := &Stream{
		t:         t,
		qdist:     qdist,
		skip:      skip,
		fourPoint: fourPoint,
		heap: heapx.New(64, func(a, b frame) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			return a.idx < b.idx
		}),
	}
	if t.root != nil {
		s.heap.Push(frame{kind: frameNode, node: t.root, dqp: math.NaN()})
	}
	return s
}

// Stats reports the traversal work so far.
func (s *Stream) Stats() Stats { return s.stats }

// childKey lower-bounds the query distance to a child subtree whose
// items lie within [lo, hi] of nd's vantage (query distance dv) and
// within [nd.plo, nd.phi] of nd's parent vantage (query distance
// f.dqp): the triangle bound against the annulus, optionally maxed
// with the supermetric two-pivot bound.
func (s *Stream) childKey(f *frame, nd *node, dv, lo, hi float64) float64 {
	k := f.key
	if b := dv - hi; b > k {
		k = b
	}
	if b := lo - dv; b > k {
		k = b
	}
	if s.fourPoint && !math.IsNaN(nd.dvp) && !math.IsNaN(f.dqp) {
		// Pivots: p = parent vantage, v = nd's vantage. nd.plo/phi cover
		// nd's whole subtree, a superset of the child's — looser but
		// still a sound annulus for the planar bound.
		if b := fourpoint.LowerBound(nd.dvp, f.dqp, dv, nd.plo, nd.phi, lo, hi); b > k {
			k = b
		}
	}
	return k
}

// Next returns the next item in nondecreasing lower-bound order, or
// ok = false when the tree is exhausted. Emitted Dist values are exact
// index metric distances and never decrease, so a consumer may stop at
// its threshold without losing any qualifying item.
func (s *Stream) Next() (Result, bool) {
	h := s.heap
	for h.Len() > 0 {
		f := h.Pop()
		switch f.kind {
		case frameNode:
			nd := f.node
			s.stats.NodesVisited++
			if nd.vantage < 0 {
				for i, it := range nd.bucket {
					k := f.key
					if nd.bdist != nil && !math.IsNaN(f.dqp) {
						if b := math.Abs(f.dqp - nd.bdist[i]); b > k {
							k = b
						}
					}
					h.Push(frame{key: k, kind: frameUneval, idx: it})
				}
				continue
			}
			s.stats.DistanceCalls++
			dv := s.qdist(nd.vantage)
			if s.skip == nil || !s.skip(nd.vantage) {
				k := dv
				if f.key > k {
					k = f.key // float slack only; keeps emissions monotone
				}
				h.Push(frame{key: k, kind: frameEval, idx: int32(nd.vantage)})
			}
			if nd.inside != nil {
				h.Push(frame{
					key:  s.childKey(&f, nd, dv, nd.ilo, nd.ihi),
					kind: frameNode, node: nd.inside, dqp: dv,
				})
			}
			if nd.outside != nil {
				h.Push(frame{
					key:  s.childKey(&f, nd, dv, nd.olo, nd.ohi),
					kind: frameNode, node: nd.outside, dqp: dv,
				})
			}
		case frameUneval:
			id := int(f.idx)
			if s.skip != nil && s.skip(id) {
				continue
			}
			s.stats.DistanceCalls++
			d := s.qdist(id)
			if f.key > d {
				d = f.key
			}
			if h.Len() == 0 || d <= h.Peek().key {
				return Result{Index: id, Dist: d}, true
			}
			h.Push(frame{key: d, kind: frameEval, idx: f.idx})
		case frameEval:
			return Result{Index: int(f.idx), Dist: f.key}, true
		}
	}
	return Result{}, false
}
