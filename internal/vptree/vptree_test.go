package vptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// euclidean test fixture: n random points in the plane.
func fixture(n int, seed int64) ([][]float64, DistFunc) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	return pts, func(i, j int) float64 { return vecmath.L2(pts[i], pts[j]) }
}

func bruteKNN(pts [][]float64, q []float64, k int) []Result {
	all := make([]Result, len(pts))
	for i := range pts {
		all[i] = Result{Index: i, Dist: vecmath.L2(q, pts[i])}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestBuildValidation(t *testing.T) {
	_, dist := fixture(4, 1)
	if _, err := Build(-1, dist, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted negative size")
	}
	if _, err := Build(4, dist, nil); err == nil {
		t.Error("accepted nil rng")
	}
	tree, err := Build(0, dist, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := tree.KNN(func(int) float64 { return 0 }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty tree returned %d results", len(res))
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	pts, dist := fixture(500, 3)
	tree, err := Build(len(pts), dist, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		qd := func(i int) float64 { return vecmath.L2(q, pts[i]) }
		for _, k := range []int{1, 5, 17} {
			got, stats, err := tree.KNN(qd, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("k=%d result %d: got %+v, want %+v", k, i, got[i], want[i])
				}
			}
			if stats.DistanceCalls > len(pts) {
				t.Errorf("more distance calls (%d) than points (%d)", stats.DistanceCalls, len(pts))
			}
		}
	}
}

func TestKNNPrunesOnLowDimensionalData(t *testing.T) {
	// In 2-D the tree must evaluate far fewer distances than a scan.
	pts, dist := fixture(2000, 5)
	tree, err := Build(len(pts), dist, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{5, 5}
	_, stats, err := tree.KNN(func(i int) float64 { return vecmath.L2(q, pts[i]) }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DistanceCalls > len(pts)/2 {
		t.Errorf("2-D VP-tree evaluated %d of %d distances; expected substantial pruning",
			stats.DistanceCalls, len(pts))
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	pts, dist := fixture(400, 9)
	tree, err := Build(len(pts), dist, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{3, 7}
	qd := func(i int) float64 { return vecmath.L2(q, pts[i]) }
	for _, eps := range []float64{0, 0.5, 2, 20} {
		got, _, err := tree.Range(qd, eps)
		if err != nil {
			t.Fatal(err)
		}
		var want []Result
		for i := range pts {
			if d := qd(i); d <= eps {
				want = append(want, Result{Index: i, Dist: d})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].Index < want[j].Index
		})
		if len(got) != len(want) {
			t.Fatalf("eps=%g: %d results, want %d", eps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eps=%g result %d: got %+v, want %+v", eps, i, got[i], want[i])
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	pts, dist := fixture(10, 1)
	tree, _ := Build(len(pts), dist, rand.New(rand.NewSource(1)))
	if _, _, err := tree.KNN(func(int) float64 { return 0 }, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := tree.Range(func(int) float64 { return 0 }, -1); err == nil {
		t.Error("accepted negative eps")
	}
}

// TestEMDMetricTree: the tree must be exact over the EMD with a metric
// ground distance, the setting of the Fig23 extension experiment.
func TestEMDMetricTree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const d, n = 8, 120
	cost := emd.LinearCost(d)
	if !cost.IsMetric(1e-12) {
		t.Fatal("fixture ground distance not metric")
	}
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	hists := make([]emd.Histogram, n)
	for i := range hists {
		h := make(emd.Histogram, d)
		for b := range h {
			h[b] = rng.Float64()
		}
		hists[i] = vecmath.Normalize(h)
	}
	tree, err := Build(n, func(i, j int) float64 { return dist.Distance(hists[i], hists[j]) }, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := hists[0]
	qd := func(i int) float64 { return dist.Distance(q, hists[i]) }
	got, _, err := tree.KNN(qd, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	all := make([]Result, n)
	for i := 0; i < n; i++ {
		all[i] = Result{Index: i, Dist: qd(i)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	for i := 0; i < 5; i++ {
		if got[i].Index != all[i].Index {
			t.Fatalf("EMD VP-tree result %d: got %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestTreeLen(t *testing.T) {
	pts, dist := fixture(42, 1)
	tree, _ := Build(len(pts), dist, rand.New(rand.NewSource(1)))
	if tree.Len() != 42 {
		t.Errorf("Len = %d, want 42", tree.Len())
	}
}
