package vptree

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// points2D builds an n-point 2-D Euclidean test metric. Euclidean
// spaces have the four-point property, so both stream modes must be
// exact on this data.
func points2D(rng *rand.Rand, n int) ([][2]float64, DistFunc) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	dist := func(i, j int) float64 {
		return math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
	}
	return pts, dist
}

func drainStream(t *testing.T, s *Stream) []Result {
	t.Helper()
	var out []Result
	prev := math.Inf(-1)
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		if r.Dist < prev {
			t.Fatalf("emission %d: Dist %g < previous %g", len(out), r.Dist, prev)
		}
		prev = r.Dist
		out = append(out, r)
	}
}

func TestStreamEmitsAllInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		pts, dist := points2D(rng, n)
		tr, err := Build(n, dist, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		q := [2]float64{rng.Float64() * 10, rng.Float64() * 10}
		qdist := func(i int) float64 {
			return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
		}
		for _, fourPoint := range []bool{false, true} {
			got := drainStream(t, tr.Stream(qdist, nil, fourPoint))
			if len(got) != n {
				t.Fatalf("trial %d fp=%v: %d emissions, want %d", trial, fourPoint, len(got), n)
			}
			want := make([]Result, n)
			for i := range want {
				want[i] = Result{Index: i, Dist: qdist(i)}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Dist != want[j].Dist {
					return want[i].Dist < want[j].Dist
				}
				return want[i].Index < want[j].Index
			})
			seen := make(map[int]bool, n)
			for i, r := range got {
				if seen[r.Index] {
					t.Fatalf("trial %d fp=%v: index %d emitted twice", trial, fourPoint, r.Index)
				}
				seen[r.Index] = true
				if math.Abs(r.Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("trial %d fp=%v emission %d: Dist = %g, want %g",
						trial, fourPoint, i, r.Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestStreamSkipsDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 250
	pts, dist := points2D(rng, n)
	tr, err := Build(n, dist, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	deleted := map[int]bool{}
	for i := 0; i < 50; i++ {
		deleted[rng.Intn(n)] = true
	}
	qdist := func(i int) float64 {
		return math.Hypot(5-pts[i][0], 5-pts[i][1])
	}
	got := drainStream(t, tr.Stream(qdist, func(id int) bool { return deleted[id] }, false))
	if len(got) != n-len(deleted) {
		t.Fatalf("%d emissions, want %d", len(got), n-len(deleted))
	}
	for _, r := range got {
		if deleted[r.Index] {
			t.Fatalf("deleted index %d emitted", r.Index)
		}
	}
}

// TestStreamFourPointPrunesMore: on Euclidean data the supermetric
// bound must visit no more nodes than plain triangle pruning for the
// same emissions, and typically fewer distance calls over a short
// prefix.
func TestStreamFourPointPrunesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 2000
	pts, dist := points2D(rng, n)
	tr, err := Build(n, dist, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var callsTri, callsFP int
	for trial := 0; trial < 20; trial++ {
		q := [2]float64{rng.Float64() * 10, rng.Float64() * 10}
		qdist := func(i int) float64 {
			return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
		}
		sTri := tr.Stream(qdist, nil, false)
		sFP := tr.Stream(qdist, nil, true)
		for i := 0; i < 10; i++ {
			a, okA := sTri.Next()
			b, okB := sFP.Next()
			if !okA || !okB {
				t.Fatalf("trial %d: stream dry at %d", trial, i)
			}
			// The four-point emission can carry ~1e-15 of planar rounding
			// slack above the exact distance; compare with tolerance and
			// allow index swaps only between genuine distance ties.
			if math.Abs(a.Dist-b.Dist) > 1e-9 {
				t.Fatalf("trial %d emission %d: tri (%d, %g) vs fourpoint (%d, %g)",
					trial, i, a.Index, a.Dist, b.Index, b.Dist)
			}
			if a.Index != b.Index && math.Abs(qdist(a.Index)-qdist(b.Index)) > 1e-9 {
				t.Fatalf("trial %d emission %d: tri index %d vs fourpoint index %d at non-tied distances",
					trial, i, a.Index, b.Index)
			}
		}
		callsTri += sTri.Stats().DistanceCalls
		callsFP += sFP.Stats().DistanceCalls
	}
	if callsFP > callsTri {
		t.Fatalf("four-point pruning cost MORE distance calls: %d vs %d", callsFP, callsTri)
	}
	t.Logf("distance calls over 20 queries x 10-NN prefix: triangle %d, four-point %d", callsTri, callsFP)
}

func TestFlattenRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{0, 1, 7, 8, 9, 150} {
		pts, dist := points2D(rng, n+1)
		tr, err := Build(n, dist, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tr.Flatten()); err != nil {
			t.Fatalf("n=%d: gob encode: %v", n, err)
		}
		var back Flat
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatalf("n=%d: gob decode: %v", n, err)
		}
		re, err := RestoreFlat(&back, n)
		if err != nil {
			t.Fatalf("n=%d: RestoreFlat: %v", n, err)
		}
		if re.Len() != n || re.Nodes() != tr.Nodes() {
			t.Fatalf("n=%d: restored Len/Nodes = %d/%d, want %d/%d", n, re.Len(), re.Nodes(), n, tr.Nodes())
		}
		qdist := func(i int) float64 {
			return math.Hypot(3-pts[i][0], 7-pts[i][1])
		}
		for _, fourPoint := range []bool{false, true} {
			a := drainStream(t, tr.Stream(qdist, nil, fourPoint))
			b := drainStream(t, re.Stream(qdist, nil, fourPoint))
			if len(a) != len(b) {
				t.Fatalf("n=%d fp=%v: %d vs %d emissions", n, fourPoint, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d fp=%v emission %d: %+v vs %+v (must be bit-identical)",
						n, fourPoint, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRestoreFlatRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 80
	_, dist := points2D(rng, n)
	tr, err := Build(n, dist, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	fresh := func() *Flat { return tr.Flatten() }
	leafIdx := -1
	internalIdx := -1
	for i, fn := range fresh().Nodes {
		if fn.Vantage < 0 && leafIdx < 0 {
			leafIdx = i
		}
		if fn.Vantage >= 0 && internalIdx < 0 {
			internalIdx = i
		}
	}
	if leafIdx < 0 || internalIdx < 0 {
		t.Fatal("fixture tree lacks a leaf or internal node")
	}
	cases := []struct {
		name   string
		mutate func(f *Flat)
	}{
		{"vantage out of range", func(f *Flat) { f.Nodes[internalIdx].Vantage = int32(n) }},
		{"bucket item out of range", func(f *Flat) { f.Nodes[leafIdx].Bucket[0] = -2 }},
		{"negative bucket distance", func(f *Flat) {
			if f.Nodes[leafIdx].BDist != nil {
				f.Nodes[leafIdx].BDist[0] = -1
			} else {
				f.Nodes[leafIdx].BDist = []float64{-1}
			}
		}},
		{"size mismatch", func(f *Flat) { f.N++ }},
		{"child self-loop", func(f *Flat) { f.Nodes[internalIdx].Inside = int32(internalIdx) }},
		{"leaf with children", func(f *Flat) { f.Nodes[leafIdx].Inside = int32(leafIdx + 1) }},
		{"infinite radius", func(f *Flat) { f.Nodes[internalIdx].Radius = math.Inf(1) }},
	}
	for _, c := range cases {
		f := fresh()
		c.mutate(f)
		if _, err := RestoreFlat(f, n); err == nil {
			t.Errorf("%s: RestoreFlat accepted corrupted input", c.name)
		}
	}
	if _, err := RestoreFlat(fresh(), n); err != nil {
		t.Fatalf("unmutated flat rejected: %v", err)
	}
}
