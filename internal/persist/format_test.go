package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"emdsearch/internal/persist/faultio"
)

func testSnapshot() *Snapshot {
	items := []Item{
		{ID: 0, Label: "a", Vector: []float64{0.5, 0.25, 0.25}},
		{ID: 1, Label: "b", Vector: []float64{0, 0.5, 0.5}},
		{ID: 2, Label: "", Vector: []float64{1, 0, 0}},
	}
	return &Snapshot{
		Header: Header{Dim: 3, CostHash: 0xdeadbeefcafef00d, Items: len(items), ReducedDims: 2},
		Items:  items,
		Reductions: map[string]Reduction{
			"engine": {Assign: []int{0, 0, 1}, Reduced: 2},
		},
		EngineReduction: &Reduction{Assign: []int{0, 0, 1}, Reduced: 2},
		Deleted:         []int{1},
	}
}

func encodeSnapshot(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, want)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotHeaderItemCountMismatch(t *testing.T) {
	s := testSnapshot()
	s.Header.Items = 99
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err == nil {
		t.Fatal("WriteSnapshot accepted a header/items mismatch")
	}
}

// isTyped reports whether err maps onto one of the persistence
// sentinels — the contract for every corrupted input.
func isTyped(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) || errors.Is(err, ErrConfigMismatch)
}

// TestSnapshotBitFlipMatrix flips every byte of an encoded snapshot
// and asserts the reader always fails with a typed error — no panics,
// no silently-accepted damage.
func TestSnapshotBitFlipMatrix(t *testing.T) {
	enc := encodeSnapshot(t, testSnapshot())
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		s, err := ReadSnapshot(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at byte %d: damage accepted, decoded %+v", i, s)
		}
		if !isTyped(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

// TestSnapshotTruncationMatrix cuts the encoded snapshot at every
// length; the reader must always fail with ErrCorrupt (the snapshot
// format is written atomically, so torn files are corruption).
func TestSnapshotTruncationMatrix(t *testing.T) {
	enc := encodeSnapshot(t, testSnapshot())
	for n := 0; n < len(enc); n++ {
		_, err := ReadSnapshot(bytes.NewReader(enc[:n]))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestSnapshotTrailingGarbage(t *testing.T) {
	enc := encodeSnapshot(t, testSnapshot())
	_, err := ReadSnapshot(bytes.NewReader(append(enc, 0x42)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotVersionRejected(t *testing.T) {
	enc := encodeSnapshot(t, testSnapshot())
	bad := append([]byte(nil), enc...)
	bad[len(Magic)] = 99 // version word (little-endian low byte)
	_, err := ReadSnapshot(bytes.NewReader(bad))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

// TestSnapshotWriteFaultMatrix injects a write failure at every byte
// budget; WriteSnapshot must surface an error at each injection point
// and succeed only with the full budget.
func TestSnapshotWriteFaultMatrix(t *testing.T) {
	s := testSnapshot()
	full := int64(len(encodeSnapshot(t, s)))
	for budget := int64(0); budget < full; budget++ {
		var sink bytes.Buffer
		fw := &faultio.Writer{W: &sink, Budget: budget}
		if err := WriteSnapshot(fw, s); err == nil {
			t.Fatalf("budget %d/%d: write fault swallowed", budget, full)
		}
	}
	var sink bytes.Buffer
	if err := WriteSnapshot(&faultio.Writer{W: &sink, Budget: full}, s); err != nil {
		t.Fatalf("full budget: %v", err)
	}
}

func TestSnapshotReadFault(t *testing.T) {
	enc := encodeSnapshot(t, testSnapshot())
	// A mid-stream read *error* (not EOF) must propagate, not be
	// misclassified as a torn tail or corruption-free result.
	_, err := ReadSnapshot(&faultio.Reader{R: bytes.NewReader(enc), Budget: int64(len(enc) / 2)})
	if err == nil {
		t.Fatal("read fault swallowed")
	}
}

func TestCostHash(t *testing.T) {
	a := [][]float64{{0, 1}, {1, 0}}
	b := [][]float64{{0, 1}, {1, 0}}
	if CostHash(a) != CostHash(b) {
		t.Fatal("identical matrices hash differently")
	}
	b[1][0] = 1.0000001
	if CostHash(a) == CostHash(b) {
		t.Fatal("value change not reflected in hash")
	}
	if CostHash(a) == CostHash([][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}) {
		t.Fatal("shape change not reflected in hash")
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content %q, want %q", got, "second")
	}
	assertNoTempLitter(t, dir)
}

// TestAtomicWriteFileKeepsOldOnFailure fails the write callback at
// every plausible point and asserts the previous file is untouched and
// no temp file is left behind.
func TestAtomicWriteFileKeepsOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	payload := []byte("replacement-bytes-that-never-land")
	for budget := int64(0); budget <= int64(len(payload)); budget++ {
		err := AtomicWriteFile(path, func(w io.Writer) error {
			fw := &faultio.Writer{W: w, Budget: budget}
			if _, werr := fw.Write(payload); werr != nil {
				return werr
			}
			return faultio.ErrInjected // fail after a clean partial write too
		})
		if err == nil {
			t.Fatalf("budget %d: injected failure swallowed", budget)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if string(got) != "precious" {
			t.Fatalf("budget %d: previous snapshot damaged: %q", budget, got)
		}
		assertNoTempLitter(t, dir)
	}
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
