// Package persist implements the crash-safe on-disk formats behind the
// engine's durability story: a versioned, checksummed snapshot format
// written atomically (temp file -> fsync -> rename), and a write-ahead
// log whose records are appended — CRC-framed and fsynced — before the
// corresponding in-memory mutation happens.
//
// Both formats share one frame layout,
//
//	u32  length of body (little-endian)
//	u32  ^length (bitwise complement of the length word)
//	body
//	u32  IEEE CRC32 of body
//
// chosen so that damage is classifiable: a torn append (crash mid
// write) leaves an *incomplete* frame at the end of the file, while a
// bit flip anywhere inside a *complete* frame — including in the
// length words, which must match their complement — fails the
// complement or CRC check. Readers therefore either truncate a torn
// tail (write-ahead log only; the record was never acknowledged) or
// fail loudly with ErrCorrupt, and never mistake one for the other on
// single-byte damage.
//
// All failure modes map onto three typed sentinel errors — ErrCorrupt,
// ErrVersion and ErrConfigMismatch — so callers can distinguish "the
// bytes are damaged" from "a newer tool wrote this" from "this file
// belongs to a differently-configured engine" without parsing error
// strings.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
)

// Magic identifies a versioned snapshot file. Files that do not start
// with it are treated as legacy (version-0) gob streams by the engine.
const Magic = "EMDSNAP\x00"

// SnapshotVersion is the current snapshot format version. Version 2
// added the optional quantized-filter section, version 3 the optional
// metric-index section, version 4 the optional cascade/plan section;
// older versions are still read (the engine rebuilds the missing
// structures from the items, and re-plans a missing cascade).
const SnapshotVersion = 4

// maxFrame bounds a single frame body; larger declared lengths can
// only come from damage.
const maxFrame = 1 << 30

var (
	// ErrCorrupt reports damaged bytes: a failed checksum, an
	// inconsistent frame header, malformed section contents, or data
	// that fails semantic validation on load.
	ErrCorrupt = errors.New("persist: corrupt file")
	// ErrVersion reports a format version this build does not read.
	ErrVersion = errors.New("persist: unsupported format version")
	// ErrConfigMismatch reports a file written by an engine with a
	// different configuration (dimensionality, ground-distance matrix,
	// reduction) than the one trying to read it.
	ErrConfigMismatch = errors.New("persist: configuration mismatch")
	// ErrWALBroken reports a write-ahead log that has latched broken: a
	// write or sync failed AND the rollback truncate failed too, so the
	// file may end in a half-written frame at an unknown position.
	// Appending past the damage would strand valid records behind an
	// unreadable frame, so every Append fails with this error until the
	// log is reopened (the open-time scan truncates the torn tail).
	ErrWALBroken = errors.New("persist: wal broken")

	// errTorn is the internal classification of an incomplete final
	// frame: the file ends mid-frame, as a crash during an append
	// leaves it. The WAL reader truncates it; the snapshot reader
	// (whose files are written atomically and can never legitimately
	// be torn) converts it to ErrCorrupt.
	errTorn = errors.New("persist: torn frame")
)

// Header is the snapshot preamble: the engine configuration
// fingerprint a reader must match before trusting the payload.
type Header struct {
	// Dim is the histogram dimensionality.
	Dim int
	// CostHash fingerprints the ground-distance matrix (see CostHash).
	CostHash uint64
	// Items is the number of persisted histograms; cross-checked
	// against the items section.
	Items int
	// ReducedDims is the d' of the persisted engine reduction, 0 when
	// the engine runs unreduced.
	ReducedDims int
}

// Item is one persisted database object.
type Item struct {
	ID     int
	Label  string
	Vector []float64
}

// Reduction is a persisted dimensionality reduction: the assignment of
// original to reduced bins.
type Reduction struct {
	Assign  []int
	Reduced int
}

// QuantSection is the persisted quantized columnar filter: the int16
// column data plus the per-block scales and certified error margins,
// the geometry they describe, the cost maximum the margins were
// calibrated for, and the fingerprint (ReductionHash) of the reduction
// the columns were quantized under. Reusing it on load skips
// requantization; it is strictly an optimization, so a reader that
// cannot reuse it (fingerprint or geometry mismatch after further
// mutations) simply rebuilds.
type QuantSection struct {
	N, Dims, Block int
	CostMax        float64
	RedHash        uint64
	Scales         []float64
	Margins        []float64
	Cols           [][]int16
}

// IndexSection is the persisted metric index: the serialized tree
// (the kind-specific flat form, gob-encoded into Blob) plus the state
// fingerprint it was built under. Like the quantized filter it is
// strictly an optimization — a reader that cannot reuse it (kind,
// fingerprint or coverage mismatch) rebuilds from the items.
type IndexSection struct {
	// Kind is the tree kind, "mtree" or "vptree".
	Kind string
	// N is the store length the index covers (every live id < N is in
	// the tree); DeletedAtBuild is the soft-deleted count at build
	// time, the baseline of the engine's churn heuristic.
	N              int
	DeletedAtBuild int
	// RedHash fingerprints the reduction the index metric derives from
	// (see ReductionHash).
	RedHash uint64
	// Blob is the gob-encoded kind-specific flat tree form.
	Blob []byte
}

// CascadeSection is the persisted reduction cascade and, for engines
// running the auto-tuning planner, the plan that produced it. Levels
// holds the cascade levels finest-first, Levels[0] duplicating
// EngineReduction (readers cross-check); every entry reduces the full
// original dimensionality, and successive entries are nested
// coarsenings of their predecessor (original bins mapped to the same
// group by a finer level map to the same group in every coarser one —
// the property the cascade's lower-bound chain rests on). Levels is
// nil when an auto-planned engine runs a single filter level.
// PlanLevels lists the planned d' chain ascending (coarsest first) and
// is nil for configured (Hierarchy) chains; PlanID is the planner's
// fingerprint of PlanLevels.
type CascadeSection struct {
	Levels     []Reduction
	PlanLevels []int
	PlanID     uint64
	// Auto records whether the chain was chosen by the auto-tuning
	// planner (true) or configured explicitly (false).
	Auto bool
}

// Snapshot is the full persisted engine state.
type Snapshot struct {
	Header Header
	Items  []Item
	// Reductions are the store-registered reductions by name (legacy
	// engines smuggled the engine reduction through here).
	Reductions map[string]Reduction
	// EngineReduction is the engine's active reduction, nil when
	// unreduced or not yet built.
	EngineReduction *Reduction
	// Deleted lists soft-deleted item ids, ascending.
	Deleted []int
	// Quant is the quantized columnar filter, nil when the engine had
	// none built (and always nil in version-1 files).
	Quant *QuantSection
	// Index is the metric index, nil when the engine had none built
	// (and always nil in files before version 3).
	Index *IndexSection
	// Cascade is the reduction cascade and plan, nil when the engine
	// ran a single filter level (and always nil in files before
	// version 4).
	Cascade *CascadeSection
}

// reductionsSection is the gob payload of the third snapshot section.
type reductionsSection struct {
	Named  map[string]Reduction
	Engine *Reduction
}

// quantSection is the gob payload of the fifth snapshot section; the
// pointer encodes presence.
type quantSection struct {
	Quant *QuantSection
}

// indexSection is the gob payload of the sixth snapshot section; the
// pointer encodes presence.
type indexSection struct {
	Index *IndexSection
}

// cascadeSection is the gob payload of the seventh snapshot section;
// the pointer encodes presence.
type cascadeSection struct {
	Cascade *CascadeSection
}

// CostHash fingerprints a ground-distance matrix: shape plus the exact
// bit pattern of every entry. Two cost matrices hash equal iff they
// are entrywise identical.
func CostHash(cost [][]float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(cost)))
	h.Write(b[:])
	for _, row := range cost {
		binary.LittleEndian.PutUint64(b[:], uint64(len(row)))
		h.Write(b[:])
		for _, v := range row {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// ReductionHash fingerprints a dimensionality reduction: the reduced
// dimensionality plus the exact assignment vector. Two reductions hash
// equal iff they map every original bin to the same reduced bin.
func ReductionHash(assign []int, reduced int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(reduced))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(len(assign)))
	h.Write(b[:])
	for _, a := range assign {
		binary.LittleEndian.PutUint64(b[:], uint64(a))
		h.Write(b[:])
	}
	return h.Sum64()
}

// appendFrame appends the framed body to dst.
func appendFrame(dst, body []byte) []byte {
	var w [4]byte
	n := uint32(len(body))
	binary.LittleEndian.PutUint32(w[:], n)
	dst = append(dst, w[:]...)
	binary.LittleEndian.PutUint32(w[:], ^n)
	dst = append(dst, w[:]...)
	dst = append(dst, body...)
	binary.LittleEndian.PutUint32(w[:], crc32.ChecksumIEEE(body))
	return append(dst, w[:]...)
}

// frameOverhead is the framing cost beyond the body itself.
const frameOverhead = 12

// writeFrame writes one framed body to w.
func writeFrame(w io.Writer, body []byte) error {
	if _, err := w.Write(appendFrame(nil, body)); err != nil {
		return fmt.Errorf("persist: write frame: %w", err)
	}
	return nil
}

// readFrame reads one frame from r. It returns io.EOF at a clean frame
// boundary, errTorn when the file ends inside the frame, and an
// ErrCorrupt-wrapped error when a complete frame fails its complement
// or CRC check.
func readFrame(r io.Reader) (body []byte, err error) {
	var hdr [8]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, errTorn
	}
	if err != nil {
		return nil, fmt.Errorf("persist: read frame: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	inv := binary.LittleEndian.Uint32(hdr[4:8])
	if length != ^inv {
		return nil, fmt.Errorf("%w: frame length %d contradicts its complement", ErrCorrupt, length)
	}
	if length > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, length)
	}
	buf := make([]byte, int(length)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errTorn
		}
		return nil, fmt.Errorf("persist: read frame: %w", err)
	}
	body = buf[:length]
	want := binary.LittleEndian.Uint32(buf[length:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: frame checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return body, nil
}

// gobFrame writes v as one gob-encoded frame.
func gobFrame(w io.Writer, v interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("persist: encode section: %w", err)
	}
	return writeFrame(w, buf.Bytes())
}

// readGobFrame reads one frame and gob-decodes it into v. Torn frames
// are corruption here: the snapshot format is written atomically.
func readGobFrame(r io.Reader, v interface{}, section string) error {
	body, err := readFrame(r)
	if err == io.EOF || err == errTorn {
		return fmt.Errorf("%w: snapshot truncated in %s section", ErrCorrupt, section)
	}
	if err != nil {
		return fmt.Errorf("%s section: %w", section, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("%w: decode %s section: %v", ErrCorrupt, section, err)
	}
	return nil
}

// WriteSnapshot writes s to w in the versioned format: magic, version
// word, then one CRC-framed gob section each for the header, the
// items, the reductions, the deleted set, and the (possibly absent)
// quantized filter, metric index, and reduction cascade.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s.Header.Items != len(s.Items) {
		return fmt.Errorf("persist: header declares %d items, snapshot carries %d", s.Header.Items, len(s.Items))
	}
	if _, err := w.Write([]byte(Magic)); err != nil {
		return fmt.Errorf("persist: write magic: %w", err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], SnapshotVersion)
	if _, err := w.Write(v[:]); err != nil {
		return fmt.Errorf("persist: write version: %w", err)
	}
	if err := gobFrame(w, s.Header); err != nil {
		return err
	}
	if err := gobFrame(w, s.Items); err != nil {
		return err
	}
	if err := gobFrame(w, reductionsSection{Named: s.Reductions, Engine: s.EngineReduction}); err != nil {
		return err
	}
	if err := gobFrame(w, s.Deleted); err != nil {
		return err
	}
	if err := gobFrame(w, quantSection{Quant: s.Quant}); err != nil {
		return err
	}
	if err := gobFrame(w, indexSection{Index: s.Index}); err != nil {
		return err
	}
	return gobFrame(w, cascadeSection{Cascade: s.Cascade})
}

// ReadSnapshot reads a snapshot written by WriteSnapshot. Every
// anomaly maps to ErrCorrupt or ErrVersion; it never panics and never
// returns partially-decoded data.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var preamble [len(Magic) + 4]byte
	if _, err := io.ReadFull(r, preamble[:]); err != nil {
		return nil, fmt.Errorf("%w: short preamble", ErrCorrupt)
	}
	if string(preamble[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(preamble[len(Magic):])
	if version < 1 || version > SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads 1..%d", ErrVersion, version, SnapshotVersion)
	}
	s := &Snapshot{}
	if err := readGobFrame(r, &s.Header, "header"); err != nil {
		return nil, err
	}
	if err := readGobFrame(r, &s.Items, "items"); err != nil {
		return nil, err
	}
	var reds reductionsSection
	if err := readGobFrame(r, &reds, "reductions"); err != nil {
		return nil, err
	}
	s.Reductions, s.EngineReduction = reds.Named, reds.Engine
	if err := readGobFrame(r, &s.Deleted, "deleted"); err != nil {
		return nil, err
	}
	if version >= 2 {
		var qs quantSection
		if err := readGobFrame(r, &qs, "quantized filter"); err != nil {
			return nil, err
		}
		s.Quant = qs.Quant
	}
	if version >= 3 {
		var is indexSection
		if err := readGobFrame(r, &is, "metric index"); err != nil {
			return nil, err
		}
		s.Index = is.Index
	}
	if version >= 4 {
		var cs cascadeSection
		if err := readGobFrame(r, &cs, "cascade"); err != nil {
			return nil, err
		}
		s.Cascade = cs.Cascade
	}
	if s.Header.Items != len(s.Items) {
		return nil, fmt.Errorf("%w: header declares %d items, snapshot carries %d", ErrCorrupt, s.Header.Items, len(s.Items))
	}
	var trailer [1]byte
	if n, err := r.Read(trailer[:]); n > 0 || (err != nil && err != io.EOF) {
		return nil, fmt.Errorf("%w: trailing data after snapshot", ErrCorrupt)
	}
	return s, nil
}
