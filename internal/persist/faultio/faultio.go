// Package faultio provides fault-injecting io.Writer / io.Reader
// wrappers for exercising persistence error paths: writers that fail
// or go short after a byte budget (simulating a full disk or a crash
// mid-write), flaky writers that fail selected calls (transient I/O
// errors), and readers that error or truncate mid-stream. The torture
// tests drive every save/load/WAL code path through these to assert
// that persistence either succeeds, fails loudly with a typed error,
// or — for crash-shaped faults — leaves bytes that recovery handles.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("faultio: injected failure")

// Writer passes bytes through to W until Budget bytes have been
// written, then fails. The failing call still forwards the bytes that
// fit the budget — exactly what a crash or a full disk leaves behind —
// and reports a short write with Err. Every later call fails without
// writing.
type Writer struct {
	W      io.Writer
	Budget int64 // bytes allowed through before failing
	Err    error // error to return; nil means ErrInjected

	written int64
}

func (w *Writer) Write(p []byte) (int, error) {
	fail := w.Err
	if fail == nil {
		fail = ErrInjected
	}
	remaining := w.Budget - w.written
	if remaining <= 0 {
		return 0, fail
	}
	if int64(len(p)) <= remaining {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	n, err := w.W.Write(p[:remaining])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, fail
}

// Written reports how many bytes reached the underlying writer.
func (w *Writer) Written() int64 { return w.written }

// Flaky fails the Write calls whose 1-based sequence numbers are in
// FailCalls — without writing anything — and passes every other call
// through, modeling transient I/O errors a caller may retry around.
type Flaky struct {
	W         io.Writer
	FailCalls map[int]bool
	Err       error

	call int
}

func (f *Flaky) Write(p []byte) (int, error) {
	f.call++
	if f.FailCalls[f.call] {
		if f.Err != nil {
			return 0, f.Err
		}
		return 0, ErrInjected
	}
	return f.W.Write(p)
}

// Reader yields bytes from R until Budget bytes have been read, then
// fails with Err (default ErrInjected) — a read fault, not an EOF.
type Reader struct {
	R      io.Reader
	Budget int64
	Err    error

	read int64
}

func (r *Reader) Read(p []byte) (int, error) {
	fail := r.Err
	if fail == nil {
		fail = ErrInjected
	}
	remaining := r.Budget - r.read
	if remaining <= 0 {
		return 0, fail
	}
	if int64(len(p)) > remaining {
		p = p[:remaining]
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	return n, err
}

// Truncated yields only the first n bytes of r and then reports EOF,
// modeling a file cut short by a crash.
func Truncated(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }
