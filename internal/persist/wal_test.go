package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var testHdr = WALHeader{Dim: 3, CostHash: 0x0123456789abcdef}

func testRecords() []WALRecord {
	return []WALRecord{
		{Op: WALAdd, ID: 0, Label: "a", Vector: []float64{0.5, 0.25, 0.25}},
		{Op: WALAdd, ID: 1, Label: "", Vector: []float64{0, 0, 1}},
		{Op: WALDelete, ID: 0},
		{Op: WALAdd, ID: 2, Label: "c", Vector: []float64{1, 0, 0}},
		{Op: WALDelete, ID: 2},
	}
}

// writeTestWAL appends recs and returns the acknowledged file size
// after each append (index 0 is the size of the bare preamble).
func writeTestWAL(t *testing.T, path string, recs []WALRecord) []int64 {
	t.Helper()
	w, _, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	sizes := []int64{w.Size()}
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		sizes = append(sizes, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sizes
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	want := testRecords()
	writeTestWAL(t, path, want)
	got, scan, err := ReplayWAL(path, testHdr)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if scan.Records != len(want) || scan.TornBytes != 0 || scan.MaxAddID != 2 {
		t.Fatalf("scan %+v", scan)
	}
}

func TestWALReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	recs := testRecords()
	writeTestWAL(t, path, recs[:3])
	w, scan, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if scan.Records != 3 {
		t.Fatalf("reopen scan saw %d records, want 3", scan.Records)
	}
	for _, rec := range recs[3:] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records mismatch after reopen:\ngot  %+v\nwant %+v", got, recs)
	}
}

// TestWALTornTailMatrix truncates the log at every byte length and
// asserts replay recovers exactly the records whose frames fit —
// silently for none, loudly for nothing.
func TestWALTornTailMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	recs := testRecords()
	sizes := writeTestWAL(t, path, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != sizes[len(sizes)-1] {
		t.Fatalf("file size %d, acknowledged %d", len(full), sizes[len(sizes)-1])
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		sub := filepath.Join(dir, "cut")
		if err := os.WriteFile(sub, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, scan, err := ReplayWAL(sub, testHdr)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		wantGood := int64(0)
		for k, s := range sizes {
			if s <= cut {
				wantN = k
				wantGood = s
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if !reflect.DeepEqual(got, append([]WALRecord(nil), recs[:wantN]...)) {
			t.Fatalf("cut %d: wrong records %+v", cut, got)
		}
		if scan.GoodSize != wantGood || scan.TornBytes != cut-wantGood {
			t.Fatalf("cut %d: scan %+v, want good %d torn %d", cut, scan, wantGood, cut-wantGood)
		}
	}
}

// TestWALBitFlipMatrix flips every byte of a complete log; replay must
// fail with a typed error every time — a complete frame can never be
// silently misread, and a flip is never confused with a torn tail.
func TestWALBitFlipMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	writeTestWAL(t, path, testRecords())
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0xff
		sub := filepath.Join(dir, "flip")
		if err := os.WriteFile(sub, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, scan, err := ReplayWAL(sub, testHdr)
		if err == nil {
			t.Fatalf("flip at byte %d accepted: %d records, scan %+v", i, len(recs), scan)
		}
		if !isTyped(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestWALConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	writeTestWAL(t, path, testRecords()[:1])
	other := WALHeader{Dim: 4, CostHash: testHdr.CostHash}
	if _, _, err := ReplayWAL(path, other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("replay with wrong dim: %v", err)
	}
	other = WALHeader{Dim: testHdr.Dim, CostHash: 1}
	if _, _, err := OpenWAL(path, other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("open with wrong cost hash: %v", err)
	}
}

func TestWALVersionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	writeTestWAL(t, path, nil)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(WALMagic)] = 42
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayWAL(path, testHdr); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestWALOpenTruncatesTornTail simulates a crash mid-append and
// reopens the log for writing: the torn frame must be cut away so new
// appends land on a clean boundary.
func TestWALOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	recs := testRecords()
	sizes := writeTestWAL(t, path, recs[:3])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid way into the third record's frame.
	cut := (sizes[2] + sizes[3]) / 2
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	w, scan, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Records != 2 || scan.TornBytes != cut-sizes[2] {
		t.Fatalf("scan %+v", scan)
	}
	if err := w.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	want := []WALRecord{recs[0], recs[1], recs[3]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after torn-tail reopen:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs[:3] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReplayWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[3:4]) {
		t.Fatalf("after reset: %+v, want %+v", got, recs[3:4])
	}
}

// fakeWALFile is an in-memory walFile with injectable write/truncate
// failures for exercising Append's rollback and the broken latch.
type fakeWALFile struct {
	buf          []byte
	failWrites   int // fail this many upcoming writes
	partialWrite int // on a failing write, persist this prefix
	failTruncate bool
}

func (f *fakeWALFile) Write(p []byte) (int, error) {
	if f.failWrites > 0 {
		f.failWrites--
		n := f.partialWrite
		if n > len(p) {
			n = len(p)
		}
		f.buf = append(f.buf, p[:n]...)
		return n, fmt.Errorf("fake write error")
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *fakeWALFile) Sync() error { return nil }

func (f *fakeWALFile) Truncate(size int64) error {
	if f.failTruncate {
		return fmt.Errorf("fake truncate error")
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
	}
	return nil
}

func (f *fakeWALFile) Close() error { return nil }

// replayBytes round-trips raw WAL bytes through a file so scanWAL can
// read them.
func replayBytes(t *testing.T, raw []byte) ([]WALRecord, *WALScan, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return ReplayWAL(path, testHdr)
}

// TestWALAppendRollback: a failed append must leave the on-disk bytes
// exactly at the previous acknowledged boundary, and the WAL must keep
// working afterwards.
func TestWALAppendRollback(t *testing.T) {
	fake := &fakeWALFile{}
	w := &WAL{f: fake, hdr: testHdr}
	if err := w.writePreambleLocked(); err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	fake.failWrites, fake.partialWrite = 1, 7 // crash-shaped: a few bytes land
	if err := w.Append(recs[1]); err == nil {
		t.Fatal("injected write error swallowed")
	}
	// Rollback succeeded: the partial frame is gone and appends resume.
	if err := w.Append(recs[2]); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	got, scan, err := replayBytes(t, fake.buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []WALRecord{recs[0], recs[2]}
	if !reflect.DeepEqual(got, want) || scan.TornBytes != 0 {
		t.Fatalf("after rollback: %+v (scan %+v), want %+v", got, scan, want)
	}
}

// TestWALBrokenLatch: if the rollback itself fails, the WAL must latch
// broken and refuse further appends instead of stranding records
// behind a half-written frame.
func TestWALBrokenLatch(t *testing.T) {
	fake := &fakeWALFile{}
	w := &WAL{f: fake, hdr: testHdr}
	if err := w.writePreambleLocked(); err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	fake.failWrites, fake.partialWrite, fake.failTruncate = 1, 5, true
	if err := w.Append(recs[0]); err == nil {
		t.Fatal("injected write error swallowed")
	}
	if err := w.Append(recs[1]); err == nil {
		t.Fatal("append on a broken WAL must fail")
	}
	// The half-written frame is visible to replay as a torn tail; no
	// record after it was ever acknowledged.
	got, scan, err := replayBytes(t, fake.buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || scan.TornBytes != 5 {
		t.Fatalf("broken WAL bytes: %d records, scan %+v", len(got), scan)
	}
	// Reset repairs the log (truncate works again) and clears the latch.
	fake.failTruncate = false
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[0]); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	got, _, err = replayBytes(t, fake.buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:1]) {
		t.Fatalf("after reset: %+v", got)
	}
}
