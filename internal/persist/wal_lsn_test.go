package persist

import (
	"path/filepath"
	"testing"
)

// TestWALLSN locks in the sequence-number contract replication relies
// on: LSNs are dense, 1-based, assigned only to durable records, and
// a reopened log resumes exactly where the acknowledged prefix ends.
func TestWALLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.LSN(); got != 0 {
		t.Fatalf("fresh log LSN = %d, want 0", got)
	}
	recs := testRecords()
	for i, rec := range recs[:3] {
		lsn, err := w.AppendLSN(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i+1) {
			t.Fatalf("append %d assigned LSN %d, want %d", i, lsn, i+1)
		}
	}
	if got := w.LSN(); got != 3 {
		t.Fatalf("LSN after 3 appends = %d, want 3", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes from the acknowledged record count.
	w, scan, err := OpenWAL(path, testHdr)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.LSN(); got != int64(scan.Records) || got != 3 {
		t.Fatalf("reopened LSN = %d (scan %d records), want 3", got, scan.Records)
	}
	lsn, err := w.AppendLSN(recs[3])
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("append after reopen assigned LSN %d, want 4", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALLSNFailedAppendAndReset: a failed append consumes no sequence
// number, and Reset starts a new generation at LSN 0.
func TestWALLSNFailedAppendAndReset(t *testing.T) {
	fake := &fakeWALFile{}
	w := &WAL{f: fake, hdr: testHdr}
	if err := w.writePreambleLocked(); err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if lsn, err := w.AppendLSN(recs[0]); err != nil || lsn != 1 {
		t.Fatalf("first append: lsn %d, err %v", lsn, err)
	}
	fake.failWrites, fake.partialWrite = 1, 7
	if _, err := w.AppendLSN(recs[1]); err == nil {
		t.Fatal("injected write error swallowed")
	}
	if got := w.LSN(); got != 1 {
		t.Fatalf("LSN after failed append = %d, want 1", got)
	}
	if lsn, err := w.AppendLSN(recs[2]); err != nil || lsn != 2 {
		t.Fatalf("append after rollback: lsn %d, err %v", lsn, err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := w.LSN(); got != 0 {
		t.Fatalf("LSN after reset = %d, want 0", got)
	}
	if lsn, err := w.AppendLSN(recs[3]); err != nil || lsn != 1 {
		t.Fatalf("append after reset: lsn %d, err %v", lsn, err)
	}
}
