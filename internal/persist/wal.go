package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// WALMagic identifies a write-ahead-log file.
const WALMagic = "EMDWAL\x00"

// WALVersion is the current write-ahead-log format version.
const WALVersion = 1

// WALHeader fingerprints the engine a log belongs to; replay against a
// differently-configured engine fails with ErrConfigMismatch instead
// of silently applying foreign mutations.
type WALHeader struct {
	Dim      int
	CostHash uint64
}

// WALOp is a logged mutation kind.
type WALOp uint8

const (
	// WALAdd logs an Engine.Add; ID is the index the item was assigned.
	WALAdd WALOp = 1
	// WALDelete logs an Engine.Delete of item ID.
	WALDelete WALOp = 2
)

// WALRecord is one logged mutation.
type WALRecord struct {
	Op     WALOp
	ID     int
	Label  string    // WALAdd only
	Vector []float64 // WALAdd only
}

// WALScan summarizes one integrity pass over a log file.
type WALScan struct {
	// Records is the number of complete, checksum-valid records.
	Records int
	// GoodSize is the byte offset up to which the file is valid; any
	// torn tail starts here.
	GoodSize int64
	// TornBytes counts trailing bytes belonging to an incomplete final
	// frame — the signature of a crash mid-append. The record they
	// were part of was never acknowledged.
	TornBytes int64
	// MaxAddID is the largest item id any WALAdd record assigns, -1
	// when the log holds no adds.
	MaxAddID int
}

// WALFile is the file surface the WAL needs; *os.File satisfies it and
// tests substitute fault-injecting implementations (see
// SwapFileForTest).
type WALFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// WAL is an append-only, fsync-on-append mutation log. Append frames
// and checksums each record and does not return until the bytes are
// synced, so an acknowledged mutation survives a crash; a crash mid
// append leaves a torn final frame that replay truncates.
//
// A WAL is safe for concurrent use. After a write or sync error that
// cannot be rolled back (the file may hold a half-written frame and
// the write position is unknown), the WAL latches broken and every
// subsequent Append fails with the original error wrapped — appending
// past damage would strand valid records behind an unreadable frame.
type WAL struct {
	mu     sync.Mutex
	f      WALFile
	path   string
	hdr    WALHeader
	off    int64 // bytes known good (written and framed completely)
	lsn    int64 // sequence number of the last acknowledged record
	broken error // sticky first unrecoverable error
}

// walPreamble returns magic + version + framed header bytes.
func walPreamble(hdr WALHeader) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(WALMagic)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], WALVersion)
	buf.Write(v[:])
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(hdr); err != nil {
		return nil, fmt.Errorf("persist: encode wal header: %w", err)
	}
	return appendFrame(buf.Bytes(), body.Bytes()), nil
}

// OpenWAL opens (or creates) the log at path for appending. A fresh or
// empty file gets the magic/version/header preamble written and
// synced. An existing file is integrity-scanned first: its header must
// match hdr (ErrConfigMismatch otherwise), complete-frame damage is
// ErrCorrupt, and a torn final frame — an append interrupted by a
// crash — is truncated away before appending resumes, since bytes
// after damage would be unreachable on replay. The returned scan
// describes what the existing file held.
func OpenWAL(path string, hdr WALHeader) (*WAL, *WALScan, error) {
	scan := &WALScan{MaxAddID: -1}
	st, err := os.Stat(path)
	switch {
	case err == nil && st.Size() > 0:
		_, scan, err = scanWAL(path, &hdr)
		if err != nil {
			return nil, nil, err
		}
		if scan.TornBytes > 0 {
			if err := os.Truncate(path, scan.GoodSize); err != nil {
				return nil, nil, fmt.Errorf("persist: truncate torn wal tail: %w", err)
			}
		}
	case err != nil && !os.IsNotExist(err):
		return nil, nil, fmt.Errorf("persist: stat wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, hdr: hdr, off: scan.GoodSize, lsn: int64(scan.Records)}
	if scan.GoodSize == 0 {
		// Fresh, empty, or fully-torn-before-header file: start over
		// with a clean preamble.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("persist: reset wal: %w", err)
		}
		if err := w.writePreambleLocked(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return w, scan, nil
}

// writePreambleLocked writes and syncs the preamble; the caller must
// hold w.mu or be the only reference holder.
func (w *WAL) writePreambleLocked() error {
	pre, err := walPreamble(w.hdr)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(pre); err != nil {
		return fmt.Errorf("persist: write wal header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: sync wal header: %w", err)
	}
	w.off = int64(len(pre))
	return nil
}

// Append frames, writes and fsyncs one record. It returns only after
// the record is durable; on a write error it attempts to truncate the
// partial frame away (keeping the WAL usable), and if that rollback
// fails the WAL latches broken.
func (w *WAL) Append(rec WALRecord) error {
	_, err := w.AppendLSN(rec)
	return err
}

// AppendLSN is Append returning the acknowledged record's log sequence
// number: the 1-based position of the record among the acknowledged
// records of this log since its last preamble (open or Reset). LSNs
// are assigned only to durable records — an append that fails consumes
// no sequence number — so the LSN of the last acknowledged record
// always equals the record count a replay of the log would see.
func (w *WAL) AppendLSN(rec WALRecord) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return 0, fmt.Errorf("%w by an earlier error (recover and reopen): %w", ErrWALBroken, w.broken)
	}
	if w.f == nil {
		return 0, fmt.Errorf("persist: append to closed wal")
	}
	frame := appendFrame(nil, encodeRecord(rec))
	if _, err := w.f.Write(frame); err != nil {
		werr := fmt.Errorf("persist: wal append: %w", err)
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = werr
			return 0, fmt.Errorf("%w: %w (rollback truncate also failed: %v)", ErrWALBroken, werr, terr)
		}
		return 0, werr
	}
	if err := w.f.Sync(); err != nil {
		// The frame bytes may or may not be durable; roll them back so
		// the on-disk prefix stays exactly the acknowledged records.
		werr := fmt.Errorf("persist: wal sync: %w", err)
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = werr
			return 0, fmt.Errorf("%w: %w (rollback truncate also failed: %v)", ErrWALBroken, werr, terr)
		}
		return 0, werr
	}
	w.off += int64(len(frame))
	w.lsn++
	return w.lsn, nil
}

// LSN returns the sequence number of the last acknowledged record:
// the count of durable records in the log since its last preamble, 0
// for a log holding none. On open it is initialized from the
// integrity scan, so it equals what a replay of the file would count.
func (w *WAL) LSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// Reset truncates the log to empty and rewrites the preamble; used by
// Checkpoint after the snapshot covering the logged records is durable.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: reset closed wal")
	}
	if err := w.f.Truncate(0); err != nil {
		w.broken = fmt.Errorf("persist: wal reset: %w", err)
		return fmt.Errorf("%w: %w", ErrWALBroken, w.broken)
	}
	w.off = 0
	w.lsn = 0
	if err := w.writePreambleLocked(); err != nil {
		w.broken = err
		return fmt.Errorf("%w: %w", ErrWALBroken, err)
	}
	w.broken = nil
	return nil
}

// Broken reports the sticky error that latched the log broken, nil
// while the log is healthy. A broken log rejects every Append with
// ErrWALBroken until it is reopened.
func (w *WAL) Broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// SwapFileForTest replaces the log's underlying file with f and
// returns the previous one. It exists for fault injection: tests swap
// in a faultio-backed file to drive the WAL into its broken state and
// exercise recovery, without touching the on-disk file.
func (w *WAL) SwapFileForTest(f WALFile) WALFile {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.f
	w.f = f
	return old
}

// Size returns the acknowledged on-disk size of the log.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("persist: close wal: %w", err)
	}
	return nil
}

// ReplayWAL reads the records of the log at path without modifying the
// file. The header must match hdr (ErrConfigMismatch), complete-frame
// damage is ErrCorrupt, and an incomplete final frame is reported via
// scan.TornBytes rather than replayed — it belongs to an append that
// crashed before acknowledging.
func ReplayWAL(path string, hdr WALHeader) ([]WALRecord, *WALScan, error) {
	return scanWAL(path, &hdr)
}

// scanWAL is the shared integrity pass: it validates preamble and
// frames, decodes records, and classifies the tail.
func scanWAL(path string, want *WALHeader) ([]WALRecord, *WALScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open wal: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only scan, nothing to lose
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("persist: stat wal: %w", err)
	}
	size := st.Size()
	scan := &WALScan{MaxAddID: -1}
	r := &countingReader{r: f}

	fail := func(err error) ([]WALRecord, *WALScan, error) {
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	// tornAt reports everything from offset good onward as a torn tail.
	tornAt := func(good int64, recs []WALRecord) ([]WALRecord, *WALScan, error) {
		scan.GoodSize = good
		scan.TornBytes = size - good
		return recs, scan, nil
	}

	var preamble [len(WALMagic) + 4]byte
	if _, err := io.ReadFull(r, preamble[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Crash before the preamble hit the disk: no acknowledged
			// records can exist, the whole file is a torn tail.
			return tornAt(0, nil)
		}
		return fail(err)
	}
	if string(preamble[:len(WALMagic)]) != WALMagic {
		return fail(fmt.Errorf("%w: bad magic", ErrCorrupt))
	}
	if v := binary.LittleEndian.Uint32(preamble[len(WALMagic):]); v != WALVersion {
		return fail(fmt.Errorf("%w: wal version %d, this build reads %d", ErrVersion, v, WALVersion))
	}
	hdrBody, err := readFrame(r)
	if err == io.EOF || err == errTorn {
		return tornAt(0, nil)
	}
	if err != nil {
		return fail(fmt.Errorf("header frame: %w", err))
	}
	var hdr WALHeader
	if err := gob.NewDecoder(bytes.NewReader(hdrBody)).Decode(&hdr); err != nil {
		return fail(fmt.Errorf("%w: decode wal header: %v", ErrCorrupt, err))
	}
	if want != nil && (hdr.Dim != want.Dim || hdr.CostHash != want.CostHash) {
		return fail(fmt.Errorf("%w: wal belongs to a %d-dimensional engine with cost hash %016x, want dim %d hash %016x",
			ErrConfigMismatch, hdr.Dim, hdr.CostHash, want.Dim, want.CostHash))
	}

	var recs []WALRecord
	good := r.n
	for {
		body, err := readFrame(r)
		if err == io.EOF {
			scan.GoodSize = good
			return recs, scan, nil
		}
		if err == errTorn {
			return tornAt(good, recs)
		}
		if err != nil {
			return fail(fmt.Errorf("record %d: %w", len(recs), err))
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return fail(fmt.Errorf("record %d: %w", len(recs), err))
		}
		recs = append(recs, rec)
		scan.Records++
		if rec.Op == WALAdd && rec.ID > scan.MaxAddID {
			scan.MaxAddID = rec.ID
		}
		good = r.n
	}
}

// countingReader tracks how many bytes have been consumed, giving the
// scan exact frame-boundary offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// encodeRecord serializes a record body:
//
//	u8 op | u64 id | u32 len(label) | label | u32 len(vector) | float64 bits…
func encodeRecord(rec WALRecord) []byte {
	buf := make([]byte, 0, 1+8+4+len(rec.Label)+4+8*len(rec.Vector))
	buf = append(buf, byte(rec.Op))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rec.ID))
	buf = append(buf, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(rec.Label)))
	buf = append(buf, b[:4]...)
	buf = append(buf, rec.Label...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(rec.Vector)))
	buf = append(buf, b[:4]...)
	for _, v := range rec.Vector {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	return buf
}

// decodeRecord parses a record body. The body already passed its CRC,
// so failures here mean a frame written by something else entirely.
func decodeRecord(body []byte) (WALRecord, error) {
	var rec WALRecord
	corrupt := func(what string) (WALRecord, error) {
		return rec, fmt.Errorf("%w: malformed wal record (%s)", ErrCorrupt, what)
	}
	if len(body) < 1+8+4 {
		return corrupt("short body")
	}
	rec.Op = WALOp(body[0])
	if rec.Op != WALAdd && rec.Op != WALDelete {
		return corrupt(fmt.Sprintf("unknown op %d", rec.Op))
	}
	id := binary.LittleEndian.Uint64(body[1:9])
	if id > uint64(math.MaxInt32) {
		return corrupt("implausible item id")
	}
	rec.ID = int(id)
	p := 9
	ll := int(binary.LittleEndian.Uint32(body[p : p+4]))
	p += 4
	if ll < 0 || p+ll+4 > len(body) {
		return corrupt("label length")
	}
	rec.Label = string(body[p : p+ll])
	p += ll
	vl := int(binary.LittleEndian.Uint32(body[p : p+4]))
	p += 4
	if vl < 0 || p+8*vl != len(body) {
		return corrupt("vector length")
	}
	if vl > 0 {
		rec.Vector = make([]float64, vl)
		for i := range rec.Vector {
			rec.Vector[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[p : p+8]))
			p += 8
		}
	}
	return rec, nil
}
