package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file so that path either keeps its previous
// contents or holds the complete new contents — never a torn mixture.
// It streams write into a temp file in the same directory, fsyncs it,
// and renames it over path; the directory is fsynced afterwards so the
// rename itself is durable. On any error the temp file is removed and
// the previous file at path is left untouched.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			_ = os.Remove(tmpName)
		}
	}()
	if err := write(tmp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: rename into place: %w", err)
	}
	tmpName = "" // committed; nothing to clean up
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Failure to open or sync the directory is reported: losing the rename
// on power failure is exactly the failure mode this package exists to
// close.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: open dir for sync: %w", err)
	}
	defer func() { _ = d.Close() }() // read-only fd, nothing to lose
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	return nil
}
