// Package flowred implements the flow-based dimensionality reduction of
// Section 3.4 in Wichterich et al. (SIGMOD 2008). The approach is
// data-dependent: it computes full-dimensional EMDs over a sample of
// the database, aggregates the optimal flow matrices into an average
// flow matrix F^S, and then local-searches a combining reduction matrix
// that maximizes the expected lower-bound tightness
//
//	sum_{i',j'} aggrFlow(F^S, R, i', j') * c'_{i'j'}     (Eq. 12)
//
// where c' is the optimal reduced cost matrix of Definition 5. Two
// search variants are provided, exactly following the paper's
// pseudo-code: FB-Mod (Figure 8) applies the first improving
// reassignment per original dimension in a round-robin sweep; FB-All
// (Figure 9) evaluates all (dimension, target) reassignments and
// applies only the single best one per iteration.
package flowred

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

// Options tunes the FB local search.
type Options struct {
	// Thresh is the relative improvement threshold of the paper's
	// pseudo-code: a reassignment is accepted only if it improves the
	// expected tightness by more than Thresh * currentTightness.
	// Zero means the default of 1e-9.
	Thresh float64
	// MaxEvaluations caps the total number of candidate evaluations as
	// a safety net against pathological non-convergence. Zero means
	// the default of 50_000_000.
	MaxEvaluations int
}

func (o Options) withDefaults() Options {
	if o.Thresh == 0 {
		o.Thresh = 1e-9
	}
	if o.MaxEvaluations == 0 {
		o.MaxEvaluations = 50_000_000
	}
	return o
}

// Stats reports what a reduction optimization did.
type Stats struct {
	// Tightness is the final value of Eq. 12 for the returned
	// reduction.
	Tightness float64
	// Evaluations counts candidate reassignment evaluations.
	Evaluations int
	// Moves counts committed reassignments.
	Moves int
	// Repaired reports whether empty reduced dimensions had to be
	// filled after the search to satisfy restriction (8).
	Repaired bool
}

// Sample draws n distinct histograms from data uniformly at random.
// If n >= len(data) the full data set is returned (copied).
func Sample(data []emd.Histogram, n int, rng *rand.Rand) []emd.Histogram {
	if n >= len(data) {
		out := make([]emd.Histogram, len(data))
		copy(out, data)
		return out
	}
	perm := rng.Perm(len(data))
	out := make([]emd.Histogram, n)
	for i := 0; i < n; i++ {
		out[i] = data[perm[i]]
	}
	return out
}

// AverageFlows computes the average flow matrix F^S over all ordered
// pairs of distinct sample histograms (step 2 of Figure 6). For a
// symmetric ground distance the optimal flow of (y,x) is the transpose
// of that of (x,y), so each unordered pair is solved once and both
// orientations are accumulated. The result is normalized by |S|^2 as
// in the paper; the normalization only scales Eq. 12 and does not
// affect which reduction maximizes it.
func AverageFlows(sample []emd.Histogram, dist *emd.Dist) ([][]float64, error) {
	if len(sample) < 2 {
		return nil, fmt.Errorf("flowred: sample of size %d, need at least 2", len(sample))
	}
	rows, cols := dist.Dims()
	if rows != cols {
		return nil, fmt.Errorf("flowred: ground distance is %dx%d, want square", rows, cols)
	}
	d := rows
	for k, h := range sample {
		if len(h) != d {
			return nil, fmt.Errorf("flowred: sample histogram %d has %d dimensions, want %d", k, len(h), d)
		}
	}
	f := make([][]float64, d)
	backing := make([]float64, d*d)
	for i := range f {
		f[i] = backing[i*d : (i+1)*d]
	}
	symmetric := dist.Cost().IsSymmetric()
	for a := 0; a < len(sample); a++ {
		for b := a + 1; b < len(sample); b++ {
			_, flow := dist.DistanceWithFlow(sample[a], sample[b])
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					f[i][j] += flow[i][j]
					if symmetric {
						f[j][i] += flow[i][j]
					}
				}
			}
			if !symmetric {
				_, back := dist.DistanceWithFlow(sample[b], sample[a])
				for i := 0; i < d; i++ {
					for j := 0; j < d; j++ {
						f[i][j] += back[i][j]
					}
				}
			}
		}
	}
	norm := 1 / float64(len(sample)*len(sample))
	for i := range f {
		for j := range f[i] {
			f[i][j] *= norm
		}
	}
	return f, nil
}

// AggrFlow returns the flow aggregated from reduced dimension i' to j'
// under reduction r (Eq. 11): the sum of all original flows F[i][j]
// with i assigned to i' and j assigned to j'.
func AggrFlow(f [][]float64, r *core.Reduction, iRed, jRed int) float64 {
	var sum float64
	groups := r.Groups()
	for _, i := range groups[iRed] {
		for _, j := range groups[jRed] {
			sum += f[i][j]
		}
	}
	return sum
}

// Tightness is the reference implementation of the paper's calcTight
// (Figure 7, without the temporary reassignment): the expected
// lower-bound tightness of reduction r given average flows f and
// original cost matrix c. It is O(d^2); the optimizers use an
// incremental evaluator that is verified against this function in the
// tests.
func Tightness(f [][]float64, c emd.CostMatrix, r *core.Reduction) float64 {
	st := newSearchState(f, c, r.Assignment(), r.ReducedDims())
	return st.tight
}

// BaseAssignment returns the paper's "Base" initial solution: every
// original dimension assigned to reduced dimension 0, the remaining
// reduced dimensions empty. It intentionally violates restriction (8);
// the optimizers treat empty reduced dimensions as zero-contribution
// groups and fill them during the search.
func BaseAssignment(d int) []int {
	return make([]int, d)
}

// OptimizeMod runs the FB-Mod local search of Figure 8 starting from
// the given assignment (length d, values in [0, reduced)). Empty
// reduced dimensions are permitted in the start assignment. The
// returned reduction always satisfies restriction (8); if the search
// converged with empty reduced dimensions they are repaired
// deterministically and Stats.Repaired is set.
func OptimizeMod(assign []int, reduced int, f [][]float64, c emd.CostMatrix, opts Options) (*core.Reduction, *Stats, error) {
	st, err := validateSearchInput(assign, reduced, f, c)
	if err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	stats := &Stats{}

	d := len(assign)
	dim := 0
	sinceChange := 0
	for sinceChange < d && stats.Evaluations < opts.MaxEvaluations {
		improved := false
		threshold := math.Abs(st.tight) * opts.Thresh
		for to := 0; to < reduced; to++ {
			if to == st.assign[dim] || st.groupSize[st.assign[dim]] == 1 {
				continue
			}
			stats.Evaluations++
			if newTight := st.evalMove(dim, to); newTight-st.tight > threshold {
				st.commit(dim, to)
				stats.Moves++
				improved = true
				break
			}
		}
		if improved {
			sinceChange = 0
		} else {
			sinceChange++
		}
		dim = (dim + 1) % d
	}
	return finishSearch(st, stats)
}

// OptimizeAll runs the FB-All local search of Figure 9: in every
// iteration all (dimension, target) reassignments are evaluated and
// only the single best improving one is applied, until no reassignment
// improves the expected tightness by more than the threshold.
func OptimizeAll(assign []int, reduced int, f [][]float64, c emd.CostMatrix, opts Options) (*core.Reduction, *Stats, error) {
	st, err := validateSearchInput(assign, reduced, f, c)
	if err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	stats := &Stats{}

	d := len(assign)
	for stats.Evaluations < opts.MaxEvaluations {
		threshold := math.Abs(st.tight) * opts.Thresh
		bestGain := threshold
		bestDim, bestTo := -1, -1
		for dim := 0; dim < d; dim++ {
			from := st.assign[dim]
			if st.groupSize[from] == 1 {
				continue
			}
			for to := 0; to < reduced; to++ {
				if to == from {
					continue
				}
				stats.Evaluations++
				if gain := st.evalMove(dim, to) - st.tight; gain > bestGain {
					bestGain = gain
					bestDim, bestTo = dim, to
				}
			}
		}
		if bestDim < 0 {
			break
		}
		st.commit(bestDim, bestTo)
		stats.Moves++
	}
	return finishSearch(st, stats)
}

func validateSearchInput(assign []int, reduced int, f [][]float64, c emd.CostMatrix) (*searchState, error) {
	d := len(assign)
	if d == 0 {
		return nil, fmt.Errorf("flowred: empty assignment")
	}
	if reduced < 1 || reduced > d {
		return nil, fmt.Errorf("flowred: reduced dimensionality %d out of range [1, %d]", reduced, d)
	}
	for i, g := range assign {
		if g < 0 || g >= reduced {
			return nil, fmt.Errorf("flowred: assign[%d] = %d out of range [0, %d)", i, g, reduced)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Rows() != d || c.Cols() != d {
		return nil, fmt.Errorf("flowred: cost matrix is %dx%d, want %dx%d", c.Rows(), c.Cols(), d, d)
	}
	if len(f) != d {
		return nil, fmt.Errorf("flowred: flow matrix has %d rows, want %d", len(f), d)
	}
	for i, row := range f {
		if len(row) != d {
			return nil, fmt.Errorf("flowred: flow row %d has %d columns, want %d", i, len(row), d)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("flowred: invalid flow[%d][%d] = %g", i, j, v)
			}
		}
	}
	return newSearchState(f, c, append([]int(nil), assign...), reduced), nil
}

// finishSearch repairs empty reduced dimensions if necessary and
// packages the result.
func finishSearch(st *searchState, stats *Stats) (*core.Reduction, *Stats, error) {
	for g := 0; g < st.dr; g++ {
		if st.groupSize[g] > 0 {
			continue
		}
		stats.Repaired = true
		// Move one dimension out of the currently largest group; pick
		// the member whose flows couple least with the rest of its
		// group so the donation costs as little tightness as possible.
		largest := 0
		for h := 1; h < st.dr; h++ {
			if st.groupSize[h] > st.groupSize[largest] {
				largest = h
			}
		}
		if st.groupSize[largest] < 2 {
			return nil, nil, fmt.Errorf("flowred: cannot repair empty reduced dimension %d", g)
		}
		bestDim, bestTight := -1, math.Inf(-1)
		for dim := 0; dim < st.d; dim++ {
			if st.assign[dim] != largest {
				continue
			}
			if t := st.evalMove(dim, g); t > bestTight {
				bestTight = t
				bestDim = dim
			}
		}
		st.commit(bestDim, g)
		stats.Moves++
	}
	stats.Tightness = st.tight
	red, err := core.NewReduction(st.assign, st.dr)
	if err != nil {
		return nil, nil, fmt.Errorf("flowred: internal error: %w", err)
	}
	return red, stats, nil
}

// AverageFlowsParallel is AverageFlows fanned out over `workers`
// goroutines (0 means GOMAXPROCS). Flow collection is the dominant
// preprocessing cost of the flow-based reductions (|S|^2/2 exact EMD
// solves), and the pairs are independent, so it parallelizes
// perfectly. The result is identical to AverageFlows up to float
// summation order; the accumulation per worker keeps that
// non-determinism to one final reduction.
func AverageFlowsParallel(sample []emd.Histogram, dist *emd.Dist, workers int) ([][]float64, error) {
	if len(sample) < 2 {
		return nil, fmt.Errorf("flowred: sample of size %d, need at least 2", len(sample))
	}
	rows, cols := dist.Dims()
	if rows != cols {
		return nil, fmt.Errorf("flowred: ground distance is %dx%d, want square", rows, cols)
	}
	d := rows
	for k, h := range sample {
		if len(h) != d {
			return nil, fmt.Errorf("flowred: sample histogram %d has %d dimensions, want %d", k, len(h), d)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	symmetric := dist.Cost().IsSymmetric()

	type pair struct{ a, b int }
	pairs := make(chan pair)
	partials := make([][][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([][]float64, d)
			backing := make([]float64, d*d)
			for i := range local {
				local[i] = backing[i*d : (i+1)*d]
			}
			for p := range pairs {
				_, flow := dist.DistanceWithFlow(sample[p.a], sample[p.b])
				for i := 0; i < d; i++ {
					for j := 0; j < d; j++ {
						local[i][j] += flow[i][j]
						if symmetric {
							local[j][i] += flow[i][j]
						}
					}
				}
				if !symmetric {
					_, back := dist.DistanceWithFlow(sample[p.b], sample[p.a])
					for i := 0; i < d; i++ {
						for j := 0; j < d; j++ {
							local[i][j] += back[i][j]
						}
					}
				}
			}
			partials[w] = local
		}()
	}
	for a := 0; a < len(sample); a++ {
		for b := a + 1; b < len(sample); b++ {
			pairs <- pair{a, b}
		}
	}
	close(pairs)
	wg.Wait()

	f := make([][]float64, d)
	backing := make([]float64, d*d)
	for i := range f {
		f[i] = backing[i*d : (i+1)*d]
	}
	norm := 1 / float64(len(sample)*len(sample))
	for _, local := range partials {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				f[i][j] += local[i][j] * norm
			}
		}
	}
	return f, nil
}
