package flowred

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

func randomHistogram(rng *rand.Rand, d int) emd.Histogram {
	h := make(emd.Histogram, d)
	for i := range h {
		h[i] = rng.Float64()
		if rng.Intn(4) == 0 {
			h[i] = 0
		}
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		h[rng.Intn(d)] = 1
		sum = 1
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func randomFlows(rng *rand.Rand, d int) [][]float64 {
	f := vecmath.NewMatrix(d, d)
	for i := range f {
		for j := range f[i] {
			f[i][j] = rng.Float64()
			if rng.Intn(3) == 0 {
				f[i][j] = 0
			}
		}
	}
	return f
}

func randomCost(rng *rand.Rand, d int) emd.CostMatrix {
	c := vecmath.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := rng.Float64() * 4
			c[i][j] = v
			c[j][i] = v
		}
	}
	return c
}

// TestEvalMoveMatchesReference is the central consistency check: the
// incremental evaluator must agree with a from-scratch Eq. 12
// computation for arbitrary moves, including moves into empty groups.
func TestEvalMoveMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 4 + rng.Intn(10)
		dr := 2 + rng.Intn(d-1)
		if dr > d {
			dr = d
		}
		flows := randomFlows(rng, d)
		cost := randomCost(rng, d)

		// Random assignment, possibly with empty groups.
		assign := make([]int, d)
		for i := range assign {
			assign[i] = rng.Intn(dr)
		}
		st := newSearchState(flows, cost, append([]int(nil), assign...), dr)

		for trial := 0; trial < 15; trial++ {
			o := rng.Intn(d)
			b := rng.Intn(dr)
			a := st.assign[o]
			if b == a || st.groupSize[a] == 1 {
				continue
			}
			got := st.evalMove(o, b)
			// Reference: apply the move on a copy and recompute.
			refAssign := append([]int(nil), st.assign...)
			refAssign[o] = b
			ref := newSearchState(flows, cost, refAssign, dr)
			if !vecmath.AlmostEqual(got, ref.tight, 1e-9) {
				t.Logf("seed %d: evalMove(%d -> %d) = %.12g, reference %.12g (assign %v)",
					seed, o, b, got, ref.tight, st.assign)
				return false
			}
			// Occasionally commit to explore different states.
			if rng.Intn(2) == 0 {
				st.commit(o, b)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTightnessMatchesAggrFlowFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, dr := 9, 3
	flows := randomFlows(rng, d)
	cost := randomCost(rng, d)
	r, err := core.Random(d, dr, rng)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := core.ReduceCost(cost, r, r)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < dr; i++ {
		for j := 0; j < dr; j++ {
			want += AggrFlow(flows, r, i, j) * reduced[i][j]
		}
	}
	got := Tightness(flows, cost, r)
	if !vecmath.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("Tightness = %g, explicit Eq.12 = %g", got, want)
	}
}

func TestAverageFlowsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d = 6
	dist, err := emd.NewDist(emd.LinearCost(d))
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]emd.Histogram, 8)
	for i := range sample {
		sample[i] = randomHistogram(rng, d)
	}
	f, err := AverageFlows(sample, dist)
	if err != nil {
		t.Fatal(err)
	}
	// Non-negative entries and correct total mass: each of the
	// |S|*(|S|-1) ordered pairs contributes total flow 1, normalized
	// by |S|^2.
	var total float64
	for i := range f {
		for j := range f[i] {
			if f[i][j] < 0 {
				t.Fatalf("negative average flow f[%d][%d] = %g", i, j, f[i][j])
			}
			total += f[i][j]
		}
	}
	s := float64(len(sample))
	want := s * (s - 1) / (s * s)
	if !vecmath.AlmostEqual(total, want, 1e-9) {
		t.Errorf("total average flow %g, want %g", total, want)
	}
	// Symmetric ground distance must give a symmetric average flow
	// matrix (each pair accumulated in both orientations).
	for i := range f {
		for j := range f[i] {
			if !vecmath.AlmostEqual(f[i][j], f[j][i], 1e-9) {
				t.Fatalf("average flows asymmetric at (%d,%d): %g vs %g", i, j, f[i][j], f[j][i])
			}
		}
	}
}

func TestAverageFlowsValidation(t *testing.T) {
	dist, _ := emd.NewDist(emd.LinearCost(3))
	if _, err := AverageFlows([]emd.Histogram{{1, 0, 0}}, dist); err == nil {
		t.Error("accepted sample of size 1")
	}
	bad := []emd.Histogram{{1, 0, 0}, {0.5, 0.5}}
	if _, err := AverageFlows(bad, dist); err == nil {
		t.Error("accepted mismatched histogram dimensionality")
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]emd.Histogram, 10)
	for i := range data {
		data[i] = emd.Histogram{float64(i)}
	}
	s := Sample(data, 4, rng)
	if len(s) != 4 {
		t.Fatalf("sample size %d, want 4", len(s))
	}
	seen := map[float64]bool{}
	for _, h := range s {
		if seen[h[0]] {
			t.Fatal("sample drew the same element twice")
		}
		seen[h[0]] = true
	}
	if got := Sample(data, 20, rng); len(got) != 10 {
		t.Errorf("oversized sample returned %d elements, want all 10", len(got))
	}
}

// TestOptimizeImprovesTightness: both optimizers must end at least as
// tight as their starting assignment, and the returned reduction's
// reference tightness must match Stats.Tightness.
func TestOptimizeImprovesTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d, dr = 12, 4
	flows := randomFlows(rng, d)
	cost := randomCost(rng, d)
	start, err := core.Random(d, dr, rng)
	if err != nil {
		t.Fatal(err)
	}
	startTight := Tightness(flows, cost, start)

	for _, variant := range []string{"mod", "all"} {
		var red *core.Reduction
		var stats *Stats
		if variant == "mod" {
			red, stats, err = OptimizeMod(start.Assignment(), dr, flows, cost, Options{})
		} else {
			red, stats, err = OptimizeAll(start.Assignment(), dr, flows, cost, Options{})
		}
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if stats.Tightness < startTight-1e-9 {
			t.Errorf("%s: tightness %g worse than start %g", variant, stats.Tightness, startTight)
		}
		if ref := Tightness(flows, cost, red); !vecmath.AlmostEqual(ref, stats.Tightness, 1e-9) {
			t.Errorf("%s: reported tightness %g, reference %g", variant, stats.Tightness, ref)
		}
		if red.ReducedDims() != dr {
			t.Errorf("%s: reduced dims %d, want %d", variant, red.ReducedDims(), dr)
		}
	}
}

// TestOptimizeFromBase: starting from the paper's Base solution (all
// dimensions in reduced dimension 0) the search must populate all
// groups and reach positive tightness.
func TestOptimizeFromBase(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const d, dr = 10, 3
	flows := randomFlows(rng, d)
	cost := randomCost(rng, d)

	for _, variant := range []string{"mod", "all"} {
		var red *core.Reduction
		var stats *Stats
		var err error
		if variant == "mod" {
			red, stats, err = OptimizeMod(BaseAssignment(d), dr, flows, cost, Options{})
		} else {
			red, stats, err = OptimizeAll(BaseAssignment(d), dr, flows, cost, Options{})
		}
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		for g, members := range red.Groups() {
			if len(members) == 0 {
				t.Fatalf("%s: group %d empty after optimization", variant, g)
			}
		}
		if stats.Tightness <= 0 {
			t.Errorf("%s: tightness %g, want > 0", variant, stats.Tightness)
		}
	}
}

// TestBothVariantsReachLocalOptima: when either variant terminates, no
// single reassignment may improve the tightness — re-running the other
// variant on the result must make zero moves. This is the invariant
// both Figure 8 and Figure 9 converge to (they may still land in
// different local optima from the same start).
func TestBothVariantsReachLocalOptima(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		d := 8 + rng.Intn(8)
		dr := 2 + rng.Intn(4)
		flows := randomFlows(rng, d)
		cost := randomCost(rng, d)
		start := BaseAssignment(d)

		redAll, aStats, err := OptimizeAll(start, dr, flows, cost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, afterAll, err := OptimizeMod(redAll.Assignment(), dr, flows, cost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if afterAll.Moves != 0 || afterAll.Tightness > aStats.Tightness*(1+1e-9) {
			t.Errorf("trial %d: FB-All result not locally optimal: %g -> %g in %d moves",
				trial, aStats.Tightness, afterAll.Tightness, afterAll.Moves)
		}

		redMod, mStats, err := OptimizeMod(start, dr, flows, cost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, afterMod, err := OptimizeAll(redMod.Assignment(), dr, flows, cost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if afterMod.Moves != 0 || afterMod.Tightness > mStats.Tightness*(1+1e-9) {
			t.Errorf("trial %d: FB-Mod result not locally optimal: %g -> %g in %d moves",
				trial, mStats.Tightness, afterMod.Tightness, afterMod.Moves)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	flows := vecmath.NewMatrix(3, 3)
	cost := emd.CostMatrix(vecmath.NewMatrix(3, 3))
	cases := []struct {
		name    string
		assign  []int
		reduced int
		f       [][]float64
		c       emd.CostMatrix
	}{
		{"empty assign", nil, 1, flows, cost},
		{"bad reduced", []int{0, 0, 0}, 4, flows, cost},
		{"out of range", []int{0, 0, 5}, 2, flows, cost},
		{"flow shape", []int{0, 0, 0}, 1, vecmath.NewMatrix(2, 3), cost},
		{"cost shape", []int{0, 0, 0}, 1, flows, emd.CostMatrix(vecmath.NewMatrix(2, 2))},
		{"negative flow", []int{0, 0, 0}, 1, [][]float64{{0, 0, 0}, {0, -1, 0}, {0, 0, 0}}, cost},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := OptimizeMod(tc.assign, tc.reduced, tc.f, tc.c, Options{}); err == nil {
				t.Fatalf("OptimizeMod accepted %s", tc.name)
			}
			if _, _, err := OptimizeAll(tc.assign, tc.reduced, tc.f, tc.c, Options{}); err == nil {
				t.Fatalf("OptimizeAll accepted %s", tc.name)
			}
		})
	}
}

// TestEndToEndTighterLowerBounds: an FB-optimized reduction must
// produce lower bounds on real EMDs that are, on average, at least as
// tight as a random reduction's — the core promise of Section 3.4.
func TestEndToEndTighterLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const d, dr, nSample, nEval = 12, 4, 12, 20
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, 40)
	for i := range data {
		data[i] = randomHistogram(rng, d)
	}
	sample := Sample(data, nSample, rng)
	flows, err := AverageFlows(sample, dist)
	if err != nil {
		t.Fatal(err)
	}
	fbRed, _, err := OptimizeAll(BaseAssignment(d), dr, flows, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	randRed, err := core.Random(d, dr, rng)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := core.NewReducedEMD(cost, fbRed, fbRed)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := core.NewReducedEMD(cost, randRed, randRed)
	if err != nil {
		t.Fatal(err)
	}
	var fbSum, rdSum float64
	for trial := 0; trial < nEval; trial++ {
		x := data[rng.Intn(len(data))]
		y := data[rng.Intn(len(data))]
		orig := dist.Distance(x, y)
		fbLB := fb.Distance(x, y)
		rdLB := rd.Distance(x, y)
		if fbLB > orig+1e-9 {
			t.Fatalf("FB lower bound %g exceeds EMD %g", fbLB, orig)
		}
		if rdLB > orig+1e-9 {
			t.Fatalf("random lower bound %g exceeds EMD %g", rdLB, orig)
		}
		fbSum += fbLB
		rdSum += rdLB
	}
	if fbSum < rdSum*0.95 {
		t.Errorf("FB reduction bounds (avg %g) clearly looser than random (avg %g)",
			fbSum/nEval, rdSum/nEval)
	}
}

func TestRepairFillsEmptyGroups(t *testing.T) {
	// Zero flows make every move gain zero tightness, so starting from
	// Base nothing moves and the repair path must fill the groups.
	const d, dr = 6, 3
	flows := vecmath.NewMatrix(d, d)
	cost := randomCost(rand.New(rand.NewSource(3)), d)
	red, stats, err := OptimizeAll(BaseAssignment(d), dr, flows, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Repaired {
		t.Error("expected repair with zero flows")
	}
	for g, members := range red.Groups() {
		if len(members) == 0 {
			t.Fatalf("group %d still empty after repair", g)
		}
	}
}

func TestThresholdStopsSearch(t *testing.T) {
	// An enormous threshold rejects every improvement, so the start
	// assignment must come back unchanged (modulo validity).
	rng := rand.New(rand.NewSource(77))
	const d, dr = 8, 2
	flows := randomFlows(rng, d)
	cost := randomCost(rng, d)
	start, err := core.Random(d, dr, rng)
	if err != nil {
		t.Fatal(err)
	}
	red, stats, err := OptimizeAll(start.Assignment(), dr, flows, cost, Options{Thresh: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moves != 0 {
		t.Errorf("threshold 1e9 still made %d moves", stats.Moves)
	}
	if !red.Equal(start) {
		t.Error("assignment changed despite prohibitive threshold")
	}
}

func TestBaseAssignment(t *testing.T) {
	a := BaseAssignment(5)
	if len(a) != 5 {
		t.Fatalf("length %d, want 5", len(a))
	}
	for i, g := range a {
		if g != 0 {
			t.Fatalf("BaseAssignment[%d] = %d, want 0", i, g)
		}
	}
}

func TestTightnessNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		d := 4 + rng.Intn(8)
		dr := 1 + rng.Intn(d)
		flows := randomFlows(rng, d)
		cost := randomCost(rng, d)
		r, err := core.Random(d, dr, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tight := Tightness(flows, cost, r); tight < 0 || math.IsNaN(tight) || math.IsInf(tight, 0) {
			t.Fatalf("invalid tightness %g", tight)
		}
	}
}

func TestAverageFlowsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const d = 8
	dist, err := emd.NewDist(emd.LinearCost(d))
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]emd.Histogram, 12)
	for i := range sample {
		sample[i] = randomHistogram(rng, d)
	}
	seq, err := AverageFlows(sample, dist)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AverageFlowsParallel(sample, dist, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i] {
			if !vecmath.AlmostEqual(seq[i][j], par[i][j], 1e-9) {
				t.Fatalf("flows differ at (%d,%d): %g vs %g", i, j, seq[i][j], par[i][j])
			}
		}
	}
	// Default worker count path.
	if _, err := AverageFlowsParallel(sample, dist, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := AverageFlowsParallel(sample[:1], dist, 2); err == nil {
		t.Error("accepted sample of size 1")
	}
}

func TestOptimizeEdgeDimensionalities(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const d = 9
	flows := randomFlows(rng, d)
	cost := randomCost(rng, d)

	// d' = 1: the only valid reduction maps everything together;
	// tightness is the diagonal-cell contribution (cost 0) = 0.
	red, stats, err := OptimizeAll(BaseAssignment(d), 1, flows, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if red.ReducedDims() != 1 || stats.Tightness != 0 {
		t.Errorf("d'=1: dims %d tightness %g", red.ReducedDims(), stats.Tightness)
	}

	// d' = d: the identity-like partition is reachable and maximal —
	// every dimension its own group recovers the full Eq. 12 value.
	idAssign := make([]int, d)
	for i := range idAssign {
		idAssign[i] = i
	}
	red, stats, err = OptimizeMod(idAssign, d, flows, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moves != 0 {
		t.Errorf("d'=d: identity start should already be optimal for singleton groups, made %d moves", stats.Moves)
	}
	if red.ReducedDims() != d {
		t.Errorf("d'=d: reduced dims %d", red.ReducedDims())
	}
}
