package flowred

import "math"

// searchState is the incremental evaluation engine behind FB-Mod and
// FB-All. It maintains, for the current assignment,
//
//   - af:   the aggregated flow matrix AF[i'][j'] = aggrFlow(F,R,i',j')
//   - cred: the optimal reduced cost matrix (Definition 5), +Inf for
//     cell pairs involving an empty reduced dimension
//   - tight: the expected tightness sum AF .* cred (Eq. 12)
//
// evalMove computes the tightness after reassigning one original
// dimension in O(|group| * d) without mutating the state; commit
// applies a move and rebuilds the caches exactly. Empty reduced groups
// are legal throughout the search (the paper's Base initial solution
// starts with all but one group empty); their cells contribute zero
// tightness since no flow can aggregate into them.
type searchState struct {
	d, dr     int
	f         [][]float64
	c         [][]float64
	assign    []int
	groupSize []int
	af        [][]float64
	cred      [][]float64
	tight     float64

	// scratch buffers for evalMove, sized dr.
	rowAggX, colAggX   []float64
	minRowO, minColO   []float64
	newRowA, newColA   []float64 // recomputed cred rows/cols for group a
	newRowB, newColB   []float64
	afRowA, afRowB     []float64
	afColA, afColB     []float64
	credRowA, credRowB []float64 // snapshots of old values for delta
}

func newSearchState(f [][]float64, c [][]float64, assign []int, dr int) *searchState {
	d := len(assign)
	st := &searchState{
		d: d, dr: dr,
		f:         f,
		c:         c,
		assign:    assign,
		groupSize: make([]int, dr),
		rowAggX:   make([]float64, dr),
		colAggX:   make([]float64, dr),
		minRowO:   make([]float64, dr),
		minColO:   make([]float64, dr),
		newRowA:   make([]float64, dr),
		newColA:   make([]float64, dr),
		newRowB:   make([]float64, dr),
		newColB:   make([]float64, dr),
		afRowA:    make([]float64, dr),
		afRowB:    make([]float64, dr),
		afColA:    make([]float64, dr),
		afColB:    make([]float64, dr),
	}
	st.af = newSquare(dr)
	st.cred = newSquare(dr)
	st.rebuild()
	return st
}

func newSquare(n int) [][]float64 {
	backing := make([]float64, n*n)
	out := make([][]float64, n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	return out
}

// contrib is one Eq. 12 term with the empty-group convention: zero
// aggregated flow contributes nothing even where the reduced cost is
// +Inf (empty group).
func contrib(af, cost float64) float64 {
	if af == 0 {
		return 0
	}
	return af * cost
}

// rebuild recomputes groupSize, af, cred and tight from scratch in
// O(d^2). It is called once on construction and after every commit, so
// numerical drift cannot accumulate across evaluations.
func (st *searchState) rebuild() {
	for g := range st.groupSize {
		st.groupSize[g] = 0
	}
	for _, g := range st.assign {
		st.groupSize[g]++
	}
	for i := 0; i < st.dr; i++ {
		for j := 0; j < st.dr; j++ {
			st.af[i][j] = 0
			st.cred[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < st.d; i++ {
		gi := st.assign[i]
		frow := st.f[i]
		crow := st.c[i]
		afRow := st.af[gi]
		credRow := st.cred[gi]
		for j := 0; j < st.d; j++ {
			gj := st.assign[j]
			afRow[gj] += frow[j]
			if crow[j] < credRow[gj] {
				credRow[gj] = crow[j]
			}
		}
	}
	st.tight = 0
	for i := 0; i < st.dr; i++ {
		for j := 0; j < st.dr; j++ {
			st.tight += contrib(st.af[i][j], st.cred[i][j])
		}
	}
}

// evalMove returns the tightness that reassigning original dimension o
// from its current group a to group b would produce. It must not be
// called with b == assign[o] or with groupSize[assign[o]] == 1.
func (st *searchState) evalMove(o, b int) float64 {
	a := st.assign[o]
	d, dr := st.d, st.dr

	// Fresh per-evaluation aggregates over dimension o, excluding o
	// itself (its self-flow and self-cost move between the diagonal
	// cells and are handled explicitly).
	for g := 0; g < dr; g++ {
		st.rowAggX[g] = 0
		st.colAggX[g] = 0
		st.minRowO[g] = math.Inf(1)
		st.minColO[g] = math.Inf(1)
		st.newRowA[g] = math.Inf(1)
		st.newColA[g] = math.Inf(1)
	}
	fo := st.f[o]
	co := st.c[o]
	for j := 0; j < d; j++ {
		if j == o {
			continue
		}
		gj := st.assign[j]
		st.rowAggX[gj] += fo[j]
		st.colAggX[gj] += st.f[j][o]
		if co[j] < st.minRowO[gj] {
			st.minRowO[gj] = co[j]
		}
		if st.c[j][o] < st.minColO[gj] {
			st.minColO[gj] = st.c[j][o]
		}
	}

	// Recompute reduced-cost row a and column a over the remaining
	// members of group a, mapping the *other* index through the new
	// assignment (o belongs to b after the move).
	for i := 0; i < d; i++ {
		if i == o || st.assign[i] != a {
			continue
		}
		ci := st.c[i]
		for j := 0; j < d; j++ {
			gj := st.assign[j]
			if j == o {
				gj = b
			}
			if ci[j] < st.newRowA[gj] {
				st.newRowA[gj] = ci[j]
			}
			// Column a: c[j][i] with j mapped through new groups.
			if st.c[j][i] < st.newColA[gj] {
				st.newColA[gj] = st.c[j][i]
			}
		}
	}

	// New reduced-cost row b and column b.
	for g := 0; g < dr; g++ {
		st.newRowB[g] = math.Min(st.cred[b][g], st.minRowO[g])
		st.newColB[g] = math.Min(st.cred[g][b], st.minColO[g])
	}
	// Cells coupling a and b are owned by the recomputed a-row/column.
	st.newRowB[a] = st.newColA[b]
	st.newColB[a] = st.newRowA[b]
	// Cell (b,b): old group b plus dimension o in both roles.
	bb := math.Min(st.cred[b][b], math.Min(st.minRowO[b], st.minColO[b]))
	bb = math.Min(bb, st.c[o][o])
	st.newRowB[b] = bb
	st.newColB[b] = bb
	// Cell (a,a) appears in both recomputed passes with the same value.

	// New aggregated flows for the affected rows and columns.
	foo := fo[o]
	for g := 0; g < dr; g++ {
		st.afRowA[g] = st.af[a][g] - st.rowAggX[g]
		st.afRowB[g] = st.af[b][g] + st.rowAggX[g]
		st.afColA[g] = st.af[g][a] - st.colAggX[g]
		st.afColB[g] = st.af[g][b] + st.colAggX[g]
	}
	// Column-membership changes for the cells in rows a and b.
	st.afRowA[a] -= st.colAggX[a]
	st.afRowA[b] += st.colAggX[a]
	st.afRowB[a] -= st.colAggX[b]
	st.afRowB[b] += st.colAggX[b]
	// Row-membership changes for the cells in columns a and b.
	st.afColA[a] -= st.rowAggX[a]
	st.afColA[b] += st.rowAggX[a]
	st.afColB[a] -= st.rowAggX[b]
	st.afColB[b] += st.rowAggX[b]
	// Self-flow f[o][o] leaves (a,a) and enters (b,b).
	st.afRowA[a] -= foo
	st.afRowB[b] += foo
	st.afColA[a] -= foo
	st.afColB[b] += foo

	// Delta over the affected cells: rows a and b across all columns,
	// plus columns a and b for the remaining rows.
	delta := 0.0
	for g := 0; g < dr; g++ {
		delta += contrib(st.afRowA[g], st.newRowA[g]) - contrib(st.af[a][g], st.cred[a][g])
		delta += contrib(st.afRowB[g], st.newRowB[g]) - contrib(st.af[b][g], st.cred[b][g])
	}
	for g := 0; g < dr; g++ {
		if g == a || g == b {
			continue
		}
		delta += contrib(st.afColA[g], st.newColA[g]) - contrib(st.af[g][a], st.cred[g][a])
		delta += contrib(st.afColB[g], st.newColB[g]) - contrib(st.af[g][b], st.cred[g][b])
	}
	return st.tight + delta
}

// commit applies the reassignment of dimension o to group b and
// rebuilds all caches exactly.
func (st *searchState) commit(o, b int) {
	st.assign[o] = b
	st.rebuild()
}
