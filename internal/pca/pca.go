// Package pca implements the PCA-based reduction ablation the paper
// reports having tried (Section 3.2): a general linear dimensionality
// reduction (Definition 2) derived from principal components, amended
// by an extra dimension to preserve total mass. The paper found it to
// give "very poor retrieval efficiency due to the concessions that had
// to be made for the reduced cost matrix in order to guarantee the
// lower-bounding property"; this package reproduces both the
// construction and that finding (see the Fig20 experiment).
//
// Construction. Raw PCA loadings are signed, so x·R would not be a
// valid histogram. We therefore derive a *row-stochastic* soft
// assignment: original dimension i distributes its mass over the
// reduced dimensions proportionally to the absolute loadings of the
// top d'-1 principal components, with a fixed share routed to an extra
// mass-preserving residual dimension. For any non-negative
// row-stochastic R the reduced EMD under the cost matrix
//
//	c'_{i'j'} = min{ c_ij | r1_{ii'} > 0 and r2_{jj'} > 0 }
//
// lower-bounds the original EMD: the soft-split flow
// f'_{i'j'} = sum_ij f_ij r_{ii'} r_{jj'} is feasible for the reduced
// problem and costs no more than the original flow. This generalizes
// Theorem 1 from 0/1 to stochastic reduction matrices. Because PCA
// loadings have near-global support, almost every (i',j') pair
// supports almost every (i,j) pair, which drives c' toward the global
// minimum cost — the structural reason the bound is so loose.
package pca

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// SupportEpsilon is the weight below which a soft-assignment entry is
// treated as zero when computing the reduced cost matrix.
const SupportEpsilon = 1e-9

// SoftReduction is a non-negative, row-stochastic linear reduction
// together with the lower-bounding reduced cost matrix and a compiled
// reduced EMD.
type SoftReduction struct {
	r    [][]float64 // d x d', rows sum to 1
	dist *emd.Dist
}

// New builds a PCA-based soft reduction to `reduced` dimensions from a
// sample of database histograms (used to estimate the covariance) and
// the original ground distance. residualShare in (0,1) is the mass
// share routed to the extra mass-preserving dimension; the paper-style
// default is obtained with 0.1.
func New(sample []emd.Histogram, cost emd.CostMatrix, reduced int, residualShare float64) (*SoftReduction, error) {
	if len(sample) < 2 {
		return nil, fmt.Errorf("pca: need at least 2 sample histograms, got %d", len(sample))
	}
	d := len(sample[0])
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if cost.Rows() != d || cost.Cols() != d {
		return nil, fmt.Errorf("pca: cost matrix is %dx%d, histograms are %d-dimensional", cost.Rows(), cost.Cols(), d)
	}
	if reduced < 2 || reduced > d {
		return nil, fmt.Errorf("pca: reduced dimensionality %d out of range [2, %d]", reduced, d)
	}
	if residualShare <= 0 || residualShare >= 1 {
		return nil, fmt.Errorf("pca: residual share %g out of range (0, 1)", residualShare)
	}

	obs := make([][]float64, len(sample))
	for i, h := range sample {
		if len(h) != d {
			return nil, fmt.Errorf("pca: sample histogram %d has %d dimensions, want %d", i, len(h), d)
		}
		obs[i] = h
	}
	cov, err := vecmath.Covariance(obs)
	if err != nil {
		return nil, err
	}
	_, vectors, err := vecmath.JacobiEigen(cov)
	if err != nil {
		return nil, err
	}

	components := reduced - 1 // the last reduced dimension is the residual
	r := vecmath.NewMatrix(d, reduced)
	for i := 0; i < d; i++ {
		var rowMax float64
		for k := 0; k < components; k++ {
			r[i][k] = math.Abs(vectors[k][i])
			if r[i][k] > rowMax {
				rowMax = r[i][k]
			}
		}
		// Sparsify: PCA loadings are dense, and with full support every
		// reduced cost entry collapses to the global minimum (zero).
		// Dropping weights below a fraction of the row maximum is the
		// best-effort concession that keeps the ablation non-degenerate
		// while preserving the lower bound (the support can only
		// shrink, so the min-cost entries can only grow).
		var sum float64
		for k := 0; k < components; k++ {
			if r[i][k] < 0.5*rowMax {
				r[i][k] = 0
			}
			sum += r[i][k]
		}
		if sum < SupportEpsilon {
			// Dimension not represented in the leading components:
			// all its mass goes to the residual dimension.
			r[i][reduced-1] = 1
			continue
		}
		for k := 0; k < components; k++ {
			r[i][k] = r[i][k] / sum * (1 - residualShare)
		}
		r[i][reduced-1] = residualShare
	}

	redCost, err := reduceCostSoft(cost, r, r)
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(redCost)
	if err != nil {
		return nil, err
	}
	return &SoftReduction{r: r, dist: dist}, nil
}

// reduceCostSoft computes the lower-bounding reduced cost matrix for
// two non-negative reduction matrices: the minimum original cost over
// the support of each reduced pair.
func reduceCostSoft(cost emd.CostMatrix, r1, r2 [][]float64) (emd.CostMatrix, error) {
	d1 := len(r1[0])
	d2 := len(r2[0])
	out := vecmath.NewMatrix(d1, d2)
	for a := range out {
		for b := range out[a] {
			out[a][b] = math.Inf(1)
		}
	}
	for i := range r1 {
		for j := range r2 {
			cij := cost[i][j]
			for a := 0; a < d1; a++ {
				if r1[i][a] <= SupportEpsilon {
					continue
				}
				row := out[a]
				for b := 0; b < d2; b++ {
					if r2[j][b] <= SupportEpsilon {
						continue
					}
					if cij < row[b] {
						row[b] = cij
					}
				}
			}
		}
	}
	// Reduced dimensions with empty support can only carry zero mass;
	// zero cost keeps the matrix valid without affecting distances.
	for a := range out {
		for b := range out[a] {
			if math.IsInf(out[a][b], 1) {
				out[a][b] = 0
			}
		}
	}
	reduced := emd.CostMatrix(out)
	if err := reduced.Validate(); err != nil {
		return nil, err
	}
	return reduced, nil
}

// ReducedDims returns d'.
func (s *SoftReduction) ReducedDims() int { return len(s.r[0]) }

// Matrix returns the underlying row-stochastic reduction matrix.
func (s *SoftReduction) Matrix() [][]float64 { return vecmath.CloneMatrix(s.r) }

// Cost returns the lower-bounding reduced cost matrix.
func (s *SoftReduction) Cost() emd.CostMatrix { return s.dist.Cost() }

// Apply reduces a histogram: x' = x · R. Mass is preserved because the
// rows of R are stochastic.
func (s *SoftReduction) Apply(x emd.Histogram) emd.Histogram {
	return vecmath.MatVec(x, s.r)
}

// Distance computes the lower-bounding reduced EMD between two
// original-dimensional histograms.
func (s *SoftReduction) Distance(x, y emd.Histogram) float64 {
	return s.dist.Distance(s.Apply(x), s.Apply(y))
}

// DistanceReduced computes the reduced EMD from already-reduced
// vectors.
func (s *SoftReduction) DistanceReduced(xr, yr emd.Histogram) float64 {
	return s.dist.Distance(xr, yr)
}
