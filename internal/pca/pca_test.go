package pca

import (
	"math"
	"math/rand"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
	"emdsearch/internal/emd"
	"emdsearch/internal/flowred"
	"emdsearch/internal/vecmath"
)

func sampleData(t *testing.T, n int) (*data.Dataset, []emd.Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(n, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds, ds.Histograms()
}

func TestNewValidation(t *testing.T) {
	ds, hs := sampleData(t, 10)
	if _, err := New(hs[:1], ds.Cost, 4, 0.1); err == nil {
		t.Error("accepted single-histogram sample")
	}
	if _, err := New(hs, ds.Cost, 1, 0.1); err == nil {
		t.Error("accepted reduced dim 1")
	}
	if _, err := New(hs, ds.Cost, 25, 0.1); err == nil {
		t.Error("accepted reduced > d")
	}
	if _, err := New(hs, ds.Cost, 4, 0); err == nil {
		t.Error("accepted residual share 0")
	}
	if _, err := New(hs, ds.Cost, 4, 1); err == nil {
		t.Error("accepted residual share 1")
	}
	if _, err := New(hs, emd.LinearCost(7), 4, 0.1); err == nil {
		t.Error("accepted mismatched cost matrix")
	}
}

func TestRowStochastic(t *testing.T) {
	ds, hs := sampleData(t, 20)
	s, err := New(hs, ds.Cost, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Matrix()
	for i, row := range m {
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative reduction weight at row %d: %v", i, row)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestApplyPreservesMass(t *testing.T) {
	ds, hs := sampleData(t, 20)
	s, err := New(hs, ds.Cost, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs[:5] {
		xr := s.Apply(h)
		if len(xr) != 5 {
			t.Fatalf("reduced length %d, want 5", len(xr))
		}
		if math.Abs(vecmath.Sum(xr)-1) > 1e-9 {
			t.Fatalf("mass not preserved: %g", vecmath.Sum(xr))
		}
		for j, v := range xr {
			if v < -1e-12 {
				t.Fatalf("negative reduced mass at %d: %g", j, v)
			}
		}
	}
}

// TestLowerBound: the PCA soft reduction must never overestimate the
// exact EMD — the property the cost-matrix concession buys.
func TestLowerBound(t *testing.T) {
	ds, hs := sampleData(t, 40)
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(hs[:20], ds.Cost, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		x := hs[rng.Intn(len(hs))]
		y := hs[rng.Intn(len(hs))]
		exact := dist.Distance(x, y)
		if lbv := s.Distance(x, y); lbv > exact+1e-9 {
			t.Fatalf("PCA bound %g exceeds EMD %g", lbv, exact)
		}
	}
}

// TestPCAMuchLooserThanCombining reproduces the paper's Section 3.2
// observation: the PCA reduction's lower bound is drastically looser
// than a combining reduction of the same dimensionality.
func TestPCAMuchLooserThanCombining(t *testing.T) {
	ds, hs := sampleData(t, 60)
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		t.Fatal(err)
	}
	const dr = 6
	pcaRed, err := New(hs[:30], ds.Cost, dr, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Combining reduction via FB-All from the same sample.
	flows, err := flowred.AverageFlows(hs[:16], dist)
	if err != nil {
		t.Fatal(err)
	}
	fbAssign, _, err := flowred.OptimizeAll(flowred.BaseAssignment(ds.Dim), dr, flows, ds.Cost, flowred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := core.NewReducedEMD(ds.Cost, fbAssign, fbAssign)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var pcaSum, fbSum, exactSum float64
	for trial := 0; trial < 25; trial++ {
		x := hs[rng.Intn(len(hs))]
		y := hs[rng.Intn(len(hs))]
		exact := dist.Distance(x, y)
		if exact < 1e-9 {
			continue
		}
		pcaSum += pcaRed.Distance(x, y)
		fbSum += fb.Distance(x, y)
		exactSum += exact
	}
	if exactSum == 0 {
		t.Skip("all sampled pairs identical")
	}
	pcaRatio := pcaSum / exactSum
	fbRatio := fbSum / exactSum
	t.Logf("tightness ratio: PCA %.4f, FB combining %.4f", pcaRatio, fbRatio)
	if pcaRatio >= fbRatio {
		t.Errorf("PCA bound (%.4f) not looser than combining bound (%.4f); paper finding not reproduced",
			pcaRatio, fbRatio)
	}
}

func TestReducedDimsAndCost(t *testing.T) {
	ds, hs := sampleData(t, 15)
	s, err := New(hs, ds.Cost, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if s.ReducedDims() != 4 {
		t.Errorf("ReducedDims = %d, want 4", s.ReducedDims())
	}
	c := s.Cost()
	if c.Rows() != 4 || c.Cols() != 4 {
		t.Errorf("reduced cost %dx%d, want 4x4", c.Rows(), c.Cols())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("reduced cost invalid: %v", err)
	}
}

func TestDistanceReducedMatchesDistance(t *testing.T) {
	ds, hs := sampleData(t, 15)
	s, err := New(hs, ds.Cost, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	x, y := hs[0], hs[1]
	full := s.Distance(x, y)
	viaReduced := s.DistanceReduced(s.Apply(x), s.Apply(y))
	if math.Abs(full-viaReduced) > 1e-9 {
		t.Errorf("Distance %g != DistanceReduced %g", full, viaReduced)
	}
}
