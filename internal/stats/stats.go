// Package stats provides small distance-distribution utilities used
// for selectivity analysis and range-radius selection: quantiles,
// selectivity at a radius, and summary statistics over a sample of
// distances. The experiment harness and the Engine's epsilon
// estimation build on it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is an immutable summary of a sample of distances.
type Distribution struct {
	sorted []float64
	sum    float64
}

// NewDistribution copies and sorts the sample. Values must be finite
// and non-negative (distances).
func NewDistribution(values []float64) (*Distribution, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	var sum float64
	for i, v := range sorted {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: invalid distance [%d] = %g", i, v)
		}
		sum += v
	}
	sort.Float64s(sorted)
	return &Distribution{sorted: sorted, sum: sum}, nil
}

// Count returns the sample size.
func (d *Distribution) Count() int { return len(d.sorted) }

// Min returns the smallest distance.
func (d *Distribution) Min() float64 { return d.sorted[0] }

// Max returns the largest distance.
func (d *Distribution) Max() float64 { return d.sorted[len(d.sorted)-1] }

// Mean returns the arithmetic mean.
func (d *Distribution) Mean() float64 { return d.sum / float64(len(d.sorted)) }

// Quantile returns the p-quantile (nearest-rank, p in [0, 1]).
func (d *Distribution) Quantile(p float64) float64 {
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 1 {
		return d.sorted[len(d.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(d.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.sorted[idx]
}

// SelectivityAt returns the fraction of the sample at most eps.
func (d *Distribution) SelectivityAt(eps float64) float64 {
	idx := sort.SearchFloat64s(d.sorted, math.Nextafter(eps, math.Inf(1)))
	return float64(idx) / float64(len(d.sorted))
}

// KthSmallest returns the k-th smallest distance (1-based). It panics
// for k out of range, since that is always a caller bug.
func (d *Distribution) KthSmallest(k int) float64 {
	if k < 1 || k > len(d.sorted) {
		panic(fmt.Sprintf("stats: KthSmallest(%d) on sample of %d", k, len(d.sorted)))
	}
	return d.sorted[k-1]
}

// Spread returns a contrast measure used to judge how indexable a
// workload is: the ratio of the p-quantile to the median. Values close
// to 1 at small p indicate concentrated distances (hard to prune);
// small values indicate strong cluster structure.
func (d *Distribution) Spread(p float64) float64 {
	median := d.Quantile(0.5)
	if median == 0 {
		return 1
	}
	return d.Quantile(p) / median
}
