package stats

import (
	"math"
	"testing"
)

func dist(t *testing.T, vs ...float64) *Distribution {
	t.Helper()
	d, err := NewDistribution(vs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDistributionValidation(t *testing.T) {
	if _, err := NewDistribution(nil); err == nil {
		t.Error("accepted empty sample")
	}
	if _, err := NewDistribution([]float64{1, -2}); err == nil {
		t.Error("accepted negative distance")
	}
	if _, err := NewDistribution([]float64{math.NaN()}); err == nil {
		t.Error("accepted NaN")
	}
	if _, err := NewDistribution([]float64{math.Inf(1)}); err == nil {
		t.Error("accepted Inf")
	}
}

func TestSummaryStats(t *testing.T) {
	d := dist(t, 3, 1, 2, 4)
	if d.Count() != 4 || d.Min() != 1 || d.Max() != 4 {
		t.Errorf("count/min/max = %d/%g/%g", d.Count(), d.Min(), d.Max())
	}
	if d.Mean() != 2.5 {
		t.Errorf("mean = %g", d.Mean())
	}
}

func TestNewDistributionDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := NewDistribution(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 {
		t.Error("input slice was sorted in place")
	}
}

func TestQuantile(t *testing.T) {
	d := dist(t, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {1, 10}, {-1, 1}, {2, 10},
	}
	for _, tc := range cases {
		if got := d.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestSelectivityAt(t *testing.T) {
	d := dist(t, 1, 2, 2, 3)
	cases := []struct{ eps, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := d.SelectivityAt(tc.eps); got != tc.want {
			t.Errorf("SelectivityAt(%g) = %g, want %g", tc.eps, got, tc.want)
		}
	}
}

func TestKthSmallest(t *testing.T) {
	d := dist(t, 5, 1, 3)
	if d.KthSmallest(1) != 1 || d.KthSmallest(2) != 3 || d.KthSmallest(3) != 5 {
		t.Error("KthSmallest wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range KthSmallest did not panic")
		}
	}()
	d.KthSmallest(4)
}

func TestSpread(t *testing.T) {
	concentrated := dist(t, 9, 9.5, 10, 10.5, 11)
	clustered := dist(t, 1, 1.1, 1.2, 10, 10.1, 10.2, 10.4, 10.5, 10.6, 10.7)
	if s := concentrated.Spread(0.1); s < 0.8 {
		t.Errorf("concentrated spread %g, want close to 1", s)
	}
	if s := clustered.Spread(0.1); s > 0.5 {
		t.Errorf("clustered spread %g, want small", s)
	}
	zero := dist(t, 0, 0, 0)
	if zero.Spread(0.1) != 1 {
		t.Error("zero-median spread should be 1")
	}
}
