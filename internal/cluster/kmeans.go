package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"emdsearch/internal/core"
	"emdsearch/internal/vecmath"
)

// KMeansResult carries the outcome of a k-means run over bin
// positions.
type KMeansResult struct {
	Reduction *core.Reduction
	// Centers holds the final cluster centroids in feature space.
	Centers [][]float64
	// Inertia is the summed squared distance of each bin position to
	// its center — the k-means objective.
	Inertia float64
	// Iterations counts Lloyd iterations executed.
	Iterations int
}

// KMeans clusters histogram dimensions by their feature-space
// positions with Lloyd's algorithm and returns the induced combining
// reduction. The paper (Section 3.3) discusses k-means as the
// alternative to k-medoids: it requires explicit bin positions (an
// actual feature space, not just a cost matrix), which is why the
// paper — and this library's default — prefers k-medoids; where
// positions exist, k-means is cheaper per iteration and this variant
// makes the comparison concrete.
//
// Empty clusters are re-seeded with the position farthest from its
// assigned center, so the result always has exactly k non-empty
// groups.
func KMeans(positions [][]float64, k int, rng *rand.Rand) (*KMeansResult, error) {
	d := len(positions)
	if d == 0 {
		return nil, fmt.Errorf("cluster: no positions")
	}
	dim := len(positions[0])
	for i, p := range positions {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: position %d has %d coordinates, want %d", i, len(p), dim)
		}
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("cluster: k = %d out of range [1, %d]", k, d)
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: nil rng")
	}

	// Initialize centers on k distinct positions.
	perm := rng.Perm(d)
	centers := make([][]float64, k)
	for c := 0; c < k; c++ {
		centers[c] = vecmath.Clone(positions[perm[c]])
	}

	assign := make([]int, d)
	const maxIters = 200
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		// Assignment step.
		for i, p := range positions {
			best := 0
			bestDist := math.Inf(1)
			for c, ctr := range centers {
				if dd := sqDist(p, ctr); dd < bestDist {
					bestDist = dd
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Update step.
		counts := make([]int, k)
		sums := vecmath.NewMatrix(k, dim)
		for i, p := range positions {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed the empty cluster with the worst-fitted
				// position.
				worst, worstDist := 0, -1.0
				for i, p := range positions {
					if dd := sqDist(p, centers[assign[i]]); dd > worstDist {
						worstDist = dd
						worst = i
					}
				}
				centers[c] = vecmath.Clone(positions[worst])
				assign[worst] = c
				continue
			}
			for j := 0; j < dim; j++ {
				centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}

	// Final stats; guarantee non-empty clusters for the reduction.
	counts := make([]int, k)
	var inertia float64
	for i, p := range positions {
		counts[assign[i]]++
		inertia += sqDist(p, centers[assign[i]])
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			// Steal the member of the largest cluster farthest from
			// its center.
			worst, worstDist := -1, -1.0
			for i, p := range positions {
				if counts[assign[i]] < 2 {
					continue
				}
				if dd := sqDist(p, centers[assign[i]]); dd > worstDist {
					worstDist = dd
					worst = i
				}
			}
			if worst < 0 {
				return nil, fmt.Errorf("cluster: cannot repair empty cluster %d", c)
			}
			counts[assign[worst]]--
			assign[worst] = c
			counts[c]++
		}
	}

	red, err := core.NewReduction(assign, k)
	if err != nil {
		return nil, fmt.Errorf("cluster: internal error building reduction: %w", err)
	}
	return &KMeansResult{
		Reduction:  red,
		Centers:    centers,
		Inertia:    inertia,
		Iterations: iters,
	}, nil
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i, x := range a {
		d := x - b[i]
		sum += d * d
	}
	return sum
}
