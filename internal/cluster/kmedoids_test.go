package cluster

import (
	"math"
	"math/rand"
	"testing"

	"emdsearch/internal/emd"
)

func TestKMedoidsValidation(t *testing.T) {
	c := emd.LinearCost(4)
	rng := rand.New(rand.NewSource(1))
	if _, err := KMedoids(c, 0, rng); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := KMedoids(c, 5, rng); err == nil {
		t.Error("accepted k>d")
	}
	if _, err := KMedoids(c, 2, nil); err == nil {
		t.Error("accepted nil rng")
	}
	rect := emd.CostMatrix{{0, 1, 2}, {1, 0, 1}}
	if _, err := KMedoids(rect, 1, rng); err == nil {
		t.Error("accepted rectangular cost matrix")
	}
}

func TestKMedoidsSeparatedBlocks(t *testing.T) {
	// Two well-separated groups of dimensions: {0,1,2} mutually close,
	// {3,4,5} mutually close, large distance across. k=2 must recover
	// the blocks regardless of the seed.
	const d = 6
	c := make(emd.CostMatrix, d)
	for i := range c {
		c[i] = make([]float64, d)
		for j := range c[i] {
			if i == j {
				continue
			}
			sameBlock := (i < 3) == (j < 3)
			if sameBlock {
				c[i][j] = 0.5
			} else {
				c[i][j] = 10
			}
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := KMedoids(c, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		a := res.Reduction.Assignment()
		if a[0] != a[1] || a[1] != a[2] || a[3] != a[4] || a[4] != a[5] || a[0] == a[3] {
			t.Fatalf("seed %d: blocks not recovered: %v", seed, a)
		}
		// Total distance: 2 non-medoids per cluster at 0.5 each.
		if math.Abs(res.TotalDistance-2) > 1e-12 {
			t.Errorf("seed %d: total distance %g, want 2", seed, res.TotalDistance)
		}
	}
}

func TestKMedoidsKEqualsD(t *testing.T) {
	c := emd.LinearCost(5)
	res, err := KMedoids(c, 5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDistance != 0 {
		t.Errorf("k=d total distance %g, want 0", res.TotalDistance)
	}
	if res.Reduction.ReducedDims() != 5 {
		t.Errorf("reduced dims %d, want 5", res.Reduction.ReducedDims())
	}
}

func TestKMedoidsKEqualsOne(t *testing.T) {
	c := emd.LinearCost(7)
	res, err := KMedoids(c, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Optimal single medoid of a line is the middle: total = 3+2+1+1+2+3.
	if math.Abs(res.TotalDistance-12) > 1e-12 {
		t.Errorf("total distance %g, want 12", res.TotalDistance)
	}
	if res.Medoids[0] != 3 {
		t.Errorf("medoid %d, want 3 (line center)", res.Medoids[0])
	}
}

func TestKMedoidsLinearCostContiguous(t *testing.T) {
	// On a 1-D linear ground distance, clusters of dimensions should be
	// contiguous runs: any non-contiguous assignment could be improved.
	c := emd.LinearCost(12)
	res, err := BestOfRestarts(c, 3, 5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Reduction.Assignment()
	changes := 0
	for i := 1; i < len(a); i++ {
		if a[i] != a[i-1] {
			changes++
		}
	}
	if changes != 2 {
		t.Errorf("expected 3 contiguous runs, assignment %v has %d boundaries", a, changes)
	}
}

func TestKMedoidsDeterministicForSeed(t *testing.T) {
	c := emd.ModuloCost(10)
	a, err := KMedoids(c, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(c, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reduction.Equal(b.Reduction) {
		t.Error("same seed produced different clusterings")
	}
}

func TestBestOfRestartsImprovesOrMatches(t *testing.T) {
	c := emd.ModuloCost(16)
	rng := rand.New(rand.NewSource(13))
	single, err := KMedoids(c, 4, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BestOfRestarts(c, 4, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TotalDistance > single.TotalDistance+1e-12 {
		t.Errorf("restarts made the objective worse: %g > %g", multi.TotalDistance, single.TotalDistance)
	}
	if _, err := BestOfRestarts(c, 4, 0, rng); err == nil {
		t.Error("accepted zero restarts")
	}
}

func TestKMedoidsSwapsReduceObjective(t *testing.T) {
	// The result's TotalDistance must equal a recomputation from its
	// own medoids (internal consistency).
	c := emd.ModuloCost(9)
	res, err := KMedoids(c, 3, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, 9)
	recomputed := assignAll(c, res.Medoids, assign)
	if math.Abs(recomputed-res.TotalDistance) > 1e-12 {
		t.Errorf("reported %g, recomputed %g", res.TotalDistance, recomputed)
	}
	for i, g := range res.Reduction.Assignment() {
		if g != assign[i] {
			t.Fatalf("assignment mismatch at %d: %d vs %d", i, g, assign[i])
		}
	}
}
