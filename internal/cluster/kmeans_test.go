package cluster

import (
	"math/rand"
	"testing"

	"emdsearch/internal/emd"
)

func TestKMeansValidation(t *testing.T) {
	pos := [][]float64{{0}, {1}, {2}}
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 1, rng); err == nil {
		t.Error("accepted empty positions")
	}
	if _, err := KMeans(pos, 0, rng); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := KMeans(pos, 4, rng); err == nil {
		t.Error("accepted k>d")
	}
	if _, err := KMeans(pos, 2, nil); err == nil {
		t.Error("accepted nil rng")
	}
	if _, err := KMeans([][]float64{{0, 1}, {2}}, 1, rng); err == nil {
		t.Error("accepted ragged positions")
	}
}

func TestKMeansSeparatedClusters(t *testing.T) {
	// Two well-separated 2-D groups must be recovered for any seed.
	pos := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := KMeans(pos, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		a := res.Reduction.Assignment()
		if a[0] != a[1] || a[1] != a[2] || a[3] != a[4] || a[4] != a[5] || a[0] == a[3] {
			t.Fatalf("seed %d: clusters not recovered: %v", seed, a)
		}
		if res.Inertia > 0.1 {
			t.Errorf("seed %d: inertia %g too high", seed, res.Inertia)
		}
	}
}

func TestKMeansAllGroupsNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := 4 + rng.Intn(20)
		k := 1 + rng.Intn(d)
		pos := make([][]float64, d)
		for i := range pos {
			pos[i] = []float64{rng.Float64(), rng.Float64()}
		}
		res, err := KMeans(pos, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		for g, members := range res.Reduction.Groups() {
			if len(members) == 0 {
				t.Fatalf("trial %d: group %d empty", trial, g)
			}
		}
	}
}

func TestKMeansKEqualsD(t *testing.T) {
	pos := emd.GridPositions(2, 3)
	res, err := KMeans(pos, 6, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("k=d inertia %g, want 0", res.Inertia)
	}
}

func TestKMeansOnGridAgreesWithKMedoidsQuality(t *testing.T) {
	// On a grid both clusterings should produce spatially coherent
	// groups; compare their induced reduced-cost quality loosely via
	// the k-medoids total-distance objective evaluated on both.
	pos := emd.GridPositions(6, 4)
	cost, err := emd.PositionCost(pos, pos, 2)
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMeans(pos, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	kmed, err := BestOfRestarts(cost, 4, 5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate k-means' partition under the medoid objective: for each
	// group pick its best medoid.
	var kmScore float64
	for _, members := range km.Reduction.Groups() {
		best := 1e18
		for _, m := range members {
			var s float64
			for _, i := range members {
				s += cost[i][m]
			}
			if s < best {
				best = s
			}
		}
		kmScore += best
	}
	if kmScore > kmed.TotalDistance*1.5+1e-9 {
		t.Errorf("k-means partition much worse than k-medoids: %g vs %g", kmScore, kmed.TotalDistance)
	}
}
