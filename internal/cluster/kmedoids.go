// Package cluster implements the clustering-based reduction of Section
// 3.3 of Wichterich et al. (SIGMOD 2008): a k-medoids clustering of the
// *original EMD dimensions*, using the ground-distance cost matrix as
// the pairwise dissimilarity between dimensions. Dimensions clustered
// together are merged into one reduced dimension; by the monotony of
// the EMD (Theorem 2), keeping dissimilar dimensions apart keeps the
// entries of the optimal reduced cost matrix — and with them the lower
// bound — large.
//
// k-medoids is chosen over k-means exactly as in the paper: it needs no
// explicit coordinates for the dimensions, only the cost matrix, so it
// applies even when the ground distance is a black box.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

// Result carries the outcome of a k-medoids run.
type Result struct {
	// Reduction assigns each original dimension to the cluster of its
	// nearest medoid.
	Reduction *core.Reduction
	// Medoids lists the representative original dimension per cluster.
	Medoids []int
	// TotalDistance is the objective the algorithm minimized: the sum
	// of ground distances from each dimension to its medoid.
	TotalDistance float64
	// Iterations counts executed swap steps.
	Iterations int
}

// KMedoids clusters the d dimensions of the cost matrix c into k
// groups and returns the induced combining reduction. The algorithm
// follows the paper's sketch: random initial medoids, assignment of the
// remaining dimensions to the nearest medoid, then greedy
// medoid/non-medoid swaps until no swap lowers the total distance.
// The cost matrix must be square; rng drives the initial medoid choice
// and makes runs reproducible.
func KMedoids(c emd.CostMatrix, k int, rng *rand.Rand) (*Result, error) {
	d := c.Rows()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if d != c.Cols() {
		return nil, fmt.Errorf("cluster: cost matrix is %dx%d, want square", c.Rows(), c.Cols())
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("cluster: k = %d out of range [1, %d]", k, d)
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: nil rng")
	}

	medoids := rng.Perm(d)[:k]
	isMedoid := make([]bool, d)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	assign := make([]int, d)
	total := assignAll(c, medoids, assign)

	// Greedy swap phase: evaluate replacing each medoid by each
	// non-medoid, apply the single best improving swap, repeat.
	const maxIters = 10000
	iters := 0
	for ; iters < maxIters; iters++ {
		bestDelta := -1e-12
		bestCluster, bestCandidate := -1, -1
		trial := make([]int, k)
		scratch := make([]int, d)
		for ci := 0; ci < k; ci++ {
			for cand := 0; cand < d; cand++ {
				if isMedoid[cand] {
					continue
				}
				copy(trial, medoids)
				trial[ci] = cand
				if delta := assignAll(c, trial, scratch) - total; delta < bestDelta {
					bestDelta = delta
					bestCluster, bestCandidate = ci, cand
				}
			}
		}
		if bestCluster < 0 {
			break
		}
		isMedoid[medoids[bestCluster]] = false
		medoids[bestCluster] = bestCandidate
		isMedoid[bestCandidate] = true
		total = assignAll(c, medoids, assign)
	}

	red, err := core.NewReduction(assign, k)
	if err != nil {
		return nil, fmt.Errorf("cluster: internal error building reduction: %w", err)
	}
	return &Result{
		Reduction:     red,
		Medoids:       append([]int(nil), medoids...),
		TotalDistance: total,
		Iterations:    iters,
	}, nil
}

// assignAll assigns every dimension to its nearest medoid (medoids
// assign to themselves even if another medoid is at distance zero) and
// returns the total distance. assign must have length d.
func assignAll(c emd.CostMatrix, medoids []int, assign []int) float64 {
	var total float64
	for i := range assign {
		best := math.Inf(1)
		bestIdx := 0
		for ci, m := range medoids {
			if i == m {
				best = 0
				bestIdx = ci
				break
			}
			if dist := c[i][m]; dist < best {
				best = dist
				bestIdx = ci
			}
		}
		assign[i] = bestIdx
		total += best
	}
	return total
}

// BestOfRestarts runs KMedoids `restarts` times with fresh random
// initializations from rng and returns the result with the lowest total
// distance. k-medoids only finds local optima; a handful of restarts
// reliably smooths out unlucky seeds.
func BestOfRestarts(c emd.CostMatrix, k, restarts int, rng *rand.Rand) (*Result, error) {
	if restarts < 1 {
		return nil, fmt.Errorf("cluster: restarts = %d, want >= 1", restarts)
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		res, err := KMedoids(c, k, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || res.TotalDistance < best.TotalDistance {
			best = res
		}
	}
	return best, nil
}
