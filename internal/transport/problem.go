// Package transport provides exact solvers for the balanced
// transportation problem, the linear program underlying the Earth
// Mover's Distance (Definition 1 of Wichterich et al., SIGMOD 2008):
//
//	minimize   sum_ij c_ij f_ij
//	subject to f_ij >= 0, sum_j f_ij = supply_i, sum_i f_ij = demand_j
//
// Two independent solvers are provided. SolveSimplex implements the
// transportation simplex (Vogel initialization, MODI/u-v dual updates,
// spanning-tree basis, deterministic pivoting) and is the default.
// SolveSSP implements a successive-shortest-path min-cost-flow solver
// with Johnson potentials; it is used as a cross-check in tests and as
// an automatic fallback should the simplex hit its iteration cap on a
// degenerate instance. Both return the optimal flow matrix, which the
// flow-based reduction heuristics of the paper consume.
package transport

import (
	"errors"
	"fmt"
	"math"
)

// MassTolerance is the maximum allowed relative imbalance between total
// supply and total demand. Histograms in this code base are normalized
// to total mass one, so any real imbalance indicates a caller bug.
const MassTolerance = 1e-6

// Problem is a balanced transportation problem instance. Cost must have
// len(Supply) rows and len(Demand) columns. Supplies and demands must
// be non-negative and (up to MassTolerance) of equal total mass.
type Problem struct {
	Supply []float64
	Demand []float64
	Cost   [][]float64
}

// Solution holds the result of solving a Problem.
type Solution struct {
	// Objective is the minimal total transportation cost.
	Objective float64
	// Flow is the optimal flow matrix (len(Supply) x len(Demand)).
	Flow [][]float64
	// DualU and DualV are optimal dual potentials satisfying
	// DualU[i]+DualV[j] <= Cost[i][j] for all cells. They are filled
	// by the simplex solver and serve as an optimality certificate via
	// strong duality; the SSP solver leaves them nil.
	DualU, DualV []float64
	// Iterations counts simplex pivots or SSP augmentations.
	Iterations int
	// Method names the solver that produced the solution
	// ("simplex" or "ssp").
	Method string
}

// ErrIterationLimit is returned (wrapped) when a solver exceeds its
// iteration budget, which on non-adversarial inputs indicates a bug or
// severe degeneracy.
var ErrIterationLimit = errors.New("transport: iteration limit exceeded")

// Validate checks that p is a well-formed balanced transportation
// problem and returns a descriptive error otherwise.
func Validate(p Problem) error {
	m, n := len(p.Supply), len(p.Demand)
	if m == 0 || n == 0 {
		return fmt.Errorf("transport: empty problem (%d supplies, %d demands)", m, n)
	}
	if len(p.Cost) != m {
		return fmt.Errorf("transport: cost matrix has %d rows, want %d", len(p.Cost), m)
	}
	var sumS, sumD float64
	for i, s := range p.Supply {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("transport: invalid supply[%d] = %g", i, s)
		}
		sumS += s
	}
	for j, d := range p.Demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("transport: invalid demand[%d] = %g", j, d)
		}
		sumD += d
	}
	for i, row := range p.Cost {
		if len(row) != n {
			return fmt.Errorf("transport: cost row %d has %d columns, want %d", i, len(row), n)
		}
		for j, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("transport: invalid cost[%d][%d] = %g", i, j, c)
			}
		}
	}
	scale := math.Max(sumS, sumD)
	if scale == 0 {
		// Zero total mass: the trivial all-zero flow is optimal, let
		// the solvers handle it.
		return nil
	}
	if math.Abs(sumS-sumD)/scale > MassTolerance {
		return fmt.Errorf("transport: unbalanced problem: total supply %g, total demand %g", sumS, sumD)
	}
	return nil
}

// Solve solves p with the transportation simplex and falls back to the
// successive-shortest-path solver if the simplex exceeds its iteration
// budget. This is the entry point the rest of the library uses.
func Solve(p Problem) (*Solution, error) {
	sol, err := SolveSimplex(p)
	if err != nil {
		if errors.Is(err, ErrIterationLimit) {
			return SolveSSP(p)
		}
		return nil, err
	}
	return sol, nil
}

// objective computes sum_ij cost_ij * flow_ij.
func objective(cost, flow [][]float64) float64 {
	var total float64
	for i, row := range flow {
		crow := cost[i]
		for j, f := range row {
			if f != 0 {
				total += crow[j] * f
			}
		}
	}
	return total
}

// CheckFeasible verifies that flow satisfies the constraints of p up to
// tol (absolute per row/column). It is exported for use in tests and in
// the library's paranoid verification mode.
func CheckFeasible(p Problem, flow [][]float64, tol float64) error {
	m, n := len(p.Supply), len(p.Demand)
	if len(flow) != m {
		return fmt.Errorf("transport: flow has %d rows, want %d", len(flow), m)
	}
	colSum := make([]float64, n)
	for i, row := range flow {
		if len(row) != n {
			return fmt.Errorf("transport: flow row %d has %d columns, want %d", i, len(row), n)
		}
		var rowSum float64
		for j, f := range row {
			if f < -tol {
				return fmt.Errorf("transport: negative flow[%d][%d] = %g", i, j, f)
			}
			rowSum += f
			colSum[j] += f
		}
		if math.Abs(rowSum-p.Supply[i]) > tol {
			return fmt.Errorf("transport: row %d ships %g, supply is %g", i, rowSum, p.Supply[i])
		}
	}
	for j, cs := range colSum {
		if math.Abs(cs-p.Demand[j]) > tol {
			return fmt.Errorf("transport: column %d receives %g, demand is %g", j, cs, p.Demand[j])
		}
	}
	return nil
}

// CheckOptimal verifies a simplex solution via strong duality: the
// duals must be feasible (u_i + v_j <= c_ij everywhere up to tol) and
// the dual objective sum_i supply_i*u_i + sum_j demand_j*v_j must match
// the primal objective. A solution passing both checks is provably
// optimal irrespective of how it was computed.
func CheckOptimal(p Problem, sol *Solution, tol float64) error {
	if sol.DualU == nil || sol.DualV == nil {
		return errors.New("transport: solution carries no duals")
	}
	if err := CheckFeasible(p, sol.Flow, tol); err != nil {
		return err
	}
	for i, u := range sol.DualU {
		for j, v := range sol.DualV {
			if u+v > p.Cost[i][j]+tol {
				return fmt.Errorf("transport: infeasible dual u[%d]+v[%d] = %g > cost %g", i, j, u+v, p.Cost[i][j])
			}
		}
	}
	var dual float64
	for i, u := range sol.DualU {
		dual += p.Supply[i] * u
	}
	for j, v := range sol.DualV {
		dual += p.Demand[j] * v
	}
	if math.Abs(dual-sol.Objective) > tol*(1+math.Abs(sol.Objective)) {
		return fmt.Errorf("transport: duality gap: primal %g, dual %g", sol.Objective, dual)
	}
	return nil
}
