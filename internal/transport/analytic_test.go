package transport

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAnalytic2x2 checks the solver against the closed form of the
// 2x2 balanced transportation problem: the flow on cell (0,0) is a
// single free variable t in [max(0, a+b-1), min(a, b)] (supplies (a,
// 1-a), demands (b, 1-b)), and the objective is linear in t, so the
// optimum sits at whichever interval end the cost gradient favors.
func TestAnalytic2x2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()
		b := rng.Float64()
		c := [][]float64{
			{rng.Float64() * 5, rng.Float64() * 5},
			{rng.Float64() * 5, rng.Float64() * 5},
		}
		// Objective as a function of t = flow(0,0):
		// t*c00 + (a-t)*c01 + (b-t)*c10 + (1-a-b+t)*c11
		// = t*(c00 - c01 - c10 + c11) + const.
		lo := math.Max(0, a+b-1)
		hi := math.Min(a, b)
		grad := c[0][0] - c[0][1] - c[1][0] + c[1][1]
		tOpt := hi
		if grad > 0 {
			tOpt = lo
		}
		want := tOpt*c[0][0] + (a-tOpt)*c[0][1] + (b-tOpt)*c[1][0] + (1-a-b+tOpt)*c[1][1]

		sol, err := SolveSimplex(Problem{
			Supply: []float64{a, 1 - a},
			Demand: []float64{b, 1 - b},
			Cost:   c,
		})
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalytic1xN: with a single supply row the flow is forced
// (f[0][j] = demand[j]), so the objective is the demand-weighted cost.
func TestAnalytic1xN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		demand := make([]float64, n)
		var sum float64
		for j := range demand {
			demand[j] = rng.Float64()
			sum += demand[j]
		}
		for j := range demand {
			demand[j] /= sum
		}
		cost := make([][]float64, 1)
		cost[0] = make([]float64, n)
		var want float64
		for j := range cost[0] {
			cost[0][j] = rng.Float64() * 3
			want += demand[j] * cost[0][j]
		}
		sol, err := SolveSimplex(Problem{Supply: []float64{1}, Demand: demand, Cost: cost})
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticAssignment: with uniform supplies/demands of 1/d and a
// permutation-structured cost matrix (zero on a random permutation,
// one elsewhere), the optimum ships everything along the permutation
// at cost zero.
func TestAnalyticAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(10)
		perm := rng.Perm(d)
		cost := make([][]float64, d)
		mass := make([]float64, d)
		for i := range cost {
			cost[i] = make([]float64, d)
			for j := range cost[i] {
				if perm[i] != j {
					cost[i][j] = 1
				}
			}
			mass[i] = 1 / float64(d)
		}
		sol, err := SolveSimplex(Problem{Supply: mass, Demand: mass, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective > 1e-10 {
			t.Fatalf("trial %d: objective %g, want 0 (perfect matching exists)", trial, sol.Objective)
		}
	}
}

// TestAnalyticEarthLine: EMD on a line with |i-j| cost equals the L1
// distance between the cumulative distribution functions — a classic
// closed form used widely in 1-D optimal transport.
func TestAnalyticEarthLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(10)
		x := make([]float64, d)
		y := make([]float64, d)
		var sx, sy float64
		for i := 0; i < d; i++ {
			x[i], y[i] = rng.Float64(), rng.Float64()
			sx += x[i]
			sy += y[i]
		}
		for i := 0; i < d; i++ {
			x[i] /= sx
			y[i] /= sy
		}
		cost := make([][]float64, d)
		for i := range cost {
			cost[i] = make([]float64, d)
			for j := range cost[i] {
				cost[i][j] = math.Abs(float64(i - j))
			}
		}
		var want, cumX, cumY float64
		for i := 0; i < d-1; i++ {
			cumX += x[i]
			cumY += y[i]
			want += math.Abs(cumX - cumY)
		}
		sol, err := SolveSimplex(Problem{Supply: x, Demand: y, Cost: cost})
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
