package transport

import (
	"fmt"
	"math"
)

// SolveSSP solves p with a successive-shortest-path min-cost-flow
// algorithm over the bipartite residual graph, using Johnson potentials
// so every Dijkstra run sees non-negative reduced costs. It is slower
// than the simplex on large instances but entirely independent of it,
// which makes it a valuable cross-check; Solve also uses it as a
// fallback when the simplex hits its iteration cap.
func SolveSSP(p Problem) (*Solution, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	m, n := len(p.Supply), len(p.Demand)
	total := m + n
	flow := newMatrix(m, n)

	remS := append([]float64(nil), p.Supply...)
	remD := append([]float64(nil), p.Demand...)
	var remaining float64
	for _, s := range remS {
		remaining += s
	}
	var scale float64
	for _, row := range p.Cost {
		for _, c := range row {
			if c > scale {
				scale = c
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	massTol := 1e-12 * math.Max(1, remaining)

	// Potentials: pi[0..m-1] rows, pi[m..m+n-1] columns. Initializing
	// column potentials to the cheapest incoming cost makes all forward
	// reduced costs non-negative before any flow exists.
	pi := make([]float64, total)
	for j := 0; j < n; j++ {
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if p.Cost[i][j] < best {
				best = p.Cost[i][j]
			}
		}
		pi[m+j] = best
	}

	dist := make([]float64, total)
	done := make([]bool, total)
	prev := make([]int32, total)

	// Each augmentation exhausts a row, a column, or a residual arc;
	// the budget below is far beyond what balanced instances need.
	maxIter := 50 * (m*n + total + 10)
	iter := 0
	for remaining > massTol {
		if iter++; iter > maxIter {
			return nil, fmt.Errorf("transport: ssp on %dx%d problem: %w", m, n, ErrIterationLimit)
		}
		// Dense Dijkstra from a virtual source connected to every row
		// with remaining supply.
		for v := 0; v < total; v++ {
			dist[v] = math.Inf(1)
			done[v] = false
			prev[v] = -1
		}
		for i := 0; i < m; i++ {
			if remS[i] > massTol {
				dist[i] = 0
				prev[i] = int32(i)
			}
		}
		target := -1
		for {
			u := -1
			best := math.Inf(1)
			for v := 0; v < total; v++ {
				if !done[v] && dist[v] < best {
					best = dist[v]
					u = v
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			if u >= m && remD[u-m] > massTol {
				target = u
				break
			}
			if u < m {
				// Forward arcs row u -> every column.
				row := p.Cost[u]
				for j := 0; j < n; j++ {
					rc := row[j] + pi[u] - pi[m+j]
					if rc < 0 {
						rc = 0 // guard against rounding drift
					}
					if d := dist[u] + rc; d < dist[m+j] {
						dist[m+j] = d
						prev[m+j] = int32(u)
					}
				}
			} else {
				// Backward arcs column -> rows with positive flow.
				j := u - m
				for i := 0; i < m; i++ {
					if flow[i][j] <= massTol {
						continue
					}
					rc := -p.Cost[i][j] + pi[u] - pi[i]
					if rc < 0 {
						rc = 0
					}
					if d := dist[u] + rc; d < dist[i] {
						dist[i] = d
						prev[i] = int32(u)
					}
				}
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("transport: ssp found no augmenting path with %g mass remaining", remaining)
		}

		// Determine the bottleneck along source-row .. target-column.
		amount := remD[target-m]
		for v := int32(target); int(v) != int(prev[v]); v = prev[v] {
			u := prev[v]
			if u < int32(m) && v >= int32(m) {
				// forward arc: unconstrained
			} else {
				// backward arc column u -> row v
				if f := flow[v][int(u)-m]; f < amount {
					amount = f
				}
			}
			if int(u) == int(prev[u]) {
				if remS[u] < amount {
					amount = remS[u]
				}
			}
		}
		// Apply the augmentation.
		for v := int32(target); int(v) != int(prev[v]); v = prev[v] {
			u := prev[v]
			if u < int32(m) && v >= int32(m) {
				flow[u][int(v)-m] += amount
			} else {
				flow[v][int(u)-m] -= amount
				if flow[v][int(u)-m] < 0 {
					flow[v][int(u)-m] = 0
				}
			}
		}
		var srcRow int32
		for v := int32(target); ; v = prev[v] {
			if int(v) == int(prev[v]) {
				srcRow = v
				break
			}
		}
		remS[srcRow] -= amount
		if remS[srcRow] < 0 {
			remS[srcRow] = 0
		}
		remD[target-m] -= amount
		if remD[target-m] < 0 {
			remD[target-m] = 0
		}
		remaining -= amount

		// Johnson potential update keeps reduced costs non-negative.
		// Tentative labels beyond the target are clamped to the target
		// distance: only settled labels are valid shortest distances.
		dt := dist[target]
		for v := 0; v < total; v++ {
			d := dist[v]
			if d > dt {
				d = dt
			}
			pi[v] += d
		}
		if amount <= massTol {
			// A zero-size augmentation cannot make progress; only
			// numerically empty residues remain.
			break
		}
	}

	return &Solution{
		Objective:  objective(p.Cost, flow),
		Flow:       flow,
		Iterations: iter,
		Method:     "ssp",
	}, nil
}
