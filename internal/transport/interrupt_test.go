package transport

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestSolveValueBoundedIntrNilIdentity checks the contract that a nil
// interrupt flag leaves the bounded kernel byte-identical: same values
// as SolveValueBounded and SolveValue, never Interrupted.
func TestSolveValueBoundedIntrNilIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p := randomProblem(rng, m, n, trial%2 == 0)
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		want, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		res, err := s.SolveValueBoundedIntr(p, math.Inf(1), nil)
		if err != nil {
			t.Fatalf("SolveValueBoundedIntr: %v", err)
		}
		if res.Interrupted {
			t.Fatalf("trial %d: interrupted with nil flag", trial)
		}
		if res.Value != want {
			t.Fatalf("trial %d: intr-nil %v != SolveValue %v", trial, res.Value, want)
		}
	}
}

// TestSolveValueBoundedIntrPreSet checks that a flag set before the
// call stops the solve at entry with the trivial certified bound, and —
// critically — that the interrupted solve leaves the pooled warm caches
// untouched, so the next solve on the same solver is still exact.
func TestSolveValueBoundedIntrPreSet(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		p := randomProblem(rng, m, n, false)
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		// Warm the pool with one optimal solve first, so the interrupted
		// solve below has caches it could (but must not) corrupt.
		want, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		var flag atomic.Bool
		flag.Store(true)
		res, err := s.SolveValueBoundedIntr(p, math.Inf(1), &flag)
		if err != nil {
			t.Fatalf("SolveValueBoundedIntr: %v", err)
		}
		if !res.Interrupted {
			t.Fatalf("trial %d: pre-set flag not observed", trial)
		}
		if res.Aborted {
			t.Fatalf("trial %d: interrupted solve also reports Aborted", trial)
		}
		if res.Value != 0 {
			t.Fatalf("trial %d: entry interrupt bound %v, want the trivial 0", trial, res.Value)
		}
		after, err := s.SolveValueBoundedIntr(p, math.Inf(1), nil)
		if err != nil {
			t.Fatalf("post-interrupt solve: %v", err)
		}
		if after.Interrupted || after.Value != want {
			t.Fatalf("trial %d: post-interrupt solve %v (interrupted=%v), want %v",
				trial, after.Value, after.Interrupted, want)
		}
	}
}

// TestPivotLoopInterruptMidSolve drives the pivot loop directly with
// the flag already set, so the interrupt is observed at the first
// in-loop poll — after duals exist, before optimality. The returned
// bound must be certified: nonnegative and at most the true optimum.
// This is the deterministic form of "a deadline interrupts a running
// solve": no timing races, the poll site itself is exercised.
func TestPivotLoopInterruptMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	positive := 0
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(10)
		n := 3 + rng.Intn(10)
		p := randomProblem(rng, m, n, false)
		opt := solveCold(t, p)

		st := newSimplexState(m, n)
		supply, demand := st.reduceProblem(p)
		st.computeScale()
		st.initVogel(supply, demand)
		st.patchBasis()
		var flag atomic.Bool
		flag.Store(true)
		iter, stop, bound, err := st.pivotLoop(supply, demand, math.Inf(1), &flag)
		if err != nil {
			t.Fatalf("pivotLoop: %v", err)
		}
		if stop != stopInterrupted {
			t.Fatalf("trial %d: stop cause %v, want stopInterrupted", trial, stop)
		}
		if iter != 0 {
			t.Fatalf("trial %d: %d pivots before honoring the interrupt", trial, iter)
		}
		tol := 1e-9 * (1 + math.Abs(opt))
		if bound < 0 || bound > opt+tol {
			t.Fatalf("trial %d: interrupt bound %v outside [0, opt=%v]", trial, bound, opt)
		}
		if bound > 0 {
			positive++
		}
	}
	// The Vogel basis duals are informative, not trivial: the bound
	// should usually be strictly positive.
	if positive == 0 {
		t.Errorf("interrupt bound was 0 on all 100 trials; dual bound is not being used")
	}
}

// TestSolveValueBoundedIntrConcurrent flips the flag from another
// goroutine while large solves run. Whatever the race outcome, the
// result must be sound: interrupted solves carry a certified bound in
// [0, opt], completed solves the exact optimum — and after any mix of
// interrupted and completed solves the pooled solver still answers
// exactly.
func TestSolveValueBoundedIntrConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const m, n = 60, 60
	p := randomProblem(rng, m, n, false)
	s, err := NewSolver(m, n)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	opt := solveCold(t, p)
	tol := 1e-9 * (1 + math.Abs(opt))

	interrupted := 0
	for trial := 0; trial < 40; trial++ {
		var flag atomic.Bool
		done := make(chan struct{})
		delay := time.Duration(trial%8) * 20 * time.Microsecond
		go func() {
			time.Sleep(delay)
			flag.Store(true)
			close(done)
		}()
		res, err := s.SolveValueBoundedIntr(p, math.Inf(1), &flag)
		<-done
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Interrupted {
			interrupted++
			if res.Value < 0 || res.Value > opt+tol {
				t.Fatalf("trial %d: interrupt bound %v outside [0, opt=%v]", trial, res.Value, opt)
			}
		} else if res.Value != opt {
			t.Fatalf("trial %d: completed solve %v != optimum %v", trial, res.Value, opt)
		}
	}
	t.Logf("interrupted %d/40 solves", interrupted)

	after, err := s.SolveValueBoundedIntr(p, math.Inf(1), nil)
	if err != nil {
		t.Fatalf("final solve: %v", err)
	}
	if after.Interrupted || after.Value != opt {
		t.Fatalf("pooled solver degraded after interrupts: %v (interrupted=%v), want %v",
			after.Value, after.Interrupted, opt)
	}
}
