package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Solver is a reusable exact solver for transportation problems of one
// fixed shape. It pools the simplex working state across calls, which
// removes essentially all allocation from the hot path of query
// processing (hundreds of small allocations per solve otherwise).
// SolveValue returns only the optimal objective — the flow matrix
// lives in pooled memory and is never exposed, so reuse is safe. Use
// the package-level Solve/SolveSimplex when flows or duals are needed.
//
// A Solver is safe for concurrent use; each goroutine draws its own
// state from the pool.
type Solver struct {
	m, n int
	pool sync.Pool
}

// NewSolver creates a pooled solver for m x n problems.
func NewSolver(m, n int) (*Solver, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("transport: NewSolver(%d, %d): shape must be positive", m, n)
	}
	s := &Solver{m: m, n: n}
	s.pool.New = func() interface{} { return newSimplexState(m, n) }
	return s, nil
}

// Shape returns the problem shape this solver accepts.
func (s *Solver) Shape() (m, n int) { return s.m, s.n }

// SolveValue solves p and returns the optimal objective. The problem
// shape must match the solver's. On the (rare) simplex iteration-limit
// failure it falls back to the allocating SSP solver so callers always
// get an exact value.
//
// SolveValue validates p and always runs the full dense shape from a
// cold (Vogel) start — the legacy kernel. The returned objective is
// the canonical double-double dual objective of the polished terminal
// basis, so it is bit-identical to what SolveValueBounded reports for
// the same problem when that solve runs to optimality, regardless of
// warm starts or sparsity reduction.
func (s *Solver) SolveValue(p Problem) (float64, error) {
	if len(p.Supply) != s.m || len(p.Demand) != s.n {
		return 0, fmt.Errorf("transport: solver is %dx%d, problem is %dx%d",
			s.m, s.n, len(p.Supply), len(p.Demand))
	}
	if err := Validate(p); err != nil {
		return 0, err
	}
	st := s.pool.Get().(*simplexState)
	_, err := st.run(p, Vogel)
	if err != nil {
		s.pool.Put(st)
		if errors.Is(err, ErrIterationLimit) {
			sol, sspErr := SolveSSP(p)
			if sspErr != nil {
				return 0, sspErr
			}
			return sol.Objective, nil
		}
		return 0, err
	}
	st.polish(p.Supply, p.Demand)
	obj := st.canonicalValue(p.Supply, p.Demand)
	s.pool.Put(st)
	return obj, nil
}

// SolveValueBounded is the threshold-aware form of SolveValue: it
// solves p but may return early — with Aborted=true and a certified
// lower bound as Value — as soon as a dual-feasible solution proves
// the optimum exceeds abortAbove. Pass abortAbove = +Inf to always run
// to optimality.
//
// Three optimizations distinguish it from SolveValue. (1) Zero-mass
// rows and columns are stripped before solving (Rows/Cols report the
// reduced shape), which changes nothing about the optimum. (2) The
// pooled state caches the basis of its previous optimal solve and
// re-enters from it; dual feasibility of a basis depends only on the
// cost matrix, which is fixed per Solver, so this is a principled
// restart and falls back to Vogel when infeasible-for-the-new-
// marginals beyond repair. (3) After each dual recomputation a
// feasibility-repaired dual objective is evaluated as a certified
// lower bound (weak duality) against abortAbove.
//
// The inputs are trusted — no validation is performed; callers own the
// marginals (non-negative, balanced) and the cost matrix was vetted at
// NewSolver time by the usual constructors. When the solve completes,
// Value is bit-identical to SolveValue's for the same problem.
func (s *Solver) SolveValueBounded(p Problem, abortAbove float64) (BoundedResult, error) {
	return s.SolveValueBoundedIntr(p, abortAbove, nil)
}

// SolveValueBoundedIntr is SolveValueBounded with a cooperative
// interrupt: when intr is non-nil it is polled once per pivot
// iteration, and an observed interrupt stops the solve within one
// pivot's worth of work. The result then carries Interrupted=true and
// Value is a certified lower bound on the optimum by weak duality
// (possibly 0 when the interrupt was observed before any pivoting).
// Interrupted solves never update the pooled warm-start caches, so
// later solves are unaffected. A nil intr is byte-identical to
// SolveValueBounded.
func (s *Solver) SolveValueBoundedIntr(p Problem, abortAbove float64, intr *atomic.Bool) (BoundedResult, error) {
	if len(p.Supply) != s.m || len(p.Demand) != s.n {
		return BoundedResult{}, fmt.Errorf("transport: solver is %dx%d, problem is %dx%d",
			s.m, s.n, len(p.Supply), len(p.Demand))
	}
	st := s.pool.Get().(*simplexState)
	res, err := st.solveBounded(p, abortAbove, intr)
	s.pool.Put(st)
	if err != nil {
		if errors.Is(err, ErrIterationLimit) {
			sol, sspErr := SolveSSP(p)
			if sspErr != nil {
				return BoundedResult{}, sspErr
			}
			return BoundedResult{Value: sol.Objective, Rows: res.Rows, Cols: res.Cols}, nil
		}
		return BoundedResult{}, err
	}
	return res, nil
}
