package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Solver is a reusable exact solver for transportation problems of one
// fixed shape. It pools the simplex working state across calls, which
// removes essentially all allocation from the hot path of query
// processing (hundreds of small allocations per solve otherwise).
// SolveValue returns only the optimal objective — the flow matrix
// lives in pooled memory and is never exposed, so reuse is safe. Use
// the package-level Solve/SolveSimplex when flows or duals are needed.
//
// A Solver is safe for concurrent use; each goroutine draws its own
// state from the pool.
type Solver struct {
	m, n int
	pool sync.Pool
}

// NewSolver creates a pooled solver for m x n problems.
func NewSolver(m, n int) (*Solver, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("transport: NewSolver(%d, %d): shape must be positive", m, n)
	}
	s := &Solver{m: m, n: n}
	s.pool.New = func() interface{} { return newSimplexState(m, n) }
	return s, nil
}

// Shape returns the problem shape this solver accepts.
func (s *Solver) Shape() (m, n int) { return s.m, s.n }

// SolveValue solves p and returns the optimal objective. The problem
// shape must match the solver's. On the (rare) simplex iteration-limit
// failure it falls back to the allocating SSP solver so callers always
// get an exact value.
func (s *Solver) SolveValue(p Problem) (float64, error) {
	if len(p.Supply) != s.m || len(p.Demand) != s.n {
		return 0, fmt.Errorf("transport: solver is %dx%d, problem is %dx%d",
			s.m, s.n, len(p.Supply), len(p.Demand))
	}
	if err := Validate(p); err != nil {
		return 0, err
	}
	st := s.pool.Get().(*simplexState)
	_, err := st.run(p, Vogel)
	if err != nil {
		s.pool.Put(st)
		if errors.Is(err, ErrIterationLimit) {
			sol, sspErr := SolveSSP(p)
			if sspErr != nil {
				return 0, sspErr
			}
			return sol.Objective, nil
		}
		return 0, err
	}
	obj := objective(p.Cost, st.flow)
	s.pool.Put(st)
	return obj, nil
}
