package transport

import (
	"math"
	"math/rand"
	"testing"
)

// TestRobustnessAllZeroCosts: any feasible flow is optimal at cost 0.
func TestRobustnessAllZeroCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 10, 10, false)
	for i := range p.Cost {
		for j := range p.Cost[i] {
			p.Cost[i][j] = 0
		}
	}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
	if err := CheckFeasible(p, sol.Flow, 1e-9); err != nil {
		t.Error(err)
	}
}

// TestRobustnessUniformCosts: with every cost equal to c the objective
// is exactly c (total mass 1 moves at cost c regardless of routing).
func TestRobustnessUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 8, 12, true)
	const c = 3.75
	for i := range p.Cost {
		for j := range p.Cost[i] {
			p.Cost[i][j] = c
		}
	}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-c) > 1e-9 {
		t.Errorf("objective = %g, want %g", sol.Objective, c)
	}
}

// TestRobustnessExtremeMagnitudes: costs spanning 1e-12 .. 1e12 must
// not break the relative tolerances.
func TestRobustnessExtremeMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 8, 8, false)
		scale := math.Pow(10, float64(rng.Intn(25)-12))
		for i := range p.Cost {
			for j := range p.Cost[i] {
				p.Cost[i][j] *= scale
			}
		}
		a, err := SolveSimplex(p)
		if err != nil {
			t.Fatalf("trial %d (scale %g): %v", trial, scale, err)
		}
		b, err := SolveSSP(p)
		if err != nil {
			t.Fatalf("trial %d ssp: %v", trial, err)
		}
		if diff := math.Abs(a.Objective - b.Objective); diff > 1e-8*scale {
			t.Fatalf("trial %d (scale %g): simplex %g vs ssp %g", trial, scale, a.Objective, b.Objective)
		}
		if err := CheckOptimal(p, a, 1e-8*math.Max(1, scale)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestRobustnessTinyMasses: histograms with masses at the float
// resolution edge (1e-15 entries next to ~1 entries).
func TestRobustnessTinyMasses(t *testing.T) {
	supply := []float64{1 - 3e-15, 1e-15, 1e-15, 1e-15}
	demand := []float64{1e-15, 1 - 3e-15, 1e-15, 1e-15}
	p := Problem{Supply: supply, Demand: demand, Cost: manhattanCost(4)}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	// Essentially all mass moves one step.
	if math.Abs(sol.Objective-1) > 1e-9 {
		t.Errorf("objective = %g, want ~1", sol.Objective)
	}
}

// TestRobustnessManyEqualCosts: ties everywhere stress the
// deterministic pivot selection; the solver must terminate and agree
// with SSP.
func TestRobustnessManyEqualCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 12, 12, true)
		for i := range p.Cost {
			for j := range p.Cost[i] {
				// Costs from a tiny alphabet {0, 1, 2}.
				p.Cost[i][j] = float64(rng.Intn(3))
			}
		}
		a, err := SolveSimplex(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := SolveSSP(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if diff := math.Abs(a.Objective - b.Objective); diff > 1e-9 {
			t.Fatalf("trial %d: %g vs %g", trial, a.Objective, b.Objective)
		}
	}
}

// TestRobustnessSingleActiveCell: one positive supply meeting one
// positive demand across many zero bins.
func TestRobustnessSingleActiveCell(t *testing.T) {
	const d = 20
	supply := make([]float64, d)
	demand := make([]float64, d)
	supply[3] = 1
	demand[17] = 1
	sol, err := SolveSimplex(Problem{Supply: supply, Demand: demand, Cost: manhattanCost(d)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-14) > 1e-12 {
		t.Errorf("objective = %g, want 14", sol.Objective)
	}
}

// TestRobustnessDeterministicFlows: the simplex must return
// bit-identical flows for repeated solves of the same instance (the
// FB reduction relies on stable flow matrices).
func TestRobustnessDeterministicFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomProblem(rng, 10, 10, true)
	a, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flow {
		for j := range a.Flow[i] {
			if a.Flow[i][j] != b.Flow[i][j] {
				t.Fatalf("flows differ at (%d,%d)", i, j)
			}
		}
	}
}
