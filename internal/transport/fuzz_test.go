package transport

import (
	"math"
	"testing"
)

// decodeProblem derives a valid balanced transportation problem from
// raw fuzz bytes: the first two bytes pick the shape (1..8 x 1..8), the
// rest feed supplies, demands and costs as values in [0, 1]. Supplies
// and demands are normalized to total mass 1, mirroring the histogram
// setting of the EMD. Returns ok = false when the bytes cannot yield a
// valid instance (e.g. all-zero masses).
func decodeProblem(data []byte) (Problem, bool) {
	if len(data) < 2 {
		return Problem{}, false
	}
	m := int(data[0])%8 + 1
	n := int(data[1])%8 + 1
	data = data[2:]
	need := m + n + m*n
	if len(data) < need {
		return Problem{}, false
	}
	next := func() float64 {
		v := float64(data[0]) / 255
		data = data[1:]
		return v
	}
	normalize := func(vals []float64) bool {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if sum < 1e-9 {
			return false
		}
		for i := range vals {
			vals[i] /= sum
		}
		return true
	}
	p := Problem{
		Supply: make([]float64, m),
		Demand: make([]float64, n),
		Cost:   make([][]float64, m),
	}
	for i := range p.Supply {
		p.Supply[i] = next()
	}
	for j := range p.Demand {
		p.Demand[j] = next()
	}
	if !normalize(p.Supply) || !normalize(p.Demand) {
		return Problem{}, false
	}
	for i := range p.Cost {
		p.Cost[i] = make([]float64, n)
		for j := range p.Cost[i] {
			p.Cost[i][j] = next()
		}
	}
	return p, true
}

// FuzzTransportSolve checks the solver's contracts on arbitrary valid
// instances: the flow must be feasible, simplex solutions must carry a
// dual optimality certificate, the independent SSP solver must agree on
// the objective, and the objective must be invariant under transposing
// the problem (an LP symmetry no correct solver can break).
func FuzzTransportSolve(f *testing.F) {
	// Structured seeds: 1x1, square with zero diagonal, rectangular,
	// and a degenerate instance with equal masses everywhere.
	f.Add([]byte{0, 0, 128, 128, 64})
	f.Add([]byte{2, 2, 200, 55, 10, 245, 0, 128, 128, 0, 77, 11, 99, 200})
	f.Add([]byte{1, 3, 128, 128, 85, 85, 86, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 3, 64, 64, 64, 64, 64, 64, 64, 64, 0, 1, 2, 1, 0, 1, 2, 1, 0, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := decodeProblem(data)
		if !ok {
			t.Skip()
		}
		if err := Validate(p); err != nil {
			t.Fatalf("decoded problem invalid: %v", err)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		const tol = 1e-7
		if err := CheckFeasible(p, sol.Flow, tol); err != nil {
			t.Fatalf("infeasible flow: %v", err)
		}
		if sol.Method == "simplex" {
			if err := CheckOptimal(p, sol, tol); err != nil {
				t.Fatalf("simplex solution fails duality certificate: %v", err)
			}
		}
		// Independent solver cross-check.
		ssp, err := SolveSSP(p)
		if err != nil {
			t.Fatalf("SolveSSP: %v", err)
		}
		if err := CheckFeasible(p, ssp.Flow, tol); err != nil {
			t.Fatalf("infeasible SSP flow: %v", err)
		}
		if math.Abs(sol.Objective-ssp.Objective) > tol*(1+math.Abs(sol.Objective)) {
			t.Fatalf("solver disagreement: simplex %g, ssp %g", sol.Objective, ssp.Objective)
		}
		// Bounded kernel: at +Inf it must run to optimality and agree
		// with the reference solvers; below the optimum it may abort,
		// but only on a sound certificate.
		solver, err := NewSolver(len(p.Supply), len(p.Demand))
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		full, err := solver.SolveValueBounded(p, math.Inf(1))
		if err != nil {
			t.Fatalf("SolveValueBounded(+Inf): %v", err)
		}
		if full.Aborted {
			t.Fatalf("aborted with abortAbove = +Inf")
		}
		if math.Abs(full.Value-sol.Objective) > tol*(1+math.Abs(sol.Objective)) {
			t.Fatalf("bounded kernel disagreement: %g vs %g", full.Value, sol.Objective)
		}
		bounded, err := solver.SolveValueBounded(p, 0.5*full.Value)
		if err != nil {
			t.Fatalf("SolveValueBounded(opt/2): %v", err)
		}
		if bounded.Aborted {
			if bounded.Value > full.Value+tol*(1+math.Abs(full.Value)) {
				t.Fatalf("certified bound %g exceeds optimum %g", bounded.Value, full.Value)
			}
			if bounded.Value <= 0.5*full.Value {
				t.Fatalf("aborted with bound %g at or below threshold %g", bounded.Value, 0.5*full.Value)
			}
		} else if bounded.Value != full.Value {
			t.Fatalf("completed bounded solve %v != %v", bounded.Value, full.Value)
		}

		// Transposition symmetry: moving demand to supply over the
		// transposed cost is the same LP.
		tp := Problem{
			Supply: p.Demand,
			Demand: p.Supply,
			Cost:   make([][]float64, len(p.Demand)),
		}
		for j := range tp.Cost {
			tp.Cost[j] = make([]float64, len(p.Supply))
			for i := range tp.Cost[j] {
				tp.Cost[j][i] = p.Cost[i][j]
			}
		}
		tsol, err := Solve(tp)
		if err != nil {
			t.Fatalf("Solve(transposed): %v", err)
		}
		if math.Abs(sol.Objective-tsol.Objective) > tol*(1+math.Abs(sol.Objective)) {
			t.Fatalf("transposition asymmetry: %g vs %g", sol.Objective, tsol.Objective)
		}
	})
}
