package transport

import (
	"math"
	"sync/atomic"
)

// boundGuard is the relative safety margin subtracted from the
// certified dual bound before it is compared against abortAbove: the
// repaired dual objective is computed in ordinary float64 arithmetic,
// and the guard ensures its rounding error can never certify a
// candidate whose true optimum ties the threshold (sequential KNOP
// accepts ties on the k-th distance, so an abort there would change
// results).
const boundGuard = 1e-9

// polishTol is the reduced-cost threshold of the post-optimality
// polish phase, relative to the cost scale. The float pivot loop stops
// at tolerance 1e-10·scale, so alternate terminal bases can differ in
// exact objective by up to that much; polish pivots on double-double
// reduced costs until every cell prices out above -polishTol·scale,
// which pins all reachable terminal bases to within ~1e-26·scale·mass
// of one another — far below one ulp of the objective. That is what
// makes the canonical objective value independent of the solve path
// (cold vs. warm start, dense vs. reduced shape).
const polishTol = 1e-26

// BoundedResult is the outcome of a threshold-aware solve.
type BoundedResult struct {
	// Value is the exact optimal objective when the solve ran to
	// optimality, or a certified lower bound on it when Aborted or
	// Interrupted (possibly 0, the trivial bound, when the interrupt
	// landed before any duals existed).
	Value float64
	// Aborted reports that the solve stopped early because the
	// certified lower bound exceeded the caller's threshold.
	Aborted bool
	// Interrupted reports that the solve was cancelled cooperatively
	// (the caller's interrupt flag was observed inside the pivot loop).
	// Value is then still a certified lower bound on the optimum by
	// weak duality — just not one that certifies anything about the
	// caller's threshold.
	Interrupted bool
	// WarmStart reports that the solve re-entered the simplex from the
	// cached basis of a previous optimal solve.
	WarmStart bool
	// Rows and Cols are the reduced shape actually solved after
	// stripping zero-mass rows and columns.
	Rows, Cols int
}

// solveBounded runs the threshold-aware kernel: sparsity reduction,
// warm start from the cached previous basis, early abandon against
// abortAbove, and — on optimal completion — the canonical
// double-double objective. Inputs are trusted (not validated).
//
// intr, when non-nil, is a cooperative cancellation flag polled at
// solve entry and once per pivot iteration: setting it makes the solve
// return within one pivot's worth of work, carrying Interrupted=true
// and a certified (possibly trivial) lower bound on the optimum as
// Value. An interrupted solve never touches the warm caches, so later
// solves on the same pooled state stay correct.
func (st *simplexState) solveBounded(p Problem, abortAbove float64, intr *atomic.Bool) (BoundedResult, error) {
	supply, demand := st.reduceProblem(p)
	res := BoundedResult{Rows: st.m, Cols: st.n}
	if st.m == 0 || st.n == 0 {
		// No mass on one side: every feasible flow is empty.
		return res, nil
	}
	st.computeScale()
	if intr != nil && intr.Load() {
		// Cancelled before any work: 0 is the trivial certified bound
		// (costs are non-negative).
		res.Interrupted = true
		return res, nil
	}
	if !math.IsInf(abortAbove, 1) && st.warmV != nil {
		// Pre-simplex abort: price the candidate with the cached duals
		// of the last optimal solve. In refinement workloads the supply
		// side (the query) is fixed, so those duals transfer well and
		// most over-threshold candidates die here for O(m·n) flops
		// instead of a near-full solve.
		if b := st.cachedDualBound(supply, demand) - boundGuard*st.scale; b > abortAbove {
			res.Aborted = true
			res.Value = b
			return res, nil
		}
	}
	res.WarmStart = st.tryWarmStart(supply, demand)
	if !res.WarmStart {
		st.initVogel(supply, demand)
		st.patchBasis()
	}
	_, stop, bound, err := st.pivotLoop(supply, demand, abortAbove, intr)
	if err != nil {
		return res, err
	}
	switch stop {
	case stopAborted:
		res.Aborted = true
		res.Value = bound
		return res, nil
	case stopInterrupted:
		res.Interrupted = true
		res.Value = bound
		return res, nil
	}
	st.polish(supply, demand)
	st.saveWarmBasis()
	st.saveWarmDuals()
	res.Value = st.canonicalValue(supply, demand)
	return res, nil
}

// reduceProblem prepares the state for p with zero-mass rows and
// columns stripped. Zero-mass rows and columns carry zero flow in
// every feasible solution, so removing them leaves the optimum
// unchanged exactly. The dense fast path avoids copying the cost
// matrix. Returns the (possibly reduced) supply and demand slices.
func (st *simplexState) reduceProblem(p Problem) (supply, demand []float64) {
	m, n := len(p.Supply), len(p.Demand)
	mr, nr := 0, 0
	for _, s := range p.Supply {
		if s != 0 {
			mr++
		}
	}
	for _, d := range p.Demand {
		if d != 0 {
			nr++
		}
	}
	if mr == m && nr == n {
		st.prepare(m, n)
		st.cost = p.Cost
		for i := 0; i < m; i++ {
			st.rowMap[i] = int32(i)
			st.rowInv[i] = int32(i)
		}
		for j := 0; j < n; j++ {
			st.colMap[j] = int32(j)
			st.colInv[j] = int32(j)
		}
		return p.Supply, p.Demand
	}

	st.prepare(mr, nr)
	if st.costBacking == nil {
		st.costBacking = make([]float64, st.capM*st.capN)
		st.costRows = make([][]float64, st.capM)
	}
	ri := 0
	for i, s := range p.Supply {
		if s != 0 {
			st.rowMap[ri] = int32(i)
			st.rowInv[i] = int32(ri)
			st.rsBuf[ri] = s
			ri++
		} else {
			st.rowInv[i] = -1
		}
	}
	ci := 0
	for j, d := range p.Demand {
		if d != 0 {
			st.colMap[ci] = int32(j)
			st.colInv[j] = int32(ci)
			st.rdBuf[ci] = d
			ci++
		} else {
			st.colInv[j] = -1
		}
	}
	for i := 0; i < mr; i++ {
		row := st.costBacking[i*nr : (i+1)*nr : (i+1)*nr]
		src := p.Cost[st.rowMap[i]]
		for j := 0; j < nr; j++ {
			row[j] = src[st.colMap[j]]
		}
		st.costRows[i] = row
	}
	st.cost = st.costRows[:mr]
	return st.rsBuf[:mr], st.rdBuf[:nr]
}

// tryWarmStart re-enters the simplex from the cached basis of the
// previous optimal solve. Cached cells that fall on stripped rows or
// columns are dropped, patchBasis completes the remaining forest to a
// spanning tree, and peelFlows recomputes the tree flows. A basis that
// turns out primal-infeasible for the new marginals is repaired with
// dual-simplex pivots (dualRepair); if that fails, the basis is wiped
// and the caller falls back to Vogel.
func (st *simplexState) tryWarmStart(supply, demand []float64) bool {
	if len(st.warm) == 0 {
		return false
	}
	placed := 0
	for _, cell := range st.warm {
		i := st.rowInv[int(cell)/st.capN]
		j := st.colInv[int(cell)%st.capN]
		if i < 0 || j < 0 {
			continue
		}
		st.addBasic(int(i), int(j))
		placed++
	}
	if placed == 0 {
		return false
	}
	st.patchBasis()
	if st.peelFlows(supply, demand) {
		return true
	}
	// Repair pays off only when the cached tree is nearly feasible; a
	// basis with many negative-flow cells is cheaper to rebuild from
	// scratch than to fix one dual-simplex swap at a time.
	if st.peelNeg <= 4+(st.m+st.n)/8 && st.dualRepair(supply, demand) {
		return true
	}
	st.clearBasis()
	return false
}

// dualRepair restores primal feasibility of the warm-started tree by
// dual-simplex pivots. The cached basis was optimal for the previous
// marginals under the same cost matrix, so it is (near-)dual-feasible
// for the new ones: only its flows are wrong. Each round removes the
// most negative-flow basic cell — splitting the tree into a component
// S (containing the cell's row) and its complement — and reconnects
// the cut with the minimum-reduced-cost cell of the opposite
// orientation (row outside S, column inside S), which is exactly the
// dual-simplex ratio rule and keeps the duals feasible. Patched or
// partially dropped bases may have lost exact dual feasibility, in
// which case the rounds still make primal progress in practice and any
// residual suboptimality is cleaned up by the caller's primal pivot
// loop; the round cap bounds pathological cases, which then fall back
// to a cold start.
func (st *simplexState) dualRepair(supply, demand []float64) bool {
	m, n := st.m, st.n
	var mass float64
	for _, s := range supply {
		mass += s
	}
	negTol := -1e-9 * (1 + mass)
	// Each round sweeps all currently negative cells against one dual
	// recomputation (flows and duals go stale after the first swap of a
	// round, degrading later swaps to a good heuristic — the primal
	// pivot loop cleans up any resulting suboptimality), then re-peels
	// once. Batching the swaps this way keeps the expensive O(m·n)
	// peel off the per-swap path; negatives shrink fast, so a handful
	// of rounds settles everything repairable.
	const maxRounds = 6
	for round := 0; round < maxRounds; round++ {
		st.computeDuals()
		fixed := false
		for i := 0; i < m; i++ {
			row := st.flow[i]
			base := i * n
			for j := 0; j < n; j++ {
				if !st.basic[base+j] || row[j] >= negTol {
					continue
				}
				st.removeBasic(i, j)
				row[j] = 0
				// Mark the component now containing row i.
				inS := st.peelDone[:m+n]
				for x := range inS {
					inS[x] = false
				}
				st.queue = st.queue[:0]
				st.queue = append(st.queue, int32(i))
				inS[i] = true
				for head := 0; head < len(st.queue); head++ {
					for _, y := range st.adj[st.queue[head]] {
						if !inS[y] {
							inS[y] = true
							st.queue = append(st.queue, y)
						}
					}
				}
				// Entering cell: rows outside S, columns inside S —
				// the opposite orientation across the cut — with
				// minimal reduced cost (lowest index on ties, for
				// determinism).
				ei, ej := -1, -1
				best := math.Inf(1)
				for p := 0; p < m; p++ {
					if inS[p] {
						continue
					}
					crow := st.cost[p]
					cbase := p * n
					for q := 0; q < n; q++ {
						if !inS[m+q] || st.basic[cbase+q] {
							continue
						}
						if rc := crow[q] - st.u[p] - st.v[q]; rc < best {
							best = rc
							ei, ej = p, q
						}
					}
				}
				if ei < 0 {
					// The cut has no reverse edge; the negative flow
					// cannot be rerouted.
					return false
				}
				st.addBasic(ei, ej)
				fixed = true
			}
		}
		if st.peelFlows(supply, demand) {
			return true
		}
		if !fixed {
			return false
		}
	}
	return false
}

// peelFlows recomputes the basic flows implied by the current spanning
// tree and the given marginals by repeatedly peeling leaves: a leaf
// node's residual mass determines the flow on its single tree edge.
// Tiny negative flows (float cancellation on degenerate cells) are
// clamped to zero; materially negative flows are recorded as-is and
// reported by returning false — the basis is not primal-feasible. The
// number of materially negative cells is left in st.peelNeg as a
// repairability signal for tryWarmStart.
func (st *simplexState) peelFlows(supply, demand []float64) bool {
	m, n := st.m, st.n
	total := m + n
	res := st.peelRes[:total]
	deg := st.peelDeg[:total]
	done := st.peelDone[:total]
	var mass float64
	for i := 0; i < m; i++ {
		res[i] = supply[i]
		mass += supply[i]
	}
	for j := 0; j < n; j++ {
		res[m+j] = demand[j]
	}
	negTol := -1e-9 * (1 + mass)
	st.peelNeg = 0
	for x := 0; x < total; x++ {
		deg[x] = int32(len(st.adj[x]))
		done[x] = false
	}
	// Zero the tree edges first: a failed earlier peel may have left
	// partial flows behind. Non-basic cells are already zero — prepare
	// clears the matrix, pivot zeroes the leaving cell, and dualRepair
	// zeroes every cell it removes — so walking the adjacency lists
	// (O(m+n)) covers every possibly-nonzero entry without the O(m·n)
	// full sweep.
	for i := 0; i < m; i++ {
		row := st.flow[i]
		for _, y := range st.adj[i] {
			row[int(y)-m] = 0
		}
	}
	st.queue = st.queue[:0]
	for x := 0; x < total; x++ {
		if deg[x] == 1 {
			st.queue = append(st.queue, int32(x))
		}
	}
	feasible := true
	for head := 0; head < len(st.queue); head++ {
		x := st.queue[head]
		if done[x] {
			continue
		}
		var nb int32 = -1
		for _, y := range st.adj[x] {
			if !done[y] {
				nb = y
				break
			}
		}
		if nb < 0 {
			continue // root: absorbs the (near-zero) closing residual
		}
		f := res[x]
		if f < 0 {
			if f >= negTol {
				f = 0
			} else {
				feasible = false
				st.peelNeg++
			}
		}
		var i, j int32
		if int(x) < m {
			i, j = x, nb-int32(m)
		} else {
			i, j = nb, x-int32(m)
		}
		st.flow[i][j] = f
		res[nb] -= res[x]
		done[x] = true
		deg[nb]--
		if deg[nb] == 1 {
			st.queue = append(st.queue, nb)
		}
	}
	return feasible
}

// clearBasis wipes the basis, adjacency lists and flows at the current
// logical shape (warm-start failure path).
func (st *simplexState) clearBasis() {
	cells := st.m * st.n
	for c := 0; c < cells; c++ {
		st.basic[c] = false
	}
	for x := 0; x < st.m+st.n; x++ {
		st.adj[x] = st.adj[x][:0]
	}
	for i := 0; i < st.m; i++ {
		row := st.flow[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// saveWarmBasis records the current basis in original coordinates for
// the next solve of this state. Called only on optimal completion, so
// an aborted solve keeps the previous (optimal) cache.
func (st *simplexState) saveWarmBasis() {
	if st.warm == nil {
		st.warm = make([]int32, 0, st.capM+st.capN)
	}
	st.warm = st.warm[:0]
	for i := 0; i < st.m; i++ {
		base := i * st.n
		oi := int(st.rowMap[i]) * st.capN
		for j := 0; j < st.n; j++ {
			if st.basic[base+j] {
				st.warm = append(st.warm, int32(oi+int(st.colMap[j])))
			}
		}
	}
}

// cachedDualBound prices the current (reduced) problem with the column
// potentials cached from the last optimal solve of this state and
// returns the resulting dual objective. Like feasibleDualBound, the
// rows are repaired to u_i = min_j (c_ij - v_j), so the pair is dual
// feasible by construction and the value is a certified lower bound on
// the optimum by weak duality — for any v whatsoever; the cache only
// controls how tight the bound is.
func (st *simplexState) cachedDualBound(supply, demand []float64) float64 {
	// Gather the cached potentials into reduced coordinates (the Vogel
	// scratch vd is free before initialization) to keep the pricing
	// loops free of indirection.
	vloc := st.vd[:st.n]
	for j := 0; j < st.n; j++ {
		vloc[j] = st.warmV[st.colMap[j]]
	}
	var total float64
	for j, d := range demand {
		total += d * vloc[j]
	}
	for i := 0; i < st.m; i++ {
		row := st.cost[i]
		min := math.Inf(1)
		for j, v := range vloc {
			if s := row[j] - v; s < min {
				min = s
			}
		}
		total += supply[i] * min
	}
	return total
}

// saveWarmDuals records the terminal column potentials in original
// coordinates for cachedDualBound. Entries of columns stripped from
// this solve keep whatever older value they carried — staleness cannot
// invalidate the bound, only loosen it. Called only on optimal
// completion, so aborted solves keep pricing against the duals of the
// last finished solve.
func (st *simplexState) saveWarmDuals() {
	if st.warmV == nil {
		st.warmV = make([]float64, st.capN)
	}
	for j := 0; j < st.n; j++ {
		st.warmV[st.colMap[j]] = st.v[j]
	}
}

// feasibleDualBound returns the dual objective of a feasibility-
// repaired copy of the current potentials: keeping the column
// potentials v fixed, each row potential is replaced by the largest
// dual-feasible value u_i = min_j (c_ij - v_j). The pair is dual
// feasible by construction, so by weak duality the returned value
// never exceeds the true optimum — a certified lower bound available
// at every simplex iteration, not just at optimality.
func (st *simplexState) feasibleDualBound(supply, demand []float64) float64 {
	var total float64
	for j := 0; j < st.n; j++ {
		total += demand[j] * st.v[j]
	}
	for i := 0; i < st.m; i++ {
		row := st.cost[i]
		min := math.Inf(1)
		for j := 0; j < st.n; j++ {
			if s := row[j] - st.v[j]; s < min {
				min = s
			}
		}
		total += supply[i] * min
	}
	return total
}

// polish drives the terminal basis to a state whose exact objective is
// pinned to within ~polishTol·scale of the true optimum, making the
// canonical objective path-independent. Two defects of a float-optimal
// basis can move its exact objective by more than one ulp, and polish
// repairs both:
//
//  1. Dual infeasibility: the float pivot loop certifies reduced costs
//     only to 1e-10·scale. Bland's-rule pivots on double-double reduced
//     costs continue until every non-basic cell prices out above
//     -polishTol·scale.
//  2. Exact primal infeasibility: on degenerate instances the float
//     flow updates can leave basic cells whose *exact* tree flow (the
//     unique solution implied by the basis and the marginals) is
//     negative at the ~1e-17 level while the float value looks like
//     harmless noise. Such a basis undercuts the true optimum by
//     flow·(reduced cost of the repair cycle), which alternates in the
//     last ulps between otherwise-equivalent terminal bases — exactly
//     the path-dependence the canonical value must exclude. A
//     double-double leaf peel (exactFlowDeficit) detects these cells
//     and a dual-simplex swap (feasSwap) removes them.
//
// A basis passing both checks is exact-primal-feasible and
// polishTol-dual-feasible, so its exact objective lies in
// [opt, opt + polishTol·scale·mass] — far inside one ulp — for every
// solve path (cold or warm start, dense or reduced shape). Bland's rule
// guarantees termination of phase 1; the overall cap bounds the
// alternation with phase 2.
func (st *simplexState) polish(supply, demand []float64) {
	eta := polishTol * st.scale
	// Float pre-screen: a plain-float reduced cost built from the
	// double-double duals' high parts differs from the exact value by at
	// most a few ulps of the operand magnitudes (~1e-13·scale), so any
	// cell whose float reduced cost clears 1e-7·scale is provably
	// positive in double-double and needs no exact evaluation. The float
	// pivot loop already drove all reduced costs above -1e-10·scale, so
	// only near-degenerate cells — typically a handful — survive the
	// screen.
	screen := 1e-7 * st.scale
	maxPivots := 4*(st.m+st.n) + 16
	for p := 0; p < maxPivots; p++ {
		st.computeDDDuals(0)
		ei, ej := -1, -1
	scan:
		for i := 0; i < st.m; i++ {
			row := st.cost[i]
			base := i * st.n
			uh, ul := st.duHi[i], st.duLo[i]
			for j := 0; j < st.n; j++ {
				if st.basic[base+j] || row[j]-uh-st.dvHi[j] > screen {
					continue
				}
				if rh, _ := ddReducedCost(row[j], uh, ul, st.dvHi[j], st.dvLo[j]); rh < -eta {
					ei, ej = i, j
					break scan
				}
			}
		}
		if ei < 0 {
			fi, fj := st.exactFlowDeficit(supply, demand)
			if fi < 0 {
				return
			}
			if !st.feasSwap(fi, fj) {
				return
			}
			continue
		}
		st.pivot(ei, ej)
	}
}

// feasTol is the exact-flow negativity threshold of the polish phase,
// relative to 1+mass: deficits below it are double-double arithmetic
// noise (~2^-100), anything above is a real infeasibility of the basis.
const feasTol = 1e-25

// exactFlowDeficit peels the tree flows in double-double arithmetic and
// returns the basic cell with the most negative exact flow, or (-1,-1)
// when the basis is exact-primal-feasible. The float peel cannot see
// these cells: their float flow is ordinary rounding noise around zero,
// but the exact flow implied by the basis and the marginals is a real
// negative quantity that skews the exact objective.
//
// The peel is rooted at the canonical anchor node (the first row with
// nonzero supply — the same node canonicalValue anchors the duals at).
// Float-normalized marginals carry a tiny imbalance δ = Σs - Σd ≠ 0
// that some node of the tree must absorb, and the dual-objective
// identity charges that absorption to the node where u = 0: the anchor.
// Rooting the peel anywhere else would validate the flows of a
// different δ-routing than the one the canonical value prices, leaving
// a basis-dependent δ·u_root wobble in the last ulps.
func (st *simplexState) exactFlowDeficit(supply, demand []float64) (int, int) {
	m, n := st.m, st.n
	total := m + n
	deg := st.peelDeg[:total]
	done := st.peelDone[:total]
	resHi := st.peelResHi[:total]
	resLo := st.peelResLo[:total]
	anchor := 0
	var mass float64
	for i := 0; i < m; i++ {
		resHi[i], resLo[i] = supply[i], 0
		mass += supply[i]
	}
	for i, s := range supply {
		if s != 0 {
			anchor = i
			break
		}
	}
	for j := 0; j < n; j++ {
		resHi[m+j], resLo[m+j] = demand[j], 0
	}
	for x := 0; x < total; x++ {
		deg[x] = int32(len(st.adj[x]))
		done[x] = false
	}
	st.queue = st.queue[:0]
	for x := 0; x < total; x++ {
		if deg[x] == 1 && x != anchor {
			st.queue = append(st.queue, int32(x))
		}
	}
	worst := -feasTol * (1 + mass)
	wi, wj := -1, -1
	for head := 0; head < len(st.queue); head++ {
		x := st.queue[head]
		if done[x] {
			continue
		}
		var nb int32 = -1
		for _, y := range st.adj[x] {
			if !done[y] {
				nb = y
				break
			}
		}
		if nb < 0 {
			continue
		}
		if resHi[x] < worst {
			worst = resHi[x]
			if int(x) < m {
				wi, wj = int(x), int(nb)-m
			} else {
				wi, wj = int(nb), int(x)-m
			}
		}
		resHi[nb], resLo[nb] = ddSub(resHi[nb], resLo[nb], resHi[x], resLo[x])
		done[x] = true
		deg[nb]--
		if deg[nb] == 1 && int(nb) != anchor {
			st.queue = append(st.queue, nb)
		}
	}
	return wi, wj
}

// feasSwap removes the exact-negative-flow basic cell (i,j) with a
// dual-simplex swap: the tree splits into the component S containing
// row i and its complement, and the cut is reconnected by the
// minimum-reduced-cost cell oriented to route mass back into S (row
// outside S, column inside S). Choosing the minimum double-double
// reduced cost keeps the basis polishTol-dual-feasible. Returns false
// when no reconnecting cell exists (the negativity then cannot be
// repaired; the caller gives up on it).
func (st *simplexState) feasSwap(i, j int) bool {
	m, n := st.m, st.n
	st.removeBasic(i, j)
	st.flow[i][j] = 0
	inS := st.peelDone[:m+n]
	for x := range inS {
		inS[x] = false
	}
	st.queue = st.queue[:0]
	st.queue = append(st.queue, int32(i))
	inS[i] = true
	for head := 0; head < len(st.queue); head++ {
		for _, y := range st.adj[st.queue[head]] {
			if !inS[y] {
				inS[y] = true
				st.queue = append(st.queue, y)
			}
		}
	}
	ei, ej := -1, -1
	var bestHi, bestLo float64
	first := true
	for p := 0; p < m; p++ {
		if inS[p] {
			continue
		}
		row := st.cost[p]
		base := p * n
		uh, ul := st.duHi[p], st.duLo[p]
		for q := 0; q < n; q++ {
			if !inS[m+q] || st.basic[base+q] {
				continue
			}
			rh, rl := ddReducedCost(row[q], uh, ul, st.dvHi[q], st.dvLo[q])
			if first || rh < bestHi || (rh == bestHi && rl < bestLo) {
				first = false
				bestHi, bestLo = rh, rl
				ei, ej = p, q
			}
		}
	}
	if ei < 0 {
		st.addBasic(i, j)
		return false
	}
	st.addBasic(ei, ej)
	return true
}

// ddSub returns (ah+al) - (bh+bl) as a double-double.
func ddSub(ah, al, bh, bl float64) (hi, lo float64) {
	sh, sl := twoSum(ah, -bh)
	sl += al - bl
	return twoSum(sh, sl)
}

// computeDDDuals solves u_i + v_j = c_ij over the basis tree with
// u_anchor = 0 in double-double arithmetic (same traversal as
// computeDuals, ~2^-104 relative error per step instead of 2^-53).
//
// The anchor matters for the canonical value: supplies and demands are
// float-normalized, so their totals differ by some tiny δ ≠ 0, and the
// dual objective shifts by anchorDual·δ under re-anchoring. Callers
// must therefore anchor at a row that identifies the same original
// node in every solve path — canonicalValue uses the first row with
// nonzero supply, which the sparsity reduction preserves as row 0.
// Reduced costs are anchor-invariant, so polish may pass any row.
func (st *simplexState) computeDDDuals(anchor int) {
	m := st.m
	for i := 0; i < m; i++ {
		st.uSet[i] = false
	}
	for j := 0; j < st.n; j++ {
		st.vSet[j] = false
	}
	st.queue = st.queue[:0]
	st.duHi[anchor], st.duLo[anchor] = 0, 0
	st.uSet[anchor] = true
	st.queue = append(st.queue, int32(anchor))
	for head := 0; head < len(st.queue); head++ {
		node := st.queue[head]
		if int(node) < m {
			i := int(node)
			for _, nb := range st.adj[node] {
				j := int(nb) - m
				if !st.vSet[j] {
					st.dvHi[j], st.dvLo[j] = ddSubFrom(st.cost[i][j], st.duHi[i], st.duLo[i])
					st.vSet[j] = true
					st.queue = append(st.queue, nb)
				}
			}
		} else {
			j := int(node) - m
			for _, nb := range st.adj[node] {
				i := int(nb)
				if !st.uSet[i] {
					st.duHi[i], st.duLo[i] = ddSubFrom(st.cost[i][j], st.dvHi[j], st.dvLo[j])
					st.uSet[i] = true
					st.queue = append(st.queue, nb)
				}
			}
		}
	}
}

// canonicalValue returns the objective of the current basis as the
// double-double dual objective sum_i s_i·u_i + sum_j d_j·v_j. For any
// basis this equals, algebraically, the primal objective of the
// basis's exact basic solution — so unlike a float summation over the
// (rounded) flow matrix it does not depend on the pivoting history,
// and after polish every reachable terminal basis yields the same
// float64. The ~2^-90 absolute error of the double-double evaluation
// is far below one ulp of any representable objective.
func (st *simplexState) canonicalValue(supply, demand []float64) float64 {
	anchor := 0
	for i, s := range supply {
		if s != 0 {
			anchor = i
			break
		}
	}
	st.computeDDDuals(anchor)
	var hi, lo float64
	for i := 0; i < st.m; i++ {
		hi, lo = ddMulAcc(hi, lo, supply[i], st.duHi[i], st.duLo[i])
	}
	for j := 0; j < st.n; j++ {
		hi, lo = ddMulAcc(hi, lo, demand[j], st.dvHi[j], st.dvLo[j])
	}
	v := hi + lo
	if v < 0 {
		// Non-negative costs bound the optimum below by zero; sub-ulp
		// noise can land barely negative.
		return 0
	}
	return v
}

// Double-double helpers: a value is represented as an unevaluated sum
// hi+lo with |lo| <= ulp(hi)/2. twoSum is Knuth's branch-free exact
// addition; products use math.FMA for the exact low part.

// twoSum returns hi+lo = a+b exactly.
func twoSum(a, b float64) (hi, lo float64) {
	hi = a + b
	t := hi - a
	lo = (a - (hi - t)) + (b - t)
	return hi, lo
}

// ddSubFrom returns c - (bh+bl) as a double-double.
func ddSubFrom(c, bh, bl float64) (hi, lo float64) {
	sh, sl := twoSum(c, -bh)
	sl -= bl
	return twoSum(sh, sl)
}

// ddReducedCost returns c - (uh+ul) - (vh+vl) as a double-double.
func ddReducedCost(c, uh, ul, vh, vl float64) (hi, lo float64) {
	sh, sl := twoSum(c, -uh)
	sl -= ul
	th, tl := twoSum(sh, -vh)
	tl += sl - vl
	return twoSum(th, tl)
}

// ddMulAcc returns (ah+al) + x·(bh+bl) as a double-double.
func ddMulAcc(ah, al, x, bh, bl float64) (hi, lo float64) {
	ph := x * bh
	pl := math.FMA(x, bh, -ph)
	pl = math.FMA(x, bl, pl)
	sh, sl := twoSum(ah, ph)
	sl += al + pl
	return twoSum(sh, sl)
}
