package transport

import (
	"math"
	"math/rand"
	"testing"
)

// solveCold solves p with a fresh solver (empty pool, no warm basis)
// through the bounded kernel at +Inf, i.e. to optimality.
func solveCold(t *testing.T, p Problem) float64 {
	t.Helper()
	s, err := NewSolver(len(p.Supply), len(p.Demand))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveValueBounded(p, math.Inf(1))
	if err != nil {
		t.Fatalf("SolveValueBounded: %v", err)
	}
	if res.Aborted {
		t.Fatalf("aborted with abortAbove = +Inf")
	}
	return res.Value
}

// TestSolveValueBoundedMatchesSolveValue checks the bit-identity
// contract: at abortAbove = +Inf the bounded kernel — sparsity
// reduction, warm starts and all — must return exactly the value of
// the legacy validating kernel, on dense and sparse instances alike.
func TestSolveValueBoundedMatchesSolveValue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		p := randomProblem(rng, m, n, trial%2 == 0)
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		want, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		// Repeat so later solves re-enter from the warm basis cached by
		// the earlier ones; every repetition must stay bit-identical.
		for rep := 0; rep < 3; rep++ {
			res, err := s.SolveValueBounded(p, math.Inf(1))
			if err != nil {
				t.Fatalf("SolveValueBounded: %v", err)
			}
			if res.Aborted {
				t.Fatalf("trial %d rep %d: aborted with abortAbove = +Inf", trial, rep)
			}
			if res.Value != want {
				t.Fatalf("trial %d rep %d: bounded %v != SolveValue %v (diff %g)",
					trial, rep, res.Value, want, res.Value-want)
			}
		}
	}
}

// TestSolveValueBoundedWarmVsCold solves random candidate sequences
// through one pooled solver (warm starts accumulate) and compares each
// value bitwise against a cold fresh-solver solve of the same problem.
// This is the engine's refinement access pattern: one query against a
// stream of database histograms.
func TestSolveValueBoundedWarmVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seq := 0; seq < 10; seq++ {
		m := 3 + rng.Intn(8)
		n := 3 + rng.Intn(8)
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		warmHits := 0
		for cand := 0; cand < 30; cand++ {
			p := randomProblem(rng, m, n, cand%3 == 0)
			res, err := s.SolveValueBounded(p, math.Inf(1))
			if err != nil {
				t.Fatalf("SolveValueBounded: %v", err)
			}
			if res.WarmStart {
				warmHits++
			}
			if cold := solveCold(t, p); res.Value != cold {
				t.Fatalf("seq %d cand %d: warm %v != cold %v (diff %g, warmStart %v)",
					seq, cand, res.Value, cold, res.Value-cold, res.WarmStart)
			}
		}
		if warmHits == 0 {
			t.Errorf("seq %d: no warm-start hits over 30 sequential solves", seq)
		}
	}
}

// TestSolveValueBoundedSparsity checks that zero-mass rows and columns
// are stripped (reported shape shrinks) without changing the value.
func TestSolveValueBoundedSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		m := 4 + rng.Intn(8)
		n := 4 + rng.Intn(8)
		p := randomProblem(rng, m, n, true)
		rows, cols := 0, 0
		for _, v := range p.Supply {
			if v > 0 {
				rows++
			}
		}
		for _, v := range p.Demand {
			if v > 0 {
				cols++
			}
		}
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		res, err := s.SolveValueBounded(p, math.Inf(1))
		if err != nil {
			t.Fatalf("SolveValueBounded: %v", err)
		}
		if res.Rows != rows || res.Cols != cols {
			t.Fatalf("trial %d: reduced shape %dx%d, want %dx%d",
				trial, res.Rows, res.Cols, rows, cols)
		}
		want, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		if res.Value != want {
			t.Fatalf("trial %d: reduced %v != dense %v", trial, res.Value, want)
		}
	}
}

// TestSolveValueBoundedAbortSoundness checks the certificate contract:
// an aborted solve's Value is a lower bound on the true optimum that
// exceeds the threshold, and no solve aborts when the threshold is at
// or above the optimum.
func TestSolveValueBoundedAbortSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	aborted := 0
	for trial := 0; trial < 300; trial++ {
		m := 2 + rng.Intn(9)
		n := 2 + rng.Intn(9)
		p := randomProblem(rng, m, n, trial%2 == 0)
		s, err := NewSolver(m, n)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		opt, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		tol := 1e-9 * (1 + math.Abs(opt))

		// Threshold at or above the optimum: must run to optimality and
		// stay bit-identical.
		res, err := s.SolveValueBounded(p, opt)
		if err != nil {
			t.Fatalf("SolveValueBounded(opt): %v", err)
		}
		if res.Aborted {
			t.Fatalf("trial %d: aborted with abortAbove = optimum (bound %v, opt %v)",
				trial, res.Value, opt)
		}
		if res.Value != opt {
			t.Fatalf("trial %d: bounded-at-opt %v != %v", trial, res.Value, opt)
		}

		// Threshold well below the optimum: abort is allowed (and
		// expected for most instances); the certified bound must be
		// sound either way.
		lo, err := s.SolveValueBounded(p, 0.5*opt)
		if err != nil {
			t.Fatalf("SolveValueBounded(opt/2): %v", err)
		}
		if lo.Aborted {
			aborted++
			if lo.Value <= 0.5*opt {
				t.Fatalf("trial %d: aborted but bound %v <= threshold %v", trial, lo.Value, 0.5*opt)
			}
			if lo.Value > opt+tol {
				t.Fatalf("trial %d: certified bound %v exceeds optimum %v", trial, lo.Value, opt)
			}
		} else if lo.Value != opt {
			t.Fatalf("trial %d: completed solve %v != optimum %v", trial, lo.Value, opt)
		}
	}
	if aborted == 0 {
		t.Errorf("no solve aborted at half the optimum over 300 trials")
	}
}

// TestSolveValueBoundedDegenerate covers the mass-concentration edge
// cases of the reduction: all mass in one bin on either side.
func TestSolveValueBoundedDegenerate(t *testing.T) {
	cost := manhattanCost(5)
	supply := []float64{0, 0, 1, 0, 0}
	for _, demand := range [][]float64{
		{1, 0, 0, 0, 0},
		{0, 0, 1, 0, 0},
		{0.5, 0, 0, 0, 0.5},
	} {
		p := Problem{Supply: supply, Demand: demand, Cost: cost}
		s, err := NewSolver(5, 5)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		res, err := s.SolveValueBounded(p, math.Inf(1))
		if err != nil {
			t.Fatalf("SolveValueBounded: %v", err)
		}
		want, err := s.SolveValue(p)
		if err != nil {
			t.Fatalf("SolveValue: %v", err)
		}
		if res.Value != want {
			t.Fatalf("demand %v: bounded %v != dense %v", demand, res.Value, want)
		}
		if res.Rows != 1 {
			t.Fatalf("demand %v: reduced rows %d, want 1", demand, res.Rows)
		}
	}
}
