package transport

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Initializer selects the rule used to construct the initial basic
// feasible solution of the transportation simplex.
type Initializer int

const (
	// Vogel uses Vogel's approximation method: repeatedly allocate at
	// the cheapest cell of the row or column with the largest regret
	// (difference between its two cheapest costs). It typically starts
	// very close to the optimum and is the default.
	Vogel Initializer = iota
	// Northwest uses the northwest-corner rule. It ignores costs but is
	// the textbook reference rule; tests use it to confirm that the
	// pivoting machinery reaches the same optimum from a poor start.
	Northwest
	// Russell uses Russell's approximation method: allocation at the
	// cell with the most negative c_ij - max-row-cost - max-column-cost.
	Russell
)

// simplexState holds the mutable state of one transportation simplex
// run. Rows are nodes 0..m-1 and columns are nodes m..m+n-1 of the
// basis spanning tree.
//
// Buffers are sized for a capacity shape capM x capN fixed at
// allocation; the logical shape m x n of the current solve may be
// smaller (sparsity-reduced solves strip zero-mass rows and columns).
type simplexState struct {
	capM, capN int
	m, n       int
	cost       [][]float64
	flow       [][]float64 // flowRows[:m], resliced over flowBacking by prepare
	basic      []bool      // m*n cell -> in basis
	adj        [][]int32
	u, v       []float64
	uSet       []bool
	vSet       []bool
	parent     []int32 // node -> parent node in BFS
	pCell      []int32 // node -> cell (i*n+j) connecting it to parent
	queue      []int32
	scale      float64 // magnitude of the largest cost, for tolerances

	flowBacking []float64
	flowRows    [][]float64
	// cand is the candidate list for partial pricing: cells that had a
	// negative reduced cost at the last full scan. Pivots price only
	// this list; a full O(m*n) scan happens only when the list runs
	// dry, which also certifies optimality.
	cand []int32
	// cycle is the reusable pivot-cycle buffer.
	cycle []cycleCell
	// Reusable Vogel initializer buffers.
	vs, vd               []float64
	rowActive, colActive []bool
	rowMin1, rowMin2     []int32
	colMin1, colMin2     []int32
	// uf is the reusable union-find buffer of patchBasis.
	uf []int32

	// Sparsity-reduction maps between original (capM x capN) and
	// reduced (m x n) coordinates, rebuilt per bounded solve. rowInv
	// and colInv hold -1 for stripped zero-mass rows/columns.
	rowMap, colMap []int32
	rowInv, colInv []int32
	rsBuf, rdBuf   []float64
	costBacking    []float64 // lazily allocated reduced cost storage
	costRows       [][]float64
	// warm holds the basic cells of the most recent optimal basis in
	// original coordinates (i*capN + j). Dual feasibility of a basis
	// depends only on the cost matrix, so it is a principled restart
	// for any later solve of the same solver.
	warm []int32
	// warmV holds the column dual potentials of the most recent optimal
	// solve in original coordinates. Any dual vector v yields a certified
	// lower bound on a later solve's optimum after the row repair
	// u_i = min_j (c_ij - v_j), so these cached potentials let a bounded
	// solve abort before any simplex work when the previous optimum's
	// geometry already prices the new candidate above the threshold.
	warmV []float64
	// Leaf-peeling scratch for recomputing tree flows on warm starts.
	peelRes  []float64
	peelDeg  []int32
	peelDone []bool
	// Double-double residual scratch for the exact-feasibility peel of
	// the polish phase.
	peelResHi, peelResLo []float64
	// peelNeg counts the materially negative flows found by the last
	// peelFlows pass — how far from primal-feasible the tree was.
	peelNeg int
	// Double-double dual potentials for the canonical objective.
	duHi, duLo []float64
	dvHi, dvLo []float64
}

// cycleCell is one cell of a pivot cycle with its +/- role.
type cycleCell struct {
	i, j int32
	plus bool
}

// SolveSimplex solves p with the transportation simplex using the
// Vogel initializer. See SolveSimplexFrom for details.
func SolveSimplex(p Problem) (*Solution, error) {
	return SolveSimplexFrom(p, Vogel)
}

// SolveSimplexFrom solves p with the transportation simplex starting
// from the given initializer. The returned solution carries optimal
// dual potentials; CheckOptimal can verify it independently. If the
// pivot count exceeds the iteration budget, an error wrapping
// ErrIterationLimit is returned.
func SolveSimplexFrom(p Problem, init Initializer) (*Solution, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	m, n := len(p.Supply), len(p.Demand)
	st := newSimplexState(m, n)
	iter, err := st.run(p, init)
	if err != nil {
		return nil, err
	}
	st.computeDuals()
	return &Solution{
		Objective:  objective(p.Cost, st.flow),
		Flow:       st.flow,
		DualU:      st.u,
		DualV:      st.v,
		Iterations: iter,
		Method:     "simplex",
	}, nil
}

// newSimplexState allocates all buffers for solves of capacity shape
// m x n (the logical shape of later solves may be smaller).
func newSimplexState(m, n int) *simplexState {
	st := &simplexState{
		capM: m, capN: n,
		m: m, n: n,
		flowBacking: make([]float64, m*n),
		flowRows:    make([][]float64, m),
		basic:       make([]bool, m*n),
		adj:         make([][]int32, m+n),
		u:           make([]float64, m),
		v:           make([]float64, n),
		uSet:        make([]bool, m),
		vSet:        make([]bool, n),
		parent:      make([]int32, m+n),
		pCell:       make([]int32, m+n),
		queue:       make([]int32, 0, m+n),
		vs:          make([]float64, m),
		vd:          make([]float64, n),
		rowActive:   make([]bool, m),
		colActive:   make([]bool, n),
		rowMin1:     make([]int32, m),
		rowMin2:     make([]int32, m),
		colMin1:     make([]int32, n),
		colMin2:     make([]int32, n),
		uf:          make([]int32, m+n),
		rowMap:      make([]int32, m),
		colMap:      make([]int32, n),
		rowInv:      make([]int32, m),
		colInv:      make([]int32, n),
		rsBuf:       make([]float64, m),
		rdBuf:       make([]float64, n),
		peelRes:     make([]float64, m+n),
		peelDeg:     make([]int32, m+n),
		peelDone:    make([]bool, m+n),
		peelResHi:   make([]float64, m+n),
		peelResLo:   make([]float64, m+n),
		duHi:        make([]float64, m),
		duLo:        make([]float64, m),
		dvHi:        make([]float64, n),
		dvLo:        make([]float64, n),
	}
	st.flow = st.flowRows[:m]
	for i := 0; i < m; i++ {
		st.flow[i] = st.flowBacking[i*n : (i+1)*n : (i+1)*n]
	}
	return st
}

// prepare clears the previous solve's state (at its own, possibly
// different, logical shape) and adopts the new logical shape m x n,
// reslicing the flow matrix over the shared backing array.
func (st *simplexState) prepare(m, n int) {
	old := st.m * st.n
	for i := 0; i < old; i++ {
		st.basic[i] = false
		st.flowBacking[i] = 0
	}
	for x := 0; x < st.m+st.n; x++ {
		st.adj[x] = st.adj[x][:0]
	}
	st.cand = st.cand[:0]
	st.scale = 0
	st.m, st.n = m, n
	st.flow = st.flowRows[:m]
	for i := 0; i < m; i++ {
		st.flow[i] = st.flowBacking[i*n : (i+1)*n : (i+1)*n]
	}
}

// computeScale records the magnitude of the largest cost entry, the
// reference for all pivoting tolerances.
func (st *simplexState) computeScale() {
	st.scale = 0
	for i := 0; i < st.m; i++ {
		for _, c := range st.cost[i][:st.n] {
			if c > st.scale {
				st.scale = c
			}
		}
	}
	if st.scale == 0 {
		st.scale = 1
	}
}

// run executes one full solve on the (possibly reused) state and
// returns the pivot count. On return st.flow holds the optimal flow
// and computeDuals-fresh u/v are available to the caller.
func (st *simplexState) run(p Problem, init Initializer) (int, error) {
	st.prepare(len(p.Supply), len(p.Demand))
	st.cost = p.Cost
	st.computeScale()

	switch init {
	case Vogel:
		st.initVogel(p.Supply, p.Demand)
	case Northwest:
		st.initNorthwest(p.Supply, p.Demand)
	case Russell:
		st.initRussell(p.Supply, p.Demand)
	default:
		return 0, fmt.Errorf("transport: unknown initializer %d", init)
	}
	st.patchBasis()
	iter, _, _, err := st.pivotLoop(p.Supply, p.Demand, math.Inf(1), nil)
	return iter, err
}

// stopCause says why pivotLoop returned before the iteration budget.
type stopCause int

const (
	stopOptimal stopCause = iota
	stopAborted
	stopInterrupted
)

// pivotLoop pivots until optimality, the iteration budget, or — when
// abortAbove is finite — until a certified dual lower bound on the
// optimum exceeds abortAbove. After every dual recomputation the loop
// evaluates the dual objective of a feasibility-repaired copy of the
// current potentials (feasibleDualBound); by weak duality that value
// never exceeds the true optimum, so once it clears abortAbove the
// caller may discard the candidate without finishing the solve. The
// bound is reported minus a small guard so that float error in the
// repair can never certify past a true optimum that ties abortAbove.
//
// intr, when non-nil, is polled once per iteration: an observed
// interrupt stops the loop within one pivot's worth of work (O(m·n))
// and returns stopInterrupted with the same feasibility-repaired dual
// bound as a certified lower bound on the optimum — this is what makes
// a query deadline take effect inside a single large solve instead of
// only between solves.
func (st *simplexState) pivotLoop(supply, demand []float64, abortAbove float64, intr *atomic.Bool) (iter int, stop stopCause, bound float64, err error) {
	// The budget is generous: well-behaved instances pivot O(m+n) times.
	maxIter := 200 * (st.m + st.n + 10)
	tol := 1e-10 * st.scale
	guard := boundGuard * st.scale
	bounded := !math.IsInf(abortAbove, 1)
	for iter = 0; iter < maxIter; iter++ {
		st.computeDuals()
		if intr != nil && intr.Load() {
			b := st.feasibleDualBound(supply, demand) - guard
			if b < 0 {
				b = 0
			}
			return iter, stopInterrupted, b, nil
		}
		if bounded {
			if b := st.feasibleDualBound(supply, demand) - guard; b > abortAbove {
				return iter, stopAborted, b, nil
			}
		}
		ei, ej, ok := st.entering(tol)
		if !ok {
			return iter, stopOptimal, 0, nil
		}
		st.pivot(ei, ej)
	}
	return maxIter, stopOptimal, 0, fmt.Errorf("transport: simplex on %dx%d problem: %w", st.m, st.n, ErrIterationLimit)
}

func newMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// addBasic inserts cell (i,j) into the basis and adjacency lists.
func (st *simplexState) addBasic(i, j int) {
	cell := i*st.n + j
	if st.basic[cell] {
		return
	}
	st.basic[cell] = true
	st.adj[i] = append(st.adj[i], int32(st.m+j))
	st.adj[st.m+j] = append(st.adj[st.m+j], int32(i))
}

// removeBasic removes cell (i,j) from the basis and adjacency lists.
func (st *simplexState) removeBasic(i, j int) {
	cell := i*st.n + j
	st.basic[cell] = false
	st.adj[i] = removeNode(st.adj[i], int32(st.m+j))
	st.adj[st.m+j] = removeNode(st.adj[st.m+j], int32(i))
}

func removeNode(list []int32, node int32) []int32 {
	for k, x := range list {
		if x == node {
			list[k] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// initNorthwest builds the initial solution with the northwest-corner
// rule, producing exactly m+n-1 basic cells (degenerate zeros
// included).
func (st *simplexState) initNorthwest(supply, demand []float64) {
	s := append([]float64(nil), supply...)
	d := append([]float64(nil), demand...)
	i, j := 0, 0
	for i < st.m && j < st.n {
		q := math.Min(s[i], d[j])
		st.flow[i][j] = q
		st.addBasic(i, j)
		s[i] -= q
		d[j] -= q
		if i == st.m-1 && j == st.n-1 {
			break
		}
		// Advance in exactly one direction to keep the basis a tree;
		// on ties prefer the row unless it is the last row.
		if s[i] <= d[j] && i < st.m-1 {
			i++
		} else {
			j++
		}
	}
}

// initVogel builds the initial solution with Vogel's approximation
// method. Each allocation deactivates exactly one row or column, which
// keeps the allocated cells acyclic; patchBasis completes the spanning
// tree afterwards if fewer than m+n-1 cells were created.
func (st *simplexState) initVogel(supply, demand []float64) {
	m, n := st.m, st.n
	s := st.vs[:m]
	d := st.vd[:n]
	copy(s, supply)
	copy(d, demand)
	rowActive := st.rowActive[:m]
	colActive := st.colActive[:n]
	for i := range rowActive {
		rowActive[i] = true
	}
	for j := range colActive {
		colActive[j] = true
	}
	activeRows, activeCols := m, n

	// rowMin1/rowMin2 cache the indices of the two cheapest active
	// columns per row (and vice versa); they are recomputed lazily
	// when one of the cached entries deactivates.
	rowMin1, rowMin2 := st.rowMin1, st.rowMin2
	colMin1, colMin2 := st.colMin1, st.colMin2
	refreshRow := func(i int) {
		m1, m2 := int32(-1), int32(-1)
		row := st.cost[i]
		for j := 0; j < n; j++ {
			if !colActive[j] {
				continue
			}
			if m1 < 0 || row[j] < row[m1] {
				m2 = m1
				m1 = int32(j)
			} else if m2 < 0 || row[j] < row[m2] {
				m2 = int32(j)
			}
		}
		rowMin1[i], rowMin2[i] = m1, m2
	}
	refreshCol := func(j int) {
		m1, m2 := int32(-1), int32(-1)
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			if m1 < 0 || st.cost[i][j] < st.cost[m1][j] {
				m2 = m1
				m1 = int32(i)
			} else if m2 < 0 || st.cost[i][j] < st.cost[m2][j] {
				m2 = int32(i)
			}
		}
		colMin1[j], colMin2[j] = m1, m2
	}
	for i := 0; i < m; i++ {
		refreshRow(i)
	}
	for j := 0; j < n; j++ {
		refreshCol(j)
	}

	for activeRows > 0 && activeCols > 0 {
		// Pick the row or column with the largest regret.
		bestPenalty := -1.0
		bestIsRow := true
		bestIdx := -1
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			if rowMin1[i] >= 0 && !colActive[rowMin1[i]] ||
				rowMin2[i] >= 0 && !colActive[rowMin2[i]] {
				refreshRow(i)
			}
			if rowMin1[i] < 0 {
				continue
			}
			p := math.Inf(1)
			if rowMin2[i] >= 0 {
				p = st.cost[i][rowMin2[i]] - st.cost[i][rowMin1[i]]
			}
			if p > bestPenalty {
				bestPenalty, bestIsRow, bestIdx = p, true, i
			}
		}
		for j := 0; j < n; j++ {
			if !colActive[j] {
				continue
			}
			if colMin1[j] >= 0 && !rowActive[colMin1[j]] ||
				colMin2[j] >= 0 && !rowActive[colMin2[j]] {
				refreshCol(j)
			}
			if colMin1[j] < 0 {
				continue
			}
			p := math.Inf(1)
			if colMin2[j] >= 0 {
				p = st.cost[colMin2[j]][j] - st.cost[colMin1[j]][j]
			}
			if p > bestPenalty {
				bestPenalty, bestIsRow, bestIdx = p, false, j
			}
		}
		if bestIdx < 0 {
			break
		}

		var i, j int
		if bestIsRow {
			i = bestIdx
			j = int(rowMin1[i])
		} else {
			j = bestIdx
			i = int(colMin1[j])
		}
		q := math.Min(s[i], d[j])
		st.flow[i][j] += q
		st.addBasic(i, j)
		s[i] -= q
		d[j] -= q
		// Deactivate exactly one side so the allocation graph stays
		// acyclic; the surviving zero-mass side absorbs a degenerate
		// allocation later.
		if s[i] <= d[j] && activeRows > 1 || activeCols == 1 {
			rowActive[i] = false
			activeRows--
		} else {
			colActive[j] = false
			activeCols--
		}
	}
}

// patchBasis extends the current basic cells to a spanning tree of the
// m+n nodes by adding zero-flow cells that connect distinct components,
// preferring cheap cells so the first dual solution is informative.
func (st *simplexState) patchBasis() {
	total := st.m + st.n
	parent := st.uf
	for i := 0; i < total; i++ {
		parent[i] = int32(i)
	}
	find := func(x int) int {
		for parent[x] != int32(x) {
			parent[x] = parent[parent[x]]
			x = int(parent[x])
		}
		return x
	}
	count := 0
	for i := 0; i < st.m; i++ {
		for j := 0; j < st.n; j++ {
			if st.basic[i*st.n+j] {
				count++
				ri, rj := find(i), find(st.m+j)
				if ri != rj {
					parent[ri] = int32(rj)
				}
			}
		}
	}
	for count < total-1 {
		// Find the cheapest non-basic cell joining two components.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < st.m; i++ {
			for j := 0; j < st.n; j++ {
				if st.basic[i*st.n+j] {
					continue
				}
				if find(i) != find(st.m+j) && st.cost[i][j] < best {
					best = st.cost[i][j]
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			// Should be impossible: a bipartite graph with all cells
			// available is connected.
			panic("transport: patchBasis found no connecting cell")
		}
		st.addBasic(bi, bj)
		parent[find(bi)] = int32(find(st.m + bj))
		count++
	}
}

// computeDuals solves u_i + v_j = c_ij over the basis tree with
// u_0 = 0, via BFS from node 0.
func (st *simplexState) computeDuals() {
	for i := 0; i < st.m; i++ {
		st.uSet[i] = false
	}
	for j := 0; j < st.n; j++ {
		st.vSet[j] = false
	}
	st.queue = st.queue[:0]
	st.u[0] = 0
	st.uSet[0] = true
	st.queue = append(st.queue, 0)
	for head := 0; head < len(st.queue); head++ {
		node := st.queue[head]
		if int(node) < st.m {
			i := int(node)
			for _, nb := range st.adj[node] {
				j := int(nb) - st.m
				if !st.vSet[j] {
					st.v[j] = st.cost[i][j] - st.u[i]
					st.vSet[j] = true
					st.queue = append(st.queue, nb)
				}
			}
		} else {
			j := int(node) - st.m
			for _, nb := range st.adj[node] {
				i := int(nb)
				if !st.uSet[i] {
					st.u[i] = st.cost[i][j] - st.v[j]
					st.uSet[i] = true
					st.queue = append(st.queue, nb)
				}
			}
		}
	}
}

// entering returns a non-basic cell with negative reduced cost, or
// ok=false when the current basis is optimal. It first prices the
// candidate list (cells negative at the last full scan) and picks the
// most negative still-valid entry; only when the list is exhausted
// does it rescan the whole matrix, refilling the list. Optimality is
// still certified by a clean full scan, so the result is exact.
func (st *simplexState) entering(tol float64) (int, int, bool) {
	// Price the surviving candidates.
	if len(st.cand) > 0 {
		bi, bj := -1, -1
		best := -tol
		kept := st.cand[:0]
		for _, cell := range st.cand {
			if st.basic[cell] {
				continue
			}
			i := int(cell) / st.n
			j := int(cell) % st.n
			rc := st.cost[i][j] - st.u[i] - st.v[j]
			if rc < -tol {
				kept = append(kept, cell)
				if rc < best {
					best = rc
					bi, bj = i, j
				}
			}
		}
		st.cand = kept
		if bi >= 0 {
			return bi, bj, true
		}
	}

	// Full scan: find the most negative cell and refill the list.
	maxCand := 4 * (st.m + st.n)
	st.cand = st.cand[:0]
	bi, bj := -1, -1
	best := -tol
	for i := 0; i < st.m; i++ {
		ui := st.u[i]
		row := st.cost[i]
		base := i * st.n
		for j := 0; j < st.n; j++ {
			if st.basic[base+j] {
				continue
			}
			rc := row[j] - ui - st.v[j]
			if rc < -tol {
				if len(st.cand) < maxCand {
					st.cand = append(st.cand, int32(base+j))
				}
				if rc < best {
					best = rc
					bi, bj = i, j
				}
			}
		}
	}
	return bi, bj, bi >= 0
}

// pivot brings cell (ei,ej) into the basis: it finds the unique cycle
// the cell closes in the basis tree, shifts the maximal flow theta
// around it and removes the blocking cell.
func (st *simplexState) pivot(ei, ej int) {
	// BFS in the basis tree from row node ei to column node m+ej.
	start := int32(ei)
	target := int32(st.m + ej)
	for i := 0; i < st.m+st.n; i++ {
		st.parent[i] = -1
	}
	st.parent[start] = start
	st.queue = st.queue[:0]
	st.queue = append(st.queue, start)
	found := false
	for head := 0; head < len(st.queue) && !found; head++ {
		node := st.queue[head]
		for _, nb := range st.adj[node] {
			if st.parent[nb] != -1 {
				continue
			}
			st.parent[nb] = node
			if int(node) < st.m {
				st.pCell[nb] = int32(int(node)*st.n + (int(nb) - st.m))
			} else {
				st.pCell[nb] = int32(int(nb)*st.n + (int(node) - st.m))
			}
			if nb == target {
				found = true
				break
			}
			st.queue = append(st.queue, nb)
		}
	}
	if !found {
		panic("transport: basis is not a spanning tree")
	}

	// Walk the tree path target -> start. The entering cell has sign +;
	// path cells alternate starting with - at the target end.
	st.cycle = st.cycle[:0]
	st.cycle = append(st.cycle, cycleCell{int32(ei), int32(ej), true})
	node := target
	plus := false
	for node != start {
		cell := int(st.pCell[node])
		st.cycle = append(st.cycle, cycleCell{int32(cell / st.n), int32(cell % st.n), plus})
		plus = !plus
		node = st.parent[node]
	}

	// theta is the minimal flow on a minus cell; ties break toward the
	// lexicographically smallest cell for deterministic pivoting.
	theta := math.Inf(1)
	li, lj := -1, -1
	for _, c := range st.cycle {
		if c.plus {
			continue
		}
		f := st.flow[c.i][c.j]
		if f < theta || (f == theta && (int(c.i) < li || int(c.i) == li && int(c.j) < lj)) {
			theta = f
			li, lj = int(c.i), int(c.j)
		}
	}
	for _, c := range st.cycle {
		if c.plus {
			st.flow[c.i][c.j] += theta
		} else {
			st.flow[c.i][c.j] -= theta
		}
	}
	// Clamp tiny negatives introduced by floating-point cancellation.
	st.flow[li][lj] = 0
	st.removeBasic(li, lj)
	st.addBasic(ei, ej)
}

// initRussell builds the initial solution with Russell's approximation
// method: with row potentials ubar_i = max over active j of c_ij and
// column potentials vbar_j = max over active i, it repeatedly allocates
// at the active cell with the most negative c_ij - ubar_i - vbar_j.
// Start quality typically sits between Northwest and Vogel; the method
// is provided for experimentation and as a third independent witness
// in the initializer-equivalence tests.
func (st *simplexState) initRussell(supply, demand []float64) {
	m, n := st.m, st.n
	s := st.vs[:m]
	d := st.vd[:n]
	copy(s, supply)
	copy(d, demand)
	rowActive := st.rowActive[:m]
	colActive := st.colActive[:n]
	for i := range rowActive {
		rowActive[i] = true
	}
	for j := range colActive {
		colActive[j] = true
	}
	activeRows, activeCols := m, n

	ubar := make([]float64, m)
	vbar := make([]float64, n)
	refresh := func() {
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			ubar[i] = math.Inf(-1)
			for j := 0; j < n; j++ {
				if colActive[j] && st.cost[i][j] > ubar[i] {
					ubar[i] = st.cost[i][j]
				}
			}
		}
		for j := 0; j < n; j++ {
			if !colActive[j] {
				continue
			}
			vbar[j] = math.Inf(-1)
			for i := 0; i < m; i++ {
				if rowActive[i] && st.cost[i][j] > vbar[j] {
					vbar[j] = st.cost[i][j]
				}
			}
		}
	}
	refresh()

	for activeRows > 0 && activeCols > 0 {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if !rowActive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if !colActive[j] {
					continue
				}
				if delta := st.cost[i][j] - ubar[i] - vbar[j]; delta < best {
					best = delta
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		q := math.Min(s[bi], d[bj])
		st.flow[bi][bj] += q
		st.addBasic(bi, bj)
		s[bi] -= q
		d[bj] -= q
		if s[bi] <= d[bj] && activeRows > 1 || activeCols == 1 {
			rowActive[bi] = false
			activeRows--
		} else {
			colActive[bj] = false
			activeCols--
		}
		refresh()
	}
}
