package transport

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomProblem builds a random balanced transportation instance with
// the given shape. Costs are uniform in [0, 10); masses normalize to 1.
func randomProblem(rng *rand.Rand, m, n int, sparse bool) Problem {
	supply := make([]float64, m)
	demand := make([]float64, n)
	for i := range supply {
		supply[i] = rng.Float64()
		if sparse && rng.Intn(3) == 0 {
			supply[i] = 0
		}
	}
	for j := range demand {
		demand[j] = rng.Float64()
		if sparse && rng.Intn(3) == 0 {
			demand[j] = 0
		}
	}
	normalize(supply)
	normalize(demand)
	cost := make([][]float64, m)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = 10 * rng.Float64()
		}
	}
	return Problem{Supply: supply, Demand: demand, Cost: cost}
}

func normalize(xs []float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		xs[0] = 1
		return
	}
	for i := range xs {
		xs[i] /= sum
	}
}

func manhattanCost(d int) [][]float64 {
	c := make([][]float64, d)
	for i := range c {
		c[i] = make([]float64, d)
		for j := range c[i] {
			c[i][j] = math.Abs(float64(i - j))
		}
	}
	return c
}

func TestValidate(t *testing.T) {
	good := Problem{
		Supply: []float64{0.5, 0.5},
		Demand: []float64{0.25, 0.75},
		Cost:   [][]float64{{0, 1}, {1, 0}},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("Validate(good) = %v, want nil", err)
	}
	cases := []struct {
		name string
		p    Problem
	}{
		{"empty", Problem{}},
		{"negative supply", Problem{Supply: []float64{-1, 2}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, 1}, {1, 0}}}},
		{"negative demand", Problem{Supply: []float64{0.5, 0.5}, Demand: []float64{-0.5, 1.5}, Cost: [][]float64{{0, 1}, {1, 0}}}},
		{"nan cost", Problem{Supply: []float64{0.5, 0.5}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, math.NaN()}, {1, 0}}}},
		{"negative cost", Problem{Supply: []float64{0.5, 0.5}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, -1}, {1, 0}}}},
		{"unbalanced", Problem{Supply: []float64{1, 1}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, 1}, {1, 0}}}},
		{"ragged cost", Problem{Supply: []float64{0.5, 0.5}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, 1}, {1}}}},
		{"short cost", Problem{Supply: []float64{0.5, 0.5}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.p); err == nil {
				t.Fatalf("Validate(%s) = nil, want error", tc.name)
			}
		})
	}
}

func TestSimplexPaperExample(t *testing.T) {
	// Figure 1 of the paper: EMD(x,y) = 1.0 and EMD(x,z) = 1.6 under
	// Manhattan ground distance on 6 bins.
	x := []float64{0.5, 0, 0.2, 0, 0.3, 0}
	y := []float64{0, 0.5, 0, 0.2, 0, 0.3}
	z := []float64{1, 0, 0, 0, 0, 0}
	c := manhattanCost(6)

	sol, err := SolveSimplex(Problem{Supply: x, Demand: y, Cost: c})
	if err != nil {
		t.Fatalf("SolveSimplex(x,y): %v", err)
	}
	if math.Abs(sol.Objective-1.0) > 1e-12 {
		t.Errorf("EMD(x,y) = %g, want 1.0", sol.Objective)
	}
	sol, err = SolveSimplex(Problem{Supply: x, Demand: z, Cost: c})
	if err != nil {
		t.Fatalf("SolveSimplex(x,z): %v", err)
	}
	if math.Abs(sol.Objective-1.6) > 1e-12 {
		t.Errorf("EMD(x,z) = %g, want 1.6", sol.Objective)
	}
}

func TestSimplexIdenticalHistograms(t *testing.T) {
	x := []float64{0.25, 0.25, 0.25, 0.25}
	sol, err := SolveSimplex(Problem{Supply: x, Demand: x, Cost: manhattanCost(4)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-12 {
		t.Errorf("EMD(x,x) = %g, want 0", sol.Objective)
	}
}

func TestSimplexSingleBin(t *testing.T) {
	sol, err := SolveSimplex(Problem{
		Supply: []float64{1},
		Demand: []float64{1},
		Cost:   [][]float64{{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-12 {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
}

func TestSimplexRectangular(t *testing.T) {
	// Rectangular instance (d1 != d2), as needed for asymmetric
	// query/database reductions (R1 != R2).
	p := Problem{
		Supply: []float64{0.6, 0.4},
		Demand: []float64{0.3, 0.3, 0.4},
		Cost:   [][]float64{{0, 1, 2}, {2, 1, 0}},
	}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: 0.3 via (0,0)@0, 0.3 via (0,1)@1, 0.4 via (1,2)@0 = 0.3.
	if math.Abs(sol.Objective-0.3) > 1e-12 {
		t.Errorf("objective = %g, want 0.3", sol.Objective)
	}
	if err := CheckOptimal(p, sol, 1e-9); err != nil {
		t.Errorf("CheckOptimal: %v", err)
	}
}

func TestSimplexDegenerateMasses(t *testing.T) {
	// Many zero bins force degenerate pivots.
	p := Problem{
		Supply: []float64{1, 0, 0, 0, 0},
		Demand: []float64{0, 0, 0, 0, 1},
		Cost:   manhattanCost(5),
	}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-4) > 1e-12 {
		t.Errorf("objective = %g, want 4", sol.Objective)
	}
}

func TestSimplexMatchesSSPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, n int }{
		{2, 2}, {3, 5}, {5, 3}, {8, 8}, {16, 16}, {16, 4}, {1, 7}, {7, 1}, {24, 24},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 25; trial++ {
			sparse := trial%2 == 0
			p := randomProblem(rng, sh.m, sh.n, sparse)
			s1, err := SolveSimplex(p)
			if err != nil {
				t.Fatalf("simplex %dx%d trial %d: %v", sh.m, sh.n, trial, err)
			}
			s2, err := SolveSSP(p)
			if err != nil {
				t.Fatalf("ssp %dx%d trial %d: %v", sh.m, sh.n, trial, err)
			}
			if diff := math.Abs(s1.Objective - s2.Objective); diff > 1e-8 {
				t.Fatalf("%dx%d trial %d: simplex %.12g vs ssp %.12g (diff %g)",
					sh.m, sh.n, trial, s1.Objective, s2.Objective, diff)
			}
			if err := CheckFeasible(p, s1.Flow, 1e-9); err != nil {
				t.Fatalf("simplex flow infeasible: %v", err)
			}
			if err := CheckFeasible(p, s2.Flow, 1e-9); err != nil {
				t.Fatalf("ssp flow infeasible: %v", err)
			}
			if err := CheckOptimal(p, s1, 1e-8); err != nil {
				t.Fatalf("simplex duality certificate failed: %v", err)
			}
		}
	}
}

func TestNorthwestStartReachesSameOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 6+trial%5, 6+(trial/2)%5, trial%3 == 0)
		a, err := SolveSimplexFrom(p, Vogel)
		if err != nil {
			t.Fatalf("vogel trial %d: %v", trial, err)
		}
		b, err := SolveSimplexFrom(p, Northwest)
		if err != nil {
			t.Fatalf("northwest trial %d: %v", trial, err)
		}
		if diff := math.Abs(a.Objective - b.Objective); diff > 1e-9 {
			t.Fatalf("trial %d: vogel %.12g vs northwest %.12g", trial, a.Objective, b.Objective)
		}
	}
}

func TestVogelNeedsFewerPivotsThanNorthwest(t *testing.T) {
	// Not a hard guarantee per instance, but overwhelmingly true in
	// aggregate; this guards the initializer against regressions that
	// would silently destroy its purpose.
	rng := rand.New(rand.NewSource(11))
	var vogel, northwest int
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 12, 12, false)
		a, err := SolveSimplexFrom(p, Vogel)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveSimplexFrom(p, Northwest)
		if err != nil {
			t.Fatal(err)
		}
		vogel += a.Iterations
		northwest += b.Iterations
	}
	if vogel >= northwest {
		t.Errorf("vogel start used %d total pivots, northwest %d; expected fewer", vogel, northwest)
	}
}

func TestSolveZeroTotalMass(t *testing.T) {
	p := Problem{
		Supply: []float64{0, 0},
		Demand: []float64{0, 0},
		Cost:   [][]float64{{0, 1}, {1, 0}},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
}

func TestSolutionFlowShape(t *testing.T) {
	p := Problem{
		Supply: []float64{0.5, 0.5},
		Demand: []float64{0.2, 0.3, 0.5},
		Cost:   [][]float64{{1, 2, 3}, {4, 5, 6}},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Flow) != 2 || len(sol.Flow[0]) != 3 {
		t.Errorf("flow shape %dx%d, want 2x3", len(sol.Flow), len(sol.Flow[0]))
	}
	if sol.Method != "simplex" {
		t.Errorf("method = %q, want simplex", sol.Method)
	}
}

func TestCheckFeasibleRejectsBadFlow(t *testing.T) {
	p := Problem{
		Supply: []float64{0.5, 0.5},
		Demand: []float64{0.5, 0.5},
		Cost:   [][]float64{{0, 1}, {1, 0}},
	}
	bad := [][]float64{{0.5, 0.2}, {0, 0.5}} // row 0 ships 0.7
	if err := CheckFeasible(p, bad, 1e-9); err == nil {
		t.Fatal("CheckFeasible accepted an infeasible flow")
	}
	neg := [][]float64{{0.6, -0.1}, {-0.1, 0.6}}
	if err := CheckFeasible(p, neg, 1e-9); err == nil {
		t.Fatal("CheckFeasible accepted a negative flow")
	}
}

func TestCheckOptimalRejectsSuboptimal(t *testing.T) {
	p := Problem{
		Supply: []float64{1, 0},
		Demand: []float64{0, 1},
		Cost:   [][]float64{{0, 1}, {1, 0}},
	}
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the duals so they no longer certify.
	sol.DualU[0] += 10
	if err := CheckOptimal(p, sol, 1e-9); err == nil {
		t.Fatal("CheckOptimal accepted corrupted duals")
	}
}

func TestSimplexHighlyDegenerateGrid(t *testing.T) {
	// Identical uniform histograms on a large grid: all flow stays on
	// the diagonal; every pivot is degenerate.
	const d = 32
	x := make([]float64, d)
	for i := range x {
		x[i] = 1.0 / d
	}
	sol, err := SolveSimplex(Problem{Supply: x, Demand: x, Cost: manhattanCost(d)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-10 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
}

func TestSSPMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 10, 14, true)
		sol, err := SolveSSP(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFeasible(p, sol.Flow, 1e-8); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSimplexLargerInstanceAgainstSSP(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 64, 64, false)
	a, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSSP(p)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(a.Objective - b.Objective); diff > 1e-7 {
		t.Fatalf("simplex %.12g vs ssp %.12g (diff %g)", a.Objective, b.Objective, diff)
	}
}

func TestSolverPooledMatchesUnpooled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s, err := NewSolver(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 10, 12, trial%2 == 0)
		got, err := s.SolveValue(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveSimplex(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: pooled %g vs fresh %g", trial, got, want.Objective)
		}
	}
}

func TestSolverShapeMismatch(t *testing.T) {
	s, err := NewSolver(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Supply: []float64{1, 0}, Demand: []float64{0.5, 0.5}, Cost: [][]float64{{0, 1}, {1, 0}}}
	if _, err := s.SolveValue(p); err == nil {
		t.Error("accepted mismatched shape")
	}
	if _, err := NewSolver(0, 3); err == nil {
		t.Error("accepted zero shape")
	}
	if m, n := s.Shape(); m != 3 || n != 3 {
		t.Errorf("Shape = %d, %d", m, n)
	}
}

func TestSolverConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := NewSolver(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	problems := make([]Problem, 16)
	wants := make([]float64, 16)
	for i := range problems {
		problems[i] = randomProblem(rng, 8, 8, false)
		sol, err := SolveSimplex(problems[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = sol.Objective
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (w*7 + rep) % len(problems)
				got, err := s.SolveValue(problems[i])
				if err != nil {
					errs[w] = err
					return
				}
				if math.Abs(got-wants[i]) > 1e-9 {
					errs[w] = fmt.Errorf("worker %d: problem %d: %g != %g", w, i, got, wants[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRussellStartReachesSameOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 5+trial%6, 5+(trial/3)%6, trial%3 == 0)
		a, err := SolveSimplexFrom(p, Vogel)
		if err != nil {
			t.Fatalf("vogel trial %d: %v", trial, err)
		}
		b, err := SolveSimplexFrom(p, Russell)
		if err != nil {
			t.Fatalf("russell trial %d: %v", trial, err)
		}
		if diff := math.Abs(a.Objective - b.Objective); diff > 1e-9 {
			t.Fatalf("trial %d: vogel %.12g vs russell %.12g", trial, a.Objective, b.Objective)
		}
	}
}

func TestRussellBetterStartThanNorthwest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var russell, northwest int
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(rng, 12, 12, false)
		a, err := SolveSimplexFrom(p, Russell)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveSimplexFrom(p, Northwest)
		if err != nil {
			t.Fatal(err)
		}
		russell += a.Iterations
		northwest += b.Iterations
	}
	if russell >= northwest {
		t.Errorf("russell start used %d total pivots, northwest %d; expected fewer", russell, northwest)
	}
}
