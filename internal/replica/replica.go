// Package replica ships acknowledged WAL records from a primary
// engine to a follower so a shard can fail over without losing
// coverage. The primary acknowledges each mutation to a Shipper,
// which assigns it a dense log sequence number (LSN) and delivers it
// over a Link in LSN order, retrying transient transport faults with
// jittered backoff. The follower applies records idempotently over a
// snapshot bootstrap — the same id-carrying WAL record format and
// replay discipline crash recovery uses — so redelivery after a
// partial failure is harmless.
//
// The package moves opaque persist.WALRecord values and tracks LSNs;
// it knows nothing about EMD search. The Link seam keeps transport
// pluggable: in-process function calls today, a network client later,
// with identical sequencing and freshness accounting.
//
// Freshness: Status reports the primary's last acknowledged LSN and
// the follower's applied LSN. Their difference bounds how many
// acknowledged mutations the follower may be missing — the quantity a
// coverage certificate must disclose when a follower serves a query.
package replica

import (
	"context"
	"fmt"
	"sync"

	"emdsearch/internal/persist"
	"emdsearch/internal/shardset"
)

// Record is one acknowledged primary mutation tagged with its log
// sequence number. LSNs are dense and 1-based within a shipper.
type Record struct {
	LSN int64
	Rec persist.WALRecord
}

// Link delivers one record to a follower. Ship returns nil only after
// the follower has applied the record; any error makes the shipper
// retry the SAME record after a backoff, so implementations must
// tolerate redelivery (idempotent replay makes this free for the
// engine-applying link). Ship is called from a single goroutine, in
// strict LSN order.
type Link interface {
	Ship(ctx context.Context, rec Record) error
}

// LinkFunc adapts a function to a Link — the in-process transport.
type LinkFunc func(ctx context.Context, rec Record) error

// Ship implements Link.
func (f LinkFunc) Ship(ctx context.Context, rec Record) error { return f(ctx, rec) }

// Status is a point-in-time snapshot of one shipper's replication
// state.
type Status struct {
	// PrimaryLSN is the sequence number of the last mutation the
	// primary acknowledged.
	PrimaryLSN int64 `json:"primary_lsn"`
	// AppliedLSN is the sequence number through which the follower has
	// applied. AppliedLSN <= PrimaryLSN always.
	AppliedLSN int64 `json:"applied_lsn"`
	// Lag = PrimaryLSN − AppliedLSN bounds how many acknowledged
	// mutations the follower may be missing.
	Lag int64 `json:"lag"`
	// ShipErrors counts failed Ship attempts since the shipper
	// started (each is retried).
	ShipErrors uint64 `json:"ship_errors"`
	// LastError is the most recent Ship failure, "" if none.
	LastError string `json:"last_error,omitempty"`
}

// Shipper sequences and delivers acknowledged mutations to one
// follower. All methods are safe for concurrent use; delivery happens
// on a background goroutine so a slow or flapping link never blocks
// the primary's write path.
type Shipper struct {
	link   Link
	bo     *shardset.Backoff
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []Record
	primary  int64 // LSN of the last acknowledged primary mutation
	applied  int64 // LSN through which the follower has applied
	shipErrs uint64
	lastErr  error
	closed   bool
}

// NewShipper starts a shipper delivering over link, retrying failed
// sends with bo (nil uses the backoff defaults: 1ms base, 250ms cap).
func NewShipper(link Link, bo *shardset.Backoff) *Shipper {
	if bo == nil {
		bo = &shardset.Backoff{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Shipper{link: link, bo: bo, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.drain()
	return s
}

// Ack records one durably acknowledged primary mutation and returns
// its assigned LSN. Call it under the same lock that ordered the
// mutation so ship order equals mutation order. After Close the LSN
// still advances (the lag stays honest) but nothing is enqueued.
func (s *Shipper) Ack(rec persist.WALRecord) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primary++
	if !s.closed {
		s.queue = append(s.queue, Record{LSN: s.primary, Rec: rec})
		s.cond.Broadcast()
	}
	return s.primary
}

// Status returns the current replication state.
func (s *Shipper) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		PrimaryLSN: s.primary,
		AppliedLSN: s.applied,
		Lag:        s.primary - s.applied,
		ShipErrors: s.shipErrs,
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// WaitCaughtUp blocks until the follower has applied every
// acknowledged mutation, the context expires, or the shipper closes
// with lag outstanding.
func (s *Shipper) WaitCaughtUp(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.applied < s.primary && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.applied >= s.primary {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("replica: shipper closed with lag %d", s.primary-s.applied)
}

// Rebase declares the follower identical to the primary at lsn — used
// immediately after a snapshot bootstrap, when the follower's state
// already contains every acknowledged mutation. Pending queue entries
// are dropped: the snapshot supersedes them.
func (s *Shipper) Rebase(lsn int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primary = lsn
	s.applied = lsn
	s.queue = nil
	s.cond.Broadcast()
}

// Close stops delivery and waits for the drain goroutine to exit.
// Pending records are not shipped (Status keeps reporting the honest
// lag). Safe to call more than once.
func (s *Shipper) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.cancel()
	<-s.done
}

// drain delivers queued records in LSN order, one at a time, retrying
// each until the link accepts it or the shipper closes.
func (s *Shipper) drain() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		rec := s.queue[0]
		s.mu.Unlock()
		if !s.ship(rec) {
			return // closed mid-retry
		}
		s.mu.Lock()
		// A Rebase may have cleared the queue while the ship was in
		// flight; only advance if this record is still the head.
		if len(s.queue) > 0 && s.queue[0].LSN == rec.LSN {
			s.queue = s.queue[1:]
			if rec.LSN > s.applied {
				s.applied = rec.LSN
			}
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// ship delivers one record, retrying with backoff until it succeeds.
// It reports false if the shipper closed before delivery.
func (s *Shipper) ship(rec Record) bool {
	for attempt := 0; ; attempt++ {
		err := s.link.Ship(s.ctx, rec)
		if err == nil {
			return true
		}
		s.mu.Lock()
		s.shipErrs++
		s.lastErr = err
		closed := s.closed
		s.mu.Unlock()
		if closed || !s.bo.Sleep(s.ctx, attempt, 0) {
			return false
		}
	}
}
