package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"emdsearch/internal/persist"
	"emdsearch/internal/shardset"
)

func testBackoff() *shardset.Backoff {
	return &shardset.Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond, Seed: 1}
}

// collectLink applies shipped records to a slice, optionally failing
// the first failN attempts per LSN to exercise retry and redelivery.
type collectLink struct {
	mu      sync.Mutex
	applied []Record
	tries   map[int64]int
	failN   int
	failAll bool
}

func newCollectLink() *collectLink {
	return &collectLink{tries: map[int64]int{}}
}

func (l *collectLink) Ship(ctx context.Context, rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tries[rec.LSN]++
	if l.failAll || l.tries[rec.LSN] <= l.failN {
		return errors.New("injected ship fault")
	}
	l.applied = append(l.applied, rec)
	return nil
}

func (l *collectLink) records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.applied))
	copy(out, l.applied)
	return out
}

func (l *collectLink) setFailAll(v bool) {
	l.mu.Lock()
	l.failAll = v
	l.mu.Unlock()
}

func rec(id int) persist.WALRecord {
	return persist.WALRecord{Op: persist.WALAdd, ID: id, Label: fmt.Sprintf("r%d", id), Vector: []float64{1}}
}

func TestShipperDeliversInOrder(t *testing.T) {
	link := newCollectLink()
	s := NewShipper(link, testBackoff())
	defer s.Close()
	for i := 0; i < 20; i++ {
		if lsn := s.Ack(rec(i)); lsn != int64(i+1) {
			t.Fatalf("ack %d assigned LSN %d, want %d", i, lsn, i+1)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
	got := link.records()
	if len(got) != 20 {
		t.Fatalf("applied %d records, want 20", len(got))
	}
	for i, r := range got {
		if r.LSN != int64(i+1) || r.Rec.ID != i {
			t.Fatalf("record %d out of order: LSN %d id %d", i, r.LSN, r.Rec.ID)
		}
	}
	st := s.Status()
	if st.PrimaryLSN != 20 || st.AppliedLSN != 20 || st.Lag != 0 {
		t.Fatalf("status after catch-up: %+v", st)
	}
}

// TestShipperRetriesFlakyLink: a link that fails the first two sends
// of every record still delivers everything exactly once, in order.
func TestShipperRetriesFlakyLink(t *testing.T) {
	link := newCollectLink()
	link.failN = 2
	s := NewShipper(link, testBackoff())
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Ack(rec(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
	if got := link.records(); len(got) != 5 {
		t.Fatalf("applied %d records, want 5", len(got))
	}
	st := s.Status()
	if st.ShipErrors != 10 {
		t.Fatalf("ship errors = %d, want 10 (2 per record)", st.ShipErrors)
	}
	if st.LastError == "" {
		t.Fatal("last error not recorded")
	}
}

// TestShipperLagHonest: with the link down, the lag reports exactly
// the outstanding mutations and WaitCaughtUp times out rather than
// declaring freshness.
func TestShipperLagHonest(t *testing.T) {
	link := newCollectLink()
	link.setFailAll(true)
	s := NewShipper(link, testBackoff())
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Ack(rec(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitCaughtUp(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCaughtUp on a dead link: %v", err)
	}
	st := s.Status()
	if st.PrimaryLSN != 3 || st.Lag == 0 {
		t.Fatalf("status with dead link: %+v", st)
	}
	// Link heals: the queue drains and the lag closes.
	link.setFailAll(false)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.WaitCaughtUp(ctx2); err != nil {
		t.Fatalf("WaitCaughtUp after heal: %v", err)
	}
	if st := s.Status(); st.Lag != 0 || st.AppliedLSN != 3 {
		t.Fatalf("status after heal: %+v", st)
	}
}

func TestShipperRebase(t *testing.T) {
	link := newCollectLink()
	link.setFailAll(true) // hold the queue so Rebase has entries to drop
	s := NewShipper(link, testBackoff())
	defer s.Close()
	for i := 0; i < 4; i++ {
		s.Ack(rec(i))
	}
	s.Rebase(4)
	link.setFailAll(false)
	st := s.Status()
	if st.PrimaryLSN != 4 || st.AppliedLSN != 4 || st.Lag != 0 {
		t.Fatalf("status after rebase: %+v", st)
	}
	if err := s.WaitCaughtUp(context.Background()); err != nil {
		t.Fatalf("WaitCaughtUp after rebase: %v", err)
	}
	// New mutations continue from the rebased sequence.
	if lsn := s.Ack(rec(4)); lsn != 5 {
		t.Fatalf("ack after rebase assigned LSN %d, want 5", lsn)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShipperCloseMidRetry: Close must return promptly even while the
// drain goroutine is stuck retrying a dead link, and the lag stays
// visible afterwards.
func TestShipperCloseMidRetry(t *testing.T) {
	link := newCollectLink()
	link.setFailAll(true)
	s := NewShipper(link, &shardset.Backoff{Base: time.Hour, Cap: time.Hour, Seed: 1})
	s.Ack(rec(0))
	time.Sleep(5 * time.Millisecond) // let the drain enter its retry sleep
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a retrying link")
	}
	if st := s.Status(); st.Lag != 1 {
		t.Fatalf("lag after close = %d, want 1", st.Lag)
	}
	if err := s.WaitCaughtUp(context.Background()); err == nil {
		t.Fatal("WaitCaughtUp on a closed, lagging shipper must fail")
	}
	s.Close() // idempotent
}

// TestShipperConcurrentAcks drives Ack from many goroutines to give
// the race detector a surface; LSNs must come out dense and delivery
// complete.
func TestShipperConcurrentAcks(t *testing.T) {
	link := newCollectLink()
	s := NewShipper(link, testBackoff())
	defer s.Close()
	const n = 64
	var wg sync.WaitGroup
	lsns := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsns[i] = s.Ack(rec(i))
		}(i)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, l := range lsns {
		if l < 1 || l > n || seen[l] {
			t.Fatalf("LSNs not dense/unique: %v", lsns)
		}
		seen[l] = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	if got := link.records(); len(got) != n {
		t.Fatalf("applied %d records, want %d", len(got), n)
	}
}
