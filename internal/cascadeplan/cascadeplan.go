// Package cascadeplan chooses the depth and per-level reduced
// dimensionalities d' of the engine's lower-bound filter cascade from
// observed per-stage counters.
//
// The model prices a candidate chain m_1 < m_2 < ... < m_L per query
// as
//
//	base·c(m_1) + Σ_j s(m_{j-1})·c(m_j) + s(m_L)·r + L·overhead
//
// where base is the number of items entering the first reduced-EMD
// level (the survivors of the always-on IM prefix), c(m) is the
// fitted per-item cost of an m-dimensional reduced-EMD evaluation,
// s(m) is the expected number of items per query whose level-m lower
// bound stays below the pruning threshold, and r is the measured
// per-item exact refinement cost. Because cascade levels are nested,
// an item surviving level m survives every coarser level too, so s(m)
// is a property of the level alone — not of the chain it was observed
// under — which is what makes counters observed under one chain
// transferable to another.
//
// Fitting is deliberately simple: per-item cost follows c(m) = A·m³+B
// (simplex work grows roughly cubically in the level dimensionality,
// plus a fixed per-item overhead), and survivor counts are
// interpolated log-log between the observed levels, anchored at
// (1, base) on the coarse end and (d, answers-per-query) on the fine
// end. The proposal step then runs an exact dynamic program over the
// candidate dimensionalities — the chain cost depends on the previous
// level only through its survivor count, so the cheapest chain ending
// at each candidate is computable left to right.
package cascadeplan

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"
)

// Observation is one filter level's aggregated counters over a window
// of queries: how many items it evaluated, how many of those survived
// (were consumed by the next stage or pulled for refinement), and the
// wall time it took.
type Observation struct {
	Dims        int
	Evaluations int64
	Survivors   int64
	Time        time.Duration
}

// Workload is everything the planner consumes: per-level observations
// plus the refinement counters, all aggregated over Queries served
// queries.
type Workload struct {
	// Queries is the number of queries the counters aggregate over.
	Queries int64
	// Dim is the original histogram dimensionality d.
	Dim int
	// Levels are the observed reduced-EMD filter levels, any order.
	Levels []Observation
	// Refinements and RefineTime are the exact-refinement counters of
	// the window; Results is the total number of answers returned
	// (the irreducible floor of per-query survivors at full
	// dimensionality).
	Refinements int64
	RefineTime  time.Duration
	Results     int64
}

// Plan is a proposed cascade: per-level reduced dimensionalities in
// ascending (coarse→fine) order, the model's predicted per-query cost
// in nanoseconds, and a fingerprint of the levels.
type Plan struct {
	Levels []int
	Cost   float64
	ID     uint64
}

// Config tunes the planner.
type Config struct {
	// OverheadNS is the fixed per-level per-query cost (stage setup,
	// query reduction, ranking bookkeeping) charged to discourage
	// gratuitous depth; 0 selects the default of 5µs.
	OverheadNS float64
}

// defaultOverheadNS is the per-level depth regularizer: roughly the
// cost of preparing a query reduction and threading one more lazy
// stage through the candidate ranking.
const defaultOverheadNS = 5_000

// fixedCostShare is the fraction of a single observed per-item cost
// attributed to dimension-independent overhead when only one level
// has been observed and the intercept cannot be fitted.
const fixedCostShare = 0.15

// minSurvivors floors every survivor estimate: log-log interpolation
// needs strictly positive points, and a level observed to prune
// everything still costs at least "almost nothing survived".
const minSurvivors = 0.25

// PlanID fingerprints a level chain (FNV-64a over the dims), so plans
// can be compared and persisted without comparing slices.
func PlanID(levels []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(levels)))
	h.Write(b[:])
	for _, l := range levels {
		binary.LittleEndian.PutUint64(b[:], uint64(l))
		h.Write(b[:])
	}
	return h.Sum64()
}

// survPoint is one anchor of the survivor curve.
type survPoint struct {
	dims float64
	s    float64
}

// Model is a fitted workload model; see the package comment for the
// cost structure.
type Model struct {
	dim        int
	base       float64 // items entering the first reduced-EMD level, per query
	costA      float64 // per-item cost: costA·m³ + costB, in ns
	costB      float64
	refineNS   float64 // per-item exact refinement cost, ns
	overheadNS float64
	surv       []survPoint // ascending dims, nonincreasing survivors
}

// Fit fits the cost and survivor curves from a workload window. It
// fails when the window carries no usable signal (no queries, no
// level observations, or no evaluation counts).
func Fit(w Workload, cfg Config) (*Model, error) {
	if w.Queries < 1 {
		return nil, fmt.Errorf("cascadeplan: workload covers %d queries", w.Queries)
	}
	if w.Dim < 2 {
		return nil, fmt.Errorf("cascadeplan: dimensionality %d, want >= 2", w.Dim)
	}
	obs := make([]Observation, 0, len(w.Levels))
	for _, o := range w.Levels {
		if o.Dims >= 1 && o.Dims <= w.Dim && o.Evaluations > 0 {
			obs = append(obs, o)
		}
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("cascadeplan: no level observations with evaluations")
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Dims < obs[j].Dims })

	m := &Model{dim: w.Dim, overheadNS: cfg.OverheadNS}
	if m.overheadNS <= 0 {
		m.overheadNS = defaultOverheadNS
	}
	q := float64(w.Queries)
	// The coarsest observed level sees everything the IM prefix let
	// through; that entry rate is chain-independent to first order.
	m.base = float64(obs[0].Evaluations) / q

	m.fitEvalCost(obs)
	if w.Refinements > 0 && w.RefineTime > 0 {
		m.refineNS = float64(w.RefineTime) / float64(w.Refinements)
	} else {
		// No refinement signal yet: price refinement as a full-
		// dimensional evaluation, the natural continuation of c(m).
		m.refineNS = m.EvalCost(w.Dim)
	}

	// Survivor anchors: (1, base) — a one-bin bound prunes nothing
	// beyond the prefix — the observed levels, and the answer floor at
	// full dimensionality (a perfect bound still passes the answers).
	floor := math.Max(1, float64(w.Results)/q)
	points := map[float64]float64{1: m.base, float64(w.Dim): floor}
	for _, o := range obs {
		s := float64(o.Survivors) / q
		if prev, ok := points[float64(o.Dims)]; !ok || s < prev {
			points[float64(o.Dims)] = s
		}
	}
	for d, s := range points {
		m.surv = append(m.surv, survPoint{dims: d, s: math.Max(s, minSurvivors)})
	}
	sort.Slice(m.surv, func(i, j int) bool { return m.surv[i].dims < m.surv[j].dims })
	// Monotone repair: finer levels cannot pass more than coarser ones.
	for i := 1; i < len(m.surv); i++ {
		if m.surv[i].s > m.surv[i-1].s {
			m.surv[i].s = m.surv[i-1].s
		}
	}
	return m, nil
}

// fitEvalCost fits c(m) = A·m³ + B (ns per evaluation) from the
// observed per-level per-item costs.
func (m *Model) fitEvalCost(obs []Observation) {
	type pt struct{ x, y float64 } // x = m³, y = ns/eval
	var pts []pt
	for _, o := range obs {
		if o.Time <= 0 {
			continue
		}
		x := float64(o.Dims) * float64(o.Dims) * float64(o.Dims)
		pts = append(pts, pt{x: x, y: float64(o.Time) / float64(o.Evaluations)})
	}
	switch len(pts) {
	case 0:
		// No timings (cold engine): fall back to a nominal 1µs at the
		// coarsest observed level so proposals are still well-ordered.
		x := float64(obs[0].Dims)
		m.costA = (1 - fixedCostShare) * 1000 / (x * x * x)
		m.costB = fixedCostShare * 1000
	case 1:
		m.costA = (1 - fixedCostShare) * pts[0].y / pts[0].x
		m.costB = fixedCostShare * pts[0].y
	default:
		var sx, sy, sxx, sxy float64
		for _, p := range pts {
			sx += p.x
			sy += p.y
			sxx += p.x * p.x
			sxy += p.x * p.y
		}
		n := float64(len(pts))
		det := n*sxx - sx*sx
		if det > 0 {
			m.costA = (n*sxy - sx*sy) / det
			m.costB = (sy*sxx - sx*sxy) / det
		}
		if m.costA <= 0 {
			// Degenerate fit (identical dims, noise): flat cost.
			m.costA, m.costB = 0, sy/n
		} else if m.costB < 0 {
			m.costB = 0
			m.costA = sxy / sxx
		}
	}
}

// EvalCost predicts the per-item cost, in nanoseconds, of one
// reduced-EMD evaluation at the given level dimensionality.
func (m *Model) EvalCost(dims int) float64 {
	x := float64(dims)
	c := m.costA*x*x*x + m.costB
	if c < 1 {
		c = 1
	}
	return c
}

// Survivors predicts how many items per query survive a level of the
// given dimensionality (log-log interpolation between the anchors,
// clamped at the ends).
func (m *Model) Survivors(dims int) float64 {
	x := float64(dims)
	if x <= m.surv[0].dims {
		return m.surv[0].s
	}
	last := m.surv[len(m.surv)-1]
	if x >= last.dims {
		return last.s
	}
	for i := 1; i < len(m.surv); i++ {
		p0, p1 := m.surv[i-1], m.surv[i]
		if x > p1.dims {
			continue
		}
		t := (math.Log(x) - math.Log(p0.dims)) / (math.Log(p1.dims) - math.Log(p0.dims))
		return math.Exp(math.Log(p0.s) + t*(math.Log(p1.s)-math.Log(p0.s)))
	}
	return last.s
}

// ChainCost predicts the per-query cost, in nanoseconds, of a chain
// of levels (ascending coarse→fine, distinct, within [1, d]).
func (m *Model) ChainCost(levels []int) (float64, error) {
	if err := ValidateLevels(levels, m.dim); err != nil {
		return 0, err
	}
	cost := m.base * m.EvalCost(levels[0])
	for i := 1; i < len(levels); i++ {
		cost += m.Survivors(levels[i-1]) * m.EvalCost(levels[i])
	}
	cost += m.Survivors(levels[len(levels)-1]) * m.refineNS
	cost += float64(len(levels)) * m.overheadNS
	return cost, nil
}

// ValidateLevels checks a chain is strictly ascending and within
// [1, dim].
func ValidateLevels(levels []int, dim int) error {
	if len(levels) == 0 {
		return fmt.Errorf("cascadeplan: empty chain")
	}
	for i, l := range levels {
		if l < 1 || l > dim {
			return fmt.Errorf("cascadeplan: level %d out of range [1, %d]", l, dim)
		}
		if i > 0 && l <= levels[i-1] {
			return fmt.Errorf("cascadeplan: levels not strictly ascending: %v", levels)
		}
	}
	return nil
}

// Candidates returns the default candidate dimensionalities for a
// d-dimensional space — the powers of two in [2, d) — merged with any
// extra dims (typically the currently-active chain's levels, so the
// incumbent is always representable), deduplicated and ascending.
func Candidates(dim int, extra ...int) []int {
	seen := map[int]bool{}
	var out []int
	for p := 2; p < dim; p *= 2 {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, x := range extra {
		if x >= 1 && x <= dim && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// Propose returns the cheapest chain over the candidate set (see
// Candidates; extras typically carry the incumbent chain's levels).
// The dynamic program is exact: the cost of extending a chain depends
// on its last level only, so the cheapest chain ending at each
// candidate is computed left to right and closed with the refinement
// term.
func (m *Model) Propose(extra ...int) (*Plan, error) {
	cand := Candidates(m.dim, extra...)
	if len(cand) == 0 {
		return nil, fmt.Errorf("cascadeplan: no candidate levels for d=%d", m.dim)
	}
	type cell struct {
		cost float64
		prev int
	}
	f := make([]cell, len(cand))
	for j := range cand {
		c := m.EvalCost(cand[j])
		best, prev := m.base*c, -1
		for i := 0; i < j; i++ {
			if v := f[i].cost + m.Survivors(cand[i])*c; v < best {
				best, prev = v, i
			}
		}
		f[j] = cell{cost: best + m.overheadNS, prev: prev}
	}
	bestCost, bestEnd := math.Inf(1), -1
	for j := range cand {
		if v := f[j].cost + m.Survivors(cand[j])*m.refineNS; v < bestCost {
			bestCost, bestEnd = v, j
		}
	}
	var levels []int
	for j := bestEnd; j >= 0; j = f[j].prev {
		levels = append(levels, cand[j])
	}
	for i, j := 0, len(levels)-1; i < j; i, j = i+1, j-1 {
		levels[i], levels[j] = levels[j], levels[i]
	}
	return &Plan{Levels: levels, Cost: bestCost, ID: PlanID(levels)}, nil
}

// Propose is the one-call convenience: fit a model from the workload
// and return its cheapest chain.
func Propose(w Workload, cfg Config, extra ...int) (*Plan, error) {
	m, err := Fit(w, cfg)
	if err != nil {
		return nil, err
	}
	return m.Propose(extra...)
}
