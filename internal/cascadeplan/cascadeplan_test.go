package cascadeplan

import (
	"math"
	"testing"
	"time"
)

// workload32 builds a plausible window for d=32, d'=16: 1000 items
// enter the level, ~60 survive to refinement, refinement is expensive.
func workload32() Workload {
	return Workload{
		Queries: 100,
		Dim:     32,
		Levels: []Observation{
			{Dims: 16, Evaluations: 100_000, Survivors: 6_000, Time: 500 * time.Millisecond},
		},
		Refinements: 6_000,
		RefineTime:  3 * time.Second, // 500µs per exact solve
		Results:     1_000,           // k=10
	}
}

func TestFitRejectsEmptyWindows(t *testing.T) {
	cases := []Workload{
		{},
		{Queries: 10, Dim: 32},
		{Queries: 0, Dim: 32, Levels: []Observation{{Dims: 16, Evaluations: 10}}},
		{Queries: 10, Dim: 1, Levels: []Observation{{Dims: 1, Evaluations: 10}}},
		{Queries: 10, Dim: 32, Levels: []Observation{{Dims: 16, Evaluations: 0}}},
	}
	for i, w := range cases {
		if _, err := Fit(w, Config{}); err == nil {
			t.Errorf("case %d: Fit accepted an unusable window %+v", i, w)
		}
	}
}

func TestEvalCostCubicAndMonotone(t *testing.T) {
	m, err := Fit(workload32(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, d := range []int{2, 4, 8, 16, 32} {
		c := m.EvalCost(d)
		if c <= prev {
			t.Fatalf("EvalCost(%d) = %g, not increasing (prev %g)", d, c, prev)
		}
		prev = c
	}
	// The observed point must be roughly reproduced: 500ms / 100k
	// evaluations = 5µs per 16-dim evaluation.
	if got := m.EvalCost(16); math.Abs(got-5000) > 1 {
		t.Fatalf("EvalCost(16) = %g ns, want ~5000", got)
	}
}

func TestSurvivorsInterpolatesMonotone(t *testing.T) {
	m, err := Fit(workload32(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Anchors: (1, 1000), (16, 60), (32, 10).
	if got := m.Survivors(1); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("Survivors(1) = %g, want 1000", got)
	}
	if got := m.Survivors(16); math.Abs(got-60) > 1e-9 {
		t.Fatalf("Survivors(16) = %g, want 60", got)
	}
	if got := m.Survivors(32); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Survivors(32) = %g, want 10", got)
	}
	prev := math.Inf(1)
	for d := 1; d <= 32; d++ {
		s := m.Survivors(d)
		if s > prev+1e-9 {
			t.Fatalf("Survivors(%d) = %g > Survivors(%d) = %g", d, s, d-1, prev)
		}
		if s < minSurvivors-1e-12 {
			t.Fatalf("Survivors(%d) = %g below floor", d, s)
		}
		prev = s
	}
}

func TestProposePrefersPyramidWhenRefinementDominates(t *testing.T) {
	// Expensive refinement + loose observed level: the planner should
	// both prepend a cheap coarse level and push the finest level past
	// the observed d'=8 to cut survivors before the exact stage.
	w := Workload{
		Queries: 200,
		Dim:     64,
		Levels: []Observation{
			{Dims: 8, Evaluations: 2_000_000, Survivors: 400_000, Time: 2 * time.Second},
		},
		Refinements: 400_000,
		RefineTime:  400 * time.Second, // 1ms per exact solve
		Results:     2_000,
	}
	m, err := Fit(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Propose(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLevels(plan.Levels, w.Dim); err != nil {
		t.Fatalf("proposed invalid chain: %v", err)
	}
	finest := plan.Levels[len(plan.Levels)-1]
	if finest <= 8 {
		t.Fatalf("plan %v keeps finest at %d; expensive refinement should push it finer", plan.Levels, finest)
	}
	// The proposal must beat the incumbent single-level chain under
	// the same model.
	incumbent, err := m.ChainCost([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost >= incumbent {
		t.Fatalf("plan cost %g not below incumbent %g", plan.Cost, incumbent)
	}
	if plan.ID != PlanID(plan.Levels) {
		t.Fatalf("plan ID mismatch")
	}
}

func TestProposeKeepsCoarseFinestWhenRefinementIsCheap(t *testing.T) {
	// Refinement as cheap as a filter evaluation: there is nothing to
	// gain from pruning harder before the exact stage, so the finest
	// level must not be pushed past the observed d'. (Prepending an
	// even coarser level can still pay — that saves filter cost.)
	w := Workload{
		Queries: 100,
		Dim:     32,
		Levels: []Observation{
			{Dims: 8, Evaluations: 100_000, Survivors: 5_000, Time: 100 * time.Millisecond},
		},
		Refinements: 5_000,
		RefineTime:  10 * time.Millisecond, // 2µs: cheaper than most levels
		Results:     1_000,
	}
	m, err := Fit(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Propose(8)
	if err != nil {
		t.Fatal(err)
	}
	if finest := plan.Levels[len(plan.Levels)-1]; finest > 8 {
		t.Fatalf("plan %v: cheap refinement should not push the finest level past 8", plan.Levels)
	}
}

func TestProposeIsDPOptimal(t *testing.T) {
	// Brute-force all subsets of the candidate set and check the DP
	// found the cheapest chain.
	m, err := Fit(workload32(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Propose(16)
	if err != nil {
		t.Fatal(err)
	}
	cand := Candidates(32, 16) // {2,4,8,16}
	best := math.Inf(1)
	var bestLevels []int
	for mask := 1; mask < 1<<len(cand); mask++ {
		var levels []int
		for i, c := range cand {
			if mask&(1<<i) != 0 {
				levels = append(levels, c)
			}
		}
		cost, err := m.ChainCost(levels)
		if err != nil {
			t.Fatal(err)
		}
		if cost < best {
			best, bestLevels = cost, levels
		}
	}
	if math.Abs(plan.Cost-best) > 1e-6 {
		t.Fatalf("Propose cost %g (levels %v) != brute-force optimum %g (levels %v)",
			plan.Cost, plan.Levels, best, bestLevels)
	}
}

func TestChainCostValidation(t *testing.T) {
	m, err := Fit(workload32(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, levels := range [][]int{nil, {0}, {33}, {8, 8}, {16, 8}} {
		if _, err := m.ChainCost(levels); err == nil {
			t.Errorf("ChainCost(%v) accepted an invalid chain", levels)
		}
	}
}

func TestCandidates(t *testing.T) {
	got := Candidates(32, 24, 32, 0, -1, 2)
	want := []int{2, 4, 8, 16, 24, 32}
	if len(got) != len(want) {
		t.Fatalf("Candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Candidates = %v, want %v", got, want)
		}
	}
}

func TestPlanIDDistinguishesChains(t *testing.T) {
	ids := map[uint64][]int{}
	for _, levels := range [][]int{{8}, {2, 8}, {4, 8}, {2, 4, 8}, {2, 4, 16}} {
		id := PlanID(levels)
		if prev, dup := ids[id]; dup {
			t.Fatalf("PlanID collision between %v and %v", prev, levels)
		}
		ids[id] = levels
	}
}

func TestFitColdEngineNoTimings(t *testing.T) {
	// Zero durations (counters observed before any timing accrued):
	// the model must still produce ordered costs and a valid plan.
	w := Workload{
		Queries: 10,
		Dim:     32,
		Levels:  []Observation{{Dims: 8, Evaluations: 1000, Survivors: 100}},
		Results: 50,
	}
	m, err := Fit(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.EvalCost(2) >= m.EvalCost(32) {
		t.Fatalf("cold-engine costs not ordered")
	}
	if _, err := m.Propose(8); err != nil {
		t.Fatal(err)
	}
}
