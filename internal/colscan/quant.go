package colscan

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
)

// quantLevels is the largest quantum index the int16 columns use. One
// step below MaxInt16 leaves headroom so the clamp after the float
// division can never overflow the representation.
const quantLevels = 32766

// Quantized is the int16-quantized form of a Columns layout plus the
// per-block metadata that keeps the quantized Red-IM bound *certified*:
// every value the QuantScanner emits is guaranteed <= the true Red-IM
// bound of the item, hence a true EMD lower bound, hence safe as a
// first filter stage without ever losing a result.
//
// Quantization is per block: scale[b] is the dequantization step of
// block b (value ≈ q * scale), chosen from the block's maximum entry
// so that small-valued blocks keep fine resolution. Every entry is
// rounded *down* (floor, with a post-check against float rounding), so
// each dequantized value is <= its true value and the per-item mass
// deficit is at most Δ_b = max_i Σ_j (v_ij - q_ij*scale_b).
//
// margin[b] is the certified error budget of the scanner's tangent
// evaluation (see QuantScanner and DESIGN.md §12):
//
//	margin[b] >= Cmax * (d'+1) * Δ_b
//
// plus a small Cmax-relative slack for float arithmetic. ref[b] is the
// block's normalized mean histogram — the tangent point — derived from
// the quantized data itself (never serialized, so it cannot drift out
// of sync with the columns).
type Quantized struct {
	n, dims, block int
	costMax        float64
	cols           [][]int16
	scales         []float64
	margins        []float64
	refs           [][]float64
}

// Quantize derives the int16 filter from float columns. costMax must
// be the maximum entry of the reduced cost matrix the bound will be
// evaluated under (it calibrates the error margins). The input
// columns must be non-negative and finite (reduced histograms are).
func Quantize(c *Columns, costMax float64) (*Quantized, error) {
	if math.IsNaN(costMax) || math.IsInf(costMax, 0) || costMax < 0 {
		return nil, fmt.Errorf("colscan: invalid cost maximum %g", costMax)
	}
	nb := c.Blocks()
	q := &Quantized{
		n:       c.n,
		dims:    c.dims,
		block:   c.block,
		costMax: costMax,
		cols:    make([][]int16, c.dims),
		scales:  make([]float64, nb),
		margins: make([]float64, nb),
	}
	backing := make([]int16, c.n*c.dims)
	for j := range q.cols {
		q.cols[j] = backing[j*c.n : (j+1)*c.n : (j+1)*c.n]
	}
	resid := make([]float64, c.block)
	for b := 0; b < nb; b++ {
		lo, hi := c.BlockBounds(b)
		var maxv float64
		for _, col := range c.cols {
			for _, v := range col[lo:hi] {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return nil, fmt.Errorf("colscan: column value %g at block %d, want finite >= 0", v, b)
				}
				if v > maxv {
					maxv = v
				}
			}
		}
		var scale float64
		if maxv > 0 {
			scale = maxv / quantLevels
		}
		q.scales[b] = scale
		rs := resid[:hi-lo]
		for k := range rs {
			rs[k] = 0
		}
		for j, col := range c.cols {
			qcol := q.cols[j][lo:hi]
			for k, v := range col[lo:hi] {
				var t int
				if scale > 0 && v > 0 {
					t = int(v / scale)
					if t > quantLevels {
						t = quantLevels
					}
					// Float division can round up; walk down until the
					// dequantized value provably does not exceed v.
					for t > 0 && float64(t)*scale > v {
						t--
					}
				}
				qcol[k] = int16(t)
				rs[k] += v - float64(t)*scale
			}
		}
		var maxResid float64
		for _, r := range rs {
			if r > maxResid {
				maxResid = r
			}
		}
		q.margins[b] = certifiedMargin(costMax, c.dims, maxResid)
	}
	q.refs = deriveRefs(q)
	return q, nil
}

// certifiedMargin is the per-block error budget of the tangent
// evaluation (derivation in DESIGN.md §12): the tangent planes'
// coefficients are bounded by Cmax, the forward plane sums one
// coefficient per query bin (d' of them) and the backward plane one,
// and the evaluation point is off the true histogram by at most Δ in
// l1. The (1+1e-9) factor and Cmax-relative absolute term absorb the
// float arithmetic of quantization, tangent compilation and kernel
// evaluation, matching the guard conventions used elsewhere in the
// repo.
func certifiedMargin(costMax float64, dims int, maxResid float64) float64 {
	return costMax*float64(dims+1)*maxResid*(1+1e-9) + 1e-9*costMax
}

// deriveRefs computes each block's tangent point: the block's mean
// dequantized histogram, normalized onto the unit simplex (the
// forward bound is only convex there; see compileTangent). Derived
// deterministically from the quantized data so Quantize and
// RestoreQuantized always agree.
func deriveRefs(q *Quantized) [][]float64 {
	nb := blocksFor(q.n, q.block)
	refs := make([][]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * q.block
		hi := lo + q.block
		if hi > q.n {
			hi = q.n
		}
		ref := make([]float64, q.dims)
		refs[b] = ref
		scale := q.scales[b]
		if scale == 0 || hi == lo {
			continue
		}
		var sum float64
		for j, col := range q.cols {
			var cj float64
			for _, qv := range col[lo:hi] {
				cj += float64(qv)
			}
			ref[j] = cj * scale
			sum += ref[j]
		}
		if sum <= 0 {
			for j := range ref {
				ref[j] = 0
			}
			continue
		}
		for j := range ref {
			ref[j] /= sum
		}
	}
	return refs
}

// Len returns the number of items.
func (q *Quantized) Len() int { return q.n }

// Dims returns the number of reduced dimensions.
func (q *Quantized) Dims() int { return q.dims }

// BlockSize returns the block partition length.
func (q *Quantized) BlockSize() int { return q.block }

// CostMax returns the reduced-cost maximum the margins were
// calibrated for.
func (q *Quantized) CostMax() float64 { return q.costMax }

// Scales returns the per-block dequantization steps. Shared,
// read-only — exposed for serialization.
func (q *Quantized) Scales() []float64 { return q.scales }

// Margins returns the per-block certified error margins. Shared,
// read-only — exposed for serialization.
func (q *Quantized) Margins() []float64 { return q.margins }

// Data returns the int16 columns. Shared, read-only — exposed for
// serialization.
func (q *Quantized) Data() [][]int16 { return q.cols }

// blocksFor returns the block count for n items at the given block
// length.
func blocksFor(n, block int) int {
	if n == 0 {
		return 0
	}
	return (n + block - 1) / block
}

// RestoreQuantized reassembles a Quantized from its serialized parts,
// validating every structural and semantic invariant: dimensions and
// block geometry, per-block metadata lengths, finite non-negative
// scales and margins, and non-negative quantum values. A corrupted or
// hand-edited snapshot section fails here with a descriptive error
// (which persistence wraps as ErrCorrupt) instead of producing a
// silently wrong — i.e. potentially unsound — filter.
func RestoreQuantized(n, dims, block int, costMax float64, scales, margins []float64, cols [][]int16) (*Quantized, error) {
	if n < 0 || dims < 1 || block < 1 {
		return nil, fmt.Errorf("colscan: restore with n=%d dims=%d block=%d", n, dims, block)
	}
	if math.IsNaN(costMax) || math.IsInf(costMax, 0) || costMax < 0 {
		return nil, fmt.Errorf("colscan: restore with cost maximum %g", costMax)
	}
	nb := blocksFor(n, block)
	if len(scales) != nb || len(margins) != nb {
		return nil, fmt.Errorf("colscan: restore with %d scales, %d margins for %d blocks", len(scales), len(margins), nb)
	}
	for b, s := range scales {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, fmt.Errorf("colscan: restore with scale %g at block %d", s, b)
		}
		if m := margins[b]; math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
			return nil, fmt.Errorf("colscan: restore with margin %g at block %d", m, b)
		}
	}
	if len(cols) != dims {
		return nil, fmt.Errorf("colscan: restore with %d columns for %d dims", len(cols), dims)
	}
	for j, col := range cols {
		if len(col) != n {
			return nil, fmt.Errorf("colscan: restore column %d has %d items, want %d", j, len(col), n)
		}
		for _, v := range col {
			if v < 0 {
				return nil, fmt.Errorf("colscan: restore column %d holds negative quantum %d", j, v)
			}
		}
	}
	q := &Quantized{
		n: n, dims: dims, block: block, costMax: costMax,
		cols: cols, scales: scales, margins: margins,
	}
	q.refs = deriveRefs(q)
	return q, nil
}

// QuantScanner evaluates the certified quantized Red-IM bound over a
// Quantized layout. Unlike IMScanner it has no bit-identity contract
// with the scalar bound — only the soundness contract that every
// emitted value is <= the true Red-IM bound of the item.
//
// The kernel is two dot products per item. Both directions of the IM
// relaxation are convex functions of the item histogram on the unit
// simplex (each is the value function of a small transportation LP
// with the histogram on the right-hand side), so the tangent plane at
// any simplex point under-estimates them everywhere on the simplex.
// Per query and per block the scanner compiles the tangent planes of
// both directions at the block's reference point (its normalized mean
// histogram) — a few hundred scalar operations amortized over the
// whole block — and then evaluates each item with a branch-free
// linear pass over the int16 columns:
//
//	value = max(A + u·ŷ, B + w·ŷ) - margin   (clamped at 0)
//
// where ŷ is the dequantized item. The margin covers the l1 gap
// between ŷ and the true histogram (floor quantization) times the
// tangent coefficients' bound Cmax; the tangent gap itself only makes
// the bound smaller, never invalid.
//
// Soundness requires normalized histograms on both sides (unit total
// mass): that is what places items on the simplex where the forward
// value function is convex. The engine validates normalization at
// ingest, so the contract holds for every stored item and query.
type QuantScanner struct {
	q        *Quantized
	cost     [][]float64
	rowOrder [][]int32
	colOrder [][]int32
	rowCost  [][]float64
}

// NewQuantScanner compiles the scanner for one bound/layout pair; the
// bound must be the same Red-IM instance (same reduced cost matrix)
// the layout's margins were calibrated for.
func NewQuantScanner(im *lb.IM, q *Quantized) (*QuantScanner, error) {
	rows, cs := im.Dims()
	if rows != cs {
		return nil, fmt.Errorf("colscan: IM cost is %dx%d, want square", rows, cs)
	}
	if rows != q.dims {
		return nil, fmt.Errorf("colscan: IM dimensionality %d != quantized columns %d", rows, q.dims)
	}
	s := &QuantScanner{
		q:        q,
		cost:     im.Cost(),
		rowOrder: im.RowOrders(),
		colOrder: im.ColOrders(),
		rowCost:  make([][]float64, rows),
	}
	for i, order := range s.rowOrder {
		rc := make([]float64, len(order))
		for t, j := range order {
			rc[t] = s.cost[i][j]
		}
		s.rowCost[i] = rc
	}
	return s, nil
}

// compileTangent builds the two tangent planes of the IM bound at
// reference point ref (a simplex histogram): the forward plane
// A + u·y and the backward plane B + w·y, each a certified
// under-estimate of its direction for any simplex histogram y. u and
// w are written in place (len dims); bins and tabs are the compiled
// query (compileQuery / compileBwd).
//
// Forward: per query bin, the greedy fill against caps ref is the LP
// optimum; its dual prices the capacity of each saturated bin at
// (c_end - c_j) — the saving of routing one unit there instead of at
// the walk's final marginal cost c_end. Those duals are exactly a
// subgradient of the (convex) value function at ref.
//
// Backward: per column, the walk value is a convex piecewise-linear
// function of the item's bin mass; the tangent at ref[j] has slope
// equal to the segment cost at ref[j].
func (s *QuantScanner) compileTangent(bins []qbin, tabs [][]bwdEntry, ref []float64, u, w []float64) (A, B float64) {
	for j := range u {
		u[j] = 0
		w[j] = 0
	}
	for bi := range bins {
		qb := &bins[bi]
		remaining := qb.mass
		var gi, cEnd float64
		for t, j := range qb.order {
			cap := ref[j]
			if cap == 0 {
				continue
			}
			cEnd = qb.cost[t]
			if cap >= remaining {
				gi += remaining * cEnd
				remaining = 0
				break
			}
			gi += cap * cEnd
			remaining -= cap
		}
		A += gi
		// Dual prices: lambda_j = max(0, cEnd - c_j) for EVERY target
		// bin, including the ones the walk skipped for zero capacity —
		// those are trivially saturated (flow = cap = 0), and pricing
		// them is what keeps the plane below the bound for items that
		// do have mass there. Costs are ascending, so stop at cEnd.
		for t, j := range qb.order {
			c := qb.cost[t]
			if c >= cEnd {
				break
			}
			u[j] -= cEnd - c
		}
	}
	for j := range tabs {
		tab := tabs[j]
		if len(tab) == 0 {
			continue
		}
		slope := tab[0].cost
		var val float64
		remaining := ref[j]
		for _, e := range tab {
			slope = e.cost
			if e.cap >= remaining {
				val += remaining * e.cost
				remaining = 0
				break
			}
			val += e.cap * e.cost
			remaining -= e.cap
		}
		w[j] = slope
		B += val
	}
	// Shift the constants so the planes evaluate directly at an item
	// histogram: A' = A - u·ref, B' = B - w·ref.
	for j, r := range ref {
		A -= u[j] * r
		B -= w[j] * r
	}
	return A, B
}

// ScanAll computes the certified quantized bound of query x (already
// reduced) against every item, writing item i's value to out[i] and
// returning the number of items evaluated (always Len).
func (s *QuantScanner) ScanAll(x emd.Histogram, out []float64) int {
	q := s.q
	if len(x) != q.dims {
		panic(fmt.Sprintf("colscan: query has %d dims, quantized columns %d", len(x), q.dims))
	}
	if len(out) < q.n {
		panic(fmt.Sprintf("colscan: out has %d slots for %d items", len(out), q.n))
	}
	bins := compileQuery(x, s.rowOrder, s.rowCost)
	tabs := makeBwdTabs(q.dims)
	compileBwd(x, s.cost, s.colOrder, tabs)
	u := make([]float64, q.dims)
	w := make([]float64, q.dims)
	acc1 := make([]float64, q.block)
	acc2 := make([]float64, q.block)
	for b := 0; b < blocksFor(q.n, q.block); b++ {
		lo := b * q.block
		hi := lo + q.block
		if hi > q.n {
			hi = q.n
		}
		m := hi - lo
		outb := out[lo:hi]
		scale := q.scales[b]
		if scale == 0 {
			// All-zero block: both relaxations are 0, margin-free.
			for k := range outb {
				outb[k] = 0
			}
			continue
		}
		A, B := s.compileTangent(bins, tabs, q.refs[b], u, w)
		margin := q.margins[b]
		a1 := acc1[:m]
		a2 := acc2[:m]
		for k := range a1 {
			a1[k] = A
			a2[k] = B
		}
		for j, col := range q.cols {
			// Evaluate at the dequantized item: coefficient * scale
			// folds the dequantization into the dot product.
			uj := u[j] * scale
			wj := w[j] * scale
			seg := col[lo:hi]
			for k, qv := range seg {
				f := float64(qv)
				a1[k] += uj * f
				a2[k] += wj * f
			}
		}
		for k := range outb {
			v := a1[k]
			if a2[k] > v {
				v = a2[k]
			}
			v -= margin
			if v < 0 {
				v = 0
			}
			outb[k] = v
		}
	}
	return q.n
}

// DistanceAt computes the certified quantized bound for a single
// item, consistent with ScanAll's out[i] (same tangent planes, same
// evaluation order). It recompiles the item's block tangent per call,
// so it is only meant for tests and occasional chained use — the scan
// path is ScanAll.
func (s *QuantScanner) DistanceAt(x emd.Histogram, i int) float64 {
	q := s.q
	b := i / q.block
	scale := q.scales[b]
	if scale == 0 {
		return 0
	}
	bins := compileQuery(x, s.rowOrder, s.rowCost)
	tabs := makeBwdTabs(q.dims)
	compileBwd(x, s.cost, s.colOrder, tabs)
	u := make([]float64, q.dims)
	w := make([]float64, q.dims)
	A, B := s.compileTangent(bins, tabs, q.refs[b], u, w)
	e1, e2 := A, B
	for j, col := range q.cols {
		f := float64(col[i])
		e1 += u[j] * scale * f
		e2 += w[j] * scale * f
	}
	v := e1
	if e2 > v {
		v = e2
	}
	v -= q.margins[b]
	if v < 0 {
		v = 0
	}
	return v
}
