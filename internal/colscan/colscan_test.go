package colscan

import (
	"math"
	"math/rand"
	"testing"

	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
)

// randCost builds a random symmetric cost matrix with zero diagonal —
// the shape of every reduced cost matrix the engine produces.
func randCost(d int, rng *rand.Rand) emd.CostMatrix {
	c := make(emd.CostMatrix, d)
	for i := range c {
		c[i] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := rng.Float64() * 10
			c[i][j] = v
			c[j][i] = v
		}
	}
	return c
}

// randHist draws a normalized histogram; shape picks the mass
// distribution: 0 near-uniform, 1 sparse, 2 single spike.
func randHist(d int, shape int, rng *rand.Rand) emd.Histogram {
	h := make(emd.Histogram, d)
	switch shape {
	case 0:
		for i := range h {
			h[i] = 0.5 + rng.Float64()
		}
	case 1:
		for i := range h {
			if rng.Intn(3) == 0 {
				h[i] = rng.Float64()
			}
		}
		h[rng.Intn(d)] += 0.1 // never all-zero
	default:
		h[rng.Intn(d)] = 1
		return h
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// buildFixture returns a compiled IM bound, the per-item vectors, and
// the columnar layout of the same data.
func buildFixture(t *testing.T, n, d, block int, rng *rand.Rand) (*lb.IM, []emd.Histogram, *Columns) {
	t.Helper()
	cost := randCost(d, rng)
	im, err := lb.NewIM(cost)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]emd.Histogram, n)
	for i := range vecs {
		vecs[i] = randHist(d, i%3, rng)
	}
	cols, err := Build(n, d, block, func(i int, dst []float64) { copy(dst, vecs[i]) })
	if err != nil {
		t.Fatal(err)
	}
	return im, vecs, cols
}

func TestColumnsGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, vecs, cols := buildFixture(t, 101, 7, 16, rng)
	if cols.Len() != 101 || cols.Dims() != 7 || cols.BlockSize() != 16 {
		t.Fatalf("geometry = (%d,%d,%d)", cols.Len(), cols.Dims(), cols.BlockSize())
	}
	if got, want := cols.Blocks(), 7; got != want {
		t.Fatalf("Blocks() = %d, want %d", got, want)
	}
	if lo, hi := cols.BlockBounds(6); lo != 96 || hi != 101 {
		t.Fatalf("last block bounds = [%d,%d)", lo, hi)
	}
	dst := make([]float64, 7)
	for i, v := range vecs {
		got := cols.Gather(i, dst)
		for j := range v {
			if math.Float64bits(got[j]) != math.Float64bits(v[j]) {
				t.Fatalf("item %d dim %d: %v != %v", i, j, got[j], v[j])
			}
		}
	}
}

func TestColumnsBuildRejectsBadGeometry(t *testing.T) {
	fill := func(int, []float64) {}
	if _, err := Build(-1, 4, 0, fill); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Build(4, 0, 0, fill); err == nil {
		t.Error("zero dims accepted")
	}
	c, err := Build(0, 3, 0, fill)
	if err != nil {
		t.Fatalf("empty layout rejected: %v", err)
	}
	if c.Blocks() != 0 {
		t.Errorf("empty layout has %d blocks", c.Blocks())
	}
}

func TestScanGatherMatchesPerItem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, vecs, cols := buildFixture(t, 77, 5, 8, rng)
	out := make([]float64, 77)
	n := cols.ScanGather(out, func(i int, row []float64) float64 {
		s := 0.0
		for j, v := range row {
			s += v * float64(j+1)
		}
		return s
	})
	if n != 77 {
		t.Fatalf("evaluated %d items, want 77", n)
	}
	for i, v := range vecs {
		want := 0.0
		for j, x := range v {
			want += x * float64(j+1)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("item %d: %v != %v", i, out[i], want)
		}
	}
}

// TestIMScannerBitIdentical is the keystone of the columnar refactor:
// for every block size — including degenerate 1 and a non-divisor of
// n — the batched kernel and the per-item DistanceAt must reproduce
// the scalar lb.IM bound bit-for-bit.
func TestIMScannerBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, block := range []int{1, 3, 16, 256} {
		for _, d := range []int{2, 5, 8} {
			im, vecs, cols := buildFixture(t, 123, d, block, rng)
			sc, err := NewIMScanner(im, cols)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]float64, len(vecs))
			for qi := 0; qi < 5; qi++ {
				q := randHist(d, qi%3, rng)
				if n := sc.ScanAll(q, out); n != len(vecs) {
					t.Fatalf("ScanAll evaluated %d of %d", n, len(vecs))
				}
				for i, v := range vecs {
					want := im.Distance(q, v)
					if math.Float64bits(out[i]) != math.Float64bits(want) {
						t.Fatalf("block=%d d=%d item %d: kernel %v != scalar %v", block, d, i, out[i], want)
					}
					if got := sc.DistanceAt(q, i); math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("block=%d d=%d item %d: DistanceAt %v != scalar %v", block, d, i, got, want)
					}
				}
			}
		}
	}
}

func TestIMScannerRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im, _, _ := buildFixture(t, 10, 6, 0, rng)
	_, _, cols := buildFixture(t, 10, 4, 0, rng)
	if _, err := NewIMScanner(im, cols); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
}

// TestQuantizeFloorAndMargins checks the two pillars of the certified
// quantization: every dequantized value is <= its source value, and
// every block margin covers the forward bound's worst-case error.
func TestQuantizeFloorAndMargins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, vecs, cols := buildFixture(t, 200, 8, 32, rng)
	qz, err := Quantize(cols, 10)
	if err != nil {
		t.Fatal(err)
	}
	if qz.Len() != 200 || qz.Dims() != 8 || qz.BlockSize() != 32 || qz.CostMax() != 10 {
		t.Fatalf("geometry = (%d,%d,%d,%g)", qz.Len(), qz.Dims(), qz.BlockSize(), qz.CostMax())
	}
	for b, margin := range qz.Margins() {
		if margin < 0 || math.IsNaN(margin) {
			t.Fatalf("block %d margin %g", b, margin)
		}
		if s := qz.Scales()[b]; s < 0 {
			t.Fatalf("block %d scale %g", b, s)
		}
	}
	for i, v := range vecs {
		b := i / 32
		scale := qz.Scales()[b]
		var resid float64
		for j := range v {
			deq := float64(qz.Data()[j][i]) * scale
			if deq > v[j] {
				t.Fatalf("item %d dim %d: dequantized %v > true %v", i, j, deq, v[j])
			}
			resid += v[j] - deq
		}
		// The margin must dominate Cmax * (d'+1) * resid — the tangent
		// evaluation's certified budget (the block residual maximum is
		// >= this item's residual).
		want := 10 * 9 * resid
		if qz.Margins()[b] < want {
			t.Fatalf("item %d: margin %g below required %g", i, qz.Margins()[b], want)
		}
	}
}

// TestQuantScannerSound asserts the soundness contract on random
// data: every emitted value is <= the true Red-IM bound (up to the
// usual relative float tolerance), and ScanAll agrees with
// DistanceAt exactly.
func TestQuantScannerSound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, block := range []int{1, 7, 64} {
		im, vecs, cols := buildFixture(t, 150, 8, block, rng)
		cmax := 0.0
		for _, row := range im.Cost() {
			for _, c := range row {
				if c > cmax {
					cmax = c
				}
			}
		}
		qz, err := Quantize(cols, cmax)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewQuantScanner(im, qz)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(vecs))
		for qi := 0; qi < 5; qi++ {
			q := randHist(8, qi%3, rng)
			sc.ScanAll(q, out)
			for i, v := range vecs {
				exact := im.Distance(q, v)
				tol := 1e-9 * (1 + exact)
				if out[i] > exact+tol {
					t.Fatalf("block=%d item %d: quantized %v > Red-IM %v", block, i, out[i], exact)
				}
				if out[i] < 0 {
					t.Fatalf("block=%d item %d: negative bound %v", block, i, out[i])
				}
				if got := sc.DistanceAt(q, i); math.Float64bits(got) != math.Float64bits(out[i]) {
					t.Fatalf("block=%d item %d: DistanceAt %v != ScanAll %v", block, i, got, out[i])
				}
			}
		}
	}
}

func TestQuantizeRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, _, cols := buildFixture(t, 10, 4, 0, rng)
	if _, err := Quantize(cols, math.NaN()); err == nil {
		t.Error("NaN cost maximum accepted")
	}
	if _, err := Quantize(cols, -1); err == nil {
		t.Error("negative cost maximum accepted")
	}
	bad, err := Build(3, 2, 0, func(i int, dst []float64) { dst[0], dst[1] = -0.5, 1.5 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(bad, 1); err == nil {
		t.Error("negative column value accepted")
	}
}

func TestRestoreQuantizedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, _, cols := buildFixture(t, 20, 3, 8, rng)
	qz, err := Quantize(cols, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := RestoreQuantized(qz.Len(), qz.Dims(), qz.BlockSize(), qz.CostMax(), qz.Scales(), qz.Margins(), qz.Data())
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if rt.Len() != 20 || rt.Dims() != 3 || rt.BlockSize() != 8 {
		t.Fatalf("round trip geometry (%d,%d,%d)", rt.Len(), rt.Dims(), rt.BlockSize())
	}
	cases := []struct {
		name string
		mut  func() error
	}{
		{"negative n", func() error {
			_, err := RestoreQuantized(-1, 3, 8, 5, qz.Scales(), qz.Margins(), qz.Data())
			return err
		}},
		{"zero block", func() error {
			_, err := RestoreQuantized(20, 3, 0, 5, qz.Scales(), qz.Margins(), qz.Data())
			return err
		}},
		{"scale count", func() error {
			_, err := RestoreQuantized(20, 3, 8, 5, qz.Scales()[:1], qz.Margins(), qz.Data())
			return err
		}},
		{"NaN margin", func() error {
			m := append([]float64(nil), qz.Margins()...)
			m[0] = math.NaN()
			_, err := RestoreQuantized(20, 3, 8, 5, qz.Scales(), m, qz.Data())
			return err
		}},
		{"negative scale", func() error {
			s := append([]float64(nil), qz.Scales()...)
			s[0] = -1
			_, err := RestoreQuantized(20, 3, 8, 5, s, qz.Margins(), qz.Data())
			return err
		}},
		{"column count", func() error {
			_, err := RestoreQuantized(20, 3, 8, 5, qz.Scales(), qz.Margins(), qz.Data()[:2])
			return err
		}},
		{"column length", func() error {
			d := append([][]int16(nil), qz.Data()...)
			d[1] = d[1][:19]
			_, err := RestoreQuantized(20, 3, 8, 5, qz.Scales(), qz.Margins(), d)
			return err
		}},
		{"negative quantum", func() error {
			d := make([][]int16, 3)
			for j := range d {
				d[j] = append([]int16(nil), qz.Data()[j]...)
			}
			d[2][4] = -7
			_, err := RestoreQuantized(20, 3, 8, 5, qz.Scales(), qz.Margins(), d)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.mut() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// Benchmarks: per-item scalar scan vs the batched float kernel vs the
// quantized kernel, same data. Run with -bench=Scan to compare.
func benchFixture(b *testing.B, n, d, block int) (*lb.IM, []emd.Histogram, *Columns, emd.Histogram) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	cost := randCost(d, rng)
	im, err := lb.NewIM(cost)
	if err != nil {
		b.Fatal(err)
	}
	vecs := make([]emd.Histogram, n)
	for i := range vecs {
		vecs[i] = randHist(d, i%3, rng)
	}
	cols, err := Build(n, d, block, func(i int, dst []float64) { copy(dst, vecs[i]) })
	if err != nil {
		b.Fatal(err)
	}
	return im, vecs, cols, randHist(d, 0, rng)
}

func BenchmarkScanScalar(b *testing.B) {
	im, vecs, _, q := benchFixture(b, 4096, 8, 256)
	out := make([]float64, len(vecs))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i, v := range vecs {
			out[i] = im.Distance(q, v)
		}
	}
	b.ReportMetric(float64(len(vecs)), "items/op")
}

func BenchmarkScanColumnar(b *testing.B) {
	im, vecs, cols, q := benchFixture(b, 4096, 8, 256)
	sc, err := NewIMScanner(im, cols)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(vecs))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		sc.ScanAll(q, out)
	}
	b.ReportMetric(float64(len(vecs)), "items/op")
}

func BenchmarkScanQuantized(b *testing.B) {
	im, vecs, cols, q := benchFixture(b, 4096, 8, 256)
	qz, err := Quantize(cols, 10)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := NewQuantScanner(im, qz)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(vecs))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		sc.ScanAll(q, out)
	}
	b.ReportMetric(float64(len(vecs)), "items/op")
}
