// Package colscan holds the struct-of-arrays filter storage and the
// batched scan kernels of the first pipeline stage.
//
// The engine's snapshot used to keep the reduced database as a
// []Histogram — n small heap slices, one pointer chase per candidate
// per stage. At production scale the O(n) Red-IM scan over that layout
// is the query bottleneck: the work per item is tiny (a few dozen
// flops at d' = 8), so memory layout and loop overhead dominate.
//
// Columns stores the same data transposed: one flat []float64 per
// reduced dimension, so a scan reads each column linearly. The layout
// is logically partitioned into fixed-size blocks; kernels process one
// block at a time so their scratch state (per-item remaining mass,
// partial bounds) stays L1-resident, and per-block metadata (the
// quantization scale and error margin of the int16 filter) attaches
// naturally. The arrays are immutable after Build — they belong to an
// engine snapshot and are shared by concurrent queries without
// synchronization — and the flat layout is exactly what an mmap-able
// or sharded index needs later.
package colscan

import "fmt"

// DefaultBlock is the block length used when a caller passes a
// non-positive block size: 256 items keep a block's float64 column
// slice at 2 KiB (Int16 at 512 B) and the kernels' whole working set
// comfortably inside L1.
const DefaultBlock = 256

// Columns is the immutable struct-of-arrays form of n reduced
// database vectors of dims dimensions: cols[j][i] is dimension j of
// item i. Built once per engine snapshot; never mutated afterwards.
type Columns struct {
	n     int
	dims  int
	block int
	cols  [][]float64
}

// Build constructs the columnar layout for n items of dims reduced
// dimensions. fill must write item i's reduced vector into its
// dst argument (len dims); Build transposes into the columns. block
// <= 0 selects DefaultBlock.
func Build(n, dims, block int, fill func(i int, dst []float64)) (*Columns, error) {
	if n < 0 {
		return nil, fmt.Errorf("colscan: negative item count %d", n)
	}
	if dims < 1 {
		return nil, fmt.Errorf("colscan: dims %d, want >= 1", dims)
	}
	if block <= 0 {
		block = DefaultBlock
	}
	c := &Columns{n: n, dims: dims, block: block, cols: make([][]float64, dims)}
	// One backing allocation for all columns: the layout stays one
	// contiguous region (dims stripes of length n), not dims scattered
	// heap objects.
	backing := make([]float64, n*dims)
	for j := range c.cols {
		c.cols[j] = backing[j*n : (j+1)*n : (j+1)*n]
	}
	tmp := make([]float64, dims)
	for i := 0; i < n; i++ {
		fill(i, tmp)
		for j, v := range tmp {
			c.cols[j][i] = v
		}
	}
	return c, nil
}

// Len returns the number of items.
func (c *Columns) Len() int { return c.n }

// Dims returns the number of reduced dimensions.
func (c *Columns) Dims() int { return c.dims }

// BlockSize returns the block partition length.
func (c *Columns) BlockSize() int { return c.block }

// Blocks returns the number of blocks covering all items.
func (c *Columns) Blocks() int {
	if c.n == 0 {
		return 0
	}
	return (c.n + c.block - 1) / c.block
}

// BlockBounds returns the half-open item range [lo, hi) of block b.
func (c *Columns) BlockBounds(b int) (lo, hi int) {
	lo = b * c.block
	hi = lo + c.block
	if hi > c.n {
		hi = c.n
	}
	return lo, hi
}

// Col returns column j (all items' value of reduced dimension j).
// Shared and read-only.
func (c *Columns) Col(j int) []float64 { return c.cols[j] }

// Gather reconstructs item i's reduced vector into dst (which must
// have length dims) and returns it. The values are the ones Build
// stored, bit-for-bit.
func (c *Columns) Gather(i int, dst []float64) []float64 {
	for j, col := range c.cols {
		dst[j] = col[i]
	}
	return dst
}

// ScanGather evaluates eval for every item against a gathered copy of
// its reduced vector, writing eval's result to out[i] and returning
// the number of items evaluated (always Len). It transposes one block
// at a time into a scratch buffer — linear column reads, L1-resident
// writes — so per-item evaluators that need the row form (the reduced
// EMD) still scan cache-friendly. The row slice handed to eval is
// reused across calls; eval must not retain it.
func (c *Columns) ScanGather(out []float64, eval func(i int, row []float64) float64) int {
	scratch := make([]float64, c.block*c.dims)
	for b := 0; b < c.Blocks(); b++ {
		lo, hi := c.BlockBounds(b)
		m := hi - lo
		for j, col := range c.cols {
			seg := col[lo:hi]
			for k, v := range seg {
				scratch[k*c.dims+j] = v
			}
		}
		for k := 0; k < m; k++ {
			row := scratch[k*c.dims : (k+1)*c.dims]
			out[lo+k] = eval(lo+k, row)
		}
	}
	return c.n
}
