package colscan

import (
	"fmt"

	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
)

// IMScanner evaluates the Red-IM bound (lb.IM) over a Columns layout
// in block-sized batches. Its results are bit-identical to calling
// im.Distance(q, item) per item: the kernel performs the very same
// floating-point operations in the very same order — same sorted cost
// walks, same zero skips, same sequential cap subtraction, one
// accumulator per direction — it only restages the data. Each block is
// transposed into an L1-resident row-major scratch buffer (the column
// reads are linear, which is the whole point of the layout), the query
// is compiled once per scan instead of re-inspected per item, and the
// backward walk runs over per-column tables with the query's zero bins
// already dropped.
type IMScanner struct {
	cols     *Columns
	cost     [][]float64
	rowOrder [][]int32
	colOrder [][]int32
	// rowCost[i][t] = cost[i][rowOrder[i][t]]: the forward walk's cost
	// sequence, precomputed contiguous (query-independent).
	rowCost [][]float64
}

// NewIMScanner compiles the scanner for one bound/layout pair. The
// bound's cost matrix must be square with dimensionality equal to the
// columns' (the reduced cost of the coarsest filter level).
func NewIMScanner(im *lb.IM, cols *Columns) (*IMScanner, error) {
	rows, cs := im.Dims()
	if rows != cs {
		return nil, fmt.Errorf("colscan: IM cost is %dx%d, want square", rows, cs)
	}
	if rows != cols.Dims() {
		return nil, fmt.Errorf("colscan: IM dimensionality %d != columns %d", rows, cols.Dims())
	}
	s := &IMScanner{
		cols:     cols,
		cost:     im.Cost(),
		rowOrder: im.RowOrders(),
		colOrder: im.ColOrders(),
		rowCost:  make([][]float64, rows),
	}
	for i, order := range s.rowOrder {
		rc := make([]float64, len(order))
		for t, j := range order {
			rc[t] = s.cost[i][j]
		}
		s.rowCost[i] = rc
	}
	return s, nil
}

// qbin is one nonzero query bin compiled for a scan: its mass and the
// forward walk's target order and cost sequence.
type qbin struct {
	mass  float64
	order []int32
	cost  []float64
}

// compileQuery drops the query's zero bins once per scan — the scalar
// loop re-checks them for every item — and bundles each surviving
// bin's walk data.
func compileQuery(x emd.Histogram, rowOrder [][]int32, rowCost [][]float64) []qbin {
	bins := make([]qbin, 0, len(x))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		bins = append(bins, qbin{mass: xi, order: rowOrder[i], cost: rowCost[i]})
	}
	return bins
}

// bwdEntry is one step of a backward walk compacted for a fixed
// query: the query-side capacity and the cost of routing to it. The
// zero-capacity skips of the scalar walk are applied once per query
// when the table is built, not once per item.
type bwdEntry struct {
	cap, cost float64
}

// compileBwd builds the per-column backward walk tables for query x.
// Entry order and values match the scalar backward loop exactly, so
// walking a table reproduces its arithmetic bit-for-bit.
func compileBwd(x emd.Histogram, cost [][]float64, colOrder [][]int32, tabs [][]bwdEntry) {
	for j := range tabs {
		tab := tabs[j][:0]
		for _, i := range colOrder[j] {
			if x[i] == 0 {
				continue
			}
			tab = append(tab, bwdEntry{cap: x[i], cost: cost[i][j]})
		}
		tabs[j] = tab
	}
}

// makeBwdTabs allocates the per-column table headers over one backing
// array (dims entries suffice per column: one per query bin).
func makeBwdTabs(dims int) [][]bwdEntry {
	tabs := make([][]bwdEntry, dims)
	store := make([]bwdEntry, dims*dims)
	for j := range tabs {
		tabs[j] = store[j*dims : j*dims : (j+1)*dims]
	}
	return tabs
}

// ScanAll computes the Red-IM bound of query x (already reduced)
// against every item, writing the bound of item i to out[i], and
// returns the number of items evaluated (always Len: the bound is
// computed per item, blocks only batch the memory traffic).
func (s *IMScanner) ScanAll(x emd.Histogram, out []float64) int {
	c := s.cols
	if len(x) != c.dims {
		panic(fmt.Sprintf("colscan: query has %d dims, columns %d", len(x), c.dims))
	}
	if len(out) < c.n {
		panic(fmt.Sprintf("colscan: out has %d slots for %d items", len(out), c.n))
	}
	bins := compileQuery(x, s.rowOrder, s.rowCost)
	tabs := makeBwdTabs(c.dims)
	compileBwd(x, s.cost, s.colOrder, tabs)
	rows := make([]float64, c.block*c.dims)
	dims := c.dims
	for b := 0; b < c.Blocks(); b++ {
		lo, hi := c.BlockBounds(b)
		m := hi - lo
		// Stage the block row-major: linear reads down each column,
		// writes confined to an L1-resident scratch buffer.
		for j, col := range c.cols {
			seg := col[lo:hi]
			for k, v := range seg {
				rows[k*dims+j] = v
			}
		}
		outb := out[lo:hi]
		for k := 0; k < m; k++ {
			row := rows[k*dims : k*dims+dims]
			var fwd float64
			for bi := range bins {
				qb := &bins[bi]
				remaining := qb.mass
				for t, j := range qb.order {
					cap := row[j]
					if cap == 0 {
						continue
					}
					if cap >= remaining {
						fwd += remaining * qb.cost[t]
						break
					}
					fwd += cap * qb.cost[t]
					remaining -= cap
				}
			}
			var bwd float64
			for j, yj := range row {
				if yj == 0 {
					continue
				}
				remaining := yj
				for _, e := range tabs[j] {
					if e.cap >= remaining {
						bwd += remaining * e.cost
						break
					}
					bwd += e.cap * e.cost
					remaining -= e.cap
				}
			}
			if bwd > fwd {
				outb[k] = bwd
			} else {
				outb[k] = fwd
			}
		}
	}
	return c.n
}

// DistanceAt computes the Red-IM bound for a single item from the
// columns, bit-identical to both ScanAll's out[i] and the scalar
// im.Distance(x, item). The engine's chained (lazy) stages use it when
// the stage is not the first of the pipeline.
func (s *IMScanner) DistanceAt(x emd.Histogram, i int) float64 {
	var fwd float64
	for qi, xi := range x {
		if xi == 0 {
			continue
		}
		remaining := xi
		rcost := s.rowCost[qi]
		for t, j := range s.rowOrder[qi] {
			cap := s.cols.cols[j][i]
			if cap == 0 {
				continue
			}
			if cap >= remaining {
				fwd += remaining * rcost[t]
				break
			}
			fwd += cap * rcost[t]
			remaining -= cap
		}
	}
	var bwd float64
	for j, col := range s.cols.cols {
		yj := col[i]
		if yj == 0 {
			continue
		}
		remaining := yj
		for _, qi := range s.colOrder[j] {
			cap := x[qi]
			if cap == 0 {
				continue
			}
			if cap >= remaining {
				bwd += remaining * s.cost[qi][j]
				break
			}
			bwd += cap * s.cost[qi][j]
			remaining -= cap
		}
	}
	if bwd > fwd {
		return bwd
	}
	return fwd
}
