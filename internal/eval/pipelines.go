package eval

import (
	"fmt"
	"time"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
	"emdsearch/internal/pca"
	"emdsearch/internal/search"
)

// Pipeline identifies one query-processing setup compared in the
// experiments (Figure 10 of the paper and its ablations).
type Pipeline string

const (
	// PipelineScan is the exhaustive sequential scan with the exact EMD.
	PipelineScan Pipeline = "SeqScan"
	// PipelineIMFull filters with LB_IM at the original dimensionality.
	PipelineIMFull Pipeline = "IM-Full"
	// PipelineRedEMD filters with the reduced EMD only.
	PipelineRedEMD Pipeline = "Red-EMD"
	// PipelineChain is the paper's full chain: Red-IM, then Red-EMD,
	// then exact EMD refinement.
	PipelineChain Pipeline = "Red-IM+Red-EMD"
)

// AllPipelines lists the pipelines in presentation order.
func AllPipelines() []Pipeline {
	return []Pipeline{PipelineScan, PipelineIMFull, PipelineRedEMD, PipelineChain}
}

// NewSearcher assembles the multistep searcher for one pipeline over
// the given database vectors and ground distance. red may be nil for
// the pipelines that use no reduction.
func NewSearcher(p Pipeline, vectors []emd.Histogram, cost emd.CostMatrix, red *core.Reduction) (*search.Searcher, error) {
	dist, err := emd.NewDist(cost)
	if err != nil {
		return nil, err
	}
	s := &search.Searcher{
		N:      len(vectors),
		Refine: func(q emd.Histogram, i int) float64 { return dist.Distance(q, vectors[i]) },
	}
	switch p {
	case PipelineScan:
		return s, nil

	case PipelineIMFull:
		im, err := lb.NewIM(cost)
		if err != nil {
			return nil, err
		}
		s.Stages = []search.FilterStage{{
			Name:         "IM-Full",
			PrepareQuery: func(q emd.Histogram) emd.Histogram { return q },
			Distance:     func(q emd.Histogram, i int) float64 { return im.Distance(q, vectors[i]) },
		}}
		return s, nil

	case PipelineRedEMD, PipelineChain:
		if red == nil {
			return nil, fmt.Errorf("eval: pipeline %s needs a reduction", p)
		}
		reduced, err := core.NewReducedEMD(cost, red, red)
		if err != nil {
			return nil, err
		}
		reducedVecs := make([]emd.Histogram, len(vectors))
		for i, v := range vectors {
			reducedVecs[i] = red.Apply(v)
		}
		redEMDStage := search.FilterStage{
			Name:         "Red-EMD",
			PrepareQuery: red.Apply,
			Distance:     func(qr emd.Histogram, i int) float64 { return reduced.DistanceReduced(qr, reducedVecs[i]) },
		}
		if p == PipelineRedEMD {
			s.Stages = []search.FilterStage{redEMDStage}
			return s, nil
		}
		im, err := lb.NewIM(reduced.Cost())
		if err != nil {
			return nil, err
		}
		s.Stages = []search.FilterStage{
			{
				Name:         "Red-IM",
				PrepareQuery: red.Apply,
				Distance:     func(qr emd.Histogram, i int) float64 { return im.Distance(qr, reducedVecs[i]) },
			},
			redEMDStage,
		}
		return s, nil
	}
	return nil, fmt.Errorf("eval: unknown pipeline %q", p)
}

// RunResult aggregates per-query statistics over a workload.
type RunResult struct {
	Queries        int
	AvgRefinements float64
	// AvgStageEvals holds the average number of filter evaluations per
	// stage (empty for the scan pipeline).
	AvgStageEvals []float64
	// AvgQueryTime is the mean wall-clock time per query.
	AvgQueryTime time.Duration
	// Recall is the fraction of exact k-NN results the pipeline
	// returned; any value below 1 indicates a completeness bug.
	Recall float64
}

// RunKNN executes the k-NN workload on the searcher and, when
// reference is non-nil, verifies the results against it (the exact
// answer per query, index sets compared distance-insensitively).
func RunKNN(s *search.Searcher, queries []emd.Histogram, k int, reference [][]search.Result) (*RunResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("eval: empty workload")
	}
	res := &RunResult{Queries: len(queries), Recall: 1}
	var hits, total int
	start := time.Now()
	for qi, q := range queries {
		results, stats, err := s.KNN(q, k)
		if err != nil {
			return nil, err
		}
		res.AvgRefinements += float64(stats.Refinements)
		if len(res.AvgStageEvals) < len(stats.StageEvaluations) {
			res.AvgStageEvals = make([]float64, len(stats.StageEvaluations))
		}
		for i, e := range stats.StageEvaluations {
			res.AvgStageEvals[i] += float64(e)
		}
		if reference != nil {
			want := reference[qi]
			got := make(map[int]bool, len(results))
			for _, r := range results {
				got[r.Index] = true
			}
			for _, w := range want {
				total++
				if got[w.Index] {
					hits++
				}
			}
		}
	}
	elapsed := time.Since(start)
	n := float64(len(queries))
	res.AvgRefinements /= n
	for i := range res.AvgStageEvals {
		res.AvgStageEvals[i] /= n
	}
	res.AvgQueryTime = elapsed / time.Duration(len(queries))
	if reference != nil && total > 0 {
		res.Recall = float64(hits) / float64(total)
	}
	return res, nil
}

// ExactKNN computes the reference answers for a workload by
// exhaustive scan.
func ExactKNN(vectors []emd.Histogram, cost emd.CostMatrix, queries []emd.Histogram, k int) ([][]search.Result, error) {
	dist, err := emd.NewDist(cost)
	if err != nil {
		return nil, err
	}
	out := make([][]search.Result, len(queries))
	for qi, q := range queries {
		results, _, err := search.LinearScanKNN(len(vectors), func(i int) float64 {
			return dist.Distance(q, vectors[i])
		}, k)
		if err != nil {
			return nil, err
		}
		out[qi] = results
	}
	return out, nil
}

// TightnessRatio measures filter quality directly: the mean ratio of
// filter distance to exact distance over up to maxPairs random-ish
// pairs (deterministic stride sampling). Ratios close to 1 mean a
// tight lower bound.
func TightnessRatio(filter func(x, y emd.Histogram) float64, vectors []emd.Histogram, cost emd.CostMatrix, maxPairs int) (float64, error) {
	dist, err := emd.NewDist(cost)
	if err != nil {
		return 0, err
	}
	n := len(vectors)
	if n < 2 {
		return 0, fmt.Errorf("eval: need >= 2 vectors for tightness measurement")
	}
	var sum float64
	pairs := 0
	stride := n/2 + 1
	for i := 0; i < n && pairs < maxPairs; i++ {
		j := (i*stride + 1) % n
		if j == i {
			continue
		}
		exact := dist.Distance(vectors[i], vectors[j])
		if exact < 1e-12 {
			continue
		}
		f := filter(vectors[i], vectors[j])
		if f > exact+1e-9 {
			return 0, fmt.Errorf("eval: filter overestimates: %g > %g for pair (%d,%d)", f, exact, i, j)
		}
		sum += f / exact
		pairs++
	}
	if pairs == 0 {
		return 0, fmt.Errorf("eval: no usable pairs for tightness measurement")
	}
	return sum / float64(pairs), nil
}

// pcaStage wraps a PCA soft reduction as a filter stage over
// precomputed reduced database vectors (the Fig20 ablation).
func pcaStage(soft *pca.SoftReduction, reducedVecs []emd.Histogram) search.FilterStage {
	return search.FilterStage{
		Name:         "PCA",
		PrepareQuery: soft.Apply,
		Distance: func(qr emd.Histogram, i int) float64 {
			return soft.DistanceReduced(qr, reducedVecs[i])
		},
	}
}

// asymStage wraps an asymmetric reduced EMD (R1 = identity, R2 =
// database reduction) as a filter stage (the Fig21 experiment). The
// query stays at full dimensionality; the filter EMD is rectangular.
func asymStage(asym *core.ReducedEMD, reducedVecs []emd.Histogram) search.FilterStage {
	return search.FilterStage{
		Name:         "Asym-Red-EMD",
		PrepareQuery: func(q emd.Histogram) emd.Histogram { return q },
		Distance: func(q emd.Histogram, i int) float64 {
			return asym.DistanceReduced(q, reducedVecs[i])
		},
	}
}
