package eval

import (
	"strings"
	"testing"

	"emdsearch/internal/data"
	"emdsearch/internal/emd"
)

func TestFillSweepRowsOrdersByDPrime(t *testing.T) {
	tab := &Table{Columns: append([]string{"d'"}, methodNames()...)}
	results := map[int]map[Method]float64{
		16: {MethodRandom: 3},
		4:  {MethodRandom: 1},
		8:  {MethodRandom: 2},
	}
	fillSweepRows(tab, results, nil)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Cell(0, 0) != "4" || tab.Cell(1, 0) != "8" || tab.Cell(2, 0) != "16" {
		t.Errorf("rows not ordered by d': %v", tab.Rows)
	}
}

func TestSweepWinnersMinAndMax(t *testing.T) {
	results := map[int]map[Method]float64{
		8:  {MethodRandom: 10, MethodKMed: 5, MethodFBAllKMed: 2},
		16: {MethodRandom: 9, MethodKMed: 4, MethodFBAllKMed: 1},
	}
	if note := sweepWinners(results, nil, false); !strings.Contains(note, string(MethodFBAllKMed)) {
		t.Errorf("min winner note: %q", note)
	}
	if note := sweepWinners(results, nil, true); !strings.Contains(note, string(MethodRandom)) {
		t.Errorf("max winner note: %q", note)
	}
}

func TestNewSearcherAllPipelines(t *testing.T) {
	ds, err := data.MusicSpectra(20, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	vectors := ds.Histograms()
	builder, err := NewBuilder(ds.Cost, vectors[:8], 1)
	if err != nil {
		t.Fatal(err)
	}
	red, _, err := builder.Build(MethodKMed, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range AllPipelines() {
		s, err := NewSearcher(p, vectors, ds.Cost, red)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		results, _, err := s.KNN(vectors[0], 3)
		if err != nil {
			t.Fatalf("%s query: %v", p, err)
		}
		if len(results) != 3 || results[0].Index != 0 || results[0].Dist > 1e-9 {
			t.Fatalf("%s: self-query results %v", p, results)
		}
	}
}

func TestRunKNNDetectsRecallLoss(t *testing.T) {
	ds, err := data.MusicSpectra(20, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	vectors := ds.Histograms()
	s, err := NewSearcher(PipelineScan, vectors, ds.Cost, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []emd.Histogram{vectors[0]}
	ref, err := ExactKNN(vectors, ds.Cost, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunKNN(s, queries, 3, ref)
	if err != nil {
		t.Fatal(err)
	}
	if run.Recall != 1 {
		t.Errorf("scan recall %g", run.Recall)
	}
	// Corrupt the reference: recall must drop below 1.
	ref[0][0].Index = 19
	ref[0][1].Index = 18
	run, err = RunKNN(s, queries, 3, ref)
	if err != nil {
		t.Fatal(err)
	}
	if run.Recall >= 1 {
		t.Errorf("corrupted reference still gives recall %g", run.Recall)
	}
}

func TestMediumAndFullConfigsValid(t *testing.T) {
	for _, c := range []Config{QuickConfig(), MediumConfig(), FullConfig()} {
		if c.RetinaN < 1 || c.Queries < 1 || c.K < 1 || c.SampleSize < 2 {
			t.Errorf("degenerate config: %+v", c)
		}
		if len(c.DPrimes) == 0 || c.ChainDPrime < 1 {
			t.Errorf("config without d' plan: %+v", c)
		}
	}
}
