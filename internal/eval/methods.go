package eval

import (
	"fmt"
	"math/rand"
	"time"

	"emdsearch/internal/cluster"
	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/flowred"
)

// Method identifies one reduction-construction heuristic compared in
// the experiments.
type Method string

// The reduction methods of the paper's evaluation: a random combining
// baseline, adjacent merging (the generalization of [14]), k-medoids
// clustering (Section 3.3), and the four flow-based variants
// (Section 3.4: FB-Mod/FB-All crossed with Base/KMed initialization).
const (
	MethodRandom    Method = "Random"
	MethodAdjacent  Method = "Adjacent"
	MethodKMed      Method = "KMed"
	MethodFBModBase Method = "FB-Mod-Base"
	MethodFBModKMed Method = "FB-Mod-KMed"
	MethodFBAllBase Method = "FB-All-Base"
	MethodFBAllKMed Method = "FB-All-KMed"
)

// AllMethods lists the methods in presentation order.
func AllMethods() []Method {
	return []Method{
		MethodRandom, MethodAdjacent, MethodKMed,
		MethodFBModBase, MethodFBModKMed, MethodFBAllBase, MethodFBAllKMed,
	}
}

// BuildStats reports the preprocessing cost of one reduction build.
type BuildStats struct {
	// SampleEMDs counts full-dimensional EMD computations spent on
	// flow collection (zero for data-independent methods).
	SampleEMDs int
	// FlowTime is the time spent collecting flows.
	FlowTime time.Duration
	// OptimizeTime is the time spent in clustering/local search.
	OptimizeTime time.Duration
	// Tightness is the final Eq. 12 value (flow-based methods only).
	Tightness float64
}

// Builder constructs reductions for one data set: it caches the sample
// flow matrix so that all flow-based variants share one flow
// collection, as a single preprocessing pass would in production.
type Builder struct {
	cost     emd.CostMatrix
	dim      int
	sample   []emd.Histogram
	flows    [][]float64
	flowT    time.Duration
	nEMDs    int
	rng      *rand.Rand
	kmedSeed int64
}

// NewBuilder prepares reduction construction over the given ground
// distance and database sample (used by the flow-based methods; the
// data-independent methods ignore it). seed drives every randomized
// component.
func NewBuilder(cost emd.CostMatrix, sample []emd.Histogram, seed int64) (*Builder, error) {
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if cost.Rows() != cost.Cols() {
		return nil, fmt.Errorf("eval: cost matrix is %dx%d, want square", cost.Rows(), cost.Cols())
	}
	return &Builder{
		cost:     cost,
		dim:      cost.Rows(),
		sample:   sample,
		rng:      rand.New(rand.NewSource(seed)),
		kmedSeed: seed + 1,
	}, nil
}

// ensureFlows lazily collects the average flow matrix over the sample.
func (b *Builder) ensureFlows() error {
	if b.flows != nil {
		return nil
	}
	if len(b.sample) < 2 {
		return fmt.Errorf("eval: flow-based reduction needs a sample of >= 2 histograms, got %d", len(b.sample))
	}
	dist, err := emd.NewDist(b.cost)
	if err != nil {
		return err
	}
	start := time.Now()
	flows, err := flowred.AverageFlowsParallel(b.sample, dist, 0)
	if err != nil {
		return err
	}
	b.flowT = time.Since(start)
	b.flows = flows
	n := len(b.sample)
	b.nEMDs = n * (n - 1) / 2
	return nil
}

// kmedoids runs the clustering-based reduction with a few restarts.
func (b *Builder) kmedoids(reduced int) (*core.Reduction, error) {
	res, err := cluster.BestOfRestarts(b.cost, reduced, 3, rand.New(rand.NewSource(b.kmedSeed)))
	if err != nil {
		return nil, err
	}
	return res.Reduction, nil
}

// Build constructs the reduction for one method at the given reduced
// dimensionality.
func (b *Builder) Build(m Method, reduced int) (*core.Reduction, *BuildStats, error) {
	stats := &BuildStats{}
	start := time.Now()
	var red *core.Reduction
	var err error
	switch m {
	case MethodRandom:
		red, err = core.Random(b.dim, reduced, b.rng)
	case MethodAdjacent:
		red, err = core.Adjacent(b.dim, reduced)
	case MethodKMed:
		red, err = b.kmedoids(reduced)
	case MethodFBModBase, MethodFBModKMed, MethodFBAllBase, MethodFBAllKMed:
		if err = b.ensureFlows(); err != nil {
			return nil, nil, err
		}
		stats.SampleEMDs = b.nEMDs
		stats.FlowTime = b.flowT
		var start []int
		if m == MethodFBModKMed || m == MethodFBAllKMed {
			init, kerr := b.kmedoids(reduced)
			if kerr != nil {
				return nil, nil, kerr
			}
			start = init.Assignment()
		} else {
			start = flowred.BaseAssignment(b.dim)
		}
		optStart := time.Now()
		var fbStats *flowred.Stats
		if m == MethodFBModBase || m == MethodFBModKMed {
			red, fbStats, err = flowred.OptimizeMod(start, reduced, b.flows, b.cost, flowred.Options{})
		} else {
			red, fbStats, err = flowred.OptimizeAll(start, reduced, b.flows, b.cost, flowred.Options{})
		}
		if err == nil {
			stats.OptimizeTime = time.Since(optStart)
			stats.Tightness = fbStats.Tightness
		}
	default:
		return nil, nil, fmt.Errorf("eval: unknown method %q", m)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("eval: building %s reduction: %w", m, err)
	}
	if m == MethodRandom || m == MethodAdjacent || m == MethodKMed {
		stats.OptimizeTime = time.Since(start)
	}
	return red, stats, nil
}
