//go:build race

package eval

// raceEnabled reports that this binary was built with -race. The
// experiment smoke tests iterate every driver at tiny scale, which the
// race detector slows past CI timeouts; they are skipped under -race
// (the drivers are single-query sequential code — the concurrency they
// exercise is covered by the race-enabled tests of the root package
// and internal/search).
const raceEnabled = true
