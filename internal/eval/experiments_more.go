package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Tab1 — preprocessing cost per reduction method: sample EMDs, flow
// collection time and optimization time (RETINA-sim, at the chain d').
func Tab1(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Tab1: preprocessing cost (%s, d'=%d, |S|=%d)", w.name, c.ChainDPrime, c.SampleSize),
		Columns: []string{"method", "sample_EMDs", "flow_ms", "optimize_ms", "total_ms"},
	}
	for _, m := range AllMethods() {
		_, bs, err := builder.Build(m, c.ChainDPrime)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(m), bs.SampleEMDs, elapsedMS(bs.FlowTime), elapsedMS(bs.OptimizeTime),
			elapsedMS(bs.FlowTime+bs.OptimizeTime))
	}
	t.Notes = append(t.Notes,
		"flow collection dominates the flow-based methods and is shared across them and across all d'; it is a one-time offline cost")
	return t, nil
}

// Tab2 — filter tightness: mean reducedEMD/EMD ratio per method and
// d' (closer to 1 is better).
func Tab2(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Tab2: lower-bound tightness ratio (%s)", w.name),
		Columns: append([]string{"d'"}, methodNames()...),
	}
	results := map[int]map[Method]float64{}
	err = c.methodSweep(w, func(m Method, dPrime int, red *core.Reduction, _ *BuildStats) error {
		reduced, err := core.NewReducedEMD(w.cost, red, red)
		if err != nil {
			return err
		}
		ratio, err := TightnessRatio(reduced.Distance, w.vectors, w.cost, c.TightPairs)
		if err != nil {
			return err
		}
		if results[dPrime] == nil {
			results[dPrime] = map[Method]float64{}
		}
		results[dPrime][m] = ratio
		return nil
	})
	if err != nil {
		return nil, err
	}
	fillSweepRows(t, results, c.DPrimes)
	t.Notes = append(t.Notes, sweepWinners(results, c.DPrimes, true))
	return t, nil
}

// Fig20 — the PCA ablation: tightness and candidate counts of the
// PCA-based general linear reduction vs the combining reductions, per
// d' (reproducing the paper's Section 3.2 observation).
func Fig20(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig20: PCA ablation (%s)", w.name),
		Columns: []string{"d'", "pca_tightness", "fb_tightness", "pca_refinements", "fb_refinements"},
	}
	for _, dPrime := range c.DPrimes {
		if dPrime < 2 || dPrime >= len(w.vectors[0]) {
			continue
		}
		soft, err := pcaFor(w, c, dPrime)
		if err != nil {
			return nil, err
		}
		pcaTight, err := TightnessRatio(soft.Distance, w.vectors, w.cost, c.TightPairs)
		if err != nil {
			return nil, err
		}
		fbRed, _, err := builder.Build(MethodFBAllKMed, dPrime)
		if err != nil {
			return nil, err
		}
		fb, err := core.NewReducedEMD(w.cost, fbRed, fbRed)
		if err != nil {
			return nil, err
		}
		fbTight, err := TightnessRatio(fb.Distance, w.vectors, w.cost, c.TightPairs)
		if err != nil {
			return nil, err
		}

		// Candidate counts through the searcher, PCA as a custom stage.
		pcaVecs := make([]emd.Histogram, len(w.vectors))
		for i, v := range w.vectors {
			pcaVecs[i] = soft.Apply(v)
		}
		pcaSearcher, err := NewSearcher(PipelineScan, w.vectors, w.cost, nil)
		if err != nil {
			return nil, err
		}
		pcaSearcher.Stages = append(pcaSearcher.Stages, pcaStage(soft, pcaVecs))
		pcaRun, err := RunKNN(pcaSearcher, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		if pcaRun.Recall < 1 {
			return nil, fmt.Errorf("eval: Fig20 PCA d'=%d: recall %.3f < 1", dPrime, pcaRun.Recall)
		}
		fbSearcher, err := NewSearcher(PipelineRedEMD, w.vectors, w.cost, fbRed)
		if err != nil {
			return nil, err
		}
		fbRun, err := RunKNN(fbSearcher, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		t.AddRow(dPrime, pcaTight, fbTight, pcaRun.AvgRefinements, fbRun.AvgRefinements)
	}
	t.Notes = append(t.Notes,
		"the PCA-based general linear reduction is drastically looser than the combining reduction at every d' (paper Section 3.2: 'very poor retrieval efficiency')")
	return t, nil
}

// Fig21 — asymmetric reductions: R1 = identity on the query side vs
// the symmetric R1 = R2, comparing tightness and candidates per d'.
func Fig21(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	d := len(w.vectors[0])
	t := &Table{
		Title:   fmt.Sprintf("Fig21: asymmetric query reduction (%s)", w.name),
		Columns: []string{"d'", "sym_tightness", "asym_tightness", "sym_refinements", "asym_refinements"},
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	for _, dPrime := range c.DPrimes {
		if dPrime >= d {
			continue
		}
		red, _, err := builder.Build(MethodFBAllKMed, dPrime)
		if err != nil {
			return nil, err
		}
		sym, err := core.NewReducedEMD(w.cost, red, red)
		if err != nil {
			return nil, err
		}
		asym, err := core.NewReducedEMD(w.cost, core.Identity(d), red)
		if err != nil {
			return nil, err
		}
		symTight, err := TightnessRatio(sym.Distance, w.vectors, w.cost, c.TightPairs)
		if err != nil {
			return nil, err
		}
		asymTight, err := TightnessRatio(asym.Distance, w.vectors, w.cost, c.TightPairs)
		if err != nil {
			return nil, err
		}

		reducedVecs := make([]emd.Histogram, len(w.vectors))
		for i, v := range w.vectors {
			reducedVecs[i] = red.Apply(v)
		}
		symSearcher, err := NewSearcher(PipelineRedEMD, w.vectors, w.cost, red)
		if err != nil {
			return nil, err
		}
		symRun, err := RunKNN(symSearcher, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		asymSearcher, err := NewSearcher(PipelineScan, w.vectors, w.cost, nil)
		if err != nil {
			return nil, err
		}
		asymSearcher.Stages = append(asymSearcher.Stages, asymStage(asym, reducedVecs))
		asymRun, err := RunKNN(asymSearcher, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		if symRun.Recall < 1 || asymRun.Recall < 1 {
			return nil, fmt.Errorf("eval: Fig21 d'=%d: recall below 1", dPrime)
		}
		t.AddRow(dPrime, symTight, asymTight, symRun.AvgRefinements, asymRun.AvgRefinements)
	}
	t.Notes = append(t.Notes,
		"keeping the query unreduced (R1 = identity) yields tighter bounds and fewer candidates at the same database-side d'; the filter EMD becomes rectangular (d x d') and thus costlier per evaluation")
	return t, nil
}

// Fig22 — range-query selectivity: candidates per filter across eps
// values chosen as quantiles of the exact distance distribution.
func Fig22(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	red, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}
	chain, err := NewSearcher(PipelineChain, w.vectors, w.cost, red)
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(w.cost)
	if err != nil {
		return nil, err
	}
	// Distance distribution from the first query against the database.
	q0 := w.queries[0]
	dists := make([]float64, len(w.vectors))
	for i, v := range w.vectors {
		dists[i] = dist.Distance(q0, v)
	}
	sort.Float64s(dists)
	quantile := func(p float64) float64 {
		idx := int(p * float64(len(dists)-1))
		return dists[idx]
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig22: range queries on %s (n=%d, d'=%d)", w.name, len(w.vectors), c.ChainDPrime),
		Columns: []string{"eps_quantile", "eps", "avg_results", "avg_refinements", "avg_redEMD_evals"},
	}
	for _, p := range []float64{0.001, 0.01, 0.05, 0.1, 0.25} {
		eps := quantile(p)
		var results, refinements, evals float64
		for _, q := range w.queries {
			res, stats, err := chain.Range(q, eps)
			if err != nil {
				return nil, err
			}
			results += float64(len(res))
			refinements += float64(stats.Refinements)
			if len(stats.StageEvaluations) == 2 {
				evals += float64(stats.StageEvaluations[1])
			}
			// Completeness check against a direct scan.
			if c.CheckRecall {
				count := 0
				for _, v := range w.vectors {
					if dist.Distance(q, v) <= eps {
						count++
					}
				}
				if count != len(res) {
					return nil, fmt.Errorf("eval: Fig22 eps=%g: %d results, scan finds %d", eps, len(res), count)
				}
			}
		}
		n := float64(len(w.queries))
		t.AddRow(fmt.Sprintf("%.3f", p), eps, results/n, refinements/n, evals/n)
	}
	t.Notes = append(t.Notes, "for selective ranges the chain refines barely more objects than it returns")
	return t, nil
}

// Experiments maps experiment identifiers to their drivers; the order
// follows DESIGN.md's experiment index.
func Experiments() []struct {
	ID  string
	Run func(Config) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Config) (*Table, error)
	}{
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"tab1", Tab1},
		{"tab2", Tab2},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"fig23", Fig23},
		{"tab3", Tab3},
		{"fig24", Fig24},
		{"fig25", Fig25},
	}
}
