package eval

import (
	"strconv"
	"strings"
	"testing"

	"emdsearch/internal/data"
)

// tinyConfig keeps the unit tests fast; shapes are asserted in the
// larger benchmark harness.
func tinyConfig() Config {
	return Config{
		RetinaN:     80,
		IRMAN:       40,
		ColorN:      120,
		Queries:     3,
		K:           3,
		SampleSize:  8,
		DPrimes:     []int{4, 8},
		ChainDPrime: 8,
		CheckRecall: true,
		TightPairs:  15,
		Seed:        2,
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") || !strings.Contains(s, "2.5") {
		t.Errorf("rendered table missing content:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if tab.Cell(0, 1) != "2.5" {
		t.Errorf("Cell(0,1) = %q", tab.Cell(0, 1))
	}
	if tab.Cell(5, 5) != "" {
		t.Error("out-of-range Cell not empty")
	}
}

func TestBuilderAllMethods(t *testing.T) {
	ds, err := data.MusicSpectra(30, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(ds.Cost, ds.Histograms()[:10], 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods() {
		red, bs, err := b.Build(m, 6)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if red.ReducedDims() != 6 || red.OriginalDims() != 24 {
			t.Errorf("%s: dims %d->%d", m, red.OriginalDims(), red.ReducedDims())
		}
		switch m {
		case MethodFBModBase, MethodFBModKMed, MethodFBAllBase, MethodFBAllKMed:
			if bs.SampleEMDs != 45 {
				t.Errorf("%s: sample EMDs %d, want 45", m, bs.SampleEMDs)
			}
			if bs.Tightness <= 0 {
				t.Errorf("%s: tightness %g", m, bs.Tightness)
			}
		default:
			if bs.SampleEMDs != 0 {
				t.Errorf("%s: unexpected sample EMDs %d", m, bs.SampleEMDs)
			}
		}
	}
	if _, _, err := b.Build(Method("bogus"), 4); err == nil {
		t.Error("accepted unknown method")
	}
}

func TestBuilderFlowsNeedSample(t *testing.T) {
	ds, err := data.MusicSpectra(5, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(ds.Cost, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Build(MethodFBAllBase, 4); err == nil {
		t.Error("flow-based build without sample succeeded")
	}
	// Data-independent methods work without a sample.
	if _, _, err := b.Build(MethodKMed, 4); err != nil {
		t.Errorf("KMed without sample failed: %v", err)
	}
}

func TestNewSearcherValidation(t *testing.T) {
	ds, err := data.MusicSpectra(10, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSearcher(PipelineRedEMD, ds.Histograms(), ds.Cost, nil); err == nil {
		t.Error("Red-EMD pipeline without reduction succeeded")
	}
	if _, err := NewSearcher(Pipeline("bogus"), ds.Histograms(), ds.Cost, nil); err == nil {
		t.Error("unknown pipeline accepted")
	}
}

func TestTightnessRatioDetectsOverestimate(t *testing.T) {
	ds, err := data.MusicSpectra(10, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	vecs := ds.Histograms()
	bad := func(x, y []float64) float64 { return 1e9 }
	if _, err := TightnessRatio(bad, vecs, ds.Cost, 10); err == nil {
		t.Error("overestimating filter not rejected")
	}
	good := func(x, y []float64) float64 { return 0 }
	ratio, err := TightnessRatio(good, vecs, ds.Cost, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 0 {
		t.Errorf("zero filter ratio = %g", ratio)
	}
}

// experiment smoke tests: every driver runs at tiny scale with recall
// checking on; internal recall assertions fire on any completeness
// violation.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if raceEnabled {
		t.Skip("experiment sweep too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	c := tinyConfig()
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tab, err := exp.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if len(tab.Columns) < 2 {
				t.Fatalf("experiment has %d columns", len(tab.Columns))
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tab.Columns))
				}
			}
		})
	}
}

// TestFig20PCAWorse asserts the ablation's headline: PCA tightness is
// below the combining reduction's at every d'.
func TestFig20PCAWorse(t *testing.T) {
	if raceEnabled {
		t.Skip("experiment sweep too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	tab, err := Fig20(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		pcaTight, err1 := strconv.ParseFloat(tab.Cell(i, 1), 64)
		fbTight, err2 := strconv.ParseFloat(tab.Cell(i, 2), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d unparsable: %v", i, tab.Rows[i])
		}
		if pcaTight >= fbTight {
			t.Errorf("row %d: PCA tightness %g >= FB %g", i, pcaTight, fbTight)
		}
	}
}

// TestFig21AsymTighter asserts that the asymmetric reduction is at
// least as tight as the symmetric one at every d'.
func TestFig21AsymTighter(t *testing.T) {
	if raceEnabled {
		t.Skip("experiment sweep too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	tab, err := Fig21(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		sym, err1 := strconv.ParseFloat(tab.Cell(i, 1), 64)
		asym, err2 := strconv.ParseFloat(tab.Cell(i, 2), 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d unparsable: %v", i, tab.Rows[i])
		}
		if asym < sym-1e-9 {
			t.Errorf("row %d: asymmetric tightness %g below symmetric %g", i, asym, sym)
		}
	}
}
