package eval

import (
	"fmt"
	"sort"
	"time"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
	"emdsearch/internal/emd"
	"emdsearch/internal/flowred"
	"emdsearch/internal/pca"
	"emdsearch/internal/search"
)

// Config sets the scale of the experiments. FullConfig approximates
// the paper's setup; QuickConfig is the scaled-down variant used by
// the in-repo benchmarks so a full `go test -bench=.` stays tractable.
type Config struct {
	RetinaN int
	IRMAN   int
	ColorN  int
	Queries int
	K       int
	// SampleSize is the database sample |S| for flow collection.
	SampleSize int
	// DPrimes is the reduced-dimensionality sweep of Fig13/Fig14/Tab2.
	DPrimes []int
	// ChainDPrime is the d' used by the pipeline-comparison
	// experiments (the sweet spot identified by Fig14).
	ChainDPrime int
	// CheckRecall verifies every pipeline against the exact answer
	// (expensive: one exhaustive scan per query).
	CheckRecall bool
	// TightPairs bounds the pairs used for tightness measurements.
	TightPairs int
	Seed       int64
}

// FullConfig is the paper-scale setup: the RETINA corpus at its
// original size (3,932 objects, 96 dimensions). The IRMA corpus is
// generated at 2,000 of the paper's 10,000 objects to keep the full
// run under an hour on one machine; the shape statements in
// EXPERIMENTS.md are unaffected by this scaling.
func FullConfig() Config {
	return Config{
		RetinaN:     3932,
		IRMAN:       2000,
		ColorN:      4000,
		Queries:     20,
		K:           10,
		SampleSize:  64,
		DPrimes:     []int{2, 4, 8, 12, 16, 24, 32, 48, 64},
		ChainDPrime: 16,
		CheckRecall: false,
		TightPairs:  200,
		Seed:        1,
	}
}

// QuickConfig is the benchmark-scale setup.
func QuickConfig() Config {
	return Config{
		RetinaN:     300,
		IRMAN:       150,
		ColorN:      400,
		Queries:     4,
		K:           5,
		SampleSize:  32,
		DPrimes:     []int{4, 8, 16},
		ChainDPrime: 16,
		CheckRecall: true,
		TightPairs:  40,
		Seed:        1,
	}
}

// workload bundles one prepared corpus.
type workload struct {
	name    string
	vectors []emd.Histogram
	queries []emd.Histogram
	cost    emd.CostMatrix
}

func (c Config) retina() (*workload, error) {
	ds, err := data.Retina(c.RetinaN+c.Queries, c.Seed)
	if err != nil {
		return nil, err
	}
	vecs, queries, err := ds.Split(c.Queries)
	if err != nil {
		return nil, err
	}
	return &workload{name: ds.Name, vectors: vecs, queries: queries, cost: ds.Cost}, nil
}

func (c Config) irma() (*workload, error) {
	ds, err := data.IRMA(c.IRMAN+c.Queries, c.Seed)
	if err != nil {
		return nil, err
	}
	vecs, queries, err := ds.Split(c.Queries)
	if err != nil {
		return nil, err
	}
	return &workload{name: ds.Name, vectors: vecs, queries: queries, cost: ds.Cost}, nil
}

func (c Config) color(n int) (*workload, error) {
	ds, err := data.ColorImages(n+c.Queries, c.Seed)
	if err != nil {
		return nil, err
	}
	vecs, queries, err := ds.Split(c.Queries)
	if err != nil {
		return nil, err
	}
	return &workload{name: ds.Name, vectors: vecs, queries: queries, cost: ds.Cost}, nil
}

// reference computes exact answers if recall checking is on.
func (c Config) reference(w *workload) ([][]search.Result, error) {
	if !c.CheckRecall {
		return nil, nil
	}
	return ExactKNN(w.vectors, w.cost, w.queries, c.K)
}

// methodSweep builds all reduction methods for every d' and runs the
// given per-(method, d', reduction) callback.
func (c Config) methodSweep(w *workload, fn func(m Method, dPrime int, red *core.Reduction, bs *BuildStats) error) error {
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return err
	}
	for _, dPrime := range c.DPrimes {
		if dPrime >= len(w.vectors[0]) {
			continue
		}
		for _, m := range AllMethods() {
			red, bs, err := builder.Build(m, dPrime)
			if err != nil {
				return err
			}
			if err := fn(m, dPrime, red, bs); err != nil {
				return err
			}
		}
	}
	return nil
}

func sampleOf(vectors []emd.Histogram, n int, seed int64) []emd.Histogram {
	rng := newRand(seed)
	return flowred.Sample(vectors, n, rng)
}

// Fig13 — avg. number of refinements (candidate set size) vs reduced
// dimensionality d' for every reduction method, Red-EMD filter
// pipeline, RETINA-sim corpus, k-NN workload.
func Fig13(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig13: avg refinements vs d' (%s, n=%d, %d-NN, %d queries)", w.name, len(w.vectors), c.K, c.Queries),
		Columns: append([]string{"d'"}, methodNames()...),
	}
	results := map[int]map[Method]float64{}
	err = c.methodSweep(w, func(m Method, dPrime int, red *core.Reduction, _ *BuildStats) error {
		s, err := NewSearcher(PipelineRedEMD, w.vectors, w.cost, red)
		if err != nil {
			return err
		}
		run, err := RunKNN(s, w.queries, c.K, ref)
		if err != nil {
			return err
		}
		if run.Recall < 1 {
			return fmt.Errorf("eval: Fig13 %s d'=%d: recall %.3f < 1 (completeness violated)", m, dPrime, run.Recall)
		}
		if results[dPrime] == nil {
			results[dPrime] = map[Method]float64{}
		}
		results[dPrime][m] = run.AvgRefinements
		return nil
	})
	if err != nil {
		return nil, err
	}
	fillSweepRows(t, results, c.DPrimes)
	t.Notes = append(t.Notes, sweepWinners(results, c.DPrimes, false))
	return t, nil
}

// Fig14 — avg total query time vs d' for every reduction method,
// Red-EMD pipeline (filter cost grows with d', refinement cost
// shrinks: the total is U-shaped, demonstrating why flexible d'
// matters).
func Fig14(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig14: avg query time [ms] vs d' (%s, n=%d, %d-NN)", w.name, len(w.vectors), c.K),
		Columns: append([]string{"d'"}, methodNames()...),
	}
	results := map[int]map[Method]float64{}
	err = c.methodSweep(w, func(m Method, dPrime int, red *core.Reduction, _ *BuildStats) error {
		s, err := NewSearcher(PipelineRedEMD, w.vectors, w.cost, red)
		if err != nil {
			return err
		}
		run, err := RunKNN(s, w.queries, c.K, nil)
		if err != nil {
			return err
		}
		if results[dPrime] == nil {
			results[dPrime] = map[Method]float64{}
		}
		results[dPrime][m] = float64(run.AvgQueryTime.Microseconds()) / 1000.0
		return nil
	})
	if err != nil {
		return nil, err
	}
	fillSweepRows(t, results, c.DPrimes)
	t.Notes = append(t.Notes, sweepWinners(results, c.DPrimes, false))
	return t, nil
}

// pipelineComparison implements Fig15/Fig16: all pipelines on one
// corpus at the chain d'.
func (c Config) pipelineComparison(title string, w *workload) (*Table, error) {
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	red, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   title,
		Columns: []string{"pipeline", "avg_refinements", "avg_filter2_evals", "avg_time_ms", "speedup_vs_scan"},
	}
	var scanTime float64
	for _, p := range AllPipelines() {
		s, err := NewSearcher(p, w.vectors, w.cost, red)
		if err != nil {
			return nil, err
		}
		run, err := RunKNN(s, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		if run.Recall < 1 {
			return nil, fmt.Errorf("eval: pipeline %s: recall %.3f < 1", p, run.Recall)
		}
		ms := float64(run.AvgQueryTime.Microseconds()) / 1000.0
		if p == PipelineScan {
			scanTime = ms
		}
		filter2 := "-"
		if len(run.AvgStageEvals) == 2 {
			filter2 = fmt.Sprintf("%.1f", run.AvgStageEvals[1])
		}
		speedup := "-"
		if scanTime > 0 && ms > 0 {
			speedup = fmt.Sprintf("%.2fx", scanTime/ms)
		}
		t.AddRow(string(p), run.AvgRefinements, filter2, ms, speedup)
	}
	return t, nil
}

// Fig15 — pipeline comparison on RETINA-sim (Figure 10 setup of the
// paper against the sequential scan and the full-dimensional LB_IM
// filter).
func Fig15(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	return c.pipelineComparison(
		fmt.Sprintf("Fig15: pipelines on %s (n=%d, d=%d, d'=%d, %d-NN)",
			w.name, len(w.vectors), len(w.vectors[0]), c.ChainDPrime, c.K), w)
}

// Fig16 — pipeline comparison on IRMA-sim.
func Fig16(c Config) (*Table, error) {
	w, err := c.irma()
	if err != nil {
		return nil, err
	}
	return c.pipelineComparison(
		fmt.Sprintf("Fig16: pipelines on %s (n=%d, d=%d, d'=%d, %d-NN)",
			w.name, len(w.vectors), len(w.vectors[0]), c.ChainDPrime, c.K), w)
}

// Fig17 — flow-based reduction quality vs sample size |S|: tightness
// ratio, refinements and preprocessing time (FB-All-KMed, RETINA-sim).
func Fig17(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig17: FB quality vs sample size (%s, d'=%d)", w.name, c.ChainDPrime),
		Columns: []string{"sample_size", "tightness_ratio", "avg_refinements", "preprocess_ms"},
	}
	sizes := []int{4, 8, 16, 32, 64}
	// Local search is a randomized heuristic: average each sample size
	// over a few independent sample draws to expose the trend rather
	// than single-run noise.
	const repeats = 3
	for _, size := range sizes {
		if size > len(w.vectors) {
			continue
		}
		if size > c.SampleSize*4 && size > 64 {
			continue
		}
		var tightSum, refineSum, preSum float64
		for rep := 0; rep < repeats; rep++ {
			builder, err := NewBuilder(w.cost, sampleOf(w.vectors, size, c.Seed+int64(size+97*rep)), c.Seed+int64(rep))
			if err != nil {
				return nil, err
			}
			red, bs, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
			if err != nil {
				return nil, err
			}
			reduced, err := core.NewReducedEMD(w.cost, red, red)
			if err != nil {
				return nil, err
			}
			tight, err := TightnessRatio(reduced.Distance, w.vectors, w.cost, c.TightPairs)
			if err != nil {
				return nil, err
			}
			s, err := NewSearcher(PipelineRedEMD, w.vectors, w.cost, red)
			if err != nil {
				return nil, err
			}
			run, err := RunKNN(s, w.queries, c.K, ref)
			if err != nil {
				return nil, err
			}
			if run.Recall < 1 {
				return nil, fmt.Errorf("eval: Fig17 |S|=%d: recall %.3f < 1", size, run.Recall)
			}
			tightSum += tight
			refineSum += run.AvgRefinements
			preSum += float64((bs.FlowTime + bs.OptimizeTime).Microseconds()) / 1000.0
		}
		t.AddRow(size, tightSum/repeats, refineSum/repeats, preSum/repeats)
	}
	t.Notes = append(t.Notes, "tightness and selectivity saturate at small sample sizes; preprocessing grows quadratically in |S|")
	return t, nil
}

// Fig18 — scalability with database size on the 64-d color corpus:
// per-query time of the scan vs the chained pipeline.
func Fig18(c Config) (*Table, error) {
	sizes := []int{}
	base := c.ColorN / 8
	if base < 25 {
		base = 25
	}
	for n := base; n <= c.ColorN; n *= 2 {
		sizes = append(sizes, n)
	}
	w, err := c.color(c.ColorN)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	red, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig18: scalability on %s (d=%d, d'=%d, %d-NN)", w.name, len(w.vectors[0]), c.ChainDPrime, c.K),
		Columns: []string{"n", "scan_ms", "chain_ms", "speedup", "chain_refinements"},
	}
	for _, n := range sizes {
		sub := &workload{name: w.name, vectors: w.vectors[:n], queries: w.queries, cost: w.cost}
		ref, err := c.reference(sub)
		if err != nil {
			return nil, err
		}
		scan, err := NewSearcher(PipelineScan, sub.vectors, sub.cost, nil)
		if err != nil {
			return nil, err
		}
		scanRun, err := RunKNN(scan, sub.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		chain, err := NewSearcher(PipelineChain, sub.vectors, sub.cost, red)
		if err != nil {
			return nil, err
		}
		chainRun, err := RunKNN(chain, sub.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		if chainRun.Recall < 1 {
			return nil, fmt.Errorf("eval: Fig18 n=%d: recall %.3f < 1", n, chainRun.Recall)
		}
		sm := float64(scanRun.AvgQueryTime.Microseconds()) / 1000.0
		cm := float64(chainRun.AvgQueryTime.Microseconds()) / 1000.0
		speedup := "-"
		if cm > 0 {
			speedup = fmt.Sprintf("%.2fx", sm/cm)
		}
		t.AddRow(n, sm, cm, speedup, chainRun.AvgRefinements)
	}
	t.Notes = append(t.Notes, "speedup over the sequential scan grows with n: refinements grow sublinearly while the scan is linear in n")
	return t, nil
}

// Fig19 — k sweep: refinements and time per pipeline at the chain d'.
func Fig19(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	red, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}
	chain, err := NewSearcher(PipelineChain, w.vectors, w.cost, red)
	if err != nil {
		return nil, err
	}
	scan, err := NewSearcher(PipelineScan, w.vectors, w.cost, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig19: k sweep on %s (n=%d, d'=%d)", w.name, len(w.vectors), c.ChainDPrime),
		Columns: []string{"k", "chain_refinements", "chain_ms", "scan_ms", "speedup"},
	}
	ks := []int{1, 2, 5, 10, 20, 50, 100}
	for _, k := range ks {
		if k > len(w.vectors) {
			continue
		}
		var ref [][]search.Result
		if c.CheckRecall {
			ref, err = ExactKNN(w.vectors, w.cost, w.queries, k)
			if err != nil {
				return nil, err
			}
		}
		chainRun, err := RunKNN(chain, w.queries, k, ref)
		if err != nil {
			return nil, err
		}
		if chainRun.Recall < 1 {
			return nil, fmt.Errorf("eval: Fig19 k=%d: recall %.3f < 1", k, chainRun.Recall)
		}
		scanRun, err := RunKNN(scan, w.queries, k, nil)
		if err != nil {
			return nil, err
		}
		cm := float64(chainRun.AvgQueryTime.Microseconds()) / 1000.0
		sm := float64(scanRun.AvgQueryTime.Microseconds()) / 1000.0
		speedup := "-"
		if cm > 0 {
			speedup = fmt.Sprintf("%.2fx", sm/cm)
		}
		t.AddRow(k, chainRun.AvgRefinements, cm, sm, speedup)
	}
	t.Notes = append(t.Notes, "refinements grow moderately with k; the filter keeps pruning most of the database even at large k")
	return t, nil
}

// methodNames renders the method list for table headers.
func methodNames() []string {
	methods := AllMethods()
	out := make([]string, len(methods))
	for i, m := range methods {
		out[i] = string(m)
	}
	return out
}

// fillSweepRows turns the (d' -> method -> value) map into table rows.
func fillSweepRows(t *Table, results map[int]map[Method]float64, dPrimes []int) {
	keys := make([]int, 0, len(results))
	for d := range results {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	for _, d := range keys {
		row := []interface{}{d}
		for _, m := range AllMethods() {
			row = append(row, results[d][m])
		}
		t.AddRow(row...)
	}
	_ = dPrimes
}

// sweepWinners summarizes which method achieves the smallest value per
// d' (or largest if max is true).
func sweepWinners(results map[int]map[Method]float64, dPrimes []int, max bool) string {
	counts := map[Method]int{}
	for _, byMethod := range results {
		var best Method
		first := true
		for _, m := range AllMethods() {
			v, ok := byMethod[m]
			if !ok {
				continue
			}
			if first || (max && v > byMethod[best]) || (!max && v < byMethod[best]) {
				best = m
				first = false
			}
		}
		if !first {
			counts[best]++
		}
	}
	var bestOverall Method
	bestCount := -1
	for _, m := range AllMethods() {
		if counts[m] > bestCount {
			bestOverall = m
			bestCount = counts[m]
		}
	}
	return fmt.Sprintf("best method at most d' values: %s (%d of %d sweep points)", bestOverall, bestCount, len(results))
}

// pcaFor builds the PCA ablation reduction from the same sample budget
// the other methods get.
func pcaFor(w *workload, c Config, dPrime int) (*pca.SoftReduction, error) {
	sample := sampleOf(w.vectors, maxInt(c.SampleSize, 16), c.Seed)
	return pca.New(sample, w.cost, dPrime, 0.1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// elapsedMS formats a duration in milliseconds.
func elapsedMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}
