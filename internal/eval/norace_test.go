//go:build !race

package eval

// raceEnabled reports that this binary was built with -race; see
// race_test.go.
const raceEnabled = false
