package eval

import (
	"fmt"
	"sort"
	"time"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
	"emdsearch/internal/search"
	"emdsearch/internal/vptree"
)

// MediumConfig sits between QuickConfig and FullConfig: large enough
// for stable shapes, small enough that the complete suite runs in
// roughly twenty minutes. EXPERIMENTS.md quotes this scale.
func MediumConfig() Config {
	return Config{
		RetinaN:     1200,
		IRMAN:       600,
		ColorN:      1500,
		Queries:     8,
		K:           10,
		SampleSize:  48,
		DPrimes:     []int{2, 4, 8, 16, 32},
		ChainDPrime: 16,
		CheckRecall: false,
		TightPairs:  100,
		Seed:        1,
	}
}

// Fig23 — extension beyond the paper: the classic metric-index
// alternative. A VP-tree over the exact (full-dimensional) EMD prunes
// by the triangle inequality; the paper's filter chain prunes by cheap
// lower bounds. Both are exact. The table reports full-dimensional
// EMD computations per query and wall-clock time for the scan, the
// VP-tree and the chained filter pipeline.
func Fig23(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(w.cost)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	red, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}
	chain, err := NewSearcher(PipelineChain, w.vectors, w.cost, red)
	if err != nil {
		return nil, err
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}

	buildStart := time.Now()
	tree, err := vptree.Build(len(w.vectors), func(i, j int) float64 {
		return dist.Distance(w.vectors[i], w.vectors[j])
	}, newRand(c.Seed+7))
	if err != nil {
		return nil, err
	}
	treeBuild := time.Since(buildStart)

	t := &Table{
		Title:   fmt.Sprintf("Fig23 (extension): metric index vs filter chain (%s, n=%d, %d-NN)", w.name, len(w.vectors), c.K),
		Columns: []string{"approach", "full_EMDs_per_query", "avg_time_ms", "build_ms"},
	}

	// Sequential scan.
	scan, err := NewSearcher(PipelineScan, w.vectors, w.cost, nil)
	if err != nil {
		return nil, err
	}
	scanRun, err := RunKNN(scan, w.queries, c.K, ref)
	if err != nil {
		return nil, err
	}
	t.AddRow("SeqScan", scanRun.AvgRefinements, elapsedMS(scanRun.AvgQueryTime), 0.0)

	// VP-tree over the exact EMD.
	var vpCalls float64
	vpStart := time.Now()
	for qi, q := range w.queries {
		results, stats, err := tree.KNN(func(i int) float64 {
			return dist.Distance(q, w.vectors[i])
		}, c.K)
		if err != nil {
			return nil, err
		}
		vpCalls += float64(stats.DistanceCalls)
		if ref != nil {
			want := map[int]bool{}
			for _, r := range ref[qi] {
				want[r.Index] = true
			}
			for _, r := range results {
				if !want[r.Index] {
					return nil, fmt.Errorf("eval: Fig23 VP-tree returned wrong neighbor %d", r.Index)
				}
			}
		}
	}
	vpTime := time.Since(vpStart) / time.Duration(len(w.queries))
	t.AddRow("VP-tree(EMD)", vpCalls/float64(len(w.queries)), elapsedMS(vpTime), elapsedMS(treeBuild))

	// Chained filter pipeline.
	chainRun, err := RunKNN(chain, w.queries, c.K, ref)
	if err != nil {
		return nil, err
	}
	t.AddRow(string(PipelineChain), chainRun.AvgRefinements, elapsedMS(chainRun.AvgQueryTime), 0.0)

	t.Notes = append(t.Notes,
		"the VP-tree reduces full EMDs versus the scan, but concentrated high-dimensional EMD distances blunt triangle-inequality pruning; the reduction filter chain needs far fewer full EMDs and no O(n log n) EMD build phase")
	return t, nil
}

// Tab3 — extension: how close do the heuristics get to the exhaustive
// Definition 6 optimum? Feasible only at toy dimensionality (the
// search space is a Stirling number); this is precisely the scale the
// paper's Section 3.2.2 deems the exhaustive search practical for.
func Tab3(c Config) (*Table, error) {
	const d = 8
	ds, err := data.MusicSpectra(60+4, d, c.Seed)
	if err != nil {
		return nil, err
	}
	vectors, queries, err := ds.Split(4)
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		return nil, err
	}
	// Range workload: epsilon = exact 3-NN distance per query.
	workload := make([]core.WorkloadQuery, len(queries))
	for qi, q := range queries {
		dists := make([]float64, len(vectors))
		for i, y := range vectors {
			dists[i] = dist.Distance(q, y)
		}
		sort.Float64s(dists)
		workload[qi] = core.WorkloadQuery{Query: q, Epsilon: dists[2]}
	}

	builder, err := NewBuilder(ds.Cost, sampleOf(vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Tab3 (extension): heuristics vs Definition-6 optimum (%s, d=%d, n=%d, range workload)", ds.Name, d, len(vectors)),
		Columns: []string{"d'", "optimal", "KMed", "FB-Mod-KMed", "FB-All-KMed", "Adjacent", "Random", "search_space"},
	}
	for _, dr := range []int{2, 3, 4} {
		_, optCount, err := core.OptimalReduction(vectors, workload, ds.Cost, dr, 0)
		if err != nil {
			return nil, err
		}
		row := []interface{}{dr, optCount}
		for _, m := range []Method{MethodKMed, MethodFBModKMed, MethodFBAllKMed, MethodAdjacent, MethodRandom} {
			red, _, err := builder.Build(m, dr)
			if err != nil {
				return nil, err
			}
			count, err := core.CandidateCount(vectors, workload, ds.Cost, red)
			if err != nil {
				return nil, err
			}
			if count < optCount {
				return nil, fmt.Errorf("eval: Tab3: %s beat the exhaustive optimum (%d < %d)", m, count, optCount)
			}
			row = append(row, count)
		}
		space, err := core.CountPartitions(d, dr)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("S(%d,%d)=%d", d, dr, space))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"the flow-based heuristics land within a small factor of the exhaustive optimum at a vanishing fraction of its cost; beyond toy dimensionality the optimum is unreachable (Section 3.2.2)")
	return t, nil
}

// Fig24 — extension: certified approximate search. Compares ApproxKNN
// (reduced-EMD lower bound + greedy-flow upper bound, no exact LP
// solves) against the exact chain: recall of the true k-NN, candidates
// examined, and latency, across d'.
func Fig24(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(w.cost)
	if err != nil {
		return nil, err
	}
	upper, err := lb.NewGreedyUpper(w.cost)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	exactAnswers, err := ExactKNN(w.vectors, w.cost, w.queries, c.K)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig24 (extension): certified approximate k-NN (%s, n=%d, %d-NN)", w.name, len(w.vectors), c.K),
		Columns: []string{"d'", "recall", "avg_pulled", "approx_ms", "exact_chain_ms", "avg_cert_width"},
	}
	for _, dPrime := range c.DPrimes {
		if dPrime >= len(w.vectors[0]) {
			continue
		}
		red, _, err := builder.Build(MethodFBAllKMed, dPrime)
		if err != nil {
			return nil, err
		}
		lower, err := core.NewReducedEMD(w.cost, red, red)
		if err != nil {
			return nil, err
		}
		reducedVecs := make([]emd.Histogram, len(w.vectors))
		for i, v := range w.vectors {
			reducedVecs[i] = red.Apply(v)
		}

		var hits, total, pulled int
		var certWidth float64
		start := time.Now()
		for qi, q := range w.queries {
			qr := red.Apply(q)
			lowers := make([]float64, len(w.vectors))
			for i := range lowers {
				lowers[i] = lower.DistanceReduced(qr, reducedVecs[i])
			}
			results, cert, err := search.ApproxKNN(search.NewScanRanking(lowers), func(i int) float64 {
				return upper.Distance(q, w.vectors[i])
			}, c.K)
			if err != nil {
				return nil, err
			}
			pulled += cert.Pulled
			certWidth += cert.UpperK - cert.LowerK
			want := map[int]bool{}
			for _, r := range exactAnswers[qi] {
				want[r.Index] = true
			}
			for _, r := range results {
				total++
				if want[r.Index] {
					hits++
				}
			}
			// Sanity: certificate must bracket the true k-th distance.
			trueKth := exactAnswers[qi][len(exactAnswers[qi])-1].Dist
			if trueKth < cert.LowerK-1e-9 || trueKth > cert.UpperK+1e-9 {
				return nil, fmt.Errorf("eval: Fig24 d'=%d: certificate [%g, %g] misses true k-th %g",
					dPrime, cert.LowerK, cert.UpperK, trueKth)
			}
		}
		approxMS := elapsedMS(time.Since(start)) / float64(len(w.queries))

		chain, err := NewSearcher(PipelineChain, w.vectors, w.cost, red)
		if err != nil {
			return nil, err
		}
		chainRun, err := RunKNN(chain, w.queries, c.K, nil)
		if err != nil {
			return nil, err
		}
		_ = dist
		t.AddRow(dPrime,
			float64(hits)/float64(total),
			float64(pulled)/float64(len(w.queries)),
			approxMS,
			elapsedMS(chainRun.AvgQueryTime),
			certWidth/float64(len(w.queries)))
	}
	t.Notes = append(t.Notes,
		"d' governs how many candidates must be pulled and how narrow the certificate gets; answer quality itself is set by the greedy upper bound's fidelity. The certificate always brackets the true k-th distance and no full-dimensional LP is ever solved")
	return t, nil
}

// Fig25 — extension: hierarchical filter cascades (the generalization
// of the fixed factor-4 hierarchy of [14]). Compares the single-level
// Red-EMD chain against nested 2- and 3-level cascades built by
// composing reductions: per-level filter evaluations, refinements and
// total time.
func Fig25(c Config) (*Table, error) {
	w, err := c.retina()
	if err != nil {
		return nil, err
	}
	ref, err := c.reference(w)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(w.cost, sampleOf(w.vectors, c.SampleSize, c.Seed), c.Seed)
	if err != nil {
		return nil, err
	}
	finest, _, err := builder.Build(MethodFBAllKMed, c.ChainDPrime)
	if err != nil {
		return nil, err
	}

	// Nested coarser levels derived from the finest reduction by
	// clustering its reduced cost matrix.
	reducedCost, err := core.ReduceCost(w.cost, finest, finest)
	if err != nil {
		return nil, err
	}
	coarser := []*core.Reduction{}
	prev := finest
	prevCost := reducedCost
	for _, dr := range []int{c.ChainDPrime / 2, c.ChainDPrime / 4} {
		if dr < 2 {
			break
		}
		innerBuilder, err := NewBuilder(prevCost, nil, c.Seed)
		if err != nil {
			return nil, err
		}
		inner, _, err := innerBuilder.Build(MethodKMed, dr)
		if err != nil {
			return nil, err
		}
		composed, err := core.Compose(prev, inner)
		if err != nil {
			return nil, err
		}
		coarser = append(coarser, composed)
		if prevCost, err = core.ReduceCost(prevCost, inner, inner); err != nil {
			return nil, err
		}
		prev = composed
	}

	t := &Table{
		Title:   fmt.Sprintf("Fig25 (extension): hierarchical cascades (%s, n=%d, finest d'=%d, %d-NN)", w.name, len(w.vectors), c.ChainDPrime, c.K),
		Columns: []string{"levels", "stage_evals", "refinements", "avg_time_ms"},
	}
	dist, err := emd.NewDist(w.cost)
	if err != nil {
		return nil, err
	}
	for nLevels := 1; nLevels <= len(coarser)+1; nLevels++ {
		// Stages coarsest-first: coarser[nLevels-2], ..., finest.
		var levels []*core.Reduction
		for i := nLevels - 2; i >= 0; i-- {
			levels = append(levels, coarser[i])
		}
		levels = append(levels, finest)

		s := &search.Searcher{
			N:      len(w.vectors),
			Refine: func(q emd.Histogram, i int) float64 { return dist.Distance(q, w.vectors[i]) },
		}
		for _, lr := range levels {
			lr := lr
			lred, err := core.NewReducedEMD(w.cost, lr, lr)
			if err != nil {
				return nil, err
			}
			lvecs := make([]emd.Histogram, len(w.vectors))
			for i, v := range w.vectors {
				lvecs[i] = lr.Apply(v)
			}
			s.Stages = append(s.Stages, search.FilterStage{
				Name:         fmt.Sprintf("Red-EMD-%d", lr.ReducedDims()),
				PrepareQuery: lr.Apply,
				Distance: func(qr emd.Histogram, i int) float64 {
					return lred.DistanceReduced(qr, lvecs[i])
				},
			})
		}
		run, err := RunKNN(s, w.queries, c.K, ref)
		if err != nil {
			return nil, err
		}
		if run.Recall < 1 {
			return nil, fmt.Errorf("eval: Fig25 %d levels: recall %.3f < 1", nLevels, run.Recall)
		}
		evals := ""
		for i, e := range run.AvgStageEvals {
			if i > 0 {
				evals += "/"
			}
			evals += fmt.Sprintf("%.0f", e)
		}
		t.AddRow(nLevels, evals, run.AvgRefinements, elapsedMS(run.AvgQueryTime))
	}
	t.Notes = append(t.Notes,
		"deeper cascades keep the expensive fine-level filter off most of the database: the coarse level scans everything cheaply, finer levels run on shrinking candidate sets, refinements stay identical (nesting preserves the final filter)")
	return t, nil
}
