// Package eval is the experiment harness that regenerates the paper's
// evaluation (see DESIGN.md section 5 for the experiment index and the
// reconstruction caveat). Each experiment builds its corpus and
// reductions, runs multistep queries through internal/search, and
// reports a Table whose rows correspond to the series of one figure or
// the rows of one table in the paper.
package eval

import (
	"fmt"
	"strings"
)

// Table is one experiment result: a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries free-form observations (e.g. which series wins)
	// that EXPERIMENTS.md quotes.
	Notes []string
}

// AddRow appends a row, formatting each value with %v for strings and
// %.4g for floats.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; cells
// never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns the cell at (row, col) or an empty string if out of
// range; used by tests to assert on experiment output.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}
