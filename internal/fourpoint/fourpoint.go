// Package fourpoint implements the supermetric (four-point property)
// lower bound of Connor et al. (arXiv:1707.08370) for two-pivot metric
// pruning. A metric space has the four-point property when any four
// points embed isometrically in 3-dimensional Euclidean space; all
// Euclidean spaces and many practically-important metrics qualify.
// For such spaces, placing two pivots p and v on a planar axis and
// projecting any other point to its "apex" coordinates (preserving its
// distances to both pivots, with a non-negative second coordinate)
// yields the Hilbert-exclusion bound: the true distance between two
// points is at least the planar distance between their apexes.
//
// The EMD is not guaranteed to be supermetric, so the engine verifies
// the property on sampled quadruples before enabling this bound and
// falls back to plain triangle pruning otherwise.
package fourpoint

import "math"

// LowerBound returns a certified lower bound on d(q, s) for an
// unevaluated point s, given two pivots p and v with pivot distance
// dpv = d(p, v), the query's pivot distances dqp = d(q, p) and
// dqv = d(q, v), and interval knowledge of s's pivot distances:
// d(p, s) in [alo, ahi] and d(v, s) in [blo, bhi].
//
// It requires the four-point property to hold among {p, v, q, s}; the
// result is the minimum planar distance from q's apex to the region of
// apexes consistent with s's annuli, never less than the plain
// triangle-inequality bound (which is returned as a floor, so the
// function degrades gracefully when the planar geometry is degenerate:
// dpv non-positive or NaN inputs).
func LowerBound(dpv, dqp, dqv, alo, ahi, blo, bhi float64) float64 {
	tri := 0.0
	for _, b := range [4]float64{alo - dqp, dqp - ahi, blo - dqv, dqv - bhi} {
		if b > tri {
			tri = b
		}
	}
	if !(dpv > 0) || math.IsNaN(dqp) || math.IsNaN(dqv) ||
		math.IsNaN(alo) || math.IsNaN(ahi) || math.IsNaN(blo) || math.IsNaN(bhi) {
		return tri
	}
	// Tolerance for feasibility checks. Inclusive checks and clamped
	// intersections can only ADD candidate points, which only lowers
	// the reported bound — the conservative, sound direction.
	eps := 1e-9 * (dpv + dqp + dqv + ahi + bhi)

	// q's apex: distance dqp from p = (0,0) and dqv from v = (dpv, 0),
	// second coordinate non-negative.
	qx := (dqp*dqp + dpv*dpv - dqv*dqv) / (2 * dpv)
	qy2 := dqp*dqp - qx*qx
	if qy2 < 0 {
		qy2 = 0
	}
	qy := math.Sqrt(qy2)

	feasA := func(x, y float64) bool {
		r := math.Hypot(x, y)
		return r >= alo-eps && r <= ahi+eps
	}
	feasB := func(x, y float64) bool {
		r := math.Hypot(x-dpv, y)
		return r >= blo-eps && r <= bhi+eps
	}
	// If q's own apex satisfies both annuli the region contains it and
	// the geometric bound is zero.
	if feasA(qx, qy) && feasB(qx, qy) {
		return tri
	}

	// The minimizer over the (closed) region lies on its boundary:
	// on the interior of one of the four bounding circle arcs (then it
	// is q's projection onto that circle), at an arc corner (a
	// circle-circle intersection), on the axis (then it is q's axis
	// projection or a circle-axis point). Enumerate them all; extra or
	// infeasible candidates only lower the bound.
	best := math.Inf(1)
	consider := func(x, y float64) {
		if d := math.Hypot(qx-x, qy-y); d < best {
			best = d
		}
	}
	project := func(cx, r float64, otherOK func(x, y float64) bool) {
		dx, dy := qx-cx, qy
		n := math.Hypot(dx, dy)
		var px, py float64
		if n == 0 {
			px, py = cx+r, 0
		} else {
			px, py = cx+r*dx/n, r*dy/n
		}
		if otherOK(px, py) {
			consider(px, py)
		}
	}
	project(0, alo, feasB)
	project(0, ahi, feasB)
	project(dpv, blo, feasA)
	project(dpv, bhi, feasA)
	corner := func(ra, rb float64) {
		x := (ra*ra + dpv*dpv - rb*rb) / (2 * dpv)
		y2 := ra*ra - x*x
		if y2 < 0 {
			y2 = 0 // clamped near-tangency: extra candidate, still sound
		}
		consider(x, math.Sqrt(y2))
	}
	for _, ra := range [2]float64{alo, ahi} {
		for _, rb := range [2]float64{blo, bhi} {
			corner(ra, rb)
		}
	}
	axis := func(x float64) {
		if feasA(x, 0) && feasB(x, 0) {
			consider(x, 0)
		}
	}
	for _, x := range [9]float64{alo, -alo, ahi, -ahi, dpv - blo, dpv + blo, dpv - bhi, dpv + bhi, qx} {
		axis(x)
	}
	if best > tri {
		return best
	}
	return tri
}

// Holds reports whether the four-point property is consistent for one
// quadruple {p, v, q, s} with exact pairwise distances: the point-wise
// LowerBound (degenerate annuli) must not exceed the true d(q, s) by
// more than tol. The engine samples this over database quadruples to
// gate supermetric pruning.
func Holds(dpv, dqp, dqv, dps, dvs, dqs, tol float64) bool {
	return LowerBound(dpv, dqp, dqv, dps, dps, dvs, dvs) <= dqs+tol
}
