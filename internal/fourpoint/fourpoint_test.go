package fourpoint

import (
	"math"
	"math/rand"
	"testing"
)

type pt struct{ x, y float64 }

func dist(a, b pt) float64 { return math.Hypot(a.x-b.x, a.y-b.y) }

// TestLowerBoundSoundEuclidean checks that on true 2-D Euclidean data
// (where the four-point property holds exactly) the bound never
// exceeds the real distance, for degenerate point annuli.
func TestLowerBoundSoundEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rp := func() pt { return pt{rng.Float64()*10 - 5, rng.Float64()*10 - 5} }
	for trial := 0; trial < 5000; trial++ {
		p, v, q, s := rp(), rp(), rp(), rp()
		lb := LowerBound(dist(p, v), dist(q, p), dist(q, v),
			dist(p, s), dist(p, s), dist(v, s), dist(v, s))
		if d := dist(q, s); lb > d+1e-9 {
			t.Fatalf("trial %d: LowerBound = %g > d(q,s) = %g (p=%v v=%v q=%v s=%v)",
				trial, lb, d, p, v, q, s)
		}
	}
}

// TestLowerBoundSoundIntervalAnnuli checks soundness when s is only
// known through interval annuli covering a whole point set, the way
// tree nodes summarize their subtrees.
func TestLowerBoundSoundIntervalAnnuli(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rp := func() pt { return pt{rng.Float64()*10 - 5, rng.Float64()*10 - 5} }
	for trial := 0; trial < 1000; trial++ {
		p, v, q := rp(), rp(), rp()
		m := 2 + rng.Intn(8)
		pts := make([]pt, m)
		alo, ahi := math.Inf(1), math.Inf(-1)
		blo, bhi := math.Inf(1), math.Inf(-1)
		minD := math.Inf(1)
		for i := range pts {
			pts[i] = rp()
			da, db := dist(p, pts[i]), dist(v, pts[i])
			alo, ahi = math.Min(alo, da), math.Max(ahi, da)
			blo, bhi = math.Min(blo, db), math.Max(bhi, db)
			minD = math.Min(minD, dist(q, pts[i]))
		}
		lb := LowerBound(dist(p, v), dist(q, p), dist(q, v), alo, ahi, blo, bhi)
		if lb > minD+1e-9 {
			t.Fatalf("trial %d: LowerBound = %g > min d(q,s) = %g", trial, lb, minD)
		}
	}
}

// TestLowerBoundExactSameSide: with degenerate annuli and both q and s
// in the upper half-plane between two axis pivots, the planar bound
// equals the exact distance — the candidate enumeration is complete.
func TestLowerBoundExactSameSide(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		dpv := 1 + rng.Float64()*9
		p := pt{0, 0}
		v := pt{dpv, 0}
		q := pt{rng.Float64()*14 - 2, rng.Float64() * 8}
		s := pt{rng.Float64()*14 - 2, rng.Float64() * 8}
		lb := LowerBound(dpv, dist(q, p), dist(q, v),
			dist(p, s), dist(p, s), dist(v, s), dist(v, s))
		if d := dist(q, s); math.Abs(lb-d) > 1e-6*(1+d) {
			t.Fatalf("trial %d: LowerBound = %g, want exact %g (q=%v s=%v dpv=%g)",
				trial, lb, d, q, s, dpv)
		}
	}
}

// TestLowerBoundBeatsTriangle pins a configuration where the
// supermetric bound is strictly tighter than both triangle bounds:
// q hovers above the midpoint of two pivots 2 apart, s sits at the
// midpoint (distance 1 from each pivot).
func TestLowerBoundBeatsTriangle(t *testing.T) {
	dq := math.Sqrt(26) // d(q, p) = d(q, v) for q = (1, 5)
	lb := LowerBound(2, dq, dq, 1, 1, 1, 1)
	tri := dq - 1 // best triangle bound, about 4.099
	if lb <= tri {
		t.Fatalf("LowerBound = %g, not better than triangle %g", lb, tri)
	}
	if math.Abs(lb-5) > 1e-9 {
		t.Fatalf("LowerBound = %g, want 5 (planar distance to the midpoint)", lb)
	}
}

// TestLowerBoundDegenerateFallsBackToTriangle covers inputs where the
// planar construction is unavailable.
func TestLowerBoundDegenerateFallsBackToTriangle(t *testing.T) {
	cases := []struct {
		name                                   string
		dpv, dqp, dqv, alo, ahi, blo, bhi, min float64
	}{
		{"zero pivot distance", 0, 5, 5, 1, 2, 1, 2, 3},
		{"nan pivot distance", math.NaN(), 5, 5, 1, 2, 1, 2, 3},
		{"nan annulus", 2, 5, 5, math.NaN(), math.NaN(), 1, 2, 3},
		{"inside both annuli", 2, 1.5, 1.5, 1, 2, 1, 2, 0},
	}
	for _, c := range cases {
		lb := LowerBound(c.dpv, c.dqp, c.dqv, c.alo, c.ahi, c.blo, c.bhi)
		if lb != c.min {
			t.Errorf("%s: LowerBound = %g, want %g", c.name, lb, c.min)
		}
	}
}

// TestHoldsDetectsFourCycleViolation: the shortest-path metric of the
// 4-cycle with unit edges is a metric WITHOUT the four-point property.
// With pivots a, b and points c, d the planar apexes land 3 apart while
// the true distance is 1 — Holds must flag it, which is what lets the
// engine refuse supermetric pruning on such spaces.
func TestHoldsDetectsFourCycleViolation(t *testing.T) {
	// d(a,b)=d(b,c)=d(c,d)=d(d,a)=1, d(a,c)=d(b,d)=2
	dpv := 1.0 // d(a, b)
	dqp := 2.0 // d(c, a)
	dqv := 1.0 // d(c, b)
	dps := 1.0 // d(a, d)
	dvs := 2.0 // d(b, d)
	dqs := 1.0 // d(c, d)
	if lb := LowerBound(dpv, dqp, dqv, dps, dps, dvs, dvs); math.Abs(lb-3) > 1e-9 {
		t.Fatalf("LowerBound = %g, want 3 (apexes at (2,0) and (-1,0))", lb)
	}
	if Holds(dpv, dqp, dqv, dps, dvs, dqs, 1e-9) {
		t.Fatal("Holds accepted a quadruple violating the four-point property")
	}
	// The same quadruple in Euclidean position passes.
	p, v, q, s := pt{0, 0}, pt{1, 0}, pt{2, 0}, pt{0, 1}
	if !Holds(dist(p, v), dist(q, p), dist(q, v), dist(p, s), dist(v, s), dist(q, s), 1e-9) {
		t.Fatal("Holds rejected a Euclidean quadruple")
	}
}
