// Package admission implements overload control for query serving: a
// bounded concurrency limiter with a bounded, deadline-aware wait
// queue, explicit pressure levels (admit → queue → degrade → shed),
// and a fault breaker that converts repeated contained invariant
// failures into a degraded serving mode instead of a crash loop.
//
// The limiter's job is to make overload fail *fast and selectively*:
// when offered load exceeds capacity, a bounded number of queries wait
// (briefly — the queue is sized so waiting stays comparable to one
// service time), queries that would provably miss their deadline in
// the queue are rejected immediately with retry guidance, and the rest
// are shed in well under a millisecond instead of piling up and
// collapsing tail latency for everyone.
package admission

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Level is the admission outcome class of one request — the pressure
// level it was served (or rejected) at.
type Level int

const (
	// LevelAdmit: a free slot was available; the request ran
	// immediately with no queueing.
	LevelAdmit Level = iota
	// LevelQueue: the request waited in the bounded queue for a slot
	// and was served at full quality.
	LevelQueue
	// LevelDegrade: the request waited under high queue pressure; the
	// caller should serve it in degraded form (e.g. a tightened
	// per-query budget yielding a certified anytime answer) to shed
	// work without shedding the request.
	LevelDegrade
	// LevelShed: the request was rejected — queue full, or its
	// deadline would provably have expired before it could start.
	LevelShed
)

// String names the level for logs and reports.
func (l Level) String() string {
	switch l {
	case LevelAdmit:
		return "admit"
	case LevelQueue:
		return "queue"
	case LevelDegrade:
		return "degrade"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Overload is the typed rejection of a shed request. It carries the
// state a client needs to back off intelligently.
type Overload struct {
	// QueueDepth is the number of requests waiting when this one was
	// rejected; InFlight the number running.
	QueueDepth int
	InFlight   int
	// RetryAfter is the limiter's estimate of when capacity will be
	// available again (roughly the time to drain the current queue).
	RetryAfter time.Duration
	// Reason says why the request was shed: "queue full" or "deadline
	// would expire before start".
	Reason string
}

func (o *Overload) Error() string {
	return fmt.Sprintf("admission: overloaded (%s): %d queued, %d in flight, retry after %v",
		o.Reason, o.QueueDepth, o.InFlight, o.RetryAfter)
}

// Config sizes a Limiter. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// MaxConcurrent bounds the requests running at once; <= 0 defaults
	// to GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for a slot; <= 0 defaults
	// to 2 × MaxConcurrent. Small on purpose: a deep queue converts
	// overload into latency instead of fast failure.
	MaxQueue int
	// DegradeAt is the queue-occupancy fraction at which admitted
	// requests are flagged LevelDegrade; <= 0 defaults to 0.5, >= 1
	// disables degradation (queue → shed directly).
	DegradeAt float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.5
	}
	return c
}

// Stats is a point-in-time snapshot of a limiter's counters and
// gauges.
type Stats struct {
	// Admitted counts requests that got a slot without waiting; Queued
	// those that waited and got one; Shed those rejected (queue full,
	// implausible deadline, or cancelled while waiting).
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`
	// QueueDepth and InFlight are current gauges.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// WaitTime is the cumulative time requests spent queued;
	// WaitTime/Queued is the average queue wait.
	WaitTime time.Duration `json:"wait_time_ns"`
	// EstServiceTime is the limiter's moving estimate of one request's
	// service time, the basis of deadline-plausibility rejection.
	EstServiceTime time.Duration `json:"est_service_time_ns"`
}

// Limiter is the bounded concurrency limiter. Safe for concurrent use.
type Limiter struct {
	cfg       Config
	slots     chan struct{}
	degradeAt int64 // queue depth at which admissions turn LevelDegrade

	waiting  atomic.Int64
	inflight atomic.Int64
	svcNS    atomic.Int64 // EWMA of observed service time
	waitNS   atomic.Int64
	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
}

// New creates a limiter from cfg (zero-value fields take defaults).
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	da := int64(cfg.DegradeAt * float64(cfg.MaxQueue))
	if da < 1 {
		da = 1
	}
	return &Limiter{
		cfg:       cfg,
		slots:     make(chan struct{}, cfg.MaxConcurrent),
		degradeAt: da,
	}
}

// Config returns the limiter's effective (defaulted) configuration.
func (l *Limiter) Config() Config { return l.cfg }

// Ticket is one admitted request's lease on a slot. Release must be
// called exactly once when the request finishes (it is idempotent —
// extra calls are no-ops).
type Ticket struct {
	l        *Limiter
	level    Level
	start    time.Time
	waited   time.Duration
	released atomic.Bool
}

// Level reports how the request was admitted: LevelAdmit (no wait),
// LevelQueue, or LevelDegrade (waited under high pressure; serve
// degraded).
func (t *Ticket) Level() Level { return t.level }

// Waited is the time the request spent in the queue (0 for
// LevelAdmit).
func (t *Ticket) Waited() time.Duration { return t.waited }

// Release returns the slot and feeds the observed service time into
// the limiter's estimate.
func (t *Ticket) Release() {
	if !t.released.CompareAndSwap(false, true) {
		return
	}
	svc := time.Since(t.start)
	// EWMA with alpha = 1/8: old + (new-old)/8, updated race-tolerantly
	// (a lost update skews the estimate by one sample at most).
	old := t.l.svcNS.Load()
	t.l.svcNS.Store(old + (int64(svc)-old)/8)
	t.l.inflight.Add(-1)
	<-t.l.slots
}

// estWaitFor estimates how long a request entering the queue behind
// `depth` waiters will wait for a slot: every MaxConcurrent drains take
// about one service time. With no service history yet the estimate is
// zero — a cold limiter never rejects on plausibility grounds.
func (l *Limiter) estWaitFor(depth int64) time.Duration {
	svc := l.svcNS.Load()
	rounds := (depth + int64(l.cfg.MaxConcurrent)) / int64(l.cfg.MaxConcurrent)
	return time.Duration(rounds * svc)
}

// overload builds the typed rejection for the current state.
func (l *Limiter) overload(reason string) *Overload {
	depth := int(l.waiting.Load())
	return &Overload{
		QueueDepth: depth,
		InFlight:   int(l.inflight.Load()),
		RetryAfter: l.estWaitFor(int64(depth)),
		Reason:     reason,
	}
}

// TryAcquire is the non-blocking fast path: a Ticket at LevelAdmit if
// a slot is free, nil otherwise. It never queues and never sheds.
func (l *Limiter) TryAcquire() *Ticket {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		l.inflight.Add(1)
		return &Ticket{l: l, level: LevelAdmit, start: time.Now()}
	default:
		return nil
	}
}

// Acquire admits the request, queues it within bounds, or sheds it.
// The returned error, when non-nil, is always a *Overload; a request
// is never queued past its own deadline — if ctx's deadline would
// provably expire before a slot could plausibly free up, Acquire
// rejects immediately (in microseconds, not after the deadline), and
// a request whose context is cancelled while it waits is unqueued and
// shed at that moment.
func (l *Limiter) Acquire(ctx context.Context) (*Ticket, error) {
	if t := l.TryAcquire(); t != nil {
		return t, nil
	}

	// Claim a queue position atomically; over MaxQueue means shed.
	depth := l.waiting.Add(1)
	if depth > int64(l.cfg.MaxQueue) {
		l.waiting.Add(-1)
		l.shed.Add(1)
		return nil, l.overload("queue full")
	}
	// Deadline plausibility: reject now rather than letting the
	// request die in the queue and waste its slot on arrival.
	if dl, ok := ctx.Deadline(); ok {
		if est := l.estWaitFor(depth - 1); est > 0 && time.Until(dl) < est {
			l.waiting.Add(-1)
			l.shed.Add(1)
			return nil, l.overload("deadline would expire before start")
		}
	}
	level := LevelQueue
	if depth >= l.degradeAt && l.cfg.DegradeAt < 1 {
		level = LevelDegrade
	}

	t0 := time.Now()
	select {
	case l.slots <- struct{}{}:
		l.waiting.Add(-1)
		waited := time.Since(t0)
		l.waitNS.Add(int64(waited))
		l.queued.Add(1)
		l.inflight.Add(1)
		return &Ticket{l: l, level: level, start: time.Now(), waited: waited}, nil
	case <-ctx.Done():
		l.waiting.Add(-1)
		l.shed.Add(1)
		ov := l.overload("cancelled while queued")
		ov.Reason = fmt.Sprintf("cancelled while queued: %v", ctx.Err())
		return nil, ov
	}
}

// Pressure reports the limiter's current pressure level: LevelAdmit
// with a free slot, then LevelQueue / LevelDegrade / LevelShed as the
// wait queue fills.
func (l *Limiter) Pressure() Level {
	if len(l.slots) < cap(l.slots) {
		return LevelAdmit
	}
	depth := l.waiting.Load()
	switch {
	case depth >= int64(l.cfg.MaxQueue):
		return LevelShed
	case depth >= l.degradeAt && l.cfg.DegradeAt < 1:
		return LevelDegrade
	default:
		return LevelQueue
	}
}

// Stats snapshots the limiter's counters and gauges.
func (l *Limiter) Stats() Stats {
	return Stats{
		Admitted:       l.admitted.Load(),
		Queued:         l.queued.Load(),
		Shed:           l.shed.Load(),
		QueueDepth:     int(l.waiting.Load()),
		InFlight:       int(l.inflight.Load()),
		WaitTime:       time.Duration(l.waitNS.Load()),
		EstServiceTime: time.Duration(l.svcNS.Load()),
	}
}
