package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitFastPath(t *testing.T) {
	l := New(Config{MaxConcurrent: 2, MaxQueue: 2})
	t1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if t1.Level() != LevelAdmit {
		t.Fatalf("level = %v, want admit", t1.Level())
	}
	if t1.Waited() != 0 {
		t.Fatalf("waited = %v, want 0", t1.Waited())
	}
	t1.Release()
	st := l.Stats()
	if st.Admitted != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want Admitted=1 InFlight=0", st)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	t1 := l.TryAcquire()
	if t1 == nil {
		t.Fatal("TryAcquire: no slot on empty limiter")
	}
	// Occupy the single queue position with a blocked waiter.
	waiterIn := make(chan struct{})
	go func() {
		tk, err := l.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
			return
		}
		close(waiterIn)
		tk.Release()
	}()
	// Wait until the waiter is registered.
	for i := 0; l.Stats().QueueDepth == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", l.Stats().QueueDepth)
	}
	if got := l.Pressure(); got != LevelShed {
		t.Fatalf("pressure = %v, want shed at full queue", got)
	}

	start := time.Now()
	_, err := l.Acquire(context.Background())
	elapsed := time.Since(start)
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("Acquire over queue = %v, want *Overload", err)
	}
	if ov.Reason != "queue full" {
		t.Fatalf("reason = %q, want queue full", ov.Reason)
	}
	if ov.QueueDepth != 1 {
		t.Fatalf("QueueDepth = %d, want 1", ov.QueueDepth)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("shed took %v, want sub-millisecond-scale rejection", elapsed)
	}

	t1.Release()
	<-waiterIn
	st := l.Stats()
	if st.Shed != 1 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want Shed=1 Queued=1", st)
	}
}

func TestLimiterDeadlinePlausibility(t *testing.T) {
	l := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	// Seed the service-time estimate: 100ms per query.
	l.svcNS.Store(int64(100 * time.Millisecond))

	t1 := l.TryAcquire()
	if t1 == nil {
		t.Fatal("no initial slot")
	}
	defer t1.Release()

	// 1ms of patience against a ~100ms estimated wait: reject now.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.Acquire(ctx)
	elapsed := time.Since(start)
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *Overload", err)
	}
	if ov.Reason != "deadline would expire before start" {
		t.Fatalf("reason = %q", ov.Reason)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("plausibility shed took %v, want immediate", elapsed)
	}
	// A deadline-free request still queues.
	done := make(chan struct{})
	go func() {
		tk, err := l.Acquire(context.Background())
		if err != nil {
			t.Errorf("deadline-free Acquire: %v", err)
		} else {
			tk.Release()
		}
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	t1.Release()
	<-done
}

func TestLimiterCancelWhileQueued(t *testing.T) {
	l := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	t1 := l.TryAcquire()
	if t1 == nil {
		t.Fatal("no initial slot")
	}
	defer t1.Release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	for i := 0; l.Stats().QueueDepth == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *Overload", err)
	}
	if l.Stats().QueueDepth != 0 {
		t.Fatalf("queue depth = %d after cancel, want 0", l.Stats().QueueDepth)
	}
}

func TestLimiterDegradeLevel(t *testing.T) {
	// MaxQueue 4, DegradeAt 0.5 → degrade from queue depth 2.
	l := New(Config{MaxConcurrent: 1, MaxQueue: 4, DegradeAt: 0.5})
	t1 := l.TryAcquire()
	if t1 == nil {
		t.Fatal("no initial slot")
	}

	levels := make(chan Level, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			levels <- tk.Level()
			tk.Release()
		}()
		// Stagger so queue positions are deterministic.
		for l.Stats().QueueDepth <= i {
			time.Sleep(time.Millisecond)
		}
	}
	t1.Release()
	wg.Wait()
	close(levels)
	var queue, degrade int
	for lv := range levels {
		switch lv {
		case LevelQueue:
			queue++
		case LevelDegrade:
			degrade++
		default:
			t.Fatalf("unexpected level %v", lv)
		}
	}
	// Position 1 queued; positions 2 and 3 (>= degradeAt=2) degraded.
	if queue != 1 || degrade != 2 {
		t.Fatalf("queue=%d degrade=%d, want 1 and 2", queue, degrade)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	tk := l.TryAcquire()
	if tk == nil {
		t.Fatal("no slot")
	}
	tk.Release()
	tk.Release() // must not double-free the slot
	if got := l.TryAcquire(); got == nil {
		t.Fatal("slot not returned after release")
	} else if l.TryAcquire() != nil {
		t.Fatal("double release freed two slots")
	}
}

func TestLimiterConcurrentAccounting(t *testing.T) {
	l := New(Config{MaxConcurrent: 4, MaxQueue: 8})
	const n = 200
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := l.Acquire(context.Background())
			if err != nil {
				var ov *Overload
				if !errors.As(err, &ov) {
					t.Errorf("non-overload error: %v", err)
				}
				shed.Add(1)
				return
			}
			time.Sleep(100 * time.Microsecond)
			tk.Release()
			ok.Add(1)
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("leaked accounting: %+v", st)
	}
	if st.Admitted+st.Queued != ok.Load() {
		t.Fatalf("admitted+queued = %d, want %d", st.Admitted+st.Queued, ok.Load())
	}
	if st.Shed != shed.Load() {
		t.Fatalf("shed = %d, want %d", st.Shed, shed.Load())
	}
	if ok.Load()+shed.Load() != n {
		t.Fatalf("resolved = %d, want every request accounted for (%d)", ok.Load()+shed.Load(), n)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	b := NewBreaker(3, 10*time.Millisecond)
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Fault()
	b.Fault()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2/3 faults, want closed", b.State())
	}
	b.Fault()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 faults, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must deny before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled breaker must admit one probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request during probe must degrade")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerProbeFaultReopens(t *testing.T) {
	b := NewBreaker(1, 5*time.Millisecond)
	b.Fault()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	time.Sleep(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Fault()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after probe fault, want open again", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	b.Fault()
	b.Success()
	b.Fault()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak reset by success)", b.State())
	}
	b.Fault()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after 2 consecutive", b.State())
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelAdmit: "admit", LevelQueue: "queue",
		LevelDegrade: "degrade", LevelShed: "shed",
	} {
		if lv.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(lv), lv.String(), want)
		}
	}
}
