package admission

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: normal serving; faults are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive faults; callers should serve
	// the degraded path until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe request is
	// allowed through the full path to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-fault circuit breaker guarding the exact
// refinement path. Contained solver panics feed Fault; after
// `threshold` consecutive faults the breaker opens and Allow reports
// false (serve lower-bound-only degraded answers) until `cooldown` has
// passed, after which a single probe is let through: its Success
// closes the breaker, its Fault re-opens it for another cooldown.
// Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	faults    int       // consecutive faults while closed
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
	trips     int64
}

// NewBreaker builds a breaker that opens after `threshold` consecutive
// faults (min 1) and retries after `cooldown` (min 1ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < time.Millisecond {
		cooldown = time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the full (exact) path may serve this request.
// While open, it flips to half-open once the cooldown has elapsed and
// admits exactly one probe; concurrent requests during the probe are
// told to degrade.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Fault records a contained invariant failure on the full path. In the
// closed state it counts toward the trip threshold; in half-open it
// re-opens immediately.
func (b *Breaker) Fault() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.faults++
		if b.faults >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Late fault from a request admitted before the trip; already
		// open, nothing to do.
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.faults = 0
	b.probing = false
	b.trips++
}

// Success records a clean full-path completion: it resets the fault
// streak and, after a successful half-open probe, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.faults = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.faults = 0
		b.probing = false
	case BreakerOpen:
		// Straggler from before the trip; the cooldown stands.
	}
}

// State reports the current position (open flips to half-open only on
// the next Allow, so a just-cooled breaker still reads open here).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
