// Package kdtree implements a k-d tree over low-dimensional points
// with *incremental* nearest-neighbor iteration: Query returns a
// stream that yields points in ascending Lp distance from the query,
// lazily, using the classic best-first traversal over a priority queue
// of tree nodes and points.
//
// In this repository the tree indexes the mass centroids of database
// histograms (2–3 dimensions for image tilings and color spaces).
// Because the centroid distance lower-bounds the EMD (Rubner), the
// stream is exactly the getNext interface of the paper's multistep
// architecture — but obtained in O(log n) per candidate instead of the
// O(n) filter scan, realizing the paper's remark that the reduced
// representation can be indexed in a multidimensional structure.
package kdtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"emdsearch/internal/vecmath"
)

// Tree is an immutable k-d tree over a fixed point set.
type Tree struct {
	points [][]float64
	ids    []int32
	// nodes in implicit layout: node i splits on axis[i] at split[i];
	// leaves hold point ranges.
	root *node
	dim  int
	p    float64
}

type node struct {
	axis   int
	split  float64
	lo, hi *node
	// leaf data: indices into points/ids
	start, end int32
	leaf       bool
	// bounding box of the subtree
	min, max []float64
}

const leafSize = 16

// Build constructs a tree over the given points (ids 0..n-1) for Lp
// queries (p >= 1). Points are not copied; the caller must not mutate
// them afterwards.
func Build(points [][]float64, p float64) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, pt := range points {
		if len(pt) != dim {
			return nil, fmt.Errorf("kdtree: point %d has %d coordinates, want %d", i, len(pt), dim)
		}
	}
	if p < 1 {
		return nil, fmt.Errorf("kdtree: p = %g, want >= 1", p)
	}
	t := &Tree{
		points: points,
		ids:    make([]int32, len(points)),
		dim:    dim,
		p:      p,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	t.root = t.build(0, int32(len(points)), 0)
	return t, nil
}

// build recursively splits ids[start:end].
func (t *Tree) build(start, end int32, depth int) *node {
	nd := &node{start: start, end: end}
	nd.min = make([]float64, t.dim)
	nd.max = make([]float64, t.dim)
	for k := 0; k < t.dim; k++ {
		nd.min[k] = math.Inf(1)
		nd.max[k] = math.Inf(-1)
	}
	for _, id := range t.ids[start:end] {
		pt := t.points[id]
		for k, v := range pt {
			if v < nd.min[k] {
				nd.min[k] = v
			}
			if v > nd.max[k] {
				nd.max[k] = v
			}
		}
	}
	if end-start <= leafSize {
		nd.leaf = true
		return nd
	}
	// Split on the axis with the largest extent at the median.
	axis := 0
	best := -1.0
	for k := 0; k < t.dim; k++ {
		if ext := nd.max[k] - nd.min[k]; ext > best {
			best = ext
			axis = k
		}
	}
	ids := t.ids[start:end]
	sort.Slice(ids, func(a, b int) bool {
		return t.points[ids[a]][axis] < t.points[ids[b]][axis]
	})
	mid := (end - start) / 2
	nd.axis = axis
	nd.split = t.points[ids[mid]][axis]
	nd.leaf = false
	nd.lo = t.build(start, start+mid, depth+1)
	nd.hi = t.build(start+mid, end, depth+1)
	return nd
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// minDist returns the minimal Lp distance from q to nd's bounding box.
func (t *Tree) minDist(q []float64, nd *node) float64 {
	var acc float64
	for k, v := range q {
		var d float64
		if v < nd.min[k] {
			d = nd.min[k] - v
		} else if v > nd.max[k] {
			d = v - nd.max[k]
		}
		if d == 0 {
			continue
		}
		switch t.p {
		case 1:
			acc += d
		case 2:
			acc += d * d
		default:
			acc += math.Pow(d, t.p)
		}
	}
	switch t.p {
	case 1:
		return acc
	case 2:
		return math.Sqrt(acc)
	default:
		return math.Pow(acc, 1/t.p)
	}
}

// Stream yields points in ascending distance from a query.
type Stream struct {
	tree *Tree
	q    []float64
	pq   itemHeap
}

type item struct {
	dist  float64
	point int32 // -1 for nodes
	node  *node
}

type itemHeap []item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Query starts an incremental nearest-neighbor stream from q.
func (t *Tree) Query(q []float64) (*Stream, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("kdtree: query has %d coordinates, tree stores %d", len(q), t.dim)
	}
	s := &Stream{tree: t, q: q}
	heap.Push(&s.pq, item{dist: t.minDist(q, t.root), point: -1, node: t.root})
	return s, nil
}

// Next returns the next closest point id and its distance, or
// ok = false when the stream is exhausted. Amortized cost is
// logarithmic per call for well-distributed data.
func (s *Stream) Next() (id int, dist float64, ok bool) {
	t := s.tree
	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(item)
		if it.point >= 0 {
			return int(it.point), it.dist, true
		}
		nd := it.node
		if nd.leaf {
			for _, pid := range t.ids[nd.start:nd.end] {
				heap.Push(&s.pq, item{
					dist:  vecmath.Lp(s.q, t.points[pid], t.p),
					point: pid,
				})
			}
			continue
		}
		heap.Push(&s.pq, item{dist: t.minDist(s.q, nd.lo), point: -1, node: nd.lo})
		heap.Push(&s.pq, item{dist: t.minDist(s.q, nd.hi), point: -1, node: nd.hi})
	}
	return 0, 0, false
}
