package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"emdsearch/internal/vecmath"
)

func randomPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for k := range pts[i] {
			pts[i][k] = rng.Float64() * 10
		}
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 2); err == nil {
		t.Error("accepted empty point set")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, 2); err == nil {
		t.Error("accepted ragged points")
	}
	if _, err := Build([][]float64{{1}}, 0.5); err == nil {
		t.Error("accepted p < 1")
	}
	if _, err := Build([][]float64{{}}, 2); err == nil {
		t.Error("accepted zero-dimensional points")
	}
}

// TestStreamYieldsAllInOrder: the incremental stream must enumerate
// every point exactly once, in ascending distance, matching a sort.
func TestStreamYieldsAllInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []float64{1, 2, 3} {
		for _, dim := range []int{1, 2, 3} {
			pts := randomPoints(rng, 500, dim)
			tree, err := Build(pts, p)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Len() != 500 {
				t.Fatalf("Len = %d", tree.Len())
			}
			q := make([]float64, dim)
			for k := range q {
				q[k] = rng.Float64() * 10
			}
			stream, err := tree.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			type res struct {
				id   int
				dist float64
			}
			var got []res
			for {
				id, d, ok := stream.Next()
				if !ok {
					break
				}
				got = append(got, res{id, d})
			}
			if len(got) != 500 {
				t.Fatalf("p=%g dim=%d: stream yielded %d of 500", p, dim, len(got))
			}
			seen := make([]bool, 500)
			prev := -1.0
			for i, r := range got {
				if seen[r.id] {
					t.Fatalf("point %d yielded twice", r.id)
				}
				seen[r.id] = true
				if r.dist < prev-1e-12 {
					t.Fatalf("out of order at %d: %g after %g", i, r.dist, prev)
				}
				prev = r.dist
				if want := vecmath.Lp(q, pts[r.id], p); math.Abs(want-r.dist) > 1e-9 {
					t.Fatalf("distance of %d: %g, want %g", r.id, r.dist, want)
				}
			}
		}
	}
}

func TestStreamPrefixMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 800, 2)
	tree, err := Build(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{5, 5}
	dists := make([]float64, len(pts))
	for i := range pts {
		dists[i] = vecmath.L2(q, pts[i])
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	stream, err := tree.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		_, d, ok := stream.Next()
		if !ok {
			t.Fatal("stream exhausted early")
		}
		if math.Abs(d-sorted[i]) > 1e-9 {
			t.Fatalf("prefix %d: %g, want %g", i, d, sorted[i])
		}
	}
}

func TestQueryValidation(t *testing.T) {
	tree, err := Build([][]float64{{1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Query([]float64{1}); err == nil {
		t.Error("accepted mismatched query dimensionality")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree, err := Build(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := tree.Query([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, _, ok := stream.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Errorf("yielded %d of 4 points with duplicates", count)
	}
}
