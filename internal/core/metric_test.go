package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/emd"
)

// minLinkageCounterexample builds the canonical triangle-inequality
// violation of the Definition 5 reduced cost: four 1-D bins at
// positions 0, 1, 10, 11 grouped as A = {0}, B = {10}, C = {1, 11}.
// Min-linkage gives c'(A,C) = 1, c'(C,B) = 1 but c'(A,B) = 10.
func minLinkageCounterexample(t *testing.T) emd.CostMatrix {
	t.Helper()
	pos := [][]float64{{0}, {1}, {10}, {11}}
	c, err := emd.PositionCost(pos, pos, 1)
	if err != nil {
		t.Fatalf("PositionCost: %v", err)
	}
	// bins 0,1,10,11 -> groups A=0, C=2, B=1, C=2
	r, err := NewReduction([]int{0, 2, 1, 2}, 3)
	if err != nil {
		t.Fatalf("NewReduction: %v", err)
	}
	reduced, err := ReduceCost(c, r, r)
	if err != nil {
		t.Fatalf("ReduceCost: %v", err)
	}
	return reduced
}

func TestMinLinkageViolatesTriangle(t *testing.T) {
	reduced := minLinkageCounterexample(t)
	if got := reduced[0][2]; got != 1 {
		t.Fatalf("c'(A,C) = %g, want 1", got)
	}
	if got := reduced[2][1]; got != 1 {
		t.Fatalf("c'(C,B) = %g, want 1", got)
	}
	if got := reduced[0][1]; got != 10 {
		t.Fatalf("c'(A,B) = %g, want 10", got)
	}
	if VerifyMetric(reduced) {
		t.Fatal("VerifyMetric accepted a matrix violating the triangle inequality")
	}
}

func TestMetricClosureRepairsCounterexample(t *testing.T) {
	reduced := minLinkageCounterexample(t)
	closed, changed := MetricClosure(reduced)
	if !changed {
		t.Fatal("MetricClosure reported no change on a non-metric input")
	}
	if !VerifyMetric(closed) {
		t.Fatal("closure is not a pseudometric")
	}
	for i := range closed {
		for j := range closed[i] {
			if closed[i][j] > reduced[i][j] {
				t.Fatalf("closure[%d][%d] = %g exceeds input %g", i, j, closed[i][j], reduced[i][j])
			}
		}
	}
	// The A-B shortcut goes through C: 1 + 1 = 2.
	if got := closed[0][1]; got != 2 {
		t.Fatalf("closure(A,B) = %g, want 2", got)
	}
}

func TestMetricClosureFixpointOnMetricInput(t *testing.T) {
	c := emd.LinearCost(6)
	closed, changed := MetricClosure(c)
	if changed {
		t.Fatal("MetricClosure changed an already-metric matrix")
	}
	for i := range closed {
		for j := range closed[i] {
			if closed[i][j] != c[i][j] {
				t.Fatalf("closure[%d][%d] = %g, want %g (bit-identical fixpoint)", i, j, closed[i][j], c[i][j])
			}
		}
	}
	if !VerifyMetric(closed) {
		t.Fatal("fixpoint closure fails VerifyMetric")
	}
}

// TestMetricClosureLowerBoundsReducedEMD checks the monotonicity
// argument the index relies on: EMD under the closure never exceeds
// EMD under the original reduced cost, so the index metric remains a
// valid lower bound of the exact EMD.
func TestMetricClosureLowerBoundsReducedEMD(t *testing.T) {
	reduced := minLinkageCounterexample(t)
	closed, _ := MetricClosure(reduced)
	origDist, err := emd.NewDist(reduced)
	if err != nil {
		t.Fatalf("NewDist(reduced): %v", err)
	}
	closedDist, err := emd.NewDist(closed)
	if err != nil {
		t.Fatalf("NewDist(closed): %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		x := randomHistogram(rng, 3)
		y := randomHistogram(rng, 3)
		lo := closedDist.Distance(x, y)
		hi := origDist.Distance(x, y)
		if lo > hi+1e-9 {
			t.Fatalf("trial %d: EMD_closure = %g > EMD_reduced = %g", trial, lo, hi)
		}
	}
}

// TestMetricClosureTriangleQuick property-tests the pseudometric
// axioms of EMD under the closed ground distance on random histogram
// triples — exactly what the metric index's pruning depends on.
func TestMetricClosureTriangleQuick(t *testing.T) {
	reduced := minLinkageCounterexample(t)
	closed, _ := MetricClosure(reduced)
	dist, err := emd.NewDist(closed)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	hist := func(raw [3]float64) emd.Histogram {
		h := make(emd.Histogram, 3)
		total := 0.0
		for i, v := range raw {
			h[i] = math.Abs(v-math.Trunc(v)) + 0.01 // bounded, positive
			total += h[i]
		}
		for i := range h {
			h[i] /= total
		}
		return h
	}
	axioms := func(rx, ry, rz [3]float64) bool {
		x, y, z := hist(rx), hist(ry), hist(rz)
		dxy := dist.Distance(x, y)
		dxz := dist.Distance(x, z)
		dzy := dist.Distance(z, y)
		if dxy < 0 || dxy > dxz+dzy+1e-9 {
			return false
		}
		if dist.Distance(y, x) != dxy { // symmetry, bit-exact
			return false
		}
		return dist.Distance(x, x) <= 1e-12 // identity
	}
	if err := quick.Check(axioms, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatalf("metric axiom violated under closed ground distance: %v", err)
	}
}
