package core

import (
	"math/rand"
	"testing"

	"emdsearch/internal/emd"
)

func TestCountPartitions(t *testing.T) {
	cases := []struct {
		d, k int
		want uint64
	}{
		{1, 1, 1},
		{4, 2, 7},
		{5, 3, 25},
		{8, 4, 1701},
		{10, 5, 42525},
		{6, 6, 1},
		{6, 1, 1},
	}
	for _, tc := range cases {
		got, err := CountPartitions(tc.d, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("S(%d, %d) = %d, want %d", tc.d, tc.k, got, tc.want)
		}
	}
	if _, err := CountPartitions(3, 4); err == nil {
		t.Error("accepted blocks > d")
	}
	if _, err := CountPartitions(0, 1); err == nil {
		t.Error("accepted d = 0")
	}
}

func TestEnumeratePartitionsMatchesCount(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{4, 2}, {5, 3}, {6, 4}, {7, 2}} {
		count := 0
		seen := map[string]bool{}
		err := EnumeratePartitions(tc.d, tc.k, func(assign []int) bool {
			count++
			// Validity: restricted growth, exactly k groups.
			maxG := -1
			for _, g := range assign {
				if g > maxG+1 {
					t.Fatalf("not restricted growth: %v", assign)
				}
				if g > maxG {
					maxG = g
				}
			}
			if maxG+1 != tc.k {
				t.Fatalf("partition %v has %d groups, want %d", assign, maxG+1, tc.k)
			}
			key := ""
			for _, g := range assign {
				key += string(rune('a' + g))
			}
			if seen[key] {
				t.Fatalf("duplicate partition %v", assign)
			}
			seen[key] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := CountPartitions(tc.d, tc.k)
		if uint64(count) != want {
			t.Errorf("enumerated %d partitions of (%d, %d), want %d", count, tc.d, tc.k, want)
		}
	}
}

func TestEnumeratePartitionsEarlyStop(t *testing.T) {
	count := 0
	err := EnumeratePartitions(6, 3, func([]int) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop after %d calls, want 5", count)
	}
}

// workload fixture for the Definition 6 tests.
func optFixture(t *testing.T, d, nDB, nQ int) ([]emd.Histogram, []WorkloadQuery, emd.CostMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	cost := emd.CostMatrix(emdLinear(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	db := make([]emd.Histogram, nDB)
	for i := range db {
		db[i] = randomHistogram(rng, d)
	}
	workload := make([]WorkloadQuery, nQ)
	for i := range workload {
		q := randomHistogram(rng, d)
		// Epsilon: the exact 3-NN distance, a realistic range radius.
		best := []float64{1e18, 1e18, 1e18}
		for _, y := range db {
			dd := dist.Distance(q, y)
			for b := 0; b < 3; b++ {
				if dd < best[b] {
					copy(best[b+1:], best[b:2])
					best[b] = dd
					break
				}
			}
		}
		workload[i] = WorkloadQuery{Query: q, Epsilon: best[2]}
	}
	return db, workload, cost
}

// TestOptimalReductionBeatsHeuristics: Definition 6's exhaustive
// optimum must produce at most as many candidates as any heuristic
// reduction — k-medoids, adjacent, random — on the same workload.
func TestOptimalReductionBeatsHeuristics(t *testing.T) {
	const d, dr = 7, 3
	db, workload, cost := optFixture(t, d, 25, 3)
	opt, optCount, err := OptimalReduction(db, workload, cost, dr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ReducedDims() != dr {
		t.Fatalf("optimal reduction has d'=%d", opt.ReducedDims())
	}
	rng := rand.New(rand.NewSource(8))
	heuristics := map[string]*Reduction{}
	if r, err := Adjacent(d, dr); err == nil {
		heuristics["adjacent"] = r
	}
	if r, err := Random(d, dr, rng); err == nil {
		heuristics["random"] = r
	}
	for name, r := range heuristics {
		count, err := CandidateCount(db, workload, cost, r)
		if err != nil {
			t.Fatal(err)
		}
		if count < optCount {
			t.Errorf("%s reduction yields %d candidates, below 'optimal' %d", name, count, optCount)
		}
	}
	// The optimum's own CandidateCount must agree with the search.
	recount, err := CandidateCount(db, workload, cost, opt)
	if err != nil {
		t.Fatal(err)
	}
	if recount != optCount {
		t.Errorf("recount %d != reported optimum %d", recount, optCount)
	}
	// Every workload query matches at least its 3 true neighbors
	// (lower bound property: true range results always pass).
	if optCount < 3*len(workload) {
		t.Errorf("optimum %d below the guaranteed minimum %d", optCount, 3*len(workload))
	}
}

func TestOptimalReductionValidation(t *testing.T) {
	db, workload, cost := optFixture(t, 6, 10, 1)
	if _, _, err := OptimalReduction(nil, workload, cost, 2, 0); err == nil {
		t.Error("accepted empty database")
	}
	if _, _, err := OptimalReduction(db, nil, cost, 2, 0); err == nil {
		t.Error("accepted empty workload")
	}
	// Cap: S(6,3) = 90 > 10.
	if _, _, err := OptimalReduction(db, workload, cost, 3, 10); err == nil {
		t.Error("accepted enumeration beyond the cap")
	}
}
