package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/emd"
)

// TestQuickUpperBound: the max-cost reduced EMD never underestimates
// the original EMD, for random histograms, costs and reductions.
func TestQuickUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(8)
		d1 := 1 + rng.Intn(d)
		d2 := 1 + rng.Intn(d)
		c := randomCost(rng, d)
		r1, err := Random(d, d1, rng)
		if err != nil {
			return false
		}
		r2, err := Random(d, d2, rng)
		if err != nil {
			return false
		}
		upper, err := NewReducedEMDUpper(emd.CostMatrix(c), r1, r2)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		orig, err := emd.Distance(x, y, emd.CostMatrix(c))
		if err != nil {
			return false
		}
		return upper.Distance(x, y) >= orig-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnvelopeOrdering: lower <= exact <= upper for the coupled
// bounds.
func TestQuickEnvelopeOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 4 + rng.Intn(6)
		dr := 1 + rng.Intn(d)
		c := randomCost(rng, d)
		r, err := Random(d, dr, rng)
		if err != nil {
			return false
		}
		env, err := NewEnvelope(emd.CostMatrix(c), r, r)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, emd.CostMatrix(c))
		if err != nil {
			return false
		}
		lo, hi := env.Bounds(x, y)
		return lo <= exact+1e-9 && exact <= hi+1e-9 && lo <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperCostEntries(t *testing.T) {
	c := emd.CostMatrix{
		{0, 1, 3, 4},
		{1, 0, 2, 3},
		{3, 2, 0, 1},
		{4, 3, 1, 0},
	}
	r, _ := NewReduction([]int{0, 0, 1, 1}, 2)
	got, err := UpperCost(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	// Max within {0,1}x{0,1} is 1; across {0,1}x{2,3} is 4.
	want := emd.CostMatrix{{1, 4}, {4, 1}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("UpperCost = %v, want %v", got, want)
			}
		}
	}
}

func TestUpperIdentityIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d = 8
	c := emd.CostMatrix(emdLinear(d))
	r := Identity(d)
	upper, err := NewReducedEMDUpper(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		if got := upper.Distance(x, y); math.Abs(got-exact) > 1e-9 {
			t.Fatalf("identity upper bound %g != exact %g", got, exact)
		}
	}
}

func TestUpperCostValidation(t *testing.T) {
	c := emd.CostMatrix(emdLinear(4))
	r3 := Identity(3)
	r4 := Identity(4)
	if _, err := UpperCost(c, r3, r4); err == nil {
		t.Error("accepted mismatched source reduction")
	}
	if _, err := UpperCost(c, r4, r3); err == nil {
		t.Error("accepted mismatched target reduction")
	}
}

// TestEnvelopeTightensWithDims: both ends of the interval approach the
// exact EMD as d' grows on an Adjacent reduction.
func TestEnvelopeTightensWithDims(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const d = 16
	c := emd.CostMatrix(emdLinear(d))
	x := randomHistogram(rng, d)
	y := randomHistogram(rng, d)
	exact, err := emd.Distance(x, y, c)
	if err != nil {
		t.Fatal(err)
	}
	prevWidth := math.Inf(1)
	for _, dr := range []int{2, 4, 8, 16} {
		r, err := Adjacent(d, dr)
		if err != nil {
			t.Fatal(err)
		}
		env, err := NewEnvelope(c, r, r)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := env.Bounds(x, y)
		if lo > exact+1e-9 || hi < exact-1e-9 {
			t.Fatalf("d'=%d: interval [%g, %g] misses exact %g", dr, lo, hi, exact)
		}
		width := hi - lo
		if width > prevWidth+1e-9 {
			t.Fatalf("d'=%d: interval widened from %g to %g", dr, prevWidth, width)
		}
		prevWidth = width
	}
	if prevWidth > 1e-9 {
		t.Errorf("identity envelope width %g, want 0", prevWidth)
	}
}
