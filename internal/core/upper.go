package core

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// UpperCost computes the max-based counterpart of Definition 5:
//
//	c″_{i'j'} = max{ c_ij | r1 assigns i to i', r2 assigns j to j' }
//
// The reduced EMD under c″ *upper*-bounds the original EMD: any
// feasible reduced flow F' expands — by splitting each F'_{i'j'}
// proportionally to the source masses within group i' and the target
// masses within group j' — into a feasible original flow whose cost is
// at most sum F'_{i'j'}·c″_{i'j'}; minimizing over F' keeps the
// inequality. Upper bounds enable approximate search with guarantees
// and extra pruning in exact search (a candidate whose lower bound
// exceeds the current k-th upper bound can be discarded unrefined).
func UpperCost(c emd.CostMatrix, r1, r2 *Reduction) (emd.CostMatrix, error) {
	if c.Rows() != r1.OriginalDims() {
		return nil, fmt.Errorf("core: cost matrix has %d rows, source reduction expects %d", c.Rows(), r1.OriginalDims())
	}
	if c.Cols() != r2.OriginalDims() {
		return nil, fmt.Errorf("core: cost matrix has %d columns, target reduction expects %d", c.Cols(), r2.OriginalDims())
	}
	out := vecmath.NewMatrix(r1.ReducedDims(), r2.ReducedDims())
	for i := range out {
		for j := range out[i] {
			out[i][j] = math.Inf(-1)
		}
	}
	for i, gi := range r1.assign {
		row := c[i]
		orow := out[gi]
		for j, cij := range row {
			gj := r2.assign[j]
			if cij > orow[gj] {
				orow[gj] = cij
			}
		}
	}
	return out, nil
}

// ReducedEMDUpper bundles a pair of reductions with the max-based
// reduced cost matrix; its Distance upper-bounds the original EMD.
type ReducedEMDUpper struct {
	r1, r2 *Reduction
	dist   *emd.Dist
}

// NewReducedEMDUpper precomputes the upper-bounding reduced EMD.
func NewReducedEMDUpper(c emd.CostMatrix, r1, r2 *Reduction) (*ReducedEMDUpper, error) {
	upper, err := UpperCost(c, r1, r2)
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(upper)
	if err != nil {
		return nil, fmt.Errorf("core: upper reduced cost matrix invalid: %w", err)
	}
	return &ReducedEMDUpper{r1: r1, r2: r2, dist: dist}, nil
}

// Cost returns the max-based reduced cost matrix C″.
func (ru *ReducedEMDUpper) Cost() emd.CostMatrix { return ru.dist.Cost() }

// Distance computes the upper bound EMD_{C″}(x·R1, y·R2) from
// original-dimensional histograms.
func (ru *ReducedEMDUpper) Distance(x, y emd.Histogram) float64 {
	return ru.dist.Distance(ru.r1.Apply(x), ru.r2.Apply(y))
}

// DistanceReduced computes the upper bound from already-reduced
// histograms.
func (ru *ReducedEMDUpper) DistanceReduced(xr, yr emd.Histogram) float64 {
	return ru.dist.Distance(xr, yr)
}

// Envelope couples the optimal lower bound and the max-based upper
// bound for one reduction pair, giving per-pair interval estimates
// [Lower, Upper] of the exact EMD from reduced data alone.
type Envelope struct {
	Lower *ReducedEMD
	Upper *ReducedEMDUpper
}

// NewEnvelope builds both bounds for the given reductions.
func NewEnvelope(c emd.CostMatrix, r1, r2 *Reduction) (*Envelope, error) {
	lower, err := NewReducedEMD(c, r1, r2)
	if err != nil {
		return nil, err
	}
	upper, err := NewReducedEMDUpper(c, r1, r2)
	if err != nil {
		return nil, err
	}
	return &Envelope{Lower: lower, Upper: upper}, nil
}

// Bounds returns the interval [lo, hi] containing EMD_C(x, y),
// computed from reduced representations only.
func (e *Envelope) Bounds(x, y emd.Histogram) (lo, hi float64) {
	return e.Lower.Distance(x, y), e.Upper.Distance(x, y)
}
