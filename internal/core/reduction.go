// Package core implements the paper's primary contribution: flexible
// dimensionality reduction for the Earth Mover's Distance
// (Wichterich et al., SIGMOD 2008, Section 3).
//
// A combining reduction (Definition 3) assigns each of d original
// dimensions to exactly one of d' reduced dimensions; applying it to a
// histogram sums the mass of each group, preserving total mass. The
// optimal reduced cost matrix (Definition 5) takes the minimum original
// cost between two groups, which Theorems 1-3 of the paper prove to be
// the greatest lower bound achievable for the given reductions. The
// reduced EMD is again an EMD, so it can be chained with further EMD
// lower bounds (Section 4).
package core

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// Reduction is a combining dimensionality reduction R in the set
// \Re_{d,d'} of Definition 3, stored compactly as an assignment from
// original to reduced dimensions rather than as a 0/1 matrix.
type Reduction struct {
	assign  []int // original dimension -> reduced dimension
	reduced int   // d'
}

// NewReduction builds a combining reduction from the given assignment.
// assign[i] is the reduced dimension of original dimension i; values
// must lie in [0, reduced) and every reduced dimension must receive at
// least one original dimension (restriction (8) of Definition 3).
func NewReduction(assign []int, reduced int) (*Reduction, error) {
	if len(assign) == 0 {
		return nil, fmt.Errorf("core: empty assignment")
	}
	if reduced < 1 || reduced > len(assign) {
		return nil, fmt.Errorf("core: reduced dimensionality %d out of range [1, %d]", reduced, len(assign))
	}
	seen := make([]bool, reduced)
	for i, r := range assign {
		if r < 0 || r >= reduced {
			return nil, fmt.Errorf("core: assign[%d] = %d out of range [0, %d)", i, r, reduced)
		}
		seen[r] = true
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("core: reduced dimension %d receives no original dimension", r)
		}
	}
	return &Reduction{assign: append([]int(nil), assign...), reduced: reduced}, nil
}

// OriginalDims returns d, the original dimensionality.
func (r *Reduction) OriginalDims() int { return len(r.assign) }

// ReducedDims returns d', the reduced dimensionality.
func (r *Reduction) ReducedDims() int { return r.reduced }

// Assignment returns a copy of the assignment vector.
func (r *Reduction) Assignment() []int {
	return append([]int(nil), r.assign...)
}

// AssignmentOf returns the reduced dimension of original dimension i.
func (r *Reduction) AssignmentOf(i int) int { return r.assign[i] }

// Groups returns, for each reduced dimension, the original dimensions
// assigned to it (the sets {i | r_{ii'} = 1}).
func (r *Reduction) Groups() [][]int {
	groups := make([][]int, r.reduced)
	for i, g := range r.assign {
		groups[g] = append(groups[g], i)
	}
	return groups
}

// Matrix returns the explicit d x d' 0/1 reduction matrix of
// Definition 3, for interoperability with the general linear form.
func (r *Reduction) Matrix() [][]float64 {
	m := vecmath.NewMatrix(len(r.assign), r.reduced)
	for i, g := range r.assign {
		m[i][g] = 1
	}
	return m
}

// Apply reduces histogram x to d' dimensions: x' = x * R. Mass is
// conserved exactly (each original dimension contributes to exactly one
// reduced dimension).
func (r *Reduction) Apply(x emd.Histogram) emd.Histogram {
	if len(x) != len(r.assign) {
		panic(fmt.Sprintf("core: Apply on %d-dimensional histogram, reduction expects %d", len(x), len(r.assign)))
	}
	out := make(emd.Histogram, r.reduced)
	for i, v := range x {
		out[r.assign[i]] += v
	}
	return out
}

// ApplyInto is Apply writing into a caller-provided buffer of length
// d', avoiding allocation in query loops. It returns the buffer.
func (r *Reduction) ApplyInto(dst, x emd.Histogram) emd.Histogram {
	if len(dst) != r.reduced {
		panic(fmt.Sprintf("core: ApplyInto buffer has length %d, want %d", len(dst), r.reduced))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, v := range x {
		dst[r.assign[i]] += v
	}
	return dst
}

// Equal reports whether r and s describe the same reduction.
func (r *Reduction) Equal(s *Reduction) bool {
	if r.reduced != s.reduced || len(r.assign) != len(s.assign) {
		return false
	}
	for i, g := range r.assign {
		if s.assign[i] != g {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of r.
func (r *Reduction) Clone() *Reduction {
	return &Reduction{assign: append([]int(nil), r.assign...), reduced: r.reduced}
}

// ReduceCost computes the optimal reduced cost matrix of Definition 5
// for source reduction r1 and target reduction r2 applied to the
// original cost matrix c:
//
//	c'_{i'j'} = min{ c_ij | r1 assigns i to i', r2 assigns j to j' }
//
// By Theorem 1 the resulting reduced EMD lower-bounds the original EMD
// and by Theorem 3 no entry can be increased without losing that
// property.
func ReduceCost(c emd.CostMatrix, r1, r2 *Reduction) (emd.CostMatrix, error) {
	if c.Rows() != r1.OriginalDims() {
		return nil, fmt.Errorf("core: cost matrix has %d rows, source reduction expects %d", c.Rows(), r1.OriginalDims())
	}
	if c.Cols() != r2.OriginalDims() {
		return nil, fmt.Errorf("core: cost matrix has %d columns, target reduction expects %d", c.Cols(), r2.OriginalDims())
	}
	out := vecmath.NewMatrix(r1.ReducedDims(), r2.ReducedDims())
	for i := range out {
		for j := range out[i] {
			out[i][j] = math.Inf(1)
		}
	}
	for i, gi := range r1.assign {
		row := c[i]
		orow := out[gi]
		for j, cij := range row {
			gj := r2.assign[j]
			if cij < orow[gj] {
				orow[gj] = cij
			}
		}
	}
	return out, nil
}

// ReducedEMD bundles a pair of reductions with their optimal reduced
// cost matrix (Definition 4). Its Distance lower-bounds the original
// EMD for all valid histogram pairs.
type ReducedEMD struct {
	r1, r2 *Reduction
	dist   *emd.Dist
}

// NewReducedEMD precomputes the reduced EMD for source reduction r1 and
// target reduction r2 under original ground distance c. Pass the same
// reduction twice for the symmetric case the paper focuses on.
func NewReducedEMD(c emd.CostMatrix, r1, r2 *Reduction) (*ReducedEMD, error) {
	reduced, err := ReduceCost(c, r1, r2)
	if err != nil {
		return nil, err
	}
	dist, err := emd.NewDist(reduced)
	if err != nil {
		return nil, fmt.Errorf("core: reduced cost matrix invalid: %w", err)
	}
	return &ReducedEMD{r1: r1, r2: r2, dist: dist}, nil
}

// Source returns the query-side reduction R1.
func (re *ReducedEMD) Source() *Reduction { return re.r1 }

// Target returns the database-side reduction R2.
func (re *ReducedEMD) Target() *Reduction { return re.r2 }

// Cost returns the optimal reduced cost matrix C'.
func (re *ReducedEMD) Cost() emd.CostMatrix { return re.dist.Cost() }

// Distance computes EMD_{C'}(x*R1, y*R2) from original-dimensional
// histograms.
func (re *ReducedEMD) Distance(x, y emd.Histogram) float64 {
	return re.dist.Distance(re.r1.Apply(x), re.r2.Apply(y))
}

// DistanceReduced computes the reduced EMD from already-reduced
// histograms, the fast path when reduced database vectors are
// precomputed.
func (re *ReducedEMD) DistanceReduced(xr, yr emd.Histogram) float64 {
	return re.dist.Distance(xr, yr)
}
