package core

import (
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// MetricClosure returns the largest ground-distance matrix m <= c
// (entrywise) that satisfies the metric axioms: the shortest-path
// closure of min(c_ij, c_ji) with a zeroed diagonal, computed by
// Floyd–Warshall.
//
// The optimal reduced cost matrix of Definition 5 takes group-wise
// *minima* of the original costs, which preserves the lower-bounding
// property but not the triangle inequality: c'(A,B) can exceed
// c'(A,C) + c'(C,B) when the minimizing dimension pairs differ. A
// metric index over EMD_{c'} would then prune unsoundly. EMD is
// monotone in its ground distance, so EMD_{m} <= EMD_{c'} <= EMD for
// the closure m — still a valid lower bound of the exact EMD — and
// EMD_{m} is a true pseudometric, which is exactly what triangle-
// inequality pruning needs. When c' already satisfies the axioms the
// closure is a fixpoint: m == c' entrywise and changed is false, so
// index filter distances match the scan path's Red-EMD bit for bit.
func MetricClosure(c emd.CostMatrix) (emd.CostMatrix, bool) {
	n := c.Rows()
	m := vecmath.NewMatrix(n, n)
	changed := false
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := c[i][j]
			if c[j][i] < v {
				v = c[j][i]
			}
			if i == j {
				v = 0
			}
			m[i][j] = v
			if v != c[i][j] {
				changed = true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			mik := m[i][k]
			if math.IsInf(mik, 1) {
				continue
			}
			row := m[i]
			krow := m[k]
			for j := 0; j < n; j++ {
				if via := mik + krow[j]; via < row[j] {
					row[j] = via
					changed = true
				}
			}
		}
	}
	return emd.CostMatrix(m), changed
}

// VerifyMetric reports whether c satisfies the pseudometric axioms
// exactly: zero diagonal, non-negativity, symmetry, and the triangle
// inequality. It exists for tests and assertions; MetricClosure
// constructs a matrix for which it holds by construction.
func VerifyMetric(c emd.CostMatrix) bool {
	n := c.Rows()
	for i := 0; i < n; i++ {
		if c[i][i] != 0 {
			return false
		}
		for j := 0; j < n; j++ {
			if c[i][j] < 0 || c[i][j] != c[j][i] {
				return false
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c[i][j] > c[i][k]+c[k][j] {
					return false
				}
			}
		}
	}
	return true
}
