package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

func TestNewReductionValidation(t *testing.T) {
	cases := []struct {
		name    string
		assign  []int
		reduced int
	}{
		{"empty", nil, 1},
		{"reduced zero", []int{0, 0}, 0},
		{"reduced too large", []int{0, 0}, 3},
		{"out of range", []int{0, 2}, 2},
		{"negative", []int{0, -1}, 2},
		{"uncovered group", []int{0, 0, 0}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewReduction(tc.assign, tc.reduced); err == nil {
				t.Fatalf("NewReduction(%v, %d) succeeded, want error", tc.assign, tc.reduced)
			}
		})
	}
	r, err := NewReduction([]int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.OriginalDims() != 4 || r.ReducedDims() != 2 {
		t.Errorf("dims = %d->%d, want 4->2", r.OriginalDims(), r.ReducedDims())
	}
}

func TestApplyConservesMass(t *testing.T) {
	r, err := NewReduction([]int{0, 0, 1, 1, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0.1, 0.2, 0.3, 0.1, 0.2, 0.1}
	got := r.Apply(x)
	want := emd.Histogram{0.3, 0.4, 0.3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Apply = %v, want %v", got, want)
		}
	}
	if math.Abs(vecmath.Sum(got)-1) > 1e-12 {
		t.Errorf("mass not conserved: %g", vecmath.Sum(got))
	}
}

func TestApplyInto(t *testing.T) {
	r, _ := NewReduction([]int{0, 1, 0}, 2)
	buf := make(emd.Histogram, 2)
	x := emd.Histogram{0.5, 0.25, 0.25}
	got := r.ApplyInto(buf, x)
	if got[0] != 0.75 || got[1] != 0.25 {
		t.Fatalf("ApplyInto = %v, want [0.75 0.25]", got)
	}
	// Buffer must be reset between calls.
	got = r.ApplyInto(buf, emd.Histogram{1, 0, 0})
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ApplyInto second call = %v, want [1 0]", got)
	}
}

func TestMatrixMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r, err := Random(9, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := make(emd.Histogram, 9)
	for i := range x {
		x[i] = rng.Float64()
	}
	vecmath.Normalize(x)
	viaMatrix := vecmath.MatVec(x, r.Matrix())
	viaApply := r.Apply(x)
	for i := range viaApply {
		if math.Abs(viaMatrix[i]-viaApply[i]) > 1e-12 {
			t.Fatalf("matrix %v vs apply %v", viaMatrix, viaApply)
		}
	}
}

func TestReduceCostPaperExample(t *testing.T) {
	// Figure 5 of the paper: 4-dim Manhattan cost, dims {0,1} -> 0 and
	// {2,3} -> 1 yields C' = [[0 2], [2 0]].
	c := emd.CostMatrix{
		{0, 1, 3, 4},
		{1, 0, 2, 3},
		{3, 2, 0, 1},
		{4, 3, 1, 0},
	}
	r, _ := NewReduction([]int{0, 0, 1, 1}, 2)
	got, err := ReduceCost(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	want := emd.CostMatrix{{0, 2}, {2, 0}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("ReduceCost = %v, want %v", got, want)
			}
		}
	}
}

func TestReduceCostWorstCaseExample(t *testing.T) {
	// Section 3.2.1 example: x=(0,1,0,0), y=(0,0,1,0), Manhattan cost.
	// EMD = 1; merging {0,1} and {2,3} keeps the minimum inter-group
	// cost 1 (from dim 1 to dim 2), so the reduced EMD is exactly 1.
	c := emd.CostMatrix{
		{0, 1, 2, 3},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{3, 2, 1, 0},
	}
	r, _ := NewReduction([]int{0, 0, 1, 1}, 2)
	red, err := NewReducedEMD(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0, 1, 0, 0}
	y := emd.Histogram{0, 0, 1, 0}
	orig, err := emd.Distance(x, y, c)
	if err != nil {
		t.Fatal(err)
	}
	got := red.Distance(x, y)
	if math.Abs(orig-1) > 1e-12 {
		t.Fatalf("original EMD = %g, want 1", orig)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("reduced EMD = %g, want exactly 1 (tight worst case)", got)
	}
}

func randomHistogram(rng *rand.Rand, d int) emd.Histogram {
	h := make(emd.Histogram, d)
	for i := range h {
		h[i] = rng.Float64()
		if rng.Intn(4) == 0 {
			h[i] = 0
		}
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		h[rng.Intn(d)] = 1
		sum = 1
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func randomCost(rng *rand.Rand, d int) emd.CostMatrix {
	c := vecmath.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := rng.Float64() * 5
			c[i][j] = v
			c[j][i] = v
		}
	}
	return c
}

// TestQuickLowerBound is the property-test form of Theorem 1: for
// random histograms, costs and reductions, the reduced EMD never
// exceeds the original EMD.
func TestQuickLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(8)
		d1 := 1 + rng.Intn(d)
		d2 := 1 + rng.Intn(d)
		c := randomCost(rng, d)
		r1, err := Random(d, d1, rng)
		if err != nil {
			return false
		}
		r2, err := Random(d, d2, rng)
		if err != nil {
			return false
		}
		red, err := NewReducedEMD(c, r1, r2)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		orig, err := emd.Distance(x, y, c)
		if err != nil {
			return false
		}
		return red.Distance(x, y) <= orig+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotony is the property-test form of Theorem 2: raising
// cost entries can only raise the EMD.
func TestQuickMonotony(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(6)
		c1 := randomCost(rng, d)
		c2 := vecmath.CloneMatrix(c1)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if i != j && rng.Intn(2) == 0 {
					c2[i][j] += rng.Float64()
				}
			}
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		e1, err := emd.Distance(x, y, emd.CostMatrix(c1))
		if err != nil {
			return false
		}
		e2, err := emd.Distance(x, y, emd.CostMatrix(c2))
		if err != nil {
			return false
		}
		return e1 <= e2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalityWitness is the constructive form of Theorem 3: raising
// any entry of the optimal reduced cost matrix breaks the lower bound
// on the witness pair built from the cheapest inter-group original
// cells.
func TestOptimalityWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		d := 4 + rng.Intn(6)
		dr := 2 + rng.Intn(d-2)
		c := randomCost(rng, d)
		r, err := Random(d, dr, rng)
		if err != nil {
			t.Fatal(err)
		}
		reduced, err := ReduceCost(emd.CostMatrix(c), r, r)
		if err != nil {
			t.Fatal(err)
		}
		groups := r.Groups()
		// Pick a reduced cell (gi, gj), gi != gj, and find the original
		// cell attaining the minimum.
		gi := rng.Intn(dr)
		gj := rng.Intn(dr)
		if gi == gj {
			gj = (gj + 1) % dr
		}
		var i0, j0 int
		best := math.Inf(1)
		for _, i := range groups[gi] {
			for _, j := range groups[gj] {
				if c[i][j] < best {
					best = c[i][j]
					i0, j0 = i, j
				}
			}
		}
		// Witness histograms: all mass at i0 and j0 respectively.
		x := make(emd.Histogram, d)
		y := make(emd.Histogram, d)
		x[i0] = 1
		y[j0] = 1
		orig, err := emd.Distance(x, y, emd.CostMatrix(c))
		if err != nil {
			t.Fatal(err)
		}
		if orig > best+1e-12 {
			t.Fatalf("witness original EMD %g exceeds direct cost %g", orig, best)
		}
		// The reduced EMD with the optimal cost matrix is <= orig.
		redDist, err := emd.NewDist(reduced)
		if err != nil {
			t.Fatal(err)
		}
		lb := redDist.Distance(r.Apply(x), r.Apply(y))
		if lb > orig+1e-9 {
			t.Fatalf("optimal reduced cost broke lower bound: %g > %g", lb, orig)
		}
		// Raising the (gi,gj) entry breaks it whenever the witness pair
		// moves all its mass through that cell.
		bumped := vecmath.CloneMatrix(reduced)
		bumped[gi][gj] += 0.5
		bumpedDist, err := emd.NewDist(emd.CostMatrix(bumped))
		if err != nil {
			t.Fatal(err)
		}
		xb := r.Apply(x)
		yb := r.Apply(y)
		lbBumped := bumpedDist.Distance(xb, yb)
		if lbBumped <= orig+1e-12 {
			// Only a true violation when the reduced problem is forced
			// through (gi,gj); with mass concentrated in those groups
			// it always is.
			t.Fatalf("trial %d: bumped cost %g did not exceed original %g", trial, lbBumped, orig)
		}
	}
}

// TestReducedEMDTightensWithDims checks the intuitive flexibility
// property: keeping more dimensions cannot make an Adjacent reduction
// of a 1-D linear cost looser on average.
func TestReducedEMDTightensWithDims(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const d = 16
	c := emd.CostMatrix(emdLinear(d))
	var prev float64
	for _, dr := range []int{2, 4, 8, 16} {
		r, err := Adjacent(d, dr)
		if err != nil {
			t.Fatal(err)
		}
		red, err := NewReducedEMD(c, r, r)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		rngLocal := rand.New(rand.NewSource(99))
		for trial := 0; trial < 30; trial++ {
			x := randomHistogram(rngLocal, d)
			y := randomHistogram(rngLocal, d)
			total += red.Distance(x, y)
		}
		_ = rng
		if total+1e-9 < prev {
			t.Fatalf("average reduced EMD decreased from %g to %g at d'=%d", prev, total, dr)
		}
		prev = total
	}
}

func emdLinear(d int) [][]float64 {
	c := vecmath.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			c[i][j] = math.Abs(float64(i - j))
		}
	}
	return c
}

func TestIdentityReductionIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const d = 8
	c := emd.CostMatrix(emdLinear(d))
	r := Identity(d)
	red, err := NewReducedEMD(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		orig, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		if got := red.Distance(x, y); math.Abs(got-orig) > 1e-9 {
			t.Fatalf("identity reduction changed EMD: %g vs %g", got, orig)
		}
	}
}

func TestAdjacent(t *testing.T) {
	r, err := Adjacent(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	got := r.Assignment()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Adjacent(10,3) = %v, want %v", got, want)
		}
	}
	if _, err := Adjacent(4, 5); err == nil {
		t.Error("Adjacent accepted reduced > d")
	}
	if _, err := Adjacent(4, 0); err == nil {
		t.Error("Adjacent accepted reduced = 0")
	}
}

func TestGridAdjacent(t *testing.T) {
	// 4x4 grid merged in 2x2 blocks -> 4 reduced dims, the factor-4
	// hierarchy step of [14].
	r, err := GridAdjacent(4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReducedDims() != 4 {
		t.Fatalf("reduced dims = %d, want 4", r.ReducedDims())
	}
	// Tile (0,0) and (1,1) share block 0; tile (2,3) is in block 3.
	a := r.Assignment()
	if a[0] != a[1*4+1] {
		t.Error("tiles (0,0) and (1,1) should share a block")
	}
	if a[2*4+3] != 3 {
		t.Errorf("tile (2,3) in block %d, want 3", a[2*4+3])
	}
	// Partial blocks: 3x3 grid with 2x2 blocks -> 4 blocks.
	r, err = GridAdjacent(3, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReducedDims() != 4 {
		t.Fatalf("3x3/2x2 reduced dims = %d, want 4", r.ReducedDims())
	}
}

func TestRandomReductionCoversAllGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(20)
		dr := 1 + rng.Intn(d)
		r, err := Random(d, dr, rng)
		if err != nil {
			t.Fatal(err)
		}
		groups := r.Groups()
		if len(groups) != dr {
			t.Fatalf("got %d groups, want %d", len(groups), dr)
		}
		for g, members := range groups {
			if len(members) == 0 {
				t.Fatalf("group %d empty in %v", g, r.Assignment())
			}
		}
	}
}

func TestFromGroups(t *testing.T) {
	r, err := FromGroups(5, [][]int{{0, 2}, {1, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if r.AssignmentOf(2) != 0 || r.AssignmentOf(4) != 1 {
		t.Errorf("unexpected assignment %v", r.Assignment())
	}
	if _, err := FromGroups(3, [][]int{{0, 1}}); err == nil {
		t.Error("accepted uncovered dimension")
	}
	if _, err := FromGroups(3, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("accepted double assignment")
	}
	if _, err := FromGroups(3, [][]int{{0, 1, 2}, {}}); err == nil {
		t.Error("accepted empty group")
	}
}

func TestCloneAndEqual(t *testing.T) {
	r, _ := NewReduction([]int{0, 1, 1, 0}, 2)
	s := r.Clone()
	if !r.Equal(s) {
		t.Error("clone not equal")
	}
	s.assign[0] = 1
	if r.Equal(s) {
		t.Error("mutated clone still equal")
	}
	if r.AssignmentOf(0) != 0 {
		t.Error("clone mutation leaked into original")
	}
}

// TestAsymmetricReductionTighter: reducing only the database side
// (R1 = identity) yields a lower bound at least as tight as reducing
// both sides, for the same R2.
func TestAsymmetricReductionTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const d = 12
	c := emd.CostMatrix(emdLinear(d))
	r2, err := Adjacent(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := NewReducedEMD(c, r2, r2)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := NewReducedEMD(c, Identity(d), r2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		orig, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		ds := sym.Distance(x, y)
		da := asym.Distance(x, y)
		if da > orig+1e-9 {
			t.Fatalf("asymmetric bound %g exceeds original %g", da, orig)
		}
		if ds > da+1e-9 {
			t.Fatalf("symmetric bound %g tighter than asymmetric %g", ds, da)
		}
	}
}

func TestCompose(t *testing.T) {
	outer, _ := NewReduction([]int{0, 0, 1, 1, 2, 2}, 3)
	inner, _ := NewReduction([]int{0, 0, 1}, 2)
	composed, err := Compose(outer, inner)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1}
	got := composed.Assignment()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Compose = %v, want %v", got, want)
		}
	}
	// Applying composed equals applying outer then inner.
	x := emd.Histogram{0.1, 0.1, 0.2, 0.2, 0.2, 0.2}
	direct := composed.Apply(x)
	twoStep := inner.Apply(outer.Apply(x))
	for i := range direct {
		if math.Abs(direct[i]-twoStep[i]) > 1e-12 {
			t.Fatalf("direct %v vs two-step %v", direct, twoStep)
		}
	}
	// Mismatched dimensionalities rejected.
	if _, err := Compose(inner, outer); err == nil {
		t.Error("accepted mismatched composition")
	}
}

// TestComposedCascadeOrdering: for a composed (nested) cascade, the
// coarser optimal reduced EMD lower-bounds the finer one, which
// lower-bounds the exact EMD — the invariant hierarchical filter
// chains rest on.
func TestComposedCascadeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const d = 16
	c := emd.CostMatrix(emdLinear(d))
	fine, err := Adjacent(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := Adjacent(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Compose(fine, inner)
	if err != nil {
		t.Fatal(err)
	}
	fineEMD, err := NewReducedEMD(c, fine, fine)
	if err != nil {
		t.Fatal(err)
	}
	coarseEMD, err := NewReducedEMD(c, coarse, coarse)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		cd := coarseEMD.Distance(x, y)
		fd := fineEMD.Distance(x, y)
		if cd > fd+1e-9 || fd > exact+1e-9 {
			t.Fatalf("cascade ordering violated: %g <= %g <= %g expected", cd, fd, exact)
		}
	}
}

func TestAggregateFlows(t *testing.T) {
	f := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	}
	r, _ := NewReduction([]int{0, 0, 1}, 2)
	got, err := AggregateFlows(f, r)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{12, 9}, {15, 9}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("AggregateFlows = %v, want %v", got, want)
			}
		}
	}
	if _, err := AggregateFlows(f[:2], r); err == nil {
		t.Error("accepted wrong flow shape")
	}
}
