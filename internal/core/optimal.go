package core

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
)

// WorkloadQuery is one entry of the range-query workload of
// Definition 6: a query histogram with its range threshold.
type WorkloadQuery struct {
	Query   emd.Histogram
	Epsilon float64
}

// EnumeratePartitions calls fn for every partition of d elements into
// exactly `blocks` non-empty groups, encoded as an assignment vector
// in restricted-growth form (assign[0] = 0 and each subsequent value
// is at most one above the running maximum — every set partition is
// produced exactly once, without relabeled duplicates). fn must not
// retain the slice; return false from fn to stop early. The number of
// invocations is the Stirling number of the second kind S(d, blocks).
func EnumeratePartitions(d, blocks int, fn func(assign []int) bool) error {
	if d < 1 || blocks < 1 || blocks > d {
		return fmt.Errorf("core: EnumeratePartitions(%d, %d): invalid arguments", d, blocks)
	}
	assign := make([]int, d)
	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if i == d {
			if maxUsed+1 == blocks {
				return fn(assign)
			}
			return true
		}
		// Prune: the remaining elements must be able to open enough
		// new groups.
		if maxUsed+1+(d-i) < blocks {
			return true
		}
		top := maxUsed + 1
		if top > blocks-1 {
			top = blocks - 1
		}
		for g := 0; g <= top; g++ {
			assign[i] = g
			nm := maxUsed
			if g > maxUsed {
				nm = g
			}
			if !rec(i+1, nm) {
				return false
			}
		}
		return true
	}
	rec(0, -1)
	return nil
}

// CountPartitions returns the Stirling number of the second kind
// S(d, blocks) — the size of the search space Definition 6 ranges
// over for one d'.
func CountPartitions(d, blocks int) (uint64, error) {
	if d < 1 || blocks < 1 || blocks > d {
		return 0, fmt.Errorf("core: CountPartitions(%d, %d): invalid arguments", d, blocks)
	}
	// DP over S(n, k) = k*S(n-1, k) + S(n-1, k-1).
	prev := make([]uint64, blocks+1)
	cur := make([]uint64, blocks+1)
	prev[0] = 1 // S(0,0) = 1
	for n := 1; n <= d; n++ {
		cur[0] = 0
		for k := 1; k <= blocks && k <= n; k++ {
			cur[k] = uint64(k)*prev[k] + prev[k-1]
		}
		copy(prev, cur)
	}
	return prev[blocks], nil
}

// OptimalReduction exhaustively solves Definition 6: among all
// combining reductions from d to `reduced` dimensions it returns one
// minimizing the total number of range-query candidates
//
//	sum_{(x, eps) in workload} |{ y in db : EMD^R_C(x, y) <= eps }|
//
// over the database. The search space is the Stirling number
// S(d, reduced); maxPartitions caps it (0 means the default of
// 200,000) so callers cannot accidentally start an astronomically
// large enumeration — the paper notes this is infeasible beyond toy
// sizes, which is exactly how the test suite uses it to judge the
// heuristics. Returns the optimal reduction and its candidate count.
func OptimalReduction(db []emd.Histogram, workload []WorkloadQuery, cost emd.CostMatrix, reduced int, maxPartitions uint64) (*Reduction, int, error) {
	if len(db) == 0 || len(workload) == 0 {
		return nil, 0, fmt.Errorf("core: OptimalReduction needs a database and a workload")
	}
	d := cost.Rows()
	if d != cost.Cols() {
		return nil, 0, fmt.Errorf("core: cost matrix is %dx%d, want square", cost.Rows(), cost.Cols())
	}
	if maxPartitions == 0 {
		maxPartitions = 200_000
	}
	count, err := CountPartitions(d, reduced)
	if err != nil {
		return nil, 0, err
	}
	if count > maxPartitions {
		return nil, 0, fmt.Errorf("core: S(%d, %d) = %d partitions exceed the cap of %d", d, reduced, count, maxPartitions)
	}

	bestCount := math.MaxInt
	var bestAssign []int
	var enumErr error
	err = EnumeratePartitions(d, reduced, func(assign []int) bool {
		r, err := NewReduction(assign, reduced)
		if err != nil {
			enumErr = err
			return false
		}
		red, err := NewReducedEMD(cost, r, r)
		if err != nil {
			enumErr = err
			return false
		}
		candidates := 0
		for _, wq := range workload {
			qr := r.Apply(wq.Query)
			for _, y := range db {
				if red.DistanceReduced(qr, r.Apply(y)) <= wq.Epsilon {
					candidates++
				}
			}
			if candidates >= bestCount {
				break // cannot beat the incumbent
			}
		}
		if candidates < bestCount {
			bestCount = candidates
			bestAssign = append(bestAssign[:0], assign...)
		}
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if enumErr != nil {
		return nil, 0, enumErr
	}
	if bestAssign == nil {
		return nil, 0, fmt.Errorf("core: no valid reduction found")
	}
	best, err := NewReduction(bestAssign, reduced)
	if err != nil {
		return nil, 0, err
	}
	return best, bestCount, nil
}

// CandidateCount evaluates the Definition 6 objective for one given
// reduction: the total number of database objects whose reduced EMD to
// each workload query is within that query's threshold.
func CandidateCount(db []emd.Histogram, workload []WorkloadQuery, cost emd.CostMatrix, r *Reduction) (int, error) {
	red, err := NewReducedEMD(cost, r, r)
	if err != nil {
		return 0, err
	}
	reducedDB := make([]emd.Histogram, len(db))
	for i, y := range db {
		reducedDB[i] = r.Apply(y)
	}
	candidates := 0
	for _, wq := range workload {
		qr := r.Apply(wq.Query)
		for _, yr := range reducedDB {
			if red.DistanceReduced(qr, yr) <= wq.Epsilon {
				candidates++
			}
		}
	}
	return candidates, nil
}
