package core

import (
	"fmt"
	"math/rand"

	"emdsearch/internal/vecmath"
)

// Identity returns the reduction that keeps all d dimensions (d' = d).
// Useful as the query-side reduction R1 when only the database side is
// reduced (Section 3.2 of the paper).
func Identity(d int) *Reduction {
	assign := make([]int, d)
	for i := range assign {
		assign[i] = i
	}
	r, err := NewReduction(assign, d)
	if err != nil {
		panic(err) // cannot happen for d >= 1
	}
	return r
}

// Adjacent returns the reduction that merges contiguous runs of
// original dimensions into d' blocks of near-equal size. For 1-D
// ordered feature spaces this generalizes the fixed factor-4
// neighboring-bin merging of the prior grid-tiling approach ([14] in
// the paper) to arbitrary d'.
func Adjacent(d, reduced int) (*Reduction, error) {
	if reduced < 1 || reduced > d {
		return nil, fmt.Errorf("core: Adjacent(%d, %d): reduced dimensionality out of range", d, reduced)
	}
	assign := make([]int, d)
	// Distribute d dimensions over `reduced` blocks, the first d%reduced
	// blocks one element larger.
	base := d / reduced
	extra := d % reduced
	idx := 0
	for b := 0; b < reduced; b++ {
		size := base
		if b < extra {
			size++
		}
		for k := 0; k < size; k++ {
			assign[idx] = b
			idx++
		}
	}
	return NewReduction(assign, reduced)
}

// GridAdjacent returns a reduction for a rows x cols tiling (row-major
// bins) that merges rectangular blocks of tiles, the direct
// generalization of the image-tiling hierarchy of [14]. blockRows and
// blockCols give the size of each merged block; partial blocks at the
// borders are allowed.
func GridAdjacent(rows, cols, blockRows, blockCols int) (*Reduction, error) {
	if rows < 1 || cols < 1 || blockRows < 1 || blockCols < 1 {
		return nil, fmt.Errorf("core: GridAdjacent(%d, %d, %d, %d): all arguments must be positive", rows, cols, blockRows, blockCols)
	}
	outRows := (rows + blockRows - 1) / blockRows
	outCols := (cols + blockCols - 1) / blockCols
	assign := make([]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			assign[r*cols+c] = (r/blockRows)*outCols + (c / blockCols)
		}
	}
	return NewReduction(assign, outRows*outCols)
}

// Random returns a uniformly random combining reduction from d to
// reduced dimensions. The first `reduced` original dimensions are
// spread over distinct groups to guarantee restriction (8); the rest
// are assigned uniformly. Random reductions are the paper-agnostic
// baseline the experiments compare against.
func Random(d, reduced int, rng *rand.Rand) (*Reduction, error) {
	if reduced < 1 || reduced > d {
		return nil, fmt.Errorf("core: Random(%d, %d): reduced dimensionality out of range", d, reduced)
	}
	assign := make([]int, d)
	// A random permutation seeds each group once.
	perm := rng.Perm(d)
	for g := 0; g < reduced; g++ {
		assign[perm[g]] = g
	}
	for _, i := range perm[reduced:] {
		assign[i] = rng.Intn(reduced)
	}
	return NewReduction(assign, reduced)
}

// FromGroups builds a reduction from explicit groups of original
// dimensions. Each original dimension in [0, d) must appear in exactly
// one group.
func FromGroups(d int, groups [][]int) (*Reduction, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: FromGroups: no groups")
	}
	assign := make([]int, d)
	for i := range assign {
		assign[i] = -1
	}
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("core: FromGroups: group %d is empty", g)
		}
		for _, i := range members {
			if i < 0 || i >= d {
				return nil, fmt.Errorf("core: FromGroups: dimension %d out of range [0, %d)", i, d)
			}
			if assign[i] != -1 {
				return nil, fmt.Errorf("core: FromGroups: dimension %d assigned to groups %d and %d", i, assign[i], g)
			}
			assign[i] = g
		}
	}
	for i, g := range assign {
		if g == -1 {
			return nil, fmt.Errorf("core: FromGroups: dimension %d not assigned to any group", i)
		}
	}
	return NewReduction(assign, len(groups))
}

// Compose chains two combining reductions: outer reduces d to m, inner
// reduces m to k; the result reduces d to k directly, assigning each
// original dimension to inner's group of its outer group. Composition
// is how hierarchical filter cascades are built (generalizing the
// fixed factor-4 hierarchy of [14]): because the composed reduction's
// groups are unions of the outer reduction's groups, the composed
// (coarser) optimal reduced EMD lower-bounds the outer (finer) one,
// which makes cascades of any depth valid filter chains.
func Compose(outer, inner *Reduction) (*Reduction, error) {
	if inner.OriginalDims() != outer.ReducedDims() {
		return nil, fmt.Errorf("core: Compose: inner expects %d dimensions, outer produces %d",
			inner.OriginalDims(), outer.ReducedDims())
	}
	assign := make([]int, outer.OriginalDims())
	for i, g := range outer.assign {
		assign[i] = inner.assign[g]
	}
	return NewReduction(assign, inner.ReducedDims())
}

// AggregateFlows reduces a d x d flow matrix to r.ReducedDims() x
// r.ReducedDims() by summing within group pairs — the flow-matrix
// counterpart of applying r to histograms. Used to reuse one sample
// flow collection across every level of a hierarchical cascade.
func AggregateFlows(f [][]float64, r *Reduction) ([][]float64, error) {
	d := r.OriginalDims()
	if len(f) != d {
		return nil, fmt.Errorf("core: AggregateFlows: flow matrix has %d rows, reduction expects %d", len(f), d)
	}
	k := r.ReducedDims()
	out := vecmath.NewMatrix(k, k)
	for i, row := range f {
		if len(row) != d {
			return nil, fmt.Errorf("core: AggregateFlows: flow row %d has %d columns, want %d", i, len(row), d)
		}
		gi := r.assign[i]
		orow := out[gi]
		for j, v := range row {
			orow[r.assign[j]] += v
		}
	}
	return out, nil
}
