package lb

import (
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

// decodeHistogramPair derives two valid d-dimensional histograms and a
// reduced dimensionality from raw fuzz bytes. Returns ok = false when
// the bytes cannot yield valid histograms (too short, zero mass).
func decodeHistogramPair(data []byte) (x, y emd.Histogram, d, dr int, ok bool) {
	if len(data) < 2 {
		return nil, nil, 0, 0, false
	}
	d = int(data[0])%9 + 4 // 4..12
	dr = int(data[1])%d + 1
	data = data[2:]
	if len(data) < 2*d {
		return nil, nil, 0, 0, false
	}
	decode := func(raw []byte) (emd.Histogram, bool) {
		h := make(emd.Histogram, len(raw))
		var sum float64
		for i, b := range raw {
			h[i] = float64(b)
			sum += h[i]
		}
		if sum < 1e-9 {
			return nil, false
		}
		for i := range h {
			h[i] /= sum
		}
		return h, true
	}
	x, okx := decode(data[:d])
	y, oky := decode(data[d : 2*d])
	return x, y, d, dr, okx && oky
}

// FuzzEMDLowerBounds checks the ordering every filter stage of the
// engine's chained pipeline relies on, for arbitrary histogram pairs
// under the linear ground distance:
//
//	Red-IM <= Red-EMD <= IM/Centroid-free exact EMD <= GreedyUpper
//
// and additionally that the full-dimensional IM and centroid bounds
// lower-bound the exact EMD. A violation anywhere would break the
// lossless completeness guarantee of the multistep algorithm.
func FuzzEMDLowerBounds(f *testing.F) {
	f.Add([]byte{0, 0, 255, 0, 0, 0, 0, 0, 0, 255})
	f.Add([]byte{4, 2, 10, 20, 30, 40, 50, 60, 70, 80, 80, 70, 60, 50, 40, 30, 20, 10})
	f.Add([]byte{8, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 200, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, y, d, dr, ok := decodeHistogramPair(data)
		if !ok {
			t.Skip()
		}
		cost := emd.LinearCost(d)
		exact, err := emd.Distance(x, y, cost)
		if err != nil {
			t.Fatalf("exact EMD: %v", err)
		}
		tol := 1e-9 * (1 + exact)

		im, err := NewIM(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got := im.Distance(x, y); got > exact+tol {
			t.Fatalf("IM %g exceeds exact EMD %g", got, exact)
		}

		// 1-D bin positions matching the linear cost.
		pos := make([][]float64, d)
		for i := range pos {
			pos[i] = []float64{float64(i)}
		}
		cb, err := NewCentroid(pos, pos, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := cb.CheckAgainst(cost, 1e-9); err != nil {
			t.Fatal(err)
		}
		if got := cb.Distance(x, y); got > exact+tol {
			t.Fatalf("centroid bound %g exceeds exact EMD %g", got, exact)
		}

		red, err := core.Adjacent(d, dr)
		if err != nil {
			t.Fatal(err)
		}
		redEMD, err := core.NewReducedEMD(cost, red, red)
		if err != nil {
			t.Fatal(err)
		}
		xr, yr := red.Apply(x), red.Apply(y)
		redDist := redEMD.DistanceReduced(xr, yr)
		if redDist > exact+tol {
			t.Fatalf("reduced EMD %g exceeds exact EMD %g (d=%d, d'=%d)", redDist, exact, d, dr)
		}

		redIM, err := NewIM(redEMD.Cost())
		if err != nil {
			t.Fatal(err)
		}
		if got := redIM.Distance(xr, yr); got > redDist+tol {
			t.Fatalf("Red-IM %g exceeds Red-EMD %g", got, redDist)
		}

		upper, err := NewGreedyUpper(cost)
		if err != nil {
			t.Fatal(err)
		}
		if got := upper.Distance(x, y); got < exact-tol {
			t.Fatalf("greedy upper bound %g below exact EMD %g", got, exact)
		}
	})
}
