// Package lb provides classic lower-bounding filter distances for the
// Earth Mover's Distance that the paper chains with its dimensionality
// reduction (Section 4, Figure 10):
//
//   - IM, the independent-minimization bound LB_IM of Assent et
//     al. ([1] in the paper): the transportation LP relaxed so that
//     each source bin routes its mass to the cheapest target bins
//     independently, subject only to the individual target capacities.
//     Because every feasible EMD flow satisfies the relaxed
//     constraints, the relaxed optimum never exceeds the EMD. The bound
//     works on any cost matrix — in particular on the *reduced* cost
//     matrix of a combining reduction, which yields the Red-IM filter
//     of the paper's chained pipeline.
//
//   - Centroid, Rubner's centroid distance: for ground distances that
//     are norms of bin-position differences, the norm distance between
//     the mass centroids lower-bounds the EMD (triangle inequality
//     applied to the flow decomposition).
package lb

import (
	"fmt"
	"sort"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// IM is the independent-minimization lower bound LB_IM, precompiled for
// one cost matrix. It evaluates both relaxation directions (dropping
// the target coupling and dropping the source coupling) and returns the
// larger, still lower-bounding value.
type IM struct {
	cost emd.CostMatrix
	// rowOrder[i] lists target bins in ascending cost from source i;
	// colOrder[j] lists source bins in ascending cost toward target j.
	rowOrder [][]int32
	colOrder [][]int32
}

// NewIM validates c and precomputes the sorted cost orders. The
// precomputation is O(d1*d2*log d), done once per cost matrix.
func NewIM(c emd.CostMatrix) (*IM, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rows, cols := c.Rows(), c.Cols()
	im := &IM{
		cost:     c,
		rowOrder: make([][]int32, rows),
		colOrder: make([][]int32, cols),
	}
	for i := 0; i < rows; i++ {
		order := make([]int32, cols)
		for j := range order {
			order[j] = int32(j)
		}
		row := c[i]
		sort.Slice(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
		im.rowOrder[i] = order
	}
	for j := 0; j < cols; j++ {
		order := make([]int32, rows)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool { return c[order[a]][j] < c[order[b]][j] })
		im.colOrder[j] = order
	}
	return im, nil
}

// Dims returns the source and target dimensionality of the compiled
// cost matrix.
func (im *IM) Dims() (rows, cols int) { return im.cost.Rows(), im.cost.Cols() }

// Cost returns the compiled cost matrix. It is shared, not copied: the
// columnar scan kernels replicate the scalar walk bit-for-bit and must
// read the very same values. Callers must not mutate it.
func (im *IM) Cost() emd.CostMatrix { return im.cost }

// RowOrders returns, for each source bin i, the target bins in
// ascending cost order — the exact walk order of the forward
// relaxation. Shared and read-only, like Cost.
func (im *IM) RowOrders() [][]int32 { return im.rowOrder }

// ColOrders returns, for each target bin j, the source bins in
// ascending cost order — the exact walk order of the backward
// relaxation. Shared and read-only, like Cost.
func (im *IM) ColOrders() [][]int32 { return im.colOrder }

// Distance returns max(forward, backward) of the two one-sided
// relaxations; both are lower bounds of EMD_C(x, y), hence so is the
// maximum.
func (im *IM) Distance(x, y emd.Histogram) float64 {
	fwd := im.forward(x, y)
	bwd := im.backward(x, y)
	if bwd > fwd {
		return bwd
	}
	return fwd
}

// forward relaxes the target constraints to per-source capacities:
// every source bin i ships x_i to the cheapest targets, each target j
// accepting at most y_j *per source*.
func (im *IM) forward(x, y emd.Histogram) float64 {
	var total float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		remaining := xi
		row := im.cost[i]
		for _, j := range im.rowOrder[i] {
			cap := y[j]
			if cap == 0 {
				continue
			}
			if cap >= remaining {
				total += remaining * row[j]
				remaining = 0
				break
			}
			total += cap * row[j]
			remaining -= cap
		}
		// Numerical residue (masses sum to one on both sides) is
		// dropped; it can only make the bound smaller, never invalid.
	}
	return total
}

// backward relaxes the source constraints symmetrically.
func (im *IM) backward(x, y emd.Histogram) float64 {
	var total float64
	for j, yj := range y {
		if yj == 0 {
			continue
		}
		remaining := yj
		for _, i := range im.colOrder[j] {
			cap := x[i]
			if cap == 0 {
				continue
			}
			if cap >= remaining {
				total += remaining * im.cost[i][j]
				remaining = 0
				break
			}
			total += cap * im.cost[i][j]
			remaining -= cap
		}
	}
	return total
}

// Centroid is Rubner's centroid lower bound for position-based ground
// distances: EMD_C(x,y) >= ||sum_i x_i p_i - sum_j y_j q_j||_p whenever
// C[i][j] = ||p_i - q_j||_p. Source and target bins may use different
// position sets (rectangular costs).
type Centroid struct {
	source, target [][]float64
	p              float64
}

// NewCentroid validates the positions and returns the compiled bound.
// The caller is responsible for using it only with an EMD whose ground
// distance is the corresponding Lp position distance; CheckAgainst
// verifies that correspondence.
func NewCentroid(source, target [][]float64, p float64) (*Centroid, error) {
	if len(source) == 0 || len(target) == 0 {
		return nil, fmt.Errorf("lb: empty position set")
	}
	dim := len(source[0])
	for i, pos := range source {
		if len(pos) != dim {
			return nil, fmt.Errorf("lb: source position %d has %d coordinates, want %d", i, len(pos), dim)
		}
	}
	for j, pos := range target {
		if len(pos) != dim {
			return nil, fmt.Errorf("lb: target position %d has %d coordinates, want %d", j, len(pos), dim)
		}
	}
	if p < 1 {
		return nil, fmt.Errorf("lb: p = %g is not a norm order (need p >= 1)", p)
	}
	return &Centroid{source: source, target: target, p: p}, nil
}

// Distance returns the centroid lower bound for histograms x over the
// source positions and y over the target positions.
func (cb *Centroid) Distance(x, y emd.Histogram) float64 {
	cx := vecmath.Centroid(x, cb.source)
	cy := vecmath.Centroid(y, cb.target)
	return vecmath.Lp(cx, cy, cb.p)
}

// CheckAgainst verifies that cost c matches the Lp position distance
// this bound assumes, up to tol. Using Centroid with a non-matching
// cost matrix silently loses the lower-bound guarantee; call this once
// when wiring a pipeline.
func (cb *Centroid) CheckAgainst(c emd.CostMatrix, tol float64) error {
	if c.Rows() != len(cb.source) || c.Cols() != len(cb.target) {
		return fmt.Errorf("lb: cost matrix is %dx%d, positions are %dx%d",
			c.Rows(), c.Cols(), len(cb.source), len(cb.target))
	}
	for i, pi := range cb.source {
		for j, qj := range cb.target {
			if want := vecmath.Lp(pi, qj, cb.p); !vecmath.AlmostEqual(c[i][j], want, tol) {
				return fmt.Errorf("lb: cost[%d][%d] = %g, position distance is %g", i, j, c[i][j], want)
			}
		}
	}
	return nil
}
