package lb

import (
	"emdsearch/internal/emd"
)

// GreedyUpper computes cheap upper bounds of the EMD by constructing a
// feasible (not necessarily optimal) transportation flow greedily: for
// each source bin in turn, mass is shipped to the cheapest target bins
// with remaining capacity. Any feasible flow's cost dominates the
// optimum, so the result is a guaranteed upper bound, typically within
// a few tens of percent of the exact EMD at ~1/100th of its cost
// (O(d^2) versus the simplex's empirically cubic behavior).
//
// Together with a reduced-EMD lower bound this forms the practical
// envelope for certified approximate search (Engine.ApproxKNN): the
// reduced EMD brackets from below, the greedy flow from above.
type GreedyUpper struct {
	cost     emd.CostMatrix
	rowOrder [][]int32
	// scratch capacity buffer reused across calls; Distance is not
	// safe for concurrent use on one instance — clone per goroutine.
	remaining []float64
}

// NewGreedyUpper validates c (square or rectangular) and precomputes
// the per-row cheapest-target orders.
func NewGreedyUpper(c emd.CostMatrix) (*GreedyUpper, error) {
	im, err := NewIM(c) // reuse validation and row-order construction
	if err != nil {
		return nil, err
	}
	return &GreedyUpper{
		cost:      c,
		rowOrder:  im.rowOrder,
		remaining: make([]float64, c.Cols()),
	}, nil
}

// Clone returns an independent instance sharing the immutable
// precomputed orders, for concurrent use.
func (g *GreedyUpper) Clone() *GreedyUpper {
	return &GreedyUpper{
		cost:      g.cost,
		rowOrder:  g.rowOrder,
		remaining: make([]float64, g.cost.Cols()),
	}
}

// Distance returns the cost of the greedy feasible flow from x to y —
// an upper bound of EMD_C(x, y). Histograms are trusted to be valid
// operands of equal total mass.
func (g *GreedyUpper) Distance(x, y emd.Histogram) float64 {
	copy(g.remaining, y)
	var total float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		need := xi
		row := g.cost[i]
		for _, j := range g.rowOrder[i] {
			cap := g.remaining[j]
			if cap == 0 {
				continue
			}
			if cap >= need {
				total += need * row[j]
				g.remaining[j] = cap - need
				need = 0
				break
			}
			total += cap * row[j]
			g.remaining[j] = 0
			need -= cap
		}
		// Numerical residue of at most a few ulps may remain; it is
		// dropped, which can only lower the bound by the same ulps —
		// callers treat the result with standard float tolerance.
	}
	return total
}
