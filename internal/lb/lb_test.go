package lb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

func randomHistogram(rng *rand.Rand, d int) emd.Histogram {
	h := make(emd.Histogram, d)
	for i := range h {
		h[i] = rng.Float64()
		if rng.Intn(4) == 0 {
			h[i] = 0
		}
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		h[rng.Intn(d)] = 1
		sum = 1
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// TestQuickIMLowerBound: LB_IM never exceeds the exact EMD, for random
// histograms and random symmetric costs.
func TestQuickIMLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(10)
		c := make(emd.CostMatrix, d)
		for i := range c {
			c[i] = make([]float64, d)
		}
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				v := rng.Float64() * 6
				c[i][j] = v
				c[j][i] = v
			}
		}
		im, err := NewIM(c)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			return false
		}
		return im.Distance(x, y) <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestIMExactOnForcedFlow(t *testing.T) {
	// With all mass in one bin on each side, every relaxation is forced
	// into the same single flow, so LB_IM equals the EMD.
	c := emd.LinearCost(5)
	im, err := NewIM(c)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0, 1, 0, 0, 0}
	y := emd.Histogram{0, 0, 0, 0, 1}
	exact, _ := emd.Distance(x, y, c)
	if got := im.Distance(x, y); math.Abs(got-exact) > 1e-12 {
		t.Errorf("LB_IM = %g, exact = %g", got, exact)
	}
}

func TestIMTighterThanOneSided(t *testing.T) {
	// max(forward, backward) must dominate each direction separately.
	rng := rand.New(rand.NewSource(6))
	c := emd.LinearCost(8)
	im, err := NewIM(c)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := randomHistogram(rng, 8)
		y := randomHistogram(rng, 8)
		both := im.Distance(x, y)
		if fwd := im.forward(x, y); both < fwd-1e-12 {
			t.Fatalf("Distance %g below forward %g", both, fwd)
		}
		if bwd := im.backward(x, y); both < bwd-1e-12 {
			t.Fatalf("Distance %g below backward %g", both, bwd)
		}
	}
}

func TestIMZeroForIdentical(t *testing.T) {
	c := emd.LinearCost(6)
	im, err := NewIM(c)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0.3, 0.1, 0.1, 0.2, 0.2, 0.1}
	if got := im.Distance(x, x); got > 1e-12 {
		t.Errorf("LB_IM(x,x) = %g, want 0", got)
	}
}

func TestIMOnReducedCost(t *testing.T) {
	// Red-IM of the chained pipeline: IM over the optimal reduced cost
	// matrix must lower-bound the reduced EMD, which lower-bounds the
	// full EMD.
	rng := rand.New(rand.NewSource(14))
	const d, dr = 12, 4
	c := emd.CostMatrix(emd.LinearCost(d))
	r, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.NewReducedEMD(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewIM(red.Cost())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		xr, yr := r.Apply(x), r.Apply(y)
		redIM := im.Distance(xr, yr)
		redEMD := red.DistanceReduced(xr, yr)
		full, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		if redIM > redEMD+1e-9 {
			t.Fatalf("Red-IM %g exceeds Red-EMD %g", redIM, redEMD)
		}
		if redEMD > full+1e-9 {
			t.Fatalf("Red-EMD %g exceeds EMD %g", redEMD, full)
		}
	}
}

func TestIMRectangular(t *testing.T) {
	c := emd.CostMatrix{{0, 2, 4}, {2, 0, 2}}
	im, err := NewIM(c)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0.5, 0.5}
	y := emd.Histogram{0.25, 0.5, 0.25}
	exact, err := emd.Distance(x, y, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := im.Distance(x, y); got > exact+1e-9 {
		t.Errorf("rectangular LB_IM %g exceeds EMD %g", got, exact)
	}
	if rows, cols := im.Dims(); rows != 2 || cols != 3 {
		t.Errorf("Dims = %dx%d, want 2x3", rows, cols)
	}
}

func TestNewIMValidation(t *testing.T) {
	if _, err := NewIM(emd.CostMatrix{{0, -1}, {1, 0}}); err == nil {
		t.Error("accepted negative cost")
	}
	if _, err := NewIM(emd.CostMatrix{}); err == nil {
		t.Error("accepted empty cost")
	}
}

// TestQuickCentroidLowerBound: the centroid bound never exceeds the
// exact EMD when the ground distance is the matching Lp position
// distance.
func TestQuickCentroidLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(8)
		dims := 1 + rng.Intn(3)
		pos := make([][]float64, d)
		for i := range pos {
			pos[i] = make([]float64, dims)
			for k := range pos[i] {
				pos[i][k] = rng.Float64() * 10
			}
		}
		p := []float64{1, 2}[rng.Intn(2)]
		c, err := emd.PositionCost(pos, pos, p)
		if err != nil {
			return false
		}
		cb, err := NewCentroid(pos, pos, p)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			return false
		}
		return cb.Distance(x, y) <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidExactForTranslatedPointMasses(t *testing.T) {
	// Point masses: the EMD equals the position distance, and so does
	// the centroid bound.
	pos := [][]float64{{0, 0}, {3, 4}}
	cb, err := NewCentroid(pos, pos, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{1, 0}
	y := emd.Histogram{0, 1}
	if got := cb.Distance(x, y); math.Abs(got-5) > 1e-12 {
		t.Errorf("centroid distance %g, want 5", got)
	}
}

func TestCentroidCheckAgainst(t *testing.T) {
	pos := [][]float64{{0}, {1}, {2}}
	cb, err := NewCentroid(pos, pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	good, err := emd.PositionCost(pos, pos, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.CheckAgainst(good, 1e-9); err != nil {
		t.Errorf("CheckAgainst rejected matching cost: %v", err)
	}
	bad := emd.CostMatrix{{0, 5, 5}, {5, 0, 5}, {5, 5, 0}}
	if err := cb.CheckAgainst(bad, 1e-9); err == nil {
		t.Error("CheckAgainst accepted non-matching cost")
	}
	small := emd.CostMatrix{{0, 1}, {1, 0}}
	if err := cb.CheckAgainst(small, 1e-9); err == nil {
		t.Error("CheckAgainst accepted wrong shape")
	}
}

func TestNewCentroidValidation(t *testing.T) {
	if _, err := NewCentroid(nil, [][]float64{{0}}, 2); err == nil {
		t.Error("accepted empty source positions")
	}
	if _, err := NewCentroid([][]float64{{0, 1}}, [][]float64{{0, 1}, {2}}, 2); err == nil {
		t.Error("accepted ragged target positions")
	}
	if _, err := NewCentroid([][]float64{{0}}, [][]float64{{1}}, 0.5); err == nil {
		t.Error("accepted p < 1")
	}
}

// TestChainOrdering asserts the full filter chain ordering on which the
// multistep completeness proof rests:
// Centroid <= EMD and Red-IM <= Red-EMD <= EMD.
func TestChainOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const d, dr = 16, 4
	pos := emd.GridPositions(4, 4)
	c, err := emd.PositionCost(pos, pos, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCentroid(pos, pos, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.NewReducedEMD(c, r, r)
	if err != nil {
		t.Fatal(err)
	}
	im, err := NewIM(red.Cost())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		full, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		xr, yr := r.Apply(x), r.Apply(y)
		if got := cb.Distance(x, y); got > full+1e-9 {
			t.Fatalf("centroid %g > EMD %g", got, full)
		}
		redIM := im.Distance(xr, yr)
		redEMD := red.DistanceReduced(xr, yr)
		if redIM > redEMD+1e-9 || redEMD > full+1e-9 {
			t.Fatalf("chain violated: %g <= %g <= %g expected", redIM, redEMD, full)
		}
	}
}
