package lb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/emd"
)

// TestQuickGreedyUpperBound: the greedy flow cost never underestimates
// the exact EMD.
func TestQuickGreedyUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(10)
		c := make(emd.CostMatrix, d)
		for i := range c {
			c[i] = make([]float64, d)
		}
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				v := rng.Float64() * 6
				c[i][j] = v
				c[j][i] = v
			}
		}
		g, err := NewGreedyUpper(c)
		if err != nil {
			return false
		}
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			return false
		}
		return g.Distance(x, y) >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyUpperZeroForIdentical(t *testing.T) {
	c := emd.LinearCost(8)
	g, err := NewGreedyUpper(c)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{0.2, 0.1, 0.05, 0.15, 0.1, 0.2, 0.1, 0.1}
	if got := g.Distance(x, x); got > 1e-12 {
		t.Errorf("greedy upper of identical histograms = %g, want 0", got)
	}
}

func TestGreedyUpperExactOnForcedFlow(t *testing.T) {
	c := emd.LinearCost(5)
	g, err := NewGreedyUpper(c)
	if err != nil {
		t.Fatal(err)
	}
	x := emd.Histogram{1, 0, 0, 0, 0}
	y := emd.Histogram{0, 0, 0, 0, 1}
	if got := g.Distance(x, y); math.Abs(got-4) > 1e-12 {
		t.Errorf("forced-flow greedy = %g, want 4", got)
	}
}

// TestGreedyUpperReasonablyTight: the average over random pairs should
// stay within a factor of 2 of the exact EMD on 1-D linear costs —
// loose enough to be robust, tight enough to catch a broken greedy.
func TestGreedyUpperReasonablyTight(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d = 16
	c := emd.LinearCost(d)
	g, err := NewGreedyUpper(c)
	if err != nil {
		t.Fatal(err)
	}
	var ratioSum float64
	n := 0
	for trial := 0; trial < 40; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		exact, err := emd.Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		if exact < 1e-9 {
			continue
		}
		ratioSum += g.Distance(x, y) / exact
		n++
	}
	avg := ratioSum / float64(n)
	t.Logf("greedy/exact average ratio: %.3f", avg)
	if avg > 2 {
		t.Errorf("greedy upper bound too loose: average ratio %.3f", avg)
	}
	if avg < 1 {
		t.Errorf("average ratio %.3f below 1 — not an upper bound", avg)
	}
}

func TestGreedyUpperClone(t *testing.T) {
	c := emd.LinearCost(6)
	g, err := NewGreedyUpper(c)
	if err != nil {
		t.Fatal(err)
	}
	clone := g.Clone()
	x := emd.Histogram{0.5, 0, 0.2, 0, 0.3, 0}
	y := emd.Histogram{0, 0.5, 0, 0.2, 0, 0.3}
	if a, b := g.Distance(x, y), clone.Distance(x, y); math.Abs(a-b) > 1e-12 {
		t.Errorf("clone disagrees: %g vs %g", a, b)
	}
}

func TestNewGreedyUpperValidation(t *testing.T) {
	if _, err := NewGreedyUpper(emd.CostMatrix{{0, -1}, {1, 0}}); err == nil {
		t.Error("accepted negative cost")
	}
}
