// The quantized-filter soundness battery. The quantized columnar
// scanner lives in internal/colscan (which imports this package), so
// these tests sit in the external lb_test package: same corpus
// directory, no import cycle.
package lb_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"emdsearch/internal/colscan"
	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
)

// decodeQuantCase derives a query, a small item set, a reduced
// dimensionality, and a block size from raw fuzz bytes. ok is false
// when the bytes cannot yield valid normalized histograms (too short,
// zero mass).
func decodeQuantCase(data []byte) (q emd.Histogram, items []emd.Histogram, d, dr, block int, ok bool) {
	if len(data) < 4 {
		return nil, nil, 0, 0, 0, false
	}
	d = int(data[0])%9 + 4  // 4..12
	dr = int(data[1])%d + 1 // 1..d
	n := int(data[2])%6 + 1 // 1..6 items
	block = int(data[3])%7 + 1
	data = data[4:]
	if len(data) < (n+1)*d {
		return nil, nil, 0, 0, 0, false
	}
	decode := func(raw []byte) (emd.Histogram, bool) {
		h := make(emd.Histogram, len(raw))
		var sum float64
		for i, b := range raw {
			h[i] = float64(b)
			sum += h[i]
		}
		if sum < 1e-9 {
			return nil, false
		}
		for i := range h {
			h[i] /= sum
		}
		return h, true
	}
	q, ok = decode(data[:d])
	if !ok {
		return nil, nil, 0, 0, 0, false
	}
	for i := 0; i < n; i++ {
		h, hok := decode(data[(i+1)*d : (i+2)*d])
		if !hok {
			return nil, nil, 0, 0, 0, false
		}
		items = append(items, h)
	}
	return q, items, d, dr, block, true
}

// maxEntry is the largest ground-distance entry — the Cmax the
// quantization margin is calibrated against.
func maxEntry(c emd.CostMatrix) float64 {
	var m float64
	for _, row := range c {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// checkQuantChain asserts, for one query against one item set, the
// ordering the engine's whole filter cascade rests on:
//
//	0 <= quantized-Red-IM <= Red-IM <= Red-EMD <= exact EMD
//
// and that the quantized scanner's two evaluation paths (batched
// ScanAll, per-item DistanceAt) agree bit-for-bit — the engine uses
// ScanAll for the eager base scan and DistanceAt for lazy re-checks,
// so any divergence would make stage accounting or chained maxima
// layout-dependent.
func checkQuantChain(t *testing.T, q emd.Histogram, items []emd.Histogram, d, dr, block int) {
	t.Helper()
	cost := emd.LinearCost(d)
	red, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	redEMD, err := core.NewReducedEMD(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	im, err := lb.NewIM(redEMD.Cost())
	if err != nil {
		t.Fatal(err)
	}
	reduced := make([]emd.Histogram, len(items))
	for i, h := range items {
		reduced[i] = red.Apply(h)
	}
	cols, err := colscan.Build(len(items), dr, block, func(i int, dst []float64) {
		copy(dst, reduced[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	qz, err := colscan.Quantize(cols, maxEntry(redEMD.Cost()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := colscan.NewQuantScanner(im, qz)
	if err != nil {
		t.Fatal(err)
	}
	qr := red.Apply(q)
	out := make([]float64, len(items))
	if got := sc.ScanAll(qr, out); got != len(items) {
		t.Fatalf("ScanAll scanned %d of %d items", got, len(items))
	}
	for i, h := range items {
		exact, err := emd.Distance(q, h, cost)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * (1 + exact)
		redDist := redEMD.DistanceReduced(qr, reduced[i])
		imDist := im.Distance(qr, reduced[i])
		qd := out[i]
		if qd < 0 {
			t.Fatalf("item %d: quantized bound %g < 0 (d=%d d'=%d block=%d)", i, qd, d, dr, block)
		}
		if qd > imDist+tol {
			t.Fatalf("item %d: quantized bound %g exceeds Red-IM %g (d=%d d'=%d block=%d)", i, qd, imDist, d, dr, block)
		}
		if imDist > redDist+tol {
			t.Fatalf("item %d: Red-IM %g exceeds Red-EMD %g", i, imDist, redDist)
		}
		if redDist > exact+tol {
			t.Fatalf("item %d: Red-EMD %g exceeds exact EMD %g", i, redDist, exact)
		}
		if da := sc.DistanceAt(qr, i); math.Float64bits(da) != math.Float64bits(qd) {
			t.Fatalf("item %d: DistanceAt %g != ScanAll %g (bit divergence)", i, da, qd)
		}
	}
}

// FuzzQuantizedLowerBound fuzzes the full certified chain
// quantized-Red-IM <= Red-IM <= Red-EMD <= EMD over arbitrary
// histogram sets, reduced dimensionalities, and block geometries. A
// violation of the first inequality is exactly the failure mode the
// quantization margin exists to rule out: the first filter stage would
// overshoot a true distance and silently drop a correct answer.
func FuzzQuantizedLowerBound(f *testing.F) {
	// Single item, spike query vs spike item at the far bin.
	f.Add([]byte{0, 0, 0, 0, 255, 0, 0, 0, 0, 0, 0, 255})
	// Near-uniform pair, d' = 2.
	f.Add([]byte{4, 2, 0, 1, 10, 20, 30, 40, 50, 60, 70, 80, 80, 70, 60, 50, 40, 30, 20, 10})
	// Sparse histograms with many zero bins, several items (d=8, n=3).
	f.Add([]byte{4, 3, 2, 4,
		1, 1, 1, 1, 1, 1, 1, 1,
		200, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 0, 200, 0, 0, 0, 1,
		0, 255, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, items, d, dr, block, ok := decodeQuantCase(data)
		if !ok {
			t.Skip()
		}
		checkQuantChain(t, q, items, d, dr, block)
	})
}

// quantShape generates one random normalized histogram of a given
// shape class: near-uniform, sparse (most bins zero), or single-spike
// with trace mass elsewhere. These are the distributions where
// floor-quantization error concentrates differently — uniform spreads
// it over every bin, spikes push whole blocks to extreme scales.
func quantShape(rng *rand.Rand, d, shape int) emd.Histogram {
	h := make(emd.Histogram, d)
	switch shape % 3 {
	case 0: // near-uniform
		for i := range h {
			h[i] = 1 + 0.1*rng.Float64()
		}
	case 1: // sparse: ~2 live bins
		h[rng.Intn(d)] = rng.Float64() + 0.1
		h[rng.Intn(d)] += rng.Float64() + 0.1
	default: // single spike plus trace mass
		for i := range h {
			h[i] = 1e-6 * rng.Float64()
		}
		h[rng.Intn(d)] = 1
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// quantCase is a randomly generated chain-check instance; its
// Generate method makes it a testing/quick value.
type quantCase struct {
	q     emd.Histogram
	items []emd.Histogram
	d     int
	dr    int
	block int
}

func (quantCase) Generate(rng *rand.Rand, _ int) reflect.Value {
	d := rng.Intn(9) + 4
	c := quantCase{
		d:     d,
		dr:    rng.Intn(d) + 1,
		block: rng.Intn(7) + 1,
		q:     quantShape(rng, d, rng.Intn(3)),
	}
	n := rng.Intn(6) + 1
	for i := 0; i < n; i++ {
		c.items = append(c.items, quantShape(rng, d, rng.Intn(3)))
	}
	return reflect.ValueOf(c)
}

// TestQuickQuantizedChain is the testing/quick form of the fuzz
// property: many random shape-stratified instances per run, checked in
// ordinary `go test` (the fuzzer only replays its corpus there).
func TestQuickQuantizedChain(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(137)),
	}
	if err := quick.Check(func(c quantCase) bool {
		checkQuantChain(t, c.q, c.items, c.d, c.dr, c.block)
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
