package shardset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var errPrimaryDown = errors.New("primary down")

func failoverCfg() Config {
	return Config{
		MaxAttempts: 1,
		Backoff:     &Backoff{Base: time.Microsecond, Cap: time.Microsecond, Seed: 1},
	}
}

// TestScatterFailoverOnHardFault: a hard primary fault re-dispatches
// to the follower; the outcome resolves successfully, marked
// FailedOver, and the primary's fault still lands in health.
func TestScatterFailoverOnHardFault(t *testing.T) {
	health := []*Health{NewHealth(3, time.Minute)}
	var followerCalls atomic.Int64
	out := ScatterFailover(context.Background(), 1, health, failoverCfg(),
		func(ctx context.Context, shard, try int) (string, error) {
			return "", errPrimaryDown
		},
		func(ctx context.Context, shard int) (string, error) {
			followerCalls.Add(1)
			return fmt.Sprintf("follower-%d", shard), nil
		})
	o := out[0]
	if o.Err != nil || !o.FailedOver || o.Value != "follower-0" {
		t.Fatalf("outcome %+v, want failed-over follower answer", o)
	}
	if o.Skipped || o.Tries != 1 {
		t.Fatalf("outcome %+v: failover must not count as a try or a skip", o)
	}
	if followerCalls.Load() != 1 {
		t.Fatalf("follower called %d times, want 1", followerCalls.Load())
	}
	if st := health[0].Stats(); st.Failures != 1 {
		t.Fatalf("primary fault not recorded: %+v", st)
	}
}

// TestScatterFailoverOnQuarantineSkip: a quarantined shard's slice is
// served by the follower without touching the primary.
func TestScatterFailoverOnQuarantineSkip(t *testing.T) {
	h := NewHealth(1, time.Minute)
	h.Fault(errPrimaryDown) // trip the quarantine
	if !h.Quarantined() {
		t.Fatal("setup: shard not quarantined")
	}
	var primaryCalls atomic.Int64
	out := ScatterFailover(context.Background(), 1, []*Health{h}, failoverCfg(),
		func(ctx context.Context, shard, try int) (string, error) {
			primaryCalls.Add(1)
			return "primary", nil
		},
		func(ctx context.Context, shard int) (string, error) {
			return "follower", nil
		})
	o := out[0]
	if !o.Skipped || !o.FailedOver || o.Err != nil || o.Value != "follower" {
		t.Fatalf("outcome %+v, want skipped primary served by follower", o)
	}
	if primaryCalls.Load() != 0 {
		t.Fatal("quarantined primary was dispatched to")
	}
}

// TestScatterFailoverFailureAnnotates: when the follower also fails,
// the outcome keeps the primary's error identity (errors.Is) with the
// failover failure annotated.
func TestScatterFailoverFailureAnnotates(t *testing.T) {
	out := ScatterFailover(context.Background(), 1, nil, failoverCfg(),
		func(ctx context.Context, shard, try int) (string, error) {
			return "", errPrimaryDown
		},
		func(ctx context.Context, shard int) (string, error) {
			return "", errors.New("follower also down")
		})
	o := out[0]
	if o.FailedOver || o.Err == nil {
		t.Fatalf("outcome %+v, want dual failure", o)
	}
	if !errors.Is(o.Err, errPrimaryDown) {
		t.Fatalf("error lost primary identity: %v", o.Err)
	}
	if got := o.Err.Error(); !strings.Contains(got, "failover") || !strings.Contains(got, "follower also down") {
		t.Fatalf("failover failure not annotated: %v", got)
	}
}

// TestScatterFailoverSkippedForNonFaulty: errors the Faulty classifier
// exempts (backpressure, caller deadline) must not fail over — a
// replica would be hit by the same overload or arrive too late.
func TestScatterFailoverSkippedForNonFaulty(t *testing.T) {
	var followerCalls atomic.Int64
	cfg := failoverCfg()
	cfg.Faulty = func(err error) bool { return false }
	out := ScatterFailover(context.Background(), 1, nil, cfg,
		func(ctx context.Context, shard, try int) (string, error) {
			return "", errPrimaryDown
		},
		func(ctx context.Context, shard int) (string, error) {
			followerCalls.Add(1)
			return "follower", nil
		})
	if out[0].FailedOver || out[0].Err == nil || followerCalls.Load() != 0 {
		t.Fatalf("non-faulty error failed over: %+v (follower calls %d)", out[0], followerCalls.Load())
	}
}

// TestScatterFailoverPanicContained: a panicking follower degrades to
// a dual failure, never a crash.
func TestScatterFailoverPanicContained(t *testing.T) {
	out := ScatterFailover(context.Background(), 1, nil, failoverCfg(),
		func(ctx context.Context, shard, try int) (string, error) {
			return "", errPrimaryDown
		},
		func(ctx context.Context, shard int) (string, error) {
			panic("follower exploded")
		})
	o := out[0]
	if o.FailedOver || o.Err == nil || !errors.Is(o.Err, errPrimaryDown) {
		t.Fatalf("outcome %+v, want contained dual failure", o)
	}
	if !strings.Contains(o.Err.Error(), "panicked") {
		t.Fatalf("panic not surfaced in error: %v", o.Err)
	}
}

// TestHealthTransitionLifecycle walks a shard through closed → open →
// half-open → closed and asserts the transition clock tracks each
// edge.
func TestHealthTransitionLifecycle(t *testing.T) {
	h := NewHealth(2, 20*time.Millisecond)
	st := h.Stats()
	if st.State != "closed" || st.LastTransition.IsZero() {
		t.Fatalf("fresh tracker: %+v", st)
	}
	born := st.LastTransition
	time.Sleep(2 * time.Millisecond)
	if st = h.Stats(); st.TimeInState <= 0 {
		t.Fatalf("time-in-state not advancing: %+v", st)
	}
	if !st.LastTransition.Equal(born) {
		t.Fatal("transition clock moved without a state change")
	}

	h.Fault(errPrimaryDown)
	h.Fault(errPrimaryDown) // trips open
	st = h.Stats()
	if st.State != "open" || !st.LastTransition.After(born) {
		t.Fatalf("after trip: %+v (born %v)", st, born)
	}
	tripped := st.LastTransition

	time.Sleep(25 * time.Millisecond) // past cooldown: next Allow probes
	if !h.Allow() {
		t.Fatal("cooled-down shard denied its probe")
	}
	st = h.Stats()
	if st.State != "half-open" || !st.LastTransition.After(tripped) {
		t.Fatalf("probing: %+v", st)
	}
	probing := st.LastTransition

	h.Success()
	st = h.Stats()
	if st.State != "closed" || st.LastTransition.Before(probing) {
		t.Fatalf("after recovery: %+v", st)
	}
	if st.Quarantines != 1 {
		t.Fatalf("quarantine count %d, want 1", st.Quarantines)
	}
}
