package shardset

import (
	"context"
	"testing"
	"time"
)

// These tests pin the backoff bounds the scatter retry loop and the
// replica shipper rely on at the edges of the config space: shift
// overflow far past any sane attempt count, caps below the base,
// server-supplied floors above the cap, and zero/negative configs.

// TestBackoffOverflowPastShiftPoint: doubling a duration 63+ times
// wraps int64; every attempt past the overflow point must clamp to
// Cap, never go zero or negative.
func TestBackoffOverflowPastShiftPoint(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: time.Second, Jitter: 0, Seed: 1}
	for _, attempt := range []int{62, 63, 64, 100, 1 << 20} {
		if got := b.Nominal(attempt); got != time.Second {
			t.Fatalf("Nominal(%d) = %v, want cap %v", attempt, got, time.Second)
		}
	}
	// A base already huge enough that the FIRST doubling overflows.
	huge := &Backoff{Base: time.Duration(1) << 62, Cap: time.Second, Jitter: 0, Seed: 1}
	if got := huge.Nominal(1); got != time.Second {
		t.Fatalf("huge base Nominal(1) = %v, want cap", got)
	}
	if got := huge.Nominal(2); got != time.Second {
		t.Fatalf("huge base Nominal(2) = %v, want cap", got)
	}
}

// TestBackoffCapBelowBase: a cap smaller than the base clamps every
// attempt — including attempt 0 — to the cap.
func TestBackoffCapBelowBase(t *testing.T) {
	// Jitter < 0 clamps to 0 (an exact 0 means "default to 0.5"), so
	// Delay must equal Nominal here.
	b := &Backoff{Base: 100 * time.Millisecond, Cap: 10 * time.Millisecond, Jitter: -1, Seed: 1}
	for attempt := 0; attempt < 5; attempt++ {
		if got := b.Nominal(attempt); got != 10*time.Millisecond {
			t.Fatalf("Nominal(%d) = %v, want cap 10ms", attempt, got)
		}
		if got := b.Delay(attempt); got != 10*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want cap 10ms (jitter clamped to 0)", attempt, got)
		}
	}
}

// TestBackoffNegativeConfigDefaults: negative Base/Cap take the same
// defaults as zero — the scatter loop must never compute from a
// negative schedule.
func TestBackoffNegativeConfigDefaults(t *testing.T) {
	b := &Backoff{Base: -time.Second, Cap: -time.Second, Jitter: 0.0001, Seed: 1}
	if got := b.Nominal(0); got != time.Millisecond {
		t.Fatalf("negative base Nominal(0) = %v, want default 1ms", got)
	}
	for attempt := 0; attempt < 64; attempt++ {
		n := b.Nominal(attempt)
		if n <= 0 || n > 250*time.Millisecond {
			t.Fatalf("negative config Nominal(%d) = %v, out of (0, 250ms]", attempt, n)
		}
		d := b.Delay(attempt)
		if d < 0 || d > n {
			t.Fatalf("negative config Delay(%d) = %v, nominal %v", attempt, d, n)
		}
	}
}

// TestBackoffJitterClamped: Jitter outside [0, 1] is clamped, keeping
// Delay inside [0, Nominal].
func TestBackoffJitterClamped(t *testing.T) {
	over := &Backoff{Base: 8 * time.Millisecond, Cap: time.Second, Jitter: 3.5, Seed: 1}
	for attempt := 0; attempt < 8; attempt++ {
		n := over.Nominal(attempt)
		d := over.Delay(attempt)
		if d < 0 || d > n {
			t.Fatalf("jitter>1 Delay(%d) = %v outside [0, %v]", attempt, d, n)
		}
	}
	under := &Backoff{Base: 8 * time.Millisecond, Cap: time.Second, Jitter: -2, Seed: 1}
	for attempt := 0; attempt < 8; attempt++ {
		// Clamped to 0: the delay is exactly the nominal.
		if d, n := under.Delay(attempt), under.Nominal(attempt); d != n {
			t.Fatalf("jitter<0 Delay(%d) = %v, want nominal %v", attempt, d, n)
		}
	}
}

// TestBackoffNegativeAttempt: attempts < 0 count as attempt 0.
func TestBackoffNegativeAttempt(t *testing.T) {
	b := &Backoff{Base: 4 * time.Millisecond, Cap: time.Second, Jitter: 0, Seed: 1}
	if got := b.Nominal(-5); got != 4*time.Millisecond {
		t.Fatalf("Nominal(-5) = %v, want base", got)
	}
}

// TestBackoffSleepFloorAboveCap: a server-supplied RetryAfter floor
// larger than the cap must win — the server's guidance is a lower
// bound on when a retry can succeed, and truncating it to the cap
// would guarantee a wasted attempt.
func TestBackoffSleepFloorAboveCap(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Cap: 2 * time.Microsecond, Jitter: 0, Seed: 1}
	floor := 30 * time.Millisecond
	start := time.Now()
	if !b.Sleep(context.Background(), 0, floor) {
		t.Fatal("Sleep reported cancellation without one")
	}
	if elapsed := time.Since(start); elapsed < floor {
		t.Fatalf("Sleep honored only %v of a %v floor above the cap", elapsed, floor)
	}
}

// TestBackoffSleepTinyDelay: a nanosecond-scale schedule (after
// clamping) still sleeps and returns promptly, and a pre-cancelled
// context stops a long sleep immediately.
func TestBackoffSleepTinyDelay(t *testing.T) {
	b := &Backoff{Base: time.Nanosecond, Cap: time.Nanosecond, Jitter: -1, Seed: 1}
	if !b.Sleep(context.Background(), 0, 0) {
		t.Fatal("Sleep with live context reported cancellation")
	}
	long := &Backoff{Base: time.Hour, Cap: time.Hour, Jitter: 0, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if long.Sleep(ctx, 0, 0) {
		t.Fatal("Sleep with cancelled context reported the delay elapsed")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled Sleep did not return promptly")
	}
}
