package shardset

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// ErrQuarantined marks a dispatch suppressed because the shard's
// health tracker holds it in quarantine; no attempt was made.
var ErrQuarantined = errors.New("shardset: shard quarantined")

// PanicError reports a panic recovered from a shard call. The scatter
// executor converts it into an ordinary per-shard failure so one
// panicking shard can never take down the query, the process, or the
// other shards' answers.
type PanicError struct {
	Shard int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("shardset: shard %d panicked: %v", e.Shard, e.Value)
}

// Config is the scatter executor's per-query policy.
type Config struct {
	// MaxAttempts bounds the dispatch attempts per shard, counting the
	// first try and any hedges; < 1 defaults to 2 (one retry or one
	// hedge).
	MaxAttempts int
	// Backoff paces retries; nil uses a default jittered 1ms..250ms
	// schedule.
	Backoff *Backoff
	// HedgeAfter, when > 0, re-dispatches a shard that has not
	// answered after this delay and takes whichever attempt finishes
	// first. The straggler keeps running under a cancelled context
	// (cooperative engines stop within microseconds) and its result is
	// discarded. Hedges consume MaxAttempts.
	HedgeAfter time.Duration
	// Retryable classifies an attempt error: retry reports whether a
	// fresh attempt is worthwhile (transient overload, not a bad
	// query), and after is a server-supplied floor for the backoff
	// delay (e.g. ErrOverloaded's RetryAfter). nil never retries.
	Retryable func(err error) (retry bool, after time.Duration)
	// Faulty reports whether an error should count against the shard's
	// health (quarantine threshold). nil counts every error. Shedding
	// under load, for example, is backpressure — not shard death — and
	// ought not to quarantine.
	Faulty func(err error) bool
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 2
	}
	if c.Backoff == nil {
		c.Backoff = &Backoff{}
	}
	return c
}

// Outcome is one shard's final disposition for one scatter.
type Outcome[T any] struct {
	Shard int
	// Value is the shard's answer when Err is nil.
	Value T
	// Err is the last attempt's error; nil on success. ErrQuarantined
	// when the dispatch was suppressed without an attempt.
	Err error
	// Tries counts dispatch attempts actually launched, including
	// hedges; 0 when quarantined. A failover re-dispatch is not a try
	// — it goes to a different replica (see FailedOver).
	Tries int
	// Retries counts backoff-paced re-attempts after a retryable
	// error.
	Retries int
	// Hedged reports a hedge was launched; HedgeWon that the hedge,
	// not the primary, produced the accepted result.
	Hedged, HedgeWon bool
	// Skipped reports the quarantine suppressed the dispatch.
	Skipped bool
	// FailedOver reports Value came from the shard's follower replica
	// after the primary hard-faulted or was quarantined.
	FailedOver bool
}

// Failover re-dispatches one shard's query to its follower replica.
// The scatter executor invokes it only after the primary's attempt
// loop resolved to a hard fault (an error Faulty counts against
// health) or the quarantine suppressed the dispatch — never for
// retryable overload or the caller's own context expiry, where a
// second replica would either be hit by the same backpressure or
// arrive past the deadline anyway.
type Failover[T any] func(ctx context.Context, shard int) (T, error)

// Scatter dispatches call to shards 0..n-1 concurrently and gathers
// every outcome. Each shard runs its own attempt loop: quarantine
// check, panic-contained call, retry with jittered backoff on
// retryable errors (within ctx's budget), and optional hedged
// re-dispatch of stragglers. Scatter returns when every shard's loop
// has resolved. The deadline bound is cooperative: provided call
// honors its context's cancellation (the engine query paths poll it
// once per candidate and once per simplex pivot), each loop resolves
// no later than ctx's deadline plus one cancellation latency. A call
// that ignores its context — a stuck syscall, a hook that never
// checks ctx — blocks its shard's loop, and therefore the gather,
// until it returns; Scatter deliberately waits rather than abandon
// it, because a cooperative call that outlives its deadline by one
// poll interval is how certified degraded partial answers arrive.
//
// health may be nil (no quarantine tracking) or hold one tracker per
// shard.
func Scatter[T any](ctx context.Context, n int, health []*Health, cfg Config, call func(ctx context.Context, shard, try int) (T, error)) []Outcome[T] {
	return ScatterFailover[T](ctx, n, health, cfg, call, nil)
}

// ScatterFailover is Scatter with a follower re-dispatch: when a
// shard's loop resolves to a hard fault or a quarantine skip and
// failover is non-nil, the shard's slice is served by its replica
// instead of being written off. A failover success clears the
// outcome's error and sets FailedOver; a failover failure annotates
// the primary's error (errors.Is still matches the primary fault).
// Health tracking is unaffected — the primary's fault is recorded
// either way, so quarantine and probing see the true primary state.
func ScatterFailover[T any](ctx context.Context, n int, health []*Health, cfg Config, call func(ctx context.Context, shard, try int) (T, error), failover Failover[T]) []Outcome[T] {
	cfg = cfg.withDefaults()
	out := make([]Outcome[T], n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var h *Health
			if health != nil {
				h = health[s]
			}
			out[s] = runShard(ctx, s, h, cfg, call, failover)
		}(s)
	}
	wg.Wait()
	return out
}

// runShard is one shard's attempt loop.
func runShard[T any](ctx context.Context, shard int, h *Health, cfg Config, call func(ctx context.Context, shard, try int) (T, error), failover Failover[T]) Outcome[T] {
	out := Outcome[T]{Shard: shard}
	if h != nil && !h.Allow() {
		out.Skipped = true
		out.Err = ErrQuarantined
		tryFailover(ctx, shard, failover, &out)
		return out
	}
	try := 0
	for {
		v, err := hedgedAttempt(ctx, shard, &try, cfg, call, &out)
		if err == nil {
			if h != nil {
				h.Success()
			}
			out.Value = v
			out.Err = nil
			return out
		}
		out.Err = err
		if cfg.Retryable != nil && try < cfg.MaxAttempts && ctx.Err() == nil {
			if retry, after := cfg.Retryable(err); retry {
				if cfg.Backoff.Sleep(ctx, out.Retries, after) {
					out.Retries++
					continue
				}
			}
		}
		if cfg.Faulty == nil || cfg.Faulty(err) {
			if h != nil {
				h.Fault(err)
			}
			tryFailover(ctx, shard, failover, &out)
		}
		return out
	}
}

// tryFailover re-dispatches a failed shard to its follower, panic-
// contained like any other attempt. No-op when no failover is wired
// or the query's own budget is already spent.
func tryFailover[T any](ctx context.Context, shard int, failover Failover[T], out *Outcome[T]) {
	if failover == nil || ctx.Err() != nil {
		return
	}
	v, err := safeCall(ctx, shard, out.Tries, func(ctx context.Context, shard, _ int) (T, error) {
		return failover(ctx, shard)
	})
	if err != nil {
		out.Err = fmt.Errorf("%w (failover: %v)", out.Err, err)
		return
	}
	out.Value = v
	out.Err = nil
	out.FailedOver = true
}

// hedgedAttempt launches one attempt and, when configured and the
// attempt budget allows, a single hedge after HedgeAfter; the first
// success wins and the loser's context is cancelled. With no success,
// it returns after all launched attempts finish (each bounded by ctx
// only insofar as call honors its cancellation — see Scatter's doc).
// Panics in call are contained to a PanicError.
func hedgedAttempt[T any](ctx context.Context, shard int, try *int, cfg Config, call func(ctx context.Context, shard, try int) (T, error), out *Outcome[T]) (T, error) {
	type res struct {
		v   T
		err error
		try int
	}
	primary := *try
	*try++
	out.Tries++
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	ch := make(chan res, 2) // buffered: a losing straggler never blocks
	launch := func(t int) {
		go func() {
			v, err := safeCall(actx, shard, t, call)
			ch <- res{v, err, t}
		}()
	}
	launch(primary)
	inflight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if cfg.HedgeAfter > 0 && *try < cfg.MaxAttempts {
		hedgeTimer = time.NewTimer(cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var lastErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.try != primary {
					out.HedgeWon = true
				}
				return r.v, nil
			}
			lastErr = r.err
			if inflight == 0 {
				var zero T
				return zero, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			hedge := *try
			*try++
			out.Tries++
			out.Hedged = true
			launch(hedge)
			inflight++
		}
	}
}

// safeCall invokes call with panic containment.
func safeCall[T any](ctx context.Context, shard, try int, call func(ctx context.Context, shard, try int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Shard: shard, Value: p, Stack: debug.Stack()}
		}
	}()
	return call(ctx, shard, try)
}

// CarveBudget derives the per-shard query context from the caller's:
// with a caller deadline, the shard budget ends `reserve` before it so
// the gather and merge finish inside the caller's deadline (but never
// less than half the remaining time, so a tight deadline still reaches
// the shards); shardTimeout, when > 0, additionally caps any single
// scatter — the defense against a hung shard when the caller gave no
// deadline at all.
func CarveBudget(ctx context.Context, reserve, shardTimeout time.Duration) (context.Context, context.CancelFunc) {
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		budget := remaining - reserve
		if budget < remaining/2 {
			budget = remaining / 2
		}
		if shardTimeout > 0 && budget > shardTimeout {
			budget = shardTimeout
		}
		return context.WithTimeout(ctx, budget)
	}
	if shardTimeout > 0 {
		return context.WithTimeout(ctx, shardTimeout)
	}
	return context.WithCancel(ctx)
}
