// Package shardset holds the fault-tolerance machinery behind the
// public ShardSet type: jittered capped retry backoff, a per-shard
// health tracker with quarantine and probing re-admission, and a
// scatter executor that dispatches one query to many shards under
// carved deadline budgets with retries, optional hedging, and panic
// containment.
//
// The package is deliberately ignorant of EMD search: it moves
// opaque results around so its policies can be unit-tested (and bound
// proofs pinned) without building an engine.
package shardset

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered, capped exponential retry delays. The
// nominal delay of attempt i (0-based) is min(Cap, Base·2^i); the
// returned delay is drawn uniformly from [nominal·(1−Jitter), nominal].
// Jitter decorrelates retries across shards and callers — N shards
// reopening their WALs or retrying an overloaded peer after the same
// fault would otherwise stampede in lockstep at exactly Base, 2·Base,
// 4·Base, ...
//
// A Backoff is safe for concurrent use.
type Backoff struct {
	// Base is the nominal delay of attempt 0; <= 0 defaults to 1ms.
	Base time.Duration
	// Cap bounds the nominal delay; <= 0 defaults to 250ms.
	Cap time.Duration
	// Jitter is the fraction of the nominal delay randomized away,
	// in [0, 1]; the delay for attempt i is uniform in
	// [nominal·(1−Jitter), nominal]. Values outside [0, 1] are
	// clamped; an untouched zero value defaults to 0.5.
	Jitter float64
	// Seed fixes the jitter stream for reproducible tests; 0 seeds
	// from the clock at first use.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (b *Backoff) init() {
	b.once.Do(func() {
		if b.Base <= 0 {
			b.Base = time.Millisecond
		}
		if b.Cap <= 0 {
			b.Cap = 250 * time.Millisecond
		}
		if b.Jitter == 0 {
			b.Jitter = 0.5
		}
		if b.Jitter < 0 {
			b.Jitter = 0
		}
		if b.Jitter > 1 {
			b.Jitter = 1
		}
		seed := b.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		b.rng = rand.New(rand.NewSource(seed))
	})
}

// Nominal returns the un-jittered delay of attempt i: min(Cap,
// Base·2^i). Attempts < 0 count as 0.
func (b *Backoff) Nominal(attempt int) time.Duration {
	b.init()
	if attempt < 0 {
		attempt = 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= b.Cap || d <= 0 { // d <= 0 guards shift overflow
			return b.Cap
		}
	}
	if d > b.Cap {
		d = b.Cap
	}
	return d
}

// Delay returns the jittered delay for attempt i, uniform in
// [Nominal·(1−Jitter), Nominal].
func (b *Backoff) Delay(attempt int) time.Duration {
	b.init()
	nominal := b.Nominal(attempt)
	if b.Jitter == 0 {
		return nominal
	}
	b.mu.Lock()
	f := b.rng.Float64()
	b.mu.Unlock()
	lo := float64(nominal) * (1 - b.Jitter)
	return time.Duration(lo + f*(float64(nominal)-lo))
}

// Sleep blocks for the attempt's jittered delay (at least floor, when
// a server supplied retry-after guidance) or until ctx is done,
// whichever comes first. It reports whether the full delay elapsed;
// false means the context was cancelled and the caller should stop
// retrying.
func (b *Backoff) Sleep(ctx context.Context, attempt int, floor time.Duration) bool {
	d := b.Delay(attempt)
	if floor > d {
		d = floor
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
