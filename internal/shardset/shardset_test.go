package shardset

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffBounds pins the delay schedule: attempt i's delay lies in
// [nominal·(1−Jitter), nominal] with nominal = min(Cap, Base·2^i), for
// every attempt and across many draws. This is the thundering-herd
// contract — retries are capped AND decorrelated.
func TestBackoffBounds(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Jitter: 0.5, Seed: 42}
	wantNominal := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for attempt, nominal := range wantNominal {
		if got := b.Nominal(attempt); got != nominal {
			t.Fatalf("Nominal(%d) = %v, want %v", attempt, got, nominal)
		}
		lo := time.Duration(float64(nominal) * 0.5)
		for draw := 0; draw < 200; draw++ {
			d := b.Delay(attempt)
			if d < lo || d > nominal {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, lo, nominal)
			}
		}
	}
}

// TestBackoffJitterVaries asserts the delays are actually randomized:
// 50 draws of the same attempt must not all collapse to one value.
func TestBackoffJitterVaries(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: time.Second, Jitter: 0.5, Seed: 7}
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[b.Delay(3)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("50 jittered draws produced only %d distinct delays", len(seen))
	}
}

// TestBackoffZeroValueDefaults pins the defaults the production path
// relies on: 1ms base, 250ms cap, half jitter.
func TestBackoffZeroValueDefaults(t *testing.T) {
	b := &Backoff{Seed: 1}
	if got := b.Nominal(0); got != time.Millisecond {
		t.Fatalf("default base = %v, want 1ms", got)
	}
	if got := b.Nominal(30); got != 250*time.Millisecond {
		t.Fatalf("default cap = %v, want 250ms", got)
	}
	d := b.Delay(30)
	if d < 125*time.Millisecond || d > 250*time.Millisecond {
		t.Fatalf("default jitter put Delay(30) = %v outside [125ms, 250ms]", d)
	}
}

// TestBackoffNoOverflow: very large attempt numbers must clamp to Cap,
// not wrap negative.
func TestBackoffNoOverflow(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: time.Second, Jitter: 0, Seed: 1}
	if got := b.Nominal(200); got != time.Second {
		t.Fatalf("Nominal(200) = %v, want cap 1s", got)
	}
}

// TestBackoffSleepHonorsFloor: a server-supplied retry-after below the
// jittered delay leaves the delay alone; above it, the floor wins.
func TestBackoffSleepHonorsFloor(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Cap: 2 * time.Microsecond, Jitter: 0, Seed: 1}
	start := time.Now()
	if !b.Sleep(context.Background(), 0, 20*time.Millisecond) {
		t.Fatal("Sleep returned false without cancellation")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms floor", elapsed)
	}
}

// TestBackoffSleepCancels: a cancelled context cuts the sleep short
// and reports false.
func TestBackoffSleepCancels(t *testing.T) {
	b := &Backoff{Base: time.Minute, Cap: time.Minute, Jitter: 0, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	if b.Sleep(ctx, 0, 0) {
		t.Fatal("Sleep reported full delay despite cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled sleep took %v", elapsed)
	}
}

// TestHealthQuarantineLifecycle drives the full quarantine state
// machine: consecutive faults open it, Allow suppresses dispatch,
// cooldown admits one probe, probe success closes it.
func TestHealthQuarantineLifecycle(t *testing.T) {
	h := NewHealth(3, 20*time.Millisecond)
	errBoom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if !h.Allow() {
			t.Fatalf("fault %d: Allow = false before threshold", i)
		}
		h.Fault(errBoom)
	}
	if !h.Quarantined() {
		t.Fatal("not quarantined after 3 consecutive faults")
	}
	if h.Allow() {
		t.Fatal("Allow admitted a dispatch while quarantined")
	}
	st := h.Stats()
	if st.State != "open" || st.Failures != 3 || st.Quarantines != 1 || st.Skips != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastError != "boom" {
		t.Fatalf("LastError = %q", st.LastError)
	}

	time.Sleep(25 * time.Millisecond)
	if !h.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if h.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	h.Success()
	if h.State() != "closed" {
		t.Fatalf("state after probe success = %s, want closed", h.State())
	}
	if !h.Allow() {
		t.Fatal("healthy shard not admitted after re-admission")
	}
}

// TestHealthSuccessResetsStreak: interleaved successes keep the shard
// off quarantine no matter how many total faults accumulate.
func TestHealthSuccessResetsStreak(t *testing.T) {
	h := NewHealth(3, time.Minute)
	for i := 0; i < 10; i++ {
		h.Fault(errors.New("x"))
		h.Fault(errors.New("x"))
		h.Success()
	}
	if h.Quarantined() {
		t.Fatal("quarantined despite success resetting every streak")
	}
}

// TestScatterAllHealthy: every shard answers, outcomes are positional,
// no retries or hedges fire.
func TestScatterAllHealthy(t *testing.T) {
	out := Scatter(context.Background(), 4, nil, Config{}, func(_ context.Context, shard, try int) (int, error) {
		return shard * 10, nil
	})
	for s, o := range out {
		if o.Err != nil || o.Value != s*10 || o.Tries != 1 || o.Retries != 0 || o.Hedged {
			t.Fatalf("shard %d outcome = %+v", s, o)
		}
	}
}

// TestScatterRetryHonorsRetryAfter: a transiently failing shard is
// retried after at least the server-supplied floor and then succeeds.
func TestScatterRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var firstFail, retryAt time.Time
	cfg := Config{
		MaxAttempts: 3,
		Backoff:     &Backoff{Base: time.Microsecond, Cap: time.Microsecond, Jitter: 0, Seed: 1},
		Retryable: func(err error) (bool, time.Duration) {
			return true, 15 * time.Millisecond
		},
	}
	out := Scatter(context.Background(), 1, nil, cfg, func(_ context.Context, shard, try int) (string, error) {
		if calls.Add(1) == 1 {
			firstFail = time.Now()
			return "", errors.New("overloaded")
		}
		retryAt = time.Now()
		return "ok", nil
	})
	o := out[0]
	if o.Err != nil || o.Value != "ok" || o.Retries != 1 || o.Tries != 2 {
		t.Fatalf("outcome = %+v", o)
	}
	if gap := retryAt.Sub(firstFail); gap < 15*time.Millisecond {
		t.Fatalf("retried after %v, want >= 15ms RetryAfter floor", gap)
	}
}

// TestScatterNonRetryableFailsFast: an error the classifier rejects is
// not retried and feeds the health tracker.
func TestScatterNonRetryableFailsFast(t *testing.T) {
	health := []*Health{NewHealth(1, time.Minute)}
	var calls atomic.Int32
	cfg := Config{
		MaxAttempts: 5,
		Retryable:   func(err error) (bool, time.Duration) { return false, 0 },
	}
	out := Scatter(context.Background(), 1, health, cfg, func(_ context.Context, shard, try int) (int, error) {
		calls.Add(1)
		return 0, errors.New("hard failure")
	})
	if calls.Load() != 1 {
		t.Fatalf("non-retryable error was attempted %d times", calls.Load())
	}
	if out[0].Err == nil {
		t.Fatal("error swallowed")
	}
	if !health[0].Quarantined() {
		t.Fatal("hard failure did not reach the health tracker")
	}
}

// TestScatterQuarantineSkips: a quarantined shard is skipped without a
// call; the others still answer.
func TestScatterQuarantineSkips(t *testing.T) {
	health := []*Health{NewHealth(1, time.Minute), NewHealth(1, time.Minute)}
	health[0].Fault(errors.New("dead"))
	var calls [2]atomic.Int32
	out := Scatter(context.Background(), 2, health, Config{}, func(_ context.Context, shard, try int) (int, error) {
		calls[shard].Add(1)
		return shard, nil
	})
	if !out[0].Skipped || !errors.Is(out[0].Err, ErrQuarantined) || calls[0].Load() != 0 {
		t.Fatalf("quarantined shard outcome = %+v, calls = %d", out[0], calls[0].Load())
	}
	if out[1].Err != nil || out[1].Value != 1 {
		t.Fatalf("healthy shard outcome = %+v", out[1])
	}
}

// TestScatterPanicContained: a panicking shard resolves to a typed
// PanicError; the process and sibling shards are unaffected.
func TestScatterPanicContained(t *testing.T) {
	out := Scatter(context.Background(), 2, nil, Config{}, func(_ context.Context, shard, try int) (int, error) {
		if shard == 0 {
			panic("injected shard fault")
		}
		return 7, nil
	})
	var pe *PanicError
	if !errors.As(out[0].Err, &pe) || pe.Shard != 0 || len(pe.Stack) == 0 {
		t.Fatalf("panic outcome = %+v", out[0])
	}
	if out[1].Err != nil || out[1].Value != 7 {
		t.Fatalf("sibling outcome = %+v", out[1])
	}
}

// TestScatterHedgeWins: a straggling primary is hedged and the fast
// hedge's answer is accepted; the primary is cancelled.
func TestScatterHedgeWins(t *testing.T) {
	cfg := Config{MaxAttempts: 2, HedgeAfter: 5 * time.Millisecond}
	var primaryCancelled atomic.Bool
	out := Scatter(context.Background(), 1, nil, cfg, func(ctx context.Context, shard, try int) (string, error) {
		if try == 0 {
			<-ctx.Done() // straggle until the winner cancels us
			primaryCancelled.Store(true)
			return "", ctx.Err()
		}
		return "hedge", nil
	})
	o := out[0]
	if o.Err != nil || o.Value != "hedge" || !o.Hedged || !o.HedgeWon || o.Tries != 2 {
		t.Fatalf("outcome = %+v", o)
	}
	// The straggler observes cancellation shortly after the win.
	deadline := time.Now().Add(time.Second)
	for !primaryCancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !primaryCancelled.Load() {
		t.Fatal("losing primary never saw cancellation")
	}
}

// TestScatterDeadlineBound: with a hung shard and a ctx deadline, the
// scatter resolves promptly after the deadline instead of hanging.
func TestScatterDeadlineBound(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	out := Scatter(ctx, 1, nil, Config{}, func(ctx context.Context, shard, try int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("scatter blocked %v past a 20ms deadline", elapsed)
	}
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("outcome err = %v", out[0].Err)
	}
}

// TestCarveBudget pins the carving rules: reserve comes off the top,
// but never more than half the remaining time; ShardTimeout caps the
// budget with or without a caller deadline.
func TestCarveBudget(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	sctx, scancel := CarveBudget(parent, 10*time.Millisecond, 0)
	defer scancel()
	dl, ok := sctx.Deadline()
	if !ok {
		t.Fatal("carved context lost the deadline")
	}
	if rem := time.Until(dl); rem > 92*time.Millisecond || rem < 40*time.Millisecond {
		t.Fatalf("carved remaining = %v, want ~90ms", rem)
	}

	// Reserve larger than the budget: keep half, not zero.
	tight, tcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer tcancel()
	sctx2, scancel2 := CarveBudget(tight, time.Hour, 0)
	defer scancel2()
	dl2, _ := sctx2.Deadline()
	if rem := time.Until(dl2); rem < 2*time.Millisecond || rem > 10*time.Millisecond {
		t.Fatalf("half-floor remaining = %v, want ~5ms", rem)
	}

	// No caller deadline: ShardTimeout alone bounds the dispatch.
	sctx3, scancel3 := CarveBudget(context.Background(), time.Minute, 30*time.Millisecond)
	defer scancel3()
	dl3, ok3 := sctx3.Deadline()
	if !ok3 {
		t.Fatal("ShardTimeout did not impose a deadline")
	}
	if rem := time.Until(dl3); rem > 31*time.Millisecond {
		t.Fatalf("shard-timeout remaining = %v, want <= 30ms", rem)
	}

	// Neither: unbounded but cancellable.
	sctx4, scancel4 := CarveBudget(context.Background(), 0, 0)
	if _, ok := sctx4.Deadline(); ok {
		t.Fatal("deadline appeared from nowhere")
	}
	scancel4()
	if sctx4.Err() == nil {
		t.Fatal("cancel did not propagate")
	}
}

// TestScatterManyShardsStress runs a wide scatter with mixed outcomes
// under the race detector: some shards answer, some retry, some panic,
// some are quarantined.
func TestScatterManyShardsStress(t *testing.T) {
	n := 16
	health := make([]*Health, n)
	for i := range health {
		health[i] = NewHealth(2, time.Minute)
	}
	health[3].Fault(errors.New("a"))
	health[3].Fault(errors.New("b")) // quarantined up-front
	var failed atomic.Int32
	cfg := Config{
		MaxAttempts: 3,
		Backoff:     &Backoff{Base: time.Microsecond, Cap: 10 * time.Microsecond, Seed: 5},
		Retryable:   func(err error) (bool, time.Duration) { return err.Error() == "transient", 0 },
	}
	out := Scatter(context.Background(), n, health, cfg, func(_ context.Context, shard, try int) (int, error) {
		switch {
		case shard == 3:
			t.Error("quarantined shard was dispatched")
			return 0, nil
		case shard == 5:
			panic("chaos")
		case shard%4 == 1 && try == 0:
			return 0, errors.New("transient")
		case shard == 7:
			failed.Add(1)
			return 0, errors.New("hard")
		default:
			return shard, nil
		}
	})
	for s, o := range out {
		switch {
		case s == 3:
			if !o.Skipped {
				t.Errorf("shard 3 not skipped: %+v", o)
			}
		case s == 5:
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Errorf("shard 5 err = %v", o.Err)
			}
		case s == 7:
			if o.Err == nil || o.Retries != 0 {
				t.Errorf("shard 7 outcome = %+v", o)
			}
		case s%4 == 1:
			if o.Err != nil || o.Retries != 1 {
				t.Errorf("shard %d (transient) outcome = %+v", s, o)
			}
		default:
			if o.Err != nil || o.Value != s {
				t.Errorf("shard %d outcome = %+v", s, o)
			}
		}
	}
	_ = fmt.Sprint(failed.Load())
}
