package shardset

import (
	"sync"
	"time"

	"emdsearch/internal/admission"
)

// Health tracks one shard's availability with a consecutive-failure
// quarantine: hard failures (errors, panics, exhausted retries) feed
// Fault, and after `threshold` consecutive faults the shard is
// quarantined — Allow reports false and the scatter layer skips the
// shard instead of burning its deadline budget on it. After the
// cooldown a single probe query is re-admitted; its success lifts the
// quarantine, its failure re-arms it for another cooldown. The state
// machine is admission.Breaker's — this type adds shard-level
// accounting on top.
//
// Deadline-degraded answers are deliberately NOT faults: a slow shard
// that still returns certified partial answers is serving, and
// quarantining it would discard sound coverage. Only a shard that
// returns nothing (error, panic, timeout of every retry) counts
// against the threshold.
//
// Safe for concurrent use.
type Health struct {
	brk *admission.Breaker

	mu             sync.Mutex
	successes      int64
	failures       int64
	skips          int64 // dispatches suppressed while quarantined
	lastErr        error
	lastFault      time.Time
	lastState      string
	lastTransition time.Time
}

// NewHealth builds a tracker that quarantines after `threshold`
// consecutive failures (min 1) and probes again after `cooldown`
// (min 1ms).
func NewHealth(threshold int, cooldown time.Duration) *Health {
	h := &Health{brk: admission.NewBreaker(threshold, cooldown)}
	h.lastState = h.brk.State().String()
	h.lastTransition = time.Now()
	return h
}

// noteStateLocked records a state-transition timestamp when the
// breaker's state differs from the last one observed. The open →
// half-open edge happens passively on cooldown expiry, so transition
// times are observation times: exact for the edges this type drives
// (Fault trips, Success lifts) and no later than the next dispatch or
// stats read for the passive one.
func (h *Health) noteStateLocked() {
	s := h.brk.State().String()
	if s != h.lastState {
		h.lastState = s
		h.lastTransition = time.Now()
	}
}

// Allow reports whether the shard may be dispatched to. While
// quarantined it returns false until the cooldown elapses, then
// admits exactly one probe.
func (h *Health) Allow() bool {
	ok := h.brk.Allow()
	h.mu.Lock()
	if !ok {
		h.skips++
	}
	h.noteStateLocked()
	h.mu.Unlock()
	return ok
}

// Success records a served dispatch (full or certified-degraded).
func (h *Health) Success() {
	h.brk.Success()
	h.mu.Lock()
	h.successes++
	h.noteStateLocked()
	h.mu.Unlock()
}

// Fault records a hard failure with its error.
func (h *Health) Fault(err error) {
	h.brk.Fault()
	h.mu.Lock()
	h.failures++
	h.lastErr = err
	h.lastFault = time.Now()
	h.noteStateLocked()
	h.mu.Unlock()
}

// Quarantined reports whether the shard is currently held out of
// dispatch (the breaker reads open; a just-cooled quarantine still
// reports true until the next Allow admits its probe).
func (h *Health) Quarantined() bool { return h.brk.State() == admission.BreakerOpen }

// State returns the quarantine state string: "closed" (healthy),
// "open" (quarantined) or "half-open" (probing re-admission).
func (h *Health) State() string { return h.brk.State().String() }

// Stats is a point-in-time copy of the tracker's counters.
type Stats struct {
	State       string    `json:"state"`
	Successes   int64     `json:"successes"`
	Failures    int64     `json:"failures"`
	Skips       int64     `json:"skips"`
	Quarantines int64     `json:"quarantines"`
	LastError   string    `json:"last_error,omitempty"`
	LastFault   time.Time `json:"last_fault,omitempty"`
	// LastTransition is when the tracker last observed the state
	// change; TimeInState is the age of the current state at the
	// snapshot — how long a shard has been quarantined (or healthy).
	LastTransition time.Time     `json:"last_transition"`
	TimeInState    time.Duration `json:"time_in_state"`
}

// Stats snapshots the tracker.
func (h *Health) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.noteStateLocked()
	st := Stats{
		State:          h.lastState,
		Successes:      h.successes,
		Failures:       h.failures,
		Skips:          h.skips,
		Quarantines:    h.brk.Trips(),
		LastFault:      h.lastFault,
		LastTransition: h.lastTransition,
		TimeInState:    time.Since(h.lastTransition),
	}
	if h.lastErr != nil {
		st.LastError = h.lastErr.Error()
	}
	return st
}
