package search

import (
	"container/heap"
	"fmt"
	"sort"
)

// Interval is a per-object distance interval [Lower, Upper] computed
// from reduced representations: the exact EMD is guaranteed to lie
// inside it.
type Interval struct {
	Index        int
	Lower, Upper float64
}

// Certificate bounds the quality of an approximate answer. The true
// k-th nearest distance lies in [LowerK, UpperK]; every returned
// object's exact distance is at most UpperK.
type Certificate struct {
	LowerK, UpperK float64
	// Pulled counts candidates examined (lower+upper evaluations);
	// no exact EMD is ever computed.
	Pulled int
}

// ApproxKNN answers a k-nearest-neighbor query *without a single
// exact EMD computation*, using a lower-bound ranking plus a matching
// upper-bound function (e.g. the min-cost/max-cost reduced EMD pair of
// core.Envelope). It is the guaranteed-approximation counterpart to
// the exact multistep KNN, in the spirit of the upper-bound-based
// approximate EMD retrieval the paper cites as related work.
//
// Candidates are pulled in ascending lower-bound order while the next
// lower bound does not exceed the k-th smallest upper bound seen (U).
// At that point the true k nearest neighbors are all among the pulled
// candidates: the k objects attaining the k smallest upper bounds have
// exact distance <= U, and every unpulled object has exact distance
// >= lower bound > U. The k pulled candidates with the smallest upper
// bounds are returned with their intervals, plus a certificate:
// each returned object's exact distance is <= Certificate.UpperK, and
// the true k-th distance is >= Certificate.LowerK.
func ApproxKNN(ranking Ranking, upper func(index int) float64, k int) ([]Interval, *Certificate, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	if upper == nil {
		return nil, nil, fmt.Errorf("search: nil upper bound")
	}
	var pulled []Interval
	var kUppers maxHeap
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		if len(kUppers) == k && c.Dist > kUppers[0] {
			// All unseen candidates are at least this far: the true
			// top-k is now certainly among the pulled ones.
			break
		}
		ub := upper(c.Index)
		pulled = append(pulled, Interval{Index: c.Index, Lower: c.Dist, Upper: ub})
		heap.Push(&kUppers, ub)
		if len(kUppers) > k {
			heap.Pop(&kUppers)
		}
	}
	if len(pulled) == 0 {
		return nil, &Certificate{}, nil
	}

	// Select the k intervals with the smallest upper bounds.
	sort.Slice(pulled, func(i, j int) bool {
		if pulled[i].Upper != pulled[j].Upper {
			return pulled[i].Upper < pulled[j].Upper
		}
		return pulled[i].Index < pulled[j].Index
	})
	kk := k
	if kk > len(pulled) {
		kk = len(pulled)
	}
	results := make([]Interval, kk)
	copy(results, pulled[:kk])

	// Certificate: k-th smallest lower bound and upper bound over the
	// pulled set.
	lowers := make([]float64, len(pulled))
	for i, iv := range pulled {
		lowers[i] = iv.Lower
	}
	sort.Float64s(lowers)
	cert := &Certificate{
		LowerK: lowers[kk-1],
		UpperK: results[kk-1].Upper,
		Pulled: len(pulled),
	}
	// Results are presented in ascending upper-bound order already.
	return results, cert, nil
}

// maxHeap keeps the k smallest values seen, with the largest of them
// on top.
type maxHeap []float64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
