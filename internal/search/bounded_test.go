package search

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// simulatedRefine wraps exact distances in a BoundedRefine with a
// perfect certificate: a candidate aborts exactly when its true
// distance exceeds the threshold, returning a bound just above it.
// This is the strongest certificate the contract allows, so results
// must still be identical to the plain algorithms'.
func simulatedRefine(exact []float64) BoundedRefine {
	return func(i int, abortAbove float64) Refinement {
		d := exact[i]
		if d > abortAbove {
			// Any certified bound in (abortAbove, d] is contract-legal;
			// return something strictly below the true distance to
			// check that aborted bounds are never used as distances.
			bound := math.Nextafter(abortAbove, math.Inf(1))
			if bound > d {
				bound = d
			}
			return Refinement{Dist: bound, Aborted: true, WarmStart: true, Rows: 1, Cols: 1}
		}
		return Refinement{Dist: d, Rows: 2, Cols: 3}
	}
}

func randomInstance(rng *rand.Rand, n int) (filter, exact []float64) {
	filter = make([]float64, n)
	exact = make([]float64, n)
	for i := range exact {
		exact[i] = rng.Float64() * 10
		filter[i] = exact[i] * rng.Float64() // lower bound
	}
	return filter, exact
}

// TestKNNBoundedMatchesKNN checks that an aggressively aborting
// refinement yields exactly the plain KNN results, and that the abort
// and shape counters flow into the stats.
func TestKNNBoundedMatchesKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(100)
		filter, exact := randomInstance(rng, n)
		for _, k := range []int{1, 3, 10} {
			want, _, err := KNN(NewScanRanking(filter), func(i int) float64 { return exact[i] }, k)
			if err != nil {
				t.Fatalf("KNN: %v", err)
			}
			got, stats, err := KNNBounded(NewScanRanking(filter), simulatedRefine(exact), k)
			if err != nil {
				t.Fatalf("KNNBounded: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d results, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d pos %d: got %v, want %v", trial, k, i, got[i], want[i])
				}
			}
			if stats.Refinements == 0 || stats.RefineRows == 0 || stats.RefineCols == 0 {
				t.Fatalf("trial %d k=%d: refinement counters not recorded: %+v", trial, k, stats)
			}
			if stats.RefinesAborted > stats.Refinements {
				t.Fatalf("trial %d k=%d: aborted %d > refinements %d",
					trial, k, stats.RefinesAborted, stats.Refinements)
			}
		}
	}
}

// TestRangeBoundedMatchesRange is the range-query analogue.
func TestRangeBoundedMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 30 + rng.Intn(100)
		filter, exact := randomInstance(rng, n)
		eps := rng.Float64() * 8
		want, _, err := Range(NewScanRanking(filter), func(i int) float64 { return exact[i] }, eps)
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		got, stats, err := RangeBounded(NewScanRanking(filter), simulatedRefine(exact), eps)
		if err != nil {
			t.Fatalf("RangeBounded: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
		if stats.RefinesAborted > stats.Refinements {
			t.Fatalf("trial %d: aborted %d > refinements %d", trial, stats.RefinesAborted, stats.Refinements)
		}
	}
}

// TestParallelKNNBoundedMatchesSequential runs the parallel bounded
// algorithm against the sequential one with the aborting refinement:
// results must be identical regardless of scheduling.
func TestParallelKNNBoundedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(150)
		filter, exact := randomInstance(rng, n)
		for _, k := range []int{1, 5, 12} {
			want, _, err := KNNBounded(NewScanRanking(filter), simulatedRefine(exact), k)
			if err != nil {
				t.Fatalf("KNNBounded: %v", err)
			}
			for _, workers := range []int{2, 4, 7} {
				got, stats, err := ParallelKNNBounded(NewScanRanking(filter), simulatedRefine(exact), k, workers)
				if err != nil {
					t.Fatalf("ParallelKNNBounded: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d w=%d: %d results, want %d", trial, k, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d k=%d w=%d pos %d: got %v, want %v",
							trial, k, workers, i, got[i], want[i])
					}
				}
				if stats.Workers != workers {
					t.Fatalf("trial %d: stats.Workers = %d, want %d", trial, stats.Workers, workers)
				}
			}
		}
	}
}

// TestParallelRangeBoundedMatchesSequential is the range analogue.
func TestParallelRangeBoundedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(150)
		filter, exact := randomInstance(rng, n)
		eps := rng.Float64() * 8
		want, _, err := RangeBounded(NewScanRanking(filter), simulatedRefine(exact), eps)
		if err != nil {
			t.Fatalf("RangeBounded: %v", err)
		}
		got, _, err := ParallelRangeBounded(NewScanRanking(filter), simulatedRefine(exact), eps, 4)
		if err != nil {
			t.Fatalf("ParallelRangeBounded: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestKNNBoundedNeverAbortsBelowK checks that no abort can happen while
// fewer than k neighbors are known (threshold is +Inf), so the bounded
// algorithm degenerates to plain KNN on small databases.
func TestKNNBoundedNeverAbortsBelowK(t *testing.T) {
	filter := []float64{1, 2, 3}
	exact := []float64{4, 5, 6}
	aborts := 0
	refine := func(i int, abortAbove float64) Refinement {
		if !math.IsInf(abortAbove, 1) && exact[i] > abortAbove {
			aborts++
			return Refinement{Dist: abortAbove + 1, Aborted: true}
		}
		return Refinement{Dist: exact[i]}
	}
	got, _, err := KNNBounded(NewScanRanking(filter), refine, 5)
	if err != nil {
		t.Fatalf("KNNBounded: %v", err)
	}
	if len(got) != 3 || aborts != 0 {
		t.Fatalf("got %d results, %d aborts; want 3 and 0", len(got), aborts)
	}
	wantOrder := []Result{{0, 4}, {1, 5}, {2, 6}}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Fatalf("results not sorted: %v", got)
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("pos %d: got %v, want %v", i, got[i], wantOrder[i])
		}
	}
}
