package search

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"emdsearch/internal/emd"
)

func errNoRefine() error {
	return fmt.Errorf("search: Searcher has no refinement distance")
}

// PendingCandidate is a candidate that was pulled from the filter
// ranking but left unresolved when a query was cancelled: its exact
// distance is only known to be at least Lower (the tightest of the
// filter lower bound and, when the solve was interrupted mid-pivot,
// the simplex's certified dual bound). Pending candidates are the raw
// material of anytime answers — a caller with an upper-bound function
// can turn each into a certified [Lower, Upper] interval.
type PendingCandidate struct {
	Index int
	Lower float64
}

// KNNOutcome is the full return of a context-aware k-NN query.
type KNNOutcome struct {
	// Results are the neighbors whose exact distances were confirmed.
	// When Stats.Cancelled is false this is the complete k-NN answer,
	// identical to the context-free path's; otherwise it holds the
	// (certified-exact) neighbors found before cancellation.
	Results []Result
	// Pending lists the candidates pulled but unresolved at
	// cancellation, each with its best certified lower bound. Empty
	// when the query completed.
	Pending []PendingCandidate
	// Stats carries the per-query work counters; Stats.Cancelled
	// distinguishes complete from anytime outcomes.
	Stats *QueryStats
}

// WatchContext converts ctx cancellation into a polled atomic flag.
// The flag doubles as the simplex interrupt: the same pointer is
// handed to the bounded refinement so a deadline stops even a single
// large solve within one pivot. For contexts that can never be
// cancelled (ctx.Done() == nil, e.g. context.Background()) it returns
// a nil flag and spawns nothing, which keeps the context-free wrappers
// byte-identical to the legacy paths. The returned stop function
// releases the watcher goroutine and must be called exactly once.
func WatchContext(ctx context.Context) (flag *atomic.Bool, stop func()) {
	done := ctx.Done()
	if done == nil {
		return nil, func() {}
	}
	flag = new(atomic.Bool)
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			flag.Store(true)
		case <-quit:
		}
	}()
	return flag, func() { close(quit) }
}

// KNNCtx answers a k-nearest-neighbor query for q under ctx. It is
// the context-aware form of KNN: a cancel flag derived from ctx is
// polled once per candidate in the KNOP loop (sequential or parallel)
// and once per pivot inside each bounded simplex solve, so
// cancellation takes effect within microseconds even mid-refinement.
// On cancellation the outcome carries Stats.Cancelled=true, the
// confirmed neighbors, and the pending candidates with certified
// lower bounds; ctx's error is NOT returned — callers decide whether
// a partial answer is useful. With a never-cancellable ctx the
// results are byte-identical to KNN's.
func (s *Searcher) KNNCtx(ctx context.Context, q emd.Histogram, k int) (*KNNOutcome, error) {
	return s.knnCtx(ctx, q, k, nil)
}

// KNNWhereCtx is KNNCtx restricted to items satisfying pred. The
// predicate runs on the query's calling goroutine only — never on
// refinement workers — after the threshold check and before
// refinement, so rejected items cost a predicate call but no exact
// solve. pred must be non-nil.
func (s *Searcher) KNNWhereCtx(ctx context.Context, q emd.Histogram, k int, pred func(index int) bool) (*KNNOutcome, error) {
	return s.knnCtx(ctx, q, k, pred)
}

func (s *Searcher) knnCtx(ctx context.Context, q emd.Histogram, k int, pred func(index int) bool) (*KNNOutcome, error) {
	if s.Refine == nil && s.RefineBounded == nil {
		return nil, errNoRefine()
	}
	start := time.Now()
	ranking, probes, err := s.buildRanking(q, IndexHint{Kind: IndexKNN, K: k})
	if err != nil {
		return nil, err
	}
	cancel, stopWatch := WatchContext(ctx)
	defer stopWatch()
	cfg := knnConfig{cancel: cancel, pred: pred}

	refineTime := new(atomicDuration)
	refine := s.timedBoundedRefineIntr(q, refineTime.Add, cancel)
	var out KNNOutcome
	if s.Workers > 1 {
		out.Results, out.Pending, out.Stats, err = parallelKNNBoundedCore(ranking, refine, k, s.Workers, cfg)
	} else {
		out.Results, out.Pending, out.Stats, err = knnBoundedCore(ranking, refine, k, cfg)
		if err == nil {
			out.Stats.Workers = 1
		}
	}
	if err != nil {
		return nil, err
	}
	out.Stats.RefineTime = refineTime.Load()
	finishStats(out.Stats, probes, time.Since(start))
	return &out, nil
}

// RangeCtx answers a range query for q under ctx; the context-aware
// form of Range. A cancelled range query returns the results whose
// exact distances were confirmed to be <= eps before the cancel —
// each is individually certified, so the partial set is sound, only
// possibly incomplete — with Stats.Cancelled=true. pred, when
// non-nil, restricts results to items satisfying it (evaluated on the
// calling goroutine only).
func (s *Searcher) RangeCtx(ctx context.Context, q emd.Histogram, eps float64, pred func(index int) bool) ([]Result, *QueryStats, error) {
	if s.Refine == nil && s.RefineBounded == nil {
		return nil, nil, errNoRefine()
	}
	start := time.Now()
	ranking, probes, err := s.buildRanking(q, IndexHint{Kind: IndexRange, Eps: eps})
	if err != nil {
		return nil, nil, err
	}
	cancel, stopWatch := WatchContext(ctx)
	defer stopWatch()
	cfg := knnConfig{cancel: cancel, pred: pred}

	var results []Result
	var stats *QueryStats
	refineTime := new(atomicDuration)
	refine := s.timedBoundedRefineIntr(q, refineTime.Add, cancel)
	if s.Workers > 1 {
		results, stats, err = parallelRangeBoundedCore(ranking, refine, eps, s.Workers, cfg)
	} else {
		results, stats, err = rangeBoundedCore(ranking, refine, eps, cfg)
		if err == nil {
			stats.Workers = 1
		}
	}
	if err != nil {
		return nil, nil, err
	}
	stats.RefineTime = refineTime.Load()
	finishStats(stats, probes, time.Since(start))
	return results, stats, nil
}

// timedBoundedRefineIntr is timedBoundedRefine with the cooperative
// interrupt flag threaded into the solver when the searcher exposes an
// interrupt-aware refinement. A nil intr (never-cancellable context)
// always falls back to the plain closure, keeping that path identical
// to the context-free API.
func (s *Searcher) timedBoundedRefineIntr(q emd.Histogram, add func(d time.Duration), intr *atomic.Bool) BoundedRefine {
	if intr != nil && s.RefineBoundedIntr != nil {
		return func(i int, abortAbove float64) Refinement {
			t0 := time.Now()
			r := s.RefineBoundedIntr(q, i, abortAbove, intr)
			add(time.Since(t0))
			return r
		}
	}
	return s.timedBoundedRefine(q, add)
}
