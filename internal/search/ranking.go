// Package search implements the lossless multistep query processing of
// Section 4 in Wichterich et al. (SIGMOD 2008): filter rankings with a
// getNext interface, the chained ranking of Figure 12 that stacks one
// lower-bounding filter on top of another, and the KNOP k-nearest-
// neighbor algorithm of Figure 11, which is optimal in the number of
// refinement computations for a given filter ranking. Range queries
// and an exact linear-scan baseline complete the query API.
package search

import "container/heap"

// Candidate is one database item together with a (filter) distance.
type Candidate struct {
	Index int
	Dist  float64
}

// Ranking yields database items in ascending order of a filter
// distance, one at a time (the paper's getNext method).
type Ranking interface {
	// Next returns the item with the smallest remaining filter
	// distance, or ok = false when the ranking is exhausted.
	Next() (c Candidate, ok bool)
}

// candHeap is a min-heap of candidates ordered by Dist, with Index as a
// deterministic tie-breaker.
type candHeap []Candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist < h[j].Dist
	}
	return h[i].Index < h[j].Index
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(Candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// ScanRanking ranks all items by an eagerly computed distance slice.
// It is the bottom of every filter chain: the first filter is evaluated
// against the complete database (a sequential scan over the compact
// filter representation), and the heap then yields items incrementally.
type ScanRanking struct {
	h candHeap
}

// NewScanRanking builds a ranking over dists[i] for items 0..len-1.
func NewScanRanking(dists []float64) *ScanRanking {
	h := make(candHeap, len(dists))
	for i, d := range dists {
		h[i] = Candidate{Index: i, Dist: d}
	}
	heap.Init(&h)
	return &ScanRanking{h: h}
}

// Next pops the closest remaining item.
func (r *ScanRanking) Next() (Candidate, bool) {
	if r.h.Len() == 0 {
		return Candidate{}, false
	}
	return heap.Pop(&r.h).(Candidate), true
}

// SliceRanking yields a fixed, already-ordered candidate list. It is
// used in tests and to replay rankings.
type SliceRanking struct {
	cands []Candidate
	pos   int
}

// NewSliceRanking wraps cands, which must already be in ascending Dist
// order.
func NewSliceRanking(cands []Candidate) *SliceRanking {
	return &SliceRanking{cands: cands}
}

// Next returns the next candidate in order.
func (r *SliceRanking) Next() (Candidate, bool) {
	if r.pos >= len(r.cands) {
		return Candidate{}, false
	}
	c := r.cands[r.pos]
	r.pos++
	return c, true
}

// ChainedRanking implements Figure 12 of the paper: it consumes a base
// ranking ordered by a filter distance f1 and re-ranks by a second
// filter distance f2, evaluating f2 lazily — items are pulled from the
// base only while the base's next f1 value could still beat the best
// pending value.
//
// Each emitted candidate carries max(f1, f2), which is itself a lower
// bound whenever both filters are. Taking the maximum makes the chain
// correct for *any* pair of lower bounds — f2 need not dominate f1
// item-wise (e.g. a centroid bound chained with Red-IM, neither of
// which dominates the other) — and is a free tightening when it does.
type ChainedRanking struct {
	base     Ranking
	second   func(index int) float64
	pending  candHeap
	lookNext Candidate
	lookOK   bool
	primed   bool
	// Evaluations counts how many times the second filter was
	// computed; the experiment harness reads it after each query.
	Evaluations int
}

// NewChainedRanking chains second on top of base. second must be a
// lower bound of whatever distance the consumer refines with, and must
// dominate the base's filter distance item-wise for the ranking to be
// correctly ordered.
func NewChainedRanking(base Ranking, second func(index int) float64) *ChainedRanking {
	return &ChainedRanking{base: base, second: second}
}

// Next returns the remaining item with the smallest second-filter
// distance.
func (r *ChainedRanking) Next() (Candidate, bool) {
	if !r.primed {
		r.lookNext, r.lookOK = r.base.Next()
		r.primed = true
	}
	for {
		if r.pending.Len() > 0 {
			top := r.pending[0]
			if !r.lookOK || top.Dist <= r.lookNext.Dist {
				// No unseen item can have a smaller f2: their f1 (and
				// hence f2) is at least the base's next distance.
				heap.Pop(&r.pending)
				return top, true
			}
		} else if !r.lookOK {
			return Candidate{}, false
		}
		c := r.lookNext
		r.lookNext, r.lookOK = r.base.Next()
		r.Evaluations++
		d := r.second(c.Index)
		if c.Dist > d {
			d = c.Dist
		}
		heap.Push(&r.pending, Candidate{Index: c.Index, Dist: d})
	}
}
