package search

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a panic recovered by the refinement barrier: an
// invariant failure inside the exact solver (or a refinement hook)
// that would otherwise have killed the whole process — and, on the
// parallel path, every other query sharing it. The barrier converts it
// into an ordinary error on the failing query only; the engine wraps
// it into the public typed ErrInternal.
type PanicError struct {
	// Index is the database item whose refinement panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at
	// recovery time.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("search: panic refining candidate %d: %v", p.Index, p.Value)
}

// callRefine invokes refine under a panic barrier. A panic anywhere
// below — the transport simplex's invariant checks, the trusted-input
// solver wrapper, a chaos-injection hook — surfaces as a *PanicError
// instead of unwinding through the query loop, so one poisoned solve
// fails one query, not the process.
func callRefine(refine BoundedRefine, index int, abortAbove float64) (r Refinement, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: index, Value: v, Stack: debug.Stack()}
		}
	}()
	return refine(index, abortAbove), nil
}

// fault collects the first refinement panic observed by a pool of
// workers and exposes a cheap atomic flag so the feeder and the other
// workers stop dispatching real work as soon as one solve has blown
// up. Later panics are dropped: the query already has its error.
type fault struct {
	tripped atomic.Bool
	mu      sync.Mutex
	err     error
}

func (f *fault) record(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.tripped.Store(true)
}

func (f *fault) Load() bool { return f.tripped.Load() }

func (f *fault) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
