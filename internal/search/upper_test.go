package search

import (
	"math/rand"
	"sort"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

func TestApproxKNNValidation(t *testing.T) {
	r := NewScanRanking([]float64{1})
	if _, _, err := ApproxKNN(r, func(int) float64 { return 0 }, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := ApproxKNN(r, nil, 1); err == nil {
		t.Error("accepted nil upper bound")
	}
	empty := NewScanRanking(nil)
	res, cert, err := ApproxKNN(empty, func(int) float64 { return 0 }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || cert.Pulled != 0 {
		t.Errorf("empty ranking: %v %v", res, cert)
	}
}

// TestApproxKNNGuarantees verifies the certificate against ground
// truth on real EMD envelopes: every returned object's exact distance
// is <= UpperK, the true k-th distance lies in [LowerK, UpperK], and
// the intervals contain the exact values.
func TestApproxKNNGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const d, dr, n, k = 16, 6, 200, 7
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnvelope(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, n)
	reduced := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
		reduced[i] = red.Apply(data[i])
	}

	for trial := 0; trial < 5; trial++ {
		q := randomHistogram(rng, d)
		qr := red.Apply(q)
		lowers := make([]float64, n)
		for i := range lowers {
			lowers[i] = env.Lower.DistanceReduced(qr, reduced[i])
		}
		results, cert, err := ApproxKNN(NewScanRanking(lowers), func(i int) float64 {
			return env.Upper.DistanceReduced(qr, reduced[i])
		}, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != k {
			t.Fatalf("returned %d results, want %d", len(results), k)
		}
		// Ground truth.
		exact := make([]float64, n)
		for i := range exact {
			exact[i] = dist.Distance(q, data[i])
		}
		sortedExact := append([]float64(nil), exact...)
		sort.Float64s(sortedExact)
		trueKth := sortedExact[k-1]

		if trueKth < cert.LowerK-1e-9 || trueKth > cert.UpperK+1e-9 {
			t.Fatalf("true k-th %g outside certificate [%g, %g]", trueKth, cert.LowerK, cert.UpperK)
		}
		for _, iv := range results {
			e := exact[iv.Index]
			if e < iv.Lower-1e-9 || e > iv.Upper+1e-9 {
				t.Fatalf("object %d exact %g outside interval [%g, %g]", iv.Index, e, iv.Lower, iv.Upper)
			}
			if e > cert.UpperK+1e-9 {
				t.Fatalf("returned object %d exact %g above UpperK %g", iv.Index, e, cert.UpperK)
			}
		}
		if cert.Pulled > n {
			t.Fatalf("pulled %d of %d", cert.Pulled, n)
		}
	}
}

// TestApproxKNNPullsPrefixOnly: with a tight envelope the query must
// stop far before scanning everything.
func TestApproxKNNPullsPrefixOnly(t *testing.T) {
	const n, k = 1000, 5
	lowers := make([]float64, n)
	for i := range lowers {
		lowers[i] = float64(i)
	}
	// Upper = lower + 0.5: after pulling ~k+1 candidates the next
	// lower bound exceeds the k-th upper bound.
	results, cert, err := ApproxKNN(NewScanRanking(lowers), func(i int) float64 {
		return float64(i) + 0.5
	}, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != k {
		t.Fatalf("returned %d", len(results))
	}
	if cert.Pulled > 2*k {
		t.Errorf("pulled %d candidates for a k=%d query with tight bounds", cert.Pulled, k)
	}
	for i, iv := range results {
		if iv.Index != i {
			t.Errorf("result %d: index %d", i, iv.Index)
		}
	}
}

// TestApproxKNNExactWhenBoundsCoincide: identity reduction makes both
// bounds equal to the exact EMD, so the approximate answer IS the
// exact answer with a zero-width certificate.
func TestApproxKNNExactWhenBoundsCoincide(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const d, n, k = 8, 80, 5
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	id := core.Identity(d)
	env, err := core.NewEnvelope(cost, id, id)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
	}
	q := randomHistogram(rng, d)
	lowers := make([]float64, n)
	for i := range lowers {
		lowers[i] = env.Lower.Distance(q, data[i])
	}
	results, cert, err := ApproxKNN(NewScanRanking(lowers), func(i int) float64 {
		return env.Upper.Distance(q, data[i])
	}, k)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := LinearScanKNN(n, func(i int) float64 { return dist.Distance(q, data[i]) }, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if results[i].Index != want[i].Index {
			t.Fatalf("result %d: got %d, want %d", i, results[i].Index, want[i].Index)
		}
	}
	if cert.UpperK-cert.LowerK > 1e-9 {
		t.Errorf("identity certificate has width %g", cert.UpperK-cert.LowerK)
	}
}
