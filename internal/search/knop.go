package search

import (
	"fmt"
	"sort"
	"time"
)

// Result is one query answer: a database item and its exact distance.
type Result struct {
	Index int
	Dist  float64
}

// StageStats describes the work one named filter stage performed
// during a single query — the per-stage view of the observability
// layer. Stages appear in chain order (cheapest/loosest first).
type StageStats struct {
	// Name identifies the stage (e.g. "Red-IM", "Red-EMD", "Red-EMD-8",
	// "Asym-Red-EMD").
	Name string
	// Evaluations counts how often this stage's filter distance was
	// computed.
	Evaluations int
	// Pruned counts candidates this stage ruled out: items it evaluated
	// that the next consumer (the following stage, or the refinement
	// loop) never had to touch.
	Pruned int
	// Duration is the wall time spent inside this stage's distance
	// function.
	Duration time.Duration
}

// QueryStats records the work one query performed.
type QueryStats struct {
	// Pulled counts candidates drawn from the filter ranking.
	Pulled int
	// Refinements counts exact (full-dimensional EMD) computations.
	Refinements int
	// RefinementsSkipped counts candidates that were dispatched to the
	// parallel refinement pool but discarded unrefined because the
	// shared k-NN threshold had already dropped below their filter
	// distance. Always 0 on the sequential path.
	RefinementsSkipped int
	// Workers is the number of goroutines that served the refinement
	// stage (1 on the sequential path).
	Workers int
	// StageEvaluations counts filter evaluations per pipeline stage;
	// filled by Searcher, left empty by the bare algorithms. It mirrors
	// Stages[i].Evaluations and is kept for compact comparisons.
	StageEvaluations []int
	// Stages carries the named per-stage counters and wall times, in
	// chain order; filled by Searcher, nil for the bare algorithms.
	Stages []StageStats
	// FilterTime is the wall time spent evaluating filter stages.
	FilterTime time.Duration
	// RefineTime is the time spent in exact refinements, summed across
	// refinement workers (it can exceed TotalTime when Workers > 1).
	RefineTime time.Duration
	// TotalTime is the end-to-end wall time of the query.
	TotalTime time.Duration
}

// KNN runs the KNOP k-nearest-neighbor algorithm of Figure 11 over a
// lower-bounding filter ranking. refine computes the exact distance of
// a database item to the query. The algorithm refines candidates in
// ranking order until the next filter distance exceeds the distance of
// the current k-th neighbor; because the filter lower-bounds the exact
// distance, no unrefined item can then belong to the result
// (completeness, proven in the GEMINI/KNOP literature cited by the
// paper). Ties on the k-th distance are refined, making the result
// deterministic-by-index among equal distances.
func KNN(ranking Ranking, refine func(index int) float64, k int) ([]Result, *QueryStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	stats := &QueryStats{}
	neighbors := make([]Result, 0, k+1)

	insert := func(r Result) {
		pos := sort.Search(len(neighbors), func(i int) bool {
			if neighbors[i].Dist != r.Dist {
				return neighbors[i].Dist > r.Dist
			}
			return neighbors[i].Index > r.Index
		})
		neighbors = append(neighbors, Result{})
		copy(neighbors[pos+1:], neighbors[pos:])
		neighbors[pos] = r
		if len(neighbors) > k {
			neighbors = neighbors[:k]
		}
	}

	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if len(neighbors) == k && c.Dist > neighbors[k-1].Dist {
			// Lower-bounding filter: every remaining item is at least
			// this far away.
			break
		}
		stats.Refinements++
		d := refine(c.Index)
		if len(neighbors) < k || d < neighbors[k-1].Dist ||
			(d == neighbors[k-1].Dist && c.Index < neighbors[k-1].Index) {
			insert(Result{Index: c.Index, Dist: d})
		}
	}
	return neighbors, stats, nil
}

// Range returns all items whose exact distance is at most eps,
// using the lower-bounding filter ranking to prune: items are pulled
// while their filter distance is <= eps and refined; the rest cannot
// qualify. Results are sorted by distance, then index.
func Range(ranking Ranking, refine func(index int) float64, eps float64) ([]Result, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	stats := &QueryStats{}
	var results []Result
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break
		}
		stats.Refinements++
		if d := refine(c.Index); d <= eps {
			results = append(results, Result{Index: c.Index, Dist: d})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Index < results[j].Index
	})
	return results, stats, nil
}

// LinearScanKNN is the exact baseline: refine every item and keep the
// k closest. It performs n refinements by construction and anchors
// both the correctness tests and the performance comparisons.
func LinearScanKNN(n int, refine func(index int) float64, k int) ([]Result, *QueryStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	all := make([]Result, n)
	for i := 0; i < n; i++ {
		all[i] = Result{Index: i, Dist: refine(i)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if k > n {
		k = n
	}
	return all[:k], &QueryStats{Pulled: n, Refinements: n}, nil
}
