package search

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Result is one query answer: a database item and its exact distance.
type Result struct {
	Index int
	Dist  float64
}

// StageStats describes the work one named filter stage performed
// during a single query — the per-stage view of the observability
// layer. Stages appear in chain order (cheapest/loosest first).
type StageStats struct {
	// Name identifies the stage (e.g. "Red-IM", "Red-EMD", "Red-EMD-8",
	// "Asym-Red-EMD").
	Name string
	// Evaluations counts how often this stage's filter distance was
	// computed.
	Evaluations int
	// Pruned counts candidates this stage ruled out: items it evaluated
	// that the next consumer (the following stage, or the refinement
	// loop) never had to touch.
	Pruned int
	// Duration is the wall time spent inside this stage's distance
	// function.
	Duration time.Duration
}

// QueryStats records the work one query performed.
type QueryStats struct {
	// Pulled counts candidates drawn from the filter ranking.
	Pulled int
	// SnapshotLen is the number of indexed items (including
	// soft-deleted ones) in the snapshot the query ran on; filled by
	// the engine's context-aware entry points, 0 elsewhere.
	// SnapshotLen - Pulled is the unexamined tail of a cancelled query,
	// measured against the state it actually searched rather than the
	// live engine (which races concurrent Adds).
	SnapshotLen int
	// Refinements counts exact (full-dimensional EMD) computations.
	Refinements int
	// RefinementsSkipped counts candidates that were dispatched to the
	// parallel refinement pool but discarded unrefined because the
	// shared k-NN threshold had already dropped below their filter
	// distance. Always 0 on the sequential path.
	RefinementsSkipped int
	// RefinesAborted counts refinements (included in Refinements) that
	// the bounded solver abandoned early because a certified lower
	// bound on the exact distance exceeded the pruning threshold.
	RefinesAborted int
	// WarmStartHits counts refinements that re-entered the simplex
	// from a cached previous basis instead of a cold start.
	WarmStartHits int
	// RefineRows and RefineCols accumulate the reduced problem shapes
	// (zero-mass bins stripped) over all refinements; divide by
	// Refinements for the average solved shape. Zero when the bounded
	// refinement kernel is not in use.
	RefineRows int64
	RefineCols int64
	// Workers is the number of goroutines that served the refinement
	// stage (1 on the sequential path).
	Workers int
	// Cancelled reports that the query stopped early because its
	// cooperative cancel flag was observed (context cancelled or
	// deadline expired). The returned results are then a certified
	// partial answer, not the complete one.
	Cancelled bool
	// IndexUsed reports that a metric-index candidate generator served
	// this query in place of the scan-based filter chain.
	IndexUsed bool
	// IndexNodesVisited and IndexPruned count index nodes expanded and
	// ruled out during the traversal; zero unless IndexUsed.
	IndexNodesVisited int
	IndexPruned       int
	// StageEvaluations counts filter evaluations per pipeline stage;
	// filled by Searcher, left empty by the bare algorithms. It mirrors
	// Stages[i].Evaluations and is kept for compact comparisons.
	StageEvaluations []int
	// Stages carries the named per-stage counters and wall times, in
	// chain order; filled by Searcher, nil for the bare algorithms.
	Stages []StageStats
	// FilterTime is the wall time spent evaluating filter stages.
	FilterTime time.Duration
	// RefineTime is the time spent in exact refinements, summed across
	// refinement workers (it can exceed TotalTime when Workers > 1).
	RefineTime time.Duration
	// TotalTime is the end-to-end wall time of the query.
	TotalTime time.Duration
}

// Refinement is the outcome of one threshold-aware exact distance
// computation.
type Refinement struct {
	// Dist is the exact distance when the solve ran to optimality, or
	// a certified lower bound on it when Aborted.
	Dist float64
	// Aborted reports that the solver abandoned the candidate early:
	// the certified bound exceeded the threshold it was given, so the
	// exact distance provably does too.
	Aborted bool
	// Interrupted reports that the solve was cut short by a
	// cooperative cancel flag (query deadline). Dist is then a
	// certified lower bound on the exact distance — possibly 0 — that
	// certifies nothing about the threshold; the candidate is
	// unresolved, not discarded.
	Interrupted bool
	// WarmStart reports that the solve re-entered from a cached basis.
	WarmStart bool
	// Rows and Cols are the reduced problem shape actually solved.
	Rows, Cols int
}

// BoundedRefine computes the exact distance of database item index to
// the query unless it can certify the distance exceeds abortAbove, in
// which case it may return early with Aborted set. Implementations
// must only abort on a certified lower bound: Dist <= true distance
// whenever Aborted.
type BoundedRefine func(index int, abortAbove float64) Refinement

// adaptRefine lifts a plain exact-distance function into a
// BoundedRefine that never aborts.
func adaptRefine(refine func(index int) float64) BoundedRefine {
	return func(i int, _ float64) Refinement {
		return Refinement{Dist: refine(i)}
	}
}

// observe accumulates one refinement outcome into the stats.
func (s *QueryStats) observe(r Refinement) {
	s.Refinements++
	s.RefineRows += int64(r.Rows)
	s.RefineCols += int64(r.Cols)
	if r.WarmStart {
		s.WarmStartHits++
	}
	if r.Aborted {
		s.RefinesAborted++
	}
}

// KNN runs the KNOP k-nearest-neighbor algorithm of Figure 11 over a
// lower-bounding filter ranking. refine computes the exact distance of
// a database item to the query. The algorithm refines candidates in
// ranking order until the next filter distance exceeds the distance of
// the current k-th neighbor; because the filter lower-bounds the exact
// distance, no unrefined item can then belong to the result
// (completeness, proven in the GEMINI/KNOP literature cited by the
// paper). Ties on the k-th distance are refined, making the result
// deterministic-by-index among equal distances.
func KNN(ranking Ranking, refine func(index int) float64, k int) ([]Result, *QueryStats, error) {
	return KNNBounded(ranking, adaptRefine(refine), k)
}

// KNNBounded is KNN with a threshold-aware refinement: each candidate
// is refined with the current k-th neighbor distance as its abort
// threshold (+Inf until k neighbors are known). An aborted candidate
// carries a certified lower bound above that threshold, so its exact
// distance exceeds the current — and hence the final — k-th distance
// and it is discarded exactly as a completed refinement past the
// threshold would be; results are identical to KNN's, including the
// tie-on-the-k-th-distance semantics (the bounded solver's guard keeps
// ties from aborting). Only the work counters differ.
func KNNBounded(ranking Ranking, refine BoundedRefine, k int) ([]Result, *QueryStats, error) {
	res, _, stats, err := knnBoundedCore(ranking, refine, k, knnConfig{})
	return res, stats, err
}

// knnConfig carries the optional hooks of the KNOP cores. The zero
// value selects the classic behavior; both hooks are checked with nil
// guards so a zero config costs nothing on the hot path and keeps the
// classic results byte-identical.
type knnConfig struct {
	// cancel, when non-nil, is polled once per candidate (and, through
	// the interrupt-aware refinement, once per simplex pivot): once set
	// the query stops early with stats.Cancelled and the unresolved
	// candidates reported as pending.
	cancel *atomic.Bool
	// pred, when non-nil, filters candidates after the threshold check
	// and before refinement; failing candidates count as Pulled but are
	// never refined. It runs on the calling goroutine only, so
	// predicates need not be goroutine-safe even on the parallel path.
	pred func(index int) bool
	// shared, when non-nil, joins this search to a cross-partition
	// neighbor set: the loop prunes against min(local k-th, global
	// k-th) and offers every confirmed exact distance under its global
	// id. toGlobal maps local to global indices (nil = identity).
	shared   *SharedKNN
	toGlobal func(local int) int
}

func (cfg *knnConfig) cancelled() bool {
	return cfg.cancel != nil && cfg.cancel.Load()
}

// tighten folds the shared global threshold, when present, into the
// local one. The shared threshold is monotonically non-increasing and
// always >= the final global k-th distance, so pruning against the
// minimum of the two discards only items provably outside the final
// answer — the same argument that makes the per-query parallel
// threshold sound.
func (cfg *knnConfig) tighten(threshold float64) float64 {
	if cfg.shared != nil {
		if t := cfg.shared.Threshold(); t < threshold {
			threshold = t
		}
	}
	return threshold
}

// offer publishes a confirmed exact distance to the shared set.
func (cfg *knnConfig) offer(localIndex int, dist float64) {
	if cfg.shared == nil {
		return
	}
	gid := localIndex
	if cfg.toGlobal != nil {
		gid = cfg.toGlobal(localIndex)
	}
	cfg.shared.Offer(gid, dist)
}

// knnBoundedCore is the sequential KNOP loop shared by KNNBounded and
// the context-aware searcher entry points. On cancellation it returns
// the neighbors confirmed so far plus the pending (pulled but
// unresolved) candidates with their best certified lower bounds.
func knnBoundedCore(ranking Ranking, refine BoundedRefine, k int, cfg knnConfig) ([]Result, []PendingCandidate, *QueryStats, error) {
	if k < 1 {
		return nil, nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	stats := &QueryStats{}
	neighbors := make([]Result, 0, k+1)
	var pending []PendingCandidate

	insert := func(r Result) {
		pos := sort.Search(len(neighbors), func(i int) bool {
			if neighbors[i].Dist != r.Dist {
				return neighbors[i].Dist > r.Dist
			}
			return neighbors[i].Index > r.Index
		})
		neighbors = append(neighbors, Result{})
		copy(neighbors[pos+1:], neighbors[pos:])
		neighbors[pos] = r
		if len(neighbors) > k {
			neighbors = neighbors[:k]
		}
	}

	for {
		if cfg.cancelled() {
			stats.Cancelled = true
			break
		}
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		threshold := math.Inf(1)
		if len(neighbors) == k {
			threshold = neighbors[k-1].Dist
		}
		threshold = cfg.tighten(threshold)
		if c.Dist > threshold {
			// Lower-bounding filter: every remaining item is at least
			// this far away (from the local k-th, or from the global
			// k-th another partition already confirmed).
			break
		}
		if cfg.pred != nil && !cfg.pred(c.Index) {
			continue
		}
		r, rerr := callRefine(refine, c.Index, threshold)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		stats.observe(r)
		if r.Interrupted {
			// The solve was cut short by the cancel flag: the exact
			// distance is unresolved, only bounded below by the filter
			// distance and the solver's certified dual bound.
			stats.Cancelled = true
			pending = append(pending, PendingCandidate{Index: c.Index, Lower: math.Max(c.Dist, r.Dist)})
			break
		}
		if r.Aborted {
			continue
		}
		d := r.Dist
		cfg.offer(c.Index, d)
		if len(neighbors) < k || d < neighbors[k-1].Dist ||
			(d == neighbors[k-1].Dist && c.Index < neighbors[k-1].Index) {
			insert(Result{Index: c.Index, Dist: d})
		}
	}
	return neighbors, pending, stats, nil
}

// Range returns all items whose exact distance is at most eps,
// using the lower-bounding filter ranking to prune: items are pulled
// while their filter distance is <= eps and refined; the rest cannot
// qualify. Results are sorted by distance, then index.
func Range(ranking Ranking, refine func(index int) float64, eps float64) ([]Result, *QueryStats, error) {
	return RangeBounded(ranking, adaptRefine(refine), eps)
}

// RangeBounded is Range with a threshold-aware refinement: eps is the
// abort threshold of every candidate. An aborted candidate's exact
// distance provably exceeds eps, so results are identical to Range's.
func RangeBounded(ranking Ranking, refine BoundedRefine, eps float64) ([]Result, *QueryStats, error) {
	return rangeBoundedCore(ranking, refine, eps, knnConfig{})
}

// rangeBoundedCore is the sequential range loop shared by RangeBounded
// and the context-aware entry points. A cancelled range query returns
// the results confirmed so far — each is individually certified (exact
// distance <= eps), so a partial set is sound, just not complete.
func rangeBoundedCore(ranking Ranking, refine BoundedRefine, eps float64, cfg knnConfig) ([]Result, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	stats := &QueryStats{}
	var results []Result
	for {
		if cfg.cancelled() {
			stats.Cancelled = true
			break
		}
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break
		}
		if cfg.pred != nil && !cfg.pred(c.Index) {
			continue
		}
		r, rerr := callRefine(refine, c.Index, eps)
		if rerr != nil {
			return nil, nil, rerr
		}
		stats.observe(r)
		if r.Interrupted {
			stats.Cancelled = true
			break
		}
		if !r.Aborted && r.Dist <= eps {
			results = append(results, Result{Index: c.Index, Dist: r.Dist})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Index < results[j].Index
	})
	return results, stats, nil
}

// LinearScanKNN is the exact baseline: refine every item and keep the
// k closest. It performs n refinements by construction and anchors
// both the correctness tests and the performance comparisons.
func LinearScanKNN(n int, refine func(index int) float64, k int) ([]Result, *QueryStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	all := make([]Result, n)
	for i := 0; i < n; i++ {
		all[i] = Result{Index: i, Dist: refine(i)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if k > n {
		k = n
	}
	return all[:k], &QueryStats{Pulled: n, Refinements: n}, nil
}
