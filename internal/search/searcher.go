package search

import (
	"fmt"

	"emdsearch/internal/emd"
)

// FilterStage is one lower-bounding filter in a multistep pipeline
// (e.g. Red-IM or Red-EMD of the paper's Figure 10). Each stage owns
// its database-side representation (typically precomputed reduced
// vectors) and knows how to prepare the query side once per query.
type FilterStage struct {
	// Name identifies the stage in statistics and experiment tables.
	Name string
	// PrepareQuery maps the original query histogram to this stage's
	// representation (e.g. applies the query reduction R1). It is
	// called once per query.
	PrepareQuery func(q emd.Histogram) emd.Histogram
	// Distance computes the stage's filter distance between the
	// prepared query and database item index.
	Distance func(prepared emd.Histogram, index int) float64
}

// Searcher executes multistep k-NN and range queries over a database
// of n items with an ordered chain of lower-bounding filter stages and
// an exact refinement distance. Stage i must lower-bound stage i+1
// item-wise, and the last stage must lower-bound Refine; this is
// exactly the chaining requirement of Section 4 and is what guarantees
// completeness (no false dismissals).
//
// With zero stages the Searcher degenerates to an exact sequential
// scan, which is the paper's comparison baseline.
type Searcher struct {
	// N is the database size.
	N int
	// BaseRanking, when set, supplies the bottom of the filter chain
	// as an incremental ranking (e.g. a k-d tree stream over database
	// centroids) instead of an eager scan of Stages[0]. Its distances
	// must lower-bound the first stage in Stages (or Refine, if Stages
	// is empty). This removes the last O(n) component from the query
	// path, realizing the paper's note that the reduced representation
	// can be indexed in a multidimensional structure.
	BaseRanking func(q emd.Histogram) (Ranking, error)
	// Stages is the filter chain, cheapest and loosest first.
	Stages []FilterStage
	// Refine computes the exact distance (full-dimensional EMD)
	// between the original query and database item index.
	Refine func(q emd.Histogram, index int) float64
}

// buildRanking assembles the filter chain for one query and returns
// the final ranking plus the per-stage evaluation counters.
func (s *Searcher) buildRanking(q emd.Histogram) (Ranking, func() []int, error) {
	var ranking Ranking
	chainFrom := 0
	scanned := 0
	if s.BaseRanking != nil {
		base, err := s.BaseRanking(q)
		if err != nil {
			return nil, nil, err
		}
		ranking = base
	} else if len(s.Stages) == 0 {
		// Trivial all-zero filter: a valid lower bound that prunes
		// nothing, yielding the sequential-scan behavior.
		ranking = NewScanRanking(make([]float64, s.N))
	} else {
		first := s.Stages[0]
		prepared := first.PrepareQuery(q)
		dists := make([]float64, s.N)
		for i := 0; i < s.N; i++ {
			dists[i] = first.Distance(prepared, i)
		}
		ranking = NewScanRanking(dists)
		chainFrom = 1
		scanned = s.N
	}

	chained := make([]*ChainedRanking, 0, len(s.Stages)-chainFrom)
	for _, stage := range s.Stages[chainFrom:] {
		stagePrepared := stage.PrepareQuery(q)
		dist := stage.Distance
		cr := NewChainedRanking(ranking, func(index int) float64 {
			return dist(stagePrepared, index)
		})
		chained = append(chained, cr)
		ranking = cr
	}

	evals := func() []int {
		if len(s.Stages) == 0 {
			return nil
		}
		out := make([]int, 0, len(s.Stages))
		if chainFrom == 1 {
			out = append(out, scanned)
		}
		for _, cr := range chained {
			out = append(out, cr.Evaluations)
		}
		return out
	}
	return ranking, evals, nil
}

// KNN answers a k-nearest-neighbor query for q.
func (s *Searcher) KNN(q emd.Histogram, k int) ([]Result, *QueryStats, error) {
	if s.Refine == nil {
		return nil, nil, fmt.Errorf("search: Searcher has no refinement distance")
	}
	ranking, evals, err := s.buildRanking(q)
	if err != nil {
		return nil, nil, err
	}
	results, stats, err := KNN(ranking, func(i int) float64 { return s.Refine(q, i) }, k)
	if err != nil {
		return nil, nil, err
	}
	stats.StageEvaluations = evals()
	return results, stats, nil
}

// Range answers a range query: all items with exact distance <= eps.
func (s *Searcher) Range(q emd.Histogram, eps float64) ([]Result, *QueryStats, error) {
	if s.Refine == nil {
		return nil, nil, fmt.Errorf("search: Searcher has no refinement distance")
	}
	ranking, evals, err := s.buildRanking(q)
	if err != nil {
		return nil, nil, err
	}
	results, stats, err := Range(ranking, func(i int) float64 { return s.Refine(q, i) }, eps)
	if err != nil {
		return nil, nil, err
	}
	stats.StageEvaluations = evals()
	return results, stats, nil
}

// Ranking returns the assembled filter ranking for q — the same chain
// KNN and Range use internally, without the refinement step. Callers
// can stack further (larger) lower bounds or the exact distance on top
// with NewChainedRanking.
func (s *Searcher) Ranking(q emd.Histogram) (Ranking, error) {
	ranking, _, err := s.buildRanking(q)
	return ranking, err
}
