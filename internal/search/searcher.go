package search

import (
	"fmt"
	"sync/atomic"
	"time"

	"emdsearch/internal/emd"
)

// FilterStage is one lower-bounding filter in a multistep pipeline
// (e.g. Red-IM or Red-EMD of the paper's Figure 10). Each stage owns
// its database-side representation (typically precomputed reduced
// vectors) and knows how to prepare the query side once per query.
type FilterStage struct {
	// Name identifies the stage in statistics and experiment tables.
	Name string
	// PrepareQuery maps the original query histogram to this stage's
	// representation (e.g. applies the query reduction R1). It is
	// called once per query.
	PrepareQuery func(q emd.Histogram) emd.Histogram
	// Distance computes the stage's filter distance between the
	// prepared query and database item index.
	Distance func(prepared emd.Histogram, index int) float64
	// ScanAll, when set, computes the stage's distance for every item
	// in one batched pass, writing item i's distance to out[i] and
	// returning the number of items evaluated. It is used only when
	// the stage runs eagerly at the bottom of the chain (stage 0 with
	// no BaseRanking), where a columnar kernel beats n calls through
	// Distance. It must agree with Distance item-wise: same values, or
	// at minimum the same lower-bounding contract against later
	// stages. Distance remains required — lazy chained use and
	// auxiliary query paths still call it.
	ScanAll func(prepared emd.Histogram, out []float64) int
}

// Searcher executes multistep k-NN and range queries over a database
// of n items with an ordered chain of lower-bounding filter stages and
// an exact refinement distance. Stage i must lower-bound stage i+1
// item-wise, and the last stage must lower-bound Refine; this is
// exactly the chaining requirement of Section 4 and is what guarantees
// completeness (no false dismissals).
//
// With zero stages the Searcher degenerates to an exact sequential
// scan, which is the paper's comparison baseline.
//
// A Searcher is immutable after construction and safe for concurrent
// use by any number of queries, provided the stage and refinement
// functions are (the engine's stages close over immutable snapshot
// state and a pooled solver, so they are).
type Searcher struct {
	// N is the database size.
	N int
	// Index, when set, is consulted first for every query: given the
	// query and a hint describing it, the index either returns an
	// IndexRanking — candidates in nondecreasing lower-bound order,
	// produced WITHOUT an O(n) scan — or declines with (nil, nil), in
	// which case the normal chain below runs. When an index ranking is
	// used it replaces the whole filter chain (BaseRanking and Stages),
	// so its emissions must lower-bound Refine directly.
	Index func(q emd.Histogram, hint IndexHint) (IndexRanking, error)
	// BaseRanking, when set, supplies the bottom of the filter chain
	// as an incremental ranking (e.g. a k-d tree stream over database
	// centroids) instead of an eager scan of Stages[0]. Its distances
	// must lower-bound the first stage in Stages (or Refine, if Stages
	// is empty). This removes the last O(n) component from the query
	// path, realizing the paper's note that the reduced representation
	// can be indexed in a multidimensional structure.
	BaseRanking func(q emd.Histogram) (Ranking, error)
	// Stages is the filter chain, cheapest and loosest first.
	Stages []FilterStage
	// Refine computes the exact distance (full-dimensional EMD)
	// between the original query and database item index. It must be
	// safe for concurrent invocation when Workers > 1.
	Refine func(q emd.Histogram, index int) float64
	// RefineBounded, when set, is preferred over Refine: a
	// threshold-aware exact distance that may abandon a candidate once
	// a certified lower bound on its distance exceeds abortAbove (the
	// live pruning threshold of the query). It must obey the
	// BoundedRefine contract and, like Refine, be safe for concurrent
	// invocation when Workers > 1. At least one of Refine and
	// RefineBounded must be set.
	RefineBounded func(q emd.Histogram, index int, abortAbove float64) Refinement
	// RefineBoundedIntr, when set, is the interrupt-aware form of
	// RefineBounded used by the context-aware entry points (KNNCtx,
	// RangeCtx): intr is the query's cancel flag, polled inside the
	// simplex pivot loop so a deadline stops even a single large solve.
	// An interrupted refinement returns Interrupted=true with Dist a
	// certified lower bound. Never called with a nil intr.
	RefineBoundedIntr func(q emd.Histogram, index int, abortAbove float64, intr *atomic.Bool) Refinement
	// Workers bounds the goroutines used for the exact refinement
	// stage of a single query; values <= 1 select the sequential KNOP
	// path. The filter chain itself always runs on the calling
	// goroutine — only refinements fan out.
	Workers int
}

// stageProbe observes one stage of an assembled per-query chain.
// index is set only for the index-backed stage and feeds the
// QueryStats index counters.
type stageProbe struct {
	name  string
	evals func() int
	dur   *time.Duration
	index func() IndexStats
}

// buildRanking assembles the filter chain for one query and returns
// the final ranking plus probes for the per-stage counters. The hint
// describes the query shape so an attached index can apply its
// per-query acceptance policy.
func (s *Searcher) buildRanking(q emd.Histogram, hint IndexHint) (Ranking, []stageProbe, error) {
	if s.Index != nil {
		idx, err := s.Index(q, hint)
		if err != nil {
			return nil, nil, err
		}
		if idx != nil {
			// The index IS the filter: no eager scan, no chained
			// stages — emissions already carry the tightest available
			// lower bound in nondecreasing order.
			dur := new(time.Duration)
			probe := stageProbe{
				name:  idx.Label(),
				evals: func() int { return idx.IndexStats().DistanceCalls },
				dur:   dur,
				index: idx.IndexStats,
			}
			return &timedRanking{inner: idx, dur: dur}, []stageProbe{probe}, nil
		}
	}
	var ranking Ranking
	chainFrom := 0
	probes := make([]stageProbe, 0, len(s.Stages))
	if s.BaseRanking != nil {
		base, err := s.BaseRanking(q)
		if err != nil {
			return nil, nil, err
		}
		ranking = base
	} else if len(s.Stages) == 0 {
		// Trivial all-zero filter: a valid lower bound that prunes
		// nothing, yielding the sequential-scan behavior.
		ranking = NewScanRanking(make([]float64, s.N))
	} else {
		first := s.Stages[0]
		prepared := first.PrepareQuery(q)
		dists := make([]float64, s.N)
		start := time.Now()
		var scanned int
		if first.ScanAll != nil {
			scanned = first.ScanAll(prepared, dists)
		} else {
			for i := 0; i < s.N; i++ {
				dists[i] = first.Distance(prepared, i)
			}
			scanned = s.N
		}
		scanDur := time.Since(start)
		ranking = NewScanRanking(dists)
		chainFrom = 1
		dur := new(time.Duration)
		*dur = scanDur
		probes = append(probes, stageProbe{
			name:  first.Name,
			evals: func() int { return scanned },
			dur:   dur,
		})
	}

	for _, stage := range s.Stages[chainFrom:] {
		stagePrepared := stage.PrepareQuery(q)
		dist := stage.Distance
		dur := new(time.Duration)
		cr := NewChainedRanking(ranking, func(index int) float64 {
			t0 := time.Now()
			d := dist(stagePrepared, index)
			*dur += time.Since(t0)
			return d
		})
		probes = append(probes, stageProbe{
			name:  stage.Name,
			evals: func() int { return cr.Evaluations },
			dur:   dur,
		})
		ranking = cr
	}
	return ranking, probes, nil
}

// finishStats fills the per-stage observability fields of stats from
// the probes. Pruned of stage i is the number of its evaluations the
// next consumer (stage i+1, or the candidate loop for the last stage)
// never saw.
func finishStats(stats *QueryStats, probes []stageProbe, total time.Duration) {
	stats.TotalTime = total
	if len(probes) == 0 {
		return
	}
	stats.Stages = make([]StageStats, len(probes))
	stats.StageEvaluations = make([]int, len(probes))
	for i, p := range probes {
		evals := p.evals()
		consumed := stats.Pulled
		if i+1 < len(probes) {
			consumed = probes[i+1].evals()
		}
		pruned := evals - consumed
		if pruned < 0 {
			pruned = 0
		}
		stats.Stages[i] = StageStats{
			Name:        p.name,
			Evaluations: evals,
			Pruned:      pruned,
			Duration:    *p.dur,
		}
		stats.StageEvaluations[i] = evals
		stats.FilterTime += *p.dur
		if p.index != nil {
			ist := p.index()
			stats.IndexUsed = true
			stats.IndexNodesVisited = ist.NodesVisited
			stats.IndexPruned = ist.Pruned
		}
	}
}

// timedBoundedRefine wraps the searcher's refinement for query q with
// a cumulative timer, lifting a plain Refine into the BoundedRefine
// shape when no RefineBounded is configured. add must be
// goroutine-safe when the parallel path is in use.
func (s *Searcher) timedBoundedRefine(q emd.Histogram, add func(time.Duration)) BoundedRefine {
	if s.RefineBounded != nil {
		return func(i int, abortAbove float64) Refinement {
			t0 := time.Now()
			r := s.RefineBounded(q, i, abortAbove)
			add(time.Since(t0))
			return r
		}
	}
	return func(i int, _ float64) Refinement {
		t0 := time.Now()
		d := s.Refine(q, i)
		add(time.Since(t0))
		return Refinement{Dist: d}
	}
}

// KNN answers a k-nearest-neighbor query for q. With Workers > 1 the
// exact refinements of one query are computed by a bounded worker pool
// sharing an atomic pruning threshold; results are identical to the
// sequential path (work counters may differ slightly, since candidates
// in flight when the threshold tightens are refined speculatively).
// When RefineBounded is set, candidates are refined threshold-aware:
// the solver may abandon a candidate on a certified bound above the
// live k-th distance, which changes only the work counters, never the
// results.
func (s *Searcher) KNN(q emd.Histogram, k int) ([]Result, *QueryStats, error) {
	if s.Refine == nil && s.RefineBounded == nil {
		return nil, nil, fmt.Errorf("search: Searcher has no refinement distance")
	}
	start := time.Now()
	ranking, probes, err := s.buildRanking(q, IndexHint{Kind: IndexKNN, K: k})
	if err != nil {
		return nil, nil, err
	}
	var results []Result
	var stats *QueryStats
	if s.Workers > 1 {
		refineTime := new(atomicDuration)
		refine := s.timedBoundedRefine(q, refineTime.Add)
		results, stats, err = ParallelKNNBounded(ranking, refine, k, s.Workers)
		if err == nil {
			stats.RefineTime = refineTime.Load()
		}
	} else {
		var refineTime time.Duration
		refine := s.timedBoundedRefine(q, func(d time.Duration) { refineTime += d })
		results, stats, err = KNNBounded(ranking, refine, k)
		if err == nil {
			stats.RefineTime = refineTime
			stats.Workers = 1
		}
	}
	if err != nil {
		return nil, nil, err
	}
	finishStats(stats, probes, time.Since(start))
	return results, stats, nil
}

// Range answers a range query: all items with exact distance <= eps.
// Like KNN it refines in parallel when Workers > 1 and threshold-aware
// when RefineBounded is set (eps is the abort bound).
func (s *Searcher) Range(q emd.Histogram, eps float64) ([]Result, *QueryStats, error) {
	if s.Refine == nil && s.RefineBounded == nil {
		return nil, nil, fmt.Errorf("search: Searcher has no refinement distance")
	}
	start := time.Now()
	ranking, probes, err := s.buildRanking(q, IndexHint{Kind: IndexRange, Eps: eps})
	if err != nil {
		return nil, nil, err
	}
	var results []Result
	var stats *QueryStats
	if s.Workers > 1 {
		refineTime := new(atomicDuration)
		refine := s.timedBoundedRefine(q, refineTime.Add)
		results, stats, err = ParallelRangeBounded(ranking, refine, eps, s.Workers)
		if err == nil {
			stats.RefineTime = refineTime.Load()
		}
	} else {
		var refineTime time.Duration
		refine := s.timedBoundedRefine(q, func(d time.Duration) { refineTime += d })
		results, stats, err = RangeBounded(ranking, refine, eps)
		if err == nil {
			stats.RefineTime = refineTime
			stats.Workers = 1
		}
	}
	if err != nil {
		return nil, nil, err
	}
	finishStats(stats, probes, time.Since(start))
	return results, stats, nil
}

// Ranking returns the assembled filter ranking for q — the same chain
// KNN and Range use internally, without the refinement step. Callers
// can stack further (larger) lower bounds or the exact distance on top
// with NewChainedRanking.
func (s *Searcher) Ranking(q emd.Histogram) (Ranking, error) {
	ranking, _, err := s.buildRanking(q, IndexHint{Kind: IndexRank})
	return ranking, err
}
