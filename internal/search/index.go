package search

import "time"

// IndexQueryKind tells an index-backed candidate generator what query
// shape it is serving, so its policy can accept or decline per query
// (e.g. decline k-NN with k close to n, where a scan is cheaper).
type IndexQueryKind int

const (
	// IndexKNN is a k-nearest-neighbor query; IndexHint.K carries k.
	IndexKNN IndexQueryKind = iota
	// IndexRange is a range query; IndexHint.Eps carries the radius.
	IndexRange
	// IndexRank is an open-ended ranking request (Searcher.Ranking)
	// with no known stopping point.
	IndexRank
)

// IndexHint describes the query an index is asked to serve.
type IndexHint struct {
	Kind IndexQueryKind
	K    int
	Eps  float64
}

// IndexStats reports the traversal work of one index-backed ranking.
type IndexStats struct {
	// NodesVisited counts index nodes expanded by the traversal.
	NodesVisited int
	// Pruned counts index nodes ruled out without being expanded.
	Pruned int
	// DistanceCalls counts filter-metric evaluations — the index
	// equivalent of a stage's Evaluations, sub-linear in n when the
	// index is doing its job.
	DistanceCalls int
}

// IndexRanking is a Ranking produced by a metric index: candidates
// emitted in nondecreasing lower-bound order WITHOUT an O(n) scan.
// Because the order is nondecreasing and each emitted Dist lower-bounds
// the exact distance, the KNOP threshold break remains lossless — the
// answer set is provably identical to the scan path's.
type IndexRanking interface {
	Ranking
	// IndexStats reports the work performed so far; read after the
	// consumer stops pulling.
	IndexStats() IndexStats
	// Label names the index for per-stage statistics, e.g.
	// "MTree(Red-EMD)".
	Label() string
}

// timedRanking wraps a ranking with a cumulative wall-time counter so
// index traversal cost lands in the stage duration like any filter.
type timedRanking struct {
	inner Ranking
	dur   *time.Duration
}

func (t *timedRanking) Next() (Candidate, bool) {
	t0 := time.Now()
	c, ok := t.inner.Next()
	*t.dur += time.Since(t0)
	return c, ok
}
