package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"emdsearch/internal/emd"
)

// SharedKNN is a k-nearest-neighbor result set shared by several
// concurrent searches over disjoint partitions of one logical database
// — the cross-shard generalization of the per-query threshold the
// parallel KNOP path already uses. Each partition's search offers its
// confirmed exact distances (keyed by GLOBAL item id) and reads back
// the global k-th best distance as an extra pruning threshold.
//
// Soundness is the same monotonicity argument as the single-engine
// parallel path: the published threshold is the k-th best distance of
// items confirmed SO FAR, so it is always >= the final global k-th
// distance and only ever tightens. A shard that stops pulling when its
// filter lower bound strictly exceeds the threshold, or aborts a
// refinement on a certified bound strictly above it, discards only
// items provably outside the final global top-k; ties are refined, so
// the merged answer — including its deterministic (Dist, Index)
// tie-break — is exactly the single-engine answer over the union.
//
// Safe for concurrent use by any number of searches.
type SharedKNN struct {
	k         int
	threshold *atomicThreshold

	mu      sync.Mutex
	results []Result // global ids, (Dist, Index)-sorted, len <= k
}

// NewSharedKNN builds a shared set for a k-NN query.
func NewSharedKNN(k int) (*SharedKNN, error) {
	if k < 1 {
		return nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	return &SharedKNN{k: k, threshold: newAtomicThreshold()}, nil
}

// Threshold returns the current global k-th best confirmed distance,
// +Inf until k items have been offered. Monotonically non-increasing.
func (g *SharedKNN) Threshold() float64 { return g.threshold.Load() }

// Offer records a confirmed exact distance for the item with the given
// global id. Infinite distances (deleted items on some shard) are
// ignored — they can never enter the answer and must not loosen the
// set. Offers are deduplicated by global id: a hedged re-dispatch runs
// the same shard search twice (and a cancelled straggler keeps
// offering briefly before it stops), so the same item can arrive more
// than once; were it allowed to occupy two of the k slots, the
// published threshold would drop below the true global k-th distance
// and other shards would prune true neighbors.
func (g *SharedKNN) Offer(globalIndex int, dist float64) {
	if math.IsInf(dist, 1) {
		return
	}
	g.mu.Lock()
	for i, r := range g.results {
		if r.Index != globalIndex {
			continue
		}
		if r.Dist <= dist {
			// Already present at least as tight: nothing to do.
			g.mu.Unlock()
			return
		}
		// Present but looser (attempts confirmed against different
		// snapshots): keep the tighter confirmation, one slot only.
		g.results = append(g.results[:i], g.results[i+1:]...)
		break
	}
	pos := sort.Search(len(g.results), func(i int) bool {
		if g.results[i].Dist != dist {
			return g.results[i].Dist > dist
		}
		return g.results[i].Index > globalIndex
	})
	g.results = append(g.results, Result{})
	copy(g.results[pos+1:], g.results[pos:])
	g.results[pos] = Result{Index: globalIndex, Dist: dist}
	if len(g.results) > g.k {
		g.results = g.results[:g.k]
	}
	if len(g.results) == g.k {
		g.threshold.Store(g.results[g.k-1].Dist)
	}
	g.mu.Unlock()
}

// Results returns a copy of the current global top-k (global ids,
// sorted by (Dist, Index)). After every participating search has
// completed this IS the exact k-NN answer over the union of
// partitions.
func (g *SharedKNN) Results() []Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Result, len(g.results))
	copy(out, g.results)
	return out
}

// KNNSharedCtx is KNNCtx participating in a cross-partition shared
// neighbor set: the KNOP loop prunes against min(local k-th, global
// k-th) and offers every confirmed exact distance to shared under its
// global id (toGlobal maps this searcher's local indices; nil is the
// identity). pred, when non-nil, restricts candidates exactly as in
// KNNWhereCtx.
//
// The outcome's Results carry LOCAL indices — they are this
// partition's local top-k, which the caller merges (or reads straight
// off shared.Results() once every partition finished).
func (s *Searcher) KNNSharedCtx(ctx context.Context, q emd.Histogram, k int, shared *SharedKNN, toGlobal func(local int) int, pred func(index int) bool) (*KNNOutcome, error) {
	if s.Refine == nil && s.RefineBounded == nil {
		return nil, errNoRefine()
	}
	if shared == nil {
		return nil, fmt.Errorf("search: KNNSharedCtx requires a shared set")
	}
	if shared.k != k {
		return nil, fmt.Errorf("search: shared set built for k = %d, query asks k = %d", shared.k, k)
	}
	start := time.Now()
	ranking, probes, err := s.buildRanking(q, IndexHint{Kind: IndexKNN, K: k})
	if err != nil {
		return nil, err
	}
	cancel, stopWatch := WatchContext(ctx)
	defer stopWatch()
	cfg := knnConfig{cancel: cancel, pred: pred, shared: shared, toGlobal: toGlobal}

	refineTime := new(atomicDuration)
	refine := s.timedBoundedRefineIntr(q, refineTime.Add, cancel)
	var out KNNOutcome
	if s.Workers > 1 {
		out.Results, out.Pending, out.Stats, err = parallelKNNBoundedCore(ranking, refine, k, s.Workers, cfg)
	} else {
		out.Results, out.Pending, out.Stats, err = knnBoundedCore(ranking, refine, k, cfg)
		if err == nil {
			out.Stats.Workers = 1
		}
	}
	if err != nil {
		return nil, err
	}
	out.Stats.RefineTime = refineTime.Load()
	finishStats(out.Stats, probes, time.Since(start))
	return &out, nil
}
